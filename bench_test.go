// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5) at laptop scale, plus ablations of the design choices
// called out in DESIGN.md. Each benchmark runs the real pipeline on a
// scaled-down ladder (the harness in cmd/experiments prints the same
// rows plus the paper-scale projections from internal/scale).
//
// Custom metrics reported via b.ReportMetric:
//
//	partition-frac   fraction of total time in the partition phase (Fig 9a)
//	gpu-sec          slowest leaf's GPGPU DBSCAN seconds (Fig 9c)
//	quality          DBDC quality score vs sequential DBSCAN (Fig 11)
//	clusters         global cluster count
package mrscan

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/gdbscan"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/partition"
	"repro/internal/quality"
)

// benchPointsPerLeaf is the scaled-down stand-in for the paper's 800k
// points per leaf.
const benchPointsPerLeaf = 12_500

// benchLeaves is the scaled-down Table 1 ladder.
var benchLeaves = []int{2, 4, 8, 16}

var (
	twitterCache = map[int][]Point{}
	twitterMu    sync.Mutex
)

func twitterData(n int) []Point {
	twitterMu.Lock()
	defer twitterMu.Unlock()
	pts, ok := twitterCache[n]
	if !ok {
		pts = dataset.Twitter(n, 1)
		twitterCache[n] = pts
	}
	return pts
}

func runPipeline(b *testing.B, pts []Point, cfg Config) *Result {
	b.Helper()
	res, _, err := RunPoints(pts, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1WeakConfigs reproduces Table 1's configuration ladder:
// points grow with leaves at a fixed per-leaf load; partitioner node
// counts follow the paper's ratio (Leaves/16, min 1).
func BenchmarkTable1WeakConfigs(b *testing.B) {
	for _, leaves := range benchLeaves {
		pts := twitterData(leaves * benchPointsPerLeaf)
		b.Run(fmt.Sprintf("leaves=%d/points=%d", leaves, len(pts)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runPipeline(b, pts, Default(0.1, 40, leaves))
				b.ReportMetric(float64(res.NumClusters), "clusters")
			}
		})
	}
}

// BenchmarkFig8WeakScalingTotal reproduces Figure 8: total elapsed time
// under weak scaling for the paper's four MinPts values.
func BenchmarkFig8WeakScalingTotal(b *testing.B) {
	for _, minPts := range []int{4, 40, 400, 4000} {
		for _, leaves := range benchLeaves {
			pts := twitterData(leaves * benchPointsPerLeaf)
			b.Run(fmt.Sprintf("minPts=%d/leaves=%d", minPts, leaves), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runPipeline(b, pts, Default(0.1, minPts, leaves))
				}
			})
		}
	}
}

// BenchmarkFig9aPartitionTime reproduces Figure 9a: the partition phase,
// reporting its fraction of total time.
func BenchmarkFig9aPartitionTime(b *testing.B) {
	for _, leaves := range benchLeaves {
		pts := twitterData(leaves * benchPointsPerLeaf)
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runPipeline(b, pts, Default(0.1, 400, leaves))
				b.ReportMetric(res.Times.Partition.Seconds(), "partition-sec")
				b.ReportMetric(res.Times.Partition.Seconds()/res.Times.Total.Seconds(), "partition-frac")
			}
		})
	}
}

// BenchmarkFig9bClusterMergeSweep reproduces Figure 9b: the combined
// cluster + merge + sweep time.
func BenchmarkFig9bClusterMergeSweep(b *testing.B) {
	for _, minPts := range []int{40, 400} {
		for _, leaves := range benchLeaves {
			pts := twitterData(leaves * benchPointsPerLeaf)
			b.Run(fmt.Sprintf("minPts=%d/leaves=%d", minPts, leaves), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := runPipeline(b, pts, Default(0.1, minPts, leaves))
					cms := res.Times.Cluster + res.Times.Merge + res.Times.Sweep
					b.ReportMetric(cms.Seconds(), "cms-sec")
				}
			})
		}
	}
}

// BenchmarkFig9cGPUDBSCAN reproduces Figure 9c: time inside the GPGPU
// DBSCAN only (slowest leaf), across MinPts values.
func BenchmarkFig9cGPUDBSCAN(b *testing.B) {
	for _, minPts := range []int{4, 40, 400} {
		for _, leaves := range benchLeaves {
			pts := twitterData(leaves * benchPointsPerLeaf)
			b.Run(fmt.Sprintf("minPts=%d/leaves=%d", minPts, leaves), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := runPipeline(b, pts, Default(0.1, minPts, leaves))
					b.ReportMetric(res.Times.GPUDBSCAN.Seconds(), "gpu-sec")
				}
			})
		}
	}
}

// BenchmarkFig10StrongScaling reproduces Figure 10: a fixed dataset
// clustered by growing leaf counts.
func BenchmarkFig10StrongScaling(b *testing.B) {
	pts := twitterData(16 * benchPointsPerLeaf)
	for _, leaves := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Default(0.1, 40, leaves)
				// Sequential leaves: time each simulated GPU in
				// isolation so host-core contention does not skew the
				// slowest-leaf metric.
				cfg.SequentialLeaves = true
				res := runPipeline(b, pts, cfg)
				b.ReportMetric(res.Times.GPUDBSCAN.Seconds(), "gpu-sec")
			}
		})
	}
}

// BenchmarkFig11Quality reproduces Figure 11: output quality versus
// sequential DBSCAN across data sizes (the paper holds ≥ 0.995).
func BenchmarkFig11Quality(b *testing.B) {
	for _, n := range []int{25_000, 50_000, 100_000} {
		pts := twitterData(n)
		ref, err := DBSCAN(pts, 0.1, 40)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, labels, err := RunPoints(pts, Default(0.1, 40, 8))
				if err != nil {
					b.Fatal(err)
				}
				q, err := quality.Score(ref, labels)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(q, "quality")
			}
		})
	}
}

// BenchmarkFig12SDSSWeak reproduces Figure 12: SDSS weak scaling at
// Eps = 0.00015, MinPts = 5.
func BenchmarkFig12SDSSWeak(b *testing.B) {
	for _, leaves := range benchLeaves {
		pts := dataset.SDSS(leaves*benchPointsPerLeaf, 2)
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runPipeline(b, pts, Default(0.00015, 5, leaves))
			}
		})
	}
}

// BenchmarkFig13SDSSPartition reproduces Figure 13: the SDSS partition
// phase time.
func BenchmarkFig13SDSSPartition(b *testing.B) {
	for _, leaves := range benchLeaves {
		pts := dataset.SDSS(leaves*benchPointsPerLeaf, 2)
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runPipeline(b, pts, Default(0.00015, 5, leaves))
				b.ReportMetric(res.Times.Partition.Seconds(), "partition-sec")
			}
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationDenseBox compares the cluster phase with the §3.2.3
// dense box optimization on and off.
func BenchmarkAblationDenseBox(b *testing.B) {
	pts := twitterData(8 * benchPointsPerLeaf)
	for _, dense := range []bool{true, false} {
		b.Run(fmt.Sprintf("densebox=%v", dense), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Default(0.1, 40, 8)
				cfg.DenseBox = dense
				res := runPipeline(b, pts, cfg)
				b.ReportMetric(res.Times.GPUDBSCAN.Seconds(), "gpu-sec")
				b.ReportMetric(float64(res.Stats.DenseBoxPoints), "eliminated-points")
			}
		})
	}
}

// BenchmarkAblationHostTransfers compares Mr. Scan's single round trip
// (§3.2.2) against the CUDA-DClust per-iteration transfer profile.
func BenchmarkAblationHostTransfers(b *testing.B) {
	pts := twitterData(4 * benchPointsPerLeaf)
	for _, mode := range []gdbscan.Mode{gdbscan.ModeMrScan, gdbscan.ModeCUDADClust} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev := gpusim.New(gpusim.K20(), nil)
				_, err := gdbscan.Cluster(dev, pts, gdbscan.Options{
					Params:   dbscan.Params{Eps: 0.1, MinPts: 40},
					Mode:     mode,
					DenseBox: mode == gdbscan.ModeMrScan,
				})
				if err != nil {
					b.Fatal(err)
				}
				st := dev.Stats()
				b.ReportMetric(float64(st.H2DTransfers+st.D2HTransfers), "transfers")
				b.ReportMetric(dev.Clock().Resource(dev.Config().Name+"/pcie").Seconds(), "pcie-sim-sec")
			}
		})
	}
}

// BenchmarkAblationShadowReps compares the partitioner with and without
// the representative-shadow write reduction (§3.1.3).
func BenchmarkAblationShadowReps(b *testing.B) {
	pts := twitterData(8 * benchPointsPerLeaf)
	for _, reps := range []bool{false, true} {
		b.Run(fmt.Sprintf("shadowreps=%v", reps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Default(0.1, 40, 8)
				cfg.ShadowReps = reps
				res := runPipeline(b, pts, cfg)
				b.ReportMetric(float64(res.Stats.WrittenPoints), "written-points")
			}
		})
	}
}

// BenchmarkAblationDirectTransfer compares the partition phase through
// Lustre (small random writes) against the §6 future-work path that sends
// partitions over the network directly to the clustering processes.
func BenchmarkAblationDirectTransfer(b *testing.B) {
	pts := twitterData(8 * benchPointsPerLeaf)
	for _, direct := range []bool{false, true} {
		name := "via-lustre"
		if direct {
			name = "direct-network"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Default(0.1, 40, 8)
				cfg.DirectPartitions = direct
				res := runPipeline(b, pts, cfg)
				b.ReportMetric(res.Times.Partition.Seconds(), "partition-sec")
			}
		})
	}
}

// BenchmarkAblationHotCellSplit compares strong scaling with and without
// hot-cell subdivision (§5.1.2 future work): without it the slowest leaf
// owns the densest Eps cell whole; with it the cell spreads over leaves.
func BenchmarkAblationHotCellSplit(b *testing.B) {
	pts := twitterData(16 * benchPointsPerLeaf)
	for _, threshold := range []int64{0, 10_000} {
		name := "split=off"
		if threshold > 0 {
			name = "split=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Default(0.1, 40, 16)
				cfg.HotCellThreshold = threshold
				cfg.SequentialLeaves = true
				res := runPipeline(b, pts, cfg)
				b.ReportMetric(res.Times.GPUDBSCAN.Seconds(), "slowest-gpu-sec")
				b.ReportMetric(float64(res.Stats.MaxLeafPoints), "max-leaf-points")
			}
		})
	}
}

// BenchmarkAblationRebalance compares partition plans with and without
// the backward rebalancing pass (§3.1.2), reporting load imbalance.
func BenchmarkAblationRebalance(b *testing.B) {
	pts := twitterData(8 * benchPointsPerLeaf)
	g := grid.New(0.1)
	h := g.HistogramOf(pts)
	for _, rebalance := range []bool{false, true} {
		b.Run(fmt.Sprintf("rebalance=%v", rebalance), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan, err := partition.MakePlan(g, h, 16, 40, rebalance)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(plan.MaxTotal())/plan.MeanTotal(), "imbalance")
			}
		})
	}
}

// BenchmarkCheckpointOverhead compares a full pipeline run with phase
// checkpointing off and on. The snapshots ride the simulated Lustre FS
// through the same charged write path as the pipeline's own I/O, so the
// wall-clock delta between the two sub-benchmarks is the real cost of
// durability — it should stay under a few percent of total time.
func BenchmarkCheckpointOverhead(b *testing.B) {
	pts := twitterData(4 * benchPointsPerLeaf)
	for _, ckpt := range []bool{false, true} {
		b.Run(fmt.Sprintf("checkpoint=%v", ckpt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Default(0.1, 40, 4)
				cfg.Checkpoint = ckpt
				res := runPipeline(b, pts, cfg)
				b.ReportMetric(res.Times.Total.Seconds(), "total-sec")
				b.ReportMetric(res.Stats.SimNow.Seconds(), "sim-sec")
			}
		})
	}
}

// --- Cluster-phase throughput benchmarks ---
//
// The cluster phase dominates the pipeline ("the time of the cluster
// phase is dictated by the slowest node", §5), and a leaf processes its
// partitions back-to-back on one device. These benchmarks measure that
// inner loop directly: repeated gdbscan.Cluster calls on a single
// simulated device over realistic partition shapes. They are the
// wall-clock series gated by CI against BENCH_seed.json (cmd/benchjson
// -compare).

// benchClusterPartitions splits pts into the combined (owned + shadow)
// per-leaf point sets the cluster phase sees, using the real partitioner.
func benchClusterPartitions(b *testing.B, pts []Point, parts int) [][]Point {
	b.Helper()
	g := grid.New(0.1)
	h := g.HistogramOf(pts)
	plan, err := partition.MakePlan(g, h, parts, 40, true)
	if err != nil {
		b.Fatal(err)
	}
	split, err := partition.Split(plan, pts, partition.SplitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	combined := make([][]Point, parts)
	for i := 0; i < parts; i++ {
		combined[i] = append(append([]Point{}, split.Partitions[i]...), split.Shadows[i]...)
	}
	return combined
}

// BenchmarkClusterMultiPartition runs every partition of a dataset
// through gdbscan.Cluster on one device per op — the per-leaf work loop
// of the cluster phase. Device buffers and KD workspaces are reusable
// across the calls, so this is where allocation churn shows up.
func BenchmarkClusterMultiPartition(b *testing.B) {
	for _, parts := range []int{4, 8} {
		pts := twitterData(parts * benchPointsPerLeaf)
		combined := benchClusterPartitions(b, pts, parts)
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			b.ReportAllocs()
			dev := gpusim.New(gpusim.K20(), nil)
			var ws gdbscan.Workspace
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, part := range combined {
					if _, err := gdbscan.Cluster(dev, part, gdbscan.Options{
						Params:    dbscan.Params{Eps: 0.1, MinPts: 40},
						DenseBox:  true,
						Workspace: &ws,
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkPartition is the partition-phase microbenchmark: the full
// in-memory partition computation — density histogram, plan (with the
// backward rebalancing pass), and the point split with shadow
// regions — per op, at cluster-phase leaf counts. It pins the baseline
// for the partition-phase attack (ROADMAP item 2); like the Cluster
// series it is wall-clock gated by CI against BENCH_seed.json.
func BenchmarkPartition(b *testing.B) {
	for _, leaves := range []int{4, 8} {
		pts := twitterData(leaves * benchPointsPerLeaf)
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := grid.New(0.1)
				h := g.HistogramOf(pts)
				plan, err := partition.MakePlan(g, h, leaves, 40, true)
				if err != nil {
					b.Fatal(err)
				}
				split, err := partition.Split(plan, pts, partition.SplitOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(plan.MaxTotal())/plan.MeanTotal(), "imbalance")
				b.ReportMetric(float64(len(split.Partitions)), "partitions")
			}
		})
	}
}

// BenchmarkClusterSinglePartition is one partition-sized Cluster call per
// op on a reused device: the classify+expand hot path without
// multi-partition amortization.
func BenchmarkClusterSinglePartition(b *testing.B) {
	pts := twitterData(2 * benchPointsPerLeaf)
	b.ReportAllocs()
	dev := gpusim.New(gpusim.K20(), nil)
	var ws gdbscan.Workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gdbscan.Cluster(dev, pts, gdbscan.Options{
			Params:    dbscan.Params{Eps: 0.1, MinPts: 40},
			DenseBox:  true,
			Workspace: &ws,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexStructures compares the spatial indexes backing the
// reference DBSCAN (§2.1: no index vs grid vs KD-tree).
func BenchmarkIndexStructures(b *testing.B) {
	pts := twitterData(20_000)
	params := dbscan.Params{Eps: 0.1, MinPts: 40}
	for _, kind := range []dbscan.IndexKind{dbscan.IndexBrute, dbscan.IndexGrid, dbscan.IndexKDTree} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dbscan.Cluster(pts, params, kind); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselinePDS runs the PDSDBSCAN-style baseline across worker
// counts, reporting the disjoint-set message proxy (§2.2's bottleneck).
func BenchmarkBaselinePDS(b *testing.B) {
	pts := twitterData(4 * benchPointsPerLeaf)
	params := dbscan.Params{Eps: 0.1, MinPts: 40}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := baseline.PDS(pts, params, workers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Messages), "dsu-messages")
			}
		})
	}
}

// BenchmarkBaselineDBDCQuality contrasts the DBDC-style baseline's output
// quality with Mr. Scan's ≥0.995 (Figure 11's framing in §2.2).
func BenchmarkBaselineDBDCQuality(b *testing.B) {
	pts := twitterData(4 * benchPointsPerLeaf)
	ref, err := DBSCAN(pts, 0.1, 40)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dbdc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := baseline.DBDC(pts, dbscan.Params{Eps: 0.1, MinPts: 40}, baseline.DBDCOptions{Slaves: 8})
			if err != nil {
				b.Fatal(err)
			}
			q, err := quality.Score(ref, res.Labels)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(q, "quality")
		}
	})
	b.Run("mrscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, labels, err := RunPoints(pts, Default(0.1, 40, 8))
			if err != nil {
				b.Fatal(err)
			}
			q, err := quality.Score(ref, labels)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(q, "quality")
		}
	})
}
