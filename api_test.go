package mrscan

import "testing"

func TestQuickstartFlow(t *testing.T) {
	pts := Twitter(5000, 42)
	res, labels, err := RunPoints(pts, Default(0.1, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters < 1 {
		t.Fatal("expected clusters in Twitter data")
	}
	ref, err := DBSCAN(pts, 0.1, 40)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quality(ref, labels)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.995 {
		t.Errorf("quality = %.4f, want >= 0.995", q)
	}
}

func TestFileBasedFlow(t *testing.T) {
	fs := NewFS()
	pts := SDSS(3000, 7)
	if err := WriteDataset(fs, "in.mrsc", pts, false); err != nil {
		t.Fatal(err)
	}
	cfg := Default(0.00015, 5, 2)
	res, err := Run(fs, "in.mrsc", "out.mrsl", cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReadOutput(fs, "out.mrsl")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no clustered points written")
	}
	if int64(len(out)) != res.Stats.OutputPoints {
		t.Errorf("output holds %d records, result says %d", len(out), res.Stats.OutputPoints)
	}
	for _, lp := range out {
		if lp.Cluster < 0 || lp.Cluster >= int64(res.NumClusters) {
			t.Fatalf("record %d has cluster %d of %d", lp.Point.ID, lp.Cluster, res.NumClusters)
		}
	}
}

func TestGenerators(t *testing.T) {
	if n := len(Uniform(100, 1, Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})); n != 100 {
		t.Errorf("Uniform produced %d points", n)
	}
	if n := len(Blobs(100, 3, 0.1, 1, Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})); n != 100 {
		t.Errorf("Blobs produced %d points", n)
	}
}

func TestStreamFacade(t *testing.T) {
	s, err := NewStream(StreamConfig{Eps: 0.12, MinPts: 5, WindowTicks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range Firehose(8, 60, 21) {
		if _, err := s.Tick(batch); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if len(snap.Points) != 4*60 {
		t.Fatalf("window holds %d points, want %d", len(snap.Points), 4*60)
	}
	// The stream labeling must agree with batch DBSCAN on the window.
	ref, err := DBSCAN(snap.Points, 0.12, 5)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quality(ref, snap.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.999 {
		t.Fatalf("stream vs batch DBDC = %.4f, want ~1", q)
	}

	// Drain/restore round trip through the facade.
	r, err := RestoreStream(StreamConfig{Eps: 0.12, MinPts: 5, WindowTicks: 4}, s.WindowState())
	if err != nil {
		t.Fatal(err)
	}
	rs := r.Snapshot()
	for i := range snap.Labels {
		if rs.Labels[i] != snap.Labels[i] {
			t.Fatalf("restored stream label %d differs at %v", i, rs.Points[i])
		}
	}
}
