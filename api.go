// Package mrscan reproduces "Mr. Scan: Extreme Scale Density-Based
// Clustering using a Tree-Based Network of GPGPU Nodes" (Welton, Samanas
// & Miller, SC13) as a pure-Go library.
//
// Mr. Scan is a distributed DBSCAN with four phases — partition, cluster,
// merge, sweep — executed over an MRNet-style tree of processes whose
// leaves run a GPGPU DBSCAN with the paper's dense-box optimization. The
// hardware of the paper's testbed (Cray Titan: K20 GPUs, Lustre, ALPS) is
// provided as faithful simulators; see DESIGN.md for the substitution
// table.
//
// Quick start:
//
//	pts := mrscan.Twitter(100_000, 42)
//	res, labels, err := mrscan.RunPoints(pts, mrscan.Default(0.1, 40, 8))
//
// The package is a facade over the internal packages; applications that
// need the substrates directly (the tree network, the GPGPU simulator,
// the parallel file system) can use the exported wrappers here, while the
// experiment harness in cmd/experiments regenerates every table and
// figure of the paper's evaluation.
package mrscan

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/lustre"
	"repro/internal/mrscan"
	"repro/internal/ptio"
	"repro/internal/quality"
	"repro/internal/stream"
	"repro/internal/sweep"
)

// Point is a single input datum: unique ID, planar coordinates, optional
// analysis weight.
type Point = geom.Point

// Rect is an axis-aligned rectangle, used to bound generated datasets.
type Rect = geom.Rect

// Noise is the label reported for points in low-density regions.
const Noise = dbscan.Noise

// Config configures a full Mr. Scan run. The zero value is invalid; start
// from Default.
type Config = mrscan.Config

// Result reports a completed run: cluster count, per-phase times
// (partition / cluster / merge / sweep / GPGPU DBSCAN) and run statistics.
type Result = mrscan.Result

// PhaseTimes is the per-phase wall-clock breakdown (the units of the
// paper's Figures 8–10).
type PhaseTimes = mrscan.PhaseTimes

// FS is the simulated Lustre-style parallel file system runs execute
// against.
type FS = lustre.FS

// LabeledPoint is one output record: a point plus its global cluster ID.
type LabeledPoint = ptio.LabeledPoint

// Default returns the paper's experimental configuration: dense box on,
// partition rebalancing on, 256-way tree fanout, one simulated K20 per
// leaf.
func Default(eps float64, minPts, leaves int) Config {
	return mrscan.Default(eps, minPts, leaves)
}

// NewFS creates a simulated parallel file system with Titan-like striping
// and bandwidth parameters.
func NewFS() *FS {
	return lustre.New(lustre.Titan(), nil)
}

// WriteDataset stores pts as an MRSC dataset file on fs.
func WriteDataset(fs *FS, name string, pts []Point, hasWeight bool) error {
	return ptio.WriteDataset(fs.Create(name), pts, hasWeight)
}

// ReadOutput loads every labeled record from a run's output file.
func ReadOutput(fs *FS, name string) ([]LabeledPoint, error) {
	return sweep.ReadOutput(fs, name)
}

// Run executes the full four-phase pipeline against inputFile on fs,
// writing labeled output to outputFile.
func Run(fs *FS, inputFile, outputFile string, cfg Config) (*Result, error) {
	return mrscan.Run(fs, inputFile, outputFile, cfg)
}

// RunContext is Run under a caller context: cancellation or deadline
// expiry aborts the pipeline at the next phase or tree-hop boundary. The
// returned error wraps the context error, and the partial Result lists
// the phases that completed before the abort — with Config.Checkpoint
// those phases are durable, so a later Resume run picks up where the
// deadline struck. Long-running callers (the mrscand job server, CLIs
// with -deadline) use this entry point.
func RunContext(ctx context.Context, fs *FS, inputFile, outputFile string, cfg Config) (*Result, error) {
	return mrscan.RunContext(ctx, fs, inputFile, outputFile, cfg)
}

// RunPoints is the in-memory convenience entry point: it provisions a
// fresh simulated file system, stores pts, runs the pipeline, and returns
// per-point global cluster labels aligned with pts (-1 = noise).
func RunPoints(pts []Point, cfg Config) (*Result, []int, error) {
	return mrscan.RunPoints(pts, cfg)
}

// RunPointsContext is RunPoints under a caller context, aborting at the
// next phase boundary on cancellation or deadline expiry.
func RunPointsContext(ctx context.Context, pts []Point, cfg Config) (*Result, []int, error) {
	return mrscan.RunPointsContext(ctx, pts, cfg)
}

// DBSCAN runs the reference sequential DBSCAN (Ester et al., KDD'96) with
// a grid index — the implementation Mr. Scan's quality is measured
// against. Returns per-point labels (-1 = noise).
func DBSCAN(pts []Point, eps float64, minPts int) ([]int, error) {
	res, err := dbscan.Cluster(pts, dbscan.Params{Eps: eps, MinPts: minPts}, dbscan.IndexGrid)
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// Stream is a sliding-window incremental DBSCAN engine: Tick ingests a
// batch of points and expires the batch from WindowTicks ago, repairing
// cluster labels by re-evaluating only the grid cells the tick dirtied
// (plus their neighbor rings). Labels after every tick match a batch
// DBSCAN over the current window contents.
type Stream = stream.Engine

// StreamConfig parameterizes a Stream: Eps/MinPts as in DBSCAN, the
// window length in ticks, optional subsampled ε-queries for over-dense
// cells, and an optional periodic full re-anchor.
type StreamConfig = stream.Config

// StreamTickStats summarizes the incremental work one Tick performed.
type StreamTickStats = stream.TickStats

// StreamSnapshot is a consistent labeled view of a Stream's window.
type StreamSnapshot = stream.Snapshot

// StreamWindowState is a Stream's durable state: the arrival batches
// still inside the window. Labels are recomputed on restore.
type StreamWindowState = stream.WindowState

// NewStream returns an empty sliding-window engine.
func NewStream(cfg StreamConfig) (*Stream, error) {
	return stream.New(cfg)
}

// RestoreStream rebuilds a Stream from saved window state; the restored
// engine reproduces the saving engine's labels exactly.
func RestoreStream(cfg StreamConfig, ws StreamWindowState) (*Stream, error) {
	return stream.Restore(cfg, ws)
}

// Firehose generates a seeded stream of tick batches with drifting
// Twitter-style hotspots — the input shape Stream is built for.
func Firehose(ticks, perTick int, seed int64) [][]Point {
	return dataset.Firehose(ticks, perTick, seed, dataset.DefaultFirehoseOptions())
}

// Quality computes the DBDC quality metric of §5.1.3: the mean over
// points of |A∩B|/|A∪B| between reference and candidate clusters, 0 for
// noise mismatches, 1.0 for identical clusterings.
func Quality(ref, got []int) (float64, error) {
	return quality.Score(ref, got)
}

// Twitter generates n points from the Twitter-like geospatial
// distribution of §4.1 (a weighted mixture over world population centers
// plus background noise), deterministically from seed.
func Twitter(n int, seed int64) []Point {
	return dataset.Twitter(n, seed)
}

// SDSS generates n points resembling Sloan Digital Sky Survey γ-frame
// photo-object detections (§4.2), deterministically from seed.
func SDSS(n int, seed int64) []Point {
	return dataset.SDSS(n, seed)
}

// Uniform generates n points uniformly over r.
func Uniform(n int, seed int64, r Rect) []Point {
	return dataset.Uniform(n, seed, r)
}

// Blobs generates n points in k Gaussian blobs over r — a controlled
// workload for cluster-count tests.
func Blobs(n, k int, sigma float64, seed int64, r Rect) []Point {
	return dataset.Blobs(n, k, sigma, seed, r)
}
