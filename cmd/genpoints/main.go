// Command genpoints generates the paper's synthetic datasets (§4) as
// MRSC binary or text point files on the local file system.
//
// Usage:
//
//	genpoints -dist twitter -n 1000000 -seed 42 -o tweets.mrsc
//	genpoints -dist sdss -n 500000 -format text -o sky.txt
//	genpoints -dist uniform -n 100000 -o noise.mrsc
//	genpoints -dist blobs -n 100000 -blobs 12 -sigma 0.2 -o blobs.mrsc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/ptio"
)

func main() {
	var (
		dist   = flag.String("dist", "twitter", "distribution: twitter | sdss | uniform | blobs")
		n      = flag.Int("n", 100_000, "number of points")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "points.mrsc", "output file")
		format = flag.String("format", "bin", "output format: bin | text")
		blobs  = flag.Int("blobs", 10, "blob count (blobs distribution)")
		sigma  = flag.Float64("sigma", 0.2, "blob spread (blobs distribution)")
		weight = flag.Bool("weight", false, "include the per-point weight field")
	)
	flag.Parse()
	if err := run(*dist, *n, *seed, *out, *format, *blobs, *sigma, *weight); err != nil {
		fmt.Fprintln(os.Stderr, "genpoints:", err)
		os.Exit(1)
	}
}

func run(dist string, n int, seed int64, out, format string, blobs int, sigma float64, weight bool) error {
	var pts []geom.Point
	world := geom.Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}
	switch dist {
	case "twitter":
		pts = dataset.Twitter(n, seed)
	case "sdss":
		pts = dataset.SDSS(n, seed)
	case "uniform":
		pts = dataset.Uniform(n, seed, world)
	case "blobs":
		pts = dataset.Blobs(n, blobs, sigma, seed, world)
	default:
		return fmt.Errorf("unknown distribution %q", dist)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "bin":
		err = ptio.WriteDataset(f, pts, weight)
	case "text":
		err = ptio.WriteText(f, pts, weight)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d %s points to %s (%s)\n", n, dist, out, format)
	return f.Close()
}
