// Command genpoints generates the paper's synthetic datasets (§4) as
// MRSC binary or text point files on the local file system.
//
// Usage:
//
//	genpoints -dist twitter -n 1000000 -seed 42 -o tweets.mrsc
//	genpoints -dist sdss -n 500000 -format text -o sky.txt
//	genpoints -dist uniform -n 100000 -o noise.mrsc
//	genpoints -dist blobs -n 100000 -blobs 12 -sigma 0.2 -o blobs.mrsc
//
// With -firehose it instead emits a timestamped stream for the sliding-
// window engine: drifting Twitter-style hotspots over background noise,
// one "tick id x y" line per point, in tick order. Feed it to a stream
// via the /api/v1/streams API or replay it in tests.
//
//	genpoints -firehose -ticks 60 -per-tick 5000 -seed 42 -o firehose.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/ptio"
)

func main() {
	var (
		dist   = flag.String("dist", "twitter", "distribution: twitter | sdss | uniform | blobs")
		n      = flag.Int("n", 100_000, "number of points")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "points.mrsc", "output file")
		format = flag.String("format", "bin", "output format: bin | text")
		blobs  = flag.Int("blobs", 10, "blob count (blobs distribution)")
		sigma  = flag.Float64("sigma", 0.2, "blob spread (blobs distribution)")
		weight = flag.Bool("weight", false, "include the per-point weight field")

		firehose = flag.Bool("firehose", false, "generate a timestamped firehose stream instead of a static dataset")
		ticks    = flag.Int("ticks", 60, "firehose: number of ticks")
		perTick  = flag.Int("per-tick", 1000, "firehose: points per tick")
	)
	flag.Parse()
	var err error
	if *firehose {
		err = runFirehose(*ticks, *perTick, *seed, *out)
	} else {
		err = run(*dist, *n, *seed, *out, *format, *blobs, *sigma, *weight)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genpoints:", err)
		os.Exit(1)
	}
}

// runFirehose writes one "tick id x y" text line per point, tick-major,
// so the file replays in arrival order.
func runFirehose(ticks, perTick int, seed int64, out string) error {
	if ticks <= 0 || perTick <= 0 {
		return fmt.Errorf("firehose needs positive -ticks and -per-tick, got %d and %d", ticks, perTick)
	}
	batches := dataset.Firehose(ticks, perTick, seed, dataset.DefaultFirehoseOptions())
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for ti, batch := range batches {
		for _, p := range batch {
			fmt.Fprintf(w, "%d %d %g %g\n", ti, p.ID, p.X, p.Y)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d firehose points (%d ticks x %d) to %s\n", ticks*perTick, ticks, perTick, out)
	return f.Close()
}

func run(dist string, n int, seed int64, out, format string, blobs int, sigma float64, weight bool) error {
	var pts []geom.Point
	world := geom.Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}
	switch dist {
	case "twitter":
		pts = dataset.Twitter(n, seed)
	case "sdss":
		pts = dataset.SDSS(n, seed)
	case "uniform":
		pts = dataset.Uniform(n, seed, world)
	case "blobs":
		pts = dataset.Blobs(n, blobs, sigma, seed, world)
	default:
		return fmt.Errorf("unknown distribution %q", dist)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "bin":
		err = ptio.WriteDataset(f, pts, weight)
	case "text":
		err = ptio.WriteText(f, pts, weight)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d %s points to %s (%s)\n", n, dist, out, format)
	return f.Close()
}
