// Command render draws a clustered output (MRSL file) as a PPM image or
// ASCII art — the quickest way to eyeball a Mr. Scan result, in the
// spirit of the paper's Figure 2 renderings of partitioned tweets.
//
// Usage:
//
//	render -input clusters.mrsl -o clusters.ppm -w 1200 -h 800
//	render -input clusters.mrsl -ascii -w 120 -h 40
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/geom"
	"repro/internal/ptio"
	"repro/internal/viz"
)

func main() {
	var (
		input  = flag.String("input", "", "MRSL labeled file (required)")
		out    = flag.String("o", "clusters.ppm", "output PPM file")
		width  = flag.Int("w", 1024, "raster width")
		height = flag.Int("h", 768, "raster height")
		ascii  = flag.Bool("ascii", false, "print ASCII art to stdout instead of writing a PPM")
		noise  = flag.Bool("noise", true, "draw noise points (gray / ',')")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "render: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*input, *out, *width, *height, *ascii, *noise); err != nil {
		fmt.Fprintln(os.Stderr, "render:", err)
		os.Exit(1)
	}
}

func run(input, out string, width, height int, ascii, noise bool) error {
	f, err := os.Open(input)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := ptio.ReadLabeled(f)
	if err != nil {
		return err
	}
	pts := make([]geom.Point, len(records))
	labels := make([]int, len(records))
	for i, lp := range records {
		pts[i] = lp.Point
		labels[i] = int(lp.Cluster)
	}
	if ascii {
		art, err := viz.ASCII(pts, labels, width, height, noise)
		if err != nil {
			return err
		}
		fmt.Print(art)
		return nil
	}
	dst, err := os.Create(out)
	if err != nil {
		return err
	}
	defer dst.Close()
	if err := viz.WritePPM(dst, pts, labels, viz.Options{
		Width: width, Height: height, ShowNoise: noise,
	}); err != nil {
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	fmt.Printf("rendered %d points to %s (%dx%d)\n", len(records), out, width, height)
	return nil
}
