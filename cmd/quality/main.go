// Command quality evaluates a Mr. Scan output with the paper's §5.1.3
// metric (the DBDC score, Figure 11): either against a sequential DBSCAN
// run on the original input, or against a second labeled output.
//
// Usage:
//
//	quality -input tweets.mrsc -output clusters.mrsl -eps 0.1 -minpts 40
//	quality -a run1.mrsl -b run2.mrsl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dbscan"
	"repro/internal/ptio"
	"repro/internal/quality"
)

func main() {
	var (
		input  = flag.String("input", "", "MRSC input dataset (reference mode)")
		output = flag.String("output", "", "MRSL labeled output to score (reference mode)")
		eps    = flag.Float64("eps", 0.1, "DBSCAN Eps for the reference run")
		minPts = flag.Int("minpts", 40, "DBSCAN MinPts for the reference run")
		fileA  = flag.String("a", "", "first MRSL output (comparison mode)")
		fileB  = flag.String("b", "", "second MRSL output (comparison mode)")
	)
	flag.Parse()
	var err error
	switch {
	case *fileA != "" && *fileB != "":
		err = compareOutputs(*fileA, *fileB)
	case *input != "" && *output != "":
		err = scoreAgainstReference(*input, *output, *eps, *minPts)
	default:
		fmt.Fprintln(os.Stderr, "quality: need either -input/-output or -a/-b")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "quality:", err)
		os.Exit(1)
	}
}

func readLabeled(name string) (map[uint64]int64, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := ptio.ReadLabeled(f)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]int64, len(records))
	for _, lp := range records {
		if _, dup := out[lp.Point.ID]; dup {
			return nil, fmt.Errorf("%s: point %d labeled twice", name, lp.Point.ID)
		}
		out[lp.Point.ID] = lp.Cluster
	}
	return out, nil
}

func scoreAgainstReference(input, output string, eps float64, minPts int) error {
	in, err := os.Open(input)
	if err != nil {
		return err
	}
	defer in.Close()
	pts, err := ptio.ReadDataset(in)
	if err != nil {
		return err
	}
	fmt.Printf("running sequential DBSCAN on %d points (eps=%g minPts=%d)...\n", len(pts), eps, minPts)
	ref, err := dbscan.Cluster(pts, dbscan.Params{Eps: eps, MinPts: minPts}, dbscan.IndexGrid)
	if err != nil {
		return err
	}
	got, err := readLabeled(output)
	if err != nil {
		return err
	}
	labels := make([]int, len(pts))
	for i, p := range pts {
		if c, ok := got[p.ID]; ok {
			labels[i] = int(c)
		} else {
			labels[i] = quality.Noise
		}
	}
	score, err := quality.Score(ref.Labels, labels)
	if err != nil {
		return err
	}
	fmt.Printf("reference clusters: %d\n", ref.NumClusters)
	fmt.Printf("quality score:      %.5f  (paper's Figure 11 floor: 0.995)\n", score)
	return nil
}

func compareOutputs(fileA, fileB string) error {
	a, err := readLabeled(fileA)
	if err != nil {
		return err
	}
	b, err := readLabeled(fileB)
	if err != nil {
		return err
	}
	// Align by point ID over the union of both outputs; absent = noise.
	ids := make(map[uint64]bool, len(a)+len(b))
	for id := range a {
		ids[id] = true
	}
	for id := range b {
		ids[id] = true
	}
	la := make([]int, 0, len(ids))
	lb := make([]int, 0, len(ids))
	for id := range ids {
		la = append(la, labelOf(a, id))
		lb = append(lb, labelOf(b, id))
	}
	score, err := quality.Score(la, lb)
	if err != nil {
		return err
	}
	fmt.Printf("points compared: %d\n", len(ids))
	fmt.Printf("quality score:   %.5f\n", score)
	return nil
}

func labelOf(m map[uint64]int64, id uint64) int {
	if c, ok := m[id]; ok {
		return int(c)
	}
	return quality.Noise
}
