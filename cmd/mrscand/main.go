// Command mrscand serves the Mr. Scan pipeline as a long-running,
// overload-robust clustering service. Tenants POST jobs to the HTTP
// API; the server applies admission control (bounded per-tenant queues,
// point quotas, circuit breakers), schedules jobs across a worker pool
// with per-job deadlines and phase retries, sheds load gracefully by
// degrading to subsampled clustering past the overload watermarks, and
// drains on SIGTERM — admission stops, in-flight jobs get the drain
// deadline to finish, and whatever remains is checkpointed to the state
// directory for the next instance to resume.
//
// The state directory is crash-consistent, not merely restart-
// consistent: a job's spec, input, and queued record are fsynced (files
// and directories, in write-ahead order) before Submit acknowledges it,
// so an acknowledged job survives power failure, not just a graceful
// drain. On startup the previous instance's journal is replayed — a
// torn final record (crash mid-append) is repaired and counted, while
// interior journal corruption refuses startup loudly rather than
// guessing.
//
//	mrscand -addr :8080 -state-dir /var/lib/mrscand
//
//	curl -s localhost:8080/api/v1/jobs -d '{"tenant":"acme",
//	  "eps":0.1,"min_pts":20,"dataset":{"dist":"twitter","n":4000}}'
//	curl -s localhost:8080/api/v1/jobs/job-000001
//	curl -s localhost:8080/api/v1/jobs/job-000001/result
//	curl -s localhost:8080/metrics
//
// Long-lived sliding-window streams live next to the batch jobs: create
// one with POST /api/v1/streams, feed ticks of timestamped points to
// .../points, and read labels from .../clusters or .../snapshot. Stream
// windows are checkpointed to the state directory on every tick, so a
// restarted instance recovers each stream with its labels intact.
//
//	curl -s localhost:8080/api/v1/streams -d '{"tenant":"acme",
//	  "eps":0.1,"min_pts":10,"window_ticks":30}'
//	curl -s localhost:8080/api/v1/streams/stream-000001/points \
//	  -d '{"points":[{"id":1,"x":0.5,"y":0.5}]}'
//	curl -s localhost:8080/api/v1/streams/stream-000001/clusters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/health"
	"repro/internal/mrscan"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		workers      = flag.Int("workers", 2, "concurrent pipeline executors")
		queueTenant  = flag.Int("queue-per-tenant", 16, "queued-job bound per tenant")
		queueTotal   = flag.Int("queue-total", 0, "queued-job bound across tenants (0 = 4x per-tenant)")
		quota        = flag.Int64("tenant-quota", 4<<20, "queued+running input-point quota per tenant (<0 disables)")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "per-job deadline")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "grace for in-flight jobs on SIGTERM before suspension")
		retries      = flag.Int("retries", 3, "per-phase retry attempts per job")
		breaker      = flag.Int("breaker-threshold", 3, "consecutive failures tripping a tenant breaker (<0 disables)")
		cooldown     = flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker rejects admissions")
		degradeDepth = flag.Int("degrade-queue-depth", 0, "queue-depth watermark for degraded mode (0 = 3/4 of queue-total, <0 disables)")
		degradeP95   = flag.Duration("degrade-p95", 0, "p95 job-latency watermark for degraded mode (0 disables)")
		sampleRate   = flag.Float64("sample-rate", 0.8, "degraded-mode subsample rate in (0,1)")
		stateDir     = flag.String("state-dir", "", "durable directory for drain/resume (empty disables)")
		streamsCap   = flag.Int("streams-per-tenant", 4, "concurrent sliding-window streams per tenant (<0 disables the cap)")
		retryBudget  = flag.Int("health-retry-budget", 0, "shared phase-retry token budget across all jobs (0 = unlimited); exhaustion fails jobs loudly instead of retrying")
		retryRefill  = flag.Float64("health-retry-refill", 1, "retry-budget tokens refilled per second")
	)
	flag.Parse()

	retry := mrscan.RetryPolicy{MaxAttempts: *retries, Backoff: 10 * time.Millisecond}
	if *retryBudget > 0 {
		retry.Budget = health.NewBudget(*retryBudget, *retryRefill)
	}

	s, err := server.New(server.Config{
		Workers:           *workers,
		QueuePerTenant:    *queueTenant,
		QueueTotal:        *queueTotal,
		TenantQuota:       *quota,
		JobTimeout:        *jobTimeout,
		DrainTimeout:      *drainTimeout,
		Retry:             retry,
		BreakerThreshold:  *breaker,
		BreakerCooldown:   *cooldown,
		DegradeQueueDepth: *degradeDepth,
		DegradeP95:        *degradeP95,
		SampleRate:        *sampleRate,
		StateDir:          *stateDir,
		StreamsPerTenant:  *streamsCap,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrscand: %v\n", err)
		os.Exit(1)
	}
	if n := len(s.Jobs()); n > 0 {
		log.Printf("mrscand: recovered %d journaled job(s) from %s", n, *stateDir)
	}
	if n := len(s.Streams()); n > 0 {
		log.Printf("mrscand: recovered %d stream(s) with windows intact from %s", n, *stateDir)
	}
	if torn := s.Hub().Counter("server_journal_torn_tail_total").Value(); torn > 0 {
		log.Printf("mrscand: repaired a torn journal tail (crash mid-append) in %s", *stateDir)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("mrscand: serving on %s (workers=%d, state-dir=%q)", *addr, *workers, *stateDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("mrscand: %v: draining (grace %v)", sig, *drainTimeout)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "mrscand: http: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Stop admission and give in-flight jobs the drain grace; whatever
	// does not finish is suspended with its checkpoints staged to the
	// state directory for the next instance.
	s.Drain()
	s.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx)
	suspended := 0
	for _, st := range s.Jobs() {
		if st.State == server.StateSuspended {
			suspended++
		}
	}
	if suspended > 0 {
		log.Printf("mrscand: drained; %d jobs suspended for resume from %q", suspended, *stateDir)
	} else {
		log.Printf("mrscand: drained clean")
	}
}
