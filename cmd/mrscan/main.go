// Command mrscan runs the full Mr. Scan pipeline on a dataset file:
// it loads the input into the simulated parallel file system, executes
// the four phases (partition → cluster → merge → sweep), writes the
// labeled output back to the local file system, and prints the per-phase
// breakdown the paper's evaluation reports.
//
// Usage:
//
//	mrscan -input tweets.mrsc -output clusters.mrsl -eps 0.1 -minpts 40 -leaves 8
//	mrscan -input sky.mrsc -eps 0.00015 -minpts 5 -leaves 16 -v
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/faultinject"
	"repro/internal/lustre"
	"repro/internal/mrscan"
	"repro/internal/ptio"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

func main() {
	var (
		input      = flag.String("input", "", "input MRSC dataset file (required)")
		output     = flag.String("output", "clusters.mrsl", "output labeled file")
		eps        = flag.Float64("eps", 0.1, "DBSCAN Eps")
		minPts     = flag.Int("minpts", 40, "DBSCAN MinPts")
		leaves     = flag.Int("leaves", 8, "cluster-phase leaf processes (one simulated GPGPU each)")
		partNodes  = flag.Int("partnodes", 0, "partitioner processes (default leaves/16, min 1)")
		denseBox   = flag.Bool("densebox", true, "enable the dense box optimization (§3.2.3)")
		shadowReps = flag.Bool("shadowreps", false, "enable representative shadow regions (§3.1.3)")
		noise      = flag.Bool("noise", false, "include noise points (cluster -1) in the output")
		weight     = flag.Bool("weight", false, "input records carry the weight field")
		direct     = flag.Bool("direct", false, "send partitions over the network instead of the file system (§6 future work)")
		writeAgg   = flag.Bool("write-aggregation", false, "log-structured partition writes: sequential per-leaf segment appends instead of small random writes (§5.1.1), pipelining the cluster phase over durable partitions")
		hotCell    = flag.Int64("hotcell", 0, "subdivide cells holding more points than this (§5.1.2 future work; 0 = off)")
		reclaim    = flag.Bool("reclaim", false, "feed shadow-view border observations back during the sweep (beyond-paper fix)")
		tcpMerge   = flag.Bool("tcpmerge", false, "run the merge phase over real TCP sockets")
		topology   = flag.String("topology", "", "explicit cluster-tree spec, e.g. 2x16 (leaf product must equal -leaves)")
		format     = flag.String("format", "bin", "input format: bin (MRSC) | text (id x y [w] lines)")
		verbose    = flag.Bool("v", false, "print simulated-hardware accounting")
		retries    = flag.Int("retries", 1, "attempts per phase before a transient fault is fatal (1 = no retry)")
		faultPlan  = flag.String("fault-plan", "", "fault injection plan, e.g. 'lustre.io:after=100,times=2;mrnet.node:times=1' (see internal/faultinject)")
		faultSeed  = flag.Int64("fault-seed", 1, "RNG seed for probabilistic fault rules")
		ckpt       = flag.Bool("checkpoint", false, "write verified phase snapshots and stage them to -checkpoint-dir")
		resume     = flag.Bool("resume", false, "restart from the last valid checkpoint in -checkpoint-dir (implies -checkpoint)")
		ckptDir    = flag.String("checkpoint-dir", ".mrscan-ckpt", "directory holding checkpoint state across process restarts")
		deadline   = flag.Duration("deadline", 0, "abort the run after this long (0 = none); completed phases stay checkpointed")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON of the run (open in chrome://tracing or Perfetto)")
		metricsOut = flag.String("metrics-out", "", "write the run's metrics in Prometheus text format")
		reportOut  = flag.String("report-out", "", "write a structured per-run JSON report (phase breakdown + metrics)")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "mrscan: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := mrscan.Default(*eps, *minPts, *leaves)
	cfg.PartitionLeaves = *partNodes
	cfg.DenseBox = *denseBox
	cfg.ShadowReps = *shadowReps
	cfg.IncludeNoise = *noise
	cfg.HasWeight = *weight
	cfg.DirectPartitions = *direct
	cfg.WriteAggregation = *writeAgg
	cfg.HotCellThreshold = *hotCell
	cfg.ReclaimBorders = *reclaim
	cfg.MergeOverTCP = *tcpMerge
	cfg.Topology = *topology
	cfg.Retry = mrscan.RetryPolicy{MaxAttempts: *retries}
	plan, err := faultinject.Parse(*faultPlan, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrscan:", err)
		os.Exit(2)
	}
	cfg.FaultPlan = plan
	cfg.Checkpoint = *ckpt
	cfg.Resume = *resume
	exp := exports{trace: *traceOut, metrics: *metricsOut, report: *reportOut}
	if err := run(*input, *output, cfg, *format, *verbose, *ckptDir, *deadline, exp); err != nil {
		fmt.Fprintln(os.Stderr, "mrscan:", err)
		os.Exit(1)
	}
}

// exports holds the telemetry output paths; empty paths disable the
// corresponding exporter.
type exports struct {
	trace, metrics, report string
}

func (e exports) any() bool { return e.trace != "" || e.metrics != "" || e.report != "" }

// write dumps the hub through every configured exporter. It runs even
// after a failed run so the trace shows what happened up to the abort.
func (e exports) write(hub *telemetry.Hub) error {
	writeTo := func(path string, f func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := f(out); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	}
	if err := writeTo(e.trace, hub.Trace.WriteChromeTrace); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := writeTo(e.metrics, hub.Metrics.WritePrometheus); err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	if err := writeTo(e.report, func(w io.Writer) error { return telemetry.WriteReport(w, hub) }); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	return nil
}

func run(input, output string, cfg mrscan.Config, format string, verbose bool, ckptDir string, deadline time.Duration, exp exports) error {
	fs := lustre.New(lustre.Titan(), nil)
	if exp.any() {
		cfg.Telemetry = telemetry.New(fs.Clock())
	}
	// Stage the real input file onto the simulated PFS, converting text
	// input to the binary format the pipeline consumes ("the input
	// points are contained in a single binary or text file", §3).
	src, err := os.Open(input)
	if err != nil {
		return err
	}
	defer src.Close()
	dst := fs.Create("input.mrsc")
	switch format {
	case "bin":
		if _, err := io.Copy(dst, src); err != nil {
			return fmt.Errorf("staging input: %w", err)
		}
	case "text":
		pts, err := ptio.ReadText(src)
		if err != nil {
			return fmt.Errorf("parsing text input: %w", err)
		}
		if err := ptio.WriteDataset(dst, pts, cfg.HasWeight); err != nil {
			return fmt.Errorf("staging input: %w", err)
		}
	default:
		return fmt.Errorf("unknown input format %q", format)
	}

	if cfg.Resume {
		if err := mrscan.StageStateIn(fs, ckptDir); err != nil {
			return fmt.Errorf("staging checkpoint state in: %w", err)
		}
	}
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	res, err := mrscan.RunContext(ctx, fs, "input.mrsc", "output.mrsl", cfg)
	if cfg.Telemetry != nil {
		// Export even on failure: a trace of an aborted run is exactly
		// what you want when diagnosing it.
		if xerr := exp.write(cfg.Telemetry); xerr != nil {
			fmt.Fprintln(os.Stderr, "mrscan:", xerr)
		}
	}
	if cfg.Checkpoint || cfg.Resume {
		// Stage state out even on failure: the snapshots written before
		// the abort are what the next -resume run restarts from.
		if serr := mrscan.StageStateOut(fs, ckptDir); serr != nil {
			fmt.Fprintln(os.Stderr, "mrscan: staging checkpoint state out:", serr)
		}
	}
	if err != nil {
		if res != nil && len(res.CompletedPhases) > 0 {
			fmt.Fprintf(os.Stderr, "mrscan: phases completed before abort: %v (rerun with -resume to continue)\n",
				res.CompletedPhases)
		}
		return err
	}
	if len(res.RestoredPhases) > 0 {
		fmt.Printf("resumed: phases restored from checkpoints: %v\n", res.RestoredPhases)
	}

	// Copy the labeled output back out.
	out, err := fs.Open("output.mrsl")
	if err != nil {
		return err
	}
	records, err := sweep.ReadOutput(fs, "output.mrsl")
	if err != nil {
		return err
	}
	dstFile, err := os.Create(output)
	if err != nil {
		return err
	}
	defer dstFile.Close()
	if _, err := io.Copy(dstFile, out); err != nil {
		return fmt.Errorf("writing output: %w", err)
	}
	if err := dstFile.Close(); err != nil {
		return err
	}

	fmt.Printf("input points:      %d\n", res.Stats.TotalPoints)
	fmt.Printf("clusters found:    %d\n", res.NumClusters)
	fmt.Printf("points in output:  %d (noise skipped: %d)\n", res.Stats.OutputPoints, res.Stats.NoiseSkipped)
	fmt.Printf("dense boxes:       %d (eliminated %d points)\n", res.Stats.DenseBoxes, res.Stats.DenseBoxPoints)
	fmt.Println("phase breakdown (wall):")
	fmt.Printf("  partition        %12v\n", res.Times.Partition)
	fmt.Printf("  cluster          %12v  (GPGPU DBSCAN, slowest leaf: %v)\n", res.Times.Cluster, res.Times.GPUDBSCAN)
	fmt.Printf("  merge            %12v\n", res.Times.Merge)
	fmt.Printf("  sweep            %12v\n", res.Times.Sweep)
	fmt.Printf("  total            %12v\n", res.Times.Total)
	fmt.Printf("simulated hardware time: %v\n", res.Stats.SimNow)
	if res.Stats.FaultsInjected > 0 || res.Times.Retries() > 0 || res.Stats.NetRecoveries > 0 {
		fmt.Printf("faults injected: %d (phase retries: %d, overlay node recoveries: %d)\n",
			res.Stats.FaultsInjected, res.Times.Retries(), res.Stats.NetRecoveries)
	}

	// Cluster size histogram (top 10).
	sizes := map[int64]int{}
	for _, lp := range records {
		if lp.Cluster >= 0 {
			sizes[lp.Cluster]++
		}
	}
	type cs struct {
		id int64
		n  int
	}
	var top []cs
	for id, n := range sizes {
		top = append(top, cs{id, n})
	}
	sort.Slice(top, func(a, b int) bool {
		if top[a].n != top[b].n {
			return top[a].n > top[b].n
		}
		return top[a].id < top[b].id
	})
	if len(top) > 10 {
		top = top[:10]
	}
	fmt.Println("largest clusters:")
	for _, c := range top {
		fmt.Printf("  cluster %-6d %8d points\n", c.id, c.n)
	}

	if verbose {
		fmt.Println("simulated resource accounting:")
		for _, r := range fs.Clock().Snapshot() {
			fmt.Printf("  %v\n", r)
		}
	}
	return nil
}
