// Command chaos runs the seeded end-to-end integrity harness: each seed
// generates a random fault schedule (errors, silent bit flips, node
// kills, stragglers, process death), runs the full pipeline under it,
// and audits the invariants — labels match a fault-free reference (or
// quality ≥ the floor, or a loud fail-stop), every injected corruption
// is detected/masked/latent with zero silent escapes, and the run stays
// inside its wall-time bound.
//
//	chaos -seeds 20                 # seeds 1..20
//	chaos -seeds 5 -seed-base 100   # seeds 100..104
//	chaos -seeds 20 -out report.json
//
// With -mode overload it instead storms the job server: multi-tenant
// bursts past queue capacity with seeded faults, a mid-campaign drain
// and restart on the same state directory, and the serving-contract
// audit — typed rejections only, zero silent drops, quality floors met.
//
//	chaos -mode overload -seeds 10
//
// With -mode crash it simulates power failure instead of runtime
// faults: a probe run enumerates every durability-relevant file-system
// operation, then each sampled operation becomes a crash point — power
// is lost exactly there, unsynced writes drop and tear, unsynced
// renames vanish — and the restarted process must lose nothing it
// acknowledged: checkpointed phases restore instead of recomputing,
// journaled jobs are re-admitted and terminate, recovery is idempotent
// under a second crash, and the final labels equal the fault-free
// reference exactly. The -drop-syncs / -drop-dir-syncs mutation flags
// turn chosen fsyncs into lies; a correct harness must then FAIL.
//
//	chaos -mode crash -seeds 10 -crash-points 20
//	chaos -mode crash -seeds 2 -drop-syncs '*.ckpt*'   # must FAIL
//
// With -mode stream it audits the sliding-window streaming engine: a
// seeded firehose is fed through the server with a drain/restart in the
// middle, invalid batches are injected along the way, and after every
// tick the served labels must exactly equal a fault-free reference
// engine fed the same sequence.
//
//	chaos -mode stream -seeds 10
//
// With -mode gray it injects gray failures — faults that pass every
// liveness check: a 20x-slow worker, a flapping tree link, a degraded
// OST, transient phase errors under an exhausted retry budget — and
// audits the adaptive health layer: sick components quarantined within
// -gray-quarantine-dispatches dispatches with zero false quarantines,
// labels byte-identical to a fault-free reference, retry spend inside
// the shared token budget, and wall time within -gray-wall-factor of
// the healthy baseline.
//
//	chaos -mode gray -seeds 5
//	chaos -mode gray -seeds 5 -gray-workers 8 -gray-slow-factor 20
//
// Exit status is nonzero if any run FAILs (loud fail-stop runs are
// acceptable; silent corruption, bad labels, or dropped jobs are not).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	var (
		mode     = flag.String("mode", "pipeline", "campaign kind: pipeline | overload | crash | stream")
		seeds    = flag.Int("seeds", 20, "number of seeded schedules to run")
		seedBase = flag.Int64("seed-base", 1, "first seed")
		points   = flag.Int("points", 0, "dataset points per run (0 = mode default)")
		leaves   = flag.Int("leaves", 0, "cluster-phase leaves (0 = mode default)")
		rate     = flag.Float64("fault-rate", 0, "fault schedule intensity in (0,1] (0 = mode default)")
		duration = flag.Duration("duration", 2*time.Minute, "wall-time bound per run")
		floor    = flag.Float64("quality-floor", 0, "minimum DBDC quality vs the fault-free reference (0 = mode default)")
		tenants  = flag.Int("tenants", 0, "overload mode: concurrent tenants (0 = default)")
		jobs     = flag.Int("jobs-per-tenant", 0, "overload mode: burst size per tenant (0 = default)")
		out      = flag.String("out", "", "write the JSON campaign report to this file")

		crashPoints  = flag.Int("crash-points", 0, "crash mode: pipeline crash points per seed (0 = default, <0 disables the leg)")
		journalPts   = flag.Int("journal-crash-points", 0, "crash mode: job-journal crash points per seed (0 = default, <0 disables the leg)")
		journalJobs  = flag.Int("journal-jobs", 0, "crash mode: submit burst size of the journal workload (0 = default)")
		dropSyncs    = flag.String("drop-syncs", "", "crash mode mutation: file fsyncs matching this pattern silently lie (campaign must FAIL)")
		dropDirSyncs = flag.Bool("drop-dir-syncs", false, "crash mode mutation: every directory sync silently lies (campaign must FAIL)")

		ticks   = flag.Int("ticks", 0, "stream mode: firehose length in ticks (0 = default)")
		perTick = flag.Int("per-tick", 0, "stream mode: points per tick (0 = default)")
		window  = flag.Int("window-ticks", 0, "stream mode: sliding window in ticks (0 = default)")

		grayWorkers    = flag.Int("gray-workers", 0, "gray mode: dispatch fleet size (0 = default 8)")
		grayPartitions = flag.Int("gray-partitions", 0, "gray mode: partitions per dispatch (0 = default 72)")
		graySlow       = flag.Int("gray-slow-factor", 0, "gray mode: slowdown of the limping worker (0 = default 20)")
		grayBudget     = flag.Int("gray-retry-budget", 0, "gray mode: shared retry token budget per leg (0 = default 64)")
		grayWall       = flag.Float64("gray-wall-factor", 0, "gray mode: wall-time bound vs healthy baseline (0 = default 1.5)")
		grayK          = flag.Int("gray-quarantine-dispatches", 0, "gray mode: dispatches allowed before quarantine (0 = default 2)")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	switch *mode {
	case "pipeline":
		opt := chaos.Options{
			Seeds:        chaos.Seeds(*seedBase, *seeds),
			Points:       *points,
			Leaves:       *leaves,
			FaultRate:    *rate,
			RunTimeout:   *duration,
			QualityFloor: *floor,
			Logf:         logf,
		}
		rpt := chaos.Run(opt)
		writeReport(*out, rpt)
		fmt.Printf("chaos: %d runs: %d ok, %d faulted (fail-stop), %d FAILED\n",
			len(rpt.Runs), rpt.OK, rpt.Faulted, rpt.Failed)
		if rpt.Failed > 0 {
			for _, r := range rpt.Runs {
				if r.Outcome == chaos.OutcomeFail {
					fmt.Printf("  seed %d: %s\n", r.Seed, r.Reason)
				}
			}
			os.Exit(1)
		}
	case "overload":
		rpt := chaos.RunOverload(chaos.OverloadOptions{
			Seeds:         chaos.Seeds(*seedBase, *seeds),
			Tenants:       *tenants,
			JobsPerTenant: *jobs,
			Points:        *points,
			Leaves:        *leaves,
			FaultRate:     *rate,
			RunTimeout:    *duration,
			DegradedFloor: *floor,
			Logf:          logf,
		})
		writeReport(*out, rpt)
		fmt.Printf("chaos overload: %d runs: %d ok, %d FAILED\n",
			len(rpt.Runs), rpt.OK, rpt.Failed)
		if rpt.Failed > 0 {
			for _, r := range rpt.Runs {
				if r.Outcome == chaos.OutcomeFail {
					fmt.Printf("  seed %d: %s\n", r.Seed, r.Reason)
				}
			}
			os.Exit(1)
		}
	case "crash":
		rpt := chaos.RunCrash(chaos.CrashOptions{
			Seeds:              chaos.Seeds(*seedBase, *seeds),
			Points:             *points,
			Leaves:             *leaves,
			CrashPoints:        *crashPoints,
			JournalCrashPoints: *journalPts,
			JournalJobs:        *journalJobs,
			RunTimeout:         *duration,
			DropSyncs:          *dropSyncs,
			DropDirSyncs:       *dropDirSyncs,
			Logf:               logf,
		})
		writeReport(*out, rpt)
		fmt.Printf("chaos crash: %d seeds, %d crash points: %d ok, %d FAILED\n",
			len(rpt.Runs), rpt.CrashPoints, rpt.OK, rpt.Failed)
		if rpt.Failed > 0 {
			for _, r := range rpt.Runs {
				if r.Outcome == chaos.OutcomeFail {
					fmt.Printf("  seed %d: %s\n", r.Seed, r.Reason)
				}
			}
			os.Exit(1)
		}
	case "stream":
		rpt := chaos.RunStream(chaos.StreamOptions{
			Seeds:       chaos.Seeds(*seedBase, *seeds),
			Ticks:       *ticks,
			PerTick:     *perTick,
			WindowTicks: *window,
			RunTimeout:  *duration,
			Logf:        logf,
		})
		writeReport(*out, rpt)
		fmt.Printf("chaos stream: %d runs: %d ok, %d FAILED\n",
			len(rpt.Runs), rpt.OK, rpt.Failed)
		if rpt.Failed > 0 {
			for _, r := range rpt.Runs {
				if r.Outcome == chaos.OutcomeFail {
					fmt.Printf("  seed %d: %s\n", r.Seed, r.Reason)
				}
			}
			os.Exit(1)
		}
	case "gray":
		rpt := chaos.RunGray(chaos.GrayOptions{
			Seeds:                   chaos.Seeds(*seedBase, *seeds),
			Workers:                 *grayWorkers,
			Partitions:              *grayPartitions,
			Points:                  *points,
			SlowFactor:              *graySlow,
			RetryBudget:             *grayBudget,
			WallFactor:              *grayWall,
			MaxQuarantineDispatches: *grayK,
			RunTimeout:              *duration,
			Logf:                    logf,
		})
		writeReport(*out, rpt)
		fmt.Printf("chaos gray: %d runs: %d ok, %d FAILED\n",
			len(rpt.Runs), rpt.OK, rpt.Failed)
		if rpt.Failed > 0 {
			for _, r := range rpt.Runs {
				for _, l := range r.Legs {
					if !l.OK {
						fmt.Printf("  seed %d leg %s: %s\n", r.Seed, l.Name, l.Reason)
					}
				}
			}
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "chaos: unknown -mode %q (want pipeline, overload, crash, stream or gray)\n", *mode)
		os.Exit(2)
	}
}

func writeReport(path string, rpt any) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(rpt, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: encoding report: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: writing report: %v\n", err)
		os.Exit(1)
	}
}
