// Command chaos runs the seeded end-to-end integrity harness: each seed
// generates a random fault schedule (errors, silent bit flips, node
// kills, stragglers, process death), runs the full pipeline under it,
// and audits the invariants — labels match a fault-free reference (or
// quality ≥ the floor, or a loud fail-stop), every injected corruption
// is detected/masked/latent with zero silent escapes, and the run stays
// inside its wall-time bound.
//
//	chaos -seeds 20                 # seeds 1..20
//	chaos -seeds 5 -seed-base 100   # seeds 100..104
//	chaos -seeds 20 -out report.json
//
// Exit status is nonzero if any run FAILs (loud fail-stop runs are
// acceptable; silent corruption or bad labels are not).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 20, "number of seeded schedules to run")
		seedBase = flag.Int64("seed-base", 1, "first seed")
		points   = flag.Int("points", 6000, "dataset points per run")
		leaves   = flag.Int("leaves", 4, "cluster-phase leaves")
		rate     = flag.Float64("fault-rate", 0.6, "fault schedule intensity in (0,1]")
		duration = flag.Duration("duration", 2*time.Minute, "wall-time bound per run")
		floor    = flag.Float64("quality-floor", 0.995, "minimum DBDC quality vs the fault-free reference")
		out      = flag.String("out", "", "write the JSON campaign report to this file")
	)
	flag.Parse()

	opt := chaos.Options{
		Seeds:        chaos.Seeds(*seedBase, *seeds),
		Points:       *points,
		Leaves:       *leaves,
		FaultRate:    *rate,
		RunTimeout:   *duration,
		QualityFloor: *floor,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	rpt := chaos.Run(opt)

	if *out != "" {
		data, err := json.MarshalIndent(rpt, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: encoding report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: writing report: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("chaos: %d runs: %d ok, %d faulted (fail-stop), %d FAILED\n",
		len(rpt.Runs), rpt.OK, rpt.Faulted, rpt.Failed)
	if rpt.Failed > 0 {
		for _, r := range rpt.Runs {
			if r.Outcome == chaos.OutcomeFail {
				fmt.Printf("  seed %d: %s\n", r.Seed, r.Reason)
			}
		}
		os.Exit(1)
	}
}
