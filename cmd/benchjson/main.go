// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON file, so CI can archive benchmark runs and
// tooling can diff them across commits.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson -o BENCH_run.json
//	go run ./cmd/benchjson -o BENCH_run.json bench.txt
//
// It understands the standard benchmark line —
//
//	BenchmarkName-8   1000000   1234 ns/op   512 B/op   3 allocs/op
//
// — including custom metrics (any extra "value unit" pairs), and tags
// each benchmark with the `pkg:` header it appeared under. Lines that
// are not benchmark results (test output, PASS/ok) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Package     string  `json:"package,omitempty"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any custom b.ReportMetric units beyond the three
	// standard ones, keyed by unit (e.g. "quality/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is the output document.
type Run struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_run.json", "output JSON file (- for stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	run, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := write(*out, run); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(run.Benchmarks), *out)
}

func write(path string, run *Run) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(run)
}

func parse(in io.Reader) (*Run, error) {
	run := &Run{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "):
			run.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			run.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue // sub-benchmark log output starting with "Benchmark"
		}
		b.Package = pkg
		run.Benchmarks = append(run.Benchmarks, b)
	}
	return run, sc.Err()
}

// parseLine parses one result line: name, iteration count, then
// "value unit" pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
			seenNs = true
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, seenNs
}
