// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON file, so CI can archive benchmark runs and
// tooling can diff them across commits, and compares a run against a
// committed baseline to gate performance regressions.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson -o BENCH_run.json
//	go run ./cmd/benchjson -o BENCH_run.json bench.txt
//	go run ./cmd/benchjson -compare BENCH_seed.json -match '^BenchmarkCluster' BENCH_run.json
//
// It understands the standard benchmark line —
//
//	BenchmarkName-8   1000000   1234 ns/op   512 B/op   3 allocs/op
//
// — including custom metrics (any extra "value unit" pairs), and tags
// each benchmark with the `pkg:` header it appeared under. Lines that
// are not benchmark results (test output, PASS/ok) are ignored.
//
// With -compare, the input (a JSON document produced by an earlier
// benchjson run, or raw bench text) is matched against the baseline by
// package + name — the host's GOMAXPROCS suffix ("-8") is stripped, so
// baselines transfer between machines with different core counts — and
// the command exits nonzero if any matched benchmark's wall clock
// (ns/op) regressed by more than -threshold percent, or if a baseline
// benchmark selected by -match is missing from the run (deleting the
// gated benchmark must not pass the gate).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Package     string  `json:"package,omitempty"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any custom b.ReportMetric units beyond the three
	// standard ones, keyed by unit (e.g. "quality/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is the output document.
type Run struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_run.json", "output JSON file (- for stdout)")
	compare := flag.String("compare", "", "baseline JSON file; compare the input run against it instead of converting")
	threshold := flag.Float64("threshold", 20, "ns/op regression threshold in percent for -compare")
	match := flag.String("match", "", "regexp selecting benchmark names for -compare (default: all baseline benchmarks)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if *compare != "" {
		base, err := readRunFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		cur, err := readRun(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		report, failed, err := compareRuns(base, cur, *threshold, *match)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Print(report)
		if failed {
			os.Exit(1)
		}
		return
	}
	run, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := write(*out, run); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(run.Benchmarks), *out)
}

// readRunFile loads a run document from a file (JSON or bench text).
func readRunFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readRun(f)
}

// readRun sniffs the input: a JSON document produced by benchjson, or
// raw `go test -bench` text to parse on the fly.
func readRun(in io.Reader) (*Run, error) {
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, err
	}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		var run Run
		if err := json.Unmarshal(trimmed, &run); err != nil {
			return nil, fmt.Errorf("parsing JSON run: %w", err)
		}
		return &run, nil
	}
	return parse(bytes.NewReader(data))
}

// benchKey identifies a benchmark across runs: package plus name with
// the trailing GOMAXPROCS suffix ("-8") removed, so a baseline captured
// on one machine gates runs from another.
var procSuffix = regexp.MustCompile(`-\d+$`)

func benchKey(b *Benchmark) string {
	return b.Package + " " + procSuffix.ReplaceAllString(b.Name, "")
}

// compareRuns diffs cur against base on ns/op. It returns a human
// report, whether the gate failed, and any setup error (bad regexp).
// Failures: a matched benchmark regressing past thresholdPct, or a
// matched baseline benchmark absent from cur.
func compareRuns(base, cur *Run, thresholdPct float64, match string) (string, bool, error) {
	var re *regexp.Regexp
	if match != "" {
		var err error
		if re, err = regexp.Compile(match); err != nil {
			return "", false, fmt.Errorf("bad -match regexp: %w", err)
		}
	}
	curBy := make(map[string]*Benchmark, len(cur.Benchmarks))
	for i := range cur.Benchmarks {
		curBy[benchKey(&cur.Benchmarks[i])] = &cur.Benchmarks[i]
	}
	var sb strings.Builder
	failed := false
	compared := 0
	for i := range base.Benchmarks {
		b := &base.Benchmarks[i]
		if re != nil && !re.MatchString(b.Name) {
			continue
		}
		key := benchKey(b)
		c, ok := curBy[key]
		if !ok {
			fmt.Fprintf(&sb, "MISSING  %-60s baseline %.0f ns/op, absent from run\n", key, b.NsPerOp)
			failed = true
			continue
		}
		compared++
		deltaPct := 0.0
		if b.NsPerOp > 0 {
			deltaPct = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		verdict := "ok      "
		if deltaPct > thresholdPct {
			verdict = "REGRESS "
			failed = true
		}
		fmt.Fprintf(&sb, "%s %-60s %14.0f -> %14.0f ns/op  %+7.1f%%\n",
			verdict, key, b.NsPerOp, c.NsPerOp, deltaPct)
	}
	if compared == 0 && !failed {
		fmt.Fprintf(&sb, "benchjson: no baseline benchmarks matched\n")
		failed = true
	}
	fmt.Fprintf(&sb, "benchjson: compared %d benchmarks against baseline (threshold %+.0f%%)\n", compared, thresholdPct)
	return sb.String(), failed, nil
}

func write(path string, run *Run) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(run)
}

func parse(in io.Reader) (*Run, error) {
	run := &Run{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "):
			run.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			run.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue // sub-benchmark log output starting with "Benchmark"
		}
		b.Package = pkg
		run.Benchmarks = append(run.Benchmarks, b)
	}
	return run, sc.Err()
}

// parseLine parses one result line: name, iteration count, then
// "value unit" pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
			seenNs = true
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, seenNs
}
