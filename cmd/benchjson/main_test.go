package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkFig9aPartitionTime/leaves=32-8         	       2	 512345678 ns/op	  1048576 B/op	    2048 allocs/op
BenchmarkFig11Quality-8                         	       1	1234567890 ns/op	         0.9981 quality/op
PASS
ok  	repro	3.210s
pkg: repro/internal/dsu
BenchmarkUnionFind-8   	 1000000	      1234 ns/op	     512 B/op	       3 allocs/op
Benchmark output that is not a result line
--- BENCH: BenchmarkUnionFind-8
ok  	repro/internal/dsu	1.234s
`

func TestParse(t *testing.T) {
	run, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if run.GoOS != "linux" || run.GoArch != "amd64" || run.CPU != "AMD EPYC 7B13" {
		t.Errorf("metadata = %q/%q/%q", run.GoOS, run.GoArch, run.CPU)
	}
	if len(run.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(run.Benchmarks), run.Benchmarks)
	}
	b := run.Benchmarks[0]
	if b.Package != "repro" || !strings.HasPrefix(b.Name, "BenchmarkFig9aPartitionTime/") {
		t.Errorf("first benchmark = %s %s", b.Package, b.Name)
	}
	if b.Iterations != 2 || b.NsPerOp != 512345678 || b.BytesPerOp != 1048576 || b.AllocsPerOp != 2048 {
		t.Errorf("first benchmark values = %+v", b)
	}
	if q := run.Benchmarks[1].Metrics["quality/op"]; q != 0.9981 {
		t.Errorf("custom metric quality/op = %v, want 0.9981", q)
	}
	last := run.Benchmarks[2]
	if last.Package != "repro/internal/dsu" || last.Name != "BenchmarkUnionFind-8" || last.NsPerOp != 1234 {
		t.Errorf("last benchmark = %+v", last)
	}
}

func TestParseIgnoresMalformed(t *testing.T) {
	run, err := parse(strings.NewReader("BenchmarkBroken-8 notanumber 5 ns/op\nBenchmarkNoNs-8 10 3 widgets/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Benchmarks) != 0 {
		t.Fatalf("malformed lines parsed as %+v", run.Benchmarks)
	}
}

func run(benches ...Benchmark) *Run { return &Run{Benchmarks: benches} }

func TestCompareWithinThreshold(t *testing.T) {
	base := run(Benchmark{Package: "repro", Name: "BenchmarkCluster/parts=4", NsPerOp: 100})
	cur := run(Benchmark{Package: "repro", Name: "BenchmarkCluster/parts=4", NsPerOp: 110})
	report, failed, err := compareRuns(base, cur, 20, "")
	if err != nil || failed {
		t.Fatalf("10%% slowdown under 20%% threshold failed: %v\n%s", err, report)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := run(Benchmark{Package: "repro", Name: "BenchmarkCluster", NsPerOp: 100})
	cur := run(Benchmark{Package: "repro", Name: "BenchmarkCluster", NsPerOp: 125})
	report, failed, err := compareRuns(base, cur, 20, "")
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("25%% regression passed a 20%% gate:\n%s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := run(Benchmark{Package: "repro", Name: "BenchmarkCluster", NsPerOp: 100})
	cur := run(Benchmark{Package: "repro", Name: "BenchmarkCluster", NsPerOp: 50})
	if _, failed, _ := compareRuns(base, cur, 20, ""); failed {
		t.Fatal("a 50% improvement must pass")
	}
}

func TestCompareStripsProcSuffix(t *testing.T) {
	// Baseline captured on a 1-core host, run produced on an 8-core one.
	base := run(Benchmark{Package: "repro", Name: "BenchmarkCluster/parts=4", NsPerOp: 100})
	cur := run(Benchmark{Package: "repro", Name: "BenchmarkCluster/parts=4-8", NsPerOp: 105})
	report, failed, err := compareRuns(base, cur, 20, "")
	if err != nil || failed {
		t.Fatalf("suffix mismatch broke the comparison: %v\n%s", err, report)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := run(
		Benchmark{Package: "repro", Name: "BenchmarkCluster", NsPerOp: 100},
		Benchmark{Package: "repro", Name: "BenchmarkOther", NsPerOp: 100},
	)
	cur := run(Benchmark{Package: "repro", Name: "BenchmarkOther", NsPerOp: 100})
	report, failed, err := compareRuns(base, cur, 20, "")
	if err != nil {
		t.Fatal(err)
	}
	if !failed || !strings.Contains(report, "MISSING") {
		t.Fatalf("deleted baseline benchmark passed the gate:\n%s", report)
	}
}

func TestCompareMatchFilter(t *testing.T) {
	base := run(
		Benchmark{Package: "repro", Name: "BenchmarkCluster", NsPerOp: 100},
		Benchmark{Package: "repro", Name: "BenchmarkNoisy", NsPerOp: 100},
	)
	cur := run(
		Benchmark{Package: "repro", Name: "BenchmarkCluster", NsPerOp: 100},
		Benchmark{Package: "repro", Name: "BenchmarkNoisy", NsPerOp: 900},
	)
	// The noisy benchmark regressed 9x, but only Cluster is gated.
	if _, failed, err := compareRuns(base, cur, 20, "^BenchmarkCluster"); err != nil || failed {
		t.Fatal("match filter did not exclude the un-gated benchmark")
	}
	// No benchmark matching the filter at all is a gate failure.
	if _, failed, _ := compareRuns(base, cur, 20, "^BenchmarkAbsent"); !failed {
		t.Fatal("empty comparison must fail, not silently pass")
	}
	// A bad regexp is a setup error.
	if _, _, err := compareRuns(base, cur, 20, "("); err == nil {
		t.Fatal("invalid regexp accepted")
	}
}
