// Command experiments regenerates every table and figure of the paper's
// evaluation (§5). For each experiment it prints:
//
//   - measured rows: the real pipeline executed at laptop scale (a
//     scaled-down ladder with -ppl points per leaf, default 12,500 in
//     place of the paper's 800,000), and
//   - modeled rows: the calibrated cost model (internal/scale) projected
//     to the paper's Titan-scale configurations,
//
// together with the values the paper reports, so shapes can be compared
// directly. EXPERIMENTS.md is generated from this output.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -exp fig9c      # one experiment
//	experiments -ppl 25000      # heavier measured ladder
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/gdbscan"
	"repro/internal/geom"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/mrscan"
	"repro/internal/partition"
	"repro/internal/quality"
	"repro/internal/scale"
	"repro/internal/viz"
)

var (
	ppl     = flag.Int("ppl", 12_500, "measured-run points per leaf (paper: 800,000)")
	seed    = flag.Int64("seed", 1, "dataset seed")
	leaves  = flag.String("ladder", "2,4,8,16", "measured-run leaf ladder")
	expFlag = flag.String("exp", "all", "experiment: all|table1|fig2|fig8|fig9a|fig9b|fig9c|fig10|fig11|fig12|fig13|ablations|calibrate")
	fig2Dir = flag.String("fig2ppm", "", "directory to write Figure 2 partition images (PPM); empty = text only")
)

func main() {
	flag.Parse()
	ladder, err := parseLadder(*leaves)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	h := &harness{ppl: *ppl, seed: *seed, ladder: ladder}
	experiments := map[string]func(){
		"table1":    h.table1,
		"fig2":      h.fig2,
		"fig8":      h.fig8,
		"fig9a":     h.fig9a,
		"fig9b":     h.fig9b,
		"fig9c":     h.fig9c,
		"fig10":     h.fig10,
		"fig11":     h.fig11,
		"fig12":     h.fig12,
		"fig13":     h.fig13,
		"ablations": h.ablations,
		"calibrate": h.calibrate,
	}
	if *expFlag == "all" {
		for _, name := range []string{"table1", "fig2", "fig8", "fig9a", "fig9b", "fig9c", "fig10", "fig11", "fig12", "fig13", "ablations", "calibrate"} {
			experiments[name]()
		}
		return
	}
	run, ok := experiments[*expFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
	run()
}

func parseLadder(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil || v < 1 {
			return nil, fmt.Errorf("bad ladder entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

type harness struct {
	ppl    int
	seed   int64
	ladder []int

	twitterCache map[int][]geom.Point
}

func (h *harness) twitter(n int) []geom.Point {
	if h.twitterCache == nil {
		h.twitterCache = make(map[int][]geom.Point)
	}
	if pts, ok := h.twitterCache[n]; ok {
		return pts
	}
	pts := dataset.Twitter(n, h.seed)
	h.twitterCache[n] = pts
	return pts
}

func (h *harness) run(pts []geom.Point, cfg mrscan.Config) *mrscan.Result {
	res, _, err := mrscan.RunPoints(pts, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: run failed:", err)
		os.Exit(1)
	}
	return res
}

func header(title, paper string) {
	fmt.Printf("\n=== %s ===\n", title)
	fmt.Printf("paper: %s\n", paper)
}

func secs(d time.Duration) float64 { return d.Seconds() }

// --- experiment implementations ---

func (h *harness) table1() {
	header("Table 1: weak scaling configurations",
		"points 1.6M-6.5536B, internal processes 0-32, leaves 2-8192, partition nodes 2-128")
	fmt.Println("measured (scaled-down ladder actually executed):")
	fmt.Printf("%-12s %-12s %-10s %-16s\n", "points", "internal", "leaves", "partition nodes")
	for _, l := range h.ladder {
		pts := h.twitter(l * h.ppl)
		cfg := mrscan.Default(0.1, 40, l)
		res := h.run(pts, cfg)
		internal := scale.InternalProcessesFor(l)
		partNodes := l / 16
		if partNodes < 1 {
			partNodes = 1
		}
		_ = res
		fmt.Printf("%-12d %-12d %-10d %-16d\n", len(pts), internal, l, partNodes)
	}
	fmt.Println("paper-scale ladder (Table 1 exactly, from the topology rules):")
	fmt.Printf("%-14s %-12s %-10s %-16s\n", "points", "internal", "leaves", "partition nodes")
	for _, l := range scale.Table1Leaves {
		fmt.Printf("%-14d %-12d %-10d %-16d\n",
			l*scale.WeakPointsPerLeaf, scale.InternalProcessesFor(l), l, scale.PartNodesFor(l))
	}
}

// fig2 reproduces the partition algorithm walk-through of Figure 2: the
// oversized final partition before rebalancing (the populous end of the
// iteration order lands in the last partition) and the balanced result
// after.
func (h *harness) fig2() {
	header("Figure 2: partition boundaries before/after rebalancing",
		"the last partition absorbs the leftovers (the Eastern US in the paper's example); rebalancing moves cells backward until every partition fits 1.075x the final target")
	pts := h.twitter(8 * h.ppl)
	g := grid.New(0.1)
	hist := g.HistogramOf(pts)
	for _, rebalance := range []bool{false, true} {
		plan, err := partition.MakePlan(g, hist, 8, 40, rebalance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		label := "before rebalancing"
		if rebalance {
			label = "after rebalancing"
		}
		fmt.Printf("%s (mean incl. shadows = %.0f, threshold = %.0f):\n",
			label, plan.MeanTotal(), partition.RebalanceThreshold*plan.MeanTotal())
		for i, s := range plan.Specs {
			bar := strings.Repeat("#", int(s.Total()*40/(plan.MaxTotal()+1)))
			fmt.Printf("  partition %d: %7d points (+%6d shadow) %s\n",
				i, s.PointCount, s.ShadowCount, bar)
		}
		if *fig2Dir != "" {
			// Color every point by its owning partition — the paper's
			// Figure 2 images of partitioned tweets.
			owners := make([]int, len(pts))
			for i, p := range pts {
				owners[i] = plan.UnitOwner[partition.CellUnit(g.CellOf(p))]
			}
			name := fmt.Sprintf("%s/fig2-%s.ppm", *fig2Dir, map[bool]string{false: "before", true: "after"}[rebalance])
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if err := viz.WritePPM(f, pts, owners, viz.Options{Width: 1200, Height: 600}); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("  wrote %s\n", name)
		}
	}
}

func (h *harness) fig8() {
	header("Figure 8: total elapsed time, weak scaling (Twitter, Eps=0.1)",
		"6.5B points in 1,040-1,401s depending on MinPts; growth 18.5-31.7x over 4096x data")
	fmt.Println("measured (real pipeline, scaled-down ladder):")
	fmt.Printf("%-8s %-10s %-8s %-10s\n", "minPts", "leaves", "points", "total")
	for _, minPts := range []int{4, 40, 400, 4000} {
		for _, l := range h.ladder {
			pts := h.twitter(l * h.ppl)
			res := h.run(pts, mrscan.Default(0.1, minPts, l))
			fmt.Printf("%-8d %-10d %-8d %9.3fs\n", minPts, l, len(pts), secs(res.Times.Total))
		}
	}
	fmt.Println("modeled (paper scale, internal/scale):")
	m := scale.Twitter()
	for _, minPts := range []int{4, 40, 400, 4000} {
		for _, row := range m.WeakScaling(scale.Table1Leaves, minPts) {
			fmt.Println("  " + row.String())
		}
	}
}

func (h *harness) fig9a() {
	header("Figure 9a: partition phase time (Twitter, MinPts=400)",
		"scales linearly with data; ~68% of total at scale; write 65.2% / read 29.9% of the phase")
	fmt.Println("measured (in-phase split from simulated Lustre costs):")
	fmt.Printf("%-10s %-8s %-12s %-10s %-12s\n", "leaves", "points", "partition", "of total", "write/read sim")
	for _, l := range h.ladder {
		pts := h.twitter(l * h.ppl)
		res := h.run(pts, mrscan.Default(0.1, 400, l))
		ratio := 0.0
		if res.Times.PartitionReadSim > 0 {
			ratio = float64(res.Times.PartitionWriteSim) / float64(res.Times.PartitionReadSim)
		}
		fmt.Printf("%-10d %-8d %10.3fs %9.1f%% %10.1fx\n", l, len(pts),
			secs(res.Times.Partition), 100*secs(res.Times.Partition)/secs(res.Times.Total), ratio)
	}
	fmt.Println("modeled (paper scale):")
	m := scale.Twitter()
	for _, row := range m.WeakScaling(scale.Table1Leaves, 400) {
		fmt.Printf("  leaves=%-5d partition=%7.1fs (%.0f%% of total)\n",
			row.Leaves, row.Partition, 100*row.Partition/row.Total)
	}
}

func (h *harness) fig9b() {
	header("Figure 9b: cluster+merge+sweep time (Twitter)",
		"similar shape to GPU DBSCAN; MinPts=4000 adds linear MRNet startup growth")
	fmt.Println("measured:")
	fmt.Printf("%-8s %-10s %-12s\n", "minPts", "leaves", "cms")
	for _, minPts := range []int{40, 4000} {
		for _, l := range h.ladder {
			pts := h.twitter(l * h.ppl)
			res := h.run(pts, mrscan.Default(0.1, minPts, l))
			cms := res.Times.Cluster + res.Times.Merge + res.Times.Sweep
			fmt.Printf("%-8d %-10d %10.3fs\n", minPts, l, secs(cms))
		}
	}
	fmt.Println("modeled (paper scale):")
	m := scale.Twitter()
	for _, minPts := range []int{40, 4000} {
		for _, row := range m.WeakScaling(scale.Table1Leaves, minPts) {
			fmt.Printf("  minPts=%-5d leaves=%-5d cms=%7.1fs\n", minPts, row.Leaves, row.ClusterMergeSweep)
		}
	}
}

func (h *harness) fig9c() {
	header("Figure 9c: GPGPU DBSCAN time (Twitter)",
		"dense-box dip at mid scale for MinPts<=400, upturn at 6.5B; MinPts=4000 logarithmic, no dip")
	fmt.Println("measured (slowest leaf):")
	fmt.Printf("%-8s %-10s %-12s %-14s\n", "minPts", "leaves", "gpu", "elim-points")
	for _, minPts := range []int{4, 40, 400, 4000} {
		for _, l := range h.ladder {
			pts := h.twitter(l * h.ppl)
			res := h.run(pts, mrscan.Default(0.1, minPts, l))
			fmt.Printf("%-8d %-10d %10.3fs %-14d\n", minPts, l, secs(res.Times.GPUDBSCAN), res.Stats.DenseBoxPoints)
		}
	}
	fmt.Println("modeled (paper scale):")
	m := scale.Twitter()
	for _, minPts := range []int{4, 40, 400, 4000} {
		for _, row := range m.WeakScaling(scale.Table1Leaves, minPts) {
			fmt.Printf("  minPts=%-5d leaves=%-5d gpu=%6.1fs elim=%.3f\n", minPts, row.Leaves, row.GPUDBSCAN, row.DenseBoxElim)
		}
	}
}

func (h *harness) fig10() {
	header("Figure 10: strong scaling on the largest dataset (Twitter, MinPts=40)",
		"4.7x GPU speedup from 256 to 2,048 leaves; no speedup beyond (single dense cell limit)")
	total := h.ladder[len(h.ladder)-1] * h.ppl
	pts := h.twitter(total)
	strongLadder := append(append([]int{}, h.ladder...), h.ladder[len(h.ladder)-1]*2)
	fmt.Println("measured (fixed dataset; leaves run sequentially so each")
	fmt.Println("simulated GPU is timed in isolation on this host):")
	fmt.Printf("%-10s %-12s %-12s\n", "leaves", "slowest-gpu", "total")
	for _, l := range strongLadder {
		cfg := mrscan.Default(0.1, 40, l)
		cfg.SequentialLeaves = true
		res := h.run(pts, cfg)
		fmt.Printf("%-10d %-11.3fs %-11.3fs\n", l, secs(res.Times.GPUDBSCAN), secs(res.Times.Total))
	}
	fmt.Println("modeled (6.5B points):")
	m := scale.Twitter()
	for _, row := range m.StrongScaling(scale.Fig10Leaves, 8192*scale.WeakPointsPerLeaf, 40) {
		fmt.Printf("  leaves=%-5d gpu=%6.1fs total=%7.1fs\n", row.Leaves, row.GPUDBSCAN, row.Total)
	}
	fmt.Println("modeled with hot-cell subdivision (the §5.1.2 fix, lifts the plateau):")
	for _, row := range m.StrongScalingSplit(scale.Fig10Leaves, 8192*scale.WeakPointsPerLeaf, 40) {
		fmt.Printf("  leaves=%-5d gpu=%6.1fs total=%7.1fs\n", row.Leaves, row.GPUDBSCAN, row.Total)
	}
}

func (h *harness) fig11() {
	header("Figure 11: output quality vs single-CPU DBSCAN (Twitter)",
		"never below 0.995 up to 12.8M points (reference: ELKI 0.4.1)")
	fmt.Printf("%-10s %-10s %-10s\n", "points", "leaves", "quality")
	for _, mult := range []int{1, 2, 4} {
		n := mult * h.ppl * 4
		pts := h.twitter(n)
		ref, err := dbscan.Cluster(pts, dbscan.Params{Eps: 0.1, MinPts: 40}, dbscan.IndexGrid)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		_, labels, err := mrscan.RunPoints(pts, mrscan.Default(0.1, 40, 8))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		q, err := quality.Score(ref.Labels, labels)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10d %-10d %-10.5f\n", n, 8, q)
	}
}

func (h *harness) fig12() {
	header("Figure 12: SDSS weak scaling (Eps=0.00015, MinPts=5)",
		"same upward trend as Twitter, dominated by the partitioner")
	fmt.Println("measured:")
	fmt.Printf("%-10s %-8s %-12s\n", "leaves", "points", "total")
	for _, l := range h.ladder {
		pts := dataset.SDSS(l*h.ppl, h.seed)
		res := h.run(pts, mrscan.Default(0.00015, 5, l))
		fmt.Printf("%-10d %-8d %10.3fs\n", l, len(pts), secs(res.Times.Total))
	}
	fmt.Println("modeled (to 1.6B points / 2048 leaves):")
	m := scale.SDSS()
	for _, row := range m.WeakScaling([]int{2, 8, 32, 128, 512, 2048}, 5) {
		fmt.Printf("  leaves=%-5d total=%7.1fs\n", row.Leaves, row.Total)
	}
}

func (h *harness) fig13() {
	header("Figure 13: SDSS partition time",
		"identical I/O-bound behaviour to the Twitter dataset")
	fmt.Println("measured:")
	fmt.Printf("%-10s %-12s %-10s\n", "leaves", "partition", "of total")
	for _, l := range h.ladder {
		pts := dataset.SDSS(l*h.ppl, h.seed)
		res := h.run(pts, mrscan.Default(0.00015, 5, l))
		fmt.Printf("%-10d %10.3fs %9.1f%%\n", l, secs(res.Times.Partition),
			100*secs(res.Times.Partition)/secs(res.Times.Total))
	}
	fmt.Println("modeled:")
	m := scale.SDSS()
	for _, row := range m.WeakScaling([]int{2, 8, 32, 128, 512, 2048}, 5) {
		fmt.Printf("  leaves=%-5d partition=%7.1fs (%.0f%% of total)\n",
			row.Leaves, row.Partition, 100*row.Partition/row.Total)
	}
}

func (h *harness) ablations() {
	header("Ablations: the design choices of §3",
		"dense box (3.2.3), host transfers (3.2.2), shadow reps (3.1.3), rebalance (3.1.2)")
	pts := h.twitter(8 * h.ppl)

	// Dense box on/off.
	on := h.run(pts, mrscan.Default(0.1, 40, 8))
	offCfg := mrscan.Default(0.1, 40, 8)
	offCfg.DenseBox = false
	off := h.run(pts, offCfg)
	fmt.Printf("dense box:    on  gpu=%.3fs (eliminated %d points, %d boxes)\n",
		secs(on.Times.GPUDBSCAN), on.Stats.DenseBoxPoints, on.Stats.DenseBoxes)
	fmt.Printf("              off gpu=%.3fs\n", secs(off.Times.GPUDBSCAN))

	// Host transfer profile.
	for _, mode := range []gdbscan.Mode{gdbscan.ModeMrScan, gdbscan.ModeCUDADClust} {
		dev := gpusim.New(gpusim.K20(), nil)
		_, err := gdbscan.Cluster(dev, pts[:4*h.ppl], gdbscan.Options{
			Params: dbscan.Params{Eps: 0.1, MinPts: 40},
			Mode:   mode, DenseBox: mode == gdbscan.ModeMrScan,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		st := dev.Stats()
		fmt.Printf("transfers:    %-12s %6d host<->device ops, simulated PCIe %v\n",
			mode, st.H2DTransfers+st.D2HTransfers, dev.Clock().Resource(dev.Config().Name+"/pcie"))
	}

	// Shadow reps.
	repsCfg := mrscan.Default(0.1, 40, 8)
	repsCfg.ShadowReps = true
	reps := h.run(pts, repsCfg)
	fmt.Printf("shadow reps:  off written=%d points\n", on.Stats.WrittenPoints)
	fmt.Printf("              on  written=%d points\n", reps.Stats.WrittenPoints)

	// Direct network transfer (§6 future work).
	directCfg := mrscan.Default(0.1, 40, 8)
	directCfg.DirectPartitions = true
	direct := h.run(pts, directCfg)
	fmt.Printf("partitions:   via Lustre   partition=%.3fs\n", secs(on.Times.Partition))
	fmt.Printf("              via network  partition=%.3fs (zero partition-file writes)\n",
		secs(direct.Times.Partition))

	// PDBSCAN replicated-index message growth (§2.2).
	for _, nodes := range []int{2, 4, 8, 16} {
		res, err := baseline.PDBSCAN(pts[:4*h.ppl], dbscan.Params{Eps: 0.1, MinPts: 40}, nodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("pdbscan:      nodes=%-3d remote-fetches=%-8d cross-node merges=%d\n",
			nodes, res.RemoteMessages, res.MergeEdges)
	}
}

// calibrate fits the Titan-scale model's GPU expansion term to this
// host: a strong-scaling ladder is measured with isolated leaf timing,
// scale.FitExpand solves for the per-point coefficient, and the 6.5B-row
// GPU projections are reprinted under the fitted constants.
func (h *harness) calibrate() {
	header("Calibration: fit the cost model's GPU term to this host",
		"the model ships with Titan-era constants; FitExpand re-bases them on measured runs")
	pts := h.twitter(8 * h.ppl)
	var ms []scale.Measurement
	fmt.Printf("%-10s %-12s\n", "leaves", "slowest-gpu")
	for _, l := range []int{2, 4, 8, 16} {
		cfg := mrscan.Default(0.1, 40, l)
		cfg.SequentialLeaves = true
		res := h.run(pts, cfg)
		ms = append(ms, scale.Measurement{
			Points: float64(len(pts)),
			Leaves: l,
			MinPts: 40,
			GPUSec: secs(res.Times.GPUDBSCAN),
		})
		fmt.Printf("%-10d %10.3fs\n", l, secs(res.Times.GPUDBSCAN))
	}
	fitted, err := scale.Twitter().FitExpand(ms)
	if err != nil {
		fmt.Printf("fit failed: %v (measurements too flat on this host)\n", err)
		return
	}
	fmt.Printf("fitted: ExpandCoef=%.3g s/point-log (Titan calibration: %.3g), overhead=%.2fs\n",
		fitted.ExpandCoef, scale.Twitter().ExpandCoef, fitted.GPULeafOverhead)
	fmt.Println("re-projected 6.5B GPU rows under the fitted constants:")
	for _, row := range fitted.WeakScaling([]int{512, 2048, 8192}, 40) {
		fmt.Printf("  leaves=%-5d gpu=%6.1fs\n", row.Leaves, row.GPUDBSCAN)
	}
}
