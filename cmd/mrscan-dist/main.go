// Command mrscan-dist runs Mr. Scan with the cluster phase distributed
// across real worker processes: the coordinator partitions the input,
// spawns N copies of itself in worker mode, ships each partition over
// TCP, and merges the returned summaries — the deployment shape of the
// real system (MRNet backends on separate nodes), in one binary.
//
// Usage:
//
//	mrscan-dist -input tweets.mrsc -output clusters.mrsl -workers 4 -leaves 16
//
// The worker mode (-worker -connect addr) is normally invoked only by the
// coordinator.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/distrib"
	"repro/internal/faultinject"
	"repro/internal/health"
	"repro/internal/ptio"
	"repro/internal/telemetry"
)

// coordOptions bundles the coordinator-mode settings.
type coordOptions struct {
	input, output   string
	eps             float64
	minPts          int
	leaves, workers int
	retries         int
	noise           bool
	plan            *faultinject.Plan
	ckptDir         string
	resume          bool
	deadline        time.Duration
	straggler       float64
	slowWorker      time.Duration
	slowLimpOps     int
	health          bool
	healthLatFactor float64
	healthProbe     time.Duration
	healthBudget    int
	traceOut        string
	metricsOut      string
	reportOut       string
}

func main() {
	var (
		input      = flag.String("input", "", "input MRSC dataset file (required in coordinator mode)")
		output     = flag.String("output", "clusters.mrsl", "output labeled file")
		eps        = flag.Float64("eps", 0.1, "DBSCAN Eps")
		minPts     = flag.Int("minpts", 40, "DBSCAN MinPts")
		leaves     = flag.Int("leaves", 8, "partitions (pulled from a shared queue by workers)")
		workers    = flag.Int("workers", 2, "worker processes to spawn")
		noise      = flag.Bool("noise", false, "include noise points in the output")
		worker     = flag.Bool("worker", false, "run as a worker (internal)")
		connect    = flag.String("connect", "", "coordinator address (worker mode)")
		delay      = flag.Duration("delay", 0, "per-request service delay (worker mode; straggler experiments)")
		retries    = flag.Int("retries", 3, "max workers a partition is sent to before the run fails")
		faultPlan  = flag.String("fault-plan", "", "fault injection plan, e.g. 'distrib.worker.0:after=1' (see internal/faultinject)")
		faultSeed  = flag.Int64("fault-seed", 1, "RNG seed for probabilistic fault rules")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for per-partition checkpoints, written crash-consistently: fsync before the atomic rename, directory sync after (empty = no checkpointing)")
		resume     = flag.Bool("resume", false, "restore partitions checkpointed in -checkpoint-dir by an earlier run")
		deadline   = flag.Duration("deadline", 0, "abort the dispatch after this long (0 = none)")
		straggler  = flag.Float64("straggler-factor", 0, "hedge partitions slower than this × the running p95 service time (0 = off)")
		slowWorker = flag.Duration("slow-worker-delay", 0, "make the last spawned worker this much slower per request (straggler demo)")
		slowLimp   = flag.Int("slow-worker-limp-ops", 0, "the slow worker recovers after this many slow requests (0 = slow forever; gray-failure recovery demo)")
		limpOps    = flag.Int("limp-ops", 0, "number of requests the -delay applies to (worker mode; 0 = all)")
		healthOn   = flag.Bool("health", false, "enable adaptive worker health scoring: limping workers are quarantined on in-flight latency evidence, probed while quarantined, and re-admitted after clean probes plus clean work")
		healthLat  = flag.Float64("health-latency-factor", 0, "quarantine a worker whose latency EWMA exceeds this x the fleet p50 (0 = default 3)")
		healthProb = flag.Duration("health-probe-interval", 0, "probe cadence for quarantined workers (0 = default 5ms)")
		healthBud  = flag.Int("health-retry-budget", 0, "shared retry token budget across partition redispatches (0 = unlimited); exhaustion fails the run loudly")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON of the dispatch (open in chrome://tracing or Perfetto)")
		metricsOut = flag.String("metrics-out", "", "write the run's metrics in Prometheus text format")
		reportOut  = flag.String("report-out", "", "write a structured per-run JSON report")
	)
	flag.Parse()
	if *worker {
		err := distrib.WorkerWithOptions(*connect, os.Getpid(), distrib.WorkerOptions{Delay: *delay, LimpOps: *limpOps})
		if err != nil && !distrib.IsConnClosed(err) {
			fmt.Fprintln(os.Stderr, "mrscan-dist worker:", err)
			os.Exit(1)
		}
		return
	}
	if *input == "" {
		fmt.Fprintln(os.Stderr, "mrscan-dist: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	plan, err := faultinject.Parse(*faultPlan, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrscan-dist:", err)
		os.Exit(2)
	}
	opt := coordOptions{
		input: *input, output: *output, eps: *eps, minPts: *minPts,
		leaves: *leaves, workers: *workers, retries: *retries, noise: *noise,
		plan: plan, ckptDir: *ckptDir, resume: *resume, deadline: *deadline,
		straggler: *straggler, slowWorker: *slowWorker, slowLimpOps: *slowLimp,
		health: *healthOn, healthLatFactor: *healthLat,
		healthProbe: *healthProb, healthBudget: *healthBud,
		traceOut: *traceOut, metricsOut: *metricsOut, reportOut: *reportOut,
	}
	if err := coordinate(opt); err != nil {
		fmt.Fprintln(os.Stderr, "mrscan-dist:", err)
		os.Exit(1)
	}
}

func coordinate(o coordOptions) error {
	input, output := o.input, o.output
	eps, minPts := o.eps, o.minPts
	leaves, workers, retries := o.leaves, o.workers, o.retries
	noise, plan := o.noise, o.plan
	f, err := os.Open(input)
	if err != nil {
		return err
	}
	pts, err := ptio.ReadDataset(f)
	f.Close()
	if err != nil {
		return err
	}

	c, err := distrib.NewCoordinator()
	if err != nil {
		return err
	}
	c.Retry = distrib.RetryPolicy{MaxAttempts: retries}
	c.RequestTimeout = 2 * time.Minute
	c.SetFaultPlan(plan)
	c.StragglerFactor = o.straggler
	var tracker *health.Tracker
	var budget *health.Budget
	if o.health {
		tracker = health.New(health.Config{LatencyFactor: o.healthLatFactor})
		c.Health = tracker
		c.ProbeInterval = o.healthProbe
	}
	if o.healthBudget > 0 {
		budget = health.NewBudget(o.healthBudget, 0)
		c.Budget = budget
	}
	var hub *telemetry.Hub
	var runSpan *telemetry.Span
	if o.traceOut != "" || o.metricsOut != "" || o.reportOut != "" {
		// Wall-clock only: the distributed path runs on real sockets, so
		// there is no simulated clock to read.
		hub = telemetry.New(nil)
		runSpan = hub.Start(nil, "mrscan-dist.run")
		c.SetTelemetry(hub)
		c.SetTraceParent(runSpan)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	procs := make([]*exec.Cmd, workers)
	for i := range procs {
		args := []string{"-worker", "-connect", c.Addr()}
		if o.slowWorker > 0 && i == workers-1 {
			args = append(args, "-delay", o.slowWorker.String())
			if o.slowLimpOps > 0 {
				args = append(args, "-limp-ops", fmt.Sprint(o.slowLimpOps))
			}
		}
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning worker %d: %w", i, err)
		}
		procs[i] = cmd
	}
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Wait()
			}
		}
	}()
	if err := c.AcceptWorkers(workers, 30*time.Second); err != nil {
		return err
	}
	fmt.Printf("clustering %d points on %d worker processes (%d partitions)...\n",
		len(pts), workers, leaves)
	runOpts := distrib.Options{Eps: eps, MinPts: minPts, Leaves: leaves, DenseBox: true}
	if o.ckptDir != "" {
		bk, err := checkpoint.DirFS(o.ckptDir)
		if err != nil {
			return fmt.Errorf("opening checkpoint dir: %w", err)
		}
		runID := fmt.Sprintf("mrscan-dist|%s|%d|%g|%d|%d", input, len(pts), eps, minPts, leaves)
		store := checkpoint.NewStore(bk, runID)
		if !o.resume {
			// A fresh (non-resume) run must not restore stale snapshots
			// from an earlier invocation over the same directory.
			if err := store.Clear(); err != nil {
				return fmt.Errorf("clearing stale checkpoints: %w", err)
			}
		}
		if hub != nil {
			store.SetTelemetry(hub)
			store.SetTraceParent(runSpan)
		}
		runOpts.Checkpoint = store
	}
	ctx := context.Background()
	if o.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.deadline)
		defer cancel()
	}
	res, err := c.RunContext(ctx, pts, runOpts)
	stats := c.Stats()
	c.Shutdown()
	if hub != nil {
		runSpan.End()
		// Export even on failure: the trace shows the dispatch up to the
		// abort, retries and hedges included.
		if xerr := writeExports(hub, o); xerr != nil {
			fmt.Fprintln(os.Stderr, "mrscan-dist:", xerr)
		}
	}
	if err != nil {
		if o.ckptDir != "" {
			fmt.Fprintln(os.Stderr, "mrscan-dist: completed partitions are checkpointed; rerun with -resume to continue")
		}
		return err
	}
	if stats.WorkersLost > 0 {
		fmt.Printf("recovered from %d worker failure(s): %d partition(s) reassigned\n",
			stats.WorkersLost, stats.Reassigned)
	}
	if res.RestoredPartitions > 0 {
		fmt.Printf("resumed: %d partition(s) restored from checkpoints\n", res.RestoredPartitions)
	}
	if stats.HedgesLaunched > 0 {
		fmt.Printf("straggler hedges: %d launched, %d won\n", stats.HedgesLaunched, stats.HedgesWon)
	}
	if tracker != nil {
		for _, v := range tracker.Snapshot() {
			if v.State != health.Healthy {
				fmt.Printf("health: %s is %s (latency EWMA %v, error rate %.2f)\n",
					v.Component, v.State, v.Latency.Round(time.Millisecond), v.ErrorRate)
			}
		}
		if q := tracker.QuarantinedComponents(); len(q) > 0 {
			fmt.Printf("quarantined workers (served probes only): %v\n", q)
		}
	}
	if budget != nil {
		fmt.Printf("retry budget: %d spent, %d denied, %d remaining\n",
			budget.Spent(), budget.Denied(), budget.Remaining())
	}

	var records []ptio.LabeledPoint
	skipped := 0
	for i, l := range res.Labels {
		if l < 0 && !noise {
			skipped++
			continue
		}
		records = append(records, ptio.LabeledPoint{Point: pts[i], Cluster: int64(l)})
	}
	out, err := os.Create(output)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := ptio.WriteLabeled(out, records); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("clusters found:   %d\n", res.NumClusters)
	fmt.Printf("points in output: %d (noise skipped: %d)\n", len(records), skipped)
	return nil
}

// writeExports dumps the hub through every exporter whose output path
// is set.
func writeExports(hub *telemetry.Hub, o coordOptions) error {
	writeTo := func(path string, f func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := f(out); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	}
	if err := writeTo(o.traceOut, hub.Trace.WriteChromeTrace); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := writeTo(o.metricsOut, hub.Metrics.WritePrometheus); err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	if err := writeTo(o.reportOut, func(w io.Writer) error { return telemetry.WriteReport(w, hub) }); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	return nil
}
