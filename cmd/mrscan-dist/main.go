// Command mrscan-dist runs Mr. Scan with the cluster phase distributed
// across real worker processes: the coordinator partitions the input,
// spawns N copies of itself in worker mode, ships each partition over
// TCP, and merges the returned summaries — the deployment shape of the
// real system (MRNet backends on separate nodes), in one binary.
//
// Usage:
//
//	mrscan-dist -input tweets.mrsc -output clusters.mrsl -workers 4 -leaves 16
//
// The worker mode (-worker -connect addr) is normally invoked only by the
// coordinator.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"repro/internal/distrib"
	"repro/internal/faultinject"
	"repro/internal/ptio"
)

func main() {
	var (
		input     = flag.String("input", "", "input MRSC dataset file (required in coordinator mode)")
		output    = flag.String("output", "clusters.mrsl", "output labeled file")
		eps       = flag.Float64("eps", 0.1, "DBSCAN Eps")
		minPts    = flag.Int("minpts", 40, "DBSCAN MinPts")
		leaves    = flag.Int("leaves", 8, "partitions (pulled from a shared queue by workers)")
		workers   = flag.Int("workers", 2, "worker processes to spawn")
		noise     = flag.Bool("noise", false, "include noise points in the output")
		worker    = flag.Bool("worker", false, "run as a worker (internal)")
		connect   = flag.String("connect", "", "coordinator address (worker mode)")
		retries   = flag.Int("retries", 3, "max workers a partition is sent to before the run fails")
		faultPlan = flag.String("fault-plan", "", "fault injection plan, e.g. 'distrib.worker.0:after=1' (see internal/faultinject)")
		faultSeed = flag.Int64("fault-seed", 1, "RNG seed for probabilistic fault rules")
	)
	flag.Parse()
	if *worker {
		if err := distrib.Worker(*connect, os.Getpid()); err != nil && !distrib.IsConnClosed(err) {
			fmt.Fprintln(os.Stderr, "mrscan-dist worker:", err)
			os.Exit(1)
		}
		return
	}
	if *input == "" {
		fmt.Fprintln(os.Stderr, "mrscan-dist: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	plan, err := faultinject.Parse(*faultPlan, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrscan-dist:", err)
		os.Exit(2)
	}
	if err := coordinate(*input, *output, *eps, *minPts, *leaves, *workers, *retries, *noise, plan); err != nil {
		fmt.Fprintln(os.Stderr, "mrscan-dist:", err)
		os.Exit(1)
	}
}

func coordinate(input, output string, eps float64, minPts, leaves, workers, retries int, noise bool, plan *faultinject.Plan) error {
	f, err := os.Open(input)
	if err != nil {
		return err
	}
	pts, err := ptio.ReadDataset(f)
	f.Close()
	if err != nil {
		return err
	}

	c, err := distrib.NewCoordinator()
	if err != nil {
		return err
	}
	c.Retry = distrib.RetryPolicy{MaxAttempts: retries}
	c.RequestTimeout = 2 * time.Minute
	c.SetFaultPlan(plan)
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	procs := make([]*exec.Cmd, workers)
	for i := range procs {
		cmd := exec.Command(exe, "-worker", "-connect", c.Addr())
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning worker %d: %w", i, err)
		}
		procs[i] = cmd
	}
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Wait()
			}
		}
	}()
	if err := c.AcceptWorkers(workers, 30*time.Second); err != nil {
		return err
	}
	fmt.Printf("clustering %d points on %d worker processes (%d partitions)...\n",
		len(pts), workers, leaves)
	res, err := c.Run(pts, distrib.Options{Eps: eps, MinPts: minPts, Leaves: leaves, DenseBox: true})
	stats := c.Stats()
	c.Shutdown()
	if err != nil {
		return err
	}
	if stats.WorkersLost > 0 {
		fmt.Printf("recovered from %d worker failure(s): %d partition(s) reassigned\n",
			stats.WorkersLost, stats.Reassigned)
	}

	var records []ptio.LabeledPoint
	skipped := 0
	for i, l := range res.Labels {
		if l < 0 && !noise {
			skipped++
			continue
		}
		records = append(records, ptio.LabeledPoint{Point: pts[i], Cluster: int64(l)})
	}
	out, err := os.Create(output)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := ptio.WriteLabeled(out, records); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("clusters found:   %d\n", res.NumClusters)
	fmt.Printf("points in output: %d (noise skipped: %d)\n", len(records), skipped)
	return nil
}
