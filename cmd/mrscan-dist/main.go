// Command mrscan-dist runs Mr. Scan with the cluster phase distributed
// across real worker processes: the coordinator partitions the input,
// spawns N copies of itself in worker mode, ships each partition over
// TCP, and merges the returned summaries — the deployment shape of the
// real system (MRNet backends on separate nodes), in one binary.
//
// Usage:
//
//	mrscan-dist -input tweets.mrsc -output clusters.mrsl -workers 4 -leaves 16
//
// The worker mode (-worker -connect addr) is normally invoked only by the
// coordinator.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/distrib"
	"repro/internal/ptio"
)

func main() {
	var (
		input   = flag.String("input", "", "input MRSC dataset file (required in coordinator mode)")
		output  = flag.String("output", "clusters.mrsl", "output labeled file")
		eps     = flag.Float64("eps", 0.1, "DBSCAN Eps")
		minPts  = flag.Int("minpts", 40, "DBSCAN MinPts")
		leaves  = flag.Int("leaves", 8, "partitions (round-robined over workers)")
		workers = flag.Int("workers", 2, "worker processes to spawn")
		noise   = flag.Bool("noise", false, "include noise points in the output")
		worker  = flag.Bool("worker", false, "run as a worker (internal)")
		connect = flag.String("connect", "", "coordinator address (worker mode)")
	)
	flag.Parse()
	if *worker {
		if err := distrib.Worker(*connect, os.Getpid()); err != nil {
			fmt.Fprintln(os.Stderr, "mrscan-dist worker:", err)
			os.Exit(1)
		}
		return
	}
	if *input == "" {
		fmt.Fprintln(os.Stderr, "mrscan-dist: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := coordinate(*input, *output, *eps, *minPts, *leaves, *workers, *noise); err != nil {
		fmt.Fprintln(os.Stderr, "mrscan-dist:", err)
		os.Exit(1)
	}
}

func coordinate(input, output string, eps float64, minPts, leaves, workers int, noise bool) error {
	f, err := os.Open(input)
	if err != nil {
		return err
	}
	pts, err := ptio.ReadDataset(f)
	f.Close()
	if err != nil {
		return err
	}

	c, err := distrib.NewCoordinator()
	if err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	procs := make([]*exec.Cmd, workers)
	for i := range procs {
		cmd := exec.Command(exe, "-worker", "-connect", c.Addr())
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning worker %d: %w", i, err)
		}
		procs[i] = cmd
	}
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Wait()
			}
		}
	}()
	if err := c.AcceptWorkers(workers); err != nil {
		return err
	}
	fmt.Printf("clustering %d points on %d worker processes (%d partitions)...\n",
		len(pts), workers, leaves)
	res, err := c.Run(pts, distrib.Options{Eps: eps, MinPts: minPts, Leaves: leaves, DenseBox: true})
	c.Shutdown()
	if err != nil {
		return err
	}

	var records []ptio.LabeledPoint
	skipped := 0
	for i, l := range res.Labels {
		if l < 0 && !noise {
			skipped++
			continue
		}
		records = append(records, ptio.LabeledPoint{Point: pts[i], Cluster: int64(l)})
	}
	out, err := os.Create(output)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := ptio.WriteLabeled(out, records); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("clusters found:   %d\n", res.NumClusters)
	fmt.Printf("points in output: %d (noise skipped: %d)\n", len(records), skipped)
	return nil
}
