# Mr. Scan reproduction — common targets.

GO ?= go

.PHONY: all build vet test race bench experiments cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Default test run: vet, the full suite, then the race detector over the
# concurrency-heavy fault-tolerance and telemetry packages.
test: vet
	$(GO) test ./...
	$(GO) test -race -short ./internal/distrib ./internal/mrnet ./internal/mrscan ./internal/telemetry

race:
	$(GO) test -race ./...

# Full benchmark sweep: every paper table/figure plus the ablations.
# Results land in BENCH_run.txt (raw) and BENCH_run.json (machine-
# readable name -> ns/op, B/op, allocs/op). BENCHFLAGS narrows the
# sweep, e.g. make bench BENCHFLAGS='-benchtime=1x' BENCHPKGS=./internal/dsu
BENCHFLAGS ?=
BENCHPKGS ?= ./...
bench:
	$(GO) test -bench=. -benchmem -run='^$$' $(BENCHFLAGS) $(BENCHPKGS) > BENCH_run.txt || (cat BENCH_run.txt; exit 1)
	cat BENCH_run.txt
	$(GO) run ./cmd/benchjson -o BENCH_run.json BENCH_run.txt

# Regenerate every evaluation artifact (measured + modeled rows).
experiments:
	$(GO) run ./cmd/experiments

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
	rm -f BENCH_run.txt BENCH_run.json
