# Mr. Scan reproduction — common targets.

GO ?= go

.PHONY: all build vet test race bench bench-compare chaos soak crash stream gray experiments cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Default test run: vet, the full suite, then the race detector over the
# concurrency-heavy fault-tolerance, telemetry, and cluster-phase
# packages (gdbscan expansion blocks and gpusim buffer pools are hot
# concurrent paths; chaos and lustre exercise the integrity ledger
# under concurrent leaves; server schedules concurrent jobs over all of
# them).
test: vet
	$(GO) test ./...
	$(GO) test -race -short ./internal/distrib ./internal/mrnet ./internal/mrscan ./internal/telemetry ./internal/gdbscan ./internal/gpusim ./internal/chaos ./internal/lustre ./internal/server ./internal/checkpoint ./internal/stream ./internal/partition ./internal/ptio ./internal/health

race:
	$(GO) test -race ./...

# Seeded chaos campaign: every run must match the fault-free reference
# (or fail loudly) with zero silent corruption escapes. CHAOSFLAGS
# appends, e.g. make chaos CHAOSFLAGS='-seeds 50 -fault-rate 0.8'.
CHAOSFLAGS ?=
chaos:
	$(GO) run ./cmd/chaos -seeds 20 -out chaos-report.json $(CHAOSFLAGS)

# Server soak: seeded overload campaigns against the job server —
# multi-tenant bursts past queue capacity, injected faults, and a
# mid-campaign drain + restart per seed. Fails on any silent drop,
# untyped rejection, or quality-floor miss; the JSON report lands in
# soak-report.json. SOAKFLAGS appends, e.g.
# make soak SOAKFLAGS='-seeds 25 -tenants 5'.
SOAKFLAGS ?=
soak:
	$(GO) run ./cmd/chaos -mode overload -seeds 10 -out soak-report.json $(SOAKFLAGS)

# Crash-point recovery campaign: simulate power failure at every sampled
# durability-relevant file-system operation and audit that nothing
# acknowledged (checkpointed phases, journaled jobs) is ever lost,
# recovery is idempotent, and resumed labels equal the fault-free
# reference. The JSON report lands in crash-report.json. CRASHFLAGS
# appends, e.g. make crash CRASHFLAGS='-seeds 20 -crash-points 40' or
# the mutation check make crash CRASHFLAGS="-drop-syncs '*.ckpt*'"
# (which must FAIL).
CRASHFLAGS ?=
crash:
	$(GO) run ./cmd/chaos -mode crash -seeds 10 -out crash-report.json $(CRASHFLAGS)

# Streaming smoke: the incremental engine's seeded equivalence suite
# under the race detector, then a short seeded chaos campaign — firehose
# ingest with a drain/restart mid-sequence, labels audited tick-by-tick
# against the fault-free reference. STREAMFLAGS appends, e.g.
# make stream STREAMFLAGS='-seeds 20 -ticks 30'.
STREAMFLAGS ?=
stream:
	$(GO) test -race -short -count=1 ./internal/stream
	$(GO) run ./cmd/chaos -mode stream -seeds 5 -out stream-report.json $(STREAMFLAGS)

# Gray-failure campaign: inject faults that pass every liveness check —
# a 20x-slow worker, a flapping tree link, a degraded OST, transient
# phase errors under an exhausted retry budget — and audit the adaptive
# health layer: quarantine convergence with zero false quarantines,
# byte-identical labels, bounded retry spend, bounded wall time. The
# JSON report lands in gray-report.json. GRAYFLAGS appends, e.g.
# make gray GRAYFLAGS='-seeds 10 -gray-slow-factor 40'.
GRAYFLAGS ?=
gray:
	$(GO) run ./cmd/chaos -mode gray -seeds 5 -out gray-report.json $(GRAYFLAGS)

# Full benchmark sweep: every paper table/figure plus the ablations.
# Results land in BENCH_run.txt (raw) and BENCH_run.json (machine-
# readable name -> ns/op, B/op, allocs/op). BENCHFLAGS narrows the
# sweep, e.g. make bench BENCHFLAGS='-benchtime=1x' BENCHPKGS=./internal/dsu
# BENCHPAT selects which benchmarks run (the -bench regexp).
BENCHFLAGS ?=
BENCHPKGS ?= ./...
BENCHPAT ?= .
bench:
	$(GO) test -bench='$(BENCHPAT)' -benchmem -run='^$$' $(BENCHFLAGS) $(BENCHPKGS) > BENCH_run.txt || (cat BENCH_run.txt; exit 1)
	cat BENCH_run.txt
	$(GO) run ./cmd/benchjson -o BENCH_run.json BENCH_run.txt

# Regression gate: compare the latest BENCH_run.json against the
# committed seed baseline. Fails if any Cluster, Partition (including
# the write-stage PartitionWrite layouts), or StreamTick benchmark's
# wall clock regressed more than 20%.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_seed.json -match '^Benchmark(Cluster|Partition|PartitionWrite|StreamTick)' BENCH_run.json

# Regenerate every evaluation artifact (measured + modeled rows).
experiments:
	$(GO) run ./cmd/experiments

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
	rm -f BENCH_run.txt BENCH_run.json chaos-report.json soak-report.json crash-report.json stream-report.json gray-report.json
