# Mr. Scan reproduction — common targets.

GO ?= go

.PHONY: all build vet test race bench experiments cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Default test run: vet, the full suite, then the race detector over the
# concurrency-heavy fault-tolerance packages.
test: vet
	$(GO) test ./...
	$(GO) test -race -short ./internal/distrib ./internal/mrnet ./internal/mrscan

race:
	$(GO) test -race ./...

# Full benchmark sweep: every paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation artifact (measured + modeled rows).
experiments:
	$(GO) run ./cmd/experiments

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
