package mrscan

import (
	"math"
	"testing"
)

func TestClusterStats(t *testing.T) {
	pts := []Point{
		{ID: 0, X: 0, Y: 0, Weight: 1},
		{ID: 1, X: 2, Y: 2, Weight: 3},
		{ID: 2, X: 10, Y: 10, Weight: 5},
		{ID: 3, X: 50, Y: 50, Weight: 7}, // noise
	}
	labels := []int{0, 0, 1, -1}
	stats, err := ClusterStats(pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d clusters, want 2", len(stats))
	}
	// Sorted by size: cluster 0 (2 points) first.
	if stats[0].Cluster != 0 || stats[0].Points != 2 {
		t.Errorf("stats[0] = %+v", stats[0])
	}
	if stats[0].Weight != 4 {
		t.Errorf("weight = %v, want 4", stats[0].Weight)
	}
	if math.Abs(stats[0].Centroid.X-1) > 1e-12 || math.Abs(stats[0].Centroid.Y-1) > 1e-12 {
		t.Errorf("centroid = %+v, want (1,1)", stats[0].Centroid)
	}
	if stats[0].Bounds.MinX != 0 || stats[0].Bounds.MaxX != 2 {
		t.Errorf("bounds = %+v", stats[0].Bounds)
	}
	if stats[1].Cluster != 1 || stats[1].Points != 1 || stats[1].Weight != 5 {
		t.Errorf("stats[1] = %+v", stats[1])
	}
	if s := stats[0].String(); s == "" {
		t.Error("empty string rendering")
	}
	if got := NoiseCount(labels); got != 1 {
		t.Errorf("NoiseCount = %d, want 1", got)
	}
}

func TestClusterStatsValidation(t *testing.T) {
	if _, err := ClusterStats([]Point{{}}, nil); err == nil {
		t.Error("mismatched lengths must fail")
	}
	stats, err := ClusterStats(nil, nil)
	if err != nil || len(stats) != 0 {
		t.Errorf("empty input: %v, %v", stats, err)
	}
}

func TestClusterStatsTieOrder(t *testing.T) {
	pts := []Point{{ID: 0}, {ID: 1}}
	labels := []int{7, 3}
	stats, err := ClusterStats(pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Cluster != 3 || stats[1].Cluster != 7 {
		t.Errorf("equal sizes must order by ID: %+v", stats)
	}
}

func TestClusterStatsEndToEnd(t *testing.T) {
	pts := Twitter(10000, 21)
	_, labels, err := RunPoints(pts, Default(0.1, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ClusterStats(pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("expected clusters")
	}
	total := NoiseCount(labels)
	for _, s := range stats {
		total += s.Points
		if !s.Bounds.Contains(s.Centroid) {
			t.Errorf("cluster %d centroid outside bounds", s.Cluster)
		}
	}
	if total != len(pts) {
		t.Errorf("stats cover %d points, want %d", total, len(pts))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Points > stats[i-1].Points {
			t.Error("stats not sorted by size")
		}
	}
}
