package dataset

import "testing"

func TestFirehoseDeterministicAndUnique(t *testing.T) {
	opt := DefaultFirehoseOptions()
	a := Firehose(10, 50, 3, opt)
	b := Firehose(10, 50, 3, opt)
	if len(a) != 10 {
		t.Fatalf("got %d ticks, want 10", len(a))
	}
	seen := make(map[uint64]bool)
	for ti := range a {
		if len(a[ti]) != 50 {
			t.Fatalf("tick %d: %d points, want 50", ti, len(a[ti]))
		}
		for i := range a[ti] {
			if a[ti][i] != b[ti][i] {
				t.Fatalf("tick %d point %d: not deterministic: %v vs %v", ti, i, a[ti][i], b[ti][i])
			}
			p := a[ti][i]
			if seen[p.ID] {
				t.Fatalf("duplicate point ID %d", p.ID)
			}
			seen[p.ID] = true
			if p.X < 0 || p.X >= opt.Domain || p.Y < 0 || p.Y >= opt.Domain {
				t.Fatalf("point %v outside [0,%v)^2", p, opt.Domain)
			}
		}
	}
}

func TestFirehoseDrifts(t *testing.T) {
	// With drift on and background off, the mean position of hotspot
	// points should move over a long horizon.
	opt := DefaultFirehoseOptions()
	opt.Hotspots = 1
	opt.BackgroundFrac = 0
	opt.Churn = 0
	opt.Drift = 0.01
	batches := Firehose(60, 40, 11, opt)
	mean := func(ti int) (float64, float64) {
		var mx, my float64
		for _, p := range batches[ti] {
			mx += p.X
			my += p.Y
		}
		n := float64(len(batches[ti]))
		return mx / n, my / n
	}
	x0, y0 := mean(0)
	x1, y1 := mean(59)
	dx, dy := x1-x0, y1-y0
	if dx*dx+dy*dy < 0.01 {
		t.Fatalf("hotspot did not drift: mean moved only (%v, %v) over 60 ticks", dx, dy)
	}
}
