// Package dataset generates the synthetic workloads of the paper's
// evaluation (§4).
//
// Twitter: the paper collected 8.5M geolocated tweets and "used the
// distribution of these tweets to generate random datasets of arbitrary
// size". That empirical distribution is not redistributable, so Twitter
// points are drawn from the closest available stand-in: a weighted mixture
// over ~130 world population centers (tweet volume tracks population and
// urbanization) with per-city Gaussian spread plus a uniform rural
// background. Latitude and longitude are treated as 2D Cartesian
// coordinates, exactly as the paper does.
//
// SDSS: the Sloan Digital Sky Survey γ-frame photo objects are point
// sources (stars, galaxies) at very small angular scale — the experiment
// uses Eps = 0.00015. The generator scatters compact "objects" of a few
// pixels each over a frame, plus sparse background detections.
//
// All generators are deterministic given a seed.
package dataset

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// city is one population center of the Twitter mixture.
type city struct {
	lat, lon float64
	weight   float64 // relative tweet volume (≈ metro population, millions)
}

// cities approximates the global distribution of geolocated tweets. The
// list spans every inhabited continent; weights are metro populations in
// millions, which is the first-order driver of tweet volume.
var cities = []city{
	{40.71, -74.01, 20.1}, {34.05, -118.24, 13.2}, {41.88, -87.63, 9.5},
	{29.76, -95.37, 7.1}, {33.45, -112.07, 4.9}, {39.95, -75.17, 6.1},
	{29.42, -98.49, 2.6}, {32.72, -117.16, 3.3}, {32.78, -96.80, 7.6},
	{37.34, -121.89, 2.0}, {30.27, -97.74, 2.3}, {39.10, -94.58, 2.2},
	{25.76, -80.19, 6.2}, {33.75, -84.39, 6.1}, {42.36, -71.06, 4.9},
	{47.61, -122.33, 4.0}, {38.91, -77.04, 6.3}, {44.98, -93.27, 3.7},
	{36.17, -115.14, 2.3}, {45.52, -122.68, 2.5}, {35.22, -80.84, 2.7},
	{39.74, -104.99, 3.0}, {43.65, -79.38, 6.3}, {45.50, -73.57, 4.3},
	{49.28, -123.12, 2.6}, {19.43, -99.13, 21.8}, {20.67, -103.35, 5.3},
	{25.69, -100.32, 5.3}, {23.13, -82.38, 2.1}, {18.47, -69.89, 3.3},
	{14.63, -90.51, 3.0}, {9.93, -84.08, 2.2}, {8.98, -79.52, 1.9},
	{4.71, -74.07, 10.7}, {10.49, -66.88, 2.9}, {-12.05, -77.04, 10.7},
	{-33.45, -70.67, 6.8},
}

// citiesTail continues the table (split into blocks for readability).
var citiesTail = []city{
	{-34.60, -58.38, 15.2}, {-23.55, -46.63, 22.0}, {-22.91, -43.17, 13.5},
	{-15.79, -47.88, 4.7}, {-30.03, -51.23, 4.3}, {-3.73, -38.52, 4.0},
	{-8.05, -34.88, 4.1}, {-19.92, -43.94, 6.0}, {-34.90, -56.16, 1.8},
	{-25.26, -57.58, 3.3}, {-0.18, -78.47, 2.8}, {-2.19, -79.89, 3.1},
	{51.51, -0.13, 14.3}, {48.86, 2.35, 13.0}, {52.52, 13.40, 6.1},
	{40.42, -3.70, 6.7}, {41.39, 2.17, 5.6}, {41.90, 12.50, 4.3},
	{45.46, 9.19, 4.3}, {52.37, 4.90, 2.5}, {50.85, 4.35, 2.1},
	{48.21, 16.37, 2.9}, {52.23, 21.01, 3.1}, {50.08, 14.44, 2.7},
	{47.50, 19.04, 3.0}, {44.43, 26.10, 2.3}, {37.98, 23.73, 3.8},
	{41.01, 28.98, 15.5}, {55.76, 37.62, 17.1}, {59.93, 30.34, 5.4},
	{50.45, 30.52, 3.0}, {53.90, 27.57, 2.0}, {59.33, 18.07, 2.4},
	{59.91, 10.75, 1.7}, {55.68, 12.57, 2.1}, {60.17, 24.94, 1.5},
	{53.35, -6.26, 2.0}, {38.72, -9.14, 2.9}, {30.04, 31.24, 20.9},
	{6.52, 3.38, 14.8}, {9.06, 7.49, 3.6}, {-1.29, 36.82, 4.7},
	{-6.79, 39.21, 6.4}, {-26.20, 28.05, 9.6}, {-33.92, 18.42, 4.6},
	{-29.86, 31.02, 3.9}, {33.57, -7.59, 3.7}, {36.75, 3.06, 2.8},
	{36.81, 10.18, 2.4}, {5.36, -4.01, 5.2}, {5.56, -0.20, 2.5},
	{14.72, -17.47, 3.1}, {12.37, -1.53, 2.8}, {15.59, 32.53, 5.8},
	{9.03, 38.74, 4.8}, {-4.44, 15.27, 14.3}, {-8.84, 13.23, 8.3},
	{35.69, 139.69, 37.4}, {34.69, 135.50, 19.2}, {35.18, 136.91, 9.5},
	{33.59, 130.40, 5.5}, {43.06, 141.35, 2.7}, {37.57, 126.98, 25.6},
	{35.18, 129.08, 3.4}, {39.90, 116.41, 20.4}, {31.23, 121.47, 27.1},
	{23.13, 113.26, 13.3}, {22.54, 114.06, 12.4}, {30.57, 104.07, 9.1},
	{29.56, 106.55, 8.5}, {22.32, 114.17, 7.5}, {25.03, 121.57, 7.0},
	{14.60, 120.98, 13.9}, {-6.21, 106.85, 10.6},
}

var citiesTail2 = []city{
	{-7.25, 112.75, 2.9}, {3.14, 101.69, 8.0}, {1.35, 103.82, 5.7},
	{13.76, 100.50, 10.5}, {10.82, 106.63, 9.0}, {21.03, 105.85, 8.1},
	{23.81, 90.41, 21.0}, {28.61, 77.21, 31.0}, {19.08, 72.88, 20.7},
	{12.97, 77.59, 12.3}, {13.08, 80.27, 11.0}, {17.38, 78.49, 10.0},
	{22.57, 88.36, 14.9}, {18.52, 73.86, 6.6}, {23.02, 72.57, 8.1},
	{24.86, 67.01, 16.1}, {31.55, 74.34, 12.6}, {33.69, 73.06, 1.2},
	{34.53, 69.17, 4.4}, {35.69, 51.39, 9.5}, {33.31, 44.37, 7.5},
	{24.71, 46.68, 7.7}, {21.49, 39.19, 4.7}, {25.20, 55.27, 3.5},
	{31.95, 35.93, 2.2}, {32.09, 34.78, 4.3}, {33.89, 35.50, 2.4},
	{-33.87, 151.21, 5.4}, {-37.81, 144.96, 5.2}, {-27.47, 153.03, 2.6},
	{-31.95, 115.86, 2.1}, {-36.85, 174.76, 1.7}, {41.29, 69.24, 2.6},
	{43.24, 76.89, 2.0}, {55.03, 82.92, 1.7}, {56.84, 60.61, 1.5},
}

func init() {
	// Merge the table blocks and precompute prefix weights for sampling.
	cities = append(cities, citiesTail...)
	cities = append(cities, citiesTail2...)
	prefix = make([]float64, len(cities))
	total := 0.0
	for i, c := range cities {
		total += c.weight
		prefix[i] = total
	}
	totalWeight = total
}

var (
	prefix      []float64
	totalWeight float64
)

// TwitterOptions tunes the Twitter-like generator. Each urban point is
// drawn from a two-level Gaussian around its city: a dense downtown core
// (most tweets) and a wide suburban halo — which reproduces the extreme
// density variation driving Mr. Scan's load-balance problem (§1: "the
// running time of DBSCAN increases as a function of spatial density").
type TwitterOptions struct {
	// CoreSigma is the Gaussian spread (degrees) of a city's downtown.
	CoreSigma float64
	// CoreFrac is the fraction of a city's points drawn from the core.
	CoreFrac float64
	// SuburbSigma is the Gaussian spread of the suburban halo.
	SuburbSigma float64
	// BackgroundFrac is the fraction of points drawn uniformly over the
	// inhabited band instead of around a city.
	BackgroundFrac float64
}

// DefaultTwitterOptions sizes city cores at the 0.1-degree Eps scale of
// the experiments: downtown cores are a few Eps cells wide and far denser
// than their halos.
func DefaultTwitterOptions() TwitterOptions {
	return TwitterOptions{
		CoreSigma:      0.03,
		CoreFrac:       0.7,
		SuburbSigma:    0.3,
		BackgroundFrac: 0.03,
	}
}

// Twitter generates n points from the Twitter-like distribution.
// Coordinates are (longitude, latitude) used as plain 2D values (§4.1).
// IDs are 0..n-1 and every weight is 1.
func Twitter(n int, seed int64) []geom.Point {
	return TwitterWith(n, seed, DefaultTwitterOptions())
}

// TwitterWith generates n points with explicit options.
func TwitterWith(n int, seed int64, opt TwitterOptions) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		var x, y float64
		if rng.Float64() < opt.BackgroundFrac {
			// Rural background over the inhabited latitude band.
			x = rng.Float64()*360 - 180
			y = rng.Float64()*130 - 55
		} else {
			c := cities[pickCity(rng)]
			sigma := opt.SuburbSigma
			if rng.Float64() < opt.CoreFrac {
				sigma = opt.CoreSigma
			}
			// Heavier cities spread a little wider (bigger metro areas).
			sigma *= 0.5 + 0.5*math.Log1p(c.weight)/math.Log1p(40)
			x = c.lon + rng.NormFloat64()*sigma
			y = c.lat + rng.NormFloat64()*sigma*0.8
		}
		pts[i] = geom.Point{ID: uint64(i), X: x, Y: y, Weight: 1}
	}
	return pts
}

// pickCity samples a city index proportionally to weight.
func pickCity(rng *rand.Rand) int {
	r := rng.Float64() * totalWeight
	return sort.SearchFloat64s(prefix, r)
}

// SDSSOptions tunes the sky-survey generator.
type SDSSOptions struct {
	// FrameSize is the square frame's side length in degrees.
	FrameSize float64
	// ObjectFrac is the fraction of points belonging to compact objects
	// (the rest are background detections / noise).
	ObjectFrac float64
	// PointsPerObject is the mean number of detections per object.
	PointsPerObject int
	// ObjectSigma is the Gaussian radius of one object in degrees.
	ObjectSigma float64
}

// DefaultSDSSOptions sizes objects for the paper's SDSS parameters
// (Eps = 0.00015, MinPts = 5): object detections fall well within Eps of
// each other while distinct objects almost never overlap.
func DefaultSDSSOptions() SDSSOptions {
	return SDSSOptions{
		FrameSize:       1.0,
		ObjectFrac:      0.85,
		PointsPerObject: 12,
		ObjectSigma:     0.00004,
	}
}

// SDSS generates n points resembling γ-frame photo-object detections.
func SDSS(n int, seed int64) []geom.Point {
	return SDSSWith(n, seed, DefaultSDSSOptions())
}

// SDSSWith generates n points with explicit options.
func SDSSWith(n int, seed int64, opt SDSSOptions) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	id := uint64(0)
	objectPoints := int(float64(n) * opt.ObjectFrac)
	for len(pts) < objectPoints {
		// One object: a compact knot of detections.
		cx := rng.Float64() * opt.FrameSize
		cy := rng.Float64() * opt.FrameSize
		k := 1 + rng.Intn(2*opt.PointsPerObject)
		for j := 0; j < k && len(pts) < objectPoints; j++ {
			pts = append(pts, geom.Point{
				ID:     id,
				X:      cx + rng.NormFloat64()*opt.ObjectSigma,
				Y:      cy + rng.NormFloat64()*opt.ObjectSigma,
				Weight: 1,
			})
			id++
		}
	}
	for len(pts) < n {
		pts = append(pts, geom.Point{
			ID:     id,
			X:      rng.Float64() * opt.FrameSize,
			Y:      rng.Float64() * opt.FrameSize,
			Weight: 1,
		})
		id++
	}
	return pts
}

// Uniform generates n points uniformly over r.
func Uniform(n int, seed int64, r geom.Rect) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			ID:     uint64(i),
			X:      r.MinX + rng.Float64()*r.Width(),
			Y:      r.MinY + rng.Float64()*r.Height(),
			Weight: 1,
		}
	}
	return pts
}

// Moons generates the classic two-interleaved-half-moons shape: the
// canonical non-convex clustering benchmark, exercising DBSCAN's headline
// ability to "find irregularly shaped clusters" (§1). The two moons
// interlock but never come within `gap` of each other.
func Moons(n int, seed int64, noise float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		t := rng.Float64() * math.Pi
		var x, y float64
		if i%2 == 0 {
			// Upper moon: half circle centered at origin.
			x = math.Cos(t)
			y = math.Sin(t)
		} else {
			// Lower moon: shifted, flipped half circle.
			x = 1 - math.Cos(t)
			y = 0.5 - math.Sin(t)
		}
		pts[i] = geom.Point{
			ID:     uint64(i),
			X:      x + rng.NormFloat64()*noise,
			Y:      y + rng.NormFloat64()*noise,
			Weight: 1,
		}
	}
	return pts
}

// Blobs generates n points in k Gaussian blobs with the given sigma,
// centers drawn uniformly over r. Useful for controlled cluster-count
// tests.
func Blobs(n, k int, sigma float64, seed int64, r geom.Rect) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Point{
			X: r.MinX + rng.Float64()*r.Width(),
			Y: r.MinY + rng.Float64()*r.Height(),
		}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[i%k]
		pts[i] = geom.Point{
			ID:     uint64(i),
			X:      c.X + rng.NormFloat64()*sigma,
			Y:      c.Y + rng.NormFloat64()*sigma,
			Weight: 1,
		}
	}
	return pts
}
