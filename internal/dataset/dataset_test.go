package dataset

import (
	"math"
	"testing"

	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/grid"
)

func TestTwitterBasics(t *testing.T) {
	pts := Twitter(10000, 1)
	if len(pts) != 10000 {
		t.Fatalf("generated %d points, want 10000", len(pts))
	}
	seen := map[uint64]bool{}
	for i, p := range pts {
		if p.ID != uint64(i) {
			t.Fatalf("point %d has ID %d", i, p.ID)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate ID %d", p.ID)
		}
		seen[p.ID] = true
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("NaN coordinate at %d", i)
		}
		if p.Weight != 1 {
			t.Fatalf("weight = %v, want 1", p.Weight)
		}
	}
}

func TestTwitterDeterministic(t *testing.T) {
	a := Twitter(1000, 7)
	b := Twitter(1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	c := Twitter(1000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical data")
	}
}

func TestTwitterIsHighlySkewed(t *testing.T) {
	// The whole point of the Twitter workload: extreme spatial density
	// variation. The most populous Eps-cell must hold far more than the
	// mean cell count.
	pts := Twitter(50000, 2)
	g := grid.New(0.1)
	h := g.HistogramOf(pts)
	_, maxN := h.MaxCell()
	mean := float64(h.Total()) / float64(len(h.Counts))
	if float64(maxN) < 20*mean {
		t.Errorf("max cell %d vs mean %.1f: distribution not skewed enough", maxN, mean)
	}
}

func TestTwitterClustersAtPaperParams(t *testing.T) {
	// At Eps=0.1, MinPts=40 the city cores must form real clusters while
	// background points stay noise.
	pts := Twitter(20000, 3)
	res, err := dbscan.Cluster(pts, dbscan.Params{Eps: 0.1, MinPts: 40}, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters < 5 {
		t.Errorf("NumClusters = %d, want >= 5 (major metros)", res.NumClusters)
	}
	noise := 0
	for _, l := range res.Labels {
		if l == dbscan.Noise {
			noise++
		}
	}
	if noise == 0 {
		t.Error("expected some noise points from the rural background")
	}
	if noise > len(pts)/2 {
		t.Errorf("noise = %d of %d: urban mixture too weak", noise, len(pts))
	}
}

func TestSDSSBasics(t *testing.T) {
	pts := SDSS(5000, 4)
	if len(pts) != 5000 {
		t.Fatalf("generated %d points, want 5000", len(pts))
	}
	opt := DefaultSDSSOptions()
	for i, p := range pts {
		if p.ID != uint64(i) {
			t.Fatalf("point %d has ID %d", i, p.ID)
		}
		// Objects may spill slightly outside the frame via their Gaussian
		// tails; detections stay within a few sigma of it.
		if p.X < -0.01 || p.X > opt.FrameSize+0.01 || p.Y < -0.01 || p.Y > opt.FrameSize+0.01 {
			t.Fatalf("point %d = (%v,%v) far outside the frame", i, p.X, p.Y)
		}
	}
}

func TestSDSSClustersAtPaperParams(t *testing.T) {
	// §5.2 parameters: Eps = 0.00015, MinPts = 5. Objects must be found
	// as clusters.
	pts := SDSS(8000, 5)
	res, err := dbscan.Cluster(pts, dbscan.Params{Eps: 0.00015, MinPts: 5}, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters < 50 {
		t.Errorf("NumClusters = %d, want many compact objects", res.NumClusters)
	}
}

func TestSDSSDeterministic(t *testing.T) {
	a := SDSS(2000, 11)
	b := SDSS(2000, 11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestUniform(t *testing.T) {
	r := geom.Rect{MinX: -5, MinY: 2, MaxX: 5, MaxY: 12}
	pts := Uniform(3000, 6, r)
	for i, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("point %d = %v outside bounds", i, p)
		}
	}
	// Rough uniformity: each quadrant holds a fair share.
	quad := [4]int{}
	for _, p := range pts {
		q := 0
		if p.X > 0 {
			q |= 1
		}
		if p.Y > 7 {
			q |= 2
		}
		quad[q]++
	}
	for q, n := range quad {
		if n < 500 || n > 1000 {
			t.Errorf("quadrant %d holds %d of 3000 points", q, n)
		}
	}
}

func TestBlobs(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pts := Blobs(5000, 8, 0.5, 9, r)
	if len(pts) != 5000 {
		t.Fatalf("generated %d points", len(pts))
	}
	res, err := dbscan.Cluster(pts, dbscan.Params{Eps: 0.5, MinPts: 10}, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	// Blobs can land close enough to merge; expect at least half of them
	// and no more than requested.
	if res.NumClusters < 4 || res.NumClusters > 8 {
		t.Errorf("NumClusters = %d, want 4..8 from 8 blobs", res.NumClusters)
	}
}

func TestMoonsTwoNonConvexClusters(t *testing.T) {
	pts := Moons(2000, 13, 0.04)
	res, err := dbscan.Cluster(pts, dbscan.Params{Eps: 0.15, MinPts: 8}, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2 interleaved moons", res.NumClusters)
	}
	// The moons interleave horizontally: a convex method (e.g. 2-means
	// on x) could not separate them; DBSCAN must put all even-index
	// (upper moon) core points in one cluster.
	upper := -1
	for i := 0; i < len(pts); i += 2 {
		if res.Labels[i] < 0 {
			continue
		}
		if upper == -1 {
			upper = res.Labels[i]
		} else if res.Labels[i] != upper {
			t.Fatalf("upper moon split between clusters %d and %d", upper, res.Labels[i])
		}
	}
	for i := 1; i < len(pts); i += 2 {
		if res.Labels[i] >= 0 && res.Labels[i] == upper {
			t.Fatal("moons merged")
		}
	}
}

func TestCityTableSane(t *testing.T) {
	if len(cities) < 100 {
		t.Fatalf("city table holds %d entries, want >= 100", len(cities))
	}
	for i, c := range cities {
		if c.lat < -90 || c.lat > 90 || c.lon < -180 || c.lon > 180 {
			t.Errorf("city %d has bad coordinates (%v,%v)", i, c.lat, c.lon)
		}
		if c.weight <= 0 {
			t.Errorf("city %d has non-positive weight %v", i, c.weight)
		}
	}
	if totalWeight <= 0 || len(prefix) != len(cities) {
		t.Error("prefix weights not initialized")
	}
}
