package dataset

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// FirehoseOptions tunes the streaming Twitter-style generator.
type FirehoseOptions struct {
	// Hotspots is the number of simultaneously active hotspots (cities,
	// events) points cluster around.
	Hotspots int
	// Sigma is the Gaussian spread of a hotspot's points.
	Sigma float64
	// Drift is the per-tick hotspot displacement as a fraction of the
	// domain side — hotspots wander, so the set of dirtied grid cells
	// moves between ticks.
	Drift float64
	// BackgroundFrac is the fraction of points drawn uniformly over the
	// whole domain instead of around a hotspot.
	BackgroundFrac float64
	// Churn is the per-tick probability that a hotspot dies and respawns
	// elsewhere, modeling events starting and ending.
	Churn float64
	// Domain is the square domain side length; points lie in
	// [0,Domain)².
	Domain float64
}

// DefaultFirehoseOptions sizes hotspots at the 0.1-degree Eps scale the
// Twitter evaluation uses, on a unit-free 10×10 domain.
func DefaultFirehoseOptions() FirehoseOptions {
	return FirehoseOptions{
		Hotspots:       6,
		Sigma:          0.05,
		Drift:          0.004,
		BackgroundFrac: 0.15,
		Churn:          0.02,
		Domain:         10,
	}
}

// Firehose generates a seeded stream of tick batches: ticks batches of
// perTick points each, drawn around drifting hotspots. Point IDs are
// globally unique and increase with arrival order, so batches feed
// straight into a stream engine. The same (ticks, perTick, seed, opt)
// always yields the same stream.
func Firehose(ticks, perTick int, seed int64, opt FirehoseOptions) [][]geom.Point {
	rng := rand.New(rand.NewSource(seed))
	type hotspot struct {
		x, y   float64
		vx, vy float64
	}
	spawn := func() hotspot {
		angle := rng.Float64() * 2 * math.Pi
		step := opt.Drift * opt.Domain
		return hotspot{
			x:  rng.Float64() * opt.Domain,
			y:  rng.Float64() * opt.Domain,
			vx: math.Cos(angle) * step,
			vy: math.Sin(angle) * step,
		}
	}
	spots := make([]hotspot, opt.Hotspots)
	for i := range spots {
		spots[i] = spawn()
	}
	clamp := func(v float64) float64 {
		// Reflect at the domain edges so hotspots stay inside.
		if v < 0 {
			v = -v
		}
		if v > opt.Domain {
			v = 2*opt.Domain - v
		}
		return math.Mod(math.Abs(v), opt.Domain)
	}

	out := make([][]geom.Point, ticks)
	id := uint64(0)
	for t := 0; t < ticks; t++ {
		// Advance the hotspot field.
		for i := range spots {
			if rng.Float64() < opt.Churn {
				spots[i] = spawn()
				continue
			}
			spots[i].x = clamp(spots[i].x + spots[i].vx)
			spots[i].y = clamp(spots[i].y + spots[i].vy)
		}
		batch := make([]geom.Point, perTick)
		for j := range batch {
			var x, y float64
			if len(spots) == 0 || rng.Float64() < opt.BackgroundFrac {
				x = rng.Float64() * opt.Domain
				y = rng.Float64() * opt.Domain
			} else {
				h := spots[rng.Intn(len(spots))]
				x = clamp(h.x + rng.NormFloat64()*opt.Sigma)
				y = clamp(h.y + rng.NormFloat64()*opt.Sigma)
			}
			batch[j] = geom.Point{ID: id, X: x, Y: y, Weight: 1}
			id++
		}
		out[t] = batch
	}
	return out
}
