// Package distrib runs Mr. Scan's cluster phase across real operating
// system process boundaries: a coordinator partitions the input and ships
// each partition over TCP to worker processes, which run the GPGPU DBSCAN
// locally and return cluster summaries and labels; the coordinator then
// merges and sweeps exactly as the in-process pipeline does.
//
// This is the deployment shape of the real system — MRNet backends on
// separate Titan nodes receiving work from the tree — realized with
// nothing but the standard library: gob-encoded messages in versioned,
// CRC32C-checksummed envelopes over TCP (see envelope.go). The
// in-process pipeline (internal/mrscan) remains the fast path; this
// package exists so the clustering protocol demonstrably survives a
// process boundary, including one that corrupts bits in flight.
package distrib

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dbscan"
	"repro/internal/faultinject"
	"repro/internal/gdbscan"
	"repro/internal/geom"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/health"
	"repro/internal/integrity"
	"repro/internal/merge"
	"repro/internal/telemetry"
)

// WorkRequest is one partition shipped to a worker.
type WorkRequest struct {
	Leaf     int
	Eps      float64
	MinPts   int
	DenseBox bool
	// Owned points first; Shadow completes the Eps-neighborhoods.
	Owned  []geom.Point
	Shadow []geom.Point
	// Ping asks the worker for a liveness acknowledgement instead of
	// work (coordinator heartbeats).
	Ping bool
	// Done tells the worker to exit after acknowledging.
	Done bool
}

// WorkResponse is a worker's result for one partition.
type WorkResponse struct {
	Leaf        int
	Summaries   []*merge.Summary
	Labels      []int32 // over Owned only
	NumClusters int
	// Ping acknowledges a heartbeat.
	Ping bool
	// Err carries a worker-side failure (gob cannot encode error values).
	Err string
}

// Hello is the first message a worker sends after dialing in.
type Hello struct {
	Pid int
}

// IsConnClosed reports whether err looks like the far end closing the
// connection — what a worker sees when the coordinator drops it after a
// failure or shuts down without a Done message. Workers treat it as a
// normal exit.
func IsConnClosed(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	return strings.Contains(s, "use of closed network connection") ||
		strings.Contains(s, "EOF") ||
		strings.Contains(s, "connection reset")
}

// WorkerOptions tunes a worker's behavior.
type WorkerOptions struct {
	// Delay is added before serving each work request (pings are not
	// delayed) — a simulated slow node for straggler-mitigation tests
	// and experiments.
	Delay time.Duration
	// LimpOps, when positive, limits Delay to the first LimpOps work
	// requests: the worker limps and then recovers — the gray-failure
	// shape that exercises quarantine, probation, and re-admission.
	// Zero keeps Delay on every request.
	LimpOps int
}

// Worker dials the coordinator and serves work requests until a Done
// request or connection loss. Each request runs the same GPGPU DBSCAN +
// summary construction as an in-process leaf.
func Worker(coordAddr string, pid int) error {
	return WorkerWithOptions(coordAddr, pid, WorkerOptions{})
}

// WorkerWithOptions is Worker with behavior overrides.
func WorkerWithOptions(coordAddr string, pid int, opt WorkerOptions) error {
	conn, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("distrib: worker dialing coordinator: %w", err)
	}
	defer conn.Close()
	hello, err := gobEncode(&Hello{Pid: pid})
	if err != nil {
		return fmt.Errorf("distrib: worker hello: %w", err)
	}
	// lastSent backs the NACK protocol: whenever the coordinator's CRC
	// rejects our last envelope, recvVerified resends these bytes.
	lastSent := hello
	if err := writeEnvelope(conn, envData, hello); err != nil {
		return fmt.Errorf("distrib: worker hello: %w", err)
	}
	// One simulated device and one workspace for the connection's
	// lifetime: a worker serves many partitions back-to-back, and the
	// device buffer pool plus host scratch amortize across all of them
	// exactly as on a cluster-phase leaf.
	var scratch workerScratch
	served := 0
	for {
		p, err := recvVerified(conn, &lastSent)
		if err != nil {
			return fmt.Errorf("distrib: worker receiving: %w", err)
		}
		var req WorkRequest
		if err := gobDecode(p, &req); err != nil {
			return fmt.Errorf("distrib: worker receiving: %w", err)
		}
		if req.Done {
			return nil
		}
		var resp *WorkResponse
		if req.Ping {
			resp = &WorkResponse{Leaf: req.Leaf, Ping: true}
		} else {
			if opt.Delay > 0 && (opt.LimpOps == 0 || served < opt.LimpOps) {
				time.Sleep(opt.Delay)
			}
			served++
			resp = serve(&req, &scratch)
		}
		out, err := gobEncode(resp)
		if err != nil {
			return fmt.Errorf("distrib: worker replying: %w", err)
		}
		lastSent = out
		if err := writeEnvelope(conn, envData, out); err != nil {
			return fmt.Errorf("distrib: worker replying: %w", err)
		}
	}
}

// workerScratch is the state a worker process reuses across the
// partitions it serves: its simulated device (with buffer pool) and the
// gdbscan host workspace.
type workerScratch struct {
	dev *gpusim.Device
	ws  gdbscan.Workspace
}

// serve executes one partition, exactly like a cluster-phase leaf.
func serve(req *WorkRequest, scratch *workerScratch) *WorkResponse {
	resp := &WorkResponse{Leaf: req.Leaf}
	combined := make([]geom.Point, 0, len(req.Owned)+len(req.Shadow))
	combined = append(combined, req.Owned...)
	combined = append(combined, req.Shadow...)
	if scratch.dev == nil {
		scratch.dev = gpusim.New(gpusim.K20(), nil)
	}
	res, err := gdbscan.Cluster(scratch.dev, combined, gdbscan.Options{
		Params:    dbscan.Params{Eps: req.Eps, MinPts: req.MinPts},
		DenseBox:  req.DenseBox,
		Workspace: &scratch.ws,
	})
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	g := grid.New(req.Eps)
	sums, err := merge.BuildSummaries(g, req.Leaf, combined, len(req.Owned), res.Labels, res.Core, res.NumClusters)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Summaries = sums
	resp.Labels = res.Labels[:len(req.Owned)]
	resp.NumClusters = res.NumClusters
	return resp
}

// RetryPolicy governs re-dispatch of partitions after worker failures:
// a partition whose worker dies is re-queued to a surviving worker after
// an exponential backoff with jitter. The zero value gets defaults from
// withDefaults. Re-execution is safe because DBSCAN partitions are
// deterministic and side-effect-free.
type RetryPolicy struct {
	// MaxAttempts bounds how many workers one partition may be sent to
	// before the run fails (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first re-dispatch (default
	// 5ms); each further attempt doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 250ms).
	MaxDelay time.Duration
	// MaxElapsed caps how long one worker may keep failing exchanges
	// with verified payload corruption (default 2s). Corruption
	// redispatches do not consume MaxAttempts — re-execution is free and
	// no bad data was trusted — so this is the bound that removes a
	// persistently-corrupting worker from the pool, exactly as a crashed
	// one would be. The clock starts at a worker's first corrupt
	// exchange and resets on its next clean one.
	MaxElapsed time.Duration
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 5 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 250 * time.Millisecond
	}
	if r.MaxElapsed <= 0 {
		r.MaxElapsed = 2 * time.Second
	}
	return r
}

// backoff returns the delay before re-dispatch attempt `attempt`
// (1-based), exponential with up to 50% additive jitter.
func (r RetryPolicy) backoff(attempt int) time.Duration {
	d := r.BaseDelay
	for i := 1; i < attempt && d < r.MaxDelay; i++ {
		d *= 2
	}
	if d > r.MaxDelay {
		d = r.MaxDelay
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// Stats counts fault-tolerance events on the coordinator. It is a
// read-side view over the coordinator's telemetry counters (see
// SetTelemetry) — the registry is the single source of truth, so the
// same numbers appear in the Prometheus exposition and the JSON run
// report of the distributed CLIs.
type Stats struct {
	// Reassigned counts partitions re-queued after a worker failure.
	Reassigned int
	// WorkersLost counts workers dropped (connection errors, timeouts,
	// failed heartbeats).
	WorkersLost int
	// HedgesLaunched counts straggler partitions speculatively re-issued
	// to a second worker (StragglerFactor); HedgesWon counts hedges that
	// finished before the original attempt — each one is tail latency
	// the mitigation removed.
	HedgesLaunched int
	HedgesWon      int
	// CorruptionRedispatches counts partitions re-queued because an
	// exchange failed CRC verification past its retransmit budget.
	// These do not consume a partition's MaxAttempts; they are bounded
	// per worker by RetryPolicy.MaxElapsed.
	CorruptionRedispatches int
	// ServeOrder records the request indices in the order they were
	// handed to workers, across every dispatch of this coordinator. The
	// dispatch queues partitions largest first, so the head of each
	// dispatch's window is its biggest partition — the slowest-node
	// bound (§5) made observable.
	ServeOrder []int
}

// Coordinator accepts worker connections and dispatches partitions.
// Configure the exported policy fields before calling Dispatch.
type Coordinator struct {
	// Retry governs partition re-dispatch after worker failures.
	Retry RetryPolicy
	// RequestTimeout bounds each send+receive exchange with a worker;
	// an expired deadline marks the worker dead and re-queues its
	// partition. Zero disables deadlines (a hung worker then blocks the
	// run — set a timeout in production).
	RequestTimeout time.Duration
	// StragglerFactor enables hedged dispatch when > 0: a partition
	// whose in-flight time exceeds StragglerFactor × the running p95 of
	// completed service times (after a few samples exist) is
	// speculatively re-issued to an idle worker. The first result wins;
	// the loser's result is discarded on arrival, and a loser still
	// sitting in the queue is skipped. This is the classic defense
	// against the paper's observation that "the time of the cluster
	// phase is dictated by the slowest node" (§5.1.1). At most one hedge
	// is launched per partition. Values ≤ 1 are aggressive; 2–4 is
	// typical. Zero disables hedging.
	StragglerFactor float64
	// OnResponse, when set, is invoked once per partition with the
	// winning response, from the worker goroutine that received it (so
	// calls are concurrent). The distributed CLI uses it to write
	// per-partition checkpoints as results stream in.
	OnResponse func(index int, resp *WorkResponse)
	// Health, when set, scores every worker (component "worker.<idx>",
	// class "worker"): exchange latencies against the fleet p50, errors,
	// and verified corruption. A quarantined worker stops receiving
	// partitions and is instead probed with cheap pings every
	// ProbeInterval until it earns Probation; clean real work from
	// Probation re-admits it. Set Health before SetTelemetry so its
	// scores export on the run hub.
	Health *health.Tracker
	// Budget, when set, meters partition redispatches (site
	// "distrib.redispatch") — both failure requeues and corruption
	// redispatches. Exhaustion fails the dispatch loudly instead of
	// letting correlated gray faults degrade into a silent retry storm.
	Budget *health.Budget
	// ProbeInterval spaces probes to a quarantined worker (default 5ms).
	ProbeInterval time.Duration

	ln      net.Listener
	mu      sync.Mutex
	workers []*workerConn
	// acceptSeq numbers workers in accept order across AcceptWorkers
	// calls, so WorkerFaultSite indices stay unique for the
	// coordinator's lifetime.
	acceptSeq  int
	plan       *faultinject.Plan
	closed     bool
	serveOrder []int
	hub        *telemetry.Hub
	parent     *telemetry.Span
	cm         coordMetrics
}

// coordMetrics caches the coordinator's counter handles. The hub is
// installed at construction (a private one until SetTelemetry), so the
// counters are always live and Stats() reads them back.
type coordMetrics struct {
	retries           *telemetry.Counter
	workersLost       *telemetry.Counter
	hedgesLaunched    *telemetry.Counter
	hedgesWon         *telemetry.Counter
	corruptRedispatch *telemetry.Counter
	probes            *telemetry.Counter
}

func resolveCoordMetrics(h *telemetry.Hub) coordMetrics {
	return coordMetrics{
		retries:           h.Counter("distrib_retries_total"),
		workersLost:       h.Counter("distrib_workers_lost_total"),
		hedgesLaunched:    h.Counter("distrib_hedges_launched_total"),
		hedgesWon:         h.Counter("distrib_hedges_won_total"),
		corruptRedispatch: h.Counter("distrib_corrupt_redispatches_total"),
		probes:            h.Counter("distrib_probes_total"),
	}
}

// WorkerComponent names the health component for the i-th accepted
// worker, as tracked by the Health field.
func WorkerComponent(i int) string { return fmt.Sprintf("worker.%d", i) }

// SetTelemetry points the coordinator's counters, dispatch spans, and
// fault-tolerance events at a run-level hub, carrying over counts
// accumulated on the private default hub. The Health tracker and retry
// Budget (if installed) inherit the same hub.
func (c *Coordinator) SetTelemetry(h *telemetry.Hub) {
	if h == nil {
		return
	}
	c.mu.Lock()
	old := c.cm
	c.hub = h
	c.cm = resolveCoordMetrics(h)
	c.cm.retries.Add(old.retries.Value())
	c.cm.workersLost.Add(old.workersLost.Value())
	c.cm.hedgesLaunched.Add(old.hedgesLaunched.Value())
	c.cm.hedgesWon.Add(old.hedgesWon.Value())
	c.cm.corruptRedispatch.Add(old.corruptRedispatch.Value())
	c.cm.probes.Add(old.probes.Value())
	c.mu.Unlock()
	c.Health.SetTelemetry(h)
	c.Budget.SetTelemetry(h)
}

// SetTraceParent nests the coordinator's spans and events under s.
func (c *Coordinator) SetTraceParent(s *telemetry.Span) {
	c.mu.Lock()
	c.parent = s
	c.mu.Unlock()
}

func (c *Coordinator) telemetry() (*telemetry.Hub, *telemetry.Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hub, c.parent
}

type workerConn struct {
	// mu serializes request/response exchanges, so heartbeats can
	// interleave with dispatch without corrupting the envelope stream.
	mu   sync.Mutex
	conn net.Conn
	pid  int
	// idx is the worker's accept order — the index WorkerFaultSite
	// targets for per-worker injection. Stable across removals of other
	// workers.
	idx  int
	dead atomic.Bool
	// corruptSince is the UnixNano of the worker's first corrupt
	// exchange in the current streak (0 = clean); when the streak
	// outlives RetryPolicy.MaxElapsed the worker is removed.
	corruptSince atomic.Int64
	// busySince is the UnixNano at which the worker's current real
	// dispatch item was pulled (0 = idle). Set at pull time — before the
	// exchange can block behind the connection mutex — so a limping
	// worker's in-flight time is visible to the health monitor while the
	// operation is still running.
	busySince atomic.Int64
	// slowCrossings counts how many multiples of the class slow
	// threshold the current in-flight operation has already been
	// reported at, so the monitor emits one observation per crossing.
	slowCrossings atomic.Int64
}

var errWorkerDead = fmt.Errorf("distrib: worker connection already closed")

// exchange performs one request/response round trip over the
// checksummed envelope protocol, bounded by timeout when positive.
// Coordinator-side fault injection flips wire bits here: send-side at
// distrib.request and the per-worker site (the request the worker
// receives), receive-side at distrib.response (the response as it
// crossed the wire). Every CRC failure — the worker's (signalled by its
// NACK) or our own — is counted as a detection; an exchange that
// exhausts maxEnvelopeRetries fails with ErrPayloadCorrupt and the
// dispatch layer redispatches the partition.
func (c *Coordinator) exchange(w *workerConn, req *WorkRequest, timeout time.Duration) (*WorkResponse, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead.Load() {
		return nil, errWorkerDead
	}
	c.mu.Lock()
	plan := c.plan
	c.mu.Unlock()
	if timeout > 0 {
		if err := w.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
		defer w.conn.SetDeadline(time.Time{})
	}
	payload, err := gobEncode(req)
	if err != nil {
		return nil, err
	}
	sendSites := []faultinject.Site{faultinject.DistribRequest, WorkerFaultSite(w.idx)}
	// send emits the request envelope, flipping one wire bit when a
	// corrupt rule fires (at most one site per attempt, so injections
	// and detections stay one-to-one). The payload stays clean: a
	// retransmit re-consults the plan rather than replaying the flip.
	send := func() (faultinject.Site, error) {
		wire := encodeEnvelope(envData, payload)
		var injected faultinject.Site
		for _, s := range sendSites {
			if cr := plan.CorruptCheck(s, int64(len(payload))); cr != nil {
				wire[envHdrLen+cr.Offset] ^= 1 << cr.Bit
				injected = s
				break
			}
		}
		_, werr := w.conn.Write(wire)
		return injected, werr
	}
	pending, err := send()
	if err != nil {
		return nil, err
	}
	nacks, resends := 0, 0
	for {
		kind, p, crc, err := readEnvelope(w.conn)
		if err != nil {
			if pending != "" {
				// The flipped request died with the connection before
				// any verifier saw it: masked, not detected.
				c.corruptionMasked(pending)
			}
			return nil, err
		}
		switch kind {
		case envNack:
			// The worker's CRC caught our corrupted request.
			if pending != "" {
				c.corruptionDetected(pending, resends < maxEnvelopeRetries)
				pending = ""
			}
			resends++
			if resends > maxEnvelopeRetries {
				return nil, fmt.Errorf("distrib: worker %d rejected %d retransmits: %w", w.pid, resends, ErrPayloadCorrupt)
			}
			c.envelopeRetransmit()
			if pending, err = send(); err != nil {
				return nil, err
			}
		case envData:
			injSite := faultinject.Site("")
			if len(p) > 0 {
				if cr := plan.CorruptCheck(faultinject.DistribResponse, int64(len(p))); cr != nil {
					p[cr.Offset] ^= 1 << cr.Bit
					injSite = faultinject.DistribResponse
				}
			}
			if integrity.Checksum(p) != crc {
				if injSite == "" {
					injSite = faultinject.DistribResponse
				}
				nacks++
				healed := nacks <= maxEnvelopeRetries
				c.corruptionDetected(injSite, healed)
				if !healed {
					return nil, fmt.Errorf("distrib: worker %d: giving up after %d corrupt responses: %w", w.pid, nacks, ErrPayloadCorrupt)
				}
				c.envelopeRetransmit()
				if err := writeEnvelope(w.conn, envNack, nil); err != nil {
					return nil, err
				}
				continue
			}
			if pending != "" {
				// Unreachable in the current protocol (a corrupted
				// request is always NACKed first), kept so the ledger
				// cannot leak an injection.
				c.corruptionMasked(pending)
			}
			var resp WorkResponse
			if err := gobDecode(p, &resp); err != nil {
				return nil, err
			}
			return &resp, nil
		default:
			return nil, fmt.Errorf("distrib: unknown envelope kind %d", kind)
		}
	}
}

// corruptionDetected counts one CRC-caught corruption on the shared
// integrity counter, labeled by injection site.
func (c *Coordinator) corruptionDetected(site faultinject.Site, healed bool) {
	hub, parent := c.telemetry()
	hub.Counter(integrity.MetricDetected, "site", string(site)).Inc()
	hub.Event(parent, "integrity.corruption.detected",
		telemetry.String("site", string(site)), telemetry.Bool("healed", healed))
}

// corruptionMasked counts an injected flip that no verifier ever saw
// (the connection died first).
func (c *Coordinator) corruptionMasked(site faultinject.Site) {
	hub, _ := c.telemetry()
	hub.Counter(integrity.MetricMasked, "site", string(site)).Inc()
}

func (c *Coordinator) envelopeRetransmit() {
	hub, _ := c.telemetry()
	hub.Counter("distrib_envelope_retransmits_total").Inc()
}

// NewCoordinator listens for workers on a loopback port.
func NewCoordinator() (*Coordinator, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("distrib: coordinator listen: %w", err)
	}
	c := &Coordinator{ln: ln, hub: telemetry.New(nil)}
	c.cm = resolveCoordMetrics(c.hub)
	return c, nil
}

// Addr returns the address workers must dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// SetFaultPlan installs the fault plan consulted before every worker
// exchange: the distrib.conn site fires for any worker, and the
// per-worker sites returned by WorkerFaultSite target one worker
// deterministically. A firing rule severs the connection, exactly as a
// crashed worker node would.
func (c *Coordinator) SetFaultPlan(p *faultinject.Plan) {
	c.mu.Lock()
	c.plan = p
	c.mu.Unlock()
}

// WorkerFaultSite returns the fault site consulted before each exchange
// with the i-th connected worker (accept order), for targeted
// kill-a-worker tests. A corrupt rule armed on the same site flips a
// wire bit of only that worker's requests, for targeted
// persistent-corrupter tests.
func WorkerFaultSite(i int) faultinject.Site {
	return faultinject.Site(fmt.Sprintf("distrib.worker.%d", i))
}

// Stats returns fault-tolerance counters, read back from the telemetry
// registry.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Reassigned:             int(c.cm.retries.Value()),
		WorkersLost:            int(c.cm.workersLost.Value()),
		HedgesLaunched:         int(c.cm.hedgesLaunched.Value()),
		HedgesWon:              int(c.cm.hedgesWon.Value()),
		CorruptionRedispatches: int(c.cm.corruptRedispatch.Value()),
		ServeOrder:             append([]int(nil), c.serveOrder...),
	}
}

// AcceptWorkers blocks until n workers have dialed in and identified
// themselves. A positive timeout bounds the whole accept loop — workers
// that fail to launch must not hang the coordinator forever.
func (c *Coordinator) AcceptWorkers(n int, timeout time.Duration) error {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if tl, ok := c.ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline) // zero time clears any prior deadline
		defer tl.SetDeadline(time.Time{})
	}
	for i := 0; i < n; i++ {
		conn, err := c.ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return fmt.Errorf("distrib: timed out after %v waiting for worker %d of %d: %w", timeout, i+1, n, err)
			}
			return fmt.Errorf("distrib: accepting worker %d: %w", i, err)
		}
		c.mu.Lock()
		seq := c.acceptSeq
		c.acceptSeq++
		c.mu.Unlock()
		w := &workerConn{conn: conn, idx: seq}
		if !deadline.IsZero() {
			conn.SetReadDeadline(deadline)
		}
		// The hello rides the same checksummed envelope as every other
		// message, so a peer from another protocol revision (or plain
		// garbage on the port) is rejected here with a ProtocolError
		// naming the mismatched field, not deep inside a dispatch.
		kind, p, crc, err := readEnvelope(conn)
		if err != nil {
			conn.Close()
			return fmt.Errorf("distrib: worker %d hello: %w", i, err)
		}
		if kind != envData || integrity.Checksum(p) != crc {
			conn.Close()
			return fmt.Errorf("distrib: worker %d hello: %w", i, ErrPayloadCorrupt)
		}
		var hello Hello
		if err := gobDecode(p, &hello); err != nil {
			conn.Close()
			return fmt.Errorf("distrib: worker %d hello: %w", i, err)
		}
		conn.SetReadDeadline(time.Time{})
		w.pid = hello.Pid
		c.mu.Lock()
		c.workers = append(c.workers, w)
		c.mu.Unlock()
	}
	return nil
}

// NumWorkers returns the number of connected workers.
func (c *Coordinator) NumWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// removeWorker drops a dead worker: the connection is closed promptly so
// neither end keeps encoding into a wedged stream, and the worker no
// longer receives dispatches.
func (c *Coordinator) removeWorker(w *workerConn) {
	if w.dead.Swap(true) {
		return
	}
	w.conn.Close()
	c.mu.Lock()
	for i, o := range c.workers {
		if o == w {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	hub, parent, cm := c.hub, c.parent, c.cm
	c.mu.Unlock()
	hub.Event(parent, "distrib.worker_lost", telemetry.Int("pid", w.pid))
	cm.workersLost.Inc()
}

// Heartbeat pings every connected worker in parallel (bounded by
// timeout, default 2s) and drops the ones that fail to acknowledge.
// It returns the number of surviving workers. Call it between
// dispatches to evict workers that died while idle; during a dispatch,
// per-request deadlines perform the same detection inline.
func (c *Coordinator) Heartbeat(timeout time.Duration) int {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	c.mu.Lock()
	workers := append([]*workerConn(nil), c.workers...)
	plan := c.plan
	hub, parent := c.hub, c.parent
	c.mu.Unlock()
	sp := hub.Start(parent, "distrib.heartbeat", telemetry.Int("workers", len(workers)))
	defer sp.End()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *workerConn) {
			defer wg.Done()
			if err := checkConnFault(plan, w.idx); err != nil {
				c.removeWorker(w)
				return
			}
			resp, err := c.exchange(w, &WorkRequest{Ping: true}, timeout)
			if err != nil || !resp.Ping {
				c.removeWorker(w)
			}
		}(w)
	}
	wg.Wait()
	return c.NumWorkers()
}

// checkConnFault consults the generic and per-worker connection fault
// sites.
func checkConnFault(plan *faultinject.Plan, wi int) error {
	if err := plan.Check(faultinject.DistribConn); err != nil {
		return err
	}
	return plan.Check(WorkerFaultSite(wi))
}

// workItem is one queue entry: a request index, possibly a hedge copy.
type workItem struct {
	ri    int
	hedge bool
}

// quantile returns the q-quantile (0..1) of d (nearest-rank on a sorted
// copy). Callers guarantee len(d) > 0.
func quantile(d []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// stragglerMinSamples is how many completed exchanges the hedger needs
// before the running p95 is meaningful.
const stragglerMinSamples = 3

// Dispatch is DispatchContext without a deadline.
func (c *Coordinator) Dispatch(reqs []WorkRequest) ([]*WorkResponse, error) {
	return c.DispatchContext(context.Background(), reqs)
}

// DispatchContext ships every partition to the worker pool and collects
// responses indexed by request position.
//
// Partitions are pulled from a shared queue, so fast workers take more
// of them. A worker whose exchange fails (connection error, injected
// fault, or RequestTimeout expiry) is dropped immediately — its
// connection closed, its outstanding partition re-queued to the
// survivors after a backoff (Retry). The dispatch fails only when a
// partition exhausts Retry.MaxAttempts, a worker reports an
// application-level error (resp.Err — deterministic, so re-execution
// cannot help), or zero workers survive.
//
// With StragglerFactor set, a hedging monitor watches in-flight
// partitions and re-issues stragglers to idle workers (see the field
// doc). The dispatch returns as soon as every partition has a winning
// response — it does not wait out a straggler whose result lost; such a
// worker finishes its exchange in the background and then observes the
// completed dispatch.
//
// Cancelling ctx aborts the dispatch: every worker connection is closed
// (unblocking any exchange in flight — the pool does not survive a
// cancellation) and the context's error is returned.
func (c *Coordinator) DispatchContext(ctx context.Context, reqs []WorkRequest) ([]*WorkResponse, error) {
	c.mu.Lock()
	workers := append([]*workerConn(nil), c.workers...)
	plan := c.plan
	hub, parent, cm := c.hub, c.parent, c.cm
	c.mu.Unlock()
	retry := c.Retry.withDefaults()
	timeout := c.RequestTimeout
	tracker, budget := c.Health, c.Budget
	probeInterval := c.ProbeInterval
	if probeInterval <= 0 {
		probeInterval = 5 * time.Millisecond
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("distrib: no workers connected")
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	dsp := hub.Start(parent, "distrib.dispatch",
		telemetry.Int("partitions", len(reqs)), telemetry.Int("workers", len(workers)))
	defer dsp.End()

	responses := make([]*WorkResponse, len(reqs))
	// Sized for the worst case — every attempt plus one hedge per index
	// — so queue sends never block.
	queue := make(chan workItem, len(reqs)*(retry.MaxAttempts+1))
	// Largest partitions first: the dispatch finishes when its slowest
	// partition does (§5's slowest-node bound), so the biggest must
	// never be the one still queued when the pool drains.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := &reqs[order[a]], &reqs[order[b]]
		return len(ra.Owned)+len(ra.Shadow) > len(rb.Owned)+len(rb.Shadow)
	})
	for _, i := range order {
		queue <- workItem{ri: i}
	}
	attempts := make([]int, len(reqs)) // guarded by hmu

	var (
		pending  atomic.Int64
		alive    atomic.Int64
		allDone  = make(chan struct{})
		abort    = make(chan struct{})
		failOnce sync.Once
		failMu   sync.Mutex
		failErr  error

		// Per-index dispatch state and the service-time samples feeding
		// the straggler monitor.
		hmu       sync.Mutex
		done      = make([]bool, len(reqs))
		inflight  = make([]int, len(reqs))
		started   = make([]time.Time, len(reqs))
		hedged    = make([]bool, len(reqs))
		durations []time.Duration
	)
	pending.Store(int64(len(reqs)))
	alive.Store(int64(len(workers)))
	fail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
		failOnce.Do(func() { close(abort) })
	}
	// requeue hands a failed partition back to the pool after a backoff,
	// or aborts the run when the partition is out of attempts or the
	// retry budget denies the redispatch.
	requeue := func(ri int, cause error) {
		hmu.Lock()
		attempts[ri]++
		out := attempts[ri] >= retry.MaxAttempts
		n := attempts[ri]
		hmu.Unlock()
		if out {
			fail(fmt.Errorf("distrib: leaf %d failed on %d workers, giving up: %w",
				reqs[ri].Leaf, n, cause))
			return
		}
		if !budget.Take("distrib.redispatch") {
			fail(fmt.Errorf("distrib: leaf %d redispatch after %w: %w",
				reqs[ri].Leaf, cause, health.ErrBudgetExhausted))
			return
		}
		cm.retries.Inc()
		hub.Event(dsp, "distrib.retry",
			telemetry.Int("leaf", reqs[ri].Leaf), telemetry.Int("attempt", n))
		delay := retry.backoff(n)
		go func() {
			time.Sleep(delay)
			queue <- workItem{ri: ri}
		}()
	}

	// Cancellation watcher: a dead context must unblock exchanges that
	// are mid-Decode, so it severs every connection.
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				fail(fmt.Errorf("distrib: dispatch aborted: %w", ctx.Err()))
				for _, w := range workers {
					c.removeWorker(w)
				}
			case <-allDone:
			case <-abort:
			}
		}()
	}

	// Straggler monitor: hedge any partition whose single in-flight
	// attempt has outlived StragglerFactor × the running p95.
	if c.StragglerFactor > 0 {
		go func() {
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-allDone:
					return
				case <-abort:
					return
				case <-tick.C:
				}
				hmu.Lock()
				if len(durations) < stragglerMinSamples {
					hmu.Unlock()
					continue
				}
				p95 := quantile(durations, 0.95)
				threshold := time.Duration(float64(p95) * c.StragglerFactor)
				var launched int
				for ri := range reqs {
					if done[ri] || hedged[ri] || inflight[ri] != 1 {
						continue
					}
					if time.Since(started[ri]) <= threshold {
						continue
					}
					hedged[ri] = true
					launched++
					queue <- workItem{ri: ri, hedge: true}
					hub.Event(dsp, "distrib.hedge", telemetry.Int("leaf", reqs[ri].Leaf))
				}
				hmu.Unlock()
				if launched > 0 {
					cm.hedgesLaunched.Add(int64(launched))
				}
			}
		}()
	}

	// Health monitor: while a worker's real dispatch item is in flight,
	// emit one observation per crossing of the class slow threshold, so
	// a limping worker accumulates evidence before its operation
	// completes (or its hedge wins).
	if tracker != nil {
		go func() {
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-allDone:
					return
				case <-abort:
					return
				case <-tick.C:
				}
				thr := tracker.SlowThreshold("worker")
				if thr <= 0 {
					continue
				}
				c.mu.Lock()
				live := append([]*workerConn(nil), c.workers...)
				c.mu.Unlock()
				for _, w := range live {
					b := w.busySince.Load()
					if b == 0 {
						continue
					}
					elapsed := time.Since(time.Unix(0, b))
					k := w.slowCrossings.Load()
					if elapsed > time.Duration(k+1)*thr {
						w.slowCrossings.Add(1)
						tracker.ObserveInFlight(WorkerComponent(w.idx), elapsed)
					}
				}
			}
		}()
	}

	// probe pings a quarantined worker so it can earn Probation; a probe
	// that errors removes the worker like any failed exchange. Returns
	// false when the dispatch (or the worker) is finished.
	probe := func(w *workerConn) bool {
		comp := WorkerComponent(w.idx)
		begin := time.Now()
		resp, err := c.exchange(w, &WorkRequest{Ping: true}, timeout)
		ok := err == nil && resp.Ping
		tracker.ObserveProbe(comp, time.Since(begin), ok)
		cm.probes.Inc()
		hub.Event(dsp, "distrib.probe",
			telemetry.Int("worker", w.idx), telemetry.Bool("ok", ok))
		if err != nil {
			c.removeWorker(w)
			if alive.Add(-1) == 0 {
				fail(fmt.Errorf("distrib: no surviving workers: %w", err))
			}
			return false
		}
		select {
		case <-abort:
			return false
		case <-allDone:
			return false
		case <-time.After(probeInterval):
			return true
		}
	}

	for _, w := range workers {
		go func(w *workerConn) {
			comp := WorkerComponent(w.idx)
			for {
				// A quarantined worker takes no partitions: it is probed
				// until it earns Probation (or the dispatch ends).
				for tracker.Quarantined(comp) {
					if !probe(w) {
						return
					}
				}
				var it workItem
				select {
				case <-abort:
					return
				case <-allDone:
					return
				case it = <-queue:
				}
				ri := it.ri
				hmu.Lock()
				if done[ri] {
					hmu.Unlock()
					continue // hedge or requeue that already lost
				}
				inflight[ri]++
				if inflight[ri] == 1 {
					started[ri] = time.Now()
				}
				hmu.Unlock()
				c.mu.Lock()
				c.serveOrder = append(c.serveOrder, ri)
				c.mu.Unlock()
				if err := checkConnFault(plan, w.idx); err != nil {
					// Injected connection fault: sever exactly as a
					// crashed worker node would.
					c.removeWorker(w)
					hmu.Lock()
					inflight[ri]--
					covered := done[ri] || inflight[ri] > 0
					hmu.Unlock()
					if !covered {
						requeue(ri, err)
					}
					if alive.Add(-1) == 0 {
						fail(fmt.Errorf("distrib: leaf %d: no surviving workers: %w", reqs[ri].Leaf, err))
					}
					return
				}
				begin := time.Now()
				w.busySince.Store(begin.UnixNano())
				w.slowCrossings.Store(0)
				resp, err := c.exchange(w, &reqs[ri], timeout)
				w.busySince.Store(0)
				if errors.Is(err, ErrPayloadCorrupt) && ctx.Err() == nil {
					// Verified corruption: the exchange failed CRC past
					// its retransmit budget, so nothing was trusted and
					// re-execution is free. Redispatch after a backoff
					// WITHOUT consuming the partition's MaxAttempts; a
					// worker whose corruption streak outlives
					// Retry.MaxElapsed is removed like a crashed node.
					now := time.Now()
					first := w.corruptSince.Load()
					if first == 0 {
						first = now.UnixNano()
						w.corruptSince.Store(first)
					}
					tracker.ObserveCorruption(comp)
					hmu.Lock()
					inflight[ri]--
					covered := done[ri] || inflight[ri] > 0
					hmu.Unlock()
					cm.corruptRedispatch.Inc()
					hub.Event(dsp, "distrib.corrupt_redispatch",
						telemetry.Int("leaf", reqs[ri].Leaf), telemetry.Int("worker", w.idx))
					if !covered {
						if !budget.Take("distrib.redispatch") {
							fail(fmt.Errorf("distrib: leaf %d redispatch after %w: %w",
								reqs[ri].Leaf, err, health.ErrBudgetExhausted))
							return
						}
						delay := retry.backoff(1)
						go func() {
							time.Sleep(delay)
							queue <- workItem{ri: ri}
						}()
					}
					if now.Sub(time.Unix(0, first)) > retry.MaxElapsed {
						c.removeWorker(w)
						hub.Event(dsp, "distrib.worker_corrupt_removed", telemetry.Int("worker", w.idx))
						if alive.Add(-1) == 0 {
							fail(fmt.Errorf("distrib: leaf %d: no surviving workers: %w", reqs[ri].Leaf, err))
						}
						return
					}
					continue
				}
				if err != nil {
					c.removeWorker(w)
					tracker.ObserveError(comp)
					hmu.Lock()
					inflight[ri]--
					// Another copy in flight (or already won) covers
					// this index; re-queue only an uncovered one.
					covered := done[ri] || inflight[ri] > 0
					hmu.Unlock()
					if ctx.Err() != nil {
						return
					}
					if !covered {
						requeue(ri, err)
					}
					if alive.Add(-1) == 0 {
						fail(fmt.Errorf("distrib: leaf %d: no surviving workers: %w", reqs[ri].Leaf, err))
					}
					return
				}
				w.corruptSince.Store(0) // clean exchange ends any corruption streak
				if resp.Err != "" {
					fail(fmt.Errorf("distrib: worker %d leaf %d: %s", w.pid, resp.Leaf, resp.Err))
					return
				}
				tracker.ObserveSuccess(comp, time.Since(begin))
				hmu.Lock()
				inflight[ri]--
				if done[ri] {
					hmu.Unlock()
					continue // lost the race: discard
				}
				done[ri] = true
				durations = append(durations, time.Since(begin))
				hmu.Unlock()
				responses[ri] = resp
				if it.hedge {
					cm.hedgesWon.Inc()
					hub.Event(dsp, "distrib.hedge_won", telemetry.Int("leaf", reqs[ri].Leaf))
				}
				if c.OnResponse != nil {
					c.OnResponse(ri, resp)
				}
				if pending.Add(-1) == 0 {
					close(allDone)
					return
				}
			}
		}(w)
	}
	select {
	case <-allDone:
		return responses, nil
	case <-abort:
		failMu.Lock()
		err := failErr
		failMu.Unlock()
		return nil, err
	}
}

// Shutdown tells every worker to exit and closes the listener. It is
// idempotent: repeated calls (or a Shutdown racing a failure path) are
// no-ops.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	workers := c.workers
	c.workers = nil
	c.mu.Unlock()
	// Worker mutexes are taken without c.mu held: exchange nests
	// c.mu inside w.mu (for plan and telemetry reads), so holding
	// c.mu here would deadlock against any in-flight exchange — a
	// probe of a quarantined worker, a hedge, or a late original.
	for _, w := range workers {
		w.mu.Lock()
		if p, err := gobEncode(&WorkRequest{Done: true}); err == nil {
			_ = writeEnvelope(w.conn, envData, p)
		}
		w.conn.Close()
		w.mu.Unlock()
		w.dead.Store(true)
	}
	c.ln.Close()
}
