// Package distrib runs Mr. Scan's cluster phase across real operating
// system process boundaries: a coordinator partitions the input and ships
// each partition over TCP to worker processes, which run the GPGPU DBSCAN
// locally and return cluster summaries and labels; the coordinator then
// merges and sweeps exactly as the in-process pipeline does.
//
// This is the deployment shape of the real system — MRNet backends on
// separate Titan nodes receiving work from the tree — realized with
// nothing but the standard library: gob-encoded messages over
// length-delimited TCP streams. The in-process pipeline (internal/mrscan)
// remains the fast path; this package exists so the clustering protocol
// demonstrably survives a process boundary.
package distrib

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/dbscan"
	"repro/internal/gdbscan"
	"repro/internal/geom"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/merge"
)

// WorkRequest is one partition shipped to a worker.
type WorkRequest struct {
	Leaf     int
	Eps      float64
	MinPts   int
	DenseBox bool
	// Owned points first; Shadow completes the Eps-neighborhoods.
	Owned  []geom.Point
	Shadow []geom.Point
	// Done tells the worker to exit after acknowledging.
	Done bool
}

// WorkResponse is a worker's result for one partition.
type WorkResponse struct {
	Leaf        int
	Summaries   []*merge.Summary
	Labels      []int32 // over Owned only
	NumClusters int
	// Err carries a worker-side failure (gob cannot encode error values).
	Err string
}

// Hello is the first message a worker sends after dialing in.
type Hello struct {
	Pid int
}

// Worker dials the coordinator and serves work requests until a Done
// request or connection loss. Each request runs the same GPGPU DBSCAN +
// summary construction as an in-process leaf.
func Worker(coordAddr string, pid int) error {
	conn, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("distrib: worker dialing coordinator: %w", err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(Hello{Pid: pid}); err != nil {
		return fmt.Errorf("distrib: worker hello: %w", err)
	}
	for {
		var req WorkRequest
		if err := dec.Decode(&req); err != nil {
			return fmt.Errorf("distrib: worker receiving: %w", err)
		}
		if req.Done {
			return nil
		}
		resp := serve(&req)
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("distrib: worker replying: %w", err)
		}
	}
}

// serve executes one partition, exactly like a cluster-phase leaf.
func serve(req *WorkRequest) *WorkResponse {
	resp := &WorkResponse{Leaf: req.Leaf}
	combined := make([]geom.Point, 0, len(req.Owned)+len(req.Shadow))
	combined = append(combined, req.Owned...)
	combined = append(combined, req.Shadow...)
	dev := gpusim.New(gpusim.K20(), nil)
	res, err := gdbscan.Cluster(dev, combined, gdbscan.Options{
		Params:   dbscan.Params{Eps: req.Eps, MinPts: req.MinPts},
		DenseBox: req.DenseBox,
	})
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	g := grid.New(req.Eps)
	sums, err := merge.BuildSummaries(g, req.Leaf, combined, len(req.Owned), res.Labels, res.Core, res.NumClusters)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Summaries = sums
	resp.Labels = res.Labels[:len(req.Owned)]
	resp.NumClusters = res.NumClusters
	return resp
}

// Coordinator accepts worker connections and dispatches partitions.
type Coordinator struct {
	ln      net.Listener
	mu      sync.Mutex
	workers []*workerConn
}

type workerConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	pid  int
}

// NewCoordinator listens for workers on a loopback port.
func NewCoordinator() (*Coordinator, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("distrib: coordinator listen: %w", err)
	}
	return &Coordinator{ln: ln}, nil
}

// Addr returns the address workers must dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// AcceptWorkers blocks until n workers have dialed in and identified
// themselves.
func (c *Coordinator) AcceptWorkers(n int) error {
	for i := 0; i < n; i++ {
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("distrib: accepting worker %d: %w", i, err)
		}
		w := &workerConn{
			conn: conn,
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
		}
		var hello Hello
		if err := w.dec.Decode(&hello); err != nil {
			conn.Close()
			return fmt.Errorf("distrib: worker %d hello: %w", i, err)
		}
		w.pid = hello.Pid
		c.mu.Lock()
		c.workers = append(c.workers, w)
		c.mu.Unlock()
	}
	return nil
}

// NumWorkers returns the number of connected workers.
func (c *Coordinator) NumWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Dispatch ships every partition to the worker pool (round-robin, each
// worker handling its share sequentially) and collects responses indexed
// by leaf.
func (c *Coordinator) Dispatch(reqs []WorkRequest) ([]*WorkResponse, error) {
	c.mu.Lock()
	workers := append([]*workerConn(nil), c.workers...)
	c.mu.Unlock()
	if len(workers) == 0 {
		return nil, fmt.Errorf("distrib: no workers connected")
	}
	responses := make([]*WorkResponse, len(reqs))
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w *workerConn) {
			defer wg.Done()
			for ri := wi; ri < len(reqs); ri += len(workers) {
				if err := w.enc.Encode(&reqs[ri]); err != nil {
					errs[wi] = fmt.Errorf("distrib: sending leaf %d to worker %d: %w", reqs[ri].Leaf, wi, err)
					return
				}
				var resp WorkResponse
				if err := w.dec.Decode(&resp); err != nil {
					errs[wi] = fmt.Errorf("distrib: receiving leaf %d from worker %d: %w", reqs[ri].Leaf, wi, err)
					return
				}
				if resp.Err != "" {
					errs[wi] = fmt.Errorf("distrib: worker %d leaf %d: %s", wi, resp.Leaf, resp.Err)
					return
				}
				r := resp
				responses[ri] = &r
			}
		}(wi, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return responses, nil
}

// Shutdown tells every worker to exit and closes the listener.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		_ = w.enc.Encode(&WorkRequest{Done: true})
		w.conn.Close()
	}
	c.workers = nil
	c.ln.Close()
}
