package distrib

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/quality"
	"repro/internal/telemetry"
)

// startMixedWorkers launches fast workers plus one deliberately slow
// straggler (delay per request), tolerating the connection teardown
// errors a cancelled dispatch produces.
func startMixedWorkers(t *testing.T, c *Coordinator, fast int, delay time.Duration) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < fast; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = Worker(c.Addr(), 2000+i)
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = WorkerWithOptions(c.Addr(), 2999, WorkerOptions{Delay: delay})
	}()
	if err := c.AcceptWorkers(fast+1, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	return &wg
}

// TestStragglerHedging: one worker serves every request with a large
// delay. Without hedging the dispatch would block on that worker's
// partition for the full delay; with hedging the partition is re-issued
// to an idle fast worker and the run finishes well under the delay.
func TestStragglerHedging(t *testing.T) {
	const delay = 2 * time.Second
	pts := dataset.Twitter(6000, 3)
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.StragglerFactor = 3
	hub := telemetry.New(nil)
	c.SetTelemetry(hub)
	wg := startMixedWorkers(t, c, 3, delay)
	start := time.Now()
	res, err := c.Run(pts, Options{Eps: 0.1, MinPts: 10, Leaves: 12, DenseBox: true})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.HedgesLaunched < 1 || st.HedgesWon < 1 {
		t.Fatalf("hedges launched=%d won=%d, want >= 1 each", st.HedgesLaunched, st.HedgesWon)
	}
	// Every hedge decision must be visible in the trace and counters.
	if got := len(hub.Trace.FindEvents("distrib.hedge")); got != st.HedgesLaunched {
		t.Errorf("trace has %d distrib.hedge events, stats say %d launched", got, st.HedgesLaunched)
	}
	if got := len(hub.Trace.FindEvents("distrib.hedge_won")); got != st.HedgesWon {
		t.Errorf("trace has %d distrib.hedge_won events, stats say %d won", got, st.HedgesWon)
	}
	if got := hub.Counter("distrib_hedges_launched_total").Value(); got != int64(st.HedgesLaunched) {
		t.Errorf("distrib_hedges_launched_total = %d, stats say %d", got, st.HedgesLaunched)
	}
	if elapsed >= delay {
		t.Fatalf("dispatch took %v — hedging did not beat the %v straggler", elapsed, delay)
	}
	// The hedged run's output must still be correct (losers discarded).
	ref, err := dbscan.Cluster(pts, dbscan.Params{Eps: 0.1, MinPts: 10}, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	score, err := quality.Score(ref.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.995 {
		t.Errorf("quality = %.4f, want >= 0.995", score)
	}
	c.Shutdown()
	wg.Wait()
}

// TestDispatchContextCancel: a deadline shorter than the workers'
// service time aborts the dispatch promptly with a wrapped context
// error — blocked exchanges are unblocked by severing the connections.
func TestDispatchContextCancel(t *testing.T) {
	const delay = 2 * time.Second
	pts := dataset.Twitter(2000, 4)
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	// Both workers are slow: every in-flight exchange must be unblocked.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = WorkerWithOptions(c.Addr(), 3000+i, WorkerOptions{Delay: delay})
		}(i)
	}
	if err := c.AcceptWorkers(2, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	reqs := make([]WorkRequest, 4)
	for i := range reqs {
		reqs[i] = WorkRequest{Leaf: i, Eps: 0.1, MinPts: 10, Owned: pts, DenseBox: true}
	}
	start := time.Now()
	_, err = c.DispatchContext(ctx, reqs)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if elapsed >= delay {
		t.Fatalf("cancelled dispatch took %v, want well under the %v service time", elapsed, delay)
	}
	wg.Wait() // severed connections must also release the workers
}

// TestRunCheckpointResume: a run with a checkpoint store snapshots every
// partition; a second coordinator over the same store restores them all
// (or all but a corrupted one) and produces identical labels.
func TestRunCheckpointResume(t *testing.T) {
	pts := dataset.Twitter(6000, 5)
	opt := Options{Eps: 0.1, MinPts: 10, Leaves: 8, DenseBox: true}
	bk, err := checkpoint.DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	run := func(store *checkpoint.Store) *Result {
		t.Helper()
		c, err := NewCoordinator()
		if err != nil {
			t.Fatal(err)
		}
		wg := startWorkers(t, c, 2)
		o := opt
		o.Checkpoint = store
		res, err := c.Run(pts, o)
		if err != nil {
			t.Fatal(err)
		}
		c.Shutdown()
		wg.Wait()
		return res
	}

	res1 := run(checkpoint.NewStore(bk, "dist-run"))
	if res1.RestoredPartitions != 0 {
		t.Fatalf("first run restored %d partitions, want 0", res1.RestoredPartitions)
	}
	// Same store, new coordinator (a restarted process): everything
	// restores, nothing is dispatched.
	res2 := run(checkpoint.NewStore(bk, "dist-run"))
	if res2.RestoredPartitions != opt.Leaves {
		t.Fatalf("second run restored %d partitions, want %d", res2.RestoredPartitions, opt.Leaves)
	}
	for i := range res1.Labels {
		if res1.Labels[i] != res2.Labels[i] {
			t.Fatalf("label %d differs after restore: %d vs %d", i, res1.Labels[i], res2.Labels[i])
		}
	}

	// Corrupt one snapshot: only that partition re-dispatches.
	store := checkpoint.NewStore(bk, "dist-run")
	var resp WorkResponse
	if err := store.Load(clusterSnapshot(3), &resp); err != nil {
		t.Fatal(err)
	}
	resp.Leaf = 999 // wrong contents under the right name
	if err := store.Save(clusterSnapshot(3), &resp); err != nil {
		t.Fatal(err)
	}
	res3 := run(checkpoint.NewStore(bk, "dist-run"))
	if res3.RestoredPartitions != opt.Leaves-1 {
		t.Fatalf("third run restored %d partitions, want %d", res3.RestoredPartitions, opt.Leaves-1)
	}
	for i := range res1.Labels {
		if res1.Labels[i] != res3.Labels[i] {
			t.Fatalf("label %d differs after partial restore", i)
		}
	}
}

// TestRunCheckpointResumeTruncatedSnapshot: a snapshot file cut short
// on disk (a coordinator killed mid-write, a filesystem that lost the
// tail) must not poison the resume — verification rejects the torn
// envelope, exactly that partition re-dispatches, and the labels come
// out identical.
func TestRunCheckpointResumeTruncatedSnapshot(t *testing.T) {
	pts := dataset.Twitter(6000, 7)
	opt := Options{Eps: 0.1, MinPts: 10, Leaves: 6, DenseBox: true}
	dir := t.TempDir()
	bk, err := checkpoint.DirFS(dir)
	if err != nil {
		t.Fatal(err)
	}

	run := func() *Result {
		t.Helper()
		c, err := NewCoordinator()
		if err != nil {
			t.Fatal(err)
		}
		wg := startWorkers(t, c, 2)
		o := opt
		o.Checkpoint = checkpoint.NewStore(bk, "trunc-run")
		res, err := c.Run(pts, o)
		if err != nil {
			t.Fatal(err)
		}
		c.Shutdown()
		wg.Wait()
		return res
	}

	res1 := run()

	// Tear the tail off one snapshot, as a crash mid-write would.
	snap := filepath.Join(dir, "ckpt-"+clusterSnapshot(2)+".ckpt")
	fi, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(snap, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	store := checkpoint.NewStore(bk, "trunc-run")
	var resp WorkResponse
	if err := store.Load(clusterSnapshot(2), &resp); err == nil {
		t.Fatal("Load accepted a truncated snapshot")
	}

	res2 := run()
	if res2.RestoredPartitions != opt.Leaves-1 {
		t.Fatalf("resume restored %d partitions, want %d (truncated one re-dispatched)",
			res2.RestoredPartitions, opt.Leaves-1)
	}
	for i := range res1.Labels {
		if res1.Labels[i] != res2.Labels[i] {
			t.Fatalf("label %d differs after truncated-snapshot resume: %d vs %d",
				i, res1.Labels[i], res2.Labels[i])
		}
	}
}
