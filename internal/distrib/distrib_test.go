package distrib

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/quality"
)

// startWorkers launches n protocol workers as goroutines dialing the
// coordinator over real TCP (the protocol is identical whether the other
// end is a goroutine or a separate process; TestMain exercises the
// process case).
func startWorkers(t *testing.T, c *Coordinator, n int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := Worker(c.Addr(), 1000+i); err != nil && !IsConnClosed(err) {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	if err := c.AcceptWorkers(n, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	return &wg
}

func TestDistributedMatchesReference(t *testing.T) {
	pts := dataset.Twitter(10000, 1)
	ref, err := dbscan.Cluster(pts, dbscan.Params{Eps: 0.1, MinPts: 40}, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, c, 3)
	res, err := c.Run(pts, Options{Eps: 0.1, MinPts: 40, Leaves: 8, DenseBox: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	wg.Wait()
	if res.NumClusters != ref.NumClusters {
		t.Errorf("NumClusters = %d, want %d", res.NumClusters, ref.NumClusters)
	}
	score, err := quality.Score(ref.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.995 {
		t.Errorf("quality = %.4f, want >= 0.995", score)
	}
}

func TestDistributedMoreLeavesThanWorkers(t *testing.T) {
	pts := dataset.Twitter(6000, 2)
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, c, 2)
	// 11 partitions over 2 workers: each worker serves several leaves
	// sequentially over its single connection.
	res, err := c.Run(pts, Options{Eps: 0.1, MinPts: 10, Leaves: 11, DenseBox: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	wg.Wait()
	ref, err := dbscan.Cluster(pts, dbscan.Params{Eps: 0.1, MinPts: 10}, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	score, err := quality.Score(ref.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.995 {
		t.Errorf("quality = %.4f", score)
	}
}

func TestDispatchWithoutWorkers(t *testing.T) {
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Dispatch([]WorkRequest{{}}); err == nil {
		t.Error("dispatch with no workers must fail")
	}
	if _, err := c.Run(nil, Options{Eps: 0.1, MinPts: 4, Leaves: 0}); err == nil {
		t.Error("zero leaves must fail")
	}
}

func TestWorkerErrorPropagates(t *testing.T) {
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, c, 1)
	// Invalid parameters surface from the worker as a response error.
	reqs := []WorkRequest{{Leaf: 0, Eps: -1, MinPts: 4}}
	_, err = c.Dispatch(reqs)
	if err == nil || !strings.Contains(err.Error(), "Eps") {
		t.Errorf("err = %v, want worker-side Eps validation error", err)
	}
	c.Shutdown()
	wg.Wait()
}

// TestMain doubles as the worker-process entry point: when the test
// binary is re-executed with MRSCAN_DISTRIB_WORKER set, it runs the
// worker loop instead of the tests — letting TestRealProcessWorkers spawn
// genuine OS processes without a separate binary.
func TestMain(m *testing.M) {
	if addr := os.Getenv("MRSCAN_DISTRIB_WORKER"); addr != "" {
		if err := Worker(addr, os.Getpid()); err != nil && !IsConnClosed(err) {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestDispatchLargestFirst: with a single worker, the dispatch must hand
// out partitions in descending size order — the dispatch ends when its
// slowest partition finishes, so the biggest cannot be the last queued.
func TestDispatchLargestFirst(t *testing.T) {
	pts := dataset.Twitter(200, 3)
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, c, 1)
	// Sizes 1, 3, 2 points (plus a common tail so every request is valid).
	reqs := []WorkRequest{
		{Leaf: 0, Eps: 0.1, MinPts: 4, Owned: pts[:1]},
		{Leaf: 1, Eps: 0.1, MinPts: 4, Owned: pts[:3]},
		{Leaf: 2, Eps: 0.1, MinPts: 4, Owned: pts[:2]},
	}
	resps, err := c.Dispatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	wg.Wait()
	for i, r := range resps {
		if r == nil || r.Leaf != reqs[i].Leaf {
			t.Fatalf("responses not indexed by request position: %+v", resps)
		}
	}
	st := c.Stats()
	want := []int{1, 2, 0} // descending by size: 3, 2, 1 points
	if len(st.ServeOrder) != len(want) {
		t.Fatalf("ServeOrder = %v, want %v", st.ServeOrder, want)
	}
	for i := range want {
		if st.ServeOrder[i] != want[i] {
			t.Fatalf("ServeOrder = %v, want %v (largest partition first)", st.ServeOrder, want)
		}
	}
}
