package distrib

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/integrity"
	"repro/internal/telemetry"
)

// TestAcceptWorkersRejectsForeignProtocol: a peer speaking another
// protocol (or plain garbage) is rejected at handshake time with a
// ProtocolError naming the mismatched field, never accepted into the
// worker pool.
func TestAcceptWorkersRejectsForeignProtocol(t *testing.T) {
	badVersion := make([]byte, envHdrLen)
	copy(badVersion, envMagic)
	badVersion[2] = envVersion + 7
	badVersion[3] = envData
	binary.LittleEndian.PutUint32(badVersion[4:8], 0)

	cases := []struct {
		name  string
		wire  []byte
		field string
	}{
		{"http speaker", []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"), "magic"},
		{"future revision", badVersion, "version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewCoordinator()
			if err != nil {
				t.Fatal(err)
			}
			defer c.Shutdown()
			go func() {
				conn, err := net.Dial("tcp", c.Addr())
				if err != nil {
					return
				}
				conn.Write(tc.wire)
				// Keep the conn open so the reject is a parse decision,
				// not a torn read.
				time.Sleep(2 * time.Second)
				conn.Close()
			}()
			err = c.AcceptWorkers(1, 5*time.Second)
			if err == nil {
				t.Fatal("AcceptWorkers admitted a foreign-protocol peer")
			}
			if !integrity.IsProtocolMismatch(err) {
				t.Fatalf("err = %v, want a ProtocolError", err)
			}
		})
	}
}

// TestEnvelopeCorruptionHealsTransparently: single bit flips on the
// request and response wires are caught by the envelope CRC, NACKed,
// and healed by retransmission — the dispatch output is identical to a
// fault-free run and no partition is redispatched.
func TestEnvelopeCorruptionHealsTransparently(t *testing.T) {
	pts := dataset.Twitter(4000, 9)
	want, cleanStats := runOnce(t, pts, 2, nil)
	if cleanStats.CorruptionRedispatches != 0 {
		t.Fatalf("fault-free run redispatched: %+v", cleanStats)
	}

	plan := faultinject.New(11).
		Arm(faultinject.DistribRequest, faultinject.Rule{Corrupt: true, Times: 1}).
		Arm(faultinject.DistribResponse, faultinject.Rule{Corrupt: true, Times: 1})
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.RequestTimeout = 30 * time.Second
	c.SetFaultPlan(plan)
	hub := telemetry.New(nil)
	c.SetTelemetry(hub)
	wg := startWorkers(t, c, 2)
	res, err := c.Run(pts, Options{Eps: 0.1, MinPts: 10, Leaves: 9, DenseBox: true})
	if err != nil {
		t.Fatalf("run under envelope corruption: %v", err)
	}
	stats := c.Stats()
	c.Shutdown()
	wg.Wait()

	for _, site := range []faultinject.Site{faultinject.DistribRequest, faultinject.DistribResponse} {
		injected := plan.CorruptionsInjected(site)
		if injected == 0 {
			t.Errorf("%s: rule never fired", site)
		}
		detected := hub.Counter(integrity.MetricDetected, "site", string(site)).Value()
		masked := hub.Counter(integrity.MetricMasked, "site", string(site)).Value()
		if detected+masked != injected {
			t.Errorf("%s ledger: injected %d, detected %d + masked %d", site, injected, detected, masked)
		}
	}
	if stats.CorruptionRedispatches != 0 {
		t.Errorf("CorruptionRedispatches = %d: transient flips should heal by retransmit, not redispatch",
			stats.CorruptionRedispatches)
	}
	if stats.WorkersLost != 0 {
		t.Errorf("WorkersLost = %d, want 0", stats.WorkersLost)
	}
	for i := range want {
		if res.Labels[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d: healed corruption changed the clustering", i, res.Labels[i], want[i])
		}
	}
}

// TestPersistentCorrupterRemoved: a worker whose every exchange fails
// verification past the retransmit budget burns redispatches until its
// corruption streak exceeds Retry.MaxElapsed, then is removed from the
// pool like a crashed node — and the run still completes correctly on
// the survivors.
func TestPersistentCorrupterRemoved(t *testing.T) {
	pts := dataset.Twitter(4000, 13)
	want, _ := runOnce(t, pts, 3, nil)

	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.RequestTimeout = 30 * time.Second
	c.Retry = RetryPolicy{MaxAttempts: 3, MaxElapsed: 20 * time.Millisecond}
	// Worker 0 (accept order) corrupts every exchange, forever.
	c.SetFaultPlan(faultinject.New(0).
		Arm(WorkerFaultSite(0), faultinject.Rule{Corrupt: true}))

	// Clean workers serve slowly enough that the dispatch comfortably
	// outlives MaxElapsed, so the corrupter's removal deadline passes
	// while work remains.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = WorkerWithOptions(c.Addr(), 3000+i, WorkerOptions{Delay: 25 * time.Millisecond})
		}(i)
	}
	if err := c.AcceptWorkers(3, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(pts, Options{Eps: 0.1, MinPts: 10, Leaves: 9, DenseBox: true})
	if err != nil {
		t.Fatalf("run with a persistent corrupter: %v", err)
	}
	stats := c.Stats()
	c.Shutdown()
	wg.Wait()

	if stats.CorruptionRedispatches == 0 {
		t.Error("CorruptionRedispatches = 0: the corrupter's exchanges should have failed verification")
	}
	if stats.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1 (the persistent corrupter)", stats.WorkersLost)
	}
	for i := range want {
		if res.Labels[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, res.Labels[i], want[i])
		}
	}
}

// TestCorruptResponderRemovedByMaxElapsed drives the MaxElapsed removal
// branch itself: a raw protocol speaker that answers every request with
// a corrupt envelope and resends the same bytes on every NACK. The
// coordinator exhausts its NACK budget per exchange (ErrPayloadCorrupt
// → redispatch, no MaxAttempts consumed) while the responder never
// crashes — only the corruption-streak clock can remove it.
func TestCorruptResponderRemovedByMaxElapsed(t *testing.T) {
	pts := dataset.Twitter(4000, 13)
	want, _ := runOnce(t, pts, 3, nil)

	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.RequestTimeout = 30 * time.Second
	c.Retry = RetryPolicy{MaxAttempts: 3, MaxElapsed: 20 * time.Millisecond}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = WorkerWithOptions(c.Addr(), 4000+i, WorkerOptions{Delay: 25 * time.Millisecond})
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", c.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		hello, err := gobEncode(&Hello{Pid: 4999})
		if err != nil || writeEnvelope(conn, envData, hello) != nil {
			return
		}
		// Every data envelope we emit has one payload byte flipped after
		// the CRC was computed; NACKs are answered by resending the same
		// corrupt bytes, so the coordinator's budget always trips.
		bad := encodeEnvelope(envData, []byte("not a gob response"))
		bad[envHdrLen] ^= 0x08
		for {
			kind, _, _, err := readEnvelope(conn)
			if err != nil {
				return // removed by the coordinator
			}
			switch kind {
			case envData, envNack:
				if _, err := conn.Write(bad); err != nil {
					return
				}
			}
		}
	}()
	if err := c.AcceptWorkers(3, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	res, err := c.Run(pts, Options{Eps: 0.1, MinPts: 10, Leaves: 9, DenseBox: true})
	if err != nil {
		t.Fatalf("run with a corrupt responder: %v", err)
	}
	stats := c.Stats()
	c.Shutdown()
	wg.Wait()

	if stats.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1 (the corrupt responder, by MaxElapsed)", stats.WorkersLost)
	}
	// More redispatches than MaxAttempts with a successful run proves
	// verified-corruption redispatch does not consume the partition's
	// attempt budget.
	if stats.CorruptionRedispatches <= c.Retry.MaxAttempts {
		t.Errorf("CorruptionRedispatches = %d, want > MaxAttempts (%d)",
			stats.CorruptionRedispatches, c.Retry.MaxAttempts)
	}
	for i := range want {
		if res.Labels[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, res.Labels[i], want[i])
		}
	}
}
