package distrib

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/merge"
	"repro/internal/partition"
)

// Options configures a distributed run.
type Options struct {
	Eps      float64
	MinPts   int
	Leaves   int // partitions to produce (≥ workers; round-robined)
	DenseBox bool
}

// Result is a completed distributed run.
type Result struct {
	// Labels aligns with the input points (-1 = noise).
	Labels      []int
	NumClusters int
}

// Run executes the full algorithm with the cluster phase on the
// coordinator's connected workers: partition locally, dispatch each
// partition over TCP, merge the returned summaries, and resolve global
// labels. It is the distributed counterpart of mrscan.RunPoints.
func (c *Coordinator) Run(pts []geom.Point, opt Options) (*Result, error) {
	if opt.Leaves < 1 {
		return nil, fmt.Errorf("distrib: need at least one leaf, got %d", opt.Leaves)
	}
	g := grid.New(opt.Eps)
	h := g.HistogramOf(pts)
	plan, err := partition.MakePlan(g, h, opt.Leaves, opt.MinPts, true)
	if err != nil {
		return nil, err
	}
	split, err := partition.Split(plan, pts, partition.SplitOptions{})
	if err != nil {
		return nil, err
	}
	reqs := make([]WorkRequest, opt.Leaves)
	for leaf := 0; leaf < opt.Leaves; leaf++ {
		reqs[leaf] = WorkRequest{
			Leaf:     leaf,
			Eps:      opt.Eps,
			MinPts:   opt.MinPts,
			DenseBox: opt.DenseBox,
			Owned:    split.Partitions[leaf],
			Shadow:   split.Shadows[leaf],
		}
	}
	responses, err := c.Dispatch(reqs)
	if err != nil {
		return nil, err
	}

	// Merge the summaries exactly as the tree root would (a flat
	// combine is a one-level tree).
	groups := make([][]*merge.Summary, 0, len(responses))
	for _, r := range responses {
		groups = append(groups, r.Summaries)
	}
	final := merge.Combine(g, opt.Eps, groups)
	mapping := merge.AssignGlobalIDs(final)

	// Sweep: resolve owned labels to global IDs, align by point ID.
	byID := make(map[uint64]int, len(pts))
	for leaf, r := range responses {
		for i, p := range reqs[leaf].Owned {
			l := r.Labels[i]
			if l < 0 {
				byID[p.ID] = -1
				continue
			}
			gid, ok := mapping[merge.ClusterKey{Leaf: int32(leaf), Local: l}]
			if !ok {
				return nil, fmt.Errorf("distrib: leaf %d cluster %d missing from mapping", leaf, l)
			}
			byID[p.ID] = int(gid)
		}
	}
	labels := make([]int, len(pts))
	for i, p := range pts {
		l, ok := byID[p.ID]
		if !ok {
			return nil, fmt.Errorf("distrib: point %d not returned by any worker", p.ID)
		}
		labels[i] = l
	}
	return &Result{Labels: labels, NumClusters: len(final)}, nil
}
