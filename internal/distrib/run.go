package distrib

import (
	"context"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/merge"
	"repro/internal/partition"
)

// Options configures a distributed run.
type Options struct {
	Eps      float64
	MinPts   int
	Leaves   int // partitions to produce (≥ workers; round-robined)
	DenseBox bool

	// Checkpoint, when non-nil, durably snapshots every partition's
	// winning response under "cluster-%04d" as results stream in, and a
	// later run over the same store restores those partitions instead of
	// re-dispatching them. Back the store with checkpoint.DirFS to
	// survive coordinator process restarts.
	Checkpoint *checkpoint.Store
}

// clusterSnapshot names partition i's checkpoint on the store.
func clusterSnapshot(i int) string { return fmt.Sprintf("cluster-%04d", i) }

// Result is a completed distributed run.
type Result struct {
	// Labels aligns with the input points (-1 = noise).
	Labels      []int
	NumClusters int
	// RestoredPartitions counts partitions recovered from checkpoints
	// instead of dispatched to workers.
	RestoredPartitions int
}

// Run is RunContext without a deadline.
func (c *Coordinator) Run(pts []geom.Point, opt Options) (*Result, error) {
	return c.RunContext(context.Background(), pts, opt)
}

// RunContext executes the full algorithm with the cluster phase on the
// coordinator's connected workers: partition locally, dispatch each
// partition over TCP, merge the returned summaries, and resolve global
// labels. It is the distributed counterpart of mrscan.RunContext.
// Cancelling ctx aborts the dispatch (see DispatchContext).
func (c *Coordinator) RunContext(ctx context.Context, pts []geom.Point, opt Options) (*Result, error) {
	if opt.Leaves < 1 {
		return nil, fmt.Errorf("distrib: need at least one leaf, got %d", opt.Leaves)
	}
	g := grid.New(opt.Eps)
	h := g.HistogramOf(pts)
	plan, err := partition.MakePlan(g, h, opt.Leaves, opt.MinPts, true)
	if err != nil {
		return nil, err
	}
	split, err := partition.Split(plan, pts, partition.SplitOptions{})
	if err != nil {
		return nil, err
	}
	reqs := make([]WorkRequest, opt.Leaves)
	for leaf := 0; leaf < opt.Leaves; leaf++ {
		reqs[leaf] = WorkRequest{
			Leaf:     leaf,
			Eps:      opt.Eps,
			MinPts:   opt.MinPts,
			DenseBox: opt.DenseBox,
			Owned:    split.Partitions[leaf],
			Shadow:   split.Shadows[leaf],
		}
	}

	// Restore checkpointed partitions; dispatch only the rest. A corrupt
	// or missing snapshot simply re-dispatches that partition.
	responses := make([]*WorkResponse, opt.Leaves)
	var todo []WorkRequest
	restoredCount := 0
	if opt.Checkpoint != nil {
		for leaf := range reqs {
			var resp WorkResponse
			if err := opt.Checkpoint.Load(clusterSnapshot(leaf), &resp); err == nil && resp.Leaf == leaf {
				responses[leaf] = &resp
				restoredCount++
				continue
			}
			todo = append(todo, reqs[leaf])
		}
	} else {
		todo = reqs
	}

	if len(todo) > 0 {
		// Stream each winning response into its snapshot as it arrives —
		// a coordinator killed mid-dispatch resumes with the partitions
		// it already has. Chained after any caller-installed hook.
		if opt.Checkpoint != nil {
			prev := c.OnResponse
			c.OnResponse = func(i int, resp *WorkResponse) {
				if prev != nil {
					prev(i, resp)
				}
				// Best-effort: a failed snapshot write costs re-execution
				// on resume, not correctness now.
				_ = opt.Checkpoint.Save(clusterSnapshot(resp.Leaf), resp)
			}
			defer func() { c.OnResponse = prev }()
		}
		dispatched, err := c.DispatchContext(ctx, todo)
		if err != nil {
			return nil, err
		}
		for _, r := range dispatched {
			responses[r.Leaf] = r
		}
	}

	// Merge the summaries exactly as the tree root would (a flat
	// combine is a one-level tree).
	groups := make([][]*merge.Summary, 0, len(responses))
	for _, r := range responses {
		groups = append(groups, r.Summaries)
	}
	final := merge.Combine(g, opt.Eps, groups)
	mapping := merge.AssignGlobalIDs(final)

	// Sweep: resolve owned labels to global IDs, align by point ID.
	byID := make(map[uint64]int, len(pts))
	for leaf, r := range responses {
		for i, p := range reqs[leaf].Owned {
			l := r.Labels[i]
			if l < 0 {
				byID[p.ID] = -1
				continue
			}
			gid, ok := mapping[merge.ClusterKey{Leaf: int32(leaf), Local: l}]
			if !ok {
				return nil, fmt.Errorf("distrib: leaf %d cluster %d missing from mapping", leaf, l)
			}
			byID[p.ID] = int(gid)
		}
	}
	labels := make([]int, len(pts))
	for i, p := range pts {
		l, ok := byID[p.ID]
		if !ok {
			return nil, fmt.Errorf("distrib: point %d not returned by any worker", p.ID)
		}
		labels[i] = l
	}
	return &Result{Labels: labels, NumClusters: len(final), RestoredPartitions: restoredCount}, nil
}
