package distrib

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/telemetry"
)

// smallReqs slices pts into n modest work requests.
func smallReqs(pts []geom.Point, n int) []WorkRequest {
	reqs := make([]WorkRequest, n)
	per := len(pts) / n
	for i := range reqs {
		lo, hi := i*per, (i+1)*per
		if i == n-1 {
			hi = len(pts)
		}
		reqs[i] = WorkRequest{Leaf: i, Eps: 0.1, MinPts: 4, DenseBox: true, Owned: pts[lo:hi]}
	}
	return reqs
}

// TestLimpingWorkerQuarantinedProbedReadmitted walks the whole
// state machine: a worker serving 15x slower than the fleet is
// quarantined on in-flight evidence, earns Probation through cheap
// probes once its limp clears, and is re-admitted by clean real work —
// with every dispatch still completing every partition and no healthy
// worker ever quarantined.
func TestLimpingWorkerQuarantinedProbedReadmitted(t *testing.T) {
	const (
		baseDelay = 20 * time.Millisecond
		limpDelay = 300 * time.Millisecond
	)
	pts := dataset.Twitter(2400, 9)
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	tracker := health.New(health.Config{
		SuspectAfter: 2, QuarantineAfter: 1, RecoverAfter: 2, MinObservations: 2,
	})
	c.Health = tracker
	c.ProbeInterval = 2 * time.Millisecond
	var trMu sync.Mutex
	var transitions []health.Transition
	tracker.OnTransition(func(tr health.Transition) {
		trMu.Lock()
		transitions = append(transitions, tr)
		trMu.Unlock()
	})
	hub := telemetry.New(nil)
	c.SetTelemetry(hub)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = WorkerWithOptions(c.Addr(), 4000+i, WorkerOptions{Delay: baseDelay})
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The limper's first (and only first) work request is 15x slow.
		_ = WorkerWithOptions(c.Addr(), 4999, WorkerOptions{Delay: limpDelay, LimpOps: 1})
	}()
	if err := c.AcceptWorkers(4, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	reqs := smallReqs(pts, 12)
	healthyAgain := false
	for round := 0; round < 6 && !healthyAgain; round++ {
		resps, err := c.Dispatch(reqs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, r := range resps {
			if r == nil {
				t.Fatalf("round %d: partition %d has no response", round, i)
			}
		}
		trMu.Lock()
		var sick string
		for _, tr := range transitions {
			if tr.To == health.Quarantined {
				sick = tr.Component
			}
		}
		if sick != "" && tracker.State(sick) == health.Healthy {
			healthyAgain = true
		}
		trMu.Unlock()
	}

	trMu.Lock()
	defer trMu.Unlock()
	sick := map[string]bool{}
	var sawProbation, sawReadmit bool
	for _, tr := range transitions {
		if tr.To == health.Quarantined {
			sick[tr.Component] = true
		}
		if tr.From == health.Quarantined && tr.To == health.Probation {
			sawProbation = true
		}
		if tr.From == health.Probation && tr.To == health.Healthy {
			sawReadmit = true
		}
	}
	if len(sick) != 1 {
		t.Fatalf("quarantined components = %v, want exactly the limper; transitions=%v", sick, transitions)
	}
	if !sawProbation || !sawReadmit {
		t.Fatalf("state machine incomplete: probation=%v readmit=%v transitions=%v",
			sawProbation, sawReadmit, transitions)
	}
	if !healthyAgain {
		t.Fatalf("limper never returned to Healthy; snapshot=%+v", tracker.Snapshot())
	}
	if hub.Counter("distrib_probes_total").Value() == 0 {
		t.Fatal("no probes recorded for the quarantined worker")
	}

	c.Shutdown()
	wg.Wait()
}

// TestDuplicateCompletionAckedOnce: when a hedge wins a partition, the
// original worker's late response must be discarded — OnResponse (the
// checkpoint/quota hook) fires exactly once per partition.
func TestDuplicateCompletionAckedOnce(t *testing.T) {
	const delay = 400 * time.Millisecond
	pts := dataset.Twitter(2400, 11)
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.StragglerFactor = 2
	acks := make([]atomic.Int32, 6)
	c.OnResponse = func(i int, resp *WorkResponse) { acks[i].Add(1) }
	wg := startMixedWorkers(t, c, 2, delay)

	resps, err := c.Dispatch(smallReqs(pts, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r == nil {
			t.Fatalf("partition %d has no response", i)
		}
	}
	if st := c.Stats(); st.HedgesWon < 1 {
		t.Fatalf("HedgesWon = %d, want >= 1 (test needs a losing original)", st.HedgesWon)
	}
	// Let the losing original finish its exchange and be discarded.
	time.Sleep(2 * delay)
	for i := range acks {
		if got := acks[i].Load(); got != 1 {
			t.Fatalf("partition %d acked %d times, want exactly 1", i, got)
		}
	}
	c.Shutdown()
	wg.Wait()
}

// TestRedispatchBudgetDenialFailsLoud: with the shared retry budget
// exhausted, a worker loss turns into a loud dispatch failure instead
// of a redispatch.
func TestRedispatchBudgetDenialFailsLoud(t *testing.T) {
	pts := dataset.Twitter(1200, 13)
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.Budget = health.NewBudget(0, 0)
	c.SetFaultPlan(faultinject.New(2).Arm(WorkerFaultSite(0), faultinject.Rule{Times: 1}))
	wg := startWorkers(t, c, 2)

	_, err = c.Dispatch(smallReqs(pts, 4))
	if err == nil {
		t.Fatal("dispatch succeeded despite a lost worker and a zero retry budget")
	}
	if !errors.Is(err, health.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	c.Shutdown()
	wg.Wait()
}

// TestStatsCounterBackedWithCarryover: Stats reads from the telemetry
// counters, and counts accumulated before SetTelemetry carry over to
// the run hub — so Prometheus and the JSON report see the same numbers.
func TestStatsCounterBackedWithCarryover(t *testing.T) {
	pts := dataset.Twitter(1200, 17)
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(faultinject.New(4).Arm(WorkerFaultSite(0), faultinject.Rule{Times: 1}))
	wg := startWorkers(t, c, 2)
	if _, err := c.Dispatch(smallReqs(pts, 4)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.WorkersLost != 1 || st.Reassigned < 1 {
		t.Fatalf("stats = %+v, want one lost worker and >= 1 reassignment", st)
	}

	hub := telemetry.New(nil)
	c.SetTelemetry(hub)
	if got := hub.Counter("distrib_workers_lost_total").Value(); got != int64(st.WorkersLost) {
		t.Fatalf("carryover: distrib_workers_lost_total = %d, stats say %d", got, st.WorkersLost)
	}
	if got := hub.Counter("distrib_retries_total").Value(); got != int64(st.Reassigned) {
		t.Fatalf("carryover: distrib_retries_total = %d, stats say %d", got, st.Reassigned)
	}
	c.Shutdown()
	wg.Wait()
}
