package distrib

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/integrity"
)

// Checksummed message envelopes for the coordinator/worker wire.
//
// Every message — including the worker's Hello — travels as:
//
//	[2B magic "MS"][1B version][1B kind][4B LE payload len][4B LE CRC32C][gob payload]
//
// The magic and version bytes reject a peer speaking a different
// protocol revision at the first message with a ProtocolError, instead
// of a confusing gob decode failure deep in a dispatch. The CRC32C
// trailer covers the gob payload: a receiver whose recomputed sum
// differs answers with a NACK envelope and the sender retransmits,
// bounded by maxEnvelopeRetries per exchange, after which the exchange
// fails with ErrPayloadCorrupt and the dispatch layer redispatches the
// partition.
//
// Each payload is gob-encoded with a fresh encoder so every envelope is
// self-contained: a retransmitted envelope is byte-identical to the
// original, with no stream state to resynchronize (a plain gob stream
// sends type descriptors once, which would make replay impossible).

const (
	envMagic   = "MS"
	envVersion = 1
	envHdrLen  = 12

	// envelope kinds.
	envData = 1 // gob payload
	envNack = 2 // checksum reject: resend your last envelope

	// maxEnvelope bounds a payload (64 MiB — partitions carry point
	// slices) so a corrupted length field fails fast.
	maxEnvelope = 64 << 20

	// maxEnvelopeRetries bounds the NACK/retransmit dance per exchange.
	maxEnvelopeRetries = 3
)

// ErrPayloadCorrupt reports an exchange abandoned because payload
// corruption persisted past the retransmit budget. errors.Is-compatible
// with integrity.ErrChecksum.
var ErrPayloadCorrupt = integrity.ErrChecksum

// ErrEnvelopeTorn reports a connection that died mid-envelope.
// errors.Is-compatible with integrity.ErrTorn.
var ErrEnvelopeTorn = integrity.ErrTorn

// gobEncode serializes v with a fresh encoder (self-contained bytes).
func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("distrib: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// gobDecode deserializes a self-contained payload into v.
func gobDecode(p []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(v); err != nil {
		return fmt.Errorf("distrib: decoding %T: %w", v, err)
	}
	return nil
}

// encodeEnvelope assembles a full wire envelope around payload.
func encodeEnvelope(kind byte, payload []byte) []byte {
	buf := make([]byte, envHdrLen+len(payload))
	copy(buf, envMagic)
	buf[2] = envVersion
	buf[3] = kind
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:12], integrity.Checksum(payload))
	copy(buf[envHdrLen:], payload)
	return buf
}

// writeEnvelope emits one clean envelope (no fault injection) — the
// worker side, NACKs, and the shutdown message use it.
func writeEnvelope(w io.Writer, kind byte, payload []byte) error {
	_, err := w.Write(encodeEnvelope(kind, payload))
	return err
}

// readEnvelope reads one envelope and validates its framing: magic and
// version (ProtocolError on mismatch), length (ErrTooLarge), and
// completeness (io.EOF for a clean close between envelopes,
// ErrEnvelopeTorn mid-envelope). The payload's CRC is returned
// unverified so the caller can apply receive-side fault injection
// before checking it.
func readEnvelope(r io.Reader) (kind byte, payload []byte, crc uint32, err error) {
	var hdr [envHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, fmt.Errorf("distrib: envelope header: %w (%v)", ErrEnvelopeTorn, err)
	}
	if string(hdr[:2]) != envMagic {
		return 0, nil, 0, &integrity.ProtocolError{
			Plane: "distrib", Field: "magic",
			Got: uint64(binary.LittleEndian.Uint16(hdr[:2])), Want: uint64('M') | uint64('S')<<8,
		}
	}
	if hdr[2] != envVersion {
		return 0, nil, 0, &integrity.ProtocolError{
			Plane: "distrib", Field: "version", Got: uint64(hdr[2]), Want: envVersion,
		}
	}
	kind = hdr[3]
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxEnvelope {
		return 0, nil, 0, fmt.Errorf("distrib: envelope of %d bytes: %w", n, integrity.ErrTooLarge)
	}
	crc = binary.LittleEndian.Uint32(hdr[8:12])
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("distrib: envelope payload: %w (%v)", ErrEnvelopeTorn, err)
	}
	return kind, payload, crc, nil
}

// recvVerified reads envelopes off conn until a clean data envelope
// arrives, running the receiver's half of the integrity protocol with
// no fault injection and no counters — the worker side. A corrupt
// payload is NACKed (bounded); an incoming NACK triggers resend, the
// caller's last sent payload.
func recvVerified(conn net.Conn, lastSent *[]byte) ([]byte, error) {
	nacks, resends := 0, 0
	for {
		kind, p, crc, err := readEnvelope(conn)
		if err != nil {
			return nil, err
		}
		switch kind {
		case envNack:
			resends++
			if resends > maxEnvelopeRetries {
				return nil, fmt.Errorf("distrib: peer rejected %d retransmits: %w", resends, ErrPayloadCorrupt)
			}
			if *lastSent == nil {
				return nil, fmt.Errorf("distrib: NACK with nothing to resend")
			}
			if err := writeEnvelope(conn, envData, *lastSent); err != nil {
				return nil, err
			}
		case envData:
			if integrity.Checksum(p) != crc {
				nacks++
				// Tolerate one corrupt receipt more than the sender
				// will retransmit (initial send + maxEnvelopeRetries
				// resends): the sender must always exhaust its budget
				// first and fail with ErrPayloadCorrupt on its side,
				// where the dispatch layer redispatches the partition —
				// rather than this side closing the connection and
				// turning verified corruption into a generic conn loss.
				if nacks > maxEnvelopeRetries+1 {
					return nil, fmt.Errorf("distrib: giving up after %d corrupt envelopes: %w", nacks, ErrPayloadCorrupt)
				}
				if err := writeEnvelope(conn, envNack, nil); err != nil {
					return nil, err
				}
				continue
			}
			return p, nil
		default:
			return nil, fmt.Errorf("distrib: unknown envelope kind %d", kind)
		}
	}
}
