package distrib

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/geom"
)

// runOnce clusters pts on n workers with the given fault plan and
// returns the labels, so fault-free and faulty runs can be compared
// exactly.
func runOnce(t *testing.T, pts []geom.Point, n int, plan *faultinject.Plan) ([]int, Stats) {
	t.Helper()
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.RequestTimeout = 30 * time.Second
	c.SetFaultPlan(plan)
	wg := startWorkers(t, c, n)
	res, err := c.Run(pts, Options{Eps: 0.1, MinPts: 10, Leaves: 9, DenseBox: true})
	if err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	c.Shutdown()
	wg.Wait()
	return res.Labels, stats
}

// TestWorkerDeathMidDispatchReassigns severs one worker's connection
// after its first successful response. The dispatch must re-queue that
// worker's outstanding partitions to the survivors and produce labels
// identical to a fault-free run.
func TestWorkerDeathMidDispatchReassigns(t *testing.T) {
	pts := dataset.Twitter(4000, 5)
	want, cleanStats := runOnce(t, pts, 3, nil)
	if cleanStats.WorkersLost != 0 || cleanStats.Reassigned != 0 {
		t.Fatalf("fault-free run reported failures: %+v", cleanStats)
	}

	plan := faultinject.New(0).
		Arm(WorkerFaultSite(1), faultinject.Rule{After: 1})
	got, stats := runOnce(t, pts, 3, plan)
	if stats.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", stats.WorkersLost)
	}
	if stats.Reassigned < 1 {
		t.Errorf("Reassigned = %d, want >= 1", stats.Reassigned)
	}
	if len(got) != len(want) {
		t.Fatalf("label count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d: recovery changed the clustering", i, got[i], want[i])
		}
	}
}

// TestDispatchAllWorkersDie arms a permanent connection fault on the
// only worker: the dispatch must fail promptly with a wrapped error, not
// hang or panic.
func TestDispatchAllWorkersDie(t *testing.T) {
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.DistribConn, faultinject.Rule{}))
	wg := startWorkers(t, c, 1)
	done := make(chan error, 1)
	go func() {
		_, err := c.Dispatch([]WorkRequest{
			{Leaf: 0, Eps: 0.1, MinPts: 4},
			{Leaf: 1, Eps: 0.1, MinPts: 4},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dispatch with all workers dead must fail")
		}
		if !strings.Contains(err.Error(), "no surviving workers") {
			t.Errorf("err = %v, want 'no surviving workers'", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dispatch hung after losing every worker")
	}
	c.Shutdown()
	wg.Wait()
}

// TestPartitionExhaustsRetries: with retry budget 1 a single connection
// fault must surface instead of being retried forever.
func TestPartitionExhaustsRetries(t *testing.T) {
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.Retry = RetryPolicy{MaxAttempts: 1}
	c.SetFaultPlan(faultinject.New(0).
		Arm(WorkerFaultSite(0), faultinject.Rule{Times: 1}))
	wg := startWorkers(t, c, 1)
	_, err = c.Dispatch([]WorkRequest{{Leaf: 0, Eps: 0.1, MinPts: 4}})
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Errorf("err = %v, want retry exhaustion", err)
	}
	c.Shutdown()
	wg.Wait()
}

func TestAcceptWorkersTimeout(t *testing.T) {
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	start := time.Now()
	err = c.AcceptWorkers(1, 100*time.Millisecond)
	if err == nil {
		t.Fatal("AcceptWorkers with no workers must time out")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("err = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("AcceptWorkers took %v, want ~100ms", elapsed)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, c, 2)
	c.Shutdown()
	c.Shutdown() // second call must be a no-op, not a double close
	wg.Wait()
}

// TestHeartbeatEvictsDeadWorker kills one of two workers via an injected
// connection fault during the ping round; the survivor must still serve
// a dispatch.
func TestHeartbeatEvictsDeadWorker(t *testing.T) {
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(faultinject.New(0).
		Arm(WorkerFaultSite(0), faultinject.Rule{Times: 1}))
	wg := startWorkers(t, c, 2)
	if got := c.Heartbeat(5 * time.Second); got != 1 {
		t.Fatalf("Heartbeat survivors = %d, want 1", got)
	}
	if got := c.Stats().WorkersLost; got != 1 {
		t.Errorf("WorkersLost = %d, want 1", got)
	}
	pts := dataset.Twitter(500, 7)
	res, err := c.Run(pts, Options{Eps: 0.1, MinPts: 5, Leaves: 2, DenseBox: true})
	if err != nil {
		t.Fatalf("dispatch after heartbeat eviction: %v", err)
	}
	if len(res.Labels) != len(pts) {
		t.Errorf("labels = %d, want %d", len(res.Labels), len(pts))
	}
	c.Shutdown()
	wg.Wait()
}
