package distrib

import (
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/quality"
)

// TestRealProcessWorkers runs the cluster phase in genuine separate OS
// processes: the test binary re-executes itself in worker mode (see
// TestMain) and dials back over TCP, so partitions, summaries and labels
// cross a real process boundary.
func TestRealProcessWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("process-spawning test skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot locate test binary: %v", err)
	}
	c, err := NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 2
	procs := make([]*exec.Cmd, workers)
	for i := range procs {
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(), "MRSCAN_DISTRIB_WORKER="+c.Addr())
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning worker %d: %v", i, err)
		}
		procs[i] = cmd
	}
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Process.Kill()
				_ = p.Wait()
			}
		}
	}()
	if err := c.AcceptWorkers(workers, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	pts := dataset.Twitter(8000, 3)
	res, err := c.Run(pts, Options{Eps: 0.1, MinPts: 40, Leaves: 6, DenseBox: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	ref, err := dbscan.Cluster(pts, dbscan.Params{Eps: 0.1, MinPts: 40}, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != ref.NumClusters {
		t.Errorf("NumClusters = %d, want %d", res.NumClusters, ref.NumClusters)
	}
	score, err := quality.Score(ref.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.995 {
		t.Errorf("cross-process quality = %.4f, want >= 0.995", score)
	}
	// The workers were real processes with their own PIDs.
	for _, p := range procs {
		if p.Process.Pid == os.Getpid() {
			t.Error("worker shares the test process PID — not a separate process")
		}
	}
}
