// Package faultinject provides a deterministic, seedable fault plan
// shared by every hardware simulator in the pipeline.
//
// Mr. Scan's substrate makes partial failure the normal case at scale:
// Lustre "fails under load (OST evictions, MDS timeouts)", MRNet
// processes die and their children must be re-parented, and worker nodes
// drop off mid-phase. Each simulator used to carry (or lack) its own
// ad-hoc fault hook; this package replaces them with a single Plan that
// every substrate consults at its fault sites:
//
//   - lustre.read / lustre.write — parallel file system I/O
//   - mrnet.hop                  — overlay tree edge traffic
//   - mrnet.node                 — internal overlay process crash
//   - mrnet.frame                — TCP overlay wire frames
//   - gpusim.launch              — GPGPU kernel launches
//   - gpusim.transfer            — host↔device DMA transfers
//   - distrib.conn               — coordinator→worker TCP exchanges
//   - distrib.request/.response  — coordinator↔worker wire payloads
//
// A Rule fires either after a fixed number of operations (op-count
// trigger) or with a seeded per-operation probability, for a bounded or
// unbounded number of failures. Bounded rules model transient faults
// that a retry policy should absorb; unbounded rules model permanent
// failures that must surface as errors. All counting is done under one
// mutex, so a plan driven by a deterministic operation order reproduces
// the same failure sequence on every run.
//
// Beyond clean error returns, a rule can inject silent *corruption*
// (Corrupt: a deterministic bit flip in the payload crossing the site,
// consulted via CorruptData/CorruptCheck rather than Check) or a
// *straggle* (Delay: the operation succeeds late). Corruption rules
// model the scale failure mode that errors cannot: data that is wrong
// rather than missing. They are only useful against data planes that
// checksum — the chaos harness asserts every injected corruption is
// caught at a checksummed boundary.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Site names a fault injection point. Substrates define their own site
// constants; tests may invent ad-hoc sites (e.g. per-worker sites in
// distrib).
type Site string

// Well-known fault sites consulted by the simulators.
const (
	LustreRead      Site = "lustre.read"
	LustreWrite     Site = "lustre.write"
	MRNetHop        Site = "mrnet.hop"
	MRNetNode       Site = "mrnet.node"
	MRNetFrame      Site = "mrnet.frame"
	GPULaunch       Site = "gpusim.launch"
	GPUTransfer     Site = "gpusim.transfer"
	DistribConn     Site = "distrib.conn"
	DistribRequest  Site = "distrib.request"
	DistribResponse Site = "distrib.response"
)

// LustreIO is a pseudo-site accepted by Arm and Parse: it arms one rule
// with a single shared counter across LustreRead and LustreWrite (N
// successful operations of either kind, then failure).
const LustreIO Site = "lustre.io"

// ErrInjected is the default error returned by a firing rule with no
// explicit Err.
var ErrInjected = errors.New("faultinject: injected fault")

// FatalError marks a fault that models process death rather than an
// error return: a node segfaulting, the OOM killer, a hardware machine
// check. Retry and recovery layers must NOT absorb it — the run dies
// where it stands, leaving whatever durable state (checkpoints, partial
// files) exists on the file system, exactly as a real mid-run crash
// would. A later run with resume enabled restarts from that state.
type FatalError struct {
	// Cause is the underlying injected error.
	Cause error
}

func (e *FatalError) Error() string {
	return fmt.Sprintf("faultinject: fatal fault (process killed): %v", e.Cause)
}

func (e *FatalError) Unwrap() error { return e.Cause }

// IsFatal reports whether err carries a FatalError anywhere in its
// chain. Every retry layer in the pipeline consults it before
// re-executing.
func IsFatal(err error) bool {
	var fe *FatalError
	return errors.As(err, &fe)
}

// Corruption reports one injected payload corruption: which site it
// crossed and which bit of the payload was flipped. Offset is relative
// to the payload handed to CorruptData (or to the modeled transfer size
// for CorruptCheck).
type Corruption struct {
	Site   Site
	Offset int64
	Bit    uint8
}

// CorruptionError is the error form of a Corruption, delivered to plan
// observers so telemetry can record injection events. It is never
// returned from an operation — corruption is silent by design; only a
// downstream checksum turns it back into an error.
type CorruptionError struct {
	Corruption
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("faultinject: corrupted payload at %s (offset %d, bit %d)", e.Site, e.Offset, e.Bit)
}

// DelayError is delivered to plan observers when a Delay rule fires.
// Like CorruptionError it never surfaces from the operation itself: the
// op merely completes late, modeling a straggler.
type DelayError struct {
	Site Site
	D    time.Duration
}

func (e *DelayError) Error() string {
	return fmt.Sprintf("faultinject: straggle at %s (%v)", e.Site, e.D)
}

// DegradeError is delivered to plan observers when a degrade rule
// activates at a site. Like DelayError it never surfaces from an
// operation: the component merely limps — every operation crossing the
// site costs Factor x its healthy latency until the window expires.
type DegradeError struct {
	Site   Site
	Factor float64
	For    time.Duration // 0 = permanent
}

func (e *DegradeError) Error() string {
	if e.For > 0 {
		return fmt.Sprintf("faultinject: degrade at %s (%gx for %v)", e.Site, e.Factor, e.For)
	}
	return fmt.Sprintf("faultinject: degrade at %s (%gx)", e.Site, e.Factor)
}

// Rule describes one fault trigger.
type Rule struct {
	// After is the number of Check calls at the armed site(s) that pass
	// before the rule starts firing. Ignored when Prob is set.
	After int64
	// Times bounds how many failures the rule injects; 0 means
	// unlimited (a permanent fault).
	Times int64
	// Prob, when positive, makes the rule probabilistic: each Check
	// fires with probability Prob, drawn from the plan's seeded PRNG.
	Prob float64
	// Err is the error injected; nil uses ErrInjected.
	Err error
	// Fatal wraps the injected error in a FatalError: the fault kills
	// the run (no retry layer may absorb it) instead of surfacing as a
	// recoverable error.
	Fatal bool
	// Corrupt makes this a corruption rule: instead of returning an
	// error from Check (which ignores it), the rule fires from
	// CorruptData/CorruptCheck and flips one seeded-deterministic bit
	// of the payload crossing the site. Err/Fatal are ignored.
	Corrupt bool
	// Delay, when positive on a non-corrupt rule with no Err, makes
	// the rule a straggler: a firing Check sleeps for Delay and then
	// succeeds, modeling a slow-but-correct operation.
	Delay time.Duration
	// Degrade, when > 1, makes this a gray-failure rule: the component
	// behind the site limps (every operation costs Degrade x its healthy
	// latency) instead of dying. Degrade rules never fire from Check —
	// simulators consult DegradeFactor and scale their own cost model.
	// After delays activation by that many DegradeFactor calls; once
	// active the factor holds for DegradeFor (0 = forever). Err/Fatal/
	// Corrupt/Delay are ignored.
	Degrade float64
	// DegradeFor bounds how long a triggered Degrade rule stays active;
	// 0 keeps it active forever.
	DegradeFor time.Duration
	// Flap, when non-empty, makes this a flapping rule: a pattern of
	// 'u' (up: the op passes) and 'd' (down: the op fails with Err)
	// characters cycled one per Check call at the site, modeling a link
	// or component that oscillates between working and broken. After
	// delays the pattern start; Times bounds the total failures injected.
	Flap string
}

// armedRule is a Rule plus its live counters. One armedRule may be
// registered at several sites (ArmShared), sharing the counters.
type armedRule struct {
	Rule
	remaining int64 // op credits left before firing (count-triggered)
	fired     int64
	flapPos   int64     // next pattern index for Flap rules
	activated time.Time // first activation time for Degrade rules
}

// Plan is a set of armed rules keyed by site. The zero value is not
// usable; construct with New. A nil *Plan is valid and injects nothing,
// so substrates can consult their plan unconditionally. Plan is safe
// for concurrent use.
type Plan struct {
	mu        sync.Mutex
	rng       *rand.Rand
	rules     map[Site][]*armedRule
	observer  func(site Site, err error, fatal bool)
	siteObs   map[Site][]func(site Site, err error, fatal bool)
	corrupted map[Site]int64
	log       []Corruption
}

// maxCorruptionLog bounds the per-plan corruption log; counters keep
// exact totals beyond it.
const maxCorruptionLog = 4096

// New returns an empty plan. The seed drives probabilistic rules; plans
// with the same seed, rules and Check sequence inject identical faults.
func New(seed int64) *Plan {
	return &Plan{
		rng:       rand.New(rand.NewSource(seed)),
		rules:     make(map[Site][]*armedRule),
		corrupted: make(map[Site]int64),
	}
}

// Arm registers a rule at a site and returns the plan for chaining.
// Arming the LustreIO pseudo-site shares one rule across LustreRead and
// LustreWrite.
func (p *Plan) Arm(site Site, r Rule) *Plan {
	if site == LustreIO {
		return p.ArmShared(r, LustreRead, LustreWrite)
	}
	return p.ArmShared(r, site)
}

// ArmShared registers one rule — with a single shared op counter and
// failure budget — at every listed site.
func (p *Plan) ArmShared(r Rule, sites ...Site) *Plan {
	ar := &armedRule{Rule: r, remaining: r.After}
	p.mu.Lock()
	for _, s := range sites {
		p.rules[s] = append(p.rules[s], ar)
	}
	p.mu.Unlock()
	return p
}

// SetObserver installs a callback invoked on every injected fault,
// after the plan's internal lock is released — observers may safely
// call back into the plan or into telemetry. A nil observer disables
// notification.
func (p *Plan) SetObserver(fn func(site Site, err error, fatal bool)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.observer = fn
	p.mu.Unlock()
}

// ObserveSite appends a per-site observer invoked (after the plan lock is
// released, like the global observer) for every fault event at exactly
// that site — errors, corruption, delays, flap firings, and degrade
// activations. Health trackers hook these to attribute fault evidence to
// the right component.
func (p *Plan) ObserveSite(site Site, fn func(site Site, err error, fatal bool)) {
	if p == nil || fn == nil {
		return
	}
	p.mu.Lock()
	if p.siteObs == nil {
		p.siteObs = make(map[Site][]func(Site, error, bool))
	}
	p.siteObs[site] = append(p.siteObs[site], fn)
	p.mu.Unlock()
}

// observersLocked snapshots the callbacks to notify for site.
func (p *Plan) observersLocked(site Site) []func(Site, error, bool) {
	var out []func(Site, error, bool)
	if p.observer != nil {
		out = append(out, p.observer)
	}
	return append(out, p.siteObs[site]...)
}

func notify(obs []func(Site, error, bool), site Site, err error, fatal bool) {
	for _, fn := range obs {
		fn(site, err, fatal)
	}
}

// Check consumes one operation at the site and returns the injected
// error if any armed (non-corrupt) rule fires. A firing Delay rule
// sleeps instead of erroring. A nil plan or an unarmed site always
// passes (and costs nothing). Corruption rules never fire here — they
// only answer CorruptData/CorruptCheck.
func (p *Plan) Check(site Site) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	ar := p.evalLocked(site, false)
	obs := p.observersLocked(site)
	p.mu.Unlock()
	if ar == nil {
		return nil
	}
	if ar.Err == nil && !ar.Fatal && ar.Flap == "" && ar.Delay > 0 {
		// Straggler: the op completes, just late.
		notify(obs, site, &DelayError{Site: site, D: ar.Delay}, false)
		time.Sleep(ar.Delay)
		return nil
	}
	err := ar.Err
	if err == nil {
		err = ErrInjected
	}
	notify(obs, site, err, ar.Fatal)
	if ar.Fatal {
		return &FatalError{Cause: err}
	}
	return err
}

// evalLocked runs the trigger logic for the site's rules of one kind
// (corrupt or not) under the plan lock, returning the firing rule.
func (p *Plan) evalLocked(site Site, corrupt bool) *armedRule {
	for _, ar := range p.rules[site] {
		if ar.Corrupt != corrupt || ar.Degrade > 1 {
			continue // degrade rules only answer DegradeFactor
		}
		if ar.Times > 0 && ar.fired >= ar.Times {
			continue // exhausted: transient fault has passed
		}
		if ar.Flap != "" {
			// Flapping: cycle the up/down pattern one step per op
			// (after the op-count trigger has been consumed).
			if ar.remaining > 0 {
				ar.remaining--
				continue
			}
			pos := ar.flapPos
			ar.flapPos++
			if ar.Flap[pos%int64(len(ar.Flap))] != 'd' {
				continue // link is up for this op
			}
			ar.fired++
			return ar
		}
		if ar.Prob > 0 {
			if p.rng.Float64() >= ar.Prob {
				continue
			}
		} else if ar.remaining > 0 {
			ar.remaining--
			continue
		}
		ar.fired++
		return ar
	}
	return nil
}

// DegradeFactor consumes one operation at the site for degrade rules and
// reports the latency multiplier currently in force: 1 when healthy, the
// largest active Degrade factor otherwise. Simulators multiply their own
// cost model by it, so a degraded component limps instead of dying. The
// first activation of each rule is reported to observers as a
// DegradeError.
func (p *Plan) DegradeFactor(site Site) float64 {
	if p == nil {
		return 1
	}
	p.mu.Lock()
	factor := 1.0
	var fireObs []func(Site, error, bool)
	var fireErr *DegradeError
	now := time.Now()
	for _, ar := range p.rules[site] {
		if ar.Degrade <= 1 {
			continue
		}
		if ar.activated.IsZero() {
			if ar.remaining > 0 {
				ar.remaining--
				continue
			}
			ar.activated = now
			ar.fired++
			fireObs = p.observersLocked(site)
			fireErr = &DegradeError{Site: site, Factor: ar.Degrade, For: ar.DegradeFor}
		}
		if ar.DegradeFor > 0 && now.Sub(ar.activated) >= ar.DegradeFor {
			continue // window expired: back to healthy
		}
		if ar.Degrade > factor {
			factor = ar.Degrade
		}
	}
	p.mu.Unlock()
	if fireErr != nil {
		notify(fireObs, site, fireErr, false)
	}
	return factor
}

// CorruptData consumes one operation at the site for corruption rules
// and, if one fires, flips one seeded-deterministic bit of data in
// place, records the injection, notifies the observer, and returns its
// description. Empty payloads never fire (there is nothing to flip, so
// the op is not consumed). The flip is silent: callers must rely on
// their checksum layer — not the return value — to notice on the read
// side.
func (p *Plan) CorruptData(site Site, data []byte) *Corruption {
	if p == nil || len(data) == 0 {
		return nil
	}
	c, obs := p.corrupt(site, int64(len(data)))
	if c == nil {
		return nil
	}
	data[c.Offset] ^= 1 << c.Bit
	notify(obs, site, &CorruptionError{Corruption: *c}, false)
	return c
}

// CorruptCheck is CorruptData for modeled data planes that move no real
// bytes (the in-process overlay, simulated DMA): it consumes one op for
// corruption rules at the site and reports what would have been flipped
// in an n-byte transfer. n <= 0 is treated as a 1-byte frame — a wire
// message always has at least header bytes to corrupt.
func (p *Plan) CorruptCheck(site Site, n int64) *Corruption {
	if p == nil {
		return nil
	}
	if n <= 0 {
		n = 1
	}
	c, obs := p.corrupt(site, n)
	if c == nil {
		return nil
	}
	notify(obs, site, &CorruptionError{Corruption: *c}, false)
	return c
}

// corrupt evaluates corruption rules at the site and draws the flip
// position for an n-byte payload.
func (p *Plan) corrupt(site Site, n int64) (*Corruption, []func(Site, error, bool)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.evalLocked(site, true) == nil {
		return nil, nil
	}
	c := &Corruption{
		Site:   site,
		Offset: p.rng.Int63n(n),
		Bit:    uint8(p.rng.Intn(8)),
	}
	p.corrupted[site]++
	if len(p.log) < maxCorruptionLog {
		p.log = append(p.log, *c)
	}
	return c, p.observersLocked(site)
}

// CorruptionsInjected returns how many corruptions have been injected
// at the site so far.
func (p *Plan) CorruptionsInjected(site Site) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.corrupted[site]
}

// TotalCorruptions returns the total corruptions injected across all
// sites. The chaos harness checks this against the detected + masked
// counts reported by the checksummed planes.
func (p *Plan) TotalCorruptions() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, c := range p.corrupted {
		n += c
	}
	return n
}

// Corruptions returns the injection log (site + offset per flip),
// bounded at maxCorruptionLog entries; the counters stay exact beyond
// that.
func (p *Plan) Corruptions() []Corruption {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Corruption, len(p.log))
	copy(out, p.log)
	return out
}

// Fired returns how many failures have been injected at the site so far
// (summed over its rules; a shared rule counts once per site it fired
// at — i.e. per firing Check call).
func (p *Plan) Fired(site Site) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	seen := make(map[*armedRule]bool)
	for _, ar := range p.rules[site] {
		if !seen[ar] {
			seen[ar] = true
			n += ar.fired
		}
	}
	return n
}

// TotalFired returns the total number of injected failures across all
// sites.
func (p *Plan) TotalFired() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	seen := make(map[*armedRule]bool)
	for _, rs := range p.rules {
		for _, ar := range rs {
			if !seen[ar] {
				seen[ar] = true
				n += ar.fired
			}
		}
	}
	return n
}

// Sites returns the armed sites, sorted (for logs and tests).
func (p *Plan) Sites() []Site {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]Site, 0, len(p.rules))
	for s := range p.rules {
		out = append(out, s)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parse builds a plan from a compact spec string, the format of the
// CLI's -fault-plan flag:
//
//	site:key=val[,key=val...][;site:...]
//
// Keys: after=N (op-count trigger), times=K (failure budget, 0 =
// permanent), prob=P (probability trigger), msg=S (error text), fatal=B
// (kill the run instead of erroring — see FatalError), corrupt=B (flip
// a payload bit instead of erroring — see CorruptData), delay=D (a
// straggle duration, e.g. 50ms), degrade=FxD (limp at F x healthy
// latency for duration D, e.g. 20x500ms; bare degrade=F limps forever —
// see DegradeFactor), flap=PATTERN (a string of 'u'/'d' characters
// cycled one per op, e.g. flap=uud — see Rule.Flap). The pseudo-site
// lustre.io arms a shared rule over lustre.read and lustre.write.
// Example:
//
//	lustre.io:after=100,times=2;mrnet.node:times=1;mrnet.hop:prob=0.001
//	lustre.read:corrupt=true,times=2;distrib.response:corrupt=true,prob=0.01
//
// An empty spec yields a nil plan (no injection).
func Parse(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := New(seed)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, kvs, ok := strings.Cut(entry, ":")
		if !ok || strings.TrimSpace(site) == "" {
			return nil, fmt.Errorf("faultinject: entry %q: want site:key=val,...", entry)
		}
		var r Rule
		for _, kv := range strings.Split(kvs, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: entry %q: bad pair %q", entry, kv)
			}
			switch k {
			case "after":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faultinject: entry %q: bad after=%q", entry, v)
				}
				r.After = n
			case "times":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faultinject: entry %q: bad times=%q", entry, v)
				}
				r.Times = n
			case "prob":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("faultinject: entry %q: bad prob=%q", entry, v)
				}
				r.Prob = f
			case "msg":
				r.Err = errors.New(v)
			case "fatal":
				b, err := strconv.ParseBool(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: entry %q: bad fatal=%q", entry, v)
				}
				r.Fatal = b
			case "corrupt":
				b, err := strconv.ParseBool(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: entry %q: bad corrupt=%q", entry, v)
				}
				r.Corrupt = b
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faultinject: entry %q: bad delay=%q", entry, v)
				}
				r.Delay = d
			case "degrade":
				fs, ds, hasDur := strings.Cut(v, "x")
				f, err := strconv.ParseFloat(fs, 64)
				if err != nil || f <= 1 {
					return nil, fmt.Errorf("faultinject: entry %q: bad degrade=%q (want FACTOR or FACTORxDUR, factor > 1)", entry, v)
				}
				r.Degrade = f
				if hasDur {
					d, err := time.ParseDuration(ds)
					if err != nil || d <= 0 {
						return nil, fmt.Errorf("faultinject: entry %q: bad degrade=%q (bad duration)", entry, v)
					}
					r.DegradeFor = d
				}
			case "flap":
				if v == "" || strings.Trim(v, "ud") != "" {
					return nil, fmt.Errorf("faultinject: entry %q: bad flap=%q (want a string of 'u'/'d')", entry, v)
				}
				r.Flap = v
			default:
				return nil, fmt.Errorf("faultinject: entry %q: unknown key %q", entry, k)
			}
		}
		p.Arm(Site(strings.TrimSpace(site)), r)
	}
	return p, nil
}
