// Package faultinject provides a deterministic, seedable fault plan
// shared by every hardware simulator in the pipeline.
//
// Mr. Scan's substrate makes partial failure the normal case at scale:
// Lustre "fails under load (OST evictions, MDS timeouts)", MRNet
// processes die and their children must be re-parented, and worker nodes
// drop off mid-phase. Each simulator used to carry (or lack) its own
// ad-hoc fault hook; this package replaces them with a single Plan that
// every substrate consults at its fault sites:
//
//   - lustre.read / lustre.write — parallel file system I/O
//   - mrnet.hop                  — overlay tree edge traffic
//   - mrnet.node                 — internal overlay process crash
//   - gpusim.launch              — GPGPU kernel launches
//   - distrib.conn               — coordinator→worker TCP exchanges
//
// A Rule fires either after a fixed number of operations (op-count
// trigger) or with a seeded per-operation probability, for a bounded or
// unbounded number of failures. Bounded rules model transient faults
// that a retry policy should absorb; unbounded rules model permanent
// failures that must surface as errors. All counting is done under one
// mutex, so a plan driven by a deterministic operation order reproduces
// the same failure sequence on every run.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Site names a fault injection point. Substrates define their own site
// constants; tests may invent ad-hoc sites (e.g. per-worker sites in
// distrib).
type Site string

// Well-known fault sites consulted by the simulators.
const (
	LustreRead  Site = "lustre.read"
	LustreWrite Site = "lustre.write"
	MRNetHop    Site = "mrnet.hop"
	MRNetNode   Site = "mrnet.node"
	GPULaunch   Site = "gpusim.launch"
	DistribConn Site = "distrib.conn"
)

// LustreIO is a pseudo-site accepted by Arm and Parse: it arms one rule
// with a single shared counter across LustreRead and LustreWrite (N
// successful operations of either kind, then failure).
const LustreIO Site = "lustre.io"

// ErrInjected is the default error returned by a firing rule with no
// explicit Err.
var ErrInjected = errors.New("faultinject: injected fault")

// FatalError marks a fault that models process death rather than an
// error return: a node segfaulting, the OOM killer, a hardware machine
// check. Retry and recovery layers must NOT absorb it — the run dies
// where it stands, leaving whatever durable state (checkpoints, partial
// files) exists on the file system, exactly as a real mid-run crash
// would. A later run with resume enabled restarts from that state.
type FatalError struct {
	// Cause is the underlying injected error.
	Cause error
}

func (e *FatalError) Error() string {
	return fmt.Sprintf("faultinject: fatal fault (process killed): %v", e.Cause)
}

func (e *FatalError) Unwrap() error { return e.Cause }

// IsFatal reports whether err carries a FatalError anywhere in its
// chain. Every retry layer in the pipeline consults it before
// re-executing.
func IsFatal(err error) bool {
	var fe *FatalError
	return errors.As(err, &fe)
}

// Rule describes one fault trigger.
type Rule struct {
	// After is the number of Check calls at the armed site(s) that pass
	// before the rule starts firing. Ignored when Prob is set.
	After int64
	// Times bounds how many failures the rule injects; 0 means
	// unlimited (a permanent fault).
	Times int64
	// Prob, when positive, makes the rule probabilistic: each Check
	// fires with probability Prob, drawn from the plan's seeded PRNG.
	Prob float64
	// Err is the error injected; nil uses ErrInjected.
	Err error
	// Fatal wraps the injected error in a FatalError: the fault kills
	// the run (no retry layer may absorb it) instead of surfacing as a
	// recoverable error.
	Fatal bool
}

// armedRule is a Rule plus its live counters. One armedRule may be
// registered at several sites (ArmShared), sharing the counters.
type armedRule struct {
	Rule
	remaining int64 // op credits left before firing (count-triggered)
	fired     int64
}

// Plan is a set of armed rules keyed by site. The zero value is not
// usable; construct with New. A nil *Plan is valid and injects nothing,
// so substrates can consult their plan unconditionally. Plan is safe
// for concurrent use.
type Plan struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    map[Site][]*armedRule
	observer func(site Site, err error, fatal bool)
}

// New returns an empty plan. The seed drives probabilistic rules; plans
// with the same seed, rules and Check sequence inject identical faults.
func New(seed int64) *Plan {
	return &Plan{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[Site][]*armedRule),
	}
}

// Arm registers a rule at a site and returns the plan for chaining.
// Arming the LustreIO pseudo-site shares one rule across LustreRead and
// LustreWrite.
func (p *Plan) Arm(site Site, r Rule) *Plan {
	if site == LustreIO {
		return p.ArmShared(r, LustreRead, LustreWrite)
	}
	return p.ArmShared(r, site)
}

// ArmShared registers one rule — with a single shared op counter and
// failure budget — at every listed site.
func (p *Plan) ArmShared(r Rule, sites ...Site) *Plan {
	ar := &armedRule{Rule: r, remaining: r.After}
	p.mu.Lock()
	for _, s := range sites {
		p.rules[s] = append(p.rules[s], ar)
	}
	p.mu.Unlock()
	return p
}

// SetObserver installs a callback invoked on every injected fault,
// after the plan's internal lock is released — observers may safely
// call back into the plan or into telemetry. A nil observer disables
// notification.
func (p *Plan) SetObserver(fn func(site Site, err error, fatal bool)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.observer = fn
	p.mu.Unlock()
}

// Check consumes one operation at the site and returns the injected
// error if any armed rule fires. A nil plan or an unarmed site always
// passes (and costs nothing).
func (p *Plan) Check(site Site) error {
	if p == nil {
		return nil
	}
	err, fatal, obs := p.check(site)
	if err != nil && obs != nil {
		obs(site, err, fatal)
	}
	if fatal {
		return &FatalError{Cause: err}
	}
	return err
}

// check evaluates the site's rules under the lock, returning the
// injected error (pre-FatalError wrapping) and the observer to notify.
func (p *Plan) check(site Site) (err error, fatal bool, obs func(Site, error, bool)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ar := range p.rules[site] {
		if ar.Times > 0 && ar.fired >= ar.Times {
			continue // exhausted: transient fault has passed
		}
		if ar.Prob > 0 {
			if p.rng.Float64() >= ar.Prob {
				continue
			}
		} else if ar.remaining > 0 {
			ar.remaining--
			continue
		}
		ar.fired++
		err = ar.Err
		if err == nil {
			err = ErrInjected
		}
		return err, ar.Fatal, p.observer
	}
	return nil, false, nil
}

// Fired returns how many failures have been injected at the site so far
// (summed over its rules; a shared rule counts once per site it fired
// at — i.e. per firing Check call).
func (p *Plan) Fired(site Site) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	seen := make(map[*armedRule]bool)
	for _, ar := range p.rules[site] {
		if !seen[ar] {
			seen[ar] = true
			n += ar.fired
		}
	}
	return n
}

// TotalFired returns the total number of injected failures across all
// sites.
func (p *Plan) TotalFired() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	seen := make(map[*armedRule]bool)
	for _, rs := range p.rules {
		for _, ar := range rs {
			if !seen[ar] {
				seen[ar] = true
				n += ar.fired
			}
		}
	}
	return n
}

// Sites returns the armed sites, sorted (for logs and tests).
func (p *Plan) Sites() []Site {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]Site, 0, len(p.rules))
	for s := range p.rules {
		out = append(out, s)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parse builds a plan from a compact spec string, the format of the
// CLI's -fault-plan flag:
//
//	site:key=val[,key=val...][;site:...]
//
// Keys: after=N (op-count trigger), times=K (failure budget, 0 =
// permanent), prob=P (probability trigger), msg=S (error text), fatal=B
// (kill the run instead of erroring — see FatalError). The pseudo-site
// lustre.io arms a shared rule over lustre.read and lustre.write.
// Example:
//
//	lustre.io:after=100,times=2;mrnet.node:times=1;mrnet.hop:prob=0.001
//
// An empty spec yields a nil plan (no injection).
func Parse(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := New(seed)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, kvs, ok := strings.Cut(entry, ":")
		if !ok || strings.TrimSpace(site) == "" {
			return nil, fmt.Errorf("faultinject: entry %q: want site:key=val,...", entry)
		}
		var r Rule
		for _, kv := range strings.Split(kvs, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: entry %q: bad pair %q", entry, kv)
			}
			switch k {
			case "after":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faultinject: entry %q: bad after=%q", entry, v)
				}
				r.After = n
			case "times":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faultinject: entry %q: bad times=%q", entry, v)
				}
				r.Times = n
			case "prob":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("faultinject: entry %q: bad prob=%q", entry, v)
				}
				r.Prob = f
			case "msg":
				r.Err = errors.New(v)
			case "fatal":
				b, err := strconv.ParseBool(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: entry %q: bad fatal=%q", entry, v)
				}
				r.Fatal = b
			default:
				return nil, fmt.Errorf("faultinject: entry %q: unknown key %q", entry, k)
			}
		}
		p.Arm(Site(strings.TrimSpace(site)), r)
	}
	return p, nil
}
