package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestNilPlanAndUnarmedSitePass(t *testing.T) {
	var p *Plan
	if err := p.Check(LustreRead); err != nil {
		t.Fatalf("nil plan must pass: %v", err)
	}
	if p.Fired(LustreRead) != 0 || p.TotalFired() != 0 || p.Sites() != nil {
		t.Error("nil plan accessors must be zero")
	}
	p = New(1)
	for i := 0; i < 100; i++ {
		if err := p.Check(MRNetHop); err != nil {
			t.Fatalf("unarmed site must pass: %v", err)
		}
	}
}

func TestCountTrigger(t *testing.T) {
	boom := errors.New("boom")
	p := New(0).Arm(GPULaunch, Rule{After: 3, Times: 2, Err: boom})
	for i := 0; i < 3; i++ {
		if err := p.Check(GPULaunch); err != nil {
			t.Fatalf("op %d must pass: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := p.Check(GPULaunch); !errors.Is(err, boom) {
			t.Fatalf("failure %d = %v, want boom", i, err)
		}
	}
	// Budget exhausted: transient fault has passed.
	if err := p.Check(GPULaunch); err != nil {
		t.Fatalf("exhausted rule must pass: %v", err)
	}
	if got := p.Fired(GPULaunch); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

func TestPermanentFault(t *testing.T) {
	p := New(0).Arm(MRNetHop, Rule{})
	for i := 0; i < 5; i++ {
		if err := p.Check(MRNetHop); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d = %v, want ErrInjected", i, err)
		}
	}
}

func TestSharedCounterAcrossSites(t *testing.T) {
	boom := errors.New("ost evicted")
	p := New(0).Arm(LustreIO, Rule{After: 2, Err: boom})
	if err := p.Check(LustreRead); err != nil {
		t.Fatal(err)
	}
	if err := p.Check(LustreWrite); err != nil {
		t.Fatal(err)
	}
	// Two credits consumed across both sites; third op fires regardless
	// of which site it hits.
	if err := p.Check(LustreRead); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if err := p.Check(LustreWrite); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestProbDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []int {
		p := New(seed).Arm(DistribConn, Rule{Prob: 0.25})
		var fired []int
		for i := 0; i < 200; i++ {
			if p.Check(DistribConn) != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("prob=0.25 over 200 ops fired nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at firing %d: op %d vs %d", i, a[i], b[i])
		}
	}
}

func TestProbTimesBudget(t *testing.T) {
	p := New(7).Arm(MRNetNode, Rule{Prob: 1, Times: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if p.Check(MRNetNode) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d times, want 3 (budget)", fired)
	}
}

func TestConcurrentChecksInjectExactly(t *testing.T) {
	p := New(0).Arm(MRNetNode, Rule{Times: 1})
	var wg sync.WaitGroup
	var fired sync.Map
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if p.Check(MRNetNode) != nil {
				fired.Store(i, true)
			}
		}(i)
	}
	wg.Wait()
	n := 0
	fired.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Errorf("Times=1 rule fired %d times under concurrency", n)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("lustre.io:after=1,times=2,msg=ost down; mrnet.node:times=1 ;gpusim.launch:prob=0.5", 11)
	if err != nil {
		t.Fatal(err)
	}
	sites := p.Sites()
	want := []Site{GPULaunch, LustreRead, LustreWrite, MRNetNode}
	if len(sites) != len(want) {
		t.Fatalf("Sites = %v, want %v", sites, want)
	}
	for i := range want {
		if sites[i] != want[i] {
			t.Fatalf("Sites = %v, want %v", sites, want)
		}
	}
	if err := p.Check(LustreRead); err != nil {
		t.Fatalf("first lustre op must pass: %v", err)
	}
	if err := p.Check(LustreWrite); err == nil || err.Error() != "ost down" {
		t.Fatalf("second lustre op = %v, want msg error", err)
	}

	if p, err := Parse("", 0); err != nil || p != nil {
		t.Errorf("empty spec = (%v, %v), want nil plan", p, err)
	}
	for _, bad := range []string{
		"nosite", "s:", "s:after=x", "s:times=-1", "s:prob=2", "s:wat=1", "s:after",
	} {
		if _, err := Parse(bad, 0); err == nil && bad != "s:" {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}
