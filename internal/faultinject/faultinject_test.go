package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilPlanAndUnarmedSitePass(t *testing.T) {
	var p *Plan
	if err := p.Check(LustreRead); err != nil {
		t.Fatalf("nil plan must pass: %v", err)
	}
	if p.Fired(LustreRead) != 0 || p.TotalFired() != 0 || p.Sites() != nil {
		t.Error("nil plan accessors must be zero")
	}
	p = New(1)
	for i := 0; i < 100; i++ {
		if err := p.Check(MRNetHop); err != nil {
			t.Fatalf("unarmed site must pass: %v", err)
		}
	}
}

func TestCountTrigger(t *testing.T) {
	boom := errors.New("boom")
	p := New(0).Arm(GPULaunch, Rule{After: 3, Times: 2, Err: boom})
	for i := 0; i < 3; i++ {
		if err := p.Check(GPULaunch); err != nil {
			t.Fatalf("op %d must pass: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := p.Check(GPULaunch); !errors.Is(err, boom) {
			t.Fatalf("failure %d = %v, want boom", i, err)
		}
	}
	// Budget exhausted: transient fault has passed.
	if err := p.Check(GPULaunch); err != nil {
		t.Fatalf("exhausted rule must pass: %v", err)
	}
	if got := p.Fired(GPULaunch); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

func TestPermanentFault(t *testing.T) {
	p := New(0).Arm(MRNetHop, Rule{})
	for i := 0; i < 5; i++ {
		if err := p.Check(MRNetHop); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d = %v, want ErrInjected", i, err)
		}
	}
}

func TestSharedCounterAcrossSites(t *testing.T) {
	boom := errors.New("ost evicted")
	p := New(0).Arm(LustreIO, Rule{After: 2, Err: boom})
	if err := p.Check(LustreRead); err != nil {
		t.Fatal(err)
	}
	if err := p.Check(LustreWrite); err != nil {
		t.Fatal(err)
	}
	// Two credits consumed across both sites; third op fires regardless
	// of which site it hits.
	if err := p.Check(LustreRead); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if err := p.Check(LustreWrite); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestProbDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []int {
		p := New(seed).Arm(DistribConn, Rule{Prob: 0.25})
		var fired []int
		for i := 0; i < 200; i++ {
			if p.Check(DistribConn) != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("prob=0.25 over 200 ops fired nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at firing %d: op %d vs %d", i, a[i], b[i])
		}
	}
}

func TestProbTimesBudget(t *testing.T) {
	p := New(7).Arm(MRNetNode, Rule{Prob: 1, Times: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if p.Check(MRNetNode) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d times, want 3 (budget)", fired)
	}
}

func TestConcurrentChecksInjectExactly(t *testing.T) {
	p := New(0).Arm(MRNetNode, Rule{Times: 1})
	var wg sync.WaitGroup
	var fired sync.Map
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if p.Check(MRNetNode) != nil {
				fired.Store(i, true)
			}
		}(i)
	}
	wg.Wait()
	n := 0
	fired.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Errorf("Times=1 rule fired %d times under concurrency", n)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("lustre.io:after=1,times=2,msg=ost down; mrnet.node:times=1 ;gpusim.launch:prob=0.5", 11)
	if err != nil {
		t.Fatal(err)
	}
	sites := p.Sites()
	want := []Site{GPULaunch, LustreRead, LustreWrite, MRNetNode}
	if len(sites) != len(want) {
		t.Fatalf("Sites = %v, want %v", sites, want)
	}
	for i := range want {
		if sites[i] != want[i] {
			t.Fatalf("Sites = %v, want %v", sites, want)
		}
	}
	if err := p.Check(LustreRead); err != nil {
		t.Fatalf("first lustre op must pass: %v", err)
	}
	if err := p.Check(LustreWrite); err == nil || err.Error() != "ost down" {
		t.Fatalf("second lustre op = %v, want msg error", err)
	}

	if p, err := Parse("", 0); err != nil || p != nil {
		t.Errorf("empty spec = (%v, %v), want nil plan", p, err)
	}
	for _, bad := range []string{
		"nosite", "s:", "s:after=x", "s:times=-1", "s:prob=2", "s:wat=1", "s:after",
	} {
		if _, err := Parse(bad, 0); err == nil && bad != "s:" {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestFatalRule(t *testing.T) {
	boom := errors.New("machine check")
	p := New(0).Arm(MRNetHop, Rule{Times: 1, Err: boom, Fatal: true})
	err := p.Check(MRNetHop)
	if err == nil {
		t.Fatal("fatal rule did not fire")
	}
	if !IsFatal(err) {
		t.Fatalf("IsFatal(%v) = false, want true", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("fatal error must wrap the cause, got %v", err)
	}
	var fe *FatalError
	if !errors.As(err, &fe) || fe.Cause != boom {
		t.Fatalf("want *FatalError wrapping boom, got %#v", err)
	}
	// Budget exhausted: the site passes again (the next incarnation of
	// the process sees a healthy substrate).
	if err := p.Check(MRNetHop); err != nil {
		t.Fatalf("exhausted fatal rule must pass: %v", err)
	}
	// Wrapped fatal errors stay fatal; plain errors do not.
	if !IsFatal(fmt.Errorf("mrscan: merge phase: %w", err2())) {
		t.Fatal("wrapped fatal error must stay fatal")
	}
	if IsFatal(errors.New("plain")) || IsFatal(nil) {
		t.Fatal("non-fatal errors must not be fatal")
	}
}

func err2() error { return &FatalError{Cause: ErrInjected} }

func TestParseFatal(t *testing.T) {
	p, err := Parse("gpusim.launch:times=1,fatal=true", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(GPULaunch); !IsFatal(err) {
		t.Fatalf("parsed fatal rule fired %v, want fatal", err)
	}
	if _, err := Parse("gpusim.launch:fatal=maybe", 1); err == nil {
		t.Fatal("bad fatal value must be rejected")
	}
}

// TestProbabilisticConcurrentDeterminism drives a probability rule from
// many goroutines at once (run under -race): the total number of fired
// faults must be identical across repetitions for a fixed seed, because
// every Check draws exactly one variate from the seeded PRNG under the
// plan mutex — the draw *sequence* is fixed even though the goroutine
// interleaving is not.
func TestProbabilisticConcurrentDeterminism(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 2000
		seed       = 42
	)
	run := func() int64 {
		p := New(seed).Arm(DistribConn, Rule{Prob: 0.05})
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsPerG; i++ {
					p.Check(DistribConn)
				}
			}()
		}
		wg.Wait()
		return p.Fired(DistribConn)
	}
	first := run()
	if first == 0 {
		t.Fatal("probability rule never fired over 16000 ops at p=0.05")
	}
	// The binomial expectation is 800; a deterministic sequence must be
	// exactly reproducible, and wildly off-expectation counts would mean
	// the PRNG is being consulted more or less than once per Check.
	if first < 400 || first > 1600 {
		t.Fatalf("fired = %d, implausible for Binomial(16000, 0.05)", first)
	}
	for rep := 0; rep < 4; rep++ {
		if got := run(); got != first {
			t.Fatalf("rep %d fired %d faults, first run fired %d — not deterministic", rep, got, first)
		}
	}
	// A different seed must (with overwhelming probability) change the
	// sequence, proving the count actually depends on the seed.
	q := New(seed+1).Arm(DistribConn, Rule{Prob: 0.05})
	var qn int64
	for i := 0; i < goroutines*opsPerG; i++ {
		if q.Check(DistribConn) != nil {
			qn++
		}
	}
	if qn == first {
		t.Logf("seed %d and %d fired identically (%d) — suspicious but possible", seed, seed+1, first)
	}
}

// TestConcurrentMixedRules exercises count- and probability-triggered
// rules on one plan from concurrent callers, asserting budget invariants
// hold under the race detector.
func TestConcurrentMixedRules(t *testing.T) {
	p := New(7).
		Arm(LustreIO, Rule{After: 100, Times: 5}).
		Arm(MRNetHop, Rule{Prob: 0.01, Times: 3})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Check(LustreRead)
				p.Check(LustreWrite)
				p.Check(MRNetHop)
			}
		}()
	}
	wg.Wait()
	if got := p.Fired(LustreRead) + p.Fired(LustreWrite); got != 10 {
		// The shared rule fired 5 times total, visible at both sites.
		t.Fatalf("shared lustre.io rule fired %d site-visible faults, want 10", got)
	}
	if got := p.Fired(MRNetHop); got != 3 {
		t.Fatalf("mrnet.hop budget: fired %d, want exactly 3", got)
	}
	if got := p.TotalFired(); got != 8 {
		t.Fatalf("TotalFired = %d, want 8 (5 shared + 3 hop)", got)
	}
}

// TestCorruptRuleFlipsExactlyOneBit: a corrupt rule flips one seeded
// bit of the payload, silently, and records the injection; error-rule
// Check never consumes a corrupt rule and vice versa.
func TestCorruptRuleFlipsExactlyOneBit(t *testing.T) {
	p := New(42).Arm(LustreRead, Rule{Corrupt: true, Times: 1})
	if err := p.Check(LustreRead); err != nil {
		t.Fatalf("Check fired a corrupt rule as an error: %v", err)
	}
	orig := []byte("the quick brown fox jumps over the lazy dog")
	data := append([]byte(nil), orig...)
	c := p.CorruptData(LustreRead, data)
	if c == nil {
		t.Fatal("corrupt rule did not fire")
	}
	diff := 0
	for i := range orig {
		if x := orig[i] ^ data[i]; x != 0 {
			diff++
			if x&(x-1) != 0 {
				t.Fatalf("byte %d changed by more than one bit: %08b", i, x)
			}
			if int64(i) != c.Offset || x != 1<<c.Bit {
				t.Fatalf("flip at byte %d bit pattern %08b, Corruption says offset %d bit %d", i, x, c.Offset, c.Bit)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", diff)
	}
	if got := p.CorruptionsInjected(LustreRead); got != 1 {
		t.Fatalf("CorruptionsInjected = %d, want 1", got)
	}
	// Budget exhausted: no further flips.
	if c := p.CorruptData(LustreRead, data); c != nil {
		t.Fatalf("exhausted rule fired again: %+v", c)
	}
	// Empty payloads cannot fire (nothing to flip).
	p2 := New(1).Arm(LustreRead, Rule{Corrupt: true, Times: 1})
	if c := p2.CorruptData(LustreRead, nil); c != nil {
		t.Fatalf("empty payload fired: %+v", c)
	}
	if got := p2.CorruptionsInjected(LustreRead); got != 0 {
		t.Fatalf("empty payload recorded an injection: %d", got)
	}
}

// TestCorruptCheckModeledPlane: CorruptCheck reports a flip position
// inside an n-byte modeled transfer without touching real bytes.
func TestCorruptCheckModeledPlane(t *testing.T) {
	p := New(7).Arm(GPUTransfer, Rule{Corrupt: true, Times: 2})
	for i := 0; i < 2; i++ {
		c := p.CorruptCheck(GPUTransfer, 512)
		if c == nil {
			t.Fatalf("fire %d: rule did not fire", i)
		}
		if c.Offset < 0 || c.Offset >= 512 || c.Bit > 7 {
			t.Fatalf("fire %d: out-of-range flip %+v", i, c)
		}
	}
	if c := p.CorruptCheck(GPUTransfer, 512); c != nil {
		t.Fatalf("exhausted rule fired: %+v", c)
	}
	if got := p.TotalCorruptions(); got != 2 {
		t.Fatalf("TotalCorruptions = %d, want 2", got)
	}
}

// TestDelayRule: a delay-only rule straggles the op without failing it.
func TestDelayRule(t *testing.T) {
	p := New(0).Arm(LustreRead, Rule{Delay: 30 * time.Millisecond, Times: 1})
	var seen error
	p.SetObserver(func(site Site, err error, fatal bool) { seen = err })
	start := time.Now()
	if err := p.Check(LustreRead); err != nil {
		t.Fatalf("delay rule failed the op: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("op straggled only %v, want ~30ms", d)
	}
	var de *DelayError
	if !errors.As(seen, &de) || de.D != 30*time.Millisecond {
		t.Fatalf("observer saw %v, want a 30ms DelayError", seen)
	}
	// Budget spent: the next op is prompt.
	start = time.Now()
	if err := p.Check(LustreRead); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("second op straggled %v, want prompt", d)
	}
}

// TestParseCorruptAndDelay: the spec grammar covers the corrupt and
// delay keys, and rejects malformed values.
func TestParseCorruptAndDelay(t *testing.T) {
	p, err := Parse("lustre.read:corrupt=true,times=2;mrnet.hop:delay=15ms,times=1", 9)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if c := p.CorruptData(LustreRead, buf); c == nil {
		t.Fatal("parsed corrupt rule did not fire")
	}
	start := time.Now()
	if err := p.Check(MRNetHop); err != nil {
		t.Fatalf("parsed delay rule failed the op: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("parsed delay straggled only %v", d)
	}
	for _, bad := range []string{
		"lustre.read:corrupt=maybe",
		"mrnet.hop:delay=-5ms",
		"mrnet.hop:delay=fast",
	} {
		if _, err := Parse(bad, 0); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}
}
