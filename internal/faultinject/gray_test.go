package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDegradeFactorPermanent(t *testing.T) {
	p := New(1).Arm("lustre.ost.0", Rule{Degrade: 20})
	for i := 0; i < 5; i++ {
		if f := p.DegradeFactor("lustre.ost.0"); f != 20 {
			t.Fatalf("call %d: factor = %v, want 20", i, f)
		}
	}
	if f := p.DegradeFactor("lustre.ost.1"); f != 1 {
		t.Fatalf("unarmed site factor = %v, want 1", f)
	}
	if f := (*Plan)(nil).DegradeFactor("lustre.ost.0"); f != 1 {
		t.Fatalf("nil plan factor = %v, want 1", f)
	}
}

func TestDegradeFactorAfterAndWindow(t *testing.T) {
	p := New(1).Arm("s", Rule{Degrade: 4, After: 2, DegradeFor: 30 * time.Millisecond})
	if f := p.DegradeFactor("s"); f != 1 {
		t.Fatalf("factor before trigger = %v, want 1", f)
	}
	if f := p.DegradeFactor("s"); f != 1 {
		t.Fatalf("factor before trigger = %v, want 1", f)
	}
	if f := p.DegradeFactor("s"); f != 4 {
		t.Fatalf("factor at trigger = %v, want 4", f)
	}
	time.Sleep(40 * time.Millisecond)
	if f := p.DegradeFactor("s"); f != 1 {
		t.Fatalf("factor after window = %v, want 1", f)
	}
}

func TestDegradeNeverFiresFromCheck(t *testing.T) {
	p := New(1).Arm("s", Rule{Degrade: 8})
	for i := 0; i < 10; i++ {
		if err := p.Check("s"); err != nil {
			t.Fatalf("Check returned %v for a degrade-only rule", err)
		}
	}
}

func TestDegradeObserver(t *testing.T) {
	p := New(1).Arm("s", Rule{Degrade: 8, DegradeFor: time.Second})
	var got []error
	p.ObserveSite("s", func(_ Site, err error, _ bool) { got = append(got, err) })
	p.DegradeFactor("s")
	p.DegradeFactor("s") // activation reported once
	if len(got) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(got))
	}
	var de *DegradeError
	if !errors.As(got[0], &de) || de.Factor != 8 {
		t.Fatalf("observer got %v, want DegradeError{Factor: 8}", got[0])
	}
}

func TestFlapPattern(t *testing.T) {
	p := New(1).Arm("s", Rule{Flap: "dud"})
	want := []bool{true, false, true, true, false, true} // pattern cycles
	for i, wantErr := range want {
		err := p.Check("s")
		if (err != nil) != wantErr {
			t.Fatalf("op %d: err=%v, want error=%v", i, err, wantErr)
		}
	}
	if n := p.Fired("s"); n != 4 {
		t.Fatalf("fired = %d, want 4", n)
	}
}

func TestFlapAfterAndTimes(t *testing.T) {
	p := New(1).Arm("s", Rule{Flap: "d", After: 2, Times: 3})
	var fails int
	for i := 0; i < 10; i++ {
		if p.Check("s") != nil {
			fails++
		}
	}
	// Two ops pass on the After credit, then 'd' fires until Times runs out.
	if fails != 3 {
		t.Fatalf("failures = %d, want 3", fails)
	}
}

func TestPerSiteObserverScoping(t *testing.T) {
	p := New(1).
		Arm("a", Rule{Times: 1}).
		Arm("b", Rule{Times: 1})
	var aEvents, global int
	p.ObserveSite("a", func(Site, error, bool) { aEvents++ })
	p.SetObserver(func(Site, error, bool) { global++ })
	p.Check("a")
	p.Check("b")
	if aEvents != 1 {
		t.Fatalf("site observer fired %d times, want 1 (site b must not reach it)", aEvents)
	}
	if global != 2 {
		t.Fatalf("global observer fired %d times, want 2", global)
	}
}

func TestParseDegradeAndFlap(t *testing.T) {
	p, err := Parse("lustre.ost.3:degrade=20x500ms;mrnet.nic.2:flap=uud,times=5;s:degrade=8", 7)
	if err != nil {
		t.Fatal(err)
	}
	if f := p.DegradeFactor("lustre.ost.3"); f != 20 {
		t.Fatalf("parsed degrade factor = %v, want 20", f)
	}
	if f := p.DegradeFactor("s"); f != 8 {
		t.Fatalf("parsed permanent degrade factor = %v, want 8", f)
	}
	// flap=uud: ops 1,2 pass, op 3 fails.
	if err := p.Check("mrnet.nic.2"); err != nil {
		t.Fatalf("flap op 1: %v", err)
	}
	if err := p.Check("mrnet.nic.2"); err != nil {
		t.Fatalf("flap op 2: %v", err)
	}
	if err := p.Check("mrnet.nic.2"); err == nil {
		t.Fatal("flap op 3: want injected error")
	}

	for _, bad := range []string{
		"s:degrade=1",       // factor must exceed 1
		"s:degrade=2xoops",  // bad duration
		"s:flap=",           // empty pattern
		"s:flap=up",         // invalid characters
		"s:degrade=0.5x1ms", // factor must exceed 1
	} {
		if _, err := Parse(bad, 7); err == nil {
			t.Fatalf("Parse(%q) accepted invalid spec", bad)
		}
	}
}
