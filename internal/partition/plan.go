// Package partition implements Mr. Scan's partition phase (paper §3.1):
// dividing the Eps×Eps grid into one partition per clustering process such
// that (1) partitions merge to a correct global DBSCAN result, (2)
// partitions have roughly equal computational cost, measured in points,
// and (3) the work distributes across many partitioner processes.
//
// Correctness comes from shadow regions: each partition is extended by
// every neighboring region it does not own, so every partition point's
// Eps-neighborhood is complete within the partition (§3.1.1).
//
// Balance comes from the forming algorithm (§3.1.2): ownership units are
// consumed in iteration order (first along y, then along x) into
// partitions capped at an equal share of the points, with a
// running-difference correction, and a backward rebalancing pass that
// shrinks oversized partitions to within 1.075× of the final target.
//
// Ownership units are whole grid cells by default; extremely dense cells
// can be subdivided into quadrant tiles (see Unit), implementing the
// paper's §5.1.2 fix for the strong-scaling limit.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/grid"
)

// RebalanceThreshold is the paper's 1.075 × final-target cutoff: "The
// threshold is set to 1.075 × finaltargetsize because it worked well in
// practice on our datasets."
const RebalanceThreshold = 1.075

// Spec describes one partition: the units it owns (in iteration order)
// and its shadow units.
type Spec struct {
	// Units are the owned units, contiguous in iteration order.
	Units []Unit
	// PointCount is the number of points in owned units.
	PointCount int64
	// Shadow are the non-empty units owned by other partitions that lie
	// in the 3×3 cell neighborhood of this partition's units.
	Shadow []Unit
	// ShadowCount is the number of points in shadow units.
	ShadowCount int64
}

// Total returns the partition's size including its shadow region — the
// quantity the rebalancing pass thresholds.
func (s *Spec) Total() int64 { return s.PointCount + s.ShadowCount }

// Plan is a complete partitioning of the grid.
type Plan struct {
	Grid  grid.Grid
	Specs []*Spec
	// UnitOwner maps every non-empty unit to the partition that owns it.
	UnitOwner map[Unit]int
	// MinPts is the minimum partition size constraint the plan was formed
	// under.
	MinPts int

	hist *UnitHistogram
}

// PlanOptions configures MakePlanUnits.
type PlanOptions struct {
	NumPartitions int
	MinPts        int
	Rebalance     bool
}

// MakePlan forms nParts partitions from a plain cell histogram (no hot
// cell subdivision). minPts is DBSCAN's MinPts: the profitability
// constraint requires every partition to hold at least MinPts points
// where possible (§3.1.2). rebalance enables the backward rebalancing
// pass.
func MakePlan(g grid.Grid, h *grid.Histogram, nParts, minPts int, rebalance bool) (*Plan, error) {
	return MakePlanUnits(g, FromCellHistogram(h), PlanOptions{
		NumPartitions: nParts,
		MinPts:        minPts,
		Rebalance:     rebalance,
	})
}

// MakePlanUnits forms partitions from a unit histogram, which may carry
// subdivided hot cells.
func MakePlanUnits(g grid.Grid, uh *UnitHistogram, opt PlanOptions) (*Plan, error) {
	if opt.NumPartitions < 1 {
		return nil, fmt.Errorf("partition: need at least 1 partition, got %d", opt.NumPartitions)
	}
	if opt.MinPts < 1 {
		return nil, fmt.Errorf("partition: MinPts must be positive, got %d", opt.MinPts)
	}
	units := make([]Unit, 0, len(uh.Counts))
	for u, n := range uh.Counts {
		if n > 0 {
			units = append(units, u)
		}
	}
	sort.Slice(units, func(a, b int) bool { return units[a].Less(units[b]) })
	total := uh.Total()
	nParts := opt.NumPartitions
	p := &Plan{
		Grid:      g,
		UnitOwner: make(map[Unit]int, len(units)),
		MinPts:    opt.MinPts,
		hist:      uh,
	}

	// --- Forming pass (§3.1.2) ---
	// Partitions are built sequentially in unit iteration order. A
	// partition closes when the next unit would push it past the current
	// effective target — unless it is still empty, below MinPts, or the
	// final partition. The running difference from the ideal target
	// shrinks subsequent targets so early oversized partitions are paid
	// for ("we form partitions proportionately smaller until the
	// difference is neutral or negative again").
	target := float64(total) / float64(nParts)
	runningDiff := 0.0
	effTarget := clampTarget(target, runningDiff, opt.MinPts)
	cur := &Spec{}
	for _, u := range units {
		n := uh.Counts[u]
		wouldExceed := float64(cur.PointCount+n) > effTarget
		canClose := len(cur.Units) > 0 &&
			cur.PointCount >= int64(opt.MinPts) &&
			len(p.Specs) < nParts-1
		if wouldExceed && canClose {
			runningDiff += float64(cur.PointCount) - target
			p.Specs = append(p.Specs, cur)
			cur = &Spec{}
			effTarget = clampTarget(target, runningDiff, opt.MinPts)
		}
		cur.Units = append(cur.Units, u)
		cur.PointCount += n
	}
	if len(cur.Units) > 0 || len(p.Specs) == 0 {
		p.Specs = append(p.Specs, cur)
	}
	// Pad with empty partitions when there are fewer units than
	// partitions (their leaves will be idle in the cluster phase).
	for len(p.Specs) < nParts {
		p.Specs = append(p.Specs, &Spec{})
	}
	p.rebuildOwners()
	for i := range p.Specs {
		p.recomputeShadow(i)
	}

	// --- Rebalancing pass (§3.1.2, Figure 2c) ---
	if opt.Rebalance {
		p.rebalance()
	}
	// The plan gates the correctness of everything downstream (§3.1.1);
	// a structural check here is cheap relative to the data volume.
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func clampTarget(target, runningDiff float64, minPts int) float64 {
	eff := target
	if runningDiff > 0 {
		eff = target - runningDiff
	}
	if eff < float64(minPts) {
		eff = float64(minPts)
	}
	return eff
}

func (p *Plan) rebuildOwners() {
	clear(p.UnitOwner)
	for i, s := range p.Specs {
		for _, u := range s.Units {
			p.UnitOwner[u] = i
		}
	}
}

// recomputeShadow rebuilds partition i's shadow list: every non-empty
// unit in the 3×3 cell neighborhood of an owned unit that partition i
// does not own — including sibling tiles of split cells.
func (p *Plan) recomputeShadow(i int) {
	s := p.Specs[i]
	set := make(map[Unit]bool)
	cells := make(map[grid.Coord]bool)
	for _, u := range s.Units {
		cells[u.Cell] = true
		for _, nb := range u.Cell.Neighbors() {
			cells[nb] = true
		}
	}
	for c := range cells {
		for _, v := range p.hist.cellUnits(c) {
			if owner, ok := p.UnitOwner[v]; ok && owner == i {
				continue
			}
			set[v] = true
		}
	}
	s.Shadow = s.Shadow[:0]
	s.ShadowCount = 0
	for u := range set {
		s.Shadow = append(s.Shadow, u)
		s.ShadowCount += p.hist.Counts[u]
	}
	sort.Slice(s.Shadow, func(a, b int) bool { return s.Shadow[a].Less(s.Shadow[b]) })
}

// rebalance walks backward from the last partition, moving leading units
// to the previous partition until the partition (including shadow) fits
// under RebalanceThreshold × the final target — "the mean of the point
// counts of all the partitions including shadow regions".
func (p *Plan) rebalance() {
	var sum int64
	for _, s := range p.Specs {
		sum += s.Total()
	}
	finalTarget := float64(sum) / float64(len(p.Specs))
	threshold := RebalanceThreshold * finalTarget

	for i := len(p.Specs) - 1; i >= 1; i-- {
		s := p.Specs[i]
		prev := p.Specs[i-1]
		for float64(s.Total()) > threshold && len(s.Units) > 1 {
			head := s.Units[0]
			headCount := p.hist.Counts[head]
			// Keep the MinPts minimum partition size.
			if s.PointCount-headCount < int64(p.MinPts) {
				break
			}
			s.Units = s.Units[1:]
			s.PointCount -= headCount
			prev.Units = append(prev.Units, head)
			prev.PointCount += headCount
			p.UnitOwner[head] = i - 1
			p.recomputeShadow(i)
			p.recomputeShadow(i - 1)
		}
	}
}

// NumPartitions returns the number of partitions in the plan.
func (p *Plan) NumPartitions() int { return len(p.Specs) }

// MaxTotal returns the largest partition size including shadows.
func (p *Plan) MaxTotal() int64 {
	var max int64
	for _, s := range p.Specs {
		if s.Total() > max {
			max = s.Total()
		}
	}
	return max
}

// MeanTotal returns the mean partition size including shadows.
func (p *Plan) MeanTotal() float64 {
	var sum int64
	for _, s := range p.Specs {
		sum += s.Total()
	}
	return float64(sum) / float64(len(p.Specs))
}

// MaxOwned returns the largest partition size excluding shadows — the
// quantity hot-cell splitting reduces.
func (p *Plan) MaxOwned() int64 {
	var max int64
	for _, s := range p.Specs {
		if s.PointCount > max {
			max = s.PointCount
		}
	}
	return max
}

// SplitCells returns the number of cells subdivided into tiles.
func (p *Plan) SplitCells() int { return len(p.hist.Depth) }

// ShadowOf returns, for every unit, the partitions holding it as a
// shadow unit.
func (p *Plan) ShadowOf() map[Unit][]int {
	out := make(map[Unit][]int)
	for i, s := range p.Specs {
		for _, u := range s.Shadow {
			out[u] = append(out[u], i)
		}
	}
	return out
}

// Validate checks the plan's structural invariants: every non-empty unit
// owned exactly once, unit runs contiguous in iteration order, shadows
// disjoint from owned units, and counts consistent with the histogram.
func (p *Plan) Validate() error {
	seen := make(map[Unit]int)
	for i, s := range p.Specs {
		var count int64
		for _, u := range s.Units {
			if prev, dup := seen[u]; dup {
				return fmt.Errorf("partition: unit %v owned by both %d and %d", u, prev, i)
			}
			seen[u] = i
			count += p.hist.Counts[u]
		}
		if count != s.PointCount {
			return fmt.Errorf("partition: spec %d counts %d points, units hold %d", i, s.PointCount, count)
		}
		var shadowCount int64
		for _, u := range s.Shadow {
			if owner, ok := p.UnitOwner[u]; ok && owner == i {
				return fmt.Errorf("partition: spec %d shadows its own unit %v", i, u)
			}
			shadowCount += p.hist.Counts[u]
		}
		if shadowCount != s.ShadowCount {
			return fmt.Errorf("partition: spec %d shadow counts %d, units hold %d", i, s.ShadowCount, shadowCount)
		}
	}
	for u, n := range p.hist.Counts {
		if n == 0 {
			continue
		}
		if _, ok := seen[u]; !ok {
			return fmt.Errorf("partition: non-empty unit %v owned by no partition", u)
		}
	}
	return nil
}
