package partition

import (
	"context"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lustre"
	"repro/internal/mrnet"
	"repro/internal/ptio"
)

// DirectResult is the output of DistributeDirect: partitions held in
// memory for direct hand-off to the cluster phase instead of a partition
// file on the parallel file system.
type DirectResult struct {
	Plan *Plan
	// Partitions[j] and Shadows[j] are partition j's owned and shadow
	// points.
	Partitions [][]geom.Point
	Shadows    [][]geom.Point
	// Wall-clock durations of the stages.
	ReadTime     time.Duration
	PlanTime     time.Duration
	TransferTime time.Duration
	// ReadSim and WriteSim are the simulated-hardware costs of the read
	// and delivery stages, the same accounting DistResult reports for the
	// file-system path so the two designs compare like-for-like. ReadSim
	// is Lustre traffic for the input shards; WriteSim is the overlay
	// transfer cost of sending partition contents as messages — the cost
	// that replaces the file path's small random writes (§6).
	ReadSim  time.Duration
	WriteSim time.Duration
	// TotalPoints is the input size; TransferredPoints includes shadow
	// duplication.
	TotalPoints       int64
	TransferredPoints int64
}

// DistributeDirect is the paper's stated next step (§5.1.1, §6): "A
// better design for this step would be to send partitioned data as
// messages over the network directly to Mr. Scan's clustering processes"
// — eliminating the small random Lustre writes that dominate the
// partition phase.
//
// The input is still read from the file system (unavoidable), the
// histogram reduction and serial planning are unchanged, but partition
// contents travel over the overlay network (charged per byte on the
// simulated clock) and never touch the file system.
func DistributeDirect(ctx context.Context, net *mrnet.Network, fs *lustre.FS, eps float64, inputFile string, opt DistOptions) (*DirectResult, error) {
	if opt.NumPartitions < 1 {
		return nil, fmt.Errorf("partition: NumPartitions must be positive, got %d", opt.NumPartitions)
	}
	if opt.MinPts < 1 {
		return nil, fmt.Errorf("partition: MinPts must be positive, got %d", opt.MinPts)
	}
	g := grid.New(eps)
	leaves := net.NumLeaves()
	rs := int64(ptio.RecordSize(opt.HasWeight))

	// --- Stage 1: leaves read shards; histogram reduction (as in
	// Distribute) ---
	readStart := time.Now()
	simAtStart := fs.Clock().Total()
	total, err := openInput(fs, inputFile, opt.HasWeight)
	if err != nil {
		return nil, err
	}
	shard := make([][]geom.Point, leaves)
	hist, err := mrnet.Reduce(ctx, net,
		func(leaf int) (*grid.Histogram, error) {
			lo := total * int64(leaf) / int64(leaves)
			hi := total * int64(leaf+1) / int64(leaves)
			h, err := fs.Open(inputFile)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, (hi-lo)*rs)
			if _, err := h.ReadAt(buf, ptio.DatasetHeaderSize+lo*rs); err != nil {
				return nil, fmt.Errorf("reading shard [%d,%d): %w", lo, hi, err)
			}
			pts, err := ptio.DecodeRecords(buf, opt.HasWeight)
			if err != nil {
				return nil, err
			}
			shard[leaf] = pts
			return g.HistogramOf(pts), nil
		},
		func(_ *mrnet.Node, parts []*grid.Histogram) (*grid.Histogram, error) {
			out := grid.NewHistogram()
			for _, h := range parts {
				out.Add(h)
			}
			return out, nil
		},
		func(h *grid.Histogram) int64 { return int64(len(h.Counts)) * 12 },
	)
	if err != nil {
		return nil, err
	}
	readTime := time.Since(readStart)
	readSim := fs.Clock().Total() - simAtStart

	// --- Stage 2: serial planning at the root ---
	planStart := time.Now()
	uh, err := resolveUnits(ctx, net, g, hist, shard, opt.SplitThreshold)
	if err != nil {
		return nil, err
	}
	plan, err := MakePlanUnits(g, uh, PlanOptions{
		NumPartitions: opt.NumPartitions,
		MinPts:        opt.MinPts,
		Rebalance:     opt.Rebalance,
	})
	if err != nil {
		return nil, err
	}
	planTime := time.Since(planStart)

	// --- Stage 3: contributions travel the overlay as messages ---
	transferStart := time.Now()
	simAtTransfer := fs.Clock().Total()
	splitOpt := SplitOptions{ShadowReps: opt.ShadowReps}
	combined, err := mrnet.Reduce(ctx, net,
		func(leaf int) (*SplitResult, error) {
			return Split(plan, shard[leaf], splitOpt)
		},
		func(_ *mrnet.Node, parts []*SplitResult) (*SplitResult, error) {
			out := &SplitResult{
				Partitions: make([][]geom.Point, opt.NumPartitions),
				Shadows:    make([][]geom.Point, opt.NumPartitions),
			}
			for _, p := range parts {
				for j := 0; j < opt.NumPartitions; j++ {
					out.Partitions[j] = append(out.Partitions[j], p.Partitions[j]...)
					out.Shadows[j] = append(out.Shadows[j], p.Shadows[j]...)
				}
			}
			return out, nil
		},
		func(sr *SplitResult) int64 {
			var pts int64
			for j := range sr.Partitions {
				pts += int64(len(sr.Partitions[j]) + len(sr.Shadows[j]))
			}
			return pts * rs
		},
	)
	if err != nil {
		return nil, err
	}
	transferTime := time.Since(transferStart)
	writeSim := fs.Clock().Total() - simAtTransfer

	var transferred int64
	for j := range combined.Partitions {
		transferred += int64(len(combined.Partitions[j]) + len(combined.Shadows[j]))
	}
	return &DirectResult{
		Plan:              plan,
		Partitions:        combined.Partitions,
		Shadows:           combined.Shadows,
		ReadTime:          readTime,
		PlanTime:          planTime,
		TransferTime:      transferTime,
		ReadSim:           readSim,
		WriteSim:          writeSim,
		TotalPoints:       total,
		TransferredPoints: transferred,
	}, nil
}
