package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/grid"
)

const eps = 0.1

func twitterHist(t testing.TB, n int, seed int64) (grid.Grid, *grid.Histogram, []geom.Point) {
	t.Helper()
	g := grid.New(eps)
	pts := dataset.Twitter(n, seed)
	return g, g.HistogramOf(pts), pts
}

func TestMakePlanValidation(t *testing.T) {
	g := grid.New(eps)
	h := grid.NewHistogram()
	if _, err := MakePlan(g, h, 0, 4, true); err == nil {
		t.Error("zero partitions must be rejected")
	}
	if _, err := MakePlan(g, h, 2, 0, true); err == nil {
		t.Error("zero MinPts must be rejected")
	}
}

func TestMakePlanEmptyHistogram(t *testing.T) {
	g := grid.New(eps)
	plan, err := MakePlan(g, grid.NewHistogram(), 4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPartitions() != 4 {
		t.Fatalf("NumPartitions = %d, want 4", plan.NumPartitions())
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanInvariants(t *testing.T) {
	for _, nParts := range []int{1, 2, 5, 16, 64} {
		g, h, _ := twitterHist(t, 20000, 1)
		plan, err := MakePlan(g, h, nParts, 4, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("nParts=%d: %v", nParts, err)
		}
		if plan.NumPartitions() != nParts {
			t.Fatalf("nParts=%d: NumPartitions = %d", nParts, plan.NumPartitions())
		}
		// Total owned points must equal the histogram total.
		var sum int64
		for _, s := range plan.Specs {
			sum += s.PointCount
		}
		if sum != h.Total() {
			t.Fatalf("nParts=%d: partitions hold %d points, histogram has %d", nParts, sum, h.Total())
		}
	}
}

func TestPlanCellsContiguous(t *testing.T) {
	// Partitions own contiguous runs of the global cell iteration order,
	// before and after rebalancing.
	g, h, _ := twitterHist(t, 30000, 2)
	for _, rebalance := range []bool{false, true} {
		plan, err := MakePlan(g, h, 12, 4, rebalance)
		if err != nil {
			t.Fatal(err)
		}
		pos := make(map[grid.Coord]int)
		for i, c := range h.Cells() {
			pos[c] = i
		}
		next := 0
		for i, s := range plan.Specs {
			for k, u := range s.Units {
				if pos[u.Cell] != next {
					t.Fatalf("rebalance=%v: partition %d cell %d out of order (global pos %d, want %d)",
						rebalance, i, k, pos[u.Cell], next)
				}
				next++
			}
		}
	}
}

func TestPlanMinPtsConstraint(t *testing.T) {
	// §3.1.2: "each partition must contain at least MinPts points."
	g, h, _ := twitterHist(t, 50000, 3)
	const minPts = 400
	plan, err := MakePlan(g, h, 32, minPts, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range plan.Specs {
		if len(s.Units) == 0 {
			continue // padding partition (more leaves than cells)
		}
		if s.PointCount < minPts {
			t.Errorf("partition %d holds %d points, want >= MinPts=%d", i, s.PointCount, minPts)
		}
	}
}

func TestRebalanceImprovesBalance(t *testing.T) {
	// The populous "last partition" effect (Figure 2a): without
	// rebalancing the final partition absorbs the leftovers; rebalancing
	// must bring the maximum down toward the threshold.
	g, h, _ := twitterHist(t, 60000, 4)
	const nParts = 24
	raw, err := MakePlan(g, h, nParts, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := MakePlan(g, h, nParts, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := bal.Validate(); err != nil {
		t.Fatal(err)
	}
	if bal.MaxTotal() > raw.MaxTotal() {
		t.Errorf("rebalancing increased the max partition: %d > %d", bal.MaxTotal(), raw.MaxTotal())
	}
	// The max must approach the threshold unless a single cell forces it
	// higher ("Large grid cells do not pose a problem ... because of our
	// dense box optimization").
	_, maxCell := h.MaxCell()
	limit := int64(RebalanceThreshold*bal.MeanTotal()) + maxCell
	if bal.MaxTotal() > limit {
		t.Errorf("max partition %d exceeds threshold+maxcell %d", bal.MaxTotal(), limit)
	}
}

// TestShadowCompleteness is the §3.1.1 correctness property: for every
// point p owned by partition i, every point within Eps of p is either
// owned by i or in i's shadow region.
func TestShadowCompleteness(t *testing.T) {
	g := grid.New(eps)
	pts := dataset.Twitter(5000, 5)
	h := g.HistogramOf(pts)
	plan, err := MakePlan(g, h, 8, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	inPartition := make([]map[grid.Coord]bool, 8)
	inShadow := make([]map[grid.Coord]bool, 8)
	for i, s := range plan.Specs {
		inPartition[i] = make(map[grid.Coord]bool, len(s.Units))
		for _, u := range s.Units {
			inPartition[i][u.Cell] = true
		}
		inShadow[i] = make(map[grid.Coord]bool, len(s.Shadow))
		for _, u := range s.Shadow {
			inShadow[i][u.Cell] = true
		}
	}
	eps2 := eps * eps
	for a := 0; a < len(pts); a += 3 {
		ca := g.CellOf(pts[a])
		owner := plan.UnitOwner[CellUnit(ca)]
		for b := range pts {
			if a == b || geom.Dist2(pts[a], pts[b]) > eps2 {
				continue
			}
			cb := g.CellOf(pts[b])
			if !inPartition[owner][cb] && !inShadow[owner][cb] {
				t.Fatalf("point %d (cell %v, partition %d) has neighbor %d in cell %v outside partition+shadow",
					a, ca, owner, b, cb)
			}
		}
	}
}

func TestPlanProperty(t *testing.T) {
	// Random histograms with random partition counts always validate and
	// preserve totals.
	f := func(seeds []uint32, nRaw uint8, minRaw uint8) bool {
		g := grid.New(1)
		h := grid.NewHistogram()
		for _, s := range seeds {
			c := grid.Coord{CX: int32(s % 37), CY: int32((s / 37) % 37)}
			h.Counts[c] += int64(s%50) + 1
		}
		nParts := int(nRaw)%20 + 1
		minPts := int(minRaw)%10 + 1
		plan, err := MakePlan(g, h, nParts, minPts, true)
		if err != nil {
			return false
		}
		if plan.Validate() != nil {
			return false
		}
		var sum int64
		for _, s := range plan.Specs {
			sum += s.PointCount
		}
		return sum == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSinglePartitionHasNoShadow(t *testing.T) {
	g, h, _ := twitterHist(t, 2000, 6)
	plan, err := MakePlan(g, h, 1, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Specs[0].ShadowCount != 0 || len(plan.Specs[0].Shadow) != 0 {
		t.Errorf("single partition must have an empty shadow, got %d cells / %d points",
			len(plan.Specs[0].Shadow), plan.Specs[0].ShadowCount)
	}
}

func TestSplitCoversAllPointsOnce(t *testing.T) {
	g := grid.New(eps)
	pts := dataset.Twitter(8000, 7)
	h := g.HistogramOf(pts)
	plan, err := MakePlan(g, h, 10, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	split, err := Split(plan, pts, SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for _, part := range split.Partitions {
		for _, p := range part {
			seen[p.ID]++
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("partitions cover %d distinct points, want %d", len(seen), len(pts))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("point %d owned %d times", id, n)
		}
	}
	// Shadow points must be copies of owned points from other partitions.
	owned := make(map[uint64]int)
	for i, part := range split.Partitions {
		for _, p := range part {
			owned[p.ID] = i
		}
	}
	for i, sh := range split.Shadows {
		for _, p := range sh {
			if o, ok := owned[p.ID]; !ok {
				t.Fatalf("shadow point %d of partition %d not owned anywhere", p.ID, i)
			} else if o == i {
				t.Fatalf("partition %d shadows its own point %d", i, p.ID)
			}
		}
	}
}

func TestSplitShadowMatchesPlanCounts(t *testing.T) {
	g := grid.New(eps)
	pts := dataset.Twitter(6000, 8)
	h := g.HistogramOf(pts)
	plan, err := MakePlan(g, h, 6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	split, err := Split(plan, pts, SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range plan.Specs {
		if int64(len(split.Partitions[i])) != s.PointCount {
			t.Errorf("partition %d: split %d points, plan says %d", i, len(split.Partitions[i]), s.PointCount)
		}
		if int64(len(split.Shadows[i])) != s.ShadowCount {
			t.Errorf("partition %d: split %d shadow points, plan says %d", i, len(split.Shadows[i]), s.ShadowCount)
		}
		if int64(len(split.Shadows[i])) != ShadowSize(plan, i, SplitOptions{}) {
			t.Errorf("partition %d: ShadowSize mismatch", i)
		}
	}
}

func TestShadowRepsBounded(t *testing.T) {
	g := grid.New(eps)
	pts := dataset.Twitter(20000, 9)
	h := g.HistogramOf(pts)
	plan, err := MakePlan(g, h, 8, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	opt := SplitOptions{ShadowReps: true}
	split, err := Split(plan, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Split(plan, pts, SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reduced := false
	for i := range split.Shadows {
		if int64(len(split.Shadows[i])) != ShadowSize(plan, i, opt) {
			t.Errorf("partition %d: %d shadow reps, ShadowSize says %d",
				i, len(split.Shadows[i]), ShadowSize(plan, i, opt))
		}
		if len(split.Shadows[i]) > len(full.Shadows[i]) {
			t.Errorf("partition %d: reps (%d) exceed full shadow (%d)",
				i, len(split.Shadows[i]), len(full.Shadows[i]))
		}
		if len(split.Shadows[i]) < len(full.Shadows[i]) {
			reduced = true
		}
		// Per shadow cell: at most 8 points.
		perCell := map[grid.Coord]int{}
		for _, p := range split.Shadows[i] {
			perCell[g.CellOf(p)]++
		}
		for c, n := range perCell {
			if n > MaxShadowReps {
				t.Errorf("partition %d shadow cell %v holds %d reps, max %d", i, c, n, MaxShadowReps)
			}
		}
	}
	if !reduced {
		t.Error("dense data must trigger shadow reduction somewhere")
	}
}

func TestShadowRepsSelection(t *testing.T) {
	g := grid.New(1)
	cell := grid.Coord{CX: 0, CY: 0}
	rng := rand.New(rand.NewSource(10))
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), X: rng.Float64(), Y: rng.Float64()}
	}
	reps := ShadowReps(g, cell, pts)
	if len(reps) != MaxShadowReps {
		t.Fatalf("selected %d reps, want %d", len(reps), MaxShadowReps)
	}
	// Selection must be deterministic.
	again := ShadowReps(g, cell, pts)
	for i := range reps {
		if reps[i] != again[i] {
			t.Fatal("rep selection not deterministic")
		}
	}
	// Small cells pass through unchanged.
	small := pts[:5]
	if got := ShadowReps(g, cell, small); len(got) != 5 {
		t.Errorf("small cell reduced to %d points", len(got))
	}
}
