package partition

import (
	"context"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lustre"
	"repro/internal/mrnet"
	"repro/internal/ptio"
)

// DistOptions configures the distributed partitioner (§3.1.3).
type DistOptions struct {
	// NumPartitions is the number of partitions to produce — one per
	// cluster-phase leaf process.
	NumPartitions int
	// MinPts is DBSCAN's MinPts (minimum partition size constraint).
	MinPts int
	// Rebalance enables the backward rebalancing pass.
	Rebalance bool
	// ShadowReps enables the representative-shadow write reduction.
	ShadowReps bool
	// HasWeight selects the record format.
	HasWeight bool
	// SplitThreshold, when positive, subdivides grid cells holding more
	// points than the threshold into quadrant tiles shared across
	// partitions — the paper's §5.1.2 fix for the single-dense-cell
	// strong-scaling limit ("we need to subdivide grid cells when they
	// have extremely high density").
	SplitThreshold int64

	// Aggregate selects the log-structured write path for stage 3.
	// Instead of every leaf issuing one small random write per partition
	// region (§5.1.1's "small random writes" — 65.2% of the phase), each
	// leaf appends its whole contribution as one sequential run into a
	// sharded segment file, and the metadata carries a segment index from
	// which ReadPartition (or Compact) reassembles every partition
	// byte-identically. O(leaves×partitions) random writes become
	// O(leaves) sequential ones.
	Aggregate bool
	// SegmentShards is the number of segment files the aggregated writer
	// spreads leaves over (sharding the append logs across OSTs instead
	// of funneling every leaf into one file). 0 picks min(leaves, 8).
	SegmentShards int
	// OnLayout, when set, is called once, on the caller's goroutine, as
	// soon as the root has fixed the partition layout — after stage 2,
	// before any partition data is written. The meta it receives is the
	// same object the DistResult later carries, so a pipelined consumer
	// can size partitions before they are durable.
	OnLayout func(meta *ptio.PartitionMeta)
	// OnPartitionDurable, when set (aggregate mode only), is called
	// exactly once per partition index, as soon as every leaf's
	// contribution to that partition has been written and the segment
	// files synced — the signal a pipelined cluster phase starts
	// clustering partition j on while leaves still write j+1. Calls come
	// from concurrent leaf goroutines in arbitrary partition order.
	OnPartitionDurable func(j int)
}

// resolveUnits lifts the cell histogram to ownership units. When hot
// cells exist, the root announces their subdivision depths down the tree
// and the leaves reduce per-tile counts back up (a second, small
// histogram round).
func resolveUnits(ctx context.Context, net *mrnet.Network, g grid.Grid, hist *grid.Histogram, shard [][]geom.Point, threshold int64) (*UnitHistogram, error) {
	depth := make(map[grid.Coord]uint8)
	if threshold > 0 {
		for c, n := range hist.Counts {
			if d := DepthFor(n, threshold); d > 0 {
				depth[c] = d
			}
		}
	}
	if len(depth) == 0 {
		return FromCellHistogram(hist), nil
	}
	// Announce depths; leaves only need the hot cells.
	if err := mrnet.Multicast(ctx, net, depth, nil,
		func(int, map[grid.Coord]uint8) error { return nil },
		func(d map[grid.Coord]uint8) int64 { return int64(len(d)) * 9 },
	); err != nil {
		return nil, err
	}
	counts, err := mrnet.Reduce(ctx, net,
		func(leaf int) (map[Unit]int64, error) {
			return QuadCounts(g, shard[leaf], depth), nil
		},
		func(_ *mrnet.Node, parts []map[Unit]int64) (map[Unit]int64, error) {
			out := make(map[Unit]int64)
			for _, m := range parts {
				for u, n := range m {
					out[u] += n
				}
			}
			return out, nil
		},
		func(m map[Unit]int64) int64 { return int64(len(m)) * 20 },
	)
	if err != nil {
		return nil, err
	}
	return &UnitHistogram{Counts: counts, Depth: depth}, nil
}

// DistResult reports what the partitioner produced and where time went.
// The paper breaks the phase down the same way: at MinPts=400 "this write
// operation took 65.2% of the partition phase, while the initial read
// operation took 29.92%" (§5.1.1).
type DistResult struct {
	Plan *Plan
	Meta *ptio.PartitionMeta
	// Wall-clock durations of the phase's three stages.
	ReadTime  time.Duration
	PlanTime  time.Duration
	WriteTime time.Duration
	// ReadSim and WriteSim are the simulated-hardware costs charged
	// during the read and write stages (Lustre OST traffic and seeks):
	// the quantities behind §5.1.1's "this write operation took 65.2% of
	// the partition phase, while the initial read operation took 29.92%".
	ReadSim  time.Duration
	WriteSim time.Duration
	// TotalPoints is the input size; WrittenPoints includes the shadow
	// duplication ("the addition of the shadow regions increases the
	// total number of points in the partitioned dataset", §3.1.2).
	TotalPoints   int64
	WrittenPoints int64
}

// leafCounts holds one leaf's per-partition contribution sizes:
// counts[j] = {owned points, shadow points} destined for partition j.
type leafCounts [][2]int64

// leafContrib holds one leaf's split output: the owned and shadow points
// it must deliver to each partition.
type leafContrib struct {
	part, shadow [][]geom.Point
}

// openInput validates an MRSC input file before either partitioner
// touches a record, returning the record count. Every rejection here was
// once silent corruption: a header-less or empty file slipped past a dead
// `total < 0` guard (truncated division), a torn tail was dropped without
// error, and the header's magic/version/weight bits were never checked —
// a weight-flag mismatch misparses every record into garbage coordinates.
func openInput(fs *lustre.FS, inputFile string, hasWeight bool) (int64, error) {
	in, err := fs.Open(inputFile)
	if err != nil {
		return 0, fmt.Errorf("partition: opening input: %w", err)
	}
	size := in.Size()
	if size < ptio.DatasetHeaderSize {
		return 0, fmt.Errorf("partition: input file %q too short: %d bytes, need at least the %d-byte header",
			inputFile, size, ptio.DatasetHeaderSize)
	}
	var hdr [ptio.DatasetHeaderSize]byte
	if _, err := in.ReadAt(hdr[:], 0); err != nil {
		return 0, fmt.Errorf("partition: reading input header: %w", err)
	}
	dh, err := ptio.ParseDatasetHeader(hdr[:])
	if err != nil {
		return 0, fmt.Errorf("partition: input file %q: %w", inputFile, err)
	}
	if dh.HasWeight != hasWeight {
		return 0, fmt.Errorf("partition: input file %q header says hasWeight=%t but options say %t — refusing to misparse records",
			inputFile, dh.HasWeight, hasWeight)
	}
	rs := int64(ptio.RecordSize(hasWeight))
	body := size - ptio.DatasetHeaderSize
	if body%rs != 0 {
		return 0, fmt.Errorf("partition: input file %q is torn: %d payload bytes is not a multiple of record size %d (%d trailing bytes would be dropped)",
			inputFile, body, rs, body%rs)
	}
	total := body / rs
	if total != dh.Count {
		return 0, fmt.Errorf("partition: input file %q holds %d records but its header declares %d",
			inputFile, total, dh.Count)
	}
	return total, nil
}

// Distribute runs the distributed partition phase: the partitioner leaves
// read shards of the input file, reduce an Eps-cell histogram to the
// root, the root forms the plan serially (§3.1.2) and broadcasts offset
// assignments, and the leaves write every partition's points (and shadow
// points) into a single output file in parallel. The root writes a JSON
// metadata file locating each partition ("the root generates a metadata
// file to specify the offset from which each partition starts").
//
// The partitioner runs on its own (typically flat) network, separate from
// the cluster-phase tree, as in the paper.
func Distribute(ctx context.Context, net *mrnet.Network, fs *lustre.FS, eps float64, inputFile, outputFile, metaFile string, opt DistOptions) (*DistResult, error) {
	if opt.NumPartitions < 1 {
		return nil, fmt.Errorf("partition: NumPartitions must be positive, got %d", opt.NumPartitions)
	}
	if opt.MinPts < 1 {
		return nil, fmt.Errorf("partition: MinPts must be positive, got %d", opt.MinPts)
	}
	g := grid.New(eps)
	leaves := net.NumLeaves()
	rs := int64(ptio.RecordSize(opt.HasWeight))

	// --- Stage 1: leaves read shards; histogram reduction to the root ---
	// Only cell counts travel up the tree: "the partitioner is able to
	// distribute the entire input dataset across the memory of the leaf
	// processes and only send a point count of each non-empty Eps x Eps
	// cell to the root" (§3.1.3).
	readStart := time.Now()
	simAtStart := fs.Clock().Total()
	total, err := openInput(fs, inputFile, opt.HasWeight)
	if err != nil {
		return nil, err
	}
	shard := make([][]geom.Point, leaves)
	hist, err := mrnet.Reduce(ctx, net,
		func(leaf int) (*grid.Histogram, error) {
			lo := total * int64(leaf) / int64(leaves)
			hi := total * int64(leaf+1) / int64(leaves)
			h, err := fs.Open(inputFile)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, (hi-lo)*rs)
			if _, err := h.ReadAt(buf, ptio.DatasetHeaderSize+lo*rs); err != nil {
				return nil, fmt.Errorf("reading shard [%d,%d): %w", lo, hi, err)
			}
			pts, err := ptio.DecodeRecords(buf, opt.HasWeight)
			if err != nil {
				return nil, err
			}
			shard[leaf] = pts
			return g.HistogramOf(pts), nil
		},
		func(_ *mrnet.Node, parts []*grid.Histogram) (*grid.Histogram, error) {
			out := grid.NewHistogram()
			for _, h := range parts {
				out.Add(h)
			}
			return out, nil
		},
		func(h *grid.Histogram) int64 { return int64(len(h.Counts)) * 12 },
	)
	if err != nil {
		return nil, err
	}
	readTime := time.Since(readStart)
	readSim := fs.Clock().Total() - simAtStart

	// --- Stage 2: the root serially forms the plan ---
	planStart := time.Now()
	uh, err := resolveUnits(ctx, net, g, hist, shard, opt.SplitThreshold)
	if err != nil {
		return nil, err
	}
	plan, err := MakePlanUnits(g, uh, PlanOptions{
		NumPartitions: opt.NumPartitions,
		MinPts:        opt.MinPts,
		Rebalance:     opt.Rebalance,
	})
	if err != nil {
		return nil, err
	}
	splitOpt := SplitOptions{ShadowReps: opt.ShadowReps}

	// Leaves split their shards against the plan and report contribution
	// counts so the root can assign disjoint file offsets. (In-process,
	// the plan reaches the leaves by reference; the sizer charges the
	// broadcast's wire size to the simulated clock.)
	contribs := make([]*leafContrib, leaves)
	allCounts, err := mrnet.Reduce(ctx, net,
		func(leaf int) ([]leafCounts, error) {
			split, err := Split(plan, shard[leaf], splitOpt)
			if err != nil {
				return nil, err
			}
			contribs[leaf] = &leafContrib{part: split.Partitions, shadow: split.Shadows}
			counts := make(leafCounts, opt.NumPartitions)
			for j := 0; j < opt.NumPartitions; j++ {
				counts[j] = [2]int64{int64(len(split.Partitions[j])), int64(len(split.Shadows[j]))}
			}
			return []leafCounts{counts}, nil
		},
		func(_ *mrnet.Node, parts [][]leafCounts) ([]leafCounts, error) {
			var out []leafCounts
			for _, p := range parts {
				out = append(out, p...)
			}
			return out, nil
		},
		func(cs []leafCounts) int64 { return int64(len(cs)) * int64(opt.NumPartitions) * 16 },
	)
	if err != nil {
		return nil, err
	}
	if len(allCounts) != leaves {
		return nil, fmt.Errorf("partition: gathered counts from %d leaves, want %d", len(allCounts), leaves)
	}

	// Root: region layout, then (aggregate mode) the segment-log layout
	// over it.
	meta, offsets := layoutRegions(eps, opt.HasWeight, opt.NumPartitions, allCounts)
	var places []segPlace
	if opt.Aggregate {
		places = buildSegmentLayout(meta, allCounts, outputFile, opt.NumPartitions, opt.SegmentShards)
	}
	planTime := time.Since(planStart)
	if opt.OnLayout != nil {
		opt.OnLayout(meta)
	}

	// --- Stage 3: leaves write partitions in parallel ---
	// Each leaf holds a random portion of the data and "may need to
	// contribute some point data to nearly every partition. These
	// contributions are generally small, and each must be written at a
	// specific offset" — the small random writes that dominate the phase.
	// Aggregate mode replaces them with per-leaf sequential segment runs.
	writeStart := time.Now()
	simAtWrite := fs.Clock().Total()
	if opt.Aggregate {
		err = writePartitionsAggregated(ctx, net, fs, contribs, places, meta, opt)
	} else {
		err = writePartitionsLegacy(ctx, net, fs, outputFile, contribs, offsets, opt.NumPartitions, opt.HasWeight)
	}
	if err != nil {
		return nil, err
	}
	// Root writes the metadata document.
	metaBytes, err := meta.Marshal()
	if err != nil {
		return nil, err
	}
	if _, err := fs.Create(metaFile).WriteAt(metaBytes, 0); err != nil {
		return nil, fmt.Errorf("partition: writing metadata: %w", err)
	}
	writeTime := time.Since(writeStart)
	writeSim := fs.Clock().Total() - simAtWrite

	var written int64
	for _, e := range meta.Partitions {
		written += e.Count + e.ShadowCount
	}
	return &DistResult{
		Plan:          plan,
		Meta:          meta,
		ReadTime:      readTime,
		PlanTime:      planTime,
		WriteTime:     writeTime,
		ReadSim:       readSim,
		WriteSim:      writeSim,
		TotalPoints:   total,
		WrittenPoints: written,
	}, nil
}

// layoutRegions computes the legacy contiguous layout: the output file
// holds, per partition, its owned points then its shadow points, and
// offsets[l][j] = {owned, shadow} write cursors for leaf l — exclusive
// prefix sums within each region.
func layoutRegions(eps float64, hasWeight bool, numPartitions int, allCounts []leafCounts) (*ptio.PartitionMeta, [][][2]int64) {
	rs := int64(ptio.RecordSize(hasWeight))
	leaves := len(allCounts)
	partTotal := make([]int64, numPartitions)
	shadTotal := make([]int64, numPartitions)
	for _, lc := range allCounts {
		for j := 0; j < numPartitions; j++ {
			partTotal[j] += lc[j][0]
			shadTotal[j] += lc[j][1]
		}
	}
	meta := &ptio.PartitionMeta{Eps: eps, HasWeight: hasWeight}
	var cursor int64
	for j := 0; j < numPartitions; j++ {
		entry := ptio.PartitionEntry{
			Offset:       cursor,
			Count:        partTotal[j],
			ShadowOffset: cursor + partTotal[j]*rs,
			ShadowCount:  shadTotal[j],
		}
		cursor = entry.ShadowOffset + shadTotal[j]*rs
		meta.Partitions = append(meta.Partitions, entry)
	}
	offsets := make([][][2]int64, leaves)
	for l := range offsets {
		offsets[l] = make([][2]int64, numPartitions)
	}
	for j := 0; j < numPartitions; j++ {
		partCur := meta.Partitions[j].Offset
		shadCur := meta.Partitions[j].ShadowOffset
		for l := 0; l < leaves; l++ {
			offsets[l][j] = [2]int64{partCur, shadCur}
			partCur += allCounts[l][j][0] * rs
			shadCur += allCounts[l][j][1] * rs
		}
	}
	return meta, offsets
}

// writePartitionsLegacy is stage 3's historical write path: every leaf
// issues one small WriteAt per partition region it contributes to,
// O(leaves×partitions) random writes in total — the behaviour §5.1.1
// measured at 65.2% of the phase. Kept as the default layout and the
// baseline the aggregated writer is benchmarked against.
func writePartitionsLegacy(ctx context.Context, net *mrnet.Network, fs *lustre.FS, outputFile string, contribs []*leafContrib, offsets [][][2]int64, numPartitions int, hasWeight bool) error {
	fs.Create(outputFile)
	return mrnet.Multicast(ctx, net, offsets,
		func(n *mrnet.Node, in [][][2]int64) ([][][][2]int64, error) {
			pLo, _ := n.LeafRange()
			out := make([][][][2]int64, len(n.Children()))
			for i, c := range n.Children() {
				lo, hi := c.LeafRange()
				out[i] = in[lo-pLo : hi-pLo]
			}
			return out, nil
		},
		func(leaf int, rows [][][2]int64) error {
			if len(rows) != 1 {
				return fmt.Errorf("leaf %d received %d offset rows", leaf, len(rows))
			}
			h := fs.OpenOrCreate(outputFile)
			c := contribs[leaf]
			for j := 0; j < numPartitions; j++ {
				if len(c.part[j]) > 0 {
					data := ptio.EncodeRecords(c.part[j], hasWeight)
					if _, err := h.WriteAt(data, rows[0][j][0]); err != nil {
						return err
					}
				}
				if len(c.shadow[j]) > 0 {
					data := ptio.EncodeRecords(c.shadow[j], hasWeight)
					if _, err := h.WriteAt(data, rows[0][j][1]); err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(rows [][][2]int64) int64 { return int64(len(rows)) * int64(numPartitions) * 16 },
	)
}

// ReadPartition loads partition j's owned and shadow points from the
// layout meta describes: the legacy contiguous partition file, or — when
// meta carries a segment index — the aggregated writer's segment files
// (file is ignored then; the index names them). Both layouts return
// byte-identical partitions.
func ReadPartition(fs *lustre.FS, file string, meta *ptio.PartitionMeta, j int) (points, shadow []geom.Point, err error) {
	if j < 0 || j >= len(meta.Partitions) {
		return nil, nil, fmt.Errorf("partition: index %d out of range (%d partitions)", j, len(meta.Partitions))
	}
	if len(meta.Segments) > 0 {
		return readPartitionSegments(fs, meta, j)
	}
	h, err := fs.Open(file)
	if err != nil {
		return nil, nil, err
	}
	rs := int64(ptio.RecordSize(meta.HasWeight))
	e := meta.Partitions[j]
	read := func(off, count int64) ([]geom.Point, error) {
		if count == 0 {
			return nil, nil
		}
		buf := make([]byte, count*rs)
		if _, err := h.ReadAt(buf, off); err != nil {
			return nil, fmt.Errorf("partition: reading %d records at %d: %w", count, off, err)
		}
		return ptio.DecodeRecords(buf, meta.HasWeight)
	}
	if points, err = read(e.Offset, e.Count); err != nil {
		return nil, nil, err
	}
	if shadow, err = read(e.ShadowOffset, e.ShadowCount); err != nil {
		return nil, nil, err
	}
	return points, shadow, nil
}

// ReadMeta loads a metadata document written by Distribute.
func ReadMeta(fs *lustre.FS, metaFile string) (*ptio.PartitionMeta, error) {
	h, err := fs.Open(metaFile)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, h.Size())
	if _, err := h.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return ptio.UnmarshalPartitionMeta(buf)
}
