package partition

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lustre"
	"repro/internal/mrnet"
	"repro/internal/ptio"
)

// writeInput stores a dataset file on the simulated file system.
func writeInput(t *testing.T, fs *lustre.FS, name string, pts []geom.Point, hasWeight bool) {
	t.Helper()
	h := fs.Create(name)
	if err := ptio.WriteDataset(h, pts, hasWeight); err != nil {
		t.Fatal(err)
	}
}

func distEnv(t *testing.T, partLeaves int) (*mrnet.Network, *lustre.FS) {
	t.Helper()
	fs := lustre.New(lustre.Titan(), nil)
	net, err := mrnet.New(partLeaves, mrnet.DefaultFanout, mrnet.CostModel{}, fs.Clock())
	if err != nil {
		t.Fatal(err)
	}
	return net, fs
}

func TestDistributeRoundTrip(t *testing.T) {
	pts := dataset.Twitter(12000, 1)
	for i := range pts {
		pts[i].Weight = 0 // the file is written without the weight field
	}
	net, fs := distEnv(t, 4)
	writeInput(t, fs, "in.mrsc", pts, false)

	res, err := Distribute(context.Background(), net, fs, eps, "in.mrsc", "parts.bin", "parts.json", DistOptions{
		NumPartitions: 8,
		MinPts:        4,
		Rebalance:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPoints != int64(len(pts)) {
		t.Errorf("TotalPoints = %d, want %d", res.TotalPoints, len(pts))
	}
	if res.WrittenPoints <= res.TotalPoints {
		t.Errorf("WrittenPoints = %d must exceed input %d (shadow duplication)",
			res.WrittenPoints, res.TotalPoints)
	}
	if len(res.Meta.Partitions) != 8 {
		t.Fatalf("meta holds %d partitions, want 8", len(res.Meta.Partitions))
	}

	// Re-read every partition and compare against an in-memory split of
	// the same plan: identical point sets (order within a partition may
	// differ by contributing leaf, so compare as ID sets).
	split, err := Split(res.Plan, pts, SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := ReadMeta(fs, "parts.json")
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 8; j++ {
		gotPart, gotShadow, err := ReadPartition(fs, "parts.bin", meta, j)
		if err != nil {
			t.Fatal(err)
		}
		compareIDSets(t, "partition", j, gotPart, split.Partitions[j])
		compareIDSets(t, "shadow", j, gotShadow, split.Shadows[j])
	}
}

func compareIDSets(t *testing.T, what string, j int, got, want []geom.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %d: %d points, want %d", what, j, len(got), len(want))
	}
	wantSet := make(map[uint64]geom.Point, len(want))
	for _, p := range want {
		wantSet[p.ID] = p
	}
	for _, p := range got {
		w, ok := wantSet[p.ID]
		if !ok {
			t.Fatalf("%s %d: unexpected point %d", what, j, p.ID)
		}
		if p != w {
			t.Fatalf("%s %d: point %d = %+v, want %+v", what, j, p.ID, p, w)
		}
	}
}

func TestDistributeManyLeaves(t *testing.T) {
	// More partitioner leaves than the data strictly needs; every leaf
	// contributes small runs to nearly every partition (the small-write
	// behaviour).
	pts := dataset.Twitter(20000, 2)
	net, fs := distEnv(t, 16)
	writeInput(t, fs, "in.mrsc", pts, false)
	res, err := Distribute(context.Background(), net, fs, eps, "in.mrsc", "parts.bin", "parts.json", DistOptions{
		NumPartitions: 32,
		MinPts:        40,
		Rebalance:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Coverage: union of all partitions == input.
	var count int64
	for _, e := range res.Meta.Partitions {
		count += e.Count
	}
	if count != int64(len(pts)) {
		t.Errorf("partitions hold %d points total, want %d", count, len(pts))
	}
	// The simulated clock must show substantial seek cost: every leaf
	// writes to nearly every partition region.
	if seeks := fs.Stats().Seeks; seeks < 100 {
		t.Errorf("Seeks = %d; expected many small random writes", seeks)
	}
}

func TestDistributeShadowReps(t *testing.T) {
	pts := dataset.Twitter(20000, 3)
	netA, fsA := distEnv(t, 4)
	writeInput(t, fsA, "in.mrsc", pts, false)
	full, err := Distribute(context.Background(), netA, fsA, eps, "in.mrsc", "parts.bin", "parts.json", DistOptions{
		NumPartitions: 8, MinPts: 4, Rebalance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	netB, fsB := distEnv(t, 4)
	writeInput(t, fsB, "in.mrsc", pts, false)
	reps, err := Distribute(context.Background(), netB, fsB, eps, "in.mrsc", "parts.bin", "parts.json", DistOptions{
		NumPartitions: 8, MinPts: 4, Rebalance: true, ShadowReps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reps.WrittenPoints >= full.WrittenPoints {
		t.Errorf("shadow reps wrote %d points, full shadow wrote %d — reduction expected",
			reps.WrittenPoints, full.WrittenPoints)
	}
	if fsB.Stats().BytesWritten >= fsA.Stats().BytesWritten {
		t.Error("shadow reps must reduce bytes written to Lustre")
	}
}

func TestDistributeWithWeights(t *testing.T) {
	pts := dataset.Twitter(3000, 4)
	for i := range pts {
		pts[i].Weight = float64(i) * 0.5
	}
	net, fs := distEnv(t, 2)
	writeInput(t, fs, "in.mrsc", pts, true)
	res, err := Distribute(context.Background(), net, fs, eps, "in.mrsc", "parts.bin", "parts.json", DistOptions{
		NumPartitions: 4, MinPts: 4, Rebalance: true, HasWeight: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	part, _, err := ReadPartition(fs, "parts.bin", res.Meta, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) == 0 {
		t.Fatal("partition 0 empty")
	}
	for _, p := range part {
		if p.Weight != float64(p.ID)*0.5 {
			t.Fatalf("point %d weight = %v, want %v", p.ID, p.Weight, float64(p.ID)*0.5)
		}
	}
}

func TestDistributeErrors(t *testing.T) {
	net, fs := distEnv(t, 2)
	if _, err := Distribute(context.Background(), net, fs, eps, "missing.mrsc", "o", "m", DistOptions{NumPartitions: 2, MinPts: 4}); err == nil {
		t.Error("missing input must fail")
	}
	writeInput(t, fs, "in.mrsc", dataset.Twitter(100, 5), false)
	if _, err := Distribute(context.Background(), net, fs, eps, "in.mrsc", "o", "m", DistOptions{NumPartitions: 0, MinPts: 4}); err == nil {
		t.Error("zero partitions must fail")
	}
	if _, err := Distribute(context.Background(), net, fs, eps, "in.mrsc", "o", "m", DistOptions{NumPartitions: 2, MinPts: 0}); err == nil {
		t.Error("zero MinPts must fail")
	}
}

func TestReadPartitionErrors(t *testing.T) {
	fs := lustre.New(lustre.Titan(), nil)
	meta := &ptio.PartitionMeta{Partitions: []ptio.PartitionEntry{{}}}
	if _, _, err := ReadPartition(fs, "missing", meta, 0); err == nil {
		t.Error("missing file must fail")
	}
	fs.Create("f")
	if _, _, err := ReadPartition(fs, "f", meta, 5); err == nil {
		t.Error("out-of-range index must fail")
	}
}

func TestDistributeSingleLeafSinglePartition(t *testing.T) {
	pts := dataset.Twitter(500, 6)
	net, fs := distEnv(t, 1)
	writeInput(t, fs, "in.mrsc", pts, false)
	res, err := Distribute(context.Background(), net, fs, eps, "in.mrsc", "parts.bin", "parts.json", DistOptions{
		NumPartitions: 1, MinPts: 4, Rebalance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	part, shadow, err := ReadPartition(fs, "parts.bin", res.Meta, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != len(pts) {
		t.Errorf("partition holds %d points, want %d", len(part), len(pts))
	}
	if len(shadow) != 0 {
		t.Errorf("single partition must have no shadow, got %d", len(shadow))
	}
}

// TestHistogramOnlyProtocol checks the §3.1.3 property that drives the
// design: the reduction to the root carries cell counts, not points.
func TestHistogramOnlyProtocol(t *testing.T) {
	pts := dataset.Twitter(50000, 7)
	fs := lustre.New(lustre.Titan(), nil)
	net, err := mrnet.New(4, mrnet.DefaultFanout, mrnet.CostModel{HopLatency: 1}, fs.Clock())
	if err != nil {
		t.Fatal(err)
	}
	writeInput(t, fs, "in.mrsc", pts, false)
	if _, err := Distribute(context.Background(), net, fs, eps, "in.mrsc", "parts.bin", "parts.json", DistOptions{
		NumPartitions: 8, MinPts: 4, Rebalance: true,
	}); err != nil {
		t.Fatal(err)
	}
	g := grid.New(eps)
	cells := int64(len(g.HistogramOf(pts).Counts))
	// Overlay bytes: histogram (≈12 B/cell) + counts + offsets, but never
	// the point data (24 B/point).
	overlay := net.Stats().Bytes
	if overlay >= int64(len(pts))*24 {
		t.Errorf("overlay carried %d bytes — point data must stay at the leaves (histogram is ~%d B)",
			overlay, cells*12)
	}
}
