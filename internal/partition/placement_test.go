package partition

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/health"
	"repro/internal/lustre"
	"repro/internal/mrnet"
)

// TestSegmentShardsAvoidQuarantinedOST: with OST health tracking on and
// one OST limping hard enough to be quarantined during the input read,
// every aggregated segment shard must be placed on healthy OSTs only —
// the ROADMAP's OST-aware shard placement — while the partition contents
// stay identical to a run on a healthy file system.
func TestSegmentShardsAvoidQuarantinedOST(t *testing.T) {
	pts := dataset.Twitter(12000, 5)
	opt := DistOptions{NumPartitions: 8, MinPts: 4, Aggregate: true, SegmentShards: 3}

	// Reference: healthy fleet.
	ref, refFS := aggEnv(t, pts, 4, opt)

	// Gray run: tiny stripes so the input read touches every OST, OST 1
	// degraded 16x.
	cfg := lustre.Config{OSTs: 4, StripeSize: 4096, OSTBandwidth: 200e6, SeekPenalty: lustre.Titan().SeekPenalty}
	fs := lustre.New(cfg, nil)
	fs.SetFaultPlan(faultinject.New(1).Arm(lustre.OSTFaultSite(1), faultinject.Rule{Degrade: 16}))
	tracker := fs.EnableOSTHealth(health.Config{SuspectAfter: 2, QuarantineAfter: 1, MinObservations: 2})
	net, err := mrnet.New(4, mrnet.DefaultFanout, mrnet.CostModel{}, fs.Clock())
	if err != nil {
		t.Fatal(err)
	}
	writeInput(t, fs, "in.mrsc", pts, false)
	if !tracker.Quarantined("ost.1") {
		t.Fatalf("setup: slow OST not quarantined after input write; snapshot=%+v", tracker.Snapshot())
	}

	res, err := Distribute(context.Background(), net, fs, eps, "in.mrsc", "parts.bin", "parts.json", opt)
	if err != nil {
		t.Fatal(err)
	}

	// Every segment shard must carry an explicit healthy-only layout.
	for _, seg := range res.Meta.Segments {
		osts := fs.FileOSTs(seg.File)
		if osts == nil {
			t.Fatalf("segment %s has no explicit OST layout", seg.File)
		}
		for _, o := range osts {
			if o == 1 {
				t.Fatalf("segment %s placed on quarantined OST 1 (layout %v)", seg.File, osts)
			}
		}
	}

	// Placement must not change bytes: partitions match the reference.
	if len(res.Meta.Partitions) != len(ref.Meta.Partitions) {
		t.Fatalf("partition count %d != reference %d", len(res.Meta.Partitions), len(ref.Meta.Partitions))
	}
	for j := range res.Meta.Partitions {
		got, _, err := ReadPartition(fs, "parts.bin", res.Meta, j)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ReadPartition(refFS, "parts.bin", ref.Meta, j)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("partition %d: %d points, reference %d", j, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("partition %d point %d differs: %+v vs %+v", j, i, got[i], want[i])
			}
		}
	}
}
