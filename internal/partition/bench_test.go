package partition

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/grid"
)

func BenchmarkMakePlan(b *testing.B) {
	g := grid.New(eps)
	for _, n := range []int{10_000, 100_000} {
		h := g.HistogramOf(dataset.Twitter(n, 1))
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MakePlan(g, h, 64, 40, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSplit(b *testing.B) {
	g := grid.New(eps)
	pts := dataset.Twitter(100_000, 2)
	h := g.HistogramOf(pts)
	plan, err := MakePlan(g, h, 32, 40, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, reps := range []bool{false, true} {
		b.Run(fmt.Sprintf("shadowreps=%v", reps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Split(plan, pts, SplitOptions{ShadowReps: reps}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQuadCounts(b *testing.B) {
	g := grid.New(eps)
	pts := dataset.Twitter(100_000, 3)
	h := g.HistogramOf(pts)
	depth := map[grid.Coord]uint8{}
	cell, _ := h.MaxCell()
	depth[cell] = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuadCounts(g, pts, depth)
	}
}
