package partition

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/lustre"
	"repro/internal/mrnet"
)

func BenchmarkMakePlan(b *testing.B) {
	g := grid.New(eps)
	for _, n := range []int{10_000, 100_000} {
		h := g.HistogramOf(dataset.Twitter(n, 1))
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MakePlan(g, h, 64, 40, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSplit(b *testing.B) {
	g := grid.New(eps)
	pts := dataset.Twitter(100_000, 2)
	h := g.HistogramOf(pts)
	plan, err := MakePlan(g, h, 32, 40, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, reps := range []bool{false, true} {
		b.Run(fmt.Sprintf("shadowreps=%v", reps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Split(plan, pts, SplitOptions{ShadowReps: reps}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQuadCounts(b *testing.B) {
	g := grid.New(eps)
	pts := dataset.Twitter(100_000, 3)
	h := g.HistogramOf(pts)
	depth := map[grid.Coord]uint8{}
	cell, _ := h.MaxCell()
	depth[cell] = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuadCounts(g, pts, depth)
	}
}

// BenchmarkPartitionWrite isolates stage 3 — the write paths themselves,
// fed identical precomputed leaf contributions — so the legacy
// random-write layout and the log-structured aggregated layout compare
// head to head without stage 1/2 noise (§5.1.1: the small random writes
// are 65.2% of the phase).
func BenchmarkPartitionWrite(b *testing.B) {
	const leaves, parts = 8, 8
	pts := dataset.Twitter(100_000, 4)
	g := grid.New(eps)
	plan, err := MakePlan(g, g.HistogramOf(pts), parts, 40, true)
	if err != nil {
		b.Fatal(err)
	}
	contribs := make([]*leafContrib, leaves)
	allCounts := make([]leafCounts, leaves)
	total := int64(len(pts))
	for l := 0; l < leaves; l++ {
		lo := total * int64(l) / leaves
		hi := total * int64(l+1) / leaves
		split, err := Split(plan, pts[lo:hi], SplitOptions{})
		if err != nil {
			b.Fatal(err)
		}
		contribs[l] = &leafContrib{part: split.Partitions, shadow: split.Shadows}
		counts := make(leafCounts, parts)
		for j := 0; j < parts; j++ {
			counts[j] = [2]int64{int64(len(split.Partitions[j])), int64(len(split.Shadows[j]))}
		}
		allCounts[l] = counts
	}
	env := func(b *testing.B) (*mrnet.Network, *lustre.FS) {
		fs := lustre.New(lustre.Titan(), nil)
		net, err := mrnet.New(leaves, mrnet.DefaultFanout, mrnet.CostModel{}, fs.Clock())
		if err != nil {
			b.Fatal(err)
		}
		return net, fs
	}
	b.Run("layout=legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			net, fs := env(b)
			_, offsets := layoutRegions(eps, false, parts, allCounts)
			b.StartTimer()
			if err := writePartitionsLegacy(context.Background(), net, fs, "parts.bin", contribs, offsets, parts, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("layout=aggregated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			net, fs := env(b)
			meta, _ := layoutRegions(eps, false, parts, allCounts)
			places := buildSegmentLayout(meta, allCounts, "parts.bin", parts, 0)
			b.StartTimer()
			opt := DistOptions{NumPartitions: parts, Aggregate: true}
			if err := writePartitionsAggregated(context.Background(), net, fs, contribs, places, meta, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
