package partition

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
)

// MaxShadowReps is the per-cell cap of the representative-shadow
// optimization (§3.1.3): shadow cells are reduced to at most 8 points,
// selected like merge representatives.
const MaxShadowReps = 8

// SplitOptions tunes point distribution.
type SplitOptions struct {
	// ShadowReps enables the optional partitioner optimization that
	// writes at most MaxShadowReps representative points per shadow cell
	// instead of the full cell contents. It "drastically reduces the
	// amount of data written ... but may cause the merge algorithm to
	// occasionally miss the opportunity to combine clusters" (§3.1.3).
	ShadowReps bool
}

// SplitResult holds per-partition point sets.
type SplitResult struct {
	// Partitions[i] are the points in units owned by partition i.
	Partitions [][]geom.Point
	// Shadows[i] are the points of partition i's shadow region (possibly
	// reduced to representatives).
	Shadows [][]geom.Point
}

// Split distributes pts according to the plan. Every point lands in
// exactly one partition (its unit's owner) and in the shadow set of every
// partition whose shadow region covers its unit.
func Split(plan *Plan, pts []geom.Point, opt SplitOptions) (*SplitResult, error) {
	res := &SplitResult{
		Partitions: make([][]geom.Point, plan.NumPartitions()),
		Shadows:    make([][]geom.Point, plan.NumPartitions()),
	}
	shadowOf := plan.ShadowOf()
	// Group shadow contributions per (partition, unit) so the
	// representative reduction can operate region-wise. For whole-cell
	// units this is the paper's per-shadow-cell reduction; for quadrant
	// tiles of split cells the reduction applies per tile, which is what
	// keeps a tile leaf's shadow bounded even when its cell holds
	// millions of points.
	type shadowKey struct {
		part int
		unit Unit
	}
	shadowGroups := make(map[shadowKey][]geom.Point)
	for _, p := range pts {
		u := plan.hist.unitOfPoint(plan.Grid, p)
		owner, ok := plan.UnitOwner[u]
		if !ok {
			return nil, fmt.Errorf("partition: point %v in unit %v owned by no partition (stale plan?)", p, u)
		}
		res.Partitions[owner] = append(res.Partitions[owner], p)
		for _, sp := range shadowOf[u] {
			shadowGroups[shadowKey{sp, u}] = append(shadowGroups[shadowKey{sp, u}], p)
		}
	}
	// Deterministic order: units sorted per partition.
	keys := make([]shadowKey, 0, len(shadowGroups))
	for k := range shadowGroups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].part != keys[b].part {
			return keys[a].part < keys[b].part
		}
		return keys[a].unit.Less(keys[b].unit)
	})
	for _, k := range keys {
		unitPts := shadowGroups[k]
		if opt.ShadowReps {
			unitPts = ShadowRepsRect(k.unit.Rect(plan.Grid), unitPts)
		}
		res.Shadows[k.part] = append(res.Shadows[k.part], unitPts...)
	}
	return res, nil
}

// ShadowReps reduces a shadow cell's contents to at most MaxShadowReps
// points, selected against the cell's anchors.
func ShadowReps(g grid.Grid, cell grid.Coord, cellPts []geom.Point) []geom.Point {
	return ShadowRepsRect(g.CellRect(cell), cellPts)
}

// ShadowRepsRect reduces a shadow region's contents to at most
// MaxShadowReps points: the points nearest each of the region's 8
// anchors (corners and side midpoints), deduplicated, padded with the
// earliest remaining points to exactly min(len(pts), MaxShadowReps) so
// the result size is a deterministic function of the input size (the
// distributed partitioner computes file offsets from counts before
// writing).
func ShadowRepsRect(r geom.Rect, cellPts []geom.Point) []geom.Point {
	if len(cellPts) <= MaxShadowReps {
		return cellPts
	}
	chosen := make(map[int]bool, MaxShadowReps)
	mx := (r.MinX + r.MaxX) / 2
	my := (r.MinY + r.MaxY) / 2
	anchors := [8]geom.Point{
		{X: r.MinX, Y: r.MinY}, {X: r.MinX, Y: r.MaxY},
		{X: r.MaxX, Y: r.MinY}, {X: r.MaxX, Y: r.MaxY},
		{X: mx, Y: r.MinY}, {X: mx, Y: r.MaxY},
		{X: r.MinX, Y: my}, {X: r.MaxX, Y: my},
	}
	for _, a := range anchors {
		best, bestD := -1, math.Inf(1)
		for i, p := range cellPts {
			if chosen[i] {
				continue
			}
			if d := geom.Dist2(p, a); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			chosen[best] = true
		}
	}
	for i := 0; len(chosen) < MaxShadowReps && i < len(cellPts); i++ {
		chosen[i] = true
	}
	out := make([]geom.Point, 0, MaxShadowReps)
	for i, p := range cellPts {
		if chosen[i] {
			out = append(out, p)
		}
	}
	return out
}

// ShadowSize returns the exact number of shadow points partition i will
// receive under the given options — used by the distributed partitioner
// to compute file offsets before any data moves.
func ShadowSize(plan *Plan, i int, opt SplitOptions) int64 {
	s := plan.Specs[i]
	if !opt.ShadowReps {
		return s.ShadowCount
	}
	// Representative reduction caps each shadow *unit* at 8 points.
	var total int64
	for _, u := range s.Shadow {
		n := plan.hist.Counts[u]
		if n > MaxShadowReps {
			n = MaxShadowReps
		}
		total += n
	}
	return total
}
