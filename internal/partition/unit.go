package partition

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Unit is one atom of partition ownership: a whole Eps×Eps grid cell
// (Depth 0), or one of the 4^Depth uniform sub-cells of a cell that the
// planner subdivided.
//
// Subdivision implements the paper's §5.1.2 suggestion — at 6.5 billion
// points the slowest cluster process executes "a partition made up of a
// single dense grid cell" which "cannot be subdivided further ... or we
// need to subdivide grid cells when they have extremely high density."
// Splitting a hot cell into uniform quadrant tiles lets several leaves
// share it.
//
// Correctness survives subdivision: a sub-cell's points still have their
// complete Eps-neighborhoods inside the owning cell plus its 8 neighbors
// (the sub-cell is contained in the cell), so a partition's shadow region
// is every unit of those cells it does not own. The merge phase is
// unchanged — summaries stay keyed by whole Eps cells, and because every
// leaf that owns any unit of a cell also shadows the entire 3×3 cell
// neighborhood, its core/non-core classification of its own points
// remains exact.
type Unit struct {
	Cell  grid.Coord
	Depth uint8
	// Path encodes Depth quadrant choices, two bits per level,
	// most-significant level first: bit0 = east half, bit1 = north half.
	Path uint16
}

// MaxSplitDepth bounds subdivision: 4 levels = 256 tiles per cell, tile
// side Eps/16.
const MaxSplitDepth = 4

// CellUnit returns the whole-cell unit of c.
func CellUnit(c grid.Coord) Unit { return Unit{Cell: c} }

// String renders the unit for logs.
func (u Unit) String() string {
	if u.Depth == 0 {
		return u.Cell.String()
	}
	return fmt.Sprintf("%v/d%d-%03x", u.Cell, u.Depth, u.Path)
}

// Less orders units in the partitioner's iteration order: cells in grid
// iteration order; within a split cell, quadrant tiles by path.
func (u Unit) Less(o Unit) bool {
	if u.Cell != o.Cell {
		return u.Cell.Less(o.Cell)
	}
	if u.Depth != o.Depth {
		return u.Depth < o.Depth
	}
	return u.Path < o.Path
}

// Rect returns the region covered by the unit.
func (u Unit) Rect(g grid.Grid) geom.Rect {
	r := g.CellRect(u.Cell)
	for level := int(u.Depth) - 1; level >= 0; level-- {
		q := (u.Path >> (2 * level)) & 3
		mx := (r.MinX + r.MaxX) / 2
		my := (r.MinY + r.MaxY) / 2
		if q&1 != 0 {
			r.MinX = mx
		} else {
			r.MaxX = mx
		}
		if q&2 != 0 {
			r.MinY = my
		} else {
			r.MaxY = my
		}
	}
	return r
}

// UnitOf returns the depth-level unit containing p.
func UnitOf(g grid.Grid, p geom.Point, depth uint8) Unit {
	c := g.CellOf(p)
	u := Unit{Cell: c, Depth: depth}
	if depth == 0 {
		return u
	}
	r := g.CellRect(c)
	var path uint16
	for level := 0; level < int(depth); level++ {
		mx := (r.MinX + r.MaxX) / 2
		my := (r.MinY + r.MaxY) / 2
		var q uint16
		if p.X >= mx {
			q |= 1
			r.MinX = mx
		} else {
			r.MaxX = mx
		}
		if p.Y >= my {
			q |= 2
			r.MinY = my
		} else {
			r.MaxY = my
		}
		path = path<<2 | q
	}
	u.Path = path
	return u
}

// DepthFor picks the subdivision depth that brings an evenly-spread hot
// cell of count points under threshold points per tile, capped at
// MaxSplitDepth. Returns 0 when no split is needed.
func DepthFor(count, threshold int64) uint8 {
	if threshold <= 0 || count <= threshold {
		return 0
	}
	depth := uint8(0)
	for count > threshold && depth < MaxSplitDepth {
		count = (count + 3) / 4
		depth++
	}
	return depth
}

// UnitHistogram counts points per unit under a per-cell depth assignment.
type UnitHistogram struct {
	Counts map[Unit]int64
	// Depth[c] is the subdivision depth of cell c (absent = 0).
	Depth map[grid.Coord]uint8
}

// NewUnitHistogram returns an empty unit histogram.
func NewUnitHistogram() *UnitHistogram {
	return &UnitHistogram{Counts: make(map[Unit]int64), Depth: make(map[grid.Coord]uint8)}
}

// FromCellHistogram lifts a plain cell histogram to depth-0 units.
func FromCellHistogram(h *grid.Histogram) *UnitHistogram {
	uh := NewUnitHistogram()
	for c, n := range h.Counts {
		if n != 0 {
			uh.Counts[CellUnit(c)] = n
		}
	}
	return uh
}

// QuadCounts tallies pts into units for the given per-cell depths (cells
// absent from depth get depth 0). This is what partitioner leaves compute
// for the hot cells the root announces.
func QuadCounts(g grid.Grid, pts []geom.Point, depth map[grid.Coord]uint8) map[Unit]int64 {
	out := make(map[Unit]int64)
	for _, p := range pts {
		c := g.CellOf(p)
		out[UnitOf(g, p, depth[c])]++
	}
	return out
}

// Total returns the total point count.
func (uh *UnitHistogram) Total() int64 {
	var t int64
	for _, n := range uh.Counts {
		t += n
	}
	return t
}

// unitOfPoint maps a point to its owning-granularity unit under uh.Depth.
func (uh *UnitHistogram) unitOfPoint(g grid.Grid, p geom.Point) Unit {
	c := g.CellOf(p)
	return UnitOf(g, p, uh.Depth[c])
}

// cellUnits returns all units of cell c present in the histogram.
func (uh *UnitHistogram) cellUnits(c grid.Coord) []Unit {
	d := uh.Depth[c]
	if d == 0 {
		if n := uh.Counts[CellUnit(c)]; n > 0 {
			return []Unit{CellUnit(c)}
		}
		return nil
	}
	var out []Unit
	tiles := 1 << (2 * d)
	for path := 0; path < tiles; path++ {
		u := Unit{Cell: c, Depth: d, Path: uint16(path)}
		if uh.Counts[u] > 0 {
			out = append(out, u)
		}
	}
	return out
}
