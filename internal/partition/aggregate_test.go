package partition

import (
	"bytes"
	"context"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/lustre"
	"repro/internal/mrnet"
	"repro/internal/ptio"
)

// rawFile stores raw bytes as a file on the simulated file system.
func rawFile(t *testing.T, fs *lustre.FS, name string, data []byte) {
	t.Helper()
	h := fs.Create(name)
	if len(data) > 0 {
		if _, err := h.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
	}
}

// datasetBytes renders pts as a complete MRSC file in memory.
func datasetBytes(t *testing.T, pts []geom.Point, hasWeight bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ptio.WriteDataset(&buf, pts, hasWeight); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func smallOpts() DistOptions {
	return DistOptions{NumPartitions: 2, MinPts: 1}
}

// distributeBoth runs the named input through both partitioners and
// asserts each rejects it with an error containing want.
func distributeBoth(t *testing.T, fs *lustre.FS, net *mrnet.Network, input, want string, opt DistOptions) {
	t.Helper()
	if _, err := Distribute(context.Background(), net, fs, eps, input, "parts.bin", "parts.json", opt); err == nil {
		t.Errorf("%s: Distribute accepted, want error containing %q", input, want)
	} else if !strings.Contains(err.Error(), want) {
		t.Errorf("%s: Distribute error %q does not contain %q", input, err, want)
	}
	if _, err := DistributeDirect(context.Background(), net, fs, eps, input, opt); err == nil {
		t.Errorf("%s: DistributeDirect accepted, want error containing %q", input, want)
	} else if !strings.Contains(err.Error(), want) {
		t.Errorf("%s: DistributeDirect error %q does not contain %q", input, err, want)
	}
}

// Regression: the old guard `total < 0` could never fire (truncated
// division of a 0–15-byte size yields 0, not negative), so sub-header
// files fell through and read garbage. They must be rejected loudly.
func TestDistributeRejectsShortInput(t *testing.T) {
	net, fs := distEnv(t, 2)
	rawFile(t, fs, "empty.mrsc", nil)
	rawFile(t, fs, "one.mrsc", []byte{'M'})
	rawFile(t, fs, "fifteen.mrsc", datasetBytes(t, nil, false)[:15])
	for _, name := range []string{"empty.mrsc", "one.mrsc", "fifteen.mrsc"} {
		distributeBoth(t, fs, net, name, "too short", smallOpts())
	}
}

// Regression: a file whose payload is not a whole number of records used
// to have its trailing bytes silently dropped by the shard arithmetic.
func TestDistributeRejectsTornTail(t *testing.T) {
	net, fs := distEnv(t, 2)
	full := datasetBytes(t, dataset.Twitter(50, 2), false)
	rawFile(t, fs, "torn.mrsc", full[:len(full)-7])
	distributeBoth(t, fs, net, "torn.mrsc", "is torn", smallOpts())
}

// A payload that is whole records but disagrees with the header's
// declared count is also corrupt — truncation at a record boundary.
func TestDistributeRejectsCountMismatch(t *testing.T) {
	net, fs := distEnv(t, 2)
	full := datasetBytes(t, dataset.Twitter(50, 2), false)
	rawFile(t, fs, "truncated.mrsc", full[:len(full)-ptio.RecordSize(false)])
	distributeBoth(t, fs, net, "truncated.mrsc", "header declares", smallOpts())
}

// Regression: opt.HasWeight used to be trusted over the header's
// FlagWeight bit, misparsing every record when they disagreed (24-byte
// records read on 32-byte strides and vice versa).
func TestDistributeRejectsWeightMismatch(t *testing.T) {
	net, fs := distEnv(t, 2)
	pts := dataset.Twitter(50, 2)
	writeInput(t, fs, "weighted.mrsc", pts, true)
	writeInput(t, fs, "plain.mrsc", pts, false)

	opt := smallOpts()
	distributeBoth(t, fs, net, "weighted.mrsc", "refusing to misparse", opt)
	opt.HasWeight = true
	distributeBoth(t, fs, net, "plain.mrsc", "refusing to misparse", opt)
}

// aggEnv runs Distribute over the same input on a fresh environment,
// with or without write aggregation, and returns the result plus its FS.
func aggEnv(t *testing.T, pts []geom.Point, leaves int, opt DistOptions) (*DistResult, *lustre.FS) {
	t.Helper()
	net, fs := distEnv(t, leaves)
	writeInput(t, fs, "in.mrsc", pts, opt.HasWeight)
	res, err := Distribute(context.Background(), net, fs, eps, "in.mrsc", "parts.bin", "parts.json", opt)
	if err != nil {
		t.Fatal(err)
	}
	return res, fs
}

// TestAggregatedMatchesLegacyByteIdentical: ReadPartition over the
// log-structured layout must return exactly the slices the legacy layout
// returns — same points, same order — for every partition. The metadata
// must survive its JSON round trip with the segment index intact.
func TestAggregatedMatchesLegacyByteIdentical(t *testing.T) {
	pts := dataset.Twitter(12000, 3)
	opt := DistOptions{NumPartitions: 8, MinPts: 4, Rebalance: true}
	legacy, legacyFS := aggEnv(t, pts, 4, opt)

	opt.Aggregate = true
	agg, aggFS := aggEnv(t, pts, 4, opt)

	if len(agg.Meta.Segments) == 0 {
		t.Fatal("aggregated run produced no segment index")
	}
	if len(legacy.Meta.Segments) != 0 {
		t.Fatal("legacy run produced a segment index")
	}
	// The JSON round trip is what a resume actually reads.
	aggMeta, err := ReadMeta(aggFS, "parts.json")
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < opt.NumPartitions; j++ {
		if e := aggMeta.Partitions[j]; e.Offset != -1 || e.ShadowOffset != -1 {
			t.Errorf("partition %d: aggregated entry offsets = (%d, %d), want -1 poison values",
				j, e.Offset, e.ShadowOffset)
		}
		wantOwned, wantShadow, err := ReadPartition(legacyFS, "parts.bin", legacy.Meta, j)
		if err != nil {
			t.Fatal(err)
		}
		gotOwned, gotShadow, err := ReadPartition(aggFS, "parts.bin", aggMeta, j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotOwned, wantOwned) {
			t.Errorf("partition %d: owned points differ between layouts", j)
		}
		if !reflect.DeepEqual(gotShadow, wantShadow) {
			t.Errorf("partition %d: shadow points differ between layouts", j)
		}
	}
}

// TestSegmentRunsTileShards is the layout safety property: within every
// segment shard the indexed runs are disjoint — in fact they tile the
// file exactly, no overlaps and no gaps from offset 0 to the file's end.
func TestSegmentRunsTileShards(t *testing.T) {
	opt := DistOptions{NumPartitions: 8, MinPts: 4, Aggregate: true, SegmentShards: 3}
	res, fs := aggEnv(t, dataset.Twitter(9000, 11), 5, opt)

	if got := len(res.Meta.Segments); got != 3 {
		t.Fatalf("%d segment shards, want the 3 requested", got)
	}
	rs := int64(ptio.RecordSize(res.Meta.HasWeight))
	var indexed int64
	for _, seg := range res.Meta.Segments {
		runs := append([]ptio.SegmentRun(nil), seg.Runs...)
		sort.Slice(runs, func(a, b int) bool { return runs[a].Offset < runs[b].Offset })
		var cursor int64
		for _, r := range runs {
			if r.Count <= 0 {
				t.Fatalf("%s: empty run indexed: %+v", seg.File, r)
			}
			if r.Offset != cursor {
				t.Fatalf("%s: run at offset %d, want %d (runs must tile without gaps or overlaps)",
					seg.File, r.Offset, cursor)
			}
			cursor += r.Count * rs
			indexed += r.Count
		}
		h, err := fs.Open(seg.File)
		if err != nil {
			t.Fatal(err)
		}
		if h.Size() != cursor {
			t.Fatalf("%s: runs cover %d bytes, file holds %d", seg.File, cursor, h.Size())
		}
	}
	var want int64
	for _, e := range res.Meta.Partitions {
		want += e.Count + e.ShadowCount
	}
	if indexed != want {
		t.Fatalf("segment index holds %d records, partition entries say %d", indexed, want)
	}
}

// TestAggregateCutsWriteCost is the tentpole's acceptance criterion: at 8
// partitioner leaves the aggregated writer must cut the write stage's
// simulated Lustre cost by at least 30%, and the write-seek count by far
// more (O(leaves×partitions) random writes → O(leaves) sequential runs).
func TestAggregateCutsWriteCost(t *testing.T) {
	pts := dataset.Twitter(20000, 5)
	opt := DistOptions{NumPartitions: 8, MinPts: 4}
	legacy, legacyFS := aggEnv(t, pts, 8, opt)

	opt.Aggregate = true
	agg, aggFS := aggEnv(t, pts, 8, opt)

	if legacy.WriteSim <= 0 || agg.WriteSim <= 0 {
		t.Fatalf("write sims must be positive: legacy=%v aggregated=%v", legacy.WriteSim, agg.WriteSim)
	}
	if agg.WriteSim > legacy.WriteSim*7/10 {
		t.Errorf("aggregated WriteSim %v is not ≤ 70%% of legacy %v", agg.WriteSim, legacy.WriteSim)
	}
	ls, as := legacyFS.Stats().WriteSeeks, aggFS.Stats().WriteSeeks
	if as >= ls/4 {
		t.Errorf("aggregated write seeks = %d, legacy = %d; want far fewer", as, ls)
	}
}

// TestCompactEquivalence: compacting the segmented layout into the
// legacy contiguous layout must preserve every partition exactly.
func TestCompactEquivalence(t *testing.T) {
	opt := DistOptions{NumPartitions: 6, MinPts: 4, Aggregate: true}
	res, fs := aggEnv(t, dataset.Twitter(8000, 17), 4, opt)

	cmeta, err := Compact(fs, res.Meta, "parts-compact.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmeta.Segments) != 0 {
		t.Fatal("compacted metadata still carries a segment index")
	}
	for j := 0; j < opt.NumPartitions; j++ {
		wantOwned, wantShadow, err := ReadPartition(fs, "parts.bin", res.Meta, j)
		if err != nil {
			t.Fatal(err)
		}
		gotOwned, gotShadow, err := ReadPartition(fs, "parts-compact.bin", cmeta, j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotOwned, wantOwned) {
			t.Errorf("partition %d: owned points differ after compaction", j)
		}
		if !reflect.DeepEqual(gotShadow, wantShadow) {
			t.Errorf("partition %d: shadow points differ after compaction", j)
		}
	}
	// Compacting a legacy layout is a caller error.
	if _, err := Compact(fs, cmeta, "again.bin"); err == nil {
		t.Error("Compact accepted a layout with no segment index")
	}
}

// TestDurabilityCallbacks: OnLayout fires once before any data lands;
// OnPartitionDurable fires exactly once per partition, and by the time it
// does, that partition is fully readable through the segment index.
func TestDurabilityCallbacks(t *testing.T) {
	const parts = 6
	net, fs := distEnv(t, 4)
	writeInput(t, fs, "in.mrsc", dataset.Twitter(8000, 23), false)

	var mu sync.Mutex
	var layoutMeta *ptio.PartitionMeta
	durableCount := make(map[int]int)
	opt := DistOptions{
		NumPartitions: parts,
		MinPts:        4,
		Aggregate:     true,
		OnLayout: func(m *ptio.PartitionMeta) {
			mu.Lock()
			defer mu.Unlock()
			if layoutMeta != nil {
				t.Error("OnLayout fired twice")
			}
			if len(durableCount) != 0 {
				t.Error("OnPartitionDurable fired before OnLayout")
			}
			layoutMeta = m
		},
	}
	opt.OnPartitionDurable = func(j int) {
		mu.Lock()
		meta := layoutMeta
		durableCount[j]++
		mu.Unlock()
		if meta == nil {
			t.Errorf("partition %d durable before the layout was announced", j)
			return
		}
		owned, shadow, err := ReadPartition(fs, "parts.bin", meta, j)
		if err != nil {
			t.Errorf("partition %d unreadable at durability signal: %v", j, err)
			return
		}
		e := meta.Partitions[j]
		if int64(len(owned)) != e.Count || int64(len(shadow)) != e.ShadowCount {
			t.Errorf("partition %d at durability signal: %d+%d points, metadata says %d+%d",
				j, len(owned), len(shadow), e.Count, e.ShadowCount)
		}
	}
	res, err := Distribute(context.Background(), net, fs, eps, "in.mrsc", "parts.bin", "parts.json", opt)
	if err != nil {
		t.Fatal(err)
	}
	if layoutMeta != res.Meta {
		t.Error("OnLayout delivered a different metadata object than the result carries")
	}
	for j := 0; j < parts; j++ {
		if durableCount[j] != 1 {
			t.Errorf("partition %d signalled durable %d times, want exactly once", j, durableCount[j])
		}
	}
}

// TestDirectSimParity: DistributeDirect must report both stage sims —
// the read stage charges Lustre traffic, and the transfer stage charges
// the overlay bytes that replace the file path's writes (§6).
func TestDirectSimParity(t *testing.T) {
	fs := lustre.New(lustre.Titan(), nil)
	net, err := mrnet.New(4, mrnet.DefaultFanout, mrnet.TitanCosts(), fs.Clock())
	if err != nil {
		t.Fatal(err)
	}
	writeInput(t, fs, "in.mrsc", dataset.Twitter(8000, 29), false)
	res, err := DistributeDirect(context.Background(), net, fs, eps, "in.mrsc", DistOptions{
		NumPartitions: 4, MinPts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadSim <= 0 {
		t.Errorf("ReadSim = %v, want positive (shards are read from Lustre)", res.ReadSim)
	}
	if res.WriteSim <= 0 {
		t.Errorf("WriteSim = %v, want positive (overlay transfer replaces the write stage)", res.WriteSim)
	}
}
