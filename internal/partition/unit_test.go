package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/grid"
)

func TestCellUnit(t *testing.T) {
	c := grid.Coord{CX: 3, CY: -2}
	u := CellUnit(c)
	if u.Cell != c || u.Depth != 0 || u.Path != 0 {
		t.Errorf("CellUnit = %+v", u)
	}
	g := grid.New(0.1)
	if u.Rect(g) != g.CellRect(c) {
		t.Errorf("depth-0 unit rect must equal the cell rect")
	}
}

func TestUnitOfQuadrants(t *testing.T) {
	g := grid.New(1)
	// Cell (0,0) covers [0,1)². Depth-1 quadrants: path bit0 = east,
	// bit1 = north.
	tests := []struct {
		p    geom.Point
		path uint16
	}{
		{geom.Point{X: 0.25, Y: 0.25}, 0}, // SW
		{geom.Point{X: 0.75, Y: 0.25}, 1}, // SE
		{geom.Point{X: 0.25, Y: 0.75}, 2}, // NW
		{geom.Point{X: 0.75, Y: 0.75}, 3}, // NE
	}
	for _, tt := range tests {
		u := UnitOf(g, tt.p, 1)
		if u.Path != tt.path || u.Depth != 1 {
			t.Errorf("UnitOf(%v, 1) = %+v, want path %d", tt.p, u, tt.path)
		}
		if !u.Rect(g).Contains(tt.p) {
			t.Errorf("unit rect %+v does not contain %v", u.Rect(g), tt.p)
		}
	}
}

func TestUnitRectContainsPointProperty(t *testing.T) {
	g := grid.New(0.1)
	f := func(xRaw, yRaw int32, depthRaw uint8) bool {
		p := geom.Point{X: float64(xRaw%10000) / 100, Y: float64(yRaw%10000) / 100}
		depth := depthRaw % (MaxSplitDepth + 1)
		u := UnitOf(g, p, depth)
		if u.Depth != depth || u.Cell != g.CellOf(p) {
			return false
		}
		r := u.Rect(g)
		// Closed-open semantics with float slack at the high edges.
		return p.X >= r.MinX-1e-9 && p.X <= r.MaxX+1e-9 &&
			p.Y >= r.MinY-1e-9 && p.Y <= r.MaxY+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnitRectHalvesPerDepth(t *testing.T) {
	g := grid.New(0.1)
	p := geom.Point{X: 0.512345, Y: 0.598765}
	for depth := uint8(0); depth <= MaxSplitDepth; depth++ {
		r := UnitOf(g, p, depth).Rect(g)
		want := 0.1 / float64(int(1)<<depth)
		if diff := r.Width() - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("depth %d width = %v, want %v", depth, r.Width(), want)
		}
	}
}

func TestDepthFor(t *testing.T) {
	tests := []struct {
		count, threshold int64
		want             uint8
	}{
		{100, 0, 0},                   // disabled
		{100, 100, 0},                 // at threshold
		{101, 100, 1},                 // one split suffices (ceil(101/4) = 26)
		{1600, 100, 2},                // 1600 -> 400 -> 100
		{1 << 40, 100, MaxSplitDepth}, // capped
	}
	for _, tt := range tests {
		if got := DepthFor(tt.count, tt.threshold); got != tt.want {
			t.Errorf("DepthFor(%d,%d) = %d, want %d", tt.count, tt.threshold, got, tt.want)
		}
	}
}

func TestQuadCountsPreserveTotals(t *testing.T) {
	g := grid.New(0.1)
	pts := dataset.Twitter(5000, 1)
	h := g.HistogramOf(pts)
	// Split the two densest cells.
	depth := map[grid.Coord]uint8{}
	cells := h.Cells()
	for i := 0; i < 2 && i < len(cells); i++ {
		depth[cells[i]] = 2
	}
	counts := QuadCounts(g, pts, depth)
	var total int64
	for u, n := range counts {
		total += n
		if want, split := depth[u.Cell]; split {
			if u.Depth != want {
				t.Errorf("unit %v in split cell has depth %d, want %d", u, u.Depth, want)
			}
		} else if u.Depth != 0 {
			t.Errorf("unit %v in unsplit cell has depth %d", u, u.Depth)
		}
	}
	if total != int64(len(pts)) {
		t.Errorf("quad counts total %d, want %d", total, len(pts))
	}
}

func TestUnitLessOrdering(t *testing.T) {
	a := Unit{Cell: grid.Coord{CX: 0, CY: 0}}
	b := Unit{Cell: grid.Coord{CX: 0, CY: 0}, Depth: 2, Path: 1}
	c := Unit{Cell: grid.Coord{CX: 0, CY: 0}, Depth: 2, Path: 9}
	d := Unit{Cell: grid.Coord{CX: 0, CY: 1}}
	for _, pair := range [][2]Unit{{a, b}, {b, c}, {c, d}} {
		if !pair[0].Less(pair[1]) || pair[1].Less(pair[0]) {
			t.Errorf("ordering violated for %v < %v", pair[0], pair[1])
		}
	}
}

// hotDataset concentrates most points in one Eps cell — the §5.1.2
// pathology where the densest cell dominates a whole leaf.
func hotDataset(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		if i < n*3/4 {
			// Inside cell (0,0) of a 0.1 grid.
			pts[i] = geom.Point{ID: uint64(i), X: rng.Float64() * 0.1, Y: rng.Float64() * 0.1}
		} else {
			pts[i] = geom.Point{ID: uint64(i), X: rng.Float64()*5 - 2.5, Y: rng.Float64()*5 - 2.5}
		}
	}
	return pts
}

func TestHotCellSplitPlan(t *testing.T) {
	g := grid.New(0.1)
	pts := hotDataset(8000, 2)
	h := g.HistogramOf(pts)
	_, maxCell := h.MaxCell()
	if maxCell < 5000 {
		t.Fatalf("hot dataset max cell = %d; test needs a dominant cell", maxCell)
	}

	// Without splitting: one partition is stuck with the whole hot cell.
	flat, err := MakePlan(g, h, 8, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if flat.MaxOwned() < maxCell {
		t.Fatalf("unsplit plan max owned %d < hot cell %d", flat.MaxOwned(), maxCell)
	}

	// With splitting: the hot cell shatters into tiles and spreads.
	uh := &UnitHistogram{
		Counts: QuadCounts(g, pts, map[grid.Coord]uint8{{CX: 0, CY: 0}: DepthFor(maxCell, 500)}),
		Depth:  map[grid.Coord]uint8{{CX: 0, CY: 0}: DepthFor(maxCell, 500)},
	}
	split, err := MakePlanUnits(g, uh, PlanOptions{NumPartitions: 8, MinPts: 4, Rebalance: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	if split.SplitCells() != 1 {
		t.Errorf("SplitCells = %d, want 1", split.SplitCells())
	}
	if split.MaxOwned() >= flat.MaxOwned() {
		t.Errorf("splitting must reduce the max owned partition: %d vs %d",
			split.MaxOwned(), flat.MaxOwned())
	}
	// Point coverage through Split.
	sr, err := Split(split, pts, SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for _, part := range sr.Partitions {
		for _, p := range part {
			seen[p.ID]++
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("split covers %d points, want %d", len(seen), len(pts))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("point %d owned %d times", id, n)
		}
	}
}

// TestHotCellShadowCompleteness: the §3.1.1 invariant must survive
// subdivision — every neighbor of an owned point is in the partition or
// its shadow.
func TestHotCellShadowCompleteness(t *testing.T) {
	g := grid.New(0.1)
	pts := hotDataset(3000, 3)
	depth := map[grid.Coord]uint8{{CX: 0, CY: 0}: 2}
	uh := &UnitHistogram{Counts: QuadCounts(g, pts, depth), Depth: depth}
	plan, err := MakePlanUnits(g, uh, PlanOptions{NumPartitions: 6, MinPts: 4, Rebalance: true})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Split(plan, pts, SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Visibility sets per partition: owned + shadow point IDs.
	visible := make([]map[uint64]bool, plan.NumPartitions())
	ownerOf := map[uint64]int{}
	for i := range plan.Specs {
		visible[i] = map[uint64]bool{}
		for _, p := range sr.Partitions[i] {
			visible[i][p.ID] = true
			ownerOf[p.ID] = i
		}
		for _, p := range sr.Shadows[i] {
			visible[i][p.ID] = true
		}
	}
	eps2 := eps * eps
	for a := 0; a < len(pts); a += 5 {
		owner := ownerOf[pts[a].ID]
		for b := range pts {
			if a == b || geom.Dist2(pts[a], pts[b]) > eps2 {
				continue
			}
			if !visible[owner][pts[b].ID] {
				t.Fatalf("point %d (partition %d) has neighbor %d outside partition+shadow",
					a, owner, b)
			}
		}
	}
}
