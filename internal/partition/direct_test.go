package partition

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/lustre"
	"repro/internal/mrnet"
)

func TestDistributeDirectMatchesFileBased(t *testing.T) {
	pts := dataset.Twitter(12000, 1)
	for i := range pts {
		pts[i].Weight = 0
	}
	opt := DistOptions{NumPartitions: 8, MinPts: 4, Rebalance: true}

	netA, fsA := distEnv(t, 4)
	writeInput(t, fsA, "in.mrsc", pts, false)
	file, err := Distribute(context.Background(), netA, fsA, eps, "in.mrsc", "parts.bin", "parts.json", opt)
	if err != nil {
		t.Fatal(err)
	}
	netB, fsB := distEnv(t, 4)
	writeInput(t, fsB, "in.mrsc", pts, false)
	direct, err := DistributeDirect(context.Background(), netB, fsB, eps, "in.mrsc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if direct.TransferredPoints != file.WrittenPoints {
		t.Errorf("direct transferred %d points, file-based wrote %d",
			direct.TransferredPoints, file.WrittenPoints)
	}
	meta, err := ReadMeta(fsA, "parts.json")
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < opt.NumPartitions; j++ {
		wantPart, wantShadow, err := ReadPartition(fsA, "parts.bin", meta, j)
		if err != nil {
			t.Fatal(err)
		}
		compareIDSets(t, "direct partition", j, direct.Partitions[j], wantPart)
		compareIDSets(t, "direct shadow", j, direct.Shadows[j], wantShadow)
	}
}

func TestDistributeDirectSkipsPartitionWrites(t *testing.T) {
	pts := dataset.Twitter(10000, 2)
	net, fs := distEnv(t, 4)
	writeInput(t, fs, "in.mrsc", pts, false)
	before := fs.Stats()
	if _, err := DistributeDirect(context.Background(), net, fs, eps, "in.mrsc", DistOptions{
		NumPartitions: 16, MinPts: 4, Rebalance: true,
	}); err != nil {
		t.Fatal(err)
	}
	after := fs.Stats()
	if after.WriteOps != before.WriteOps {
		t.Errorf("direct transfer performed %d file writes; expected none",
			after.WriteOps-before.WriteOps)
	}
	// The point data must appear as overlay traffic instead.
	if bytes := net.Stats().Bytes; bytes < int64(len(pts))*24 {
		t.Errorf("overlay carried %d bytes; expected at least the point data (%d)",
			bytes, len(pts)*24)
	}
}

func TestDistributeDirectValidation(t *testing.T) {
	fs := lustre.New(lustre.Titan(), nil)
	net, err := mrnet.New(2, 256, mrnet.CostModel{}, fs.Clock())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DistributeDirect(context.Background(), net, fs, eps, "missing", DistOptions{NumPartitions: 2, MinPts: 4}); err == nil {
		t.Error("missing input must fail")
	}
	writeInput(t, fs, "in.mrsc", dataset.Twitter(100, 3), false)
	if _, err := DistributeDirect(context.Background(), net, fs, eps, "in.mrsc", DistOptions{NumPartitions: 0, MinPts: 4}); err == nil {
		t.Error("zero partitions must fail")
	}
	if _, err := DistributeDirect(context.Background(), net, fs, eps, "in.mrsc", DistOptions{NumPartitions: 2, MinPts: 0}); err == nil {
		t.Error("zero MinPts must fail")
	}
}
