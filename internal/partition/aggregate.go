package partition

// Log-structured write aggregation for the partition phase (§5.1.1).
//
// The legacy stage 3 has every partitioner leaf write one small run at a
// specific offset of nearly every partition region — O(leaves×partitions)
// random writes, which the paper measures at 65.2% of the partition
// phase. The aggregated writer inverts the layout: each leaf appends its
// *entire* contribution (every partition's owned and shadow runs, in
// partition order) as one contiguous region of a segment file, and the
// metadata carries an index of runs. Writes become O(leaves) sequential
// appends; the seek penalty that dominated the phase is paid once per
// leaf instead of twice per (leaf, partition) pair. Segment files are
// sharded (leaf l → shard l mod S) so concurrent leaves append to
// different files instead of contending on one.
//
// Readers reassemble a partition from its runs in leaf order — the same
// concatenation order the legacy layout stores — so both layouts yield
// byte-identical partitions. Compact rewrites the segments into the
// legacy contiguous layout with one sequential pass per segment for
// consumers that will re-read partitions many times.

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/lustre"
	"repro/internal/mrnet"
	"repro/internal/ptio"
)

// segPlace tells one leaf where its region lives: segment shard index and
// the byte offset its sequential run starts at.
type segPlace struct {
	Seg  int
	Base int64
}

// segmentName derives a shard file's name from the partition output file.
func segmentName(outputFile string, s int) string {
	return fmt.Sprintf("%s.seg%d", outputFile, s)
}

// segmentShardCount resolves the shard count: the requested value,
// defaulting to 8, never more than the number of leaves (an empty shard
// is pointless).
func segmentShardCount(leaves, requested int) int {
	s := requested
	if s <= 0 {
		s = 8
	}
	if s > leaves {
		s = leaves
	}
	return s
}

// buildSegmentLayout assigns each leaf a contiguous region of a segment
// shard — regions stacked in leaf order within each shard — and records
// every non-empty run in meta.Segments (offset-ascending per shard). The
// legacy per-entry offsets do not apply to this layout, so they are set
// to -1: a reader that ignores the segment index fails fast instead of
// returning the wrong bytes.
func buildSegmentLayout(meta *ptio.PartitionMeta, allCounts []leafCounts, outputFile string, numPartitions, shards int) []segPlace {
	rs := int64(ptio.RecordSize(meta.HasWeight))
	s := segmentShardCount(len(allCounts), shards)
	meta.Segments = make([]ptio.Segment, s)
	for i := range meta.Segments {
		meta.Segments[i].File = segmentName(outputFile, i)
	}
	cursor := make([]int64, s)
	places := make([]segPlace, len(allCounts))
	for l, lc := range allCounts {
		shard := l % s
		places[l] = segPlace{Seg: shard, Base: cursor[shard]}
		off := cursor[shard]
		for j := 0; j < numPartitions; j++ {
			if n := lc[j][0]; n > 0 {
				meta.Segments[shard].Runs = append(meta.Segments[shard].Runs, ptio.SegmentRun{
					Leaf: l, Partition: j, Offset: off, Count: n,
				})
				off += n * rs
			}
			if n := lc[j][1]; n > 0 {
				meta.Segments[shard].Runs = append(meta.Segments[shard].Runs, ptio.SegmentRun{
					Leaf: l, Partition: j, Shadow: true, Offset: off, Count: n,
				})
				off += n * rs
			}
		}
		cursor[shard] = off
	}
	for j := range meta.Partitions {
		meta.Partitions[j].Offset = -1
		meta.Partitions[j].ShadowOffset = -1
	}
	return places
}

// writePartitionsAggregated is stage 3's log-structured write path. The
// root creates (truncating — phase retries restart the log) the segment
// shards, then every leaf appends its region sequentially. Without a
// durability callback the leaf's whole contribution is a single WriteAt;
// with one, the leaf writes per-partition chunks (still sequential on its
// handle) and the last leaf to finish a partition syncs the segments and
// signals it — the hook the pipelined cluster phase hangs off.
func writePartitionsAggregated(ctx context.Context, net *mrnet.Network, fs *lustre.FS, contribs []*leafContrib, places []segPlace, meta *ptio.PartitionMeta, opt DistOptions) error {
	hasWeight := meta.HasWeight
	segNames := make([]string, len(meta.Segments))
	// OST-aware placement: with OST health tracking enabled, each shard
	// stripes only over currently healthy OSTs, rotated per shard so the
	// shards spread the load. Without tracking (nil HealthyOSTs) the
	// legacy all-OST layout — and its simulated costs — are unchanged.
	healthy := fs.HealthyOSTs()
	for i, seg := range meta.Segments {
		segNames[i] = seg.File
		if len(healthy) > 0 {
			osts := make([]int, len(healthy))
			for j := range healthy {
				osts[j] = healthy[(i+j)%len(healthy)]
			}
			fs.CreateWithOSTs(seg.File, osts)
		} else {
			fs.Create(seg.File)
		}
	}
	// Redelivery guard: overlay crash recovery may re-run deliver at a
	// leaf; the claim makes the write and the countdown once-per-leaf so
	// OnPartitionDurable cannot double-fire.
	claimed := make([]atomic.Bool, len(places))
	remaining := make([]atomic.Int64, opt.NumPartitions)
	for j := range remaining {
		remaining[j].Store(int64(len(places)))
	}
	durable := func(j int) error {
		for _, name := range segNames {
			if err := fs.Sync(name); err != nil {
				return fmt.Errorf("partition: syncing %s: %w", name, err)
			}
		}
		if err := fs.SyncDir("."); err != nil {
			return fmt.Errorf("partition: syncing segment dir: %w", err)
		}
		opt.OnPartitionDurable(j)
		return nil
	}
	return mrnet.Multicast(ctx, net, places, nil,
		func(leaf int, pl []segPlace) error {
			if !claimed[leaf].CompareAndSwap(false, true) {
				return nil
			}
			h := fs.OpenOrCreate(segNames[pl[leaf].Seg])
			c := contribs[leaf]
			if opt.OnPartitionDurable == nil {
				// Maximal aggregation: the leaf's whole contribution as
				// one sequential write.
				var buf []byte
				for j := 0; j < opt.NumPartitions; j++ {
					for _, p := range c.part[j] {
						buf = ptio.AppendRecord(buf, p, hasWeight)
					}
					for _, p := range c.shadow[j] {
						buf = ptio.AppendRecord(buf, p, hasWeight)
					}
				}
				if len(buf) > 0 {
					if _, err := h.WriteAt(buf, pl[leaf].Base); err != nil {
						return err
					}
				}
				return nil
			}
			// Pipelined: per-partition chunks, sequential on the handle,
			// with the per-partition countdown after each.
			off := pl[leaf].Base
			for j := 0; j < opt.NumPartitions; j++ {
				buf := ptio.EncodeRecords(c.part[j], hasWeight)
				for _, p := range c.shadow[j] {
					buf = ptio.AppendRecord(buf, p, hasWeight)
				}
				if len(buf) > 0 {
					if _, err := h.WriteAt(buf, off); err != nil {
						return err
					}
					off += int64(len(buf))
				}
				if remaining[j].Add(-1) == 0 {
					if err := durable(j); err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(pl []segPlace) int64 { return int64(len(pl)) * 16 },
	)
}

// segRunRef pairs a run with the segment file holding it.
type segRunRef struct {
	file string
	run  ptio.SegmentRun
}

// partitionRuns collects partition j's runs from the segment index,
// split into owned and shadow, each sorted by contributing leaf — the
// assembly order that makes a segmented read byte-identical to a legacy
// one.
func partitionRuns(meta *ptio.PartitionMeta, j int) (owned, shadow []segRunRef) {
	for _, seg := range meta.Segments {
		for _, r := range seg.Runs {
			if r.Partition != j {
				continue
			}
			ref := segRunRef{file: seg.File, run: r}
			if r.Shadow {
				shadow = append(shadow, ref)
			} else {
				owned = append(owned, ref)
			}
		}
	}
	byLeaf := func(refs []segRunRef) {
		sort.Slice(refs, func(a, b int) bool { return refs[a].run.Leaf < refs[b].run.Leaf })
	}
	byLeaf(owned)
	byLeaf(shadow)
	return owned, shadow
}

// readPartitionSegments reassembles partition j from the log-structured
// layout.
func readPartitionSegments(fs *lustre.FS, meta *ptio.PartitionMeta, j int) (points, shadow []geom.Point, err error) {
	rs := int64(ptio.RecordSize(meta.HasWeight))
	handles := make(map[string]*lustre.Handle)
	readRuns := func(refs []segRunRef, want int64) ([]geom.Point, error) {
		var pts []geom.Point
		if want > 0 {
			pts = make([]geom.Point, 0, want)
		}
		var got int64
		for _, ref := range refs {
			h := handles[ref.file]
			if h == nil {
				if h, err = fs.Open(ref.file); err != nil {
					return nil, fmt.Errorf("partition: opening segment: %w", err)
				}
				handles[ref.file] = h
			}
			buf := make([]byte, ref.run.Count*rs)
			if _, err := h.ReadAt(buf, ref.run.Offset); err != nil {
				return nil, fmt.Errorf("partition: reading %d records at %d of %s: %w",
					ref.run.Count, ref.run.Offset, ref.file, err)
			}
			decoded, err := ptio.DecodeRecords(buf, meta.HasWeight)
			if err != nil {
				return nil, err
			}
			pts = append(pts, decoded...)
			got += ref.run.Count
		}
		if got != want {
			return nil, fmt.Errorf("partition: segment index holds %d records for partition %d, metadata entry says %d",
				got, j, want)
		}
		return pts, nil
	}
	ownedRefs, shadowRefs := partitionRuns(meta, j)
	e := meta.Partitions[j]
	if points, err = readRuns(ownedRefs, e.Count); err != nil {
		return nil, nil, err
	}
	if shadow, err = readRuns(shadowRefs, e.ShadowCount); err != nil {
		return nil, nil, err
	}
	return points, shadow, nil
}

// Compact rewrites an aggregated (segmented) layout into the legacy
// contiguous one: each segment file is read once, in full and
// sequentially, and each partition region is written once, sequentially —
// the cheap compaction a consumer runs before re-reading partitions many
// times. It returns a fresh metadata document describing outputFile in
// the legacy layout (no segment index); the segment files are left in
// place.
func Compact(fs *lustre.FS, meta *ptio.PartitionMeta, outputFile string) (*ptio.PartitionMeta, error) {
	if len(meta.Segments) == 0 {
		return nil, fmt.Errorf("partition: Compact needs a segmented layout (metadata has no segment index)")
	}
	rs := int64(ptio.RecordSize(meta.HasWeight))
	segData := make(map[string][]byte, len(meta.Segments))
	for _, seg := range meta.Segments {
		h, err := fs.Open(seg.File)
		if err != nil {
			return nil, fmt.Errorf("partition: opening segment: %w", err)
		}
		buf := make([]byte, h.Size())
		if len(buf) > 0 {
			if _, err := h.ReadAt(buf, 0); err != nil {
				return nil, fmt.Errorf("partition: reading segment %s: %w", seg.File, err)
			}
		}
		segData[seg.File] = buf
	}
	out := &ptio.PartitionMeta{Eps: meta.Eps, HasWeight: meta.HasWeight}
	h := fs.Create(outputFile)
	var cursor int64
	for j := range meta.Partitions {
		ownedRefs, shadowRefs := partitionRuns(meta, j)
		gather := func(refs []segRunRef, want int64) ([]byte, error) {
			var buf []byte
			for _, ref := range refs {
				data := segData[ref.file]
				lo, hi := ref.run.Offset, ref.run.Offset+ref.run.Count*rs
				if hi > int64(len(data)) {
					return nil, fmt.Errorf("partition: segment %s run [%d,%d) exceeds file size %d",
						ref.file, lo, hi, len(data))
				}
				buf = append(buf, data[lo:hi]...)
			}
			if int64(len(buf)) != want*rs {
				return nil, fmt.Errorf("partition: compacting partition %d: runs hold %d bytes, metadata entry says %d",
					j, len(buf), want*rs)
			}
			return buf, nil
		}
		e := meta.Partitions[j]
		owned, err := gather(ownedRefs, e.Count)
		if err != nil {
			return nil, err
		}
		shad, err := gather(shadowRefs, e.ShadowCount)
		if err != nil {
			return nil, err
		}
		entry := ptio.PartitionEntry{
			Offset:       cursor,
			Count:        e.Count,
			ShadowOffset: cursor + int64(len(owned)),
			ShadowCount:  e.ShadowCount,
		}
		if buf := append(owned, shad...); len(buf) > 0 {
			if _, err := h.WriteAt(buf, cursor); err != nil {
				return nil, fmt.Errorf("partition: compacting partition %d: %w", j, err)
			}
			cursor += int64(len(buf))
		}
		out.Partitions = append(out.Partitions, entry)
	}
	return out, nil
}
