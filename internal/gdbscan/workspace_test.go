package gdbscan

import (
	"testing"

	"repro/internal/dbscan"
)

// TestWorkspaceReuseMatchesFresh runs a sequence of differently-shaped
// partitions through one shared Workspace on one device — the cluster
// phase's per-leaf loop — and checks every result against the reference.
// Stale state leaking between calls (labels, dense boxes, per-block
// queues, collision filters, recycled device buffers) would corrupt the
// later partitions.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	dev := testDevice()
	var ws Workspace
	// Shrinking then growing sizes exercise both reuse (capacity fits)
	// and regrowth of every workspace array and pooled buffer.
	for i, n := range []int{1200, 400, 2000, 50, 1} {
		pts := mixedDataset(int64(20+i), n)
		res, err := Cluster(dev, pts, Options{
			Params:    params,
			DenseBox:  true,
			Workspace: &ws,
		})
		if err != nil {
			t.Fatalf("partition %d (n=%d): %v", i, n, err)
		}
		validate(t, pts, params, res)
	}
	st := dev.Stats()
	if st.PoolHits == 0 {
		t.Error("no pool hits across repeated partitions; buffer reuse is not engaging")
	}
	// After the first partition leases and releases its two buffers,
	// every subsequent partition that fits should recycle both.
	if st.PoolMisses > 4 {
		t.Errorf("PoolMisses = %d; regrowth shapes should miss at most 4 times", st.PoolMisses)
	}
}

// TestWorkspaceReuseCUDADClustMode covers the baseline mode's per-round
// state against workspace reuse (its seeds array is the largest reused
// allocation).
func TestWorkspaceReuseCUDADClustMode(t *testing.T) {
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	dev := testDevice()
	var ws Workspace
	for i, n := range []int{900, 300, 1100} {
		pts := mixedDataset(int64(30+i), n)
		res, err := Cluster(dev, pts, Options{
			Params:    params,
			Mode:      ModeCUDADClust,
			Blocks:    16,
			Workspace: &ws,
		})
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		validate(t, pts, params, res)
		if got := len(res.Stats.RoundTransferBytes); got != res.Stats.SeedRounds {
			t.Errorf("partition %d: %d round records for %d rounds", i, got, res.Stats.SeedRounds)
		}
	}
}
