package gdbscan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dbscan"
	"repro/internal/geom"
)

// TestPropertyMatchesReference fuzzes the GPU DBSCAN against the
// sequential reference on random small datasets, random parameters, and
// random tuning knobs. Core flags and the core-point partition must
// always agree (border assignment is legally order-dependent).
func TestPropertyMatchesReference(t *testing.T) {
	f := func(seed int64, nRaw uint16, minRaw, blocksRaw, leafRaw uint8, dense bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%400 + 10
		minPts := int(minRaw)%12 + 2
		blocks := int(blocksRaw)%16 + 1
		leafSize := int(leafRaw)%48 + 4
		pts := make([]geom.Point, n)
		for i := range pts {
			// A mix of clumps and scatter in a small window so clusters
			// actually form.
			if i%3 == 0 {
				pts[i] = geom.Point{ID: uint64(i), X: rng.Float64() * 2, Y: rng.Float64() * 2}
			} else {
				cx := float64(i%5) * 0.35
				pts[i] = geom.Point{
					ID: uint64(i),
					X:  cx + rng.NormFloat64()*0.03,
					Y:  0.5 + rng.NormFloat64()*0.03,
				}
			}
		}
		params := dbscan.Params{Eps: 0.1, MinPts: minPts}
		res, err := Cluster(testDevice(), pts, Options{
			Params:   params,
			DenseBox: dense,
			Blocks:   blocks,
			LeafSize: leafSize,
		})
		if err != nil {
			return false
		}
		ref, err := dbscan.Cluster(pts, params, dbscan.IndexBrute)
		if err != nil {
			return false
		}
		// Core flags exact.
		for i := range pts {
			if res.Core[i] != ref.Core[i] {
				return false
			}
		}
		// Core partition bijective.
		refToGot := map[int]int32{}
		gotToRef := map[int32]int{}
		for i := range pts {
			if !ref.Core[i] {
				continue
			}
			r, g := ref.Labels[i], res.Labels[i]
			if g < 0 {
				return false
			}
			if prev, ok := refToGot[r]; ok && prev != g {
				return false
			}
			if prev, ok := gotToRef[g]; ok && prev != r {
				return false
			}
			refToGot[r] = g
			gotToRef[g] = r
		}
		// Noise exact.
		for i := range pts {
			if (ref.Labels[i] == dbscan.Noise) != (res.Labels[i] == dbscan.Noise) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLatticeAndDegenerate exercises structured inputs that
// stress the KD-tree and dense-box geometry.
func TestPropertyLatticeAndDegenerate(t *testing.T) {
	cases := map[string][]geom.Point{
		"lattice":    latticePoints(20, 20, 0.05),
		"duplicates": duplicatePoints(300),
		"collinear":  collinearPoints(300, 0.01),
		"two-lines":  append(collinearPoints(150, 0.01), shiftY(collinearPoints(150, 0.01), 5)...),
	}
	for name, pts := range cases {
		t.Run(name, func(t *testing.T) {
			params := dbscan.Params{Eps: 0.1, MinPts: 4}
			res, err := Cluster(testDevice(), pts, Options{Params: params, DenseBox: true})
			if err != nil {
				t.Fatal(err)
			}
			validate(t, pts, params, res)
		})
	}
}

func latticePoints(w, h int, step float64) []geom.Point {
	pts := make([]geom.Point, 0, w*h)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			pts = append(pts, geom.Point{
				ID: uint64(x*h + y),
				X:  float64(x) * step,
				Y:  float64(y) * step,
			})
		}
	}
	return pts
}

func duplicatePoints(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), X: 1.5, Y: -2.5}
	}
	return pts
}

func collinearPoints(n int, step float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), X: float64(i) * step, Y: 0}
	}
	return pts
}

func shiftY(pts []geom.Point, dy float64) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point{ID: p.ID + 1000000, X: p.X, Y: p.Y + dy}
	}
	return out
}
