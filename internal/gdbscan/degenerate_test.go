package gdbscan

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dbscan"
	"repro/internal/geom"
)

// TestDegenerateInputs hardens Cluster against the partition shapes the
// pipeline actually produces at the margins: an empty partition (a leaf
// whose region holds no points), a single point, and an all-duplicate
// dataset (the Twitter data contains heavy coordinate duplication —
// retweet bursts geotag identical coordinates). Both host-interaction
// modes must handle all of them.
func TestDegenerateInputs(t *testing.T) {
	dup := make([]geom.Point, 50)
	for i := range dup {
		dup[i] = geom.Point{ID: uint64(i), X: 1.5, Y: -2.5}
	}
	twoDup := []geom.Point{{ID: 0, X: 1, Y: 1}, {ID: 1, X: 1, Y: 1}}

	cases := []struct {
		name   string
		pts    []geom.Point
		minPts int
		// wantClusters < 0 means "validate against the reference" only.
		wantClusters int
	}{
		{"empty", nil, 4, 0},
		{"empty-slice", []geom.Point{}, 4, 0},
		{"single-noise", []geom.Point{{ID: 7, X: 3, Y: 4}}, 4, 0},
		{"single-minpts1", []geom.Point{{ID: 7, X: 3, Y: 4}}, 1, 1},
		{"all-duplicates", dup, 4, 1},
		{"duplicates-below-minpts", twoDup, 3, 0},
		{"duplicates-at-minpts", twoDup, 2, 1},
	}
	for _, mode := range []Mode{ModeMrScan, ModeCUDADClust} {
		for _, denseBox := range []bool{false, true} {
			for _, tc := range cases {
				t.Run(fmt.Sprintf("%s/densebox=%v/%s", mode, denseBox, tc.name), func(t *testing.T) {
					params := dbscan.Params{Eps: 0.1, MinPts: tc.minPts}
					res, err := Cluster(testDevice(), tc.pts, Options{
						Params:   params,
						Mode:     mode,
						DenseBox: denseBox,
					})
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Labels) != len(tc.pts) || len(res.Core) != len(tc.pts) {
						t.Fatalf("output lengths %d/%d, want %d", len(res.Labels), len(res.Core), len(tc.pts))
					}
					if res.NumClusters != tc.wantClusters {
						t.Errorf("NumClusters = %d, want %d", res.NumClusters, tc.wantClusters)
					}
					if len(tc.pts) > 0 {
						validate(t, tc.pts, params, res)
					}
				})
			}
		}
	}
}

// TestDenseBoxLinkingAcrossLeaves pins the linkDenseBoxes path: two
// adjacent KD leaves that are both dense boxes, density-reachable only
// through each other (no expanded core point between them), must come out
// as ONE cluster, matching the reference implementation. Expansion can
// never merge them — every member is pre-labeled and skipped — so only
// the box↔box linking sweep makes this correct.
func TestDenseBoxLinkingAcrossLeaves(t *testing.T) {
	const minPts = 4
	eps := 0.1
	var pts []geom.Point
	// Group A: a tight clump at the origin; group B: an equally tight
	// clump eps-adjacent to it. Each group spans far less than eps, so a
	// KD leaf holding one group is a dense box.
	for i := 0; i < minPts; i++ {
		pts = append(pts, geom.Point{ID: uint64(i), X: 0.001 * float64(i), Y: 0})
	}
	for i := 0; i < minPts; i++ {
		pts = append(pts, geom.Point{ID: uint64(minPts + i), X: 0.09 + 0.001*float64(i), Y: 0})
	}
	params := dbscan.Params{Eps: eps, MinPts: minPts}
	// LeafSize = minPts forces the median split between the clumps: one
	// leaf per group, both dense.
	res, err := Cluster(testDevice(), pts, Options{
		Params:   params,
		DenseBox: true,
		LeafSize: minPts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DenseBoxes != 2 {
		t.Fatalf("DenseBoxes = %d, want 2 (the premise of the test)", res.Stats.DenseBoxes)
	}
	if res.Stats.DenseBoxPoints != len(pts) {
		t.Fatalf("DenseBoxPoints = %d, want %d", res.Stats.DenseBoxPoints, len(pts))
	}
	// No expansion ran: there is no core point outside the boxes that
	// could have bridged them.
	if res.Stats.SeedRounds != 0 {
		t.Fatalf("SeedRounds = %d, want 0 — a seed expansion would mask the linking path", res.Stats.SeedRounds)
	}
	if res.NumClusters != 1 {
		t.Errorf("NumClusters = %d, want 1: adjacent dense boxes must merge", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != res.Labels[0] {
			t.Errorf("point %d in cluster %d, want %d (single cluster)", i, l, res.Labels[0])
		}
		if !res.Core[i] {
			t.Errorf("point %d not core; every dense-box member is core", i)
		}
	}

	// The reference implementation agrees: one cluster covering all points.
	ref, err := baseline.TIDBSCAN(pts, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ref.Labels {
		if l == dbscan.Noise || l != ref.Labels[0] {
			t.Fatalf("reference disagrees with test premise: labels %v", ref.Labels)
		}
	}
	validate(t, pts, params, res)
}
