package gdbscan

import (
	"testing"

	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/kdtree"
)

// TestCUDADClustRoundTransferBytes pins the per-round transfer accounting
// of the baseline mode to the paper's model: every expansion round moves
// 2 × 64 bytes per *active* block (§3.2.2's "two memory operations ...
// after every DBSCAN iteration"). With a seed count that is not a
// multiple of Blocks, the final partial round must be charged for only
// the blocks it actually runs — charging the full Blocks complement
// would overstate the baseline's transfer volume in the ablation.
func TestCUDADClustRoundTransferBytes(t *testing.T) {
	const n, blocks = 1000, 16
	pts := mixedDataset(11, n)
	res, err := Cluster(testDevice(), pts, Options{
		Params: dbscan.Params{Eps: 0.1, MinPts: 4},
		Mode:   ModeCUDADClust,
		Blocks: blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	// CUDA-DClust mode seeds every point: 1000 seeds over 16 blocks is
	// 62 full rounds plus a final round of 8 blocks.
	wantRounds := (n + blocks - 1) / blocks
	if res.Stats.SeedRounds != wantRounds {
		t.Fatalf("SeedRounds = %d, want %d", res.Stats.SeedRounds, wantRounds)
	}
	if len(res.Stats.RoundTransferBytes) != wantRounds {
		t.Fatalf("len(RoundTransferBytes) = %d, want %d", len(res.Stats.RoundTransferBytes), wantRounds)
	}
	var total int64
	for r, got := range res.Stats.RoundTransferBytes {
		active := blocks
		if rem := n - r*blocks; rem < active {
			active = rem
		}
		want := int64(2 * 64 * active)
		if got != want {
			t.Errorf("round %d: transfer bytes = %d, want 2*64*%d = %d", r, got, active, want)
		}
		total += got
	}
	// The per-round copies are the only transfers besides the single
	// input copy and single result copy common to both modes.
	perRound := res.Stats.DeviceH2DBytes + res.Stats.DeviceD2HBytes -
		(int64(n)*2*8 + treeBytesFor(t, pts)) - int64(n)*5
	if perRound != total {
		t.Errorf("device transfer bytes beyond the two bulk copies = %d, want sum of rounds %d", perRound, total)
	}
	if got := res.Stats.DeviceTransfers; got != int64(2+2*wantRounds) {
		t.Errorf("DeviceTransfers = %d, want %d (2 bulk + 2 per round)", got, 2+2*wantRounds)
	}
}

// treeBytesFor recomputes the modeled size of the flattened KD-tree
// shipped with the input, mirroring Cluster's accounting.
func treeBytesFor(t *testing.T, pts []geom.Point) int64 {
	t.Helper()
	var ws Workspace
	_, flat := ws.kd.Build(pts, kdtree.DefaultLeafSize)
	return int64(len(flat.Bounds))*8 +
		int64(len(flat.Left)+len(flat.Right)+len(flat.Start)+len(flat.Count)+len(flat.Order))*4
}

func TestMrScanModeHasNoRoundTransfers(t *testing.T) {
	pts := mixedDataset(12, 800)
	res, err := Cluster(testDevice(), pts, Options{
		Params:   dbscan.Params{Eps: 0.1, MinPts: 4},
		DenseBox: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RoundTransferBytes != nil {
		t.Errorf("Mr. Scan mode recorded per-round transfers: %v", res.Stats.RoundTransferBytes)
	}
	if res.Stats.DeviceTransfers != 2 {
		t.Errorf("DeviceTransfers = %d, want 2", res.Stats.DeviceTransfers)
	}
}
