// Package gdbscan implements Mr. Scan's GPGPU DBSCAN (paper §3.2): an
// extension of the CUDA-DClust algorithm with two key modifications —
// limiting host↔GPGPU interaction to a single round trip (§3.2.2) and the
// dense box optimization (§3.2.3).
//
// The algorithm runs on a gpusim.Device:
//
//  1. A region KD-tree is built on the host and flattened to arrays
//     (CUDA-DClust's modified KD-tree whose leaves are point regions).
//  2. Dense box pass: KD leaves with diagonal ≤ Eps and ≥ MinPts points
//     are "dense boxes": every pair of their points is within Eps, so all
//     are core points of one cluster and none needs expansion.
//  3. Pass one classifies core points: one thread per point counts
//     Eps-neighbors, stopping as soon as MinPts is reached.
//  4. Pass two expands core points: each GPGPU block claims a seed and
//     grows a cluster; when two blocks touch the same core point the
//     collision is recorded in a per-block collision list (Figure 4) and
//     rectified afterwards with union-find on the host.
//  5. A final pass attaches border points whose only core neighbors were
//     never expanded (dense box members).
//
// Input is copied to the device once and results retrieved once. The
// CUDA-DClust compatibility mode (ModeCUDADClust) instead charges two
// synchronous transfers per expansion round and disables both the early
// classification exit and dense boxes, reproducing the cost profile the
// paper optimizes away.
//
// A leaf node processes its partitions back-to-back on one device, so
// Cluster supports an optional Workspace: host-side scratch (the KD-tree
// and its flattened arrays, coordinate columns, per-block queues and
// traversal stacks) is built into caller-provided backing arrays, and
// device buffers are leased from the device's pool (gpusim.AllocPooled),
// making repeated calls allocation-free on the classify/expand hot path.
package gdbscan

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/dbscan"
	"repro/internal/dsu"
	"repro/internal/geom"
	"repro/internal/gpusim"
	"repro/internal/kdtree"
)

// Mode selects the host-interaction strategy.
type Mode int

const (
	// ModeMrScan is the paper's algorithm: one host→device copy of the
	// input, bulk kernel issue, one device→host copy of the result.
	ModeMrScan Mode = iota
	// ModeCUDADClust reproduces the baseline's 2×(points/blocks)
	// synchronous copies and full (no early exit) neighbor counts.
	ModeCUDADClust
)

// String names the mode for experiment output.
func (m Mode) String() string {
	switch m {
	case ModeMrScan:
		return "mrscan"
	case ModeCUDADClust:
		return "cuda-dclust"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a clustering run.
type Options struct {
	Params dbscan.Params
	// DenseBox enables the §3.2.3 optimization. Ignored (off) in
	// ModeCUDADClust.
	DenseBox bool
	// Mode selects Mr. Scan or the CUDA-DClust cost profile.
	Mode Mode
	// Blocks is the number of GPGPU blocks used for expansion; each block
	// expands one seed at a time (default 64, CUDA-DClust's configuration).
	Blocks int
	// ThreadsPerBlock is the width of the data-parallel passes
	// (classification, border attach; default 256).
	ThreadsPerBlock int
	// LeafSize is the KD-tree region capacity (default kdtree default).
	// It bounds dense-box granularity.
	LeafSize int
	// Workspace, when non-nil, provides reusable host-side scratch for
	// this call, eliminating per-partition allocation when one caller
	// clusters many partitions in sequence. A nil Workspace allocates
	// fresh scratch (identical results, more garbage). A Workspace must
	// not be shared by concurrent Cluster calls.
	Workspace *Workspace
}

func (o *Options) setDefaults() {
	if o.Blocks <= 0 {
		o.Blocks = 64
	}
	if o.ThreadsPerBlock <= 0 {
		o.ThreadsPerBlock = 256
	}
	if o.LeafSize <= 0 {
		o.LeafSize = kdtree.DefaultLeafSize
	}
	if o.Mode == ModeCUDADClust {
		o.DenseBox = false
	}
}

// Stats reports algorithm-level counters for a run.
type Stats struct {
	// DenseBoxes is the number of KD leaves eliminated as dense boxes;
	// DenseBoxPoints is the number of points they removed from expansion
	// (the paper's p in O((n-p) log n)).
	DenseBoxes      int
	DenseBoxPoints  int
	SeedRounds      int
	Collisions      int
	BorderAttached  int
	CorePoints      int
	DeviceH2DBytes  int64
	DeviceD2HBytes  int64
	DeviceTransfers int64
	// RoundTransferBytes records, per expansion round of ModeCUDADClust,
	// the modeled bytes of the round's two synchronous copies (state out
	// + seeds in, §3.2.2) — 2 × 64 × blocks active in that round. Nil in
	// ModeMrScan, whose expansion moves no per-round bytes.
	RoundTransferBytes []int64
}

// Result is the clustering output. Labels are local (per-leaf) cluster IDs
// 0..NumClusters-1 or dbscan.Noise.
type Result struct {
	Labels      []int32
	Core        []bool
	NumClusters int
	Stats       Stats
}

// collision records two cluster IDs that touched the same core point
// (Figure 4); the pair is unioned on the host afterwards.
type collision struct{ a, b int32 }

// collSeenSlots is the size of the per-block direct-mapped cache that
// suppresses duplicate collision records. Two expanding clusters meet
// along a whole frontier of shared points; recording the same ID pair
// once per contact wastes list space and host-side union-find time.
const collSeenSlots = 128

// blockScratch is the per-block working state of the expansion kernel.
// Each block is executed by exactly one goroutine per launch, so blocks
// use their own scratch without locks.
type blockScratch struct {
	queue      []int32
	stack      []int32
	collisions []collision
	// seen is the duplicate-collision filter: seen[hash(pair)] == pair.
	seen [collSeenSlots]uint64
}

// Workspace holds every reusable host-side array of a Cluster call. The
// zero value is ready to use; pass the same Workspace to successive
// calls (one partition after another on the same leaf) to stop them
// re-allocating the KD-tree, coordinate columns, and per-block expansion
// state. Not safe for concurrent use.
type Workspace struct {
	kd          kdtree.Workspace
	xs, ys      []float64
	labels      []int32
	skipExpand  []bool
	seeds       []int32
	seedCluster []int32
	boxes       []kdtree.Leaf
	blocks      []blockScratch
}

// grow resizes s to n elements, reallocating only when capacity is
// short. Contents are unspecified; callers overwrite or clear.
func grow[E any](s []E, n int) []E {
	if cap(s) < n {
		return make([]E, n)
	}
	return s[:n]
}

// Cluster runs the GPGPU DBSCAN over pts on dev.
func Cluster(dev *gpusim.Device, pts []geom.Point, opt Options) (*Result, error) {
	if err := opt.Params.Validate(); err != nil {
		return nil, err
	}
	opt.setDefaults()
	n := len(pts)
	if n == 0 {
		return &Result{Labels: []int32{}, Core: []bool{}}, nil
	}
	ws := opt.Workspace
	if ws == nil {
		ws = &Workspace{}
	}

	eps := opt.Params.Eps
	// minNeighbors excludes the point itself (the DBSCAN neighborhood
	// includes the point, see dbscan.Params).
	minNeighbors := opt.Params.MinPts - 1

	// Host-side index construction (CUDA-DClust builds the KD-tree on the
	// CPU and ships the flattened arrays) — into the workspace's backing
	// arrays, so per-partition builds reuse allocations.
	tree, flat := ws.kd.Build(pts, opt.LeafSize)
	ws.xs = grow(ws.xs, n)
	ws.ys = grow(ws.ys, n)
	xs, ys := ws.xs, ws.ys
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}

	// Device allocation: point coords, flattened tree, flags and labels.
	// Buffers are leased from the device pool: the second partition on a
	// leaf reuses the first's allocations (pool hit) instead of paying
	// another cudaMalloc.
	const f64, i32 = 8, 4
	treeBytes := int64(len(flat.Bounds))*f64 + int64(len(flat.Left)+len(flat.Right)+len(flat.Start)+len(flat.Count)+len(flat.Order))*i32
	inBuf, err := dev.AllocPooled("gdbscan/input", int64(n)*2*f64+treeBytes)
	if err != nil {
		return nil, fmt.Errorf("gdbscan: %w", err)
	}
	defer inBuf.Release()
	outBuf, err := dev.AllocPooled("gdbscan/state", int64(n)*(i32+1))
	if err != nil {
		return nil, fmt.Errorf("gdbscan: %w", err)
	}
	defer outBuf.Release()

	startStats := dev.Stats()

	// Single input copy (both modes copy the raw input once; §3.2.2).
	if err := dev.CopyToDevice(inBuf, inBuf.Size()); err != nil {
		return nil, err
	}

	ws.labels = grow(ws.labels, n)
	labels := ws.labels
	for i := range labels {
		labels[i] = -1
	}
	core := make([]bool, n) // returned to the caller; never pooled
	var stats Stats

	// --- Dense box pass (§3.2.3) ---
	// Cluster IDs: dense boxes take 0..nBoxes-1; expansion seeds take
	// nBoxes..nBoxes+len(seeds)-1 (sparse; compacted at the end).
	ws.boxes = ws.boxes[:0]
	nextCluster := int32(0)
	ws.skipExpand = grow(ws.skipExpand, n)
	skipExpand := ws.skipExpand // dense-box members are not expanded
	for i := range skipExpand {
		skipExpand[i] = false
	}
	if opt.DenseBox {
		tree.VisitLeaves(func(leaf kdtree.Leaf) {
			if len(leaf.Points) >= opt.Params.MinPts && leaf.Bounds.Diagonal() <= eps {
				id := nextCluster
				nextCluster++
				for _, pi := range leaf.Points {
					labels[pi] = id
					core[pi] = true
					skipExpand[pi] = true
				}
				ws.boxes = append(ws.boxes, leaf)
			}
		})
		stats.DenseBoxes = len(ws.boxes)
		for _, b := range ws.boxes {
			stats.DenseBoxPoints += len(b.Points)
		}
	}
	boxes := ws.boxes
	nBoxes := nextCluster

	// --- Pass one: classify core points ---
	// One thread per point; early exit at MinPts in Mr. Scan mode
	// ("expansion during this phase stops as soon as MinPts is reached").
	countLimit := minNeighbors
	if opt.Mode == ModeCUDADClust {
		countLimit = 0 // full count: the unoptimized profile
	}
	lc := gpusim.GridFor(n, opt.ThreadsPerBlock)
	err = dev.Launch("gdbscan/classify", lc, func(ctx gpusim.KernelCtx) {
		i := ctx.GlobalID()
		if i >= n || core[i] {
			return
		}
		if flat.CountRange(xs, ys, xs[i], ys[i], eps, int32(i), countLimit) >= minNeighbors {
			core[i] = true
		}
	})
	if err != nil {
		return nil, err
	}

	// --- Pass two: expansion ---
	// Seeds in index order; each block claims one seed per round. In
	// Mr. Scan mode only core points are seeds (found by pass one); the
	// CUDA-DClust profile seeds every point and discovers coreness as it
	// goes.
	seeds := ws.seeds[:0]
	for i := 0; i < n; i++ {
		if skipExpand[i] {
			continue
		}
		if core[i] || opt.Mode == ModeCUDADClust {
			seeds = append(seeds, int32(i))
		}
	}
	ws.seeds = seeds
	stats.CorePoints = countTrue(core)

	seedCluster := grow(ws.seedCluster, len(seeds))
	ws.seedCluster = seedCluster
	for si := range seeds {
		seedCluster[si] = nBoxes + int32(si)
	}
	maxCluster := nBoxes + int32(len(seeds))

	// Per-block scratch: expansion queue, KD traversal stack, collision
	// list and duplicate filter. Each block is executed by exactly one
	// goroutine per launch (and kernels in a stream run in order), so
	// blocks may use their scratch without locks. In Mr. Scan mode the
	// collision buffers are drained once after the bulk-issued kernels
	// synchronize; the CUDA-DClust profile drains per round between its
	// synchronous copies.
	ws.blocks = grow(ws.blocks, opt.Blocks)
	blocks := ws.blocks
	for b := range blocks {
		blocks[b].collisions = blocks[b].collisions[:0]
		blocks[b].seen = [collSeenSlots]uint64{}
	}
	merges := dsu.New(int(maxCluster))
	drainCollisions := func() {
		for b := range blocks {
			for _, c := range blocks[b].collisions {
				if merges.Union(int(c.a), int(c.b)) {
					stats.Collisions++
				}
			}
			blocks[b].collisions = blocks[b].collisions[:0]
		}
	}

	// §3.2.2: Mr. Scan issues every expansion kernel in bulk on a stream
	// — "all kernel invocations needed to cluster the dataset to be
	// issued in bulk without any intervening memory copies" — and
	// synchronizes once. The baseline profile launches synchronously
	// with two copies per round.
	var stream *gpusim.Stream
	if opt.Mode == ModeMrScan {
		stream = dev.NewStream()
	}

	eps2 := eps * eps
	for round := 0; round*opt.Blocks < len(seeds); round++ {
		base := round * opt.Blocks
		blocksThisRound := len(seeds) - base
		if blocksThisRound > opt.Blocks {
			blocksThisRound = opt.Blocks
		}
		stats.SeedRounds++
		kernel := func(ctx gpusim.KernelCtx) {
			si := base + ctx.Block
			seed := seeds[si]
			if !core[seed] {
				return // CUDA-DClust profile: seed turned out non-core
			}
			// Claim the seed. If another cluster already owns it, this
			// seed never starts a cluster (it was absorbed).
			myID := seedCluster[si]
			if !atomic.CompareAndSwapInt32(&labels[seed], -1, myID) {
				return
			}
			bs := &blocks[ctx.Block]
			bounds, left, right := flat.Bounds, flat.Left, flat.Right
			starts, counts, order := flat.Start, flat.Count, flat.Order
			q := append(bs.queue[:0], seed)
			stack := bs.stack
			for len(q) > 0 {
				p := q[len(q)-1]
				q = q[:len(q)-1]
				cx, cy := xs[p], ys[p]
				// Inlined KD range traversal (kdtree.Flat.Range) with the
				// block's reusable stack: the expansion visits every
				// neighbor of every core point, so per-visit callback
				// indirection is the cluster phase's hottest cost.
				stack = append(stack[:0], 0)
				for len(stack) > 0 {
					ni := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					bnd := bounds[4*ni : 4*ni+4 : 4*ni+4]
					var dx, dy float64
					if cx < bnd[0] {
						dx = bnd[0] - cx
					} else if cx > bnd[2] {
						dx = cx - bnd[2]
					}
					if cy < bnd[1] {
						dy = bnd[1] - cy
					} else if cy > bnd[3] {
						dy = cy - bnd[3]
					}
					if dx*dx+dy*dy > eps2 {
						continue
					}
					if left[ni] >= 0 {
						stack = append(stack, left[ni], right[ni])
						continue
					}
					s0, c0 := starts[ni], counts[ni]
					for _, nb := range order[s0 : s0+c0] {
						if nb == p {
							continue
						}
						ddx := cx - xs[nb]
						ddy := cy - ys[nb]
						if ddx*ddx+ddy*ddy > eps2 {
							continue
						}
						// Most neighbor visits land on points this block
						// already claimed (a cluster's points see each
						// other from many range queries), so check with a
						// plain atomic load before paying for a CAS.
						other := atomic.LoadInt32(&labels[nb])
						if other == myID {
							continue
						}
						if !core[nb] {
							if other < 0 {
								// Border point: first cluster to reach it
								// claims it (DBSCAN's order dependence,
								// §2.1).
								atomic.CompareAndSwapInt32(&labels[nb], -1, myID)
							}
							continue
						}
						if other < 0 && atomic.CompareAndSwapInt32(&labels[nb], -1, myID) {
							// Unlabeled implies not a dense-box member
							// (boxes pre-label), so nb always expands.
							q = append(q, nb)
						} else if other = atomic.LoadInt32(&labels[nb]); other != myID {
							// Figure 4: two blocks share a core point —
							// the clusters are the same cluster. The seen
							// filter drops repeats of the same ID pair.
							key := uint64(uint32(myID))<<32 | uint64(uint32(other))
							slot := (key * 0x9E3779B97F4A7C15) >> (64 - 7)
							if bs.seen[slot] != key {
								bs.seen[slot] = key
								bs.collisions = append(bs.collisions, collision{myID, other})
							}
						}
					}
				}
			}
			bs.queue = q[:0]
			bs.stack = stack[:0]
		}
		lc := gpusim.LaunchConfig{Blocks: blocksThisRound, ThreadsPerBlock: 1}
		if stream != nil {
			stream.LaunchAsync("gdbscan/expand", lc, kernel)
			continue
		}
		if err := dev.Launch("gdbscan/expand", lc, kernel); err != nil {
			return nil, err
		}
		drainCollisions()
		// The baseline copies block state out and new seeds in after
		// every iteration (§3.2.2: "at least two memory operations
		// between the host and GPGPU after every DBSCAN iteration").
		// Only the blocks active this round move state — the final
		// partial round is cheaper, and the ablation's modeled bytes
		// must match 2×(points/blocks) exactly.
		stateBytes := int64(blocksThisRound) * 64
		if stateBytes > outBuf.Size() {
			stateBytes = outBuf.Size()
		}
		if err := dev.CopyFromDevice(outBuf, stateBytes); err != nil {
			return nil, err
		}
		if err := dev.CopyToDevice(outBuf, stateBytes); err != nil {
			return nil, err
		}
		stats.RoundTransferBytes = append(stats.RoundTransferBytes, 2*stateBytes)
	}
	if stream != nil {
		if err := stream.Synchronize(); err != nil {
			return nil, err
		}
		drainCollisions()
	}

	// --- Dense box linking ---
	// Two dense boxes can be directly density-reachable with no expanded
	// point between them; expansion alone would never merge them. Link
	// boxes whose regions come within Eps and contain a point pair within
	// Eps. (The same pass links boxes to already-labeled neighbors via
	// expansion, so only box↔box needs handling.)
	if len(boxes) > 1 {
		linkDenseBoxes(pts, boxes, eps, func(a, b int) {
			merges.Union(a, b)
		})
	}

	// --- Border attachment ---
	// Points that are non-core and unlabeled can still be border points
	// if their only core neighbors are dense-box members (never
	// expanded). One thread per point; first core neighbor wins.
	err = dev.Launch("gdbscan/border", lc, func(ctx gpusim.KernelCtx) {
		i := ctx.GlobalID()
		if i >= n || core[i] || atomic.LoadInt32(&labels[i]) >= 0 {
			return
		}
		flat.Range(xs, ys, xs[i], ys[i], eps, int32(i), func(nb int32) bool {
			if core[nb] {
				if l := atomic.LoadInt32(&labels[nb]); l >= 0 {
					atomic.StoreInt32(&labels[i], l)
					return false
				}
			}
			return true
		})
	})
	if err != nil {
		return nil, err
	}

	// Single result copy back (labels + core flags).
	if err := dev.CopyFromDevice(outBuf, outBuf.Size()); err != nil {
		return nil, err
	}

	// --- Collision rectification on the CPU ---
	// "When all points have been classified, the CPU merges clusters that
	// have collided and the final clusters are revealed."
	compact := make(map[int32]int32)
	out := make([]int32, n)
	borderAttached := 0
	for i := 0; i < n; i++ {
		l := labels[i]
		if l < 0 {
			out[i] = dbscan.Noise
			continue
		}
		root := int32(merges.Find(int(l)))
		id, ok := compact[root]
		if !ok {
			id = int32(len(compact))
			compact[root] = id
		}
		out[i] = id
		if !core[i] {
			borderAttached++
		}
	}
	stats.BorderAttached = borderAttached

	endStats := dev.Stats()
	stats.DeviceH2DBytes = endStats.H2DBytes - startStats.H2DBytes
	stats.DeviceD2HBytes = endStats.D2HBytes - startStats.D2HBytes
	stats.DeviceTransfers = (endStats.H2DTransfers + endStats.D2HTransfers) -
		(startStats.H2DTransfers + startStats.D2HTransfers)

	return &Result{
		Labels:      out,
		Core:        core,
		NumClusters: len(compact),
		Stats:       stats,
	}, nil
}

// linkDenseBoxes unions dense boxes (by cluster index == box index) whose
// point sets contain a pair within eps. A sweep over boxes sorted by MinX
// prunes far-apart pairs; candidate pairs are rejected by bounding-box
// distance before the point-pair test.
func linkDenseBoxes(pts []geom.Point, boxes []kdtree.Leaf, eps float64, union func(a, b int)) {
	order := make([]int, len(boxes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return boxes[order[a]].Bounds.MinX < boxes[order[b]].Bounds.MinX
	})
	eps2 := eps * eps
	for oi, bi := range order {
		bb := boxes[bi].Bounds
		for _, bj := range order[oi+1:] {
			ob := boxes[bj].Bounds
			if ob.MinX > bb.MaxX+eps {
				break // sweep: no later box can be within eps in x
			}
			if !bb.Inflate(eps).Intersects(ob) {
				continue
			}
			if boxesWithinEps(pts, boxes[bi].Points, boxes[bj].Points, eps2) {
				union(bi, bj)
			}
		}
	}
}

func boxesWithinEps(pts []geom.Point, a, b []int32, eps2 float64) bool {
	for _, i := range a {
		for _, j := range b {
			if geom.Dist2(pts[i], pts[j]) <= eps2 {
				return true
			}
		}
	}
	return false
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
