package gdbscan

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/gpusim"
)

func testDevice() *gpusim.Device {
	cfg := gpusim.K20()
	cfg.SMs = 8
	return gpusim.New(cfg, nil)
}

func blob(rng *rand.Rand, idBase uint64, n int, cx, cy, r float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			ID: idBase + uint64(i),
			X:  cx + (rng.Float64()*2-1)*r,
			Y:  cy + (rng.Float64()*2-1)*r,
		}
	}
	return pts
}

// mixedDataset builds blobs of varying density plus uniform noise,
// resembling the geospatial data Mr. Scan targets.
func mixedDataset(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	var pts []geom.Point
	id := uint64(0)
	centers := [][3]float64{
		{0, 0, 0.3}, {2, 1, 0.15}, {-1.5, 2, 0.08}, {3, -2, 0.5}, {-2, -2, 0.04},
	}
	per := n * 9 / 10 / len(centers)
	for _, c := range centers {
		b := blob(rng, id, per, c[0], c[1], c[2])
		pts = append(pts, b...)
		id += uint64(per)
	}
	for len(pts) < n {
		pts = append(pts, geom.Point{ID: id, X: rng.Float64()*12 - 6, Y: rng.Float64()*12 - 6})
		id++
	}
	return pts
}

// validate checks a gdbscan result against the reference sequential
// DBSCAN. Core flags and the partition of core points must match exactly;
// border points may legally differ in cluster assignment (DBSCAN order
// dependence, §2.1) but must be attached to a cluster with a core
// neighbor within Eps; noise sets must match exactly.
func validate(t *testing.T, pts []geom.Point, params dbscan.Params, res *Result) {
	t.Helper()
	ref, err := dbscan.Cluster(pts, params, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != len(pts) || len(res.Core) != len(pts) {
		t.Fatalf("result sizes %d/%d, want %d", len(res.Labels), len(res.Core), len(pts))
	}
	for i := range pts {
		if res.Core[i] != ref.Core[i] {
			t.Fatalf("core flag of point %d = %v, want %v", i, res.Core[i], ref.Core[i])
		}
	}
	// Partition of core points: bidirectional label mapping.
	refToGot := map[int]int32{}
	gotToRef := map[int32]int{}
	for i := range pts {
		if !ref.Core[i] {
			continue
		}
		r, g := ref.Labels[i], res.Labels[i]
		if g < 0 {
			t.Fatalf("core point %d unlabeled", i)
		}
		if prev, ok := refToGot[r]; ok && prev != g {
			t.Fatalf("ref cluster %d split into %d and %d (point %d)", r, prev, g, i)
		}
		if prev, ok := gotToRef[g]; ok && prev != r {
			t.Fatalf("got cluster %d merges ref clusters %d and %d (point %d)", g, prev, r, i)
		}
		refToGot[r] = g
		gotToRef[g] = r
	}
	// Noise must match exactly.
	eps2 := params.Eps * params.Eps
	for i := range pts {
		refNoise := ref.Labels[i] == dbscan.Noise
		gotNoise := res.Labels[i] == dbscan.Noise
		if refNoise != gotNoise {
			t.Fatalf("noise status of point %d = %v, want %v", i, gotNoise, refNoise)
		}
		// Border points: must have a core neighbor in the same got-cluster.
		if !gotNoise && !res.Core[i] {
			ok := false
			for j := range pts {
				if j != i && res.Core[j] && res.Labels[j] == res.Labels[i] &&
					geom.Dist2(pts[i], pts[j]) <= eps2 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("border point %d not adjacent to a core of its cluster %d", i, res.Labels[i])
			}
		}
	}
}

func TestMatchesReferenceSmall(t *testing.T) {
	pts := mixedDataset(1, 800)
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	for _, dense := range []bool{false, true} {
		name := "densebox=off"
		if dense {
			name = "densebox=on"
		}
		t.Run(name, func(t *testing.T) {
			res, err := Cluster(testDevice(), pts, Options{Params: params, DenseBox: dense})
			if err != nil {
				t.Fatal(err)
			}
			validate(t, pts, params, res)
		})
	}
}

func TestMatchesReferenceAcrossMinPts(t *testing.T) {
	pts := mixedDataset(2, 1500)
	for _, minPts := range []int{2, 4, 10, 40} {
		res, err := Cluster(testDevice(), pts, Options{
			Params:   dbscan.Params{Eps: 0.1, MinPts: minPts},
			DenseBox: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		validate(t, pts, dbscan.Params{Eps: 0.1, MinPts: minPts}, res)
	}
}

func TestDenseBoxActivates(t *testing.T) {
	// A single very dense blob: dense boxes must eliminate most points.
	rng := rand.New(rand.NewSource(3))
	pts := blob(rng, 0, 4000, 0, 0, 0.02) // everything within one Eps region
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	res, err := Cluster(testDevice(), pts, Options{Params: params, DenseBox: true, LeafSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DenseBoxes == 0 {
		t.Fatal("dense data must produce dense boxes")
	}
	if res.Stats.DenseBoxPoints < len(pts)/2 {
		t.Errorf("dense boxes eliminated only %d of %d points", res.Stats.DenseBoxPoints, len(pts))
	}
	if res.NumClusters != 1 {
		t.Errorf("NumClusters = %d, want 1 (all boxes must link)", res.NumClusters)
	}
	validate(t, pts, params, res)
}

func TestDenseBoxAdjacentBlobsMerge(t *testing.T) {
	// Two dense micro-blobs ~0.05 apart: both become dense boxes (or box
	// + expanded region); box↔box linking must merge them.
	rng := rand.New(rand.NewSource(4))
	var pts []geom.Point
	pts = append(pts, blob(rng, 0, 200, 0, 0, 0.01)...)
	pts = append(pts, blob(rng, 1000, 200, 0.05, 0, 0.01)...)
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	res, err := Cluster(testDevice(), pts, Options{Params: params, DenseBox: true, LeafSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	validate(t, pts, params, res)
}

func TestDenseBoxBorderAttach(t *testing.T) {
	// A dense box plus one lone point within Eps of it: the lone point is
	// a border point whose only core neighbors live in the box; the
	// border-attach pass must claim it.
	// Deterministic construction. Box 1: 15 points on a line spanning
	// x ∈ [0, 0.07] (diagonal 0.07 ≤ Eps, count = MinPts → dense box).
	// The border point at x = 0.17 is within Eps of exactly one box
	// point (distance 0.1 to x = 0.07), so it is non-core and its only
	// core neighbor is a dense-box member. Box 2 at x ≈ 1 forces the
	// KD-tree to split box 1 into its own leaf.
	var pts []geom.Point
	for i := 0; i < 15; i++ {
		pts = append(pts, geom.Point{ID: uint64(i), X: float64(i) * 0.005, Y: 0})
	}
	borderIdx := len(pts)
	pts = append(pts, geom.Point{ID: 100, X: 0.17, Y: 0})
	for i := 0; i < 15; i++ {
		pts = append(pts, geom.Point{ID: 200 + uint64(i), X: 1 + float64(i)*0.005, Y: 0})
	}
	params := dbscan.Params{Eps: 0.1, MinPts: 15}
	res, err := Cluster(testDevice(), pts, Options{Params: params, DenseBox: true, LeafSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DenseBoxes == 0 {
		t.Fatal("box 1 must be eliminated as a dense box for this test to be meaningful")
	}
	if res.Core[borderIdx] {
		t.Fatal("border point must not be core")
	}
	if res.Labels[borderIdx] == dbscan.Noise {
		t.Fatal("point within Eps of a dense box must be a border member, not noise")
	}
	if res.Labels[borderIdx] != res.Labels[0] {
		t.Errorf("border point joined cluster %d, want the box cluster %d", res.Labels[borderIdx], res.Labels[0])
	}
	validate(t, pts, params, res)
}

func TestEmptyAndTinyInputs(t *testing.T) {
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	res, err := Cluster(testDevice(), nil, Options{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Errorf("empty input: NumClusters = %d", res.NumClusters)
	}
	res, err = Cluster(testDevice(), []geom.Point{{ID: 1}}, Options{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || res.Labels[0] != dbscan.Noise {
		t.Errorf("single point must be noise, got %+v", res)
	}
}

func TestInvalidParams(t *testing.T) {
	if _, err := Cluster(testDevice(), nil, Options{Params: dbscan.Params{Eps: -1, MinPts: 4}}); err == nil {
		t.Error("negative Eps must be rejected")
	}
}

func TestCUDADClustModeMatchesOutput(t *testing.T) {
	pts := mixedDataset(6, 700)
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	res, err := Cluster(testDevice(), pts, Options{Params: params, Mode: ModeCUDADClust})
	if err != nil {
		t.Fatal(err)
	}
	validate(t, pts, params, res)
}

func TestCUDADClustModeTransferCost(t *testing.T) {
	// §3.2.2: the baseline's per-iteration synchronous copies must show up
	// as many more device transfers than Mr. Scan's single round trip.
	pts := mixedDataset(7, 3000)
	params := dbscan.Params{Eps: 0.1, MinPts: 4}

	devA := testDevice()
	resA, err := Cluster(devA, pts, Options{Params: params, DenseBox: true, Blocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	devB := testDevice()
	resB, err := Cluster(devB, pts, Options{Params: params, Mode: ModeCUDADClust, Blocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Stats.DeviceTransfers != 2 {
		t.Errorf("Mr. Scan mode made %d transfers, want exactly 2 (one round trip)", resA.Stats.DeviceTransfers)
	}
	if resB.Stats.DeviceTransfers <= resA.Stats.DeviceTransfers {
		t.Errorf("CUDA-DClust mode made %d transfers, want more than %d",
			resB.Stats.DeviceTransfers, resA.Stats.DeviceTransfers)
	}
	if devB.Clock().Resource(devB.Config().Name+"/pcie") <= devA.Clock().Resource(devA.Config().Name+"/pcie") {
		t.Error("CUDA-DClust mode must accumulate more simulated PCIe time")
	}
}

func TestDenseBoxReducesExpansionWork(t *testing.T) {
	pts := mixedDataset(8, 5000)
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	on, err := Cluster(testDevice(), pts, Options{Params: params, DenseBox: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Cluster(testDevice(), pts, Options{Params: params, DenseBox: false})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.DenseBoxPoints == 0 {
		t.Fatal("mixed dataset must trigger dense boxes")
	}
	if on.Stats.SeedRounds >= off.Stats.SeedRounds {
		t.Errorf("dense box must reduce seed rounds: on=%d off=%d",
			on.Stats.SeedRounds, off.Stats.SeedRounds)
	}
	// Same clustering either way.
	validate(t, pts, params, on)
	validate(t, pts, params, off)
}

func TestHighMinPtsWeakensDenseBox(t *testing.T) {
	// §5.1.1: "Since our dense box optimization is based on finding
	// MinPts points in a small area, it is not as effective when MinPts
	// is higher."
	pts := mixedDataset(9, 5000)
	eliminated := func(minPts int) int {
		res, err := Cluster(testDevice(), pts, Options{
			Params:   dbscan.Params{Eps: 0.1, MinPts: minPts},
			DenseBox: true,
			LeafSize: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.DenseBoxPoints
	}
	low := eliminated(4)
	high := eliminated(400)
	if high >= low {
		t.Errorf("dense box eliminated %d points at MinPts=400, want fewer than %d at MinPts=4", high, low)
	}
}

func TestRingShape(t *testing.T) {
	// Non-convex cluster through the GPU path.
	rng := rand.New(rand.NewSource(10))
	var pts []geom.Point
	for i := 0; i < 720; i++ {
		a := float64(i) / 720 * 2 * math.Pi
		pts = append(pts, geom.Point{ID: uint64(i), X: math.Cos(a) + rng.Float64()*0.001, Y: math.Sin(a) + rng.Float64()*0.001})
	}
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	res, err := Cluster(testDevice(), pts, Options{Params: params, DenseBox: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("ring must be one cluster, got %d", res.NumClusters)
	}
	validate(t, pts, params, res)
}

func TestDeterministicCorePartitionUnderConcurrency(t *testing.T) {
	// Block-level races may reassign border points between runs, but the
	// partition of core points must be stable. Run repeatedly.
	pts := mixedDataset(11, 2000)
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	ref, err := dbscan.Cluster(pts, params, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		res, err := Cluster(testDevice(), pts, Options{Params: params, DenseBox: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumClusters != ref.NumClusters {
			t.Fatalf("run %d: NumClusters = %d, want %d", run, res.NumClusters, ref.NumClusters)
		}
	}
}

func BenchmarkGPUDBSCAN(b *testing.B) {
	pts := mixedDataset(12, 20000)
	params := dbscan.Params{Eps: 0.1, MinPts: 4}
	for _, dense := range []bool{false, true} {
		name := "densebox=off"
		if dense {
			name = "densebox=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Cluster(testDevice(), pts, Options{Params: params, DenseBox: dense}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
