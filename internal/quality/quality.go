// Package quality implements the clustering quality metric of DBDC
// (Januzaj, Kriegel & Pfeifle, EDBT'04) as used in the paper's §5.1.3:
//
//	"The metric assigns a quality score between 0 and 1 to each point as
//	|A∩B|/|A∪B|, where A is the cluster the point belongs to in DBSCAN's
//	output, and B is the equivalent cluster from Mr. Scan's output. If a
//	point is misidentified as a noise or non-noise point, it gets a
//	quality score of 0. The final quality score is an average of the
//	points' quality scores."
//
// The metric is 1.0 exactly when both outputs contain identical clusters
// and identical noise.
package quality

import "fmt"

// Noise is the label value treated as noise on both sides.
const Noise = -1

// Score computes the DBDC quality of got against the reference ref.
// Labels are per-point cluster IDs with negative values meaning noise.
// The two slices must align (same point order).
func Score(ref, got []int) (float64, error) {
	if len(ref) != len(got) {
		return 0, fmt.Errorf("quality: %d reference labels vs %d labels", len(ref), len(got))
	}
	if len(ref) == 0 {
		return 1, nil
	}
	refSize := make(map[int]int)
	gotSize := make(map[int]int)
	type pair struct{ a, b int }
	inter := make(map[pair]int)
	for i := range ref {
		a, b := norm(ref[i]), norm(got[i])
		if a != Noise {
			refSize[a]++
		}
		if b != Noise {
			gotSize[b]++
		}
		if a != Noise && b != Noise {
			inter[pair{a, b}]++
		}
	}
	var total float64
	for i := range ref {
		a, b := norm(ref[i]), norm(got[i])
		if a == Noise && b == Noise {
			total += 1 // noise on both sides: perfect agreement
			continue
		}
		if a == Noise || b == Noise {
			continue // misidentified noise/non-noise: score 0
		}
		in := inter[pair{a, b}]
		un := refSize[a] + gotSize[b] - in
		total += float64(in) / float64(un)
	}
	return total / float64(len(ref)), nil
}

// norm maps all negative labels to Noise.
func norm(l int) int {
	if l < 0 {
		return Noise
	}
	return l
}

// Int32 adapts an int32 label slice.
func Int32(labels []int32) []int {
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = int(l)
	}
	return out
}
