package quality

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPerfectAgreement(t *testing.T) {
	ref := []int{0, 0, 1, 1, -1, 2}
	got := []int{5, 5, 9, 9, -1, 0} // renamed clusters are still perfect
	s, err := Score(ref, got)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s, 1) {
		t.Errorf("score = %v, want 1", s)
	}
}

func TestLengthMismatch(t *testing.T) {
	if _, err := Score([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestEmpty(t *testing.T) {
	s, err := Score(nil, nil)
	if err != nil || s != 1 {
		t.Errorf("empty score = %v,%v, want 1,nil", s, err)
	}
}

func TestNoiseMisidentification(t *testing.T) {
	// One point noise in ref, clustered in got: that point scores 0.
	ref := []int{0, 0, -1}
	got := []int{0, 0, 0}
	s, err := Score(ref, got)
	if err != nil {
		t.Fatal(err)
	}
	// Points 0,1: |A∩B|=2, |A∪B|=3 (got cluster also holds point 2) →
	// 2/3 each. Point 2: 0. Mean = (2/3+2/3+0)/3.
	want := (2.0/3 + 2.0/3 + 0) / 3
	if !almost(s, want) {
		t.Errorf("score = %v, want %v", s, want)
	}
}

func TestSplitCluster(t *testing.T) {
	// Reference has one 4-point cluster; output split it in two halves.
	ref := []int{0, 0, 0, 0}
	got := []int{0, 0, 1, 1}
	s, err := Score(ref, got)
	if err != nil {
		t.Fatal(err)
	}
	// Each point: |A∩B| = 2, |A∪B| = 4 → 0.5.
	if !almost(s, 0.5) {
		t.Errorf("score = %v, want 0.5", s)
	}
}

func TestMergedCluster(t *testing.T) {
	// Reference has two clusters; output merged them.
	ref := []int{0, 0, 1, 1}
	got := []int{0, 0, 0, 0}
	s, err := Score(ref, got)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s, 0.5) {
		t.Errorf("score = %v, want 0.5", s)
	}
}

func TestAllNoiseAgreement(t *testing.T) {
	ref := []int{-1, -1, -1}
	got := []int{-1, -1, -1}
	s, err := Score(ref, got)
	if err != nil || !almost(s, 1) {
		t.Errorf("score = %v,%v, want 1", s, err)
	}
}

func TestNegativeLabelsAreNoise(t *testing.T) {
	ref := []int{-1, -7}
	got := []int{-2, -1}
	s, err := Score(ref, got)
	if err != nil || !almost(s, 1) {
		t.Errorf("all-negative labels must agree as noise: %v,%v", s, err)
	}
}

func TestScoreBoundsProperty(t *testing.T) {
	f := func(refRaw, gotRaw []int8) bool {
		n := len(refRaw)
		if len(gotRaw) < n {
			n = len(gotRaw)
		}
		ref := make([]int, n)
		got := make([]int, n)
		for i := 0; i < n; i++ {
			ref[i] = int(refRaw[i]) % 5
			got[i] = int(gotRaw[i]) % 5
		}
		s, err := Score(ref, got)
		if err != nil {
			return false
		}
		return s >= 0 && s <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentityScoresOneProperty(t *testing.T) {
	f := func(raw []int8) bool {
		labels := make([]int, len(raw))
		for i, v := range raw {
			labels[i] = int(v) % 7
		}
		s, err := Score(labels, labels)
		return err == nil && almost(s, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt32(t *testing.T) {
	got := Int32([]int32{1, -1, 3})
	if len(got) != 3 || got[0] != 1 || got[1] != -1 || got[2] != 3 {
		t.Errorf("Int32 = %v", got)
	}
}
