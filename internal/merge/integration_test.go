package merge

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/partition"
	"repro/internal/quality"
)

// TestMergeIsolatedFromGPU drives the merge phase with *exact* per-leaf
// clusterings (the sequential reference run on each partition+shadow), so
// any failure is attributable to the summary/merge logic alone. The
// merged global clustering must score >= 0.995 against a global
// sequential run, across partition counts, random tree shapes and both
// datasets.
func TestMergeIsolatedFromGPU(t *testing.T) {
	// The uniform case sits right at the core-density margin
	// (MinPts = 8 vs ~7.5 expected neighbors), maximizing the paper's
	// residual error class: border points whose only core neighbors are
	// shadow-misclassified get written as noise by their owner. The
	// core-point partition stays exact; only those border/noise flips
	// remain, so the floor there is 0.98 rather than 0.995 (the
	// border-reclaim option recovers them — see the mrscan tests).
	cases := []struct {
		name   string
		pts    []geom.Point
		params dbscan.Params
		floor  float64
	}{
		{"twitter", dataset.Twitter(6000, 31), dbscan.Params{Eps: 0.1, MinPts: 10}, 0.995},
		{"sdss", dataset.SDSS(6000, 32), dbscan.Params{Eps: 0.00015, MinPts: 5}, 0.995},
		{"uniform", dataset.Uniform(6000, 33, geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}), dbscan.Params{Eps: 0.1, MinPts: 8}, 0.98},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			global, err := dbscan.Cluster(tc.pts, tc.params, dbscan.IndexGrid)
			if err != nil {
				t.Fatal(err)
			}
			for _, nParts := range []int{2, 5, 9} {
				labels := mergeViaSummaries(t, tc.pts, tc.params, nParts, 41)
				score, err := quality.Score(global.Labels, labels)
				if err != nil {
					t.Fatal(err)
				}
				if score < tc.floor {
					t.Errorf("nParts=%d: merged quality = %.4f, want >= %.3f", nParts, score, tc.floor)
				}
				// The core partition itself must be exact: every quality
				// loss must come from border/noise flips.
				coreSplits, falseMerges := corePartitionDiff(global, labels)
				if coreSplits != 0 || falseMerges != 0 {
					t.Errorf("nParts=%d: core splits=%d falseMerges=%d, want 0/0",
						nParts, coreSplits, falseMerges)
				}
			}
		})
	}
}

// corePartitionDiff counts cluster splits and false merges over core
// points only.
func corePartitionDiff(global *dbscan.Result, labels []int) (splits, falseMerges int) {
	refToGot := map[int]int{}
	gotToRef := map[int]int{}
	for i := range labels {
		if !global.Core[i] || labels[i] < 0 {
			if global.Core[i] {
				splits++ // core point lost entirely
			}
			continue
		}
		r, g := global.Labels[i], labels[i]
		if prev, ok := refToGot[r]; ok && prev != g {
			splits++
		} else {
			refToGot[r] = g
		}
		if prev, ok := gotToRef[g]; ok && prev != r {
			falseMerges++
		} else {
			gotToRef[g] = r
		}
	}
	return splits, falseMerges
}

// mergeViaSummaries partitions pts, clusters each partition exactly,
// merges the summaries through a random tree, and returns global labels
// aligned with pts.
func mergeViaSummaries(t *testing.T, pts []geom.Point, params dbscan.Params, nParts int, treeSeed int64) []int {
	t.Helper()
	g := grid.New(params.Eps)
	h := g.HistogramOf(pts)
	plan, err := partition.MakePlan(g, h, nParts, params.MinPts, true)
	if err != nil {
		t.Fatal(err)
	}
	split, err := partition.Split(plan, pts, partition.SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(treeSeed))

	type leafOut struct {
		owned  []geom.Point
		labels []int
		sums   []*Summary
	}
	leaves := make([]leafOut, nParts)
	for leaf := 0; leaf < nParts; leaf++ {
		combined := append(append([]geom.Point(nil), split.Partitions[leaf]...), split.Shadows[leaf]...)
		res, err := dbscan.Cluster(combined, params, dbscan.IndexGrid)
		if err != nil {
			t.Fatal(err)
		}
		labels32 := make([]int32, len(res.Labels))
		for i, l := range res.Labels {
			labels32[i] = int32(l)
		}
		sums, err := BuildSummaries(g, leaf, combined, len(split.Partitions[leaf]), labels32, res.Core, res.NumClusters)
		if err != nil {
			t.Fatal(err)
		}
		leaves[leaf] = leafOut{
			owned:  split.Partitions[leaf],
			labels: res.Labels[:len(split.Partitions[leaf])],
			sums:   sums,
		}
	}

	// Random progressive merge: repeatedly combine random groups of the
	// outstanding summary lists, as arbitrary tree shapes would.
	groups := make([][]*Summary, nParts)
	for i := range groups {
		groups[i] = leaves[i].sums
	}
	for len(groups) > 1 {
		k := 2 + rng.Intn(3)
		if k > len(groups) {
			k = len(groups)
		}
		merged := Combine(g, params.Eps, groups[:k])
		groups = append([][]*Summary{merged}, groups[k:]...)
	}
	mapping := AssignGlobalIDs(groups[0])

	// Relabel owned points with global IDs, align by point ID.
	byID := make(map[uint64]int, len(pts))
	for leaf := 0; leaf < nParts; leaf++ {
		for i, p := range leaves[leaf].owned {
			l := leaves[leaf].labels[i]
			if l < 0 {
				byID[p.ID] = -1
				continue
			}
			gid, ok := mapping[ClusterKey{Leaf: int32(leaf), Local: int32(l)}]
			if !ok {
				t.Fatalf("leaf %d cluster %d missing from mapping", leaf, l)
			}
			byID[p.ID] = int(gid)
		}
	}
	labels := make([]int, len(pts))
	for i, p := range pts {
		l, ok := byID[p.ID]
		if !ok {
			t.Fatalf("point %d not owned by any leaf", p.ID)
		}
		labels[i] = l
	}
	return labels
}
