package merge

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

const eps = 0.1

var g = grid.New(eps)

func key(leaf, local int32) ClusterKey { return ClusterKey{Leaf: leaf, Local: local} }

// mkSummary builds a summary with reps (core) and non-core points placed
// in their natural cells.
func mkSummary(k ClusterKey, owned map[grid.Coord]bool, reps, ownedNC, shadowNC []geom.Point) *Summary {
	s := &Summary{Key: k, Members: []ClusterKey{k}, Cells: make(map[grid.Coord]*CellData)}
	cell := func(p geom.Point) *CellData {
		c := g.CellOf(p)
		cd := s.Cells[c]
		if cd == nil {
			cd = newCellData()
			cd.Owned = owned[c]
			s.Cells[c] = cd
		}
		return cd
	}
	for _, p := range reps {
		cd := cell(p)
		cd.Reps = append(cd.Reps, p)
	}
	for _, p := range ownedNC {
		cell(p).OwnedNonCore[p.ID] = p
	}
	for _, p := range shadowNC {
		cell(p).ShadowNonCore[p.ID] = p
	}
	return s
}

func TestSelectRepsSmallPassThrough(t *testing.T) {
	cand := []geom.Point{{ID: 3, X: 0.01, Y: 0.01}, {ID: 1, X: 0.02, Y: 0.02}}
	reps := SelectReps(g, grid.Coord{CX: 0, CY: 0}, cand)
	if len(reps) != 2 {
		t.Fatalf("got %d reps, want 2", len(reps))
	}
	if reps[0].ID != 1 || reps[1].ID != 3 {
		t.Errorf("reps not sorted by ID: %v", reps)
	}
}

func TestSelectRepsBoundedAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cell := grid.Coord{CX: 2, CY: 3}
	r := g.CellRect(cell)
	cand := make([]geom.Point, 500)
	for i := range cand {
		cand[i] = geom.Point{
			ID: uint64(i),
			X:  r.MinX + rng.Float64()*r.Width(),
			Y:  r.MinY + rng.Float64()*r.Height(),
		}
	}
	reps := SelectReps(g, cell, cand)
	if len(reps) == 0 || len(reps) > MaxReps {
		t.Fatalf("got %d reps, want 1..%d", len(reps), MaxReps)
	}
	again := SelectReps(g, cell, cand)
	for i := range reps {
		if reps[i] != again[i] {
			t.Fatal("selection not deterministic")
		}
	}
	// Figure 5 invariant: every candidate core point lies within Eps of
	// at least one representative.
	for _, p := range cand {
		ok := false
		for _, rp := range reps {
			if geom.Dist2(p, rp) <= eps*eps {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("point %v farther than Eps from every representative", p)
		}
	}
}

func TestCombineRule1CoreCoreOverlap(t *testing.T) {
	// Two leaves each found a cluster; in the shared cell their core
	// points (here: the same physical point 100) are within Eps.
	shared := geom.Point{ID: 100, X: 0.05, Y: 0.05}
	a := mkSummary(key(0, 0), map[grid.Coord]bool{g.CellOf(shared): true},
		[]geom.Point{shared, {ID: 1, X: 0.02, Y: 0.02}}, nil, nil)
	b := mkSummary(key(1, 0), nil,
		[]geom.Point{shared, {ID: 2, X: 0.08, Y: 0.08}}, nil, nil)
	out := Combine(g, eps, [][]*Summary{{a}, {b}})
	if len(out) != 1 {
		t.Fatalf("Combine produced %d clusters, want 1", len(out))
	}
	if len(out[0].Members) != 2 {
		t.Errorf("merged cluster has %d members, want 2", len(out[0].Members))
	}
	if out[0].Key != key(0, 0) {
		t.Errorf("merged key = %+v, want the smallest member", out[0].Key)
	}
}

func TestCombineNoFalseMergeWhenFar(t *testing.T) {
	a := mkSummary(key(0, 0), nil, []geom.Point{{ID: 1, X: 0.01, Y: 0.01}}, nil, nil)
	b := mkSummary(key(1, 0), nil, []geom.Point{{ID: 2, X: 5, Y: 5}}, nil, nil)
	out := Combine(g, eps, [][]*Summary{{a}, {b}})
	if len(out) != 2 {
		t.Fatalf("Combine produced %d clusters, want 2 (no shared cell)", len(out))
	}
}

func TestCombineSameCellButBeyondEps(t *testing.T) {
	// Same cell, but reps farther than Eps apart: cell (0,0) with eps 0.1
	// cannot hold two points > 0.1 apart... use a bigger grid cell by
	// querying with eps smaller than the cell: reps at opposite corners
	// of cell (0,0) are ~0.14 apart — no merge.
	a := mkSummary(key(0, 0), nil, []geom.Point{{ID: 1, X: 0.001, Y: 0.001}}, nil, nil)
	b := mkSummary(key(1, 0), nil, []geom.Point{{ID: 2, X: 0.099, Y: 0.099}}, nil, nil)
	out := Combine(g, eps, [][]*Summary{{a}, {b}})
	if len(out) != 2 {
		t.Fatalf("corner-to-corner reps (dist ~0.139 > eps) must not merge; got %d clusters", len(out))
	}
}

func TestCombineRule2NonCoreCoreOverlap(t *testing.T) {
	// Point 50 sits in a cell owned by leaf 1. Leaf 1 classified it core
	// (it is a representative of cluster B). Leaf 0's shadow view
	// undercounted its neighbors and classified it non-core, so cluster A
	// carries it as ShadowNonCore. Rule 2 must merge A and B.
	p50 := geom.Point{ID: 50, X: 0.15, Y: 0.05} // cell (1,0)
	a := mkSummary(key(0, 0), map[grid.Coord]bool{{CX: 0, CY: 0}: true},
		[]geom.Point{{ID: 1, X: 0.08, Y: 0.05}}, // core in owned cell (0,0)
		nil,
		[]geom.Point{p50}, // shadow view: non-core
	)
	b := mkSummary(key(1, 0), map[grid.Coord]bool{{CX: 1, CY: 0}: true},
		[]geom.Point{p50, {ID: 51, X: 0.18, Y: 0.05}},
		nil, nil,
	)
	out := Combine(g, eps, [][]*Summary{{a}, {b}})
	if len(out) != 1 {
		t.Fatalf("rule 2 must merge the clusters; got %d", len(out))
	}
}

func TestCombineRule2RequiresOwnerSilence(t *testing.T) {
	// Same geometry, but the owner also classified point 50 as non-core
	// (it genuinely is): cluster B carries it as OwnedNonCore. The diff
	// removes it, so no merge happens (two clusters sharing a border
	// point stay separate).
	p50 := geom.Point{ID: 50, X: 0.15, Y: 0.05}
	a := mkSummary(key(0, 0), map[grid.Coord]bool{{CX: 0, CY: 0}: true},
		[]geom.Point{{ID: 1, X: 0.08, Y: 0.05}},
		nil,
		[]geom.Point{p50},
	)
	b := mkSummary(key(1, 0), map[grid.Coord]bool{{CX: 1, CY: 0}: true},
		[]geom.Point{{ID: 51, X: 0.16, Y: 0.05}},
		[]geom.Point{p50}, // owner says: non-core
		nil,
	)
	out := Combine(g, eps, [][]*Summary{{a}, {b}})
	if len(out) != 2 {
		t.Fatalf("border-sharing clusters must not merge; got %d", len(out))
	}
}

func TestCombineRule3DropsDuplicates(t *testing.T) {
	p50 := geom.Point{ID: 50, X: 0.15, Y: 0.05}
	a := mkSummary(key(0, 0), map[grid.Coord]bool{{CX: 0, CY: 0}: true},
		[]geom.Point{{ID: 1, X: 0.08, Y: 0.05}}, nil, []geom.Point{p50})
	b := mkSummary(key(1, 0), map[grid.Coord]bool{{CX: 1, CY: 0}: true},
		[]geom.Point{{ID: 51, X: 0.16, Y: 0.05}}, []geom.Point{p50}, nil)
	out := Combine(g, eps, [][]*Summary{{a}, {b}})
	for _, s := range out {
		if s.Key == key(0, 0) {
			cd := s.Cells[grid.Coord{CX: 1, CY: 0}]
			if cd != nil && len(cd.ShadowNonCore) != 0 {
				t.Errorf("duplicate shadow non-core point must be dropped, still have %v", cd.ShadowNonCore)
			}
		}
	}
}

func TestCombineTransitive(t *testing.T) {
	// A overlaps B, B overlaps C in different cells: all three fuse.
	p1 := geom.Point{ID: 1, X: 0.05, Y: 0.05}
	p2 := geom.Point{ID: 2, X: 0.15, Y: 0.05}
	a := mkSummary(key(0, 0), nil, []geom.Point{p1}, nil, nil)
	b := mkSummary(key(1, 0), nil, []geom.Point{p1, p2}, nil, nil)
	c := mkSummary(key(2, 0), nil, []geom.Point{p2}, nil, nil)
	out := Combine(g, eps, [][]*Summary{{a}, {b}, {c}})
	if len(out) != 1 {
		t.Fatalf("transitive merge produced %d clusters, want 1", len(out))
	}
	if len(out[0].Members) != 3 {
		t.Errorf("members = %v, want 3 keys", out[0].Members)
	}
}

func TestCombineProgressiveEqualsFlat(t *testing.T) {
	// Merging {A,B} then {AB, C} must equal merging {A,B,C} at once.
	p1 := geom.Point{ID: 1, X: 0.05, Y: 0.05}
	p2 := geom.Point{ID: 2, X: 0.15, Y: 0.05}
	mk := func() (a, b, c *Summary) {
		a = mkSummary(key(0, 0), nil, []geom.Point{p1}, nil, nil)
		b = mkSummary(key(1, 0), nil, []geom.Point{p1, p2}, nil, nil)
		c = mkSummary(key(2, 0), nil, []geom.Point{p2}, nil, nil)
		return
	}
	a1, b1, c1 := mk()
	flat := Combine(g, eps, [][]*Summary{{a1}, {b1}, {c1}})
	a2, b2, c2 := mk()
	lower := Combine(g, eps, [][]*Summary{{a2}, {b2}})
	staged := Combine(g, eps, [][]*Summary{lower, {c2}})
	if len(flat) != len(staged) {
		t.Fatalf("flat %d clusters vs staged %d", len(flat), len(staged))
	}
	fm := AssignGlobalIDs(flat)
	sm := AssignGlobalIDs(staged)
	if len(fm) != len(sm) {
		t.Fatalf("mapping sizes differ: %d vs %d", len(fm), len(sm))
	}
	for k, v := range fm {
		if sm[k] != v {
			t.Errorf("key %+v maps to %d flat, %d staged", k, v, sm[k])
		}
	}
}

func TestCombineRepsStayBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cell := grid.Coord{CX: 0, CY: 0}
	r := g.CellRect(cell)
	var groups [][]*Summary
	for leaf := int32(0); leaf < 10; leaf++ {
		reps := make([]geom.Point, 8)
		for i := range reps {
			reps[i] = geom.Point{
				ID: uint64(leaf)*100 + uint64(i),
				X:  r.MinX + rng.Float64()*r.Width(),
				Y:  r.MinY + rng.Float64()*r.Height(),
			}
		}
		groups = append(groups, []*Summary{mkSummary(key(leaf, 0), nil, reps, nil, nil)})
	}
	out := Combine(g, eps, groups)
	if len(out) != 1 {
		t.Fatalf("all clusters share the cell and are within eps; got %d", len(out))
	}
	cd := out[0].Cells[cell]
	if len(cd.Reps) > MaxReps {
		t.Errorf("fused cell carries %d reps, max %d", len(cd.Reps), MaxReps)
	}
}

func TestBuildSummaries(t *testing.T) {
	pts := []geom.Point{
		{ID: 0, X: 0.05, Y: 0.05}, // owned, core, cluster 0
		{ID: 1, X: 0.06, Y: 0.05}, // owned, non-core border, cluster 0
		{ID: 2, X: 0.5, Y: 0.5},   // owned, noise
		{ID: 3, X: 0.15, Y: 0.05}, // shadow, core, cluster 0
		{ID: 4, X: 0.16, Y: 0.05}, // shadow, non-core border, cluster 0
	}
	labels := []int32{0, 0, -1, 0, 0}
	core := []bool{true, false, false, true, false}
	sums, err := BuildSummaries(g, 7, pts, 3, labels, core, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 {
		t.Fatalf("got %d summaries, want 1", len(sums))
	}
	s := sums[0]
	if s.Key != key(7, 0) {
		t.Errorf("Key = %+v", s.Key)
	}
	c00 := s.Cells[grid.Coord{CX: 0, CY: 0}]
	if c00 == nil || !c00.Owned {
		t.Fatalf("cell (0,0) must be present and owned: %+v", c00)
	}
	if len(c00.Reps) != 1 || c00.Reps[0].ID != 0 {
		t.Errorf("cell (0,0) reps = %v", c00.Reps)
	}
	if _, ok := c00.OwnedNonCore[1]; !ok {
		t.Error("point 1 must be owned non-core")
	}
	c10 := s.Cells[grid.Coord{CX: 1, CY: 0}]
	if c10 == nil || c10.Owned {
		t.Fatalf("cell (1,0) must be present and shadow: %+v", c10)
	}
	if len(c10.Reps) != 1 || c10.Reps[0].ID != 3 {
		t.Errorf("cell (1,0) reps = %v", c10.Reps)
	}
	if _, ok := c10.ShadowNonCore[4]; !ok {
		t.Error("point 4 must be shadow non-core")
	}
	if s.WireSize() <= 0 {
		t.Error("WireSize must be positive")
	}
}

func TestBuildSummariesValidation(t *testing.T) {
	pts := []geom.Point{{ID: 0}}
	if _, err := BuildSummaries(g, 0, pts, 0, []int32{0, 0}, []bool{true}, 1); err == nil {
		t.Error("mismatched labels length must fail")
	}
	if _, err := BuildSummaries(g, 0, pts, 5, []int32{0}, []bool{true}, 1); err == nil {
		t.Error("out-of-range ownedCount must fail")
	}
	if _, err := BuildSummaries(g, 0, pts, 1, []int32{3}, []bool{true}, 1); err == nil {
		t.Error("out-of-range label must fail")
	}
}

func TestAssignGlobalIDs(t *testing.T) {
	a := &Summary{Key: key(0, 0), Members: []ClusterKey{key(0, 0), key(1, 2)}}
	b := &Summary{Key: key(0, 1), Members: []ClusterKey{key(0, 1)}}
	m := AssignGlobalIDs([]*Summary{b, a})
	if m[key(0, 0)] != m[key(1, 2)] {
		t.Error("members of one cluster must share a global ID")
	}
	if m[key(0, 0)] == m[key(0, 1)] {
		t.Error("distinct clusters must get distinct IDs")
	}
	if m[key(0, 0)] != 0 || m[key(0, 1)] != 1 {
		t.Errorf("IDs must be dense in key order: %v", m)
	}
}
