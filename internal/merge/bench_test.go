package merge

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/partition"
)

// benchSummaries builds realistic per-leaf summaries from exact local
// clusterings of a partitioned Twitter dataset.
func benchSummaries(b *testing.B, n, nParts int) [][]*Summary {
	b.Helper()
	params := dbscan.Params{Eps: 0.1, MinPts: 40}
	pts := dataset.Twitter(n, 4)
	gg := grid.New(params.Eps)
	h := gg.HistogramOf(pts)
	plan, err := partition.MakePlan(gg, h, nParts, params.MinPts, true)
	if err != nil {
		b.Fatal(err)
	}
	split, err := partition.Split(plan, pts, partition.SplitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	groups := make([][]*Summary, nParts)
	for leaf := 0; leaf < nParts; leaf++ {
		combined := append(append([]geom.Point(nil), split.Partitions[leaf]...), split.Shadows[leaf]...)
		res, err := dbscan.Cluster(combined, params, dbscan.IndexGrid)
		if err != nil {
			b.Fatal(err)
		}
		labels := make([]int32, len(res.Labels))
		for i, l := range res.Labels {
			labels[i] = int32(l)
		}
		sums, err := BuildSummaries(gg, leaf, combined, len(split.Partitions[leaf]), labels, res.Core, res.NumClusters)
		if err != nil {
			b.Fatal(err)
		}
		groups[leaf] = sums
	}
	return groups
}

func BenchmarkCombine(b *testing.B) {
	for _, nParts := range []int{4, 16} {
		groups := benchSummaries(b, 50_000, nParts)
		b.Run(fmt.Sprintf("leaves=%d", nParts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Clone the summaries each round: Combine mutates them.
				fresh := benchClone(groups)
				out := Combine(grid.New(0.1), 0.1, fresh)
				if len(out) == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
}

func benchClone(groups [][]*Summary) [][]*Summary {
	out := make([][]*Summary, len(groups))
	for gi, grp := range groups {
		out[gi] = make([]*Summary, len(grp))
		for si, s := range grp {
			c := &Summary{Key: s.Key, Members: append([]ClusterKey(nil), s.Members...), Cells: make(map[grid.Coord]*CellData, len(s.Cells))}
			for coord, cd := range s.Cells {
				nc := newCellData()
				nc.Owned = cd.Owned
				nc.Reps = append([]geom.Point(nil), cd.Reps...)
				for id, p := range cd.OwnedNonCore {
					nc.OwnedNonCore[id] = p
				}
				for id, p := range cd.ShadowNonCore {
					nc.ShadowNonCore[id] = p
				}
				c.Cells[coord] = nc
			}
			out[gi][si] = c
		}
	}
	return out
}
