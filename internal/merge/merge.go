// Package merge implements Mr. Scan's merge phase (paper §3.3): combining
// the clusters found independently on each leaf into global clusters,
// using only a small, bounded summary of each cluster instead of its full
// point set.
//
// A leaf summarizes each local cluster per grid cell: at most 8
// representative core points (the cores nearest the cell's corners and
// side midpoints — Figure 5 shows these suffice to detect any core-point
// overlap) plus the cluster's non-core points in the cell, tagged by
// whether the cell is owned or shadow from that leaf's view.
//
// Internal tree nodes merge the summaries of their children with the
// paper's three overlap rules:
//
//  1. Core/core overlap: a representative of one cluster within Eps of a
//     representative of another in a shared cell — the clusters share a
//     core point, merge.
//  2. Non-core/core overlap: a point classified non-core only by shadow
//     copies (the cell's owner did not classify it non-core, so the owner
//     saw it as core) lying within Eps of an owner-side representative —
//     merge. This repairs the shadow region's conservative core
//     classification (Figure 7).
//  3. Non-core/non-core overlap: duplicate non-core points in shadow
//     copies are dropped (no merge).
//
// Merging is progressive: each level of the tree combines and re-reduces
// summaries, so the root only ever sees per-cluster-per-cell summaries,
// never whole clusters.
package merge

import (
	"fmt"
	"sort"

	"repro/internal/dsu"
	"repro/internal/geom"
	"repro/internal/grid"
)

// MaxReps is the number of representative points kept per cluster per
// grid cell (§3.3.1: "We have determined that eight points can represent
// the core points of a grid cell of arbitrary density").
const MaxReps = 8

// ClusterKey names a leaf-local cluster globally.
type ClusterKey struct {
	Leaf  int32
	Local int32
}

// Less orders keys (by leaf, then local id).
func (k ClusterKey) Less(o ClusterKey) bool {
	if k.Leaf != o.Leaf {
		return k.Leaf < o.Leaf
	}
	return k.Local < o.Local
}

// CellData is one cluster's presence in one grid cell.
type CellData struct {
	// Reps are at most MaxReps representative core points.
	Reps []geom.Point
	// OwnedNonCore holds non-core member points classified by the cell's
	// owner (complete-information) view, keyed by point ID.
	OwnedNonCore map[uint64]geom.Point
	// ShadowNonCore holds non-core member points classified by shadow
	// (incomplete-information) views.
	ShadowNonCore map[uint64]geom.Point
	// Owned reports whether this summary includes the owner leaf's copy
	// of the cell.
	Owned bool
}

func newCellData() *CellData {
	return &CellData{
		OwnedNonCore:  make(map[uint64]geom.Point),
		ShadowNonCore: make(map[uint64]geom.Point),
	}
}

// Points returns the number of points carried for the cell.
func (cd *CellData) Points() int {
	return len(cd.Reps) + len(cd.OwnedNonCore) + len(cd.ShadowNonCore)
}

// Summary is one cluster's merge-phase representation.
type Summary struct {
	// Key identifies the summary; after merging it is the smallest
	// member key.
	Key ClusterKey
	// Members lists every original (leaf, local) cluster merged into
	// this summary — the sweep phase maps each back to the global ID.
	Members []ClusterKey
	// Cells maps grid cells to the cluster's per-cell data.
	Cells map[grid.Coord]*CellData
}

// WireSize estimates the summary's serialized size in bytes, for the
// overlay cost model.
func (s *Summary) WireSize() int64 {
	var n int64 = 8 + int64(len(s.Members))*8
	for range s.Cells {
		n += 8
	}
	for _, cd := range s.Cells {
		n += int64(cd.Points()) * 24
	}
	return n
}

// BuildSummaries converts one leaf's clustering result into summaries.
// pts are the leaf's points — the partition's owned points first, then
// the shadow points: ownedCount says how many are owned. labels and core
// are gdbscan's output over pts; numClusters is its cluster count.
func BuildSummaries(g grid.Grid, leaf int, pts []geom.Point, ownedCount int, labels []int32, core []bool, numClusters int) ([]*Summary, error) {
	if len(pts) != len(labels) || len(pts) != len(core) {
		return nil, fmt.Errorf("merge: %d points with %d labels / %d core flags", len(pts), len(labels), len(core))
	}
	if ownedCount < 0 || ownedCount > len(pts) {
		return nil, fmt.Errorf("merge: ownedCount %d out of range", ownedCount)
	}
	sums := make([]*Summary, numClusters)
	for i := range sums {
		key := ClusterKey{Leaf: int32(leaf), Local: int32(i)}
		sums[i] = &Summary{Key: key, Members: []ClusterKey{key}, Cells: make(map[grid.Coord]*CellData)}
	}
	// Collect per (cluster, cell) core candidates for rep selection.
	type sc struct {
		cluster int32
		cell    grid.Coord
	}
	coreCandidates := make(map[sc][]geom.Point)
	for i, p := range pts {
		l := labels[i]
		if l < 0 {
			continue // noise
		}
		if int(l) >= numClusters {
			return nil, fmt.Errorf("merge: label %d out of range (%d clusters)", l, numClusters)
		}
		c := g.CellOf(p)
		cd := sums[l].Cells[c]
		if cd == nil {
			cd = newCellData()
			sums[l].Cells[c] = cd
		}
		owned := i < ownedCount
		if owned {
			cd.Owned = true
		}
		if core[i] {
			coreCandidates[sc{l, c}] = append(coreCandidates[sc{l, c}], p)
		} else if owned {
			cd.OwnedNonCore[p.ID] = p
		} else {
			cd.ShadowNonCore[p.ID] = p
		}
	}
	for k, cand := range coreCandidates {
		sums[k.cluster].Cells[k.cell].Reps = SelectReps(g, k.cell, cand)
	}
	// Drop clusters with no presence (can happen if every member was a
	// shadow point that another label claimed — keep them anyway if they
	// have cells; empty ones would confuse upstream merging).
	out := sums[:0]
	for _, s := range sums {
		if len(s.Cells) > 0 {
			out = append(out, s)
		}
	}
	return out, nil
}

// SelectReps picks at most MaxReps representative points: for each of the
// cell's 8 anchors, the candidate core point nearest it (deduplicated by
// ID). The Figure 5 invariant follows: every core point of the cluster in
// this cell lies within Eps of at least one selected representative.
func SelectReps(g grid.Grid, cell grid.Coord, cand []geom.Point) []geom.Point {
	if len(cand) <= MaxReps {
		out := append([]geom.Point(nil), cand...)
		sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
		return out
	}
	anchors := g.Anchors(cell)
	chosen := make(map[uint64]geom.Point, MaxReps)
	for _, a := range anchors {
		best := -1
		bestD := 0.0
		for i, p := range cand {
			d := geom.Dist2(p, a)
			if best < 0 || d < bestD || (d == bestD && p.ID < cand[best].ID) {
				best, bestD = i, d
			}
		}
		chosen[cand[best].ID] = cand[best]
	}
	out := make([]geom.Point, 0, len(chosen))
	for _, p := range chosen {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Combine merges the summary groups arriving at one tree node (one group
// per child) and returns the reduced summary list. It applies the three
// overlap rules per shared cell and fuses merged clusters' summaries.
func Combine(g grid.Grid, eps float64, groups [][]*Summary) []*Summary {
	var all []*Summary
	for _, grp := range groups {
		all = append(all, grp...)
	}
	if len(all) <= 1 {
		return all
	}
	eps2 := eps * eps

	// Cell index over all incoming summaries.
	type ref struct {
		sum *Summary
		cd  *CellData
	}
	cellIndex := make(map[grid.Coord][]ref)
	for _, s := range all {
		for c, cd := range s.Cells {
			cellIndex[c] = append(cellIndex[c], ref{s, cd})
		}
	}

	uf := dsu.NewKeyed[ClusterKey]()
	for _, s := range all {
		uf.Add(s.Key)
	}
	for _, refs := range cellIndex {
		if len(refs) < 2 {
			continue
		}
		// Rule 1: core/core overlap via representatives.
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				if uf.Same(refs[i].sum.Key, refs[j].sum.Key) {
					continue
				}
				if repsWithinEps(refs[i].cd.Reps, refs[j].cd.Reps, eps2) {
					uf.Union(refs[i].sum.Key, refs[j].sum.Key)
				}
			}
		}
		// Rule 2: non-core/core overlap. Points non-core only in shadow
		// views (the owner saw them as core, or had no record) within Eps
		// of an owner-side representative merge the clusters.
		ownerNonCore := make(map[uint64]bool)
		for _, r := range refs {
			for id := range r.cd.OwnedNonCore {
				ownerNonCore[id] = true
			}
		}
		for i := 0; i < len(refs); i++ {
			if len(refs[i].cd.ShadowNonCore) == 0 {
				continue
			}
			for j := 0; j < len(refs); j++ {
				if i == j || !refs[j].cd.Owned || len(refs[j].cd.Reps) == 0 {
					continue
				}
				if uf.Same(refs[i].sum.Key, refs[j].sum.Key) {
					continue
				}
				for id, p := range refs[i].cd.ShadowNonCore {
					if ownerNonCore[id] {
						continue // genuinely non-core: rule 3 territory
					}
					if pointNearReps(p, refs[j].cd.Reps, eps2) {
						uf.Union(refs[i].sum.Key, refs[j].sum.Key)
						break
					}
				}
			}
		}
		// Rule 3: drop duplicate non-core points from shadow copies
		// ("we resolve this case by removing all duplicate non-core
		// points from the shadow region").
		for _, r := range refs {
			for id := range r.cd.ShadowNonCore {
				if ownerNonCore[id] {
					delete(r.cd.ShadowNonCore, id)
				}
			}
		}
	}

	// Fuse summaries by union-find root.
	byRoot := make(map[ClusterKey][]*Summary)
	for _, s := range all {
		root := uf.Find(s.Key)
		byRoot[root] = append(byRoot[root], s)
	}
	out := make([]*Summary, 0, len(byRoot))
	for _, members := range byRoot {
		out = append(out, fuse(g, members))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key.Less(out[b].Key) })
	return out
}

// fuse combines the summaries of one merged cluster.
func fuse(g grid.Grid, sums []*Summary) *Summary {
	if len(sums) == 1 {
		return sums[0]
	}
	merged := &Summary{Cells: make(map[grid.Coord]*CellData)}
	minKey := sums[0].Key
	for _, s := range sums {
		if s.Key.Less(minKey) {
			minKey = s.Key
		}
		merged.Members = append(merged.Members, s.Members...)
		for c, cd := range s.Cells {
			dst := merged.Cells[c]
			if dst == nil {
				dst = newCellData()
				merged.Cells[c] = dst
			}
			dst.Owned = dst.Owned || cd.Owned
			dst.Reps = append(dst.Reps, cd.Reps...)
			for id, p := range cd.OwnedNonCore {
				dst.OwnedNonCore[id] = p
				// A point non-core in the owner's view trumps any shadow
				// classification (rule 3 within the fused cluster).
				delete(dst.ShadowNonCore, id)
			}
			for id, p := range cd.ShadowNonCore {
				if _, dup := dst.OwnedNonCore[id]; !dup {
					dst.ShadowNonCore[id] = p
				}
			}
		}
	}
	merged.Key = minKey
	sort.Slice(merged.Members, func(a, b int) bool { return merged.Members[a].Less(merged.Members[b]) })
	// Re-reduce representatives so upstream payloads stay bounded; the
	// Figure 5 invariant is preserved under re-selection from the union.
	for c, cd := range merged.Cells {
		if len(cd.Reps) > MaxReps {
			cd.Reps = SelectReps(g, c, dedupByID(cd.Reps))
		}
	}
	return merged
}

func dedupByID(pts []geom.Point) []geom.Point {
	seen := make(map[uint64]bool, len(pts))
	out := pts[:0]
	for _, p := range pts {
		if !seen[p.ID] {
			seen[p.ID] = true
			out = append(out, p)
		}
	}
	return out
}

func repsWithinEps(a, b []geom.Point, eps2 float64) bool {
	for _, p := range a {
		for _, q := range b {
			if geom.Dist2(p, q) <= eps2 {
				return true
			}
		}
	}
	return false
}

func pointNearReps(p geom.Point, reps []geom.Point, eps2 float64) bool {
	for _, r := range reps {
		if geom.Dist2(p, r) <= eps2 {
			return true
		}
	}
	return false
}

// BorderClaims extracts, from the final merged summaries, the border
// memberships observed only by shadow views: point IDs that some leaf
// saw within Eps of one of its genuine core points, mapped to that
// cluster's global ID (smallest ID on conflict, mirroring DBSCAN's
// first-claimer order dependence).
//
// This powers the optional border-reclaim improvement: a point whose
// only core neighbors live in its owner's *shadow* can be misclassified
// noise by the owner (the owner undercounts shadow points' neighborhoods
// — the point-level analogue of Figure 7). The claim tells the owner the
// point is in fact a border member. The paper's pipeline does not feed
// this information back (its quality floor is 0.995, not 1.0); with
// reclaim enabled the output moves closer to exact DBSCAN.
func BorderClaims(sums []*Summary, mapping map[ClusterKey]int32) map[uint64]int32 {
	claims := make(map[uint64]int32)
	for _, s := range sums {
		gid, ok := mapping[s.Key]
		if !ok {
			continue
		}
		for _, cd := range s.Cells {
			for id := range cd.ShadowNonCore {
				if prev, dup := claims[id]; !dup || gid < prev {
					claims[id] = gid
				}
			}
		}
	}
	return claims
}

// AssignGlobalIDs gives each final cluster a dense global ID (§3.4: "a
// globally unique identifier is assigned to each cluster") and returns
// the mapping from every original (leaf, local) cluster key.
func AssignGlobalIDs(sums []*Summary) map[ClusterKey]int32 {
	ordered := append([]*Summary(nil), sums...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Key.Less(ordered[b].Key) })
	mapping := make(map[ClusterKey]int32)
	for id, s := range ordered {
		for _, m := range s.Members {
			mapping[m] = int32(id)
		}
	}
	return mapping
}
