package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestChargeAndQuery(t *testing.T) {
	c := New()
	c.Charge("gpu", 2*time.Second)
	c.Charge("gpu", time.Second)
	c.Charge("disk", 5*time.Second)
	if got := c.Resource("gpu"); got != 3*time.Second {
		t.Errorf("gpu = %v, want 3s", got)
	}
	if got := c.Events("gpu"); got != 2 {
		t.Errorf("gpu events = %d, want 2", got)
	}
	if got := c.Resource("missing"); got != 0 {
		t.Errorf("missing resource = %v, want 0", got)
	}
}

func TestNowIsMaxOverResources(t *testing.T) {
	c := New()
	c.Charge("a", 3*time.Second)
	c.Charge("b", 7*time.Second)
	c.Charge("c", time.Second)
	if got := c.Now(); got != 7*time.Second {
		t.Errorf("Now = %v, want 7s (resources run in parallel)", got)
	}
	if got := c.Total(); got != 11*time.Second {
		t.Errorf("Total = %v, want 11s (serialized sum)", got)
	}
}

func TestNegativeChargeIgnored(t *testing.T) {
	c := New()
	c.Charge("x", -time.Second)
	if got := c.Resource("x"); got != 0 {
		t.Errorf("negative charge accumulated %v", got)
	}
	if got := c.Events("x"); got != 1 {
		t.Errorf("event count = %d, want 1 (the call still counts)", got)
	}
}

func TestSnapshotSorted(t *testing.T) {
	c := New()
	c.Charge("zeta", time.Second)
	c.Charge("alpha", 2*time.Second)
	c.Charge("mid", 3*time.Second)
	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d rows, want 3", len(snap))
	}
	if snap[0].Name != "alpha" || snap[2].Name != "zeta" {
		t.Errorf("snapshot not sorted: %v", snap)
	}
	if snap[0].Busy != 2*time.Second || snap[0].Events != 1 {
		t.Errorf("alpha row = %+v", snap[0])
	}
	if snap[0].String() == "" {
		t.Error("empty row string")
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Charge("x", time.Second)
	c.Reset()
	if c.Now() != 0 || len(c.Snapshot()) != 0 {
		t.Error("Reset must clear all state")
	}
}

func TestConcurrentCharges(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Charge("shared", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Resource("shared"); got != 8000*time.Microsecond {
		t.Errorf("shared = %v, want 8ms", got)
	}
	if got := c.Events("shared"); got != 8000 {
		t.Errorf("events = %d, want 8000", got)
	}
}

func TestBytesDuration(t *testing.T) {
	if got := BytesDuration(1e9, 1e9); got != time.Second {
		t.Errorf("1GB at 1GB/s = %v, want 1s", got)
	}
	if got := BytesDuration(100, 0); got != 0 {
		t.Errorf("zero bandwidth = %v, want 0 (model disabled)", got)
	}
	if got := BytesDuration(-5, 1e9); got != 0 {
		t.Errorf("negative bytes = %v, want 0", got)
	}
	if got := BytesDuration(5e8, 1e9); got != 500*time.Millisecond {
		t.Errorf("0.5GB at 1GB/s = %v, want 500ms", got)
	}
}
