// Package simclock provides simulated-time accounting shared by the
// hardware substrates (gpusim, lustre, mrnet).
//
// Mr. Scan's evaluation runs on hardware we cannot reproduce (Titan's K20
// GPUs, Lustre, Cray ALPS). Each substrate simulator executes real work in
// wall time but *charges* modeled costs — transfer latencies, seek
// penalties, startup ramps — to a simulated clock. Experiments report both:
// wall time for what really ran, simulated time for what the modeled
// hardware would have added.
//
// A Clock tracks per-resource serialized time: charging Δt to a resource
// advances that resource's timeline, and the clock's Now is the max over
// resources, which models independent devices operating in parallel.
package simclock

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock accumulates simulated time across named resources. The zero value
// is not usable; construct with New. Clock is safe for concurrent use.
type Clock struct {
	mu        sync.Mutex
	resources map[string]time.Duration
	events    map[string]int64
}

// New returns an empty clock.
func New() *Clock {
	return &Clock{
		resources: make(map[string]time.Duration),
		events:    make(map[string]int64),
	}
}

// Charge adds d of busy time to the named resource and counts one event.
// Negative charges are ignored.
func (c *Clock) Charge(resource string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.resources[resource] += d
	c.events[resource]++
	c.mu.Unlock()
}

// Resource returns the accumulated busy time of one resource.
func (c *Clock) Resource(resource string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resources[resource]
}

// Events returns the number of Charge calls made against a resource.
func (c *Clock) Events(resource string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events[resource]
}

// Now returns the simulated time: the maximum busy time over all
// resources (resources run in parallel with each other).
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max time.Duration
	for _, d := range c.resources {
		if d > max {
			max = d
		}
	}
	return max
}

// Total returns the sum of busy time over all resources (as if fully
// serialized).
func (c *Clock) Total() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum time.Duration
	for _, d := range c.resources {
		sum += d
	}
	return sum
}

// Snapshot returns a sorted copy of per-resource busy times.
func (c *Clock) Snapshot() []ResourceTime {
	c.mu.Lock()
	out := make([]ResourceTime, 0, len(c.resources))
	for name, d := range c.resources {
		out = append(out, ResourceTime{Name: name, Busy: d, Events: c.events[name]})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset clears all accumulated time and events.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.resources = make(map[string]time.Duration)
	c.events = make(map[string]int64)
	c.mu.Unlock()
}

// ResourceTime is one row of a Snapshot.
type ResourceTime struct {
	Name   string
	Busy   time.Duration
	Events int64
}

// String formats the row for experiment logs.
func (r ResourceTime) String() string {
	return fmt.Sprintf("%-24s %12v (%d events)", r.Name, r.Busy, r.Events)
}

// BytesDuration converts a byte count at a bandwidth (bytes/second) into a
// duration. A non-positive bandwidth yields zero (cost model disabled).
func BytesDuration(bytes int64, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bytesPerSec * float64(time.Second))
}
