package lustre

import (
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/health"
)

// OSTFaultSite names the per-OST fault site ("lustre.ost.<i>") consulted
// by chargeIO for degrade rules: arming a degrade rule there makes that
// OST limp — every chunk charged to it costs the degrade factor more —
// without erroring, the gray failure mode of a sick storage target.
func OSTFaultSite(ost int) faultinject.Site {
	return faultinject.Site(fmt.Sprintf("lustre.ost.%d", ost))
}

// ostComponent names the health-tracker component for an OST.
func ostComponent(ost int) string {
	return fmt.Sprintf("ost.%d", ost)
}

// EnableOSTHealth turns on per-OST latency scoring: every chunk charged
// by chargeIO feeds a health tracker keyed "ost.<i>", normalized per MiB
// so chunk sizes don't skew the fleet comparison. A persistently slow
// OST is quarantined by the tracker, and segment placement (HealthyOSTs)
// steers new shard files away from it.
func (fs *FS) EnableOSTHealth(cfg health.Config) *health.Tracker {
	t := health.New(cfg)
	fs.mu.Lock()
	fs.ostHealth = t
	t.SetTelemetry(fs.hub)
	fs.mu.Unlock()
	return t
}

// OSTHealth returns the tracker installed by EnableOSTHealth, or nil.
func (fs *FS) OSTHealth() *health.Tracker {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ostHealth
}

// SetRetryBudget installs the shared retry budget consulted before an
// integrity reread heals a transient read corruption. When the budget is
// exhausted the heal is denied and the read fails loudly with
// ErrCorruptData wrapping health.ErrBudgetExhausted.
func (fs *FS) SetRetryBudget(b *health.Budget) {
	fs.mu.Lock()
	fs.budget = b
	fs.mu.Unlock()
}

// HealthyOSTs lists the OSTs currently fit for new file placement: all
// of them when OST health tracking is disabled (nil result) or none are
// quarantined, otherwise the non-quarantined subset. If every OST were
// quarantined the full set is returned — placement must always have a
// target.
func (fs *FS) HealthyOSTs() []int {
	fs.mu.Lock()
	tracker := fs.ostHealth
	fs.mu.Unlock()
	if tracker == nil {
		return nil
	}
	healthy := make([]int, 0, fs.cfg.OSTs)
	for i := 0; i < fs.cfg.OSTs; i++ {
		if !tracker.Quarantined(ostComponent(i)) {
			healthy = append(healthy, i)
		}
	}
	if len(healthy) == 0 {
		for i := 0; i < fs.cfg.OSTs; i++ {
			healthy = append(healthy, i)
		}
	}
	return healthy
}

// CreateWithOSTs is Create with an explicit OST layout: the file stripes
// round-robin over osts instead of all OSTs, the per-file equivalent of
// a real Lustre stripe offset + count. Out-of-range entries are dropped;
// an empty (or fully dropped) list falls back to the default layout.
// Existing files and the default Create keep the exact legacy layout, so
// simulated costs of established paths are unchanged.
func (fs *FS) CreateWithOSTs(name string, osts []int) *Handle {
	valid := make([]int, 0, len(osts))
	for _, o := range osts {
		if o >= 0 && o < fs.cfg.OSTs {
			valid = append(valid, o)
		}
	}
	if len(valid) == 0 {
		valid = nil
	}
	h := fs.Create(name)
	h.f.osts = valid
	return h
}

// FileOSTs reports the explicit OST layout of a file, or nil for the
// default round-robin layout (or a missing file).
func (fs *FS) FileOSTs(name string) []int {
	fs.mu.Lock()
	f := fs.files[name]
	fs.mu.Unlock()
	if f == nil || len(f.osts) == 0 {
		return nil
	}
	out := make([]int, len(f.osts))
	copy(out, f.osts)
	return out
}
