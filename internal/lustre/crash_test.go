package lustre

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func readBack(t *testing.T, fs *FS, name string) []byte {
	t.Helper()
	h, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %q: %v", name, err)
	}
	b := make([]byte, h.Size())
	if len(b) == 0 {
		return b
	}
	if _, err := h.ReadAt(b, 0); err != nil {
		t.Fatalf("read %q: %v", name, err)
	}
	return b
}

func exists(fs *FS, name string) bool {
	_, err := fs.Open(name)
	return err == nil
}

// TestCrashSimDisabledIsFree: without EnableCrashSim, Sync and SyncDir
// succeed, charge nothing, and track nothing.
func TestCrashSimDisabledIsFree(t *testing.T) {
	fs := New(Titan(), nil)
	h := fs.Create("f")
	if _, err := h.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	before := fs.Clock().Now()
	if err := fs.Sync("f"); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if got := fs.Clock().Now(); got != before {
		t.Fatalf("disabled sync charged simulated time: %v -> %v", before, got)
	}
	if fs.OpCount() != 0 || fs.CrashSimEnabled() {
		t.Fatal("disabled crash sim is tracking operations")
	}
}

// TestSyncedDataSurvivesAnyCrash: fsynced contents and dir-synced names
// survive a power failure at any later point, for every seed.
func TestSyncedDataSurvivesAnyCrash(t *testing.T) {
	payload := bytes.Repeat([]byte("durable!"), 512)
	for seed := int64(1); seed <= 40; seed++ {
		fs := New(Titan(), nil)
		fs.EnableCrashSim(seed)
		h := fs.Create("data")
		if _, err := h.WriteAt(payload, 0); err != nil {
			t.Fatal(err)
		}
		if err := h.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := fs.SyncDir("."); err != nil {
			t.Fatal(err)
		}
		// Unsynced noise after the sync must not disturb it.
		if _, err := fs.Create("noise").WriteAt([]byte("junk"), 0); err != nil {
			t.Fatal(err)
		}
		fs.CrashNow()
		if _, err := fs.Recover(); err != nil {
			t.Fatal(err)
		}
		if got := readBack(t, fs, "data"); !bytes.Equal(got, payload) {
			t.Fatalf("seed %d: synced data lost or torn (%d bytes, want %d)", seed, len(got), len(payload))
		}
	}
}

// TestUnsyncedWritesDropAndTear: without a sync, some seed must lose or
// tear the data — otherwise the model is vacuous.
func TestUnsyncedWritesDropAndTear(t *testing.T) {
	payload := bytes.Repeat([]byte("volatile"), 512)
	damaged := false
	for seed := int64(1); seed <= 20 && !damaged; seed++ {
		fs := New(Titan(), nil)
		fs.EnableCrashSim(seed)
		if _, err := fs.Create("data").WriteAt(payload, 0); err != nil {
			t.Fatal(err)
		}
		fs.CrashNow()
		rpt, err := fs.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if !exists(fs, "data") {
			damaged = true // the create itself did not survive
			continue
		}
		if got := readBack(t, fs, "data"); !bytes.Equal(got, payload) {
			damaged = true
		}
		if rpt.PendingNS == 0 {
			t.Fatalf("seed %d: pending namespace ops not tracked", seed)
		}
	}
	if !damaged {
		t.Fatal("no seed in 1..20 dropped or tore an unsynced write — crash model too forgiving")
	}
}

// TestRenameDurabilityNeedsDirSync: with file sync + dir sync the
// renamed name survives every crash; without the dir sync some seed
// must lose it (the rename was only in the page cache).
func TestRenameDurabilityNeedsDirSync(t *testing.T) {
	payload := []byte("snapshot-contents")
	run := func(seed int64, dirSync bool) (*FS, error) {
		fs := New(Titan(), nil)
		fs.EnableCrashSim(seed)
		h := fs.Create("snap.tmp")
		if _, err := h.WriteAt(payload, 0); err != nil {
			return nil, err
		}
		if err := h.Sync(); err != nil {
			return nil, err
		}
		if err := fs.Rename("snap.tmp", "snap"); err != nil {
			return nil, err
		}
		if dirSync {
			if err := fs.SyncDir("."); err != nil {
				return nil, err
			}
		}
		fs.CrashNow()
		if _, err := fs.Recover(); err != nil {
			return nil, err
		}
		return fs, nil
	}
	for seed := int64(1); seed <= 40; seed++ {
		fs, err := run(seed, true)
		if err != nil {
			t.Fatal(err)
		}
		if !exists(fs, "snap") {
			t.Fatalf("seed %d: dir-synced rename lost", seed)
		}
		if got := readBack(t, fs, "snap"); !bytes.Equal(got, payload) {
			t.Fatalf("seed %d: dir-synced rename exposed bad contents", seed)
		}
	}
	lost := false
	for seed := int64(1); seed <= 40 && !lost; seed++ {
		fs, err := run(seed, false)
		if err != nil {
			t.Fatal(err)
		}
		lost = !exists(fs, "snap")
	}
	if !lost {
		t.Fatal("no seed in 1..40 lost an un-dir-synced rename — rename is silently durable")
	}
}

// TestArmCrashDeterministic: the same seed and crash point yield
// byte-identical recovered state, and the op log is stable across
// identical runs — every crash point is enumerable.
func TestArmCrashDeterministic(t *testing.T) {
	workload := func(fs *FS) error {
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("f%d", i)
			h := fs.Create(name)
			if _, err := h.WriteAt(bytes.Repeat([]byte{byte('a' + i)}, 100*(i+1)), 0); err != nil {
				return err
			}
			if i%2 == 0 {
				if err := h.Sync(); err != nil {
					return err
				}
			}
		}
		if err := fs.SyncDir("."); err != nil {
			return err
		}
		return fs.Rename("f3", "f3.final")
	}
	probe := New(Titan(), nil)
	probe.EnableCrashSim(7)
	if err := workload(probe); err != nil {
		t.Fatal(err)
	}
	total := probe.OpCount()
	if total < 8 {
		t.Fatalf("op log too small: %d", total)
	}
	for k := int64(2); k <= total; k++ {
		var snaps [2]map[string]string
		for trial := 0; trial < 2; trial++ {
			fs := New(Titan(), nil)
			fs.EnableCrashSim(7)
			fs.ArmCrash(k)
			err := workload(fs)
			if k <= total && err == nil {
				t.Fatalf("k=%d: workload survived an armed crash", k)
			}
			if !fs.Crashed() {
				t.Fatalf("k=%d: workload failed without a crash: %v", k, err)
			}
			if _, err := fs.Recover(); err != nil {
				t.Fatal(err)
			}
			snap := make(map[string]string)
			for _, name := range fs.List() {
				snap[name] = string(readBack(t, fs, name))
			}
			snaps[trial] = snap
		}
		if len(snaps[0]) != len(snaps[1]) {
			t.Fatalf("k=%d: nondeterministic recovery (file sets differ)", k)
		}
		for name, data := range snaps[0] {
			if snaps[1][name] != data {
				t.Fatalf("k=%d: nondeterministic recovery of %q", k, name)
			}
		}
	}
}

// TestCrashedOpsFailStop: every operation between the power failure
// and Recover reports ErrCrashed.
func TestCrashedOpsFailStop(t *testing.T) {
	fs := New(Titan(), nil)
	h := fs.Create("f")
	if _, err := h.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	fs.EnableCrashSim(1)
	fs.CrashNow()
	if _, err := h.WriteAt([]byte("y"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("WriteAt after crash = %v", err)
	}
	if _, err := h.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ReadAt after crash = %v", err)
	}
	if _, err := fs.Open("f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Open after crash = %v", err)
	}
	if err := fs.Sync("f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync after crash = %v", err)
	}
	if err := fs.SyncDir("."); !errors.Is(err, ErrCrashed) {
		t.Fatalf("SyncDir after crash = %v", err)
	}
	if err := fs.Rename("f", "g"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Rename after crash = %v", err)
	}
	if _, err := fs.Recover(); err != nil {
		t.Fatal(err)
	}
	// Service restored; a second crash can be armed (recovery
	// idempotence runs re-crash during recovery).
	if _, err := fs.Create("g").WriteAt([]byte("z"), 0); err != nil {
		t.Fatalf("write after recover: %v", err)
	}
	fs.CrashNow()
	if _, err := fs.Recover(); err != nil {
		t.Fatalf("second recover: %v", err)
	}
}

// TestSyncFilterLies: a filtered sync reports success but persists
// nothing — the mutation hook behind the harness's "remove one fsync
// and the audit must fail" check.
func TestSyncFilterLies(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 4096)
	lost := false
	for seed := int64(1); seed <= 20 && !lost; seed++ {
		fs := New(Titan(), nil)
		fs.EnableCrashSim(seed)
		fs.SetSyncFilter(func(kind OpKind, name string) bool { return kind != OpSync })
		h := fs.Create("f")
		if _, err := h.WriteAt(payload, 0); err != nil {
			t.Fatal(err)
		}
		if err := h.Sync(); err != nil {
			t.Fatalf("lying sync must still report success: %v", err)
		}
		if err := fs.SyncDir("."); err != nil {
			t.Fatal(err)
		}
		fs.CrashNow()
		if _, err := fs.Recover(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(readBack(t, fs, "f"), payload) {
			lost = true
		}
	}
	if !lost {
		t.Fatal("no seed in 1..20 lost data behind a lying fsync")
	}
}

// TestRecoverRebaselinesIntegrity: block checksums are recomputed over
// the recovered contents — losing unsynced data is a durability event,
// not corruption.
func TestRecoverRebaselinesIntegrity(t *testing.T) {
	fs := New(Titan(), nil)
	fs.EnableIntegrity()
	fs.EnableCrashSim(3)
	h := fs.Create("f")
	if _, err := h.WriteAt(bytes.Repeat([]byte("abc"), 5000), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(bytes.Repeat([]byte("XYZ"), 5000), 2000); err != nil {
		t.Fatal(err)
	}
	fs.CrashNow()
	if _, err := fs.Recover(); err != nil {
		t.Fatal(err)
	}
	if !exists(fs, "f") {
		t.Skip("seed dropped the file entirely")
	}
	h2, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, h2.Size())
	if _, err := h2.ReadAt(b, 0); err != nil {
		t.Fatalf("post-recovery read tripped integrity: %v", err)
	}
}
