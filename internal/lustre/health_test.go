package lustre

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/health"
)

// smallStripes returns a config whose tiny stripes spread even small
// files over every OST, so each OST accumulates observations quickly.
func smallStripes() Config {
	return Config{OSTs: 4, StripeSize: 1024, OSTBandwidth: 100e6, SeekPenalty: time.Millisecond}
}

func TestDegradeInflatesOSTCost(t *testing.T) {
	mk := func(plan *faultinject.Plan) time.Duration {
		fs := New(smallStripes(), nil)
		fs.SetFaultPlan(plan)
		h := fs.Create("f")
		buf := make([]byte, 16*1024)
		if _, err := h.WriteAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		return fs.Clock().Total()
	}
	healthy := mk(nil)
	degraded := mk(faultinject.New(1).Arm(OSTFaultSite(0), faultinject.Rule{Degrade: 10}))
	if degraded <= healthy {
		t.Fatalf("degraded cost %v not above healthy %v", degraded, healthy)
	}
	// One of four OSTs at 10x: total byte cost should be about
	// (3 + 10)/4 = 3.25x the healthy byte cost, well below a global 10x.
	if degraded >= 10*healthy {
		t.Fatalf("degrade of one OST inflated total cost %v >= 10x healthy %v", degraded, healthy)
	}
}

func TestSlowOSTQuarantinedAndAvoided(t *testing.T) {
	fs := New(smallStripes(), nil)
	fs.SetFaultPlan(faultinject.New(1).Arm(OSTFaultSite(2), faultinject.Rule{Degrade: 16}))
	tracker := fs.EnableOSTHealth(health.Config{SuspectAfter: 2, QuarantineAfter: 1, MinObservations: 2})

	h := fs.Create("input")
	buf := make([]byte, 64*1024)
	for i := 0; i < 4; i++ {
		if _, err := h.WriteAt(buf, int64(i*len(buf))); err != nil {
			t.Fatal(err)
		}
	}
	if !tracker.Quarantined("ost.2") {
		t.Fatalf("slow OST not quarantined; snapshot=%+v", tracker.Snapshot())
	}
	if q := tracker.QuarantinedComponents(); len(q) != 1 {
		t.Fatalf("false quarantines: %v", q)
	}
	healthy := fs.HealthyOSTs()
	want := []int{0, 1, 3}
	if len(healthy) != len(want) {
		t.Fatalf("HealthyOSTs = %v, want %v", healthy, want)
	}
	for i := range want {
		if healthy[i] != want[i] {
			t.Fatalf("HealthyOSTs = %v, want %v", healthy, want)
		}
	}
}

func TestHealthyOSTsWithoutTracking(t *testing.T) {
	fs := New(smallStripes(), nil)
	if got := fs.HealthyOSTs(); got != nil {
		t.Fatalf("HealthyOSTs without tracking = %v, want nil", got)
	}
}

func TestCreateWithOSTsLayout(t *testing.T) {
	fs := New(smallStripes(), nil)
	h := fs.CreateWithOSTs("seg", []int{1, 3})
	data := make([]byte, 8*1024)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := h.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch under explicit OST layout")
	}
	if l := fs.FileOSTs("seg"); len(l) != 2 || l[0] != 1 || l[1] != 3 {
		t.Fatalf("FileOSTs = %v, want [1 3]", l)
	}
	// Traffic must only land on the listed OSTs.
	for _, probe := range []struct {
		ost  int
		want bool
	}{{0, false}, {1, true}, {2, false}, {3, true}} {
		cost := fs.Clock().Resource("lustre/ost" + string(rune('0'+probe.ost)))
		if (cost > 0) != probe.want {
			t.Fatalf("ost %d charged %v, want charged=%v", probe.ost, cost, probe.want)
		}
	}
	// Out-of-range entries drop; an empty result falls back to default.
	h2 := fs.CreateWithOSTs("bad", []int{-1, 99})
	if h2.f.osts != nil {
		t.Fatalf("invalid layout kept: %v", h2.f.osts)
	}
}

func TestRereadBudgetDenialFailsLoud(t *testing.T) {
	fs := New(smallStripes(), nil)
	fs.EnableIntegrity()
	fs.SetRetryBudget(health.NewBudget(0, 0))
	plan := faultinject.New(1).Arm(faultinject.LustreRead, faultinject.Rule{Corrupt: true, Times: 1})
	fs.SetFaultPlan(plan)

	h := fs.Create("f")
	if _, err := h.WriteAt(bytes.Repeat([]byte{7}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	_, err := h.ReadAt(buf, 0)
	if err == nil {
		t.Fatal("corrupt read healed with an exhausted retry budget")
	}
	if !errors.Is(err, ErrCorruptData) || !errors.Is(err, health.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrCorruptData wrapping ErrBudgetExhausted", err)
	}
	// Ledger stays balanced: the injection was still detected.
	if fs.Stats().ReadOps == 0 {
		t.Fatal("read op not counted")
	}
	if got := plan.CorruptionsInjected(faultinject.LustreRead); got != 1 {
		t.Fatalf("injected = %d, want 1", got)
	}
}

func TestRereadBudgetGrantedStillHeals(t *testing.T) {
	fs := New(smallStripes(), nil)
	fs.EnableIntegrity()
	b := health.NewBudget(4, 0)
	fs.SetRetryBudget(b)
	fs.SetFaultPlan(faultinject.New(1).Arm(faultinject.LustreRead, faultinject.Rule{Corrupt: true, Times: 1}))

	h := fs.Create("f")
	want := bytes.Repeat([]byte{9}, 4096)
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatalf("read with budget available: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("healed read returned wrong bytes")
	}
	if b.Spent() != 1 {
		t.Fatalf("budget spent = %d, want 1", b.Spent())
	}
}
