// Package lustre simulates a striped parallel file system in the style of
// the Lustre installation attached to Titan.
//
// Mr. Scan's dominant cost is I/O: the partition phase writes partitions
// to Lustre for consumption by the cluster phase, and §5.1.1 attributes
// 68% of total time to it — "dominated by small random writes", because
// every partitioner leaf holds a random portion of the data and must
// write small runs of points at specific offsets of nearly every
// partition. This simulator reproduces that cost model:
//
//   - files are striped round-robin over OSTs (object storage targets);
//   - each OST is a serial resource with a fixed bandwidth, so concurrent
//     writers contend per OST on the simulated clock;
//   - every discontiguous operation on a handle pays a seek penalty,
//     which makes many small random writes far slower than a streaming
//     write of the same volume.
//
// Data is stored for real (in memory), so everything written can be read
// back and verified; only the *costs* are simulated.
package lustre

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/health"
	"repro/internal/integrity"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Config describes the simulated file system.
type Config struct {
	// OSTs is the number of object storage targets files stripe over.
	OSTs int
	// StripeSize is the stripe unit in bytes.
	StripeSize int64
	// OSTBandwidth is each OST's bandwidth in bytes/second (0 disables
	// byte costs).
	OSTBandwidth float64
	// SeekPenalty is charged per discontiguous read/write on a handle.
	SeekPenalty time.Duration
}

// Titan returns a configuration shaped like a slice of Titan's Lustre
// scratch system, scaled to simulation: modest OST count, 1 MiB stripes,
// and a seek penalty that makes small random writes dominate — the §5.1.1
// behaviour.
func Titan() Config {
	return Config{
		OSTs:         32,
		StripeSize:   1 << 20,
		OSTBandwidth: 500e6,
		SeekPenalty:  5 * time.Millisecond,
	}
}

// Stats aggregates file system activity. It is a read-side view over
// the FS's telemetry counters (see SetTelemetry) — the registry is the
// single source of truth; this struct exists for established callers.
type Stats struct {
	ReadOps      int64
	WriteOps     int64
	BytesRead    int64
	BytesWritten int64
	Seeks        int64
	// WriteSeeks counts the subset of Seeks charged to discontiguous
	// writes — the quantity behind §5.1.1's "dominated by small random
	// writes". A sequential (aggregated) write path keeps this near the
	// number of writers; the legacy per-region path scales it with
	// leaves×partitions.
	WriteSeeks   int64
	FilesCreated int64
}

// fsMetrics caches the FS's handles into a telemetry registry.
type fsMetrics struct {
	readOps      *telemetry.Counter
	writeOps     *telemetry.Counter
	bytesRead    *telemetry.Counter
	bytesWritten *telemetry.Counter
	seeks        *telemetry.Counter
	writeSeeks   *telemetry.Counter
	filesCreated *telemetry.Counter
	// Durability model (see crash.go): honoured file and directory
	// syncs.
	syncs    *telemetry.Counter
	dirSyncs *telemetry.Counter
	// Integrity ledger (see integrity.go): detections by side, taints
	// retired as masked, and verification rereads.
	corruptReads  *telemetry.Counter
	corruptWrites *telemetry.Counter
	corruptMasked *telemetry.Counter
	rereads       *telemetry.Counter
}

func resolveFSMetrics(h *telemetry.Hub) fsMetrics {
	return fsMetrics{
		readOps:       h.Counter("lustre_read_ops_total"),
		writeOps:      h.Counter("lustre_write_ops_total"),
		bytesRead:     h.Counter("lustre_bytes_read_total"),
		bytesWritten:  h.Counter("lustre_bytes_written_total"),
		seeks:         h.Counter("lustre_seeks_total"),
		writeSeeks:    h.Counter("lustre_write_seeks_total"),
		filesCreated:  h.Counter("lustre_files_created_total"),
		syncs:         h.Counter("lustre_syncs_total"),
		dirSyncs:      h.Counter("lustre_dir_syncs_total"),
		corruptReads:  h.Counter(integrity.MetricDetected, "site", string(faultinject.LustreRead)),
		corruptWrites: h.Counter(integrity.MetricDetected, "site", string(faultinject.LustreWrite)),
		corruptMasked: h.Counter(integrity.MetricMasked, "site", string(faultinject.LustreWrite)),
		rereads:       h.Counter("lustre_integrity_rereads_total"),
	}
}

// FS is a simulated parallel file system. Safe for concurrent use.
type FS struct {
	cfg   Config
	clock *simclock.Clock

	mu    sync.Mutex
	files map[string]*file

	// plan is consulted at the lustre.read / lustre.write fault sites.
	plan   *faultinject.Plan
	hub    *telemetry.Hub
	parent *telemetry.Span
	m      fsMetrics
	// spans gates per-operation span recording: off on the private
	// default hub, on once a run-level hub is installed via SetTelemetry.
	spans bool
	// integrity gates per-block CRC32C tracking and read verification
	// (see integrity.go / EnableIntegrity).
	integrity bool
	// cs holds the durability / power-failure model; nil (the default)
	// disables it entirely (see crash.go / EnableCrashSim).
	cs *crashState
	// ostHealth, when non-nil, scores per-OST read/write latency for
	// gray-failure detection (see health.go / EnableOSTHealth).
	ostHealth *health.Tracker
	// budget, when non-nil, meters integrity rereads (see SetRetryBudget).
	budget *health.Budget
}

type file struct {
	mu   sync.RWMutex
	data []byte

	// osts, when non-nil, is the explicit OST list this file stripes
	// over (CreateWithOSTs); nil files round-robin over all OSTs.
	// Immutable after creation.
	osts []int

	// Durability model (crash.go), tracked only while crash simulation
	// is enabled: durable is the image on stable storage as of the last
	// honoured Sync; dirty holds the unsynced writes since. Guarded by
	// mu.
	durable []byte
	dirty   []writeRec

	// imu guards the integrity state below; always acquired after mu.
	imu sync.Mutex
	// sums holds one CRC32C per integrityBlock-sized block of data,
	// covering [b*block, min((b+1)*block, len(data))). nil until the
	// first operation with integrity enabled.
	sums []uint32
	// tainted counts the injected write corruptions still stored in each
	// block and not yet detected or masked — two flips landing in one
	// block are two ledger entries, not one.
	tainted map[int64]int64
}

// ErrNotExist is returned when opening a file that was never created.
var ErrNotExist = errors.New("lustre: file does not exist")

// New creates a file system. A nil clock allocates a private one.
func New(cfg Config, clock *simclock.Clock) *FS {
	if cfg.OSTs <= 0 {
		cfg.OSTs = 1
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = 1 << 20
	}
	if clock == nil {
		clock = simclock.New()
	}
	fs := &FS{cfg: cfg, clock: clock, files: make(map[string]*file)}
	fs.hub = telemetry.New(clock)
	fs.m = resolveFSMetrics(fs.hub)
	return fs
}

// Clock returns the simulated clock I/O costs are charged to.
func (fs *FS) Clock() *simclock.Clock { return fs.clock }

// SetTelemetry points the file system's metrics and spans at a
// run-level hub, carrying over counts accumulated on the private
// default hub. Per-read/write spans are recorded only on an installed
// hub (and bounded by the tracer's span cap — partition phases issue
// very many small writes).
func (fs *FS) SetTelemetry(h *telemetry.Hub) {
	if h == nil {
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	old := fs.m
	fs.hub = h
	fs.m = resolveFSMetrics(h)
	fs.spans = true
	fs.m.readOps.Add(old.readOps.Value())
	fs.m.writeOps.Add(old.writeOps.Value())
	fs.m.bytesRead.Add(old.bytesRead.Value())
	fs.m.bytesWritten.Add(old.bytesWritten.Value())
	fs.m.seeks.Add(old.seeks.Value())
	fs.m.writeSeeks.Add(old.writeSeeks.Value())
	fs.m.filesCreated.Add(old.filesCreated.Value())
	fs.m.syncs.Add(old.syncs.Value())
	fs.m.dirSyncs.Add(old.dirSyncs.Value())
	fs.m.corruptReads.Add(old.corruptReads.Value())
	fs.m.corruptWrites.Add(old.corruptWrites.Value())
	fs.m.corruptMasked.Add(old.corruptMasked.Value())
	fs.m.rereads.Add(old.rereads.Value())
	fs.ostHealth.SetTelemetry(h)
	fs.budget.SetTelemetry(h)
}

// SetTraceParent nests the file system's I/O spans under s — the span
// of the phase currently doing I/O. Pass nil to detach.
func (fs *FS) SetTraceParent(s *telemetry.Span) {
	fs.mu.Lock()
	fs.parent = s
	fs.mu.Unlock()
}

// telemetry snapshots the hub, span parent and metric handles.
func (fs *FS) telemetry() (*telemetry.Hub, *telemetry.Span, fsMetrics, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.hub, fs.parent, fs.m, fs.spans
}

// Stats returns a snapshot of accumulated counters, read back from the
// telemetry registry.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	m := fs.m
	fs.mu.Unlock()
	return Stats{
		ReadOps:      m.readOps.Value(),
		WriteOps:     m.writeOps.Value(),
		BytesRead:    m.bytesRead.Value(),
		BytesWritten: m.bytesWritten.Value(),
		Seeks:        m.seeks.Value(),
		WriteSeeks:   m.writeSeeks.Value(),
		FilesCreated: m.filesCreated.Value(),
	}
}

// SetFaultPlan installs the fault plan consulted at the lustre.read and
// lustre.write sites (faultinject package). A nil plan disables
// injection. Real parallel file systems fail under load (OST evictions,
// MDS timeouts); Mr. Scan's phases must surface those errors rather
// than corrupt output.
func (fs *FS) SetFaultPlan(p *faultinject.Plan) {
	fs.mu.Lock()
	fs.plan = p
	fs.mu.Unlock()
}

// checkFault consumes one operation at the site and returns the
// injected error if the plan fires.
func (fs *FS) checkFault(site faultinject.Site) error {
	fs.mu.Lock()
	plan := fs.plan
	fs.mu.Unlock()
	return plan.Check(site)
}

// Create makes (or truncates) a file and returns a handle positioned at
// offset 0. Under crash simulation the new name is not durable until
// the parent directory is synced.
func (fs *FS) Create(name string) *Handle {
	fs.mu.Lock()
	f := &file{}
	fs.files[name] = f
	if fs.cs != nil {
		fs.cs.nsOp(OpCreate, name, "", f)
	}
	fs.m.filesCreated.Inc()
	fs.mu.Unlock()
	return &Handle{fs: fs, f: f, name: name, lastOff: -1}
}

// Open returns a handle on an existing file.
func (fs *FS) Open(name string) (*Handle, error) {
	fs.mu.Lock()
	if fs.cs != nil && fs.cs.crashed {
		fs.mu.Unlock()
		return nil, fmt.Errorf("lustre: open %q: %w", name, ErrCrashed)
	}
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return &Handle{fs: fs, f: f, name: name, lastOff: -1}, nil
}

// OpenOrCreate returns a handle, creating the file if needed. Unlike
// Create it does not truncate. Multiple handles on one file may be used
// concurrently (each tracks its own seek position), which is how the
// partitioner's leaf processes write "to the correct position in a single
// output file in parallel" (§3.1.3).
func (fs *FS) OpenOrCreate(name string) *Handle {
	fs.mu.Lock()
	f, ok := fs.files[name]
	if !ok {
		f = &file{}
		fs.files[name] = f
		if fs.cs != nil {
			fs.cs.nsOp(OpCreate, name, "", f)
		}
		fs.m.filesCreated.Inc()
	}
	fs.mu.Unlock()
	return &Handle{fs: fs, f: f, name: name, lastOff: -1}
}

// Remove deletes a file. Removing a missing file is not an error.
// Outstanding taints on the unlinked file are retired as masked — data
// that no longer exists cannot corrupt any output.
func (fs *FS) Remove(name string) {
	fs.mu.Lock()
	f := fs.files[name]
	delete(fs.files, name)
	if fs.cs != nil && f != nil {
		fs.cs.nsOp(OpRemove, name, "", nil)
	}
	fs.mu.Unlock()
	fs.maskTaints(f)
}

// Rename atomically renames a file, replacing newname if it exists —
// POSIX rename(2) semantics, the primitive behind the checkpoint
// write-then-rename protocol. The operation happens entirely under the
// FS mutex (a metadata-server operation on real Lustre) and is charged
// no byte cost. Open handles follow the file object, not the name:
// handles on oldname keep operating on the renamed file, and handles on
// a replaced newname keep operating on the now-unlinked old contents,
// exactly as with POSIX descriptors.
//
// Atomic is not durable. Rename returns success as soon as the
// in-memory (page-cache) namespace is updated; after a power failure
// the rename may simply not have happened, and either name may be
// visible. A successful return promises only that readers *now* see
// newname and that no crash exposes a half-renamed state. Callers that
// need the rename to survive a crash must (1) Sync the file's contents
// first — otherwise the new name can surface with torn or empty
// contents — and (2) SyncDir the parent directory after. There is no
// ErrNotDurable escape hatch: durability is solely the caller's sync
// ordering, which is exactly what the crash harness audits.
func (fs *FS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	f, ok := fs.files[oldname]
	if !ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotExist, oldname)
	}
	if oldname == newname {
		fs.mu.Unlock()
		return nil
	}
	if fs.cs != nil && !fs.cs.nsOp(OpRename, newname, oldname, f) {
		fs.mu.Unlock()
		return fmt.Errorf("lustre: rename %q -> %q: %w", oldname, newname, ErrCrashed)
	}
	replaced := fs.files[newname]
	fs.files[newname] = f
	delete(fs.files, oldname)
	fs.mu.Unlock()
	if replaced != f {
		fs.maskTaints(replaced) // the unlinked old contents can't be read by name anymore
	}
	return nil
}

// Size returns a file's current length.
func (fs *FS) Size(name string) (int64, error) {
	fs.mu.Lock()
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data)), nil
}

// List returns the names of all files, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	fs.mu.Unlock()
	sort.Strings(names)
	return names
}

// chargeIO charges stripe traffic for [off, off+n) to the OSTs the
// file's layout lands it on, plus a seek penalty when the handle moved
// discontiguously. A degrade rule armed at an OST's fault site inflates
// that OST's cost (the OST limps), and when OST health tracking is
// enabled every chunk feeds the per-OST latency score. It returns the
// total simulated cost so callers can record the operation as a trace
// span.
func (fs *FS) chargeIO(f *file, off, n int64, seek bool) time.Duration {
	fs.mu.Lock()
	plan, tracker := fs.plan, fs.ostHealth
	fs.mu.Unlock()
	var total time.Duration
	if seek {
		fs.clock.Charge("lustre/seek", fs.cfg.SeekPenalty)
		total += fs.cfg.SeekPenalty
	}
	for n > 0 {
		stripe := off / fs.cfg.StripeSize
		ost := fs.ostFor(f, stripe)
		inStripe := fs.cfg.StripeSize - off%fs.cfg.StripeSize
		chunk := n
		if chunk > inStripe {
			chunk = inStripe
		}
		cost := simclock.BytesDuration(chunk, fs.cfg.OSTBandwidth)
		if plan != nil {
			if factor := plan.DegradeFactor(OSTFaultSite(ost)); factor > 1 {
				cost = time.Duration(float64(cost) * factor)
			}
		}
		fs.clock.Charge(fmt.Sprintf("lustre/ost%d", ost), cost)
		if tracker != nil && cost > 0 {
			// Normalize to cost per MiB so chunk size doesn't skew the
			// fleet-relative comparison: healthy OSTs all observe the
			// same value, a degraded OST observes factor x it.
			tracker.ObserveSuccess(ostComponent(ost), time.Duration(float64(cost)*float64(1<<20)/float64(chunk)))
		}
		total += cost
		off += chunk
		n -= chunk
	}
	return total
}

// ostFor maps a stripe index to an OST under the file's layout: the
// default round-robin over all OSTs, or the explicit OST list given to
// CreateWithOSTs.
func (fs *FS) ostFor(f *file, stripe int64) int {
	if f != nil && len(f.osts) > 0 {
		return f.osts[int(stripe)%len(f.osts)]
	}
	return int(stripe) % fs.cfg.OSTs
}

// Handle is an open file descriptor with its own seek tracking. Handles
// implement io.ReaderAt, io.WriterAt, io.Reader and io.Writer.
type Handle struct {
	fs      *FS
	f       *file
	name    string
	mu      sync.Mutex
	pos     int64 // for Read/Write
	lastOff int64 // last byte touched + 1; -1 means fresh handle
}

var (
	_ io.ReaderAt = (*Handle)(nil)
	_ io.WriterAt = (*Handle)(nil)
	_ io.Reader   = (*Handle)(nil)
	_ io.Writer   = (*Handle)(nil)
)

// Name returns the file name the handle refers to.
func (h *Handle) Name() string { return h.name }

// WriteAt writes p at offset off, growing the file as needed.
func (h *Handle) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("lustre: negative offset %d on %q", off, h.name)
	}
	if len(p) == 0 {
		return 0, nil
	}
	if err := h.fs.crashCheck(); err != nil {
		return 0, fmt.Errorf("lustre: write %q at %d: %w", h.name, off, err)
	}
	if err := h.fs.checkFault(faultinject.LustreWrite); err != nil {
		return 0, fmt.Errorf("lustre: write %q at %d: %w", h.name, off, err)
	}
	h.fs.mu.Lock()
	plan, withIntegrity := h.fs.plan, h.fs.integrity
	var wseq int64
	if h.fs.cs != nil {
		var cerr error
		if wseq, cerr = h.fs.cs.op(OpWrite, h.name, off, len(p)); cerr != nil {
			h.fs.mu.Unlock()
			return 0, fmt.Errorf("lustre: write %q at %d: %w", h.name, off, cerr)
		}
	}
	h.fs.mu.Unlock()

	h.f.mu.Lock()
	end := off + int64(len(p))
	oldSize := int64(len(h.f.data))
	var masked int64
	if withIntegrity {
		h.f.ensureSums()
		// Guard-tag read-modify-write: blocks whose prior contents
		// survive this write are verified before we touch them, so a
		// stored corruption is detected instead of re-checksummed.
		var (
			corrupt      []int64
			corruptCount int64
		)
		corrupt, corruptCount, masked = h.f.verifyWriteCover(off, end)
		if len(corrupt) > 0 {
			h.f.mu.Unlock()
			_, _, m, _ := h.fs.telemetry()
			if masked > 0 {
				m.corruptMasked.Add(masked)
			}
			h.fs.detect(faultinject.LustreWrite, h.name, corrupt[0]*integrityBlock, false, corruptCount)
			return 0, fmt.Errorf("lustre: write %q at %d: stored block %d: %w", h.name, off, corrupt[0], ErrCorruptData)
		}
	}
	if end > int64(len(h.f.data)) {
		grown := make([]byte, end)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[off:end], p)
	if withIntegrity {
		h.f.recomputeSums(off, end, oldSize)
	}
	// Injected write corruption flips a stored bit after the checksums
	// are recorded (bad DMA between client checksum and OST platter):
	// the flip is silent here and caught by a later read or overwrite.
	if c := plan.CorruptData(faultinject.LustreWrite, h.f.data[off:end]); c != nil && withIntegrity {
		h.f.taint(off + c.Offset)
	}
	if wseq > 0 {
		h.f.dirty = append(h.f.dirty, writeRec{seq: wseq, off: off, data: append([]byte(nil), p...)})
	}
	h.f.mu.Unlock()

	h.mu.Lock()
	seek := h.lastOff != off
	h.lastOff = end
	h.mu.Unlock()

	cost := h.fs.chargeIO(h.f, off, int64(len(p)), seek)
	hub, parent, m, spans := h.fs.telemetry()
	if spans {
		hub.RecordSim(parent, "lustre.write", cost, telemetry.Int64("bytes", int64(len(p))))
	}
	if masked > 0 {
		m.corruptMasked.Add(masked)
	}
	if seek {
		m.seeks.Inc()
		m.writeSeeks.Inc()
	}
	m.writeOps.Inc()
	m.bytesWritten.Add(int64(len(p)))
	return len(p), nil
}

// ReadAt reads into p from offset off. Short reads at EOF return io.EOF.
func (h *Handle) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("lustre: negative offset %d on %q", off, h.name)
	}
	if err := h.fs.crashCheck(); err != nil {
		return 0, fmt.Errorf("lustre: read %q at %d: %w", h.name, off, err)
	}
	if err := h.fs.checkFault(faultinject.LustreRead); err != nil {
		return 0, fmt.Errorf("lustre: read %q at %d: %w", h.name, off, err)
	}
	h.fs.mu.Lock()
	plan, withIntegrity, budget := h.fs.plan, h.fs.integrity, h.fs.budget
	h.fs.mu.Unlock()

	h.f.mu.RLock()
	size := int64(len(h.f.data))
	var n int
	if off < size {
		n = copy(p, h.f.data[off:])
	}
	// Injected read corruption flips a bit of the returned copy — wire
	// corruption between OST and client. The store stays clean, so a
	// verification-triggered reread heals it.
	injected := plan.CorruptData(faultinject.LustreRead, p[:n])
	var (
		rereads      int64
		storedTaints int64
		corruptBlock int64 = -1
		budgetDenied bool
	)
	if withIntegrity && n > 0 {
		h.f.ensureSums()
		corrupt := h.f.verifyRead(p[:n], off, n)
		if len(corrupt) > 0 && injected != nil {
			if budget.Take("lustre.reread") {
				// Transient: refetch the whole range from the store (no
				// second injection — one op, one corruption) and reverify.
				copy(p[:n], h.f.data[off:off+int64(n)])
				rereads++
				corrupt = h.f.verifyRead(p[:n], off, n)
			} else {
				// Retry budget exhausted: the heal is denied, so the
				// detected wire corruption degrades to a loud failure.
				budgetDenied = true
			}
		}
		if len(corrupt) > 0 && !budgetDenied {
			// Persistent: the stored bytes are wrong.
			storedTaints = h.f.retireTaints(corrupt)
			corruptBlock = corrupt[0]
		}
	}
	h.f.mu.RUnlock()

	h.mu.Lock()
	seek := h.lastOff != off
	h.lastOff = off + int64(n)
	h.mu.Unlock()

	cost := h.fs.chargeIO(h.f, off, int64(n), seek)
	if rereads > 0 {
		cost += h.fs.chargeIO(h.f, off, int64(n), false) // the reread pays the wire again
		h.fs.detect(faultinject.LustreRead, h.name, off+injected.Offset, true, 1)
	}
	hub, parent, m, spans := h.fs.telemetry()
	if spans {
		hub.RecordSim(parent, "lustre.read", cost, telemetry.Int64("bytes", int64(n)))
	}
	m.rereads.Add(rereads)
	if seek {
		m.seeks.Inc()
	}
	m.readOps.Inc()
	m.bytesRead.Add(int64(n))
	if budgetDenied {
		h.fs.detect(faultinject.LustreRead, h.name, off+injected.Offset, false, 1)
		return 0, fmt.Errorf("lustre: read %q at %d: %w (%w)", h.name, off, ErrCorruptData, health.ErrBudgetExhausted)
	}
	if corruptBlock >= 0 {
		if storedTaints > 0 {
			h.fs.detect(faultinject.LustreWrite, h.name, corruptBlock*integrityBlock, false, storedTaints)
		}
		return 0, fmt.Errorf("lustre: read %q at %d: stored block %d: %w", h.name, off, corruptBlock, ErrCorruptData)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Write appends at the handle's current position.
func (h *Handle) Write(p []byte) (int, error) {
	h.mu.Lock()
	off := h.pos
	h.pos += int64(len(p))
	h.mu.Unlock()
	return h.WriteAt(p, off)
}

// Read reads from the handle's current position.
func (h *Handle) Read(p []byte) (int, error) {
	h.mu.Lock()
	off := h.pos
	h.mu.Unlock()
	n, err := h.ReadAt(p, off)
	h.mu.Lock()
	h.pos += int64(n)
	h.mu.Unlock()
	return n, err
}

// Seek positions the handle for Read/Write.
func (h *Handle) Seek(offset int64, whence int) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.pos
	case io.SeekEnd:
		h.f.mu.RLock()
		base = int64(len(h.f.data))
		h.f.mu.RUnlock()
	default:
		return 0, fmt.Errorf("lustre: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("lustre: seek to negative position %d", np)
	}
	h.pos = np
	return np, nil
}

// Size returns the file's current length.
func (h *Handle) Size() int64 {
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	return int64(len(h.f.data))
}
