// Crash simulation: a durability model for the simulated file system.
//
// Real Lustre (like any POSIX file system) buffers writes in client and
// server caches: data reaches stable storage only on fsync, and a
// rename is atomic but not durable until the parent directory is
// synced. A power failure therefore exposes whatever subset of the
// unsynced writes happened to reach the platters — possibly reordered,
// possibly with the last one torn mid-block. Mr. Scan's durability
// claims (checkpoint/resume, journal-before-visibility) are only as
// good as the writers' sync ordering, so the simulator models exactly
// that:
//
//   - EnableCrashSim snapshots the current contents as the durable
//     image and starts tracking unsynced ("dirty") writes per file and
//     pending namespace operations (create/rename/remove) per
//     directory;
//   - Sync(file) / Handle.Sync make a file's bytes durable; SyncDir
//     makes the pending namespace operations under one directory
//     durable (the metadata-journal model: a synced directory persists
//     its entries in operation order);
//   - every durability-relevant operation (write, sync, syncdir,
//     create, rename, remove) is assigned a sequence number and
//     recorded in an op log, so every crash point in a run is
//     enumerable: ArmCrash(k) makes the power fail just before the
//     k-th operation executes;
//   - after a crash, every operation returns ErrCrashed until
//     Recover() materialises the surviving state: the durable
//     namespace plus a seeded per-directory prefix of pending
//     namespace ops, and per file the durable image plus a seeded
//     subset of dirty writes applied in order — the last survivor
//     possibly torn (a prefix of the write).
//
// With crash simulation disabled (the default), Sync and SyncDir are
// free no-ops and nothing below costs a byte of tracking — existing
// workloads are unaffected.

package lustre

import (
	"errors"
	"fmt"
	"math/rand"
	"path"
	"sort"
)

// ErrCrashed is returned by every file system operation between a
// simulated power failure and Recover.
var ErrCrashed = errors.New("lustre: simulated power failure")

// OpKind names a durability-relevant operation in the crash-sim op log.
type OpKind string

const (
	OpWrite   OpKind = "write"
	OpSync    OpKind = "sync"
	OpSyncDir OpKind = "syncdir"
	OpCreate  OpKind = "create"
	OpRename  OpKind = "rename"
	OpRemove  OpKind = "remove"
)

// Op is one entry of the crash-sim op log. Name is the file operated
// on (for OpSyncDir, the directory; for OpRename, the new name).
type Op struct {
	Seq  int64
	Kind OpKind
	Name string
	Off  int64
	Len  int
}

// CrashReport summarises what Recover materialised.
type CrashReport struct {
	// CrashSeq is the op sequence number at which power failed.
	CrashSeq int64 `json:"crash_seq"`
	// PendingWrites / SurvivedWrites count the unsynced data writes on
	// recovered files and how many of them reached stable storage.
	PendingWrites  int `json:"pending_writes"`
	SurvivedWrites int `json:"survived_writes"`
	// TornWrites counts surviving writes cut short mid-write.
	TornWrites int `json:"torn_writes"`
	// PendingNS / SurvivedNS count unsynced namespace operations
	// (create/rename/remove) and how many survived as per-directory
	// prefixes.
	PendingNS  int `json:"pending_ns"`
	SurvivedNS int `json:"survived_ns"`
	// Files is the number of files that exist after recovery.
	Files int `json:"files"`
}

// writeRec is one unsynced write (data is an owned copy).
type writeRec struct {
	seq  int64
	off  int64
	data []byte
}

// pendingNS is one unsynced namespace operation.
type pendingNS struct {
	seq  int64
	kind OpKind
	name string // created/removed name, or rename target
	old  string // rename source
	f    *file
}

// dir returns the directory whose sync makes the op durable. A rename
// belongs to its target's parent; the checkpoint and journal writers
// only ever rename within one directory, which is the supported
// pattern.
func (p pendingNS) dir() string { return path.Dir(p.name) }

// crashState holds all crash-simulation state; nil on an FS means the
// model is disabled. All fields are guarded by FS.mu.
type crashState struct {
	rng *rand.Rand

	seq       int64
	armAt     int64
	crashed   bool
	crashedAt int64

	ops     []Op
	pending []pendingNS
	// durable is the namespace as it exists on stable storage.
	durable map[string]*file

	// filter, when set, decides whether a Sync/SyncDir is honoured.
	// A filtered ("lying") sync is logged and charged but persists
	// nothing — the mutation hook the crash harness uses to prove it
	// catches a missing fsync.
	filter func(kind OpKind, name string) bool
}

// Survival probabilities for unsynced state at a crash. Values are
// deliberately aggressive: roughly half the dirty writes vanish and
// most surviving tails tear, so a missing sync is found fast.
const (
	writeSurviveProb = 0.5
	tearProb         = 0.6
)

// op records one durability-relevant operation, firing the armed crash
// if its sequence number has been reached. Callers hold fs.mu. The
// returned seq is 0 when the op did not execute.
func (cs *crashState) op(kind OpKind, name string, off int64, n int) (int64, error) {
	if cs.crashed {
		return 0, ErrCrashed
	}
	cs.seq++
	if cs.armAt > 0 && cs.seq >= cs.armAt {
		cs.crashed = true
		cs.crashedAt = cs.seq
		return 0, ErrCrashed
	}
	cs.ops = append(cs.ops, Op{Seq: cs.seq, Kind: kind, Name: name, Off: off, Len: n})
	return cs.seq, nil
}

// nsOp records a namespace operation as pending (not yet durable).
// Callers hold fs.mu. Returns false if the power is (or just went)
// out, in which case nothing was recorded.
func (cs *crashState) nsOp(kind OpKind, name, old string, f *file) bool {
	seq, err := cs.op(kind, name, 0, 0)
	if err != nil {
		return false
	}
	cs.pending = append(cs.pending, pendingNS{seq: seq, kind: kind, name: name, old: old, f: f})
	return true
}

// applyNS replays one namespace op onto a namespace map.
func applyNS(ns map[string]*file, p pendingNS) {
	switch p.kind {
	case OpCreate:
		ns[p.name] = p.f
	case OpRename:
		delete(ns, p.old)
		ns[p.name] = p.f
	case OpRemove:
		delete(ns, p.name)
	}
}

// applyWrite copies data at off onto base, growing it (zero-filled) as
// needed, and returns the possibly-reallocated slice.
func applyWrite(base []byte, off int64, data []byte) []byte {
	if len(data) == 0 {
		return base
	}
	end := off + int64(len(data))
	if end > int64(len(base)) {
		grown := make([]byte, end)
		copy(grown, base)
		base = grown
	}
	copy(base[off:end], data)
	return base
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// EnableCrashSim turns on the durability model with a deterministic
// seed governing what survives a crash. The file system's current
// contents become the durable baseline (as if everything were synced);
// from here on, writes are dirty until Sync and namespace changes are
// pending until the parent directory's SyncDir. Calling it again
// resets the model with a fresh seed and re-baselines.
func (fs *FS) EnableCrashSim(seed int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cs := &crashState{
		rng:     rand.New(rand.NewSource(seed)),
		durable: make(map[string]*file, len(fs.files)),
	}
	for name, f := range fs.files {
		cs.durable[name] = f
		f.mu.Lock()
		f.durable = cloneBytes(f.data)
		f.dirty = nil
		f.mu.Unlock()
	}
	fs.cs = cs
}

// CrashSimEnabled reports whether the durability model is on.
func (fs *FS) CrashSimEnabled() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cs != nil
}

// SetSyncFilter installs a predicate deciding whether each Sync /
// SyncDir is honoured. A sync the filter rejects still returns
// success, is still logged and charged — it just persists nothing: a
// lying fsync. This is the mutation hook the crash harness uses to
// prove that removing one fsync from a writer makes the audit fail.
// Pass nil to restore honest syncs.
func (fs *FS) SetSyncFilter(f func(kind OpKind, name string) bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cs != nil {
		fs.cs.filter = f
	}
}

// ArmCrash schedules a power failure just before the seq-th
// durability-relevant operation executes (1-based, compared against
// the op counter, so arming at or below the current OpCount fires on
// the very next operation). Arm with seq <= 0 to disarm.
func (fs *FS) ArmCrash(seq int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cs != nil {
		fs.cs.armAt = seq
	}
}

// CrashNow fails the power immediately.
func (fs *FS) CrashNow() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cs != nil && !fs.cs.crashed {
		fs.cs.crashed = true
		fs.cs.crashedAt = fs.cs.seq
	}
}

// Crashed reports whether the simulated power is out.
func (fs *FS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cs != nil && fs.cs.crashed
}

// OpCount returns the number of durability-relevant operations
// executed so far — the space of crash points for ArmCrash.
func (fs *FS) OpCount() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cs == nil {
		return 0
	}
	return fs.cs.seq
}

// OpLog returns a copy of the op log.
func (fs *FS) OpLog() []Op {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cs == nil {
		return nil
	}
	return append([]Op(nil), fs.cs.ops...)
}

// crashCheck fails fast when the power is out. It is free when crash
// simulation is disabled.
func (fs *FS) crashCheck() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cs != nil && fs.cs.crashed {
		return ErrCrashed
	}
	return nil
}

// Sync makes a file's current contents durable — fsync(2). With crash
// simulation disabled it is a free no-op. The sync is charged one seek
// penalty (a small metadata round trip).
func (fs *FS) Sync(name string) error {
	fs.mu.Lock()
	cs := fs.cs
	if cs == nil {
		fs.mu.Unlock()
		return nil
	}
	f, ok := fs.files[name]
	if !ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	fs.mu.Unlock()
	return fs.syncFile(f, name)
}

// Sync makes the handle's file contents durable — fsync(fd). Like
// POSIX fsync it follows the open file, not the name, so it works on a
// handle whose file has since been renamed.
func (h *Handle) Sync() error {
	return h.fs.syncFile(h.f, h.name)
}

func (fs *FS) syncFile(f *file, name string) error {
	fs.mu.Lock()
	cs := fs.cs
	if cs == nil {
		fs.mu.Unlock()
		return nil
	}
	if _, err := cs.op(OpSync, name, 0, 0); err != nil {
		fs.mu.Unlock()
		return fmt.Errorf("lustre: sync %q: %w", name, err)
	}
	honored := cs.filter == nil || cs.filter(OpSync, name)
	m := fs.m
	fs.mu.Unlock()
	if honored {
		f.mu.Lock()
		f.durable = cloneBytes(f.data)
		f.dirty = nil
		f.mu.Unlock()
	}
	fs.clock.Charge("lustre/sync", fs.cfg.SeekPenalty)
	m.syncs.Inc()
	return nil
}

// SyncDir makes the pending namespace operations under dir durable, in
// operation order — fsync(2) on a directory. Files created or renamed
// into a directory are not guaranteed to exist after a crash until
// this is called (note their *contents* additionally need their own
// Sync). With crash simulation disabled it is a free no-op.
func (fs *FS) SyncDir(dir string) error {
	dir = path.Clean(dir)
	fs.mu.Lock()
	cs := fs.cs
	if cs == nil {
		fs.mu.Unlock()
		return nil
	}
	if _, err := cs.op(OpSyncDir, dir, 0, 0); err != nil {
		fs.mu.Unlock()
		return fmt.Errorf("lustre: syncdir %q: %w", dir, err)
	}
	if cs.filter == nil || cs.filter(OpSyncDir, dir) {
		rest := cs.pending[:0]
		for _, p := range cs.pending {
			if p.dir() == dir {
				applyNS(cs.durable, p)
			} else {
				rest = append(rest, p)
			}
		}
		cs.pending = rest
	}
	m := fs.m
	fs.mu.Unlock()
	fs.clock.Charge("lustre/syncdir", fs.cfg.SeekPenalty)
	m.dirSyncs.Inc()
	return nil
}

// Recover materialises the state that survived the power failure and
// restores service: the durable namespace plus a seeded per-directory
// prefix of pending namespace operations; per file, the durable image
// plus a seeded subset of its unsynced writes applied in operation
// order, the last survivor possibly torn. Handles opened before the
// crash are dead — a restarted process re-opens by name. Integrity
// checksums (EnableIntegrity) are re-baselined over the recovered
// contents: lost unsynced data is a durability event, not corruption.
//
// Recover leaves crash simulation enabled with the op counter running
// on, so a second crash can be armed during recovery to test that
// recovery itself is idempotent.
func (fs *FS) Recover() (*CrashReport, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cs := fs.cs
	if cs == nil {
		return nil, errors.New("lustre: Recover: crash simulation not enabled")
	}
	if !cs.crashed {
		return nil, errors.New("lustre: Recover without a crash (use ArmCrash or CrashNow)")
	}
	rpt := &CrashReport{CrashSeq: cs.crashedAt, PendingNS: len(cs.pending)}

	// Namespace: each directory's metadata journal persists a prefix
	// of its pending operations; survivors apply in global order.
	byDir := make(map[string][]pendingNS)
	var dirs []string
	for _, p := range cs.pending {
		d := p.dir()
		if _, ok := byDir[d]; !ok {
			dirs = append(dirs, d)
		}
		byDir[d] = append(byDir[d], p)
	}
	sort.Strings(dirs)
	survivedNS := make(map[int64]bool)
	for _, d := range dirs {
		ops := byDir[d]
		for _, p := range ops[:cs.rng.Intn(len(ops)+1)] {
			survivedNS[p.seq] = true
		}
	}
	ns := make(map[string]*file, len(cs.durable))
	for k, v := range cs.durable {
		ns[k] = v
	}
	for _, p := range cs.pending {
		if survivedNS[p.seq] {
			rpt.SurvivedNS++
			applyNS(ns, p)
		}
	}

	// Data: deterministic order (sorted names, each file object once).
	names := make([]string, 0, len(ns))
	for n := range ns {
		names = append(names, n)
	}
	sort.Strings(names)
	seen := make(map[*file]bool, len(names))
	for _, name := range names {
		f := ns[name]
		if seen[f] {
			continue
		}
		seen[f] = true
		f.mu.Lock()
		base := cloneBytes(f.durable)
		var keep []writeRec
		for _, r := range f.dirty {
			rpt.PendingWrites++
			if cs.rng.Float64() < writeSurviveProb {
				keep = append(keep, r)
			}
		}
		if len(keep) > 0 && cs.rng.Float64() < tearProb {
			last := keep[len(keep)-1]
			keep[len(keep)-1] = writeRec{seq: last.seq, off: last.off, data: last.data[:cs.rng.Intn(len(last.data))]}
			rpt.TornWrites++
		}
		rpt.SurvivedWrites += len(keep)
		for _, r := range keep {
			base = applyWrite(base, r.off, r.data)
		}
		f.data = base
		f.durable = cloneBytes(base)
		f.dirty = nil
		f.imu.Lock()
		f.sums = nil
		f.tainted = nil
		f.imu.Unlock()
		f.mu.Unlock()
	}

	fs.files = ns
	cs.durable = make(map[string]*file, len(ns))
	for k, v := range ns {
		cs.durable[k] = v
	}
	cs.pending = nil
	cs.crashed = false
	cs.armAt = 0
	rpt.Files = len(ns)
	return rpt, nil
}
