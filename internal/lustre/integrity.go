package lustre

import (
	"errors"

	"repro/internal/faultinject"
	"repro/internal/integrity"
	"repro/internal/telemetry"
)

// End-to-end data integrity for the simulated file system.
//
// Real Lustre deployments at Titan scale see silent corruption — bad
// DMA on an OSS, bit flips on the IB fabric — not just clean EIO. With
// integrity enabled the FS keeps a CRC32C per fixed-size block of every
// file, maintained write-side exactly like a T10-PI style guard tag:
//
//   - WriteAt recomputes the checksums of every block it touches, and
//     read-verifies any block it only partially overwrites (the
//     read-modify-write a real guard-tag update performs), so stored
//     corruption is caught at the next write to its block rather than
//     laundered into a fresh checksum.
//   - ReadAt re-computes block checksums over the bytes it returns and
//     compares them with the write-time sums. A mismatch triggers a
//     bounded reread (transient wire corruption), then surfaces as
//     ErrCorruptData (persistent stored corruption).
//
// Injection is the faultinject corrupt rule kind: lustre.write flips a
// stored bit after the checksums are recorded (bad DMA between client
// checksum and OST platter), lustre.read flips a bit of the returned
// copy (wire corruption; the store stays clean, so a reread heals it).
// The simulator is omniscient about its own injections — each write
// flip taints its block, and taints are retired into exactly one of
// three buckets: detected (a verify caught it), masked (a later write
// fully overwrote the block, or the file was unlinked unread), or
// latent (still sitting in a live file at end of run). The chaos
// harness asserts detected+masked+latent equals the plan's injection
// count, which is precisely the "no silent escapes" invariant.

// integrityBlock is the checksum granularity in bytes. Small enough
// that partition-phase point runs map to a handful of blocks, large
// enough that per-file overhead is ~0.1%.
const integrityBlock = 4096

// ErrCorruptData reports stored data that failed checksum verification
// and could not be healed by rereading: the on-disk bytes are wrong.
// Callers must treat the read (or the read-modify-write) as failed;
// phase-level retry or redispatch decides what to do next.
var ErrCorruptData = errors.New("lustre: data corruption detected")

// IntegrityReport summarizes the fate of injected corruptions.
type IntegrityReport struct {
	// DetectedRead counts wire-corrupted reads caught by verification
	// (and healed by reread).
	DetectedRead int64
	// DetectedWrite counts stored corruptions caught by a read or a
	// partial-overwrite verify.
	DetectedWrite int64
	// Masked counts stored corruptions neutralized before any reader
	// saw them: block fully overwritten, or file removed unread.
	Masked int64
	// Rereads counts verification-triggered rereads (each heals one
	// transient read corruption).
	Rereads int64
	// Latent counts corrupted blocks still present in live files.
	Latent int64
}

// EnableIntegrity turns on per-block CRC32C tracking and read-time
// verification. Files that already exist are checksummed lazily on
// their next operation, treating current contents as the clean
// baseline. Integrity stays on for the life of the FS.
func (fs *FS) EnableIntegrity() {
	fs.mu.Lock()
	fs.integrity = true
	fs.mu.Unlock()
}

// IntegrityEnabled reports whether block checksumming is on.
func (fs *FS) IntegrityEnabled() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.integrity
}

// IntegrityReport returns the corruption ledger: how many injected
// corruptions were detected, masked, or remain latent in live files.
func (fs *FS) IntegrityReport() IntegrityReport {
	fs.mu.Lock()
	m := fs.m
	files := make([]*file, 0, len(fs.files))
	for _, f := range fs.files {
		files = append(files, f)
	}
	fs.mu.Unlock()
	r := IntegrityReport{
		DetectedRead:  m.corruptReads.Value(),
		DetectedWrite: m.corruptWrites.Value(),
		Masked:        m.corruptMasked.Value(),
		Rereads:       m.rereads.Value(),
	}
	for _, f := range files {
		f.imu.Lock()
		for _, c := range f.tainted {
			r.Latent += c
		}
		f.imu.Unlock()
	}
	return r
}

// blockRange returns the inclusive block numbers spanning [off, end).
func blockRange(off, end int64) (first, last int64) {
	return off / integrityBlock, (end - 1) / integrityBlock
}

// ensureSums builds the file's block checksums from current contents if
// they have not been tracked yet. Callers hold f.mu (read or write);
// imu serializes the lazy build between concurrent readers.
func (f *file) ensureSums() {
	f.imu.Lock()
	defer f.imu.Unlock()
	if f.tainted == nil {
		f.tainted = make(map[int64]int64)
	}
	if f.sums != nil || len(f.data) == 0 {
		return
	}
	n := (int64(len(f.data)) + integrityBlock - 1) / integrityBlock
	f.sums = make([]uint32, n)
	for b := int64(0); b < n; b++ {
		vs, ve := b*integrityBlock, (b+1)*integrityBlock
		if ve > int64(len(f.data)) {
			ve = int64(len(f.data))
		}
		f.sums[b] = integrity.Checksum(f.data[vs:ve])
	}
}

// verifyWriteCover runs the read-modify-write side of a guard-tag
// update: for every block the write [off, end) touches (including
// blocks whose valid range changes only because the file grows through
// them), a block whose prior contents survive the write is verified
// against its recorded checksum, and a tainted block that is fully
// overwritten is retired as masked. Returns the blocks caught corrupt
// with their total taint count (several flips may share a block).
// Caller holds f.mu for writing; file contents are pre-write.
func (f *file) verifyWriteCover(off, end int64) (corrupt []int64, corruptCount, masked int64) {
	oldSize := int64(len(f.data))
	f.imu.Lock()
	defer f.imu.Unlock()
	start := off
	if oldSize < start {
		start = oldSize // growth zero-fills the gap: those blocks change too
	}
	first, last := blockRange(start, end)
	for b := first; b <= last; b++ {
		vs, ve := b*integrityBlock, (b+1)*integrityBlock
		if ve > oldSize {
			ve = oldSize
		}
		if vs >= ve || b >= int64(len(f.sums)) {
			continue // no prior contents recorded for this block
		}
		if off <= vs && end >= ve {
			// Full overwrite: prior contents (tainted or not) vanish.
			if n := f.tainted[b]; n > 0 {
				delete(f.tainted, b)
				masked += n
			}
			continue
		}
		if integrity.Checksum(f.data[vs:ve]) != f.sums[b] {
			n := f.tainted[b]
			if n == 0 {
				n = 1 // mismatch without a recorded taint: count it anyway
			}
			delete(f.tainted, b)
			corrupt = append(corrupt, b)
			corruptCount += n
		}
	}
	return corrupt, corruptCount, masked
}

// recomputeSums refreshes the checksums of every block whose contents
// or valid range changed due to a write of [off, end) over a file that
// previously ended at oldSize. Caller holds f.mu for writing; contents
// are post-write.
func (f *file) recomputeSums(off, end, oldSize int64) {
	f.imu.Lock()
	defer f.imu.Unlock()
	size := int64(len(f.data))
	n := (size + integrityBlock - 1) / integrityBlock
	if int64(len(f.sums)) < n {
		f.sums = append(f.sums, make([]uint32, n-int64(len(f.sums)))...)
	}
	start := off
	if oldSize < start {
		start = oldSize
	}
	first, last := blockRange(start, end)
	for b := first; b <= last; b++ {
		vs, ve := b*integrityBlock, (b+1)*integrityBlock
		if ve > size {
			ve = size
		}
		f.sums[b] = integrity.Checksum(f.data[vs:ve])
	}
}

// taint records one more stored corruption in the block holding
// absolute offset abs. Caller holds f.mu for writing.
func (f *file) taint(abs int64) {
	f.imu.Lock()
	f.tainted[abs/integrityBlock]++
	f.imu.Unlock()
}

// verifyRead checks an n-byte read of [off, off+n) returned in p
// against the block checksums, combining p with the stored bytes
// flanking it inside edge blocks. Returns the mismatching blocks.
// Caller holds f.mu for reading (so writers are excluded).
func (f *file) verifyRead(p []byte, off int64, n int) (corrupt []int64) {
	if n == 0 {
		return nil
	}
	end := off + int64(n)
	size := int64(len(f.data))
	f.imu.Lock()
	defer f.imu.Unlock()
	first, last := blockRange(off, end)
	for b := first; b <= last; b++ {
		if b >= int64(len(f.sums)) {
			continue
		}
		vs, ve := b*integrityBlock, (b+1)*integrityBlock
		if ve > size {
			ve = size
		}
		crc := uint32(0)
		if vs < off {
			crc = integrity.Update(crc, f.data[vs:off])
			vs = off
		}
		pe := ve
		if pe > end {
			pe = end
		}
		crc = integrity.Update(crc, p[vs-off:pe-off])
		if ve > end {
			crc = integrity.Update(crc, f.data[end:ve])
		}
		if crc != f.sums[b] {
			corrupt = append(corrupt, b)
		}
	}
	return corrupt
}

// retireTaints retires detected stored corruptions among blocks,
// returning the total taint count retired (each injected flip counts
// once, even when several share a block).
func (f *file) retireTaints(blocks []int64) int64 {
	f.imu.Lock()
	defer f.imu.Unlock()
	var n int64
	for _, b := range blocks {
		if c := f.tainted[b]; c > 0 {
			delete(f.tainted, b)
			n += c
		}
	}
	return n
}

// maskTaints retires every remaining taint on an unlinked file as
// masked: removed data can no longer influence any output.
func (fs *FS) maskTaints(f *file) {
	if f == nil {
		return
	}
	f.imu.Lock()
	var n int64
	for b, c := range f.tainted {
		n += c
		delete(f.tainted, b)
	}
	f.imu.Unlock()
	if n > 0 {
		fs.mu.Lock()
		m := fs.m
		fs.mu.Unlock()
		m.corruptMasked.Add(n)
	}
}

// detect records corruption detections in telemetry: the shared
// integrity counter (labeled by site — corruptReads/corruptWrites are
// those handles) and a span event.
func (fs *FS) detect(site faultinject.Site, name string, off int64, healed bool, count int64) {
	hub, parent, m, _ := fs.telemetry()
	switch site {
	case faultinject.LustreRead:
		m.corruptReads.Add(count)
	case faultinject.LustreWrite:
		m.corruptWrites.Add(count)
	}
	hub.Event(parent, "integrity.corruption.detected",
		telemetry.String("site", string(site)),
		telemetry.String("file", name),
		telemetry.Int64("offset", off),
		telemetry.Bool("healed", healed),
	)
}
