package lustre

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faultinject"
)

func integrityFS(t *testing.T) *FS {
	t.Helper()
	fs := New(Config{OSTs: 4, StripeSize: 1 << 16}, nil)
	fs.EnableIntegrity()
	return fs
}

func patterned(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 7)
	}
	return p
}

// A transient read-side bit flip is caught by block verification and
// healed by a reread: the caller sees clean data and no error.
func TestIntegrityReadCorruptionHealed(t *testing.T) {
	fs := integrityFS(t)
	plan := faultinject.New(1)
	plan.Arm(faultinject.LustreRead, faultinject.Rule{Corrupt: true, Times: 1})
	fs.SetFaultPlan(plan)

	want := patterned(3 * integrityBlock / 2)
	h := fs.Create("data")
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("healed read returned wrong bytes")
	}
	r := fs.IntegrityReport()
	if r.DetectedRead != 1 || r.Rereads != 1 || r.Latent != 0 {
		t.Fatalf("report = %+v, want 1 detected read, 1 reread, 0 latent", r)
	}
	if n := plan.CorruptionsInjected(faultinject.LustreRead); n != 1 {
		t.Fatalf("injected = %d, want 1", n)
	}
}

// A write-side flip lands in the store after the checksums were
// recorded; the next read of that block detects it and fails loudly
// instead of returning wrong bytes.
func TestIntegrityWriteCorruptionDetectedOnRead(t *testing.T) {
	fs := integrityFS(t)
	plan := faultinject.New(2)
	plan.Arm(faultinject.LustreWrite, faultinject.Rule{Corrupt: true, Times: 1})
	fs.SetFaultPlan(plan)

	h := fs.Create("data")
	if _, err := h.WriteAt(patterned(integrityBlock), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if r := fs.IntegrityReport(); r.Latent != 1 {
		t.Fatalf("latent = %d after corrupted write, want 1", r.Latent)
	}
	got := make([]byte, integrityBlock)
	if _, err := h.ReadAt(got, 0); !errors.Is(err, ErrCorruptData) {
		t.Fatalf("ReadAt err = %v, want ErrCorruptData", err)
	}
	r := fs.IntegrityReport()
	if r.DetectedWrite != 1 || r.Latent != 0 {
		t.Fatalf("report = %+v, want 1 detected write, 0 latent", r)
	}
}

// Fully overwriting a corrupted block retires the taint as masked: the
// bad bytes never reached a reader.
func TestIntegrityWriteCorruptionMaskedByOverwrite(t *testing.T) {
	fs := integrityFS(t)
	plan := faultinject.New(3)
	plan.Arm(faultinject.LustreWrite, faultinject.Rule{Corrupt: true, Times: 1})
	fs.SetFaultPlan(plan)

	h := fs.Create("data")
	if _, err := h.WriteAt(patterned(integrityBlock), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	want := patterned(integrityBlock)
	for i := range want {
		want[i] ^= 0xff
	}
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got := make([]byte, integrityBlock)
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt after overwrite: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("overwrite did not replace corrupted bytes")
	}
	r := fs.IntegrityReport()
	if r.Masked != 1 || r.DetectedWrite != 0 || r.Latent != 0 {
		t.Fatalf("report = %+v, want 1 masked", r)
	}
}

// Partially overwriting a corrupted block performs the guard-tag
// read-modify-write verify and detects the stored corruption at write
// time, so the taint is never re-checksummed into a valid block.
func TestIntegrityPartialOverwriteDetects(t *testing.T) {
	fs := integrityFS(t)
	plan := faultinject.New(4)
	plan.Arm(faultinject.LustreWrite, faultinject.Rule{Corrupt: true, Times: 1})
	fs.SetFaultPlan(plan)

	h := fs.Create("data")
	if _, err := h.WriteAt(patterned(integrityBlock), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if _, err := h.WriteAt([]byte{1, 2, 3}, 10); !errors.Is(err, ErrCorruptData) {
		t.Fatalf("partial overwrite err = %v, want ErrCorruptData", err)
	}
	r := fs.IntegrityReport()
	if r.DetectedWrite != 1 || r.Latent != 0 {
		t.Fatalf("report = %+v, want 1 detected write, 0 latent", r)
	}
}

// Removing a file retires its taints as masked: unlinked data cannot
// influence output, so the chaos ledger still balances.
func TestIntegrityRemoveMasksTaints(t *testing.T) {
	fs := integrityFS(t)
	plan := faultinject.New(5)
	plan.Arm(faultinject.LustreWrite, faultinject.Rule{Corrupt: true, Times: 1})
	fs.SetFaultPlan(plan)

	h := fs.Create("data")
	if _, err := h.WriteAt(patterned(integrityBlock), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	fs.Remove("data")
	r := fs.IntegrityReport()
	if r.Masked != 1 || r.Latent != 0 {
		t.Fatalf("report = %+v, want 1 masked, 0 latent", r)
	}
}

// Without integrity enabled an injected read flip escapes silently —
// the scenario the checksummed planes exist to prevent.
func TestCorruptionEscapesWithoutIntegrity(t *testing.T) {
	fs := New(Config{OSTs: 4, StripeSize: 1 << 16}, nil)
	plan := faultinject.New(6)
	plan.Arm(faultinject.LustreRead, faultinject.Rule{Corrupt: true, Times: 1})
	fs.SetFaultPlan(plan)

	want := patterned(256)
	h := fs.Create("data")
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("expected the injected flip to corrupt the unprotected read")
	}
}
