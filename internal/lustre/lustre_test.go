package lustre

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func testConfig() Config {
	return Config{
		OSTs:         4,
		StripeSize:   64,
		OSTBandwidth: 1e6,
		SeekPenalty:  time.Millisecond,
	}
}

func TestCreateWriteRead(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("points.bin")
	data := []byte("hello lustre")
	if n, err := h.WriteAt(data, 0); err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d,%v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := h.ReadAt(got, 0); err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d,%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read %q, want %q", got, data)
	}
	if sz, err := fs.Size("points.bin"); err != nil || sz != int64(len(data)) {
		t.Errorf("Size = %d,%v", sz, err)
	}
}

func TestOpenMissing(t *testing.T) {
	fs := New(testConfig(), nil)
	if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Open missing = %v, want ErrNotExist", err)
	}
	if _, err := fs.Size("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Size missing = %v, want ErrNotExist", err)
	}
}

func TestSparseWriteGrows(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("sparse")
	if _, err := h.WriteAt([]byte("x"), 1000); err != nil {
		t.Fatal(err)
	}
	if h.Size() != 1001 {
		t.Errorf("Size = %d, want 1001", h.Size())
	}
	// The hole reads as zeros.
	buf := make([]byte, 3)
	if _, err := h.ReadAt(buf, 500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Errorf("hole read %v, want zeros", buf)
	}
}

func TestReadAtEOF(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("short")
	if _, err := h.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := h.ReadAt(buf, 1)
	if n != 2 || err != io.EOF {
		t.Errorf("ReadAt past end = %d,%v, want 2,EOF", n, err)
	}
	n, err = h.ReadAt(buf, 100)
	if n != 0 || err != io.EOF {
		t.Errorf("ReadAt beyond end = %d,%v, want 0,EOF", n, err)
	}
}

func TestSequentialReadWrite(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("stream")
	for i := 0; i < 10; i++ {
		if _, err := h.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := fs.Open("stream")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[9] != 9 {
		t.Errorf("streamed read = %v", got)
	}
}

func TestSeek(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("seek")
	if _, err := h.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if pos, err := h.Seek(4, io.SeekStart); err != nil || pos != 4 {
		t.Fatalf("Seek = %d,%v", pos, err)
	}
	buf := make([]byte, 2)
	if _, err := h.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "45" {
		t.Errorf("read after seek = %q, want 45", buf)
	}
	if pos, err := h.Seek(-2, io.SeekEnd); err != nil || pos != 8 {
		t.Fatalf("SeekEnd = %d,%v", pos, err)
	}
	if _, err := h.Seek(-100, io.SeekStart); err == nil {
		t.Error("negative seek must fail")
	}
}

func TestSeekPenaltyChargedOnRandomWrites(t *testing.T) {
	// The §5.1.1 behaviour: the same volume written as many small random
	// writes must cost far more simulated time than one streaming write.
	cfg := testConfig()
	const total = 64 * 100

	streamFS := New(cfg, nil)
	h := streamFS.Create("stream")
	buf := make([]byte, total)
	if _, err := h.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}

	randomFS := New(cfg, nil)
	h2 := randomFS.Create("random")
	chunk := make([]byte, 64)
	for i := 99; i >= 0; i-- { // descending offsets: every write seeks
		if _, err := h2.WriteAt(chunk, int64(i*64)); err != nil {
			t.Fatal(err)
		}
	}
	st := streamFS.Clock().Now()
	rt := randomFS.Clock().Now()
	if rt <= st*10 {
		t.Errorf("random writes (%v) must cost much more than streaming (%v)", rt, st)
	}
	if got := randomFS.Stats().Seeks; got != 100 {
		t.Errorf("Seeks = %d, want 100", got)
	}
	if got := streamFS.Stats().Seeks; got != 1 {
		t.Errorf("streaming Seeks = %d, want 1 (initial position)", got)
	}
}

func TestStripingSpreadsLoad(t *testing.T) {
	cfg := testConfig() // 4 OSTs, 64-byte stripes
	fs := New(cfg, nil)
	h := fs.Create("wide")
	data := make([]byte, 64*8) // 8 stripes over 4 OSTs: 2 each
	if _, err := h.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// 8 stripes round-robin over 4 OSTs: every OST carries exactly 2
	// stripes' worth of traffic, so their busy times are equal and the
	// parallel clock sees per-OST time, not the serialized sum.
	first := fs.Clock().Resource("lustre/ost0")
	if first <= 0 {
		t.Fatal("ost0 received no traffic")
	}
	for ost := 1; ost < 4; ost++ {
		got := fs.Clock().Resource("lustre/ost" + string(rune('0'+ost)))
		if got != first {
			t.Errorf("ost%d busy = %v, want %v (even striping)", ost, got, first)
		}
	}
}

func TestConcurrentHandles(t *testing.T) {
	fs := New(testConfig(), nil)
	fs.Create("shared")
	const writers = 8
	const chunk = 128
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := fs.OpenOrCreate("shared")
			data := bytes.Repeat([]byte{byte('a' + w)}, chunk)
			if _, err := h.WriteAt(data, int64(w*chunk)); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	h, err := fs.Open("shared")
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != writers*chunk {
		t.Fatalf("file size = %d, want %d", len(all), writers*chunk)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < chunk; i++ {
			if all[w*chunk+i] != byte('a'+w) {
				t.Fatalf("byte %d = %c, want %c", w*chunk+i, all[w*chunk+i], 'a'+w)
			}
		}
	}
}

func TestRemoveAndList(t *testing.T) {
	fs := New(testConfig(), nil)
	fs.Create("b")
	fs.Create("a")
	fs.Create("c")
	if got := fs.List(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("List = %v", got)
	}
	fs.Remove("b")
	fs.Remove("missing") // no-op
	if got := fs.List(); len(got) != 2 {
		t.Errorf("List after remove = %v", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("s")
	if _, err := h.WriteAt(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReadAt(make([]byte, 50), 0); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.WriteOps != 1 || st.BytesWritten != 100 {
		t.Errorf("write stats = %+v", st)
	}
	if st.ReadOps != 1 || st.BytesRead != 50 {
		t.Errorf("read stats = %+v", st)
	}
	if st.FilesCreated != 1 {
		t.Errorf("FilesCreated = %d, want 1", st.FilesCreated)
	}
}

func TestFaultPlan(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("f")
	boom := errors.New("io failure")
	// One shared counter over reads and writes, permanent once fired —
	// the lustre.io pseudo-site.
	fs.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.LustreIO, faultinject.Rule{After: 2, Err: boom}))
	if _, err := h.WriteAt([]byte("a"), 0); err != nil {
		t.Fatalf("op 1 must succeed: %v", err)
	}
	if _, err := h.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatalf("op 2 must succeed: %v", err)
	}
	if _, err := h.WriteAt([]byte("b"), 1); !errors.Is(err, boom) {
		t.Fatalf("op 3 = %v, want injected fault", err)
	}
	if _, err := h.ReadAt(make([]byte, 1), 0); !errors.Is(err, boom) {
		t.Fatalf("subsequent ops must keep failing, got %v", err)
	}
	fs.SetFaultPlan(nil)
	if _, err := h.WriteAt([]byte("c"), 2); err != nil {
		t.Fatalf("disarmed fault still fired: %v", err)
	}
}

func TestFaultPlanTransientAndPerSite(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("f")
	boom := errors.New("ost evicted")
	// Writes fail twice then recover; reads are never armed.
	fs.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.LustreWrite, faultinject.Rule{Times: 2, Err: boom}))
	if _, err := h.ReadAt(make([]byte, 1), 0); err != io.EOF {
		t.Fatalf("read must be unaffected, got %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := h.WriteAt([]byte("a"), 0); !errors.Is(err, boom) {
			t.Fatalf("write %d = %v, want fault", i, err)
		}
	}
	if _, err := h.WriteAt([]byte("a"), 0); err != nil {
		t.Fatalf("transient fault must clear after 2 failures: %v", err)
	}
}

// TestFaultPlanSharedIOBudget pins the lustre.io pseudo-site semantics:
// a combined read+write op budget shared by both sites, permanent
// failure once armed, and a nil plan disarming injection.
func TestFaultPlanSharedIOBudget(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("f")
	boom := errors.New("io failure")
	fs.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.LustreIO, faultinject.Rule{After: 2, Err: boom}))
	if _, err := h.WriteAt([]byte("a"), 0); err != nil {
		t.Fatalf("op 1 must succeed: %v", err)
	}
	if _, err := h.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatalf("op 2 must succeed: %v", err)
	}
	if _, err := h.WriteAt([]byte("b"), 1); !errors.Is(err, boom) {
		t.Fatalf("op 3 = %v, want injected fault", err)
	}
	fs.SetFaultPlan(nil)
	if _, err := h.WriteAt([]byte("c"), 2); err != nil {
		t.Fatalf("disarmed fault still fired: %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("a")
	if _, err := h.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("a"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("old name still opens: %v", err)
	}
	nb, err := fs.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := nb.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("renamed contents = %q, want hello", buf)
	}
	if err := fs.Rename("missing", "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("renaming a missing file = %v, want ErrNotExist", err)
	}
}

// TestRenameOverExisting checks POSIX replace semantics: the target is
// atomically replaced, and a handle open on the replaced file keeps
// addressing the unlinked contents (descriptor follows the object).
func TestRenameOverExisting(t *testing.T) {
	fs := New(testConfig(), nil)
	old := fs.Create("dst")
	if _, err := old.WriteAt([]byte("old"), 0); err != nil {
		t.Fatal(err)
	}
	src := fs.Create("src")
	if _, err := src.WriteAt([]byte("new"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("src", "dst"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Open("dst")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := got.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "new" {
		t.Fatalf("dst after rename = %q, want new", buf)
	}
	// The orphaned handle still reads (and writes) the old contents.
	if _, err := old.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "old" {
		t.Fatalf("orphaned handle reads %q, want old", buf)
	}
	if _, err := fs.Open("src"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("src still exists after rename: %v", err)
	}
}

// TestRenameOfOpenHandle checks that a handle opened before the rename
// keeps operating on the file under its new name: writes through the old
// handle are visible to readers of the new name.
func TestRenameOfOpenHandle(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("tmp")
	if _, err := h.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("tmp", "final"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("xyz"), 3); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("final")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "abcxyz" {
		t.Fatalf("final = %q, want abcxyz", buf)
	}
	if n, err := fs.Size("final"); err != nil || n != 6 {
		t.Fatalf("Size(final) = %d, %v; want 6", n, err)
	}
	// Rename to the same name is a no-op, not a delete.
	if err := fs.Rename("final", "final"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("final"); err != nil {
		t.Fatalf("self-rename removed the file: %v", err)
	}
}

func TestNegativeOffsets(t *testing.T) {
	fs := New(testConfig(), nil)
	h := fs.Create("neg")
	if _, err := h.WriteAt([]byte("x"), -1); err == nil {
		t.Error("negative WriteAt offset must fail")
	}
	if _, err := h.ReadAt(make([]byte, 1), -1); err == nil {
		t.Error("negative ReadAt offset must fail")
	}
}
