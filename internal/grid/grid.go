// Package grid implements the Eps×Eps regular grid that underlies
// Mr. Scan's partitioner and merge phases (§3.1.2).
//
// The input space is divided into square cells of side Eps. Partitions are
// unions of grid cells, which guarantees each partition's longest distance
// across exceeds Eps (the first "profitability" constraint), and makes the
// shadow region of a partition exactly the set of 8-neighbor cells not in
// the partition: any point within Eps of a partition boundary must lie in
// an adjacent cell.
package grid

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Coord identifies one Eps×Eps grid cell. Cell (cx,cy) covers the
// half-open square [cx·Eps, (cx+1)·Eps) × [cy·Eps, (cy+1)·Eps).
type Coord struct {
	CX, CY int32
}

// String renders the coordinate for logs.
func (c Coord) String() string { return fmt.Sprintf("cell(%d,%d)", c.CX, c.CY) }

// Less orders coordinates in the partitioner's iteration order: first
// along the y axis, then along the x axis (paper §3.1.2), i.e.
// column-major with x as the slow axis.
func (c Coord) Less(o Coord) bool {
	if c.CX != o.CX {
		return c.CX < o.CX
	}
	return c.CY < o.CY
}

// Neighbors returns the 8 surrounding cells (Moore neighborhood) in a
// deterministic order.
func (c Coord) Neighbors() [8]Coord {
	return [8]Coord{
		{c.CX - 1, c.CY - 1}, {c.CX - 1, c.CY}, {c.CX - 1, c.CY + 1},
		{c.CX, c.CY - 1}, {c.CX, c.CY + 1},
		{c.CX + 1, c.CY - 1}, {c.CX + 1, c.CY}, {c.CX + 1, c.CY + 1},
	}
}

// Grid maps points to Eps×Eps cells. The zero value is unusable; construct
// with New.
type Grid struct {
	eps float64
}

// New returns a grid with the given cell side. eps must be positive.
func New(eps float64) Grid {
	if eps <= 0 {
		panic(fmt.Sprintf("grid: non-positive eps %v", eps))
	}
	return Grid{eps: eps}
}

// Eps returns the cell side length.
func (g Grid) Eps() float64 { return g.eps }

// CellOf returns the cell containing p.
func (g Grid) CellOf(p geom.Point) Coord {
	return Coord{
		CX: int32(math.Floor(p.X / g.eps)),
		CY: int32(math.Floor(p.Y / g.eps)),
	}
}

// CellRect returns the rectangle covered by cell c.
func (g Grid) CellRect(c Coord) geom.Rect {
	return geom.Rect{
		MinX: float64(c.CX) * g.eps,
		MinY: float64(c.CY) * g.eps,
		MaxX: float64(c.CX+1) * g.eps,
		MaxY: float64(c.CY+1) * g.eps,
	}
}

// Anchors returns the 8 merge anchors of cell c: its 4 corners and the 4
// midpoints of its sides. Representative points are the cluster core
// points closest to each anchor (§3.3.1); the geometric argument in the
// paper's Figure 5 shows 8 anchors suffice for an Eps×Eps cell.
func (g Grid) Anchors(c Coord) [8]geom.Point {
	r := g.CellRect(c)
	mx := (r.MinX + r.MaxX) / 2
	my := (r.MinY + r.MaxY) / 2
	return [8]geom.Point{
		{X: r.MinX, Y: r.MinY}, // corners
		{X: r.MinX, Y: r.MaxY},
		{X: r.MaxX, Y: r.MinY},
		{X: r.MaxX, Y: r.MaxY},
		{X: mx, Y: r.MinY}, // side midpoints
		{X: mx, Y: r.MaxY},
		{X: r.MinX, Y: my},
		{X: r.MaxX, Y: my},
	}
}

// Histogram counts points per non-empty cell. This is the only information
// the distributed partitioner ships to the root (§3.1.3): "the partitioner
// is able to ... only send a point count of each non-empty Eps x Eps cell".
type Histogram struct {
	Counts map[Coord]int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{Counts: make(map[Coord]int64)}
}

// HistogramOf builds a histogram of pts on grid g.
func (g Grid) HistogramOf(pts []geom.Point) *Histogram {
	h := NewHistogram()
	for _, p := range pts {
		h.Counts[g.CellOf(p)]++
	}
	return h
}

// Add accumulates other into h. Used by the mrnet reduction filter that
// sums per-leaf histograms on the way to the root.
func (h *Histogram) Add(other *Histogram) {
	for c, n := range other.Counts {
		h.Counts[c] += n
	}
}

// Total returns the total point count across all cells.
func (h *Histogram) Total() int64 {
	var t int64
	for _, n := range h.Counts {
		t += n
	}
	return t
}

// Cells returns the non-empty cells sorted in partitioner iteration order.
func (h *Histogram) Cells() []Coord {
	cells := make([]Coord, 0, len(h.Counts))
	for c := range h.Counts {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Less(cells[j]) })
	return cells
}

// MaxCell returns the most populous cell and its count (zero Coord and 0
// for an empty histogram). The strong-scaling limit in the paper (§5.1.2)
// is set by the single densest Eps×Eps cell, which cannot be subdivided.
func (h *Histogram) MaxCell() (Coord, int64) {
	var best Coord
	var bestN int64
	first := true
	for c, n := range h.Counts {
		if first || n > bestN || (n == bestN && c.Less(best)) {
			best, bestN = c, n
			first = false
		}
	}
	if first {
		return Coord{}, 0
	}
	return best, bestN
}

// Index groups point indices by cell, supporting neighborhood queries.
// It doubles as a spatial index for DBSCAN: the Eps-neighborhood of a
// point is contained in its cell plus the 8 neighbors.
type Index struct {
	g     Grid
	pts   []geom.Point
	cells map[Coord][]int32
}

// NewIndex builds a cell index over pts. The index keeps a reference to
// pts; callers must not mutate the slice afterwards.
func NewIndex(g Grid, pts []geom.Point) *Index {
	idx := &Index{g: g, pts: pts, cells: make(map[Coord][]int32)}
	for i, p := range pts {
		c := g.CellOf(p)
		idx.cells[c] = append(idx.cells[c], int32(i))
	}
	return idx
}

// Grid returns the underlying grid.
func (idx *Index) Grid() Grid { return idx.g }

// Points returns the indexed points.
func (idx *Index) Points() []geom.Point { return idx.pts }

// CellPoints returns the indices of points in cell c (nil if empty).
func (idx *Index) CellPoints(c Coord) []int32 { return idx.cells[c] }

// NonEmptyCells returns all non-empty cells in iteration order.
func (idx *Index) NonEmptyCells() []Coord {
	cells := make([]Coord, 0, len(idx.cells))
	for c := range idx.cells {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Less(cells[j]) })
	return cells
}

// Neighbors invokes fn with the index of every point within eps of p
// (excluding p itself when p is one of the indexed points and self >= 0).
// eps must be at most the grid cell side for the 3×3 cell scan to be
// complete; Mr. Scan always queries with eps == cell side.
func (idx *Index) Neighbors(p geom.Point, eps float64, self int32, fn func(i int32)) {
	if eps > idx.g.eps*(1+1e-12) {
		panic(fmt.Sprintf("grid: query eps %v exceeds cell side %v", eps, idx.g.eps))
	}
	eps2 := eps * eps
	c := idx.g.CellOf(p)
	scan := func(cc Coord) {
		for _, i := range idx.cells[cc] {
			if i == self {
				continue
			}
			if geom.Dist2(p, idx.pts[i]) <= eps2 {
				fn(i)
			}
		}
	}
	scan(c)
	for _, n := range c.Neighbors() {
		scan(n)
	}
}

// CountNeighbors returns |Eps-neighborhood of p| excluding p itself, with
// early exit once the count reaches limit (limit <= 0 means count all).
func (idx *Index) CountNeighbors(p geom.Point, eps float64, self int32, limit int) int {
	count := 0
	if eps > idx.g.eps*(1+1e-12) {
		panic(fmt.Sprintf("grid: query eps %v exceeds cell side %v", eps, idx.g.eps))
	}
	eps2 := eps * eps
	c := idx.g.CellOf(p)
	neighbors := c.Neighbors()
	cells := [9]Coord{c}
	copy(cells[1:], neighbors[:])
	for _, cc := range cells {
		for _, i := range idx.cells[cc] {
			if i == self {
				continue
			}
			if geom.Dist2(p, idx.pts[i]) <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
	}
	return count
}
