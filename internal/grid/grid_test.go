package grid

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestCellOf(t *testing.T) {
	g := New(0.1)
	tests := []struct {
		p    geom.Point
		want Coord
	}{
		{geom.Point{X: 0, Y: 0}, Coord{0, 0}},
		{geom.Point{X: 0.05, Y: 0.05}, Coord{0, 0}},
		{geom.Point{X: 0.1, Y: 0}, Coord{1, 0}}, // cell boundary belongs to the next cell
		{geom.Point{X: -0.05, Y: 0.25}, Coord{-1, 2}},
		{geom.Point{X: -0.1, Y: -0.1}, Coord{-1, -1}},
		{geom.Point{X: 179.99, Y: -89.99}, Coord{1799, -900}},
	}
	for _, tt := range tests {
		if got := g.CellOf(tt.p); got != tt.want {
			t.Errorf("CellOf(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestCellRectContainsItsPoints(t *testing.T) {
	g := New(0.25)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		// Keep coordinates in a range where float math is exact enough.
		x = math.Mod(x, 1000)
		y = math.Mod(y, 1000)
		p := geom.Point{X: x, Y: y}
		r := g.CellRect(g.CellOf(p))
		return p.X >= r.MinX && p.X < r.MaxX+1e-9 && p.Y >= r.MinY && p.Y < r.MaxY+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) must panic")
		}
	}()
	New(0)
}

func TestNeighborsAreEightDistinct(t *testing.T) {
	c := Coord{3, -2}
	ns := c.Neighbors()
	seen := map[Coord]bool{c: true}
	for _, n := range ns {
		if seen[n] {
			t.Errorf("duplicate or self neighbor %v", n)
		}
		seen[n] = true
		if abs32(n.CX-c.CX) > 1 || abs32(n.CY-c.CY) > 1 {
			t.Errorf("neighbor %v not adjacent to %v", n, c)
		}
	}
	if len(seen) != 9 {
		t.Errorf("expected 8 distinct neighbors, got %d", len(seen)-1)
	}
}

func TestCoordLessIterationOrder(t *testing.T) {
	// Paper §3.1.2: iterate first along y, then x — x is the slow axis.
	cells := []Coord{{1, 0}, {0, 1}, {0, 0}, {1, -1}}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Less(cells[j]) })
	want := []Coord{{0, 0}, {0, 1}, {1, -1}, {1, 0}}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("iteration order = %v, want %v", cells, want)
		}
	}
}

func TestAnchorsOnCellBoundary(t *testing.T) {
	g := New(0.1)
	c := Coord{2, 3}
	r := g.CellRect(c)
	anchors := g.Anchors(c)
	if len(anchors) != 8 {
		t.Fatalf("expected 8 anchors")
	}
	for _, a := range anchors {
		onX := a.X == r.MinX || a.X == r.MaxX || a.X == (r.MinX+r.MaxX)/2
		onY := a.Y == r.MinY || a.Y == r.MaxY || a.Y == (r.MinY+r.MaxY)/2
		if !onX || !onY {
			t.Errorf("anchor %v not on cell boundary feature of %+v", a, r)
		}
	}
	// The defining property used by the merge proof (Figure 5): every
	// point of the cell is within Eps/2 of some anchor.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := geom.Point{
			X: r.MinX + rng.Float64()*(r.MaxX-r.MinX),
			Y: r.MinY + rng.Float64()*(r.MaxY-r.MinY),
		}
		best := math.Inf(1)
		for _, a := range anchors {
			if d := geom.Dist(p, a); d < best {
				best = d
			}
		}
		if best > g.Eps()/2+1e-12 {
			t.Fatalf("point %v is %v from nearest anchor, want <= Eps/2 = %v", p, best, g.Eps()/2)
		}
	}
}

func TestHistogram(t *testing.T) {
	g := New(1)
	pts := []geom.Point{
		{X: 0.5, Y: 0.5}, {X: 0.6, Y: 0.4}, // cell (0,0)
		{X: 1.5, Y: 0.5},   // cell (1,0)
		{X: -0.5, Y: -0.5}, // cell (-1,-1)
	}
	h := g.HistogramOf(pts)
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if h.Counts[Coord{0, 0}] != 2 || h.Counts[Coord{1, 0}] != 1 || h.Counts[Coord{-1, -1}] != 1 {
		t.Errorf("unexpected counts %v", h.Counts)
	}
	cells := h.Cells()
	if len(cells) != 3 {
		t.Fatalf("Cells = %v, want 3 cells", cells)
	}
	for i := 1; i < len(cells); i++ {
		if !cells[i-1].Less(cells[i]) {
			t.Errorf("cells not in iteration order: %v", cells)
		}
	}
}

func TestHistogramAdd(t *testing.T) {
	g := New(1)
	a := g.HistogramOf([]geom.Point{{X: 0.5, Y: 0.5}})
	b := g.HistogramOf([]geom.Point{{X: 0.6, Y: 0.6}, {X: 1.5, Y: 0.5}})
	a.Add(b)
	if a.Total() != 3 {
		t.Errorf("Total after Add = %d, want 3", a.Total())
	}
	if a.Counts[Coord{0, 0}] != 2 {
		t.Errorf("cell (0,0) = %d, want 2", a.Counts[Coord{0, 0}])
	}
}

func TestMaxCell(t *testing.T) {
	g := New(1)
	h := g.HistogramOf([]geom.Point{
		{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}, {X: 0.3, Y: 0.3},
		{X: 5.5, Y: 5.5},
	})
	c, n := h.MaxCell()
	if c != (Coord{0, 0}) || n != 3 {
		t.Errorf("MaxCell = %v,%d, want (0,0),3", c, n)
	}
	if _, n := NewHistogram().MaxCell(); n != 0 {
		t.Errorf("MaxCell of empty histogram must have count 0")
	}
}

func TestIndexNeighborsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 400
	const eps = 0.1
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), X: rng.Float64(), Y: rng.Float64()}
	}
	idx := NewIndex(New(eps), pts)
	for qi := 0; qi < n; qi += 7 {
		got := map[int32]bool{}
		idx.Neighbors(pts[qi], eps, int32(qi), func(i int32) { got[i] = true })
		want := map[int32]bool{}
		for j := range pts {
			if j != qi && geom.Dist2(pts[qi], pts[j]) <= eps*eps {
				want[int32(j)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("point %d: got %d neighbors, want %d", qi, len(got), len(want))
		}
		for j := range want {
			if !got[j] {
				t.Fatalf("point %d: missing neighbor %d", qi, j)
			}
		}
	}
}

func TestCountNeighborsEarlyExit(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 0.01, Y: 0}, {X: 0.02, Y: 0}, {X: 0.03, Y: 0}, {X: 5, Y: 5},
	}
	idx := NewIndex(New(0.1), pts)
	if got := idx.CountNeighbors(pts[0], 0.1, 0, 2); got != 2 {
		t.Errorf("limited count = %d, want 2", got)
	}
	if got := idx.CountNeighbors(pts[0], 0.1, 0, 0); got != 3 {
		t.Errorf("full count = %d, want 3", got)
	}
	// Query from a location not in the set: self = -1 counts everything.
	if got := idx.CountNeighbors(geom.Point{X: 0.015, Y: 0}, 0.1, -1, 0); got != 4 {
		t.Errorf("external query count = %d, want 4", got)
	}
}

func TestNeighborsPanicsOnOversizedEps(t *testing.T) {
	idx := NewIndex(New(0.1), []geom.Point{{X: 0, Y: 0}})
	defer func() {
		if recover() == nil {
			t.Error("querying with eps > cell side must panic (incomplete scan)")
		}
	}()
	idx.Neighbors(geom.Point{}, 0.2, -1, func(int32) {})
}

func TestNonEmptyCellsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	idx := NewIndex(New(1), pts)
	cells := idx.NonEmptyCells()
	for i := 1; i < len(cells); i++ {
		if !cells[i-1].Less(cells[i]) {
			t.Fatalf("cells out of order at %d: %v", i, cells)
		}
	}
	total := 0
	for _, c := range cells {
		total += len(idx.CellPoints(c))
	}
	if total != len(pts) {
		t.Errorf("cells cover %d points, want %d", total, len(pts))
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
