package telemetry

import (
	"strconv"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "site", "lustre.read")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("ops_total", "site", "lustre.read"); again != c {
		t.Fatal("same name+labels should return the same handle")
	}
	if other := r.Counter("ops_total", "site", "lustre.write"); other == c {
		t.Fatal("different labels should return a different handle")
	}

	g := r.Gauge("alloc_bytes")
	g.Set(100)
	g.Add(-30)
	if got := g.Value(); got != 70 {
		t.Fatalf("gauge = %d, want 70", got)
	}
	g.SetMax(50) // lower: no-op
	g.SetMax(90)
	if got := g.Value(); got != 90 {
		t.Fatalf("gauge after SetMax = %d, want 90", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "b", "2", "a", "1")
	b := r.Counter("x_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order should not distinguish handles")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %g, want 56.05", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Type != "histogram" {
		t.Fatalf("snapshot = %+v", snap)
	}
	want := []int64{1, 2, 1, 1} // per-bucket (non-cumulative), last = +Inf
	for i, n := range want {
		if snap[0].Buckets[i] != n {
			t.Fatalf("bucket %d = %d, want %d", i, snap[0].Buckets[i], n)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var h *Hub
	h.Counter("x").Inc()
	h.Gauge("y").Set(1)
	h.Histogram("z", nil).Observe(1)
	h.Event(nil, "e")
	h.RecordSim(nil, "s", 0)
	sp := h.Start(nil, "root")
	sp.Annotate(Int("k", 1))
	sp.End()
	var r *Registry
	if r.Counter("x") != nil || r.Snapshot() != nil {
		t.Fatal("nil registry should hand out nils")
	}
	var tr *Tracer
	tr.Event(nil, "e")
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer should be inert")
	}
}

// TestConcurrentHammer exercises the registry from many goroutines —
// run under -race (make test includes this package in its race list) it
// is the satellite's required concurrency check.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 16, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Handles resolved inside the loop on purpose: the lookup
			// path must be race-safe too, like concurrent kernel workers
			// each resolving their device's counters.
			for i := 0; i < iters; i++ {
				r.Counter("launches_total", "dev", "gpu"+strconv.Itoa(w%4)).Inc()
				r.Gauge("inflight").Add(1)
				r.Histogram("occ", LinearBuckets(0.1, 0.1, 10)).Observe(float64(i%10) / 10)
				r.Gauge("inflight").Add(-1)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, m := range r.Snapshot() {
		if m.Name == "launches_total" {
			total += m.Value
		}
	}
	if total != workers*iters {
		t.Fatalf("launches_total sum = %d, want %d", total, workers*iters)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
	if got := r.Histogram("occ", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}
