package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// AttrKind is the attribute key marking a span's role in the report.
// Spans annotated String(AttrKind, KindPhase) become rows of the
// per-phase breakdown — the paper's Figure 9 table.
const (
	AttrKind  = "kind"
	KindPhase = "phase"
)

// Report is the structured per-run record: the phase breakdown the
// paper reports, aggregate span timings, event counts, and every
// metric. It is built from one Hub's collected data.
type Report struct {
	// Phases lists spans marked kind=phase in start order — the
	// pipeline's partition/cluster/merge/sweep breakdown, in both wall
	// and simulated time.
	Phases []PhaseRow `json:"phases,omitempty"`
	// Spans aggregates all spans by name.
	Spans []SpanAgg `json:"spans,omitempty"`
	// Events aggregates instant events (faults, retries, hedges) by name.
	Events []EventAgg `json:"events,omitempty"`
	// Metrics is the registry snapshot.
	Metrics []MetricValue `json:"metrics,omitempty"`
	// DroppedSpans counts spans/events lost to the retention bound; a
	// non-zero value means Spans undercounts high-frequency names.
	DroppedSpans int64 `json:"dropped_spans,omitempty"`
}

// PhaseRow is one pipeline phase in the breakdown table.
type PhaseRow struct {
	Phase  string `json:"phase"`
	WallNs int64  `json:"wall_ns"`
	Wall   string `json:"wall"`
	SimNs  int64  `json:"sim_ns"`
	Sim    string `json:"sim"`
}

// SpanAgg aggregates every span of one name.
type SpanAgg struct {
	Name        string `json:"name"`
	Count       int64  `json:"count"`
	WallTotalNs int64  `json:"wall_total_ns"`
	WallMaxNs   int64  `json:"wall_max_ns"`
	SimTotalNs  int64  `json:"sim_total_ns"`
	SimMaxNs    int64  `json:"sim_max_ns"`
}

// EventAgg counts every event of one name.
type EventAgg struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
}

// BuildReport assembles the run report from the hub's collected spans,
// events and metrics. A nil hub yields an empty report.
func BuildReport(h *Hub) *Report {
	r := &Report{}
	if h == nil {
		return r
	}
	spans := h.Trace.Spans()
	var phases []SpanData
	aggs := make(map[string]*SpanAgg)
	for _, s := range spans {
		for _, a := range s.Attrs {
			if a.Key == AttrKind && a.Value == KindPhase {
				phases = append(phases, s)
				break
			}
		}
		agg := aggs[s.Name]
		if agg == nil {
			agg = &SpanAgg{Name: s.Name}
			aggs[s.Name] = agg
		}
		agg.Count++
		w, sim := s.WallDuration().Nanoseconds(), s.SimDuration().Nanoseconds()
		agg.WallTotalNs += w
		agg.SimTotalNs += sim
		if w > agg.WallMaxNs {
			agg.WallMaxNs = w
		}
		if sim > agg.SimMaxNs {
			agg.SimMaxNs = sim
		}
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i].StartWall < phases[j].StartWall })
	for _, p := range phases {
		r.Phases = append(r.Phases, PhaseRow{
			Phase:  p.Name,
			WallNs: p.WallDuration().Nanoseconds(),
			Wall:   p.WallDuration().String(),
			SimNs:  p.SimDuration().Nanoseconds(),
			Sim:    p.SimDuration().String(),
		})
	}
	for _, agg := range aggs {
		r.Spans = append(r.Spans, *agg)
	}
	sort.Slice(r.Spans, func(i, j int) bool { return r.Spans[i].Name < r.Spans[j].Name })
	evs := make(map[string]int64)
	for _, e := range h.Trace.Events() {
		evs[e.Name]++
	}
	for name, n := range evs {
		r.Events = append(r.Events, EventAgg{Name: name, Count: n})
	}
	sort.Slice(r.Events, func(i, j int) bool { return r.Events[i].Name < r.Events[j].Name })
	r.Metrics = h.Metrics.Snapshot()
	r.DroppedSpans = h.Trace.Dropped()
	return r
}

// Phase returns the named phase row and whether it exists.
func (r *Report) Phase(name string) (PhaseRow, bool) {
	for _, p := range r.Phases {
		if p.Phase == name {
			return p, true
		}
	}
	return PhaseRow{}, false
}

// WallTotal sums the phase rows' wall durations.
func (r *Report) WallTotal() time.Duration {
	var n int64
	for _, p := range r.Phases {
		n += p.WallNs
	}
	return time.Duration(n)
}

// WriteReport builds the report from h and writes it as indented JSON.
func WriteReport(w io.Writer, h *Hub) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildReport(h))
}
