package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
)

// DefaultMaxSpans bounds how many finished spans a tracer retains.
// High-frequency instrumentation points (per-write Lustre spans on a
// large partition phase) can exceed any bound; past it spans are
// dropped and counted rather than growing without limit.
const DefaultMaxSpans = 250_000

// SpanData is one finished span. Times are offsets: wall times from the
// tracer's epoch (its construction instant), sim times from the
// simulated clock's zero.
type SpanData struct {
	ID        int64
	Parent    int64 // 0 = root
	Name      string
	StartWall time.Duration
	EndWall   time.Duration
	StartSim  time.Duration
	EndSim    time.Duration
	Attrs     []Attr
}

// WallDuration returns the span's wall-clock duration.
func (s SpanData) WallDuration() time.Duration { return s.EndWall - s.StartWall }

// SimDuration returns the span's simulated-time duration.
func (s SpanData) SimDuration() time.Duration { return s.EndSim - s.StartSim }

// EventData is one instant event, attached to the span it occurred
// under (Span 0 = top level).
type EventData struct {
	Span  int64
	Name  string
	Wall  time.Duration
	Sim   time.Duration
	Attrs []Attr
}

// Tracer records spans and events. Safe for concurrent use. A nil
// *Tracer records nothing and hands out nil spans.
type Tracer struct {
	clock    *simclock.Clock
	epoch    time.Time
	now      func() time.Time // test hook
	maxSpans int

	nextID atomic.Int64

	mu      sync.Mutex
	spans   []SpanData
	events  []EventData
	dropped int64
}

// NewTracer returns a tracer whose sim timestamps read from clock (nil
// disables them). The wall epoch is the construction instant.
func NewTracer(clock *simclock.Clock) *Tracer {
	return &Tracer{clock: clock, epoch: time.Now(), now: time.Now, maxSpans: DefaultMaxSpans}
}

// SetMaxSpans adjusts the retained-span bound (≤ 0 restores the
// default). Call before recording.
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	t.mu.Lock()
	t.maxSpans = n
	t.mu.Unlock()
}

func (t *Tracer) wallNow() time.Duration { return t.now().Sub(t.epoch) }

func (t *Tracer) simNow() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock.Now()
}

// Span is an in-flight span. End it exactly once; a nil *Span is a
// valid no-op handle.
type Span struct {
	t     *Tracer
	data  SpanData
	mu    sync.Mutex
	ended bool
}

// Start opens a span under parent (nil = root).
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t}
	s.data.ID = t.nextID.Add(1)
	s.data.Parent = parent.ID()
	s.data.Name = name
	s.data.StartWall = t.wallNow()
	s.data.StartSim = t.simNow()
	s.data.Attrs = attrs
	return s
}

// ID returns the span's identifier (0 on nil — the root parent id).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// Annotate appends attributes to the span (before or after End has no
// effect once the span is recorded — call before End).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Attrs = append(s.data.Attrs, attrs...)
	}
	s.mu.Unlock()
}

// End closes the span and records it. Repeated calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.EndWall = s.t.wallNow()
	s.data.EndSim = s.t.simNow()
	if s.data.EndSim < s.data.StartSim {
		s.data.EndSim = s.data.StartSim
	}
	data := s.data
	s.mu.Unlock()
	s.t.record(data)
}

func (t *Tracer) record(d SpanData) {
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, d)
	}
	t.mu.Unlock()
}

// RecordSim records a completed span that is an instant in wall time
// but spans cost on the simulated clock, starting at the clock's
// current reading — how modeled hardware charges (PCIe transfers,
// stripe writes, overlay hops) appear as trace intervals.
func (t *Tracer) RecordSim(parent *Span, name string, cost time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	if cost < 0 {
		cost = 0
	}
	w := t.wallNow()
	sim := t.simNow()
	t.record(SpanData{
		ID:        t.nextID.Add(1),
		Parent:    parent.ID(),
		Name:      name,
		StartWall: w,
		EndWall:   w,
		StartSim:  sim,
		EndSim:    sim + cost,
		Attrs:     attrs,
	})
}

// Event records an instant event under parent's timeline.
func (t *Tracer) Event(parent *Span, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	e := EventData{
		Span:  parent.ID(),
		Name:  name,
		Wall:  t.wallNow(),
		Sim:   t.simNow(),
		Attrs: attrs,
	}
	t.mu.Lock()
	if len(t.events) >= t.maxSpans {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the finished spans, in end order.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanData(nil), t.spans...)
}

// Events returns a copy of the recorded events, in record order.
func (t *Tracer) Events() []EventData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]EventData(nil), t.events...)
}

// Dropped returns how many spans/events the retention bound discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// FindSpans returns the finished spans with the given name, in end
// order — a convenience for tests and report construction.
func (t *Tracer) FindSpans(name string) []SpanData {
	var out []SpanData
	for _, s := range t.Spans() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// FindEvents returns the recorded events with the given name.
func (t *Tracer) FindEvents(name string) []EventData {
	var out []EventData
	for _, e := range t.Events() {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}
