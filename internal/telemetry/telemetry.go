// Package telemetry is the pipeline's unified observability substrate:
// a metrics registry, a span-based tracer, and exporters for the formats
// the evaluation consumes.
//
// The paper's headline claims are performance breakdowns — per-phase
// times (§5.1.1, Figures 8–10), MRNet tree overheads (§3.3.2, Table 1)
// and GPU host-interaction counts (§3.2.2) — so every substrate
// simulator reports through this package:
//
//   - the Registry holds labeled counters, gauges and histograms,
//     race-safe and cheap enough to update from concurrent kernel
//     workers (one atomic add per increment once the handle is held);
//   - the Tracer records spans carrying BOTH wall-clock time (what
//     really ran on this host) and simulated time (what the modeled
//     Titan hardware would have spent, read from the shared
//     simclock.Clock), nested phases → partitions → kernel launches →
//     overlay hops;
//   - exporters render the collected data as a Chrome trace_event file
//     (loadable in chrome://tracing or Perfetto), Prometheus text
//     exposition, and a structured per-run JSON report reproducing the
//     paper's phase-breakdown table.
//
// A Hub bundles one Registry and one Tracer; every method on a nil Hub
// (and on the nil metric/span handles it then returns) is a no-op, so
// instrumentation points never need to be conditional — exactly the
// pattern faultinject.Plan established.
package telemetry

import (
	"strconv"
	"time"

	"repro/internal/simclock"
)

// Attr is one key/value annotation on a span, event or metric. Values
// are strings: attributes exist for humans reading traces, not for
// arithmetic (metrics cover that).
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds an int64 attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Duration builds a duration attribute (human-readable form).
func Duration(k string, v time.Duration) Attr { return Attr{Key: k, Value: v.String()} }

// Hub bundles the run's metrics registry and tracer. All substrates in
// a run share one Hub so counters aggregate and spans interleave on a
// single timeline. A nil *Hub is valid and records nothing.
type Hub struct {
	Metrics *Registry
	Trace   *Tracer
}

// New returns a Hub whose tracer reads simulated time from clock (nil
// disables sim timestamps — they read as zero).
func New(clock *simclock.Clock) *Hub {
	return &Hub{Metrics: NewRegistry(), Trace: NewTracer(clock)}
}

// Counter returns the named counter handle (nil on a nil hub).
func (h *Hub) Counter(name string, labels ...string) *Counter {
	if h == nil {
		return nil
	}
	return h.Metrics.Counter(name, labels...)
}

// Gauge returns the named gauge handle (nil on a nil hub).
func (h *Hub) Gauge(name string, labels ...string) *Gauge {
	if h == nil {
		return nil
	}
	return h.Metrics.Gauge(name, labels...)
}

// Histogram returns the named histogram handle (nil on a nil hub).
// Buckets are fixed at first registration; later calls reuse them.
func (h *Hub) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if h == nil {
		return nil
	}
	return h.Metrics.Histogram(name, buckets, labels...)
}

// Start opens a span under parent (nil parent = root span). Returns nil
// on a nil hub; a nil *Span is safe to End and annotate.
func (h *Hub) Start(parent *Span, name string, attrs ...Attr) *Span {
	if h == nil {
		return nil
	}
	return h.Trace.Start(parent, name, attrs...)
}

// Event records an instant event attached to parent's timeline.
func (h *Hub) Event(parent *Span, name string, attrs ...Attr) {
	if h == nil {
		return
	}
	h.Trace.Event(parent, name, attrs...)
}

// RecordSim records a completed span whose cost lives on the simulated
// clock: wall duration is an instant, sim duration is cost. This is how
// substrates report modeled hardware charges (a PCIe transfer, a Lustre
// stripe write, an overlay hop) as visible trace intervals.
func (h *Hub) RecordSim(parent *Span, name string, cost time.Duration, attrs ...Attr) {
	if h == nil {
		return
	}
	h.Trace.RecordSim(parent, name, cost, attrs...)
}
