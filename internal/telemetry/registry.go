package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds the run's metrics. Handles returned by Counter, Gauge
// and Histogram are stable: look them up once, update them with a single
// atomic operation from any goroutine. A nil *Registry hands out nil
// handles, which are themselves safe no-ops.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any // canonical key → *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// labelPairs canonicalizes a variadic k1,v1,k2,v2 label list: sorted by
// key, panicking on an odd count (an instrumentation bug, not a runtime
// condition).
func labelPairs(labels []string) []Attr {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", labels))
	}
	out := make([]Attr, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		out = append(out, Attr{Key: labels[i], Value: labels[i+1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func metricKey(name string, pairs []Attr) string {
	if len(pairs) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, p := range pairs {
		b.WriteByte(0xff)
		b.WriteString(p.Key)
		b.WriteByte(0xfe)
		b.WriteString(p.Value)
	}
	return b.String()
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	name   string
	labels []Attr
	v      atomic.Int64
}

// Inc adds one. Safe on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up). Safe
// on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric (current allocation, queue depth).
type Gauge struct {
	name   string
	labels []Attr
	v      atomic.Int64
}

// Set stores v. Safe on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (may be negative). Safe on a nil gauge.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution metric. Buckets hold counts
// of observations ≤ the bound (cumulated at export, Prometheus-style);
// observations above the last bound land in the implicit +Inf bucket.
type Histogram struct {
	name    string
	labels  []Attr
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-added
}

// Observe records one sample. Safe on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newv) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LinearBuckets returns n bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds starting at start, each factor× the last.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefSecondsBuckets covers 1µs..~67s exponentially — a sensible default
// for the latency histograms the substrates record.
func DefSecondsBuckets() []float64 { return ExpBuckets(1e-6, 4, 13) }

// Counter returns (registering on first use) the counter with the given
// name and label pairs (k1, v1, k2, v2, ...).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	pairs := labelPairs(labels)
	key := metricKey(name, pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %q registered as %T, requested as counter", name, m))
		}
		return c
	}
	c := &Counter{name: name, labels: pairs}
	r.metrics[key] = c
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	pairs := labelPairs(labels)
	key := metricKey(name, pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %q registered as %T, requested as gauge", name, m))
		}
		return g
	}
	g := &Gauge{name: name, labels: pairs}
	r.metrics[key] = g
	return g
}

// Histogram returns (registering on first use) the named histogram.
// buckets are the upper bounds, ascending; nil uses DefSecondsBuckets.
// The bounds are fixed by the first registration.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	pairs := labelPairs(labels)
	key := metricKey(name, pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %q registered as %T, requested as histogram", name, m))
		}
		return h
	}
	if buckets == nil {
		buckets = DefSecondsBuckets()
	}
	bounds := append([]float64(nil), buckets...)
	h := &Histogram{name: name, labels: pairs, bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	r.metrics[key] = h
	return h
}

// MetricValue is one exported metric sample (counters and gauges) or
// distribution (histograms).
type MetricValue struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"` // "counter" | "gauge" | "histogram"
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value,omitempty"`
	// Histogram fields.
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"` // non-cumulative, len(Bounds)+1
}

func attrsToMap(pairs []Attr) map[string]string {
	if len(pairs) == 0 {
		return nil
	}
	m := make(map[string]string, len(pairs))
	for _, p := range pairs {
		m[p.Key] = p.Value
	}
	return m
}

// Snapshot returns every registered metric, sorted by name then labels —
// the stable order the exporters and golden tests rely on.
func (r *Registry) Snapshot() []MetricValue {
	if r == nil {
		return nil
	}
	type row struct {
		key string
		m   any
	}
	r.mu.Lock()
	rows := make([]row, 0, len(r.metrics))
	for k, m := range r.metrics {
		rows = append(rows, row{k, m})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	out := make([]MetricValue, 0, len(rows))
	for _, rw := range rows {
		switch m := rw.m.(type) {
		case *Counter:
			out = append(out, MetricValue{Name: m.name, Type: "counter", Labels: attrsToMap(m.labels), Value: m.Value()})
		case *Gauge:
			out = append(out, MetricValue{Name: m.name, Type: "gauge", Labels: attrsToMap(m.labels), Value: m.Value()})
		case *Histogram:
			buckets := make([]int64, len(m.buckets))
			for i := range m.buckets {
				buckets[i] = m.buckets[i].Load()
			}
			out = append(out, MetricValue{
				Name: m.name, Type: "histogram", Labels: attrsToMap(m.labels),
				Count: m.Count(), Sum: m.Sum(),
				Bounds: append([]float64(nil), m.bounds...), Buckets: buckets,
			})
		}
	}
	return out
}
