package telemetry

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

// fakeTracer returns a tracer whose wall clock is driven by the test:
// each call to tick advances it by step.
func fakeTracer(clock *simclock.Clock, step time.Duration) (*Tracer, func()) {
	tr := NewTracer(clock)
	now := tr.epoch
	tr.now = func() time.Time { return now }
	return tr, func() { now = now.Add(step) }
}

func TestSpanNesting(t *testing.T) {
	clock := simclock.New()
	tr, tick := fakeTracer(clock, time.Millisecond)
	root := tr.Start(nil, "run")
	tick()
	child := tr.Start(root, "phase", String(AttrKind, KindPhase))
	clock.Charge("gpu", 5*time.Second)
	tick()
	child.End()
	tick()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// End order: child first.
	c, r := spans[0], spans[1]
	if c.Name != "phase" || r.Name != "run" {
		t.Fatalf("unexpected order: %q, %q", c.Name, r.Name)
	}
	if c.Parent != r.ID {
		t.Fatalf("child.Parent = %d, want %d", c.Parent, r.ID)
	}
	if c.WallDuration() != time.Millisecond {
		t.Fatalf("child wall = %v, want 1ms", c.WallDuration())
	}
	if r.WallDuration() != 3*time.Millisecond {
		t.Fatalf("root wall = %v, want 3ms", r.WallDuration())
	}
	if c.SimDuration() != 5*time.Second {
		t.Fatalf("child sim = %v, want 5s", c.SimDuration())
	}
}

func TestRecordSimAndEvents(t *testing.T) {
	clock := simclock.New()
	tr, _ := fakeTracer(clock, 0)
	root := tr.Start(nil, "run")
	tr.RecordSim(root, "lustre.write", 7*time.Millisecond, Int64("bytes", 4096))
	tr.Event(root, "fault.injected", String("site", "lustre.write"))
	root.End()

	ws := tr.FindSpans("lustre.write")
	if len(ws) != 1 {
		t.Fatalf("got %d lustre.write spans, want 1", len(ws))
	}
	if ws[0].SimDuration() != 7*time.Millisecond || ws[0].WallDuration() != 0 {
		t.Fatalf("sim span durations wrong: %+v", ws[0])
	}
	if ws[0].Parent != root.ID() {
		t.Fatal("RecordSim span should nest under parent")
	}
	evs := tr.FindEvents("fault.injected")
	if len(evs) != 1 || evs[0].Span != root.ID() {
		t.Fatalf("events = %+v", evs)
	}
}

func TestDoubleEndAndAnnotate(t *testing.T) {
	tr := NewTracer(nil)
	s := tr.Start(nil, "x")
	s.Annotate(Int("leaf", 3))
	s.End()
	s.End()
	s.Annotate(Int("late", 1)) // after End: dropped
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("double End recorded %d spans", len(spans))
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Key != "leaf" {
		t.Fatalf("attrs = %+v", spans[0].Attrs)
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetMaxSpans(3)
	for i := 0; i < 5; i++ {
		tr.Start(nil, "s").End()
	}
	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("retained %d spans, want 3", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}
