package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/simclock"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixedHub constructs a hub with fully deterministic contents: a
// fake wall clock and explicit sim charges, shaped like a miniature run
// (run → two phases, the second with two concurrent leaves).
func buildFixedHub() *Hub {
	clock := simclock.New()
	tr, tick := fakeTracer(clock, time.Millisecond)
	h := &Hub{Metrics: NewRegistry(), Trace: tr}

	run := tr.Start(nil, "mrscan.run")
	tick() // 1ms
	p1 := tr.Start(run, "phase:partition", String(AttrKind, KindPhase))
	clock.Charge("lustre/ost0", 20*time.Millisecond)
	tr.RecordSim(p1, "lustre.write", 4*time.Millisecond, Int64("bytes", 1024))
	tick() // 2ms
	p1.End()
	p2 := tr.Start(run, "phase:cluster", String(AttrKind, KindPhase))
	// Two "concurrent" leaves: same start tick, distinct lanes.
	l0 := tr.Start(p2, "leaf", Int("leaf", 0))
	l1 := tr.Start(p2, "leaf", Int("leaf", 1))
	tick() // 3ms
	k := tr.Start(l0, "kernel:expand", Int("blocks", 13))
	tick() // 4ms
	k.End()
	l0.End()
	tick() // 5ms
	l1.End()
	tr.Event(p2, "mrscan.retry", String("phase", "cluster"), Int("attempt", 1))
	p2.End()
	tick() // 6ms
	run.End()

	h.Counter("mrscan_faults_injected_total", "site", "lustre.write").Add(2)
	h.Gauge("gpusim_alloc_bytes", "device", "gpu0000").Set(4096)
	occ := h.Histogram("gpusim_sm_occupancy", LinearBuckets(0.25, 0.25, 4), "device", "gpu0000")
	occ.Observe(0.5)
	occ.Observe(1.0)
	return h
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	h := buildFixedHub()
	var buf bytes.Buffer
	if err := h.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// Must parse as JSON with the trace_event envelope before comparing.
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	checkGolden(t, "chrome_trace.golden.json", buf.Bytes())
}

// TestChromeTraceLanes pins the concurrency-layout property directly:
// overlapping sibling spans land on different tids, nested spans share
// their parent's tid.
func TestChromeTraceLanes(t *testing.T) {
	h := buildFixedHub()
	spans := h.Trace.Spans()
	lanes := assignLanes(spans,
		func(s SpanData) time.Duration { return s.StartWall },
		func(s SpanData) time.Duration { return s.EndWall })
	byName := map[string][]SpanData{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	leaves := byName["leaf"]
	if len(leaves) != 2 {
		t.Fatalf("want 2 leaf spans, got %d", len(leaves))
	}
	if lanes[leaves[0].ID] == lanes[leaves[1].ID] {
		t.Fatal("concurrent sibling leaves must get distinct lanes")
	}
	kernel := byName["kernel:expand"][0]
	var parentLeaf SpanData
	for _, l := range leaves {
		if l.ID == kernel.Parent {
			parentLeaf = l
		}
	}
	if lanes[kernel.ID] != lanes[parentLeaf.ID] {
		t.Fatal("a kernel nested in a leaf should share its lane")
	}
	run := byName["mrscan.run"][0]
	for _, p := range byName["phase:partition"] {
		if lanes[p.ID] != lanes[run.ID] {
			t.Fatal("sequential phase should share the run's lane")
		}
	}
}

func TestPrometheusGolden(t *testing.T) {
	h := buildFixedHub()
	var buf bytes.Buffer
	if err := h.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.txt", buf.Bytes())
}

func TestReport(t *testing.T) {
	h := buildFixedHub()
	rep := BuildReport(h)
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	if rep.Phases[0].Phase != "phase:partition" || rep.Phases[1].Phase != "phase:cluster" {
		t.Fatalf("phase order wrong: %+v", rep.Phases)
	}
	if rep.Phases[0].WallNs != int64(time.Millisecond) {
		t.Fatalf("partition wall = %d", rep.Phases[0].WallNs)
	}
	if rep.Phases[0].SimNs != int64(20*time.Millisecond) {
		t.Fatalf("partition sim = %d", rep.Phases[0].SimNs)
	}
	if row, ok := rep.Phase("phase:cluster"); !ok || row.WallNs != int64(3*time.Millisecond) {
		t.Fatalf("cluster row = %+v ok=%v", row, ok)
	}
	var retries *EventAgg
	for i := range rep.Events {
		if rep.Events[i].Name == "mrscan.retry" {
			retries = &rep.Events[i]
		}
	}
	if retries == nil || retries.Count != 1 {
		t.Fatalf("events = %+v", rep.Events)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, h); err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(round.Metrics) == 0 {
		t.Fatal("report should embed the metric snapshot")
	}
}
