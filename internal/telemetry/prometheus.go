package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one TYPE header per metric family, samples
// sorted by name then labels, histograms expanded into cumulative
// _bucket/_sum/_count series. The output is deterministic for a given
// registry state, which the golden tests rely on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.Snapshot()
	// Group into families (same name, same type) preserving sorted order.
	lastFamily := ""
	for _, m := range metrics {
		if m.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		switch m.Type {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, labelString(m.Labels, "", ""), m.Value); err != nil {
				return err
			}
		case "histogram":
			var cum int64
			for i, bound := range m.Bounds {
				cum += m.Buckets[i]
				le := strconv.FormatFloat(bound, 'g', -1, 64)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, labelString(m.Labels, "le", le), cum); err != nil {
					return err
				}
			}
			cum += m.Buckets[len(m.Bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, labelString(m.Labels, "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, labelString(m.Labels, "", ""),
				strconv.FormatFloat(m.Sum, 'g', -1, 64)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labelString(m.Labels, "", ""), m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelString renders {k="v",...} with keys sorted, plus an optional
// extra pair appended last when extraKey is non-empty (the histogram
// "le" bound).
func labelString(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	writePair := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for _, k := range keys {
		writePair(k, labels[k])
	}
	if extraKey != "" {
		writePair(extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}
