package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Chrome trace_event export: the collected spans render as two trace
// "processes" — pid 1 holds wall-clock intervals (what ran on this
// host), pid 2 holds simulated-time intervals (what the modeled Titan
// hardware would have spent). Load the file in chrome://tracing or
// https://ui.perfetto.dev.
//
// trace_event "X" (complete) events nest by time containment within one
// thread lane, so concurrent siblings (parallel leaf spans under one
// phase) must land on distinct tids. Lanes are assigned at export: each
// span inherits its parent's lane unless an earlier sibling still
// occupies it, in which case the span takes the first free lane or a
// fresh one — a greedy interval coloring that keeps sequential children
// stacked under their parent and spreads concurrency vertically.

const (
	wallPid = 1
	simPid  = 2
)

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// assignLanes maps span ID → lane (tid) for one time domain.
func assignLanes(spans []SpanData, start, end func(SpanData) time.Duration) map[int64]int64 {
	byID := make(map[int64]int, len(spans))
	children := make(map[int64][]int)
	for i, s := range spans {
		byID[s.ID] = i
	}
	var roots []int
	for i, s := range spans {
		if _, ok := byID[s.Parent]; s.Parent != 0 && ok {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			if start(spans[idx[a]]) != start(spans[idx[b]]) {
				return start(spans[idx[a]]) < start(spans[idx[b]])
			}
			return spans[idx[a]].ID < spans[idx[b]].ID
		})
	}

	lanes := make(map[int64]int64, len(spans))
	var nextLane int64 = 1

	// place assigns a lane to each span in idx (an ordered sibling set),
	// preferring the parent's lane, then any sibling lane already free.
	type laneUse struct {
		lane int64
		busy time.Duration // occupied until
	}
	var place func(idx []int, parentLane int64, parentStart time.Duration)
	place = func(idx []int, parentLane int64, parentStart time.Duration) {
		byStart(idx)
		pool := []laneUse{{lane: parentLane, busy: parentStart}}
		for _, i := range idx {
			s := spans[i]
			lane := int64(-1)
			for j := range pool {
				if pool[j].busy <= start(s) {
					lane = pool[j].lane
					pool[j].busy = end(s)
					break
				}
			}
			if lane < 0 {
				lane = nextLane
				nextLane++
				pool = append(pool, laneUse{lane: lane, busy: end(s)})
			}
			lanes[s.ID] = lane
			place(children[s.ID], lane, start(s))
		}
	}
	// Roots share a synthetic "parent" covering all time, so concurrent
	// roots also spread onto distinct lanes.
	rootLane := nextLane
	nextLane++
	place(roots, rootLane, 0)
	return lanes
}

func attrArgs(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// WriteChromeTrace renders every span and event as Chrome trace_event
// JSON on w.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := t.Events()

	var out []chromeEvent
	meta := func(pid int, name string) {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": name},
		})
	}
	meta(wallPid, "wall clock")
	meta(simPid, "simulated hardware")

	domains := []struct {
		pid   int
		start func(SpanData) time.Duration
		end   func(SpanData) time.Duration
		evTs  func(EventData) time.Duration
	}{
		{wallPid, func(s SpanData) time.Duration { return s.StartWall }, func(s SpanData) time.Duration { return s.EndWall },
			func(e EventData) time.Duration { return e.Wall }},
		{simPid, func(s SpanData) time.Duration { return s.StartSim }, func(s SpanData) time.Duration { return s.EndSim },
			func(e EventData) time.Duration { return e.Sim }},
	}
	for _, dom := range domains {
		lanes := assignLanes(spans, dom.start, dom.end)
		for _, s := range spans {
			out = append(out, chromeEvent{
				Name: s.Name, Cat: "mrscan", Ph: "X",
				Ts:  micros(dom.start(s)),
				Dur: micros(dom.end(s) - dom.start(s)),
				Pid: dom.pid, Tid: lanes[s.ID],
				Args: attrArgs(s.Attrs),
			})
		}
		for _, e := range events {
			lane, ok := lanes[e.Span]
			if !ok {
				lane = 0
			}
			out = append(out, chromeEvent{
				Name: e.Name, Cat: "mrscan", Ph: "i", Scope: "t",
				Ts:  micros(dom.evTs(e)),
				Pid: dom.pid, Tid: lane,
				Args: attrArgs(e.Attrs),
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}
