package scale

import "testing"

func TestPartNodesForMatchesTable1(t *testing.T) {
	want := map[int]int{2: 2, 8: 4, 32: 8, 128: 16, 512: 32, 2048: 64, 4096: 96, 8192: 128}
	for leaves, nodes := range want {
		if got := PartNodesFor(leaves); got != nodes {
			t.Errorf("PartNodesFor(%d) = %d, want %d", leaves, got, nodes)
		}
	}
}

func TestInternalProcessesForMatchesTable1(t *testing.T) {
	want := map[int]int{2: 0, 8: 0, 32: 0, 128: 0, 512: 2, 2048: 8, 4096: 16, 8192: 32}
	for leaves, n := range want {
		if got := InternalProcessesFor(leaves); got != n {
			t.Errorf("InternalProcessesFor(%d) = %d, want %d", leaves, got, n)
		}
	}
}

// TestFig8Envelope: the 6.5B-point total must land in the paper's
// 1,040–1,401 s band across the four MinPts values, and the growth factor
// over the 4096× data increase must be in the paper's 18.5–31.7× range
// (allowing modest slack for the model).
func TestFig8Envelope(t *testing.T) {
	m := Twitter()
	for _, minPts := range []int{4, 40, 400, 4000} {
		rows := m.WeakScaling(Table1Leaves, minPts)
		last := rows[len(rows)-1]
		if last.Total < 900 || last.Total > 1600 {
			t.Errorf("MinPts=%d: 6.5B total = %.0fs, want in the paper's ~1040-1401s envelope", minPts, last.Total)
		}
		growth := last.Total / rows[0].Total
		if growth < 10 || growth > 45 {
			t.Errorf("MinPts=%d: growth factor = %.1fx, paper reports 18.5-31.7x", minPts, growth)
		}
	}
}

// TestFig9aPartitionDominates: at the largest scale the partition phase
// takes roughly 68% of the total (paper §5.1.1).
func TestFig9aPartitionDominates(t *testing.T) {
	m := Twitter()
	rows := m.WeakScaling(Table1Leaves, 400)
	last := rows[len(rows)-1]
	frac := last.Partition / last.Total
	if frac < 0.55 || frac < 0 || frac > 0.8 {
		t.Errorf("partition fraction = %.2f, paper reports ~0.68", frac)
	}
	// And the phase grows roughly linearly with data: time ratio within
	// 2x of the point ratio across the ladder's top half.
	mid := rows[4] // 512 leaves
	pointRatio := last.Points / mid.Points
	timeRatio := last.Partition / mid.Partition
	if timeRatio < pointRatio/2.5 || timeRatio > pointRatio*2.5 {
		t.Errorf("partition growth %.1fx vs data growth %.1fx: not linear-ish", timeRatio, pointRatio)
	}
}

// TestFig9cDenseBoxDip: for MinPts <= 400 the GPGPU DBSCAN time dips at
// mid scale and rises again at 6.5B; for MinPts = 4000 there is no dip
// (monotone, slow growth).
func TestFig9cDenseBoxDip(t *testing.T) {
	m := Twitter()
	for _, minPts := range []int{4, 40, 400} {
		rows := m.WeakScaling(Table1Leaves, minPts)
		first := rows[0].GPUDBSCAN
		minV, minI := first, 0
		for i, r := range rows {
			if r.GPUDBSCAN < minV {
				minV, minI = r.GPUDBSCAN, i
			}
		}
		last := rows[len(rows)-1].GPUDBSCAN
		if minI == 0 || minI == len(rows)-1 {
			t.Errorf("MinPts=%d: no interior dip (min at index %d)", minPts, minI)
		}
		if last <= minV {
			t.Errorf("MinPts=%d: no upturn at 6.5B (%.1fs <= dip %.1fs)", minPts, last, minV)
		}
	}
	rows := m.WeakScaling(Table1Leaves, 4000)
	for i := 1; i < len(rows); i++ {
		if rows[i].GPUDBSCAN < rows[i-1].GPUDBSCAN*0.98 {
			t.Errorf("MinPts=4000: unexpected dip at index %d (%.1fs -> %.1fs)",
				i, rows[i-1].GPUDBSCAN, rows[i].GPUDBSCAN)
		}
	}
	// MinPts=4000 is the slowest configuration at full scale (dense box
	// least effective).
	t4000 := rows[len(rows)-1].Total
	t40 := m.WeakScaling(Table1Leaves, 40)[len(Table1Leaves)-1].Total
	if t4000 <= t40 {
		t.Errorf("MinPts=4000 total (%.0fs) must exceed MinPts=40 total (%.0fs)", t4000, t40)
	}
}

// TestFig10StrongScalingPlateau: GPU time improves from 256 leaves,
// by several-fold at 2,048, then plateaus ("Additional leaves do not
// provide any speedup after 2048").
func TestFig10StrongScalingPlateau(t *testing.T) {
	m := Twitter()
	rows := m.StrongScaling(Fig10Leaves, 8192*WeakPointsPerLeaf, 40)
	speedupAt2048 := rows[0].GPUDBSCAN / rows[3].GPUDBSCAN
	if speedupAt2048 < 3 || speedupAt2048 > 12 {
		t.Errorf("GPU speedup 256->2048 = %.1fx, paper reports 4.7x", speedupAt2048)
	}
	// Plateau: 4096 and 8192 within 5% of 2048.
	for _, i := range []int{4, 5} {
		ratio := rows[3].GPUDBSCAN / rows[i].GPUDBSCAN
		if ratio > 1.05 {
			t.Errorf("leaves=%d still speeds up GPU time by %.2fx over 2048; expected plateau",
				rows[i].Leaves, ratio)
		}
	}
	// Monotone improvement up to the plateau.
	for i := 1; i <= 3; i++ {
		if rows[i].GPUDBSCAN >= rows[i-1].GPUDBSCAN {
			t.Errorf("GPU time must improve from %d to %d leaves", rows[i-1].Leaves, rows[i].Leaves)
		}
	}
}

// TestStrongScalingSplitLiftsPlateau: with hot-cell subdivision the GPU
// time keeps improving past 2,048 leaves instead of plateauing.
func TestStrongScalingSplitLiftsPlateau(t *testing.T) {
	m := Twitter()
	flat := m.StrongScaling(Fig10Leaves, 8192*WeakPointsPerLeaf, 40)
	split := m.StrongScalingSplit(Fig10Leaves, 8192*WeakPointsPerLeaf, 40)
	// Beyond the plateau, split must beat flat.
	for i := 4; i < len(flat); i++ { // 4096, 8192 leaves
		if split[i].GPUDBSCAN >= flat[i].GPUDBSCAN {
			t.Errorf("leaves=%d: split gpu %.1fs not better than flat %.1fs",
				flat[i].Leaves, split[i].GPUDBSCAN, flat[i].GPUDBSCAN)
		}
	}
	// And split keeps improving from 2048 to 8192 by a real margin.
	if ratio := split[3].GPUDBSCAN / split[5].GPUDBSCAN; ratio < 1.2 {
		t.Errorf("split speedup 2048->8192 = %.2fx, want > 1.2x", ratio)
	}
	// Below the plateau the two agree (the dense cell wasn't the
	// bottleneck there).
	if d := flat[0].GPUDBSCAN - split[0].GPUDBSCAN; d > flat[0].GPUDBSCAN*0.25 {
		t.Errorf("at 256 leaves split changes gpu time by %.1fs; expected little effect", d)
	}
}

// TestSDSSShape: Figure 12/13 — the SDSS run scales like Twitter with
// partition dominating at full scale (1.6B points, 2048 leaves).
func TestSDSSShape(t *testing.T) {
	m := SDSS()
	leaves := []int{2, 8, 32, 128, 512, 2048}
	rows := m.WeakScaling(leaves, 5)
	last := rows[len(rows)-1]
	if frac := last.Partition / last.Total; frac < 0.5 {
		t.Errorf("SDSS partition fraction = %.2f, want I/O-dominated (> 0.5)", frac)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Partition <= rows[i-1].Partition {
			t.Errorf("SDSS partition time must grow with data: row %d", i)
		}
	}
}

func TestRowString(t *testing.T) {
	r := Twitter().WeakScaling([]int{2}, 40)[0]
	if s := r.String(); len(s) == 0 {
		t.Error("empty row string")
	}
}

func TestEliminationBounds(t *testing.T) {
	m := Twitter()
	for _, cp := range []float64{0, 1, 1e3, 1e6, 1e9} {
		for _, minPts := range []int{1, 4, 4000} {
			e := m.elimination(cp, minPts)
			if e < 0 || e >= 1 {
				t.Errorf("elimination(%g,%d) = %v out of [0,1)", cp, minPts, e)
			}
		}
	}
	if m.elimination(1e6, 4) <= m.elimination(1e6, 4000) {
		t.Error("higher MinPts must reduce elimination")
	}
	if m.elimination(1e7, 40) <= m.elimination(1e4, 40) {
		t.Error("higher density must increase elimination")
	}
}
