package scale

import (
	"fmt"
	"math"
)

// Measurement is one observed pipeline run used for calibration: the
// configuration plus the slowest leaf's GPGPU DBSCAN seconds.
type Measurement struct {
	Points float64
	Leaves int
	MinPts int
	GPUSec float64
}

// FitExpand fits the GPU expansion term to measured runs: the model's
// slowest-leaf time is c·x + d with x = slow·(1−elim)·log2(slow) (the
// §3.2.3 O((n−p)·log n) form), solved for (c, d) by ordinary least
// squares. It returns a copy of p with ExpandCoef and GPULeafOverhead
// replaced, so projected GPU curves use this host's measured per-point
// cost instead of the Titan-era calibration.
//
// At least two measurements with distinct workloads are required.
func (p Params) FitExpand(ms []Measurement) (Params, error) {
	if len(ms) < 2 {
		return p, fmt.Errorf("scale: need at least 2 measurements, got %d", len(ms))
	}
	xs := make([]float64, len(ms))
	ys := make([]float64, len(ms))
	for i, m := range ms {
		if m.Points <= 0 || m.Leaves < 1 || m.MinPts < 1 {
			return p, fmt.Errorf("scale: measurement %d has invalid configuration %+v", i, m)
		}
		cellPoints := p.MaxCellFrac * m.Points
		perLeaf := m.Points / float64(m.Leaves) * p.ShadowDup
		slow := math.Max(perLeaf, cellPoints)
		if slow < 2 {
			slow = 2
		}
		elim := p.elimination(m.Points/p.MeanScale, m.MinPts)
		xs[i] = slow * (1 - elim) * math.Log2(slow)
		ys[i] = m.GPUSec
	}
	c, d, err := leastSquares(xs, ys)
	if err != nil {
		return p, err
	}
	if c <= 0 {
		return p, fmt.Errorf("scale: fit produced non-positive coefficient %g (measurements too noisy or degenerate)", c)
	}
	out := p
	out.ExpandCoef = c
	if d > 0 {
		out.GPULeafOverhead = d
	} else {
		out.GPULeafOverhead = 0
	}
	return out, nil
}

// leastSquares solves y ≈ c·x + d.
func leastSquares(xs, ys []float64) (c, d float64, err error) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	det := n*sxx - sx*sx
	if math.Abs(det) < 1e-12 {
		return 0, 0, fmt.Errorf("scale: degenerate fit (all workloads identical)")
	}
	c = (n*sxy - sx*sy) / det
	d = (sy - c*sx) / n
	return c, d, nil
}
