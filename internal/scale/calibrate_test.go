package scale

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitExpandRecoversKnownConstants(t *testing.T) {
	truth := Twitter()
	truth.ExpandCoef = 3.7e-6
	truth.GPULeafOverhead = 2.5
	// Synthesize measurements from the true model over a ladder.
	var ms []Measurement
	for _, leaves := range []int{2, 4, 8, 16, 32} {
		points := float64(leaves) * 50_000
		row := truth.project(leaves, points, 40)
		// Remove the non-expansion terms so the synthetic data follows
		// the fitted form exactly: reconstruct c·x + d.
		cellPoints := truth.MaxCellFrac * points
		perLeaf := points / float64(leaves) * truth.ShadowDup
		slow := math.Max(perLeaf, cellPoints)
		elim := truth.elimination(points/truth.MeanScale, 40)
		x := slow * (1 - elim) * math.Log2(slow)
		ms = append(ms, Measurement{
			Points: points, Leaves: leaves, MinPts: 40,
			GPUSec: truth.ExpandCoef*x + truth.GPULeafOverhead,
		})
		_ = row
	}
	fitted, err := Twitter().FitExpand(ms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fitted.ExpandCoef-truth.ExpandCoef)/truth.ExpandCoef > 1e-6 {
		t.Errorf("ExpandCoef = %g, want %g", fitted.ExpandCoef, truth.ExpandCoef)
	}
	if math.Abs(fitted.GPULeafOverhead-truth.GPULeafOverhead) > 1e-6 {
		t.Errorf("GPULeafOverhead = %g, want %g", fitted.GPULeafOverhead, truth.GPULeafOverhead)
	}
}

func TestFitExpandTolerantToNoise(t *testing.T) {
	truth := Twitter()
	rng := rand.New(rand.NewSource(1))
	var ms []Measurement
	// A strong-scaling ladder spreads the regressor over a wide range,
	// which is what a real calibration run should use.
	const points = 3.2e6
	for _, leaves := range []int{2, 4, 8, 16, 32, 64} {
		cellPoints := truth.MaxCellFrac * points
		perLeaf := points / float64(leaves) * truth.ShadowDup
		slow := math.Max(perLeaf, cellPoints)
		elim := truth.elimination(points/truth.MeanScale, 40)
		x := slow * (1 - elim) * math.Log2(slow)
		noisy := (truth.ExpandCoef*x + truth.GPULeafOverhead) * (1 + 0.05*rng.NormFloat64())
		ms = append(ms, Measurement{Points: points, Leaves: leaves, MinPts: 40, GPUSec: noisy})
	}
	fitted, err := Twitter().FitExpand(ms)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := fitted.ExpandCoef / truth.ExpandCoef; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("noisy fit coefficient off by %.2fx", ratio)
	}
}

func TestFitExpandValidation(t *testing.T) {
	p := Twitter()
	if _, err := p.FitExpand(nil); err == nil {
		t.Error("no measurements must fail")
	}
	if _, err := p.FitExpand([]Measurement{{Points: 1, Leaves: 1, MinPts: 1, GPUSec: 1}}); err == nil {
		t.Error("single measurement must fail")
	}
	same := Measurement{Points: 1000, Leaves: 2, MinPts: 40, GPUSec: 1}
	if _, err := p.FitExpand([]Measurement{same, same, same}); err == nil {
		t.Error("identical workloads must fail (degenerate fit)")
	}
	bad := []Measurement{{Points: -1, Leaves: 2, MinPts: 40, GPUSec: 1}, {Points: 1000, Leaves: 2, MinPts: 40, GPUSec: 1}}
	if _, err := p.FitExpand(bad); err == nil {
		t.Error("invalid configuration must fail")
	}
	// A decreasing-time series yields a negative slope -> error.
	dec := []Measurement{
		{Points: 100_000, Leaves: 2, MinPts: 40, GPUSec: 10},
		{Points: 1_000_000, Leaves: 2, MinPts: 40, GPUSec: 1},
	}
	if _, err := p.FitExpand(dec); err == nil {
		t.Error("negative slope must fail")
	}
}
