// Package scale is the analytic cost model used to project Mr. Scan's
// phase times to the paper's scale (up to 6.5 billion points on 8,192
// GPU leaves of Cray Titan), which no laptop can execute directly.
//
// The model's *forms* come from the paper's own analysis:
//
//   - Partition time is I/O-bound (§5.1.1: ~68% of total; write ≈ 65% of
//     the phase, read ≈ 30%): a streaming read, a striped write, and a
//     seek-penalized term proportional to the number of small random
//     writes — partitioner-leaves × partitions, the product the paper
//     blames ("each partitioner leaf ... may need to contribute some
//     point data to nearly every partition").
//
//   - GPGPU DBSCAN time has three components. (1) Expansion over the
//     slowest leaf's non-eliminated points, O((n−p)·log n) per §3.2.3;
//     the eliminated fraction rises with global density (weak scaling
//     adds points to the same geography) and falls with MinPts, which
//     produces Figure 9c's dip. (2) Work on the densest Eps cell's
//     residual points — the cell "cannot be subdivided further"
//     (§5.1.2), so this term caps strong scaling and turns Figure 9c
//     upward at 6.5 B. (3) Core classification with early exit at
//     MinPts, which scans up to MinPts neighbors per residual point in
//     dense data — the reason the MinPts = 4000 runs are slowest yet
//     "scale logarithmically" (§5.1.1).
//
//   - Startup grows linearly with process count (ALPS behaviour, §5.1.1).
//
// Constants are calibrated so the 8,192-leaf / 6.5 B-point Twitter rows
// land in the paper's 1,040–1,401 s envelope with partition ≈ 68% of the
// total; every projected row is labeled "modeled" by the experiment
// harness that prints it.
package scale

import (
	"fmt"
	"math"
)

// WeakPointsPerLeaf is the paper's weak-scaling load: "each leaf process
// is responsible for roughly 800,000 points" (§4).
const WeakPointsPerLeaf = 800_000

// Params are the model constants. All times are in seconds, sizes in
// bytes, bandwidths in bytes/second.
type Params struct {
	PointBytes float64 // input record size
	ShadowDup  float64 // written points / input points (shadow overhead)

	ReadBWPerNode  float64 // partitioner per-node Lustre read bandwidth
	WriteBWPerNode float64 // partitioner per-node effective write bandwidth
	AggregateBW    float64 // effective contended Lustre aggregate bandwidth
	SeekPenalty    float64 // cost of one small random write
	WriteParallel  int     // concurrent writers Lustre sustains for small writes

	// GPU model.
	ExpandCoef      float64 // c1 in c1·n·log2(n) expansion work
	DenseCellCoef   float64 // c2 on the dense cell's residual work
	DenseCellExp    float64 // sublinear exponent of the dense-cell term
	ClassifyCoef    float64 // c3 per (residual point × scanned neighbor)
	GPULeafOverhead float64 // fixed per-leaf cluster-phase cost
	BoxResidual     float64 // fraction of points dense box can never remove
	DenseBoxBeta    float64 // saturation density per unit MinPts
	MeanScale       float64 // active Eps cells (mean-density denominator)
	MaxCellFrac     float64 // fraction of all points in the densest Eps cell

	StartupBase    float64 // tool startup fixed cost
	StartupPerNode float64 // ALPS-like linear startup term
	MergePerLevel  float64 // per-tree-level merge cost
	SweepBW        float64 // aggregate output write bandwidth
}

// Twitter returns the model calibrated for the Twitter dataset at
// Eps = 0.1. MaxCellFrac ≈ 4.9e-4 matches §5.1.2's observation that the
// ideal load is "closer to 3.2 million [points per leaf] than 800,000"
// on the 6.5 B dataset (3.2 M / 6.5 B).
func Twitter() Params {
	return Params{
		PointBytes:     24,
		ShadowDup:      1.18,
		ReadBWPerNode:  350e6,
		WriteBWPerNode: 120e6,
		AggregateBW:    1.5e9,
		SeekPenalty:    0.022,
		WriteParallel:  96,

		ExpandCoef:      4.5e-6,
		DenseCellCoef:   0.042,
		DenseCellExp:    0.55,
		ClassifyCoef:    7.7e-7,
		GPULeafOverhead: 6,
		BoxResidual:     0.032,
		DenseBoxBeta:    3,
		MeanScale:       40_000,
		MaxCellFrac:     4.9e-4,

		StartupBase:    4,
		StartupPerNode: 0.006,
		MergePerLevel:  1.5,
		SweepBW:        20e9,
	}
}

// SDSS returns the model for the Sloan dataset at Eps = 0.00015,
// MinPts = 5 (§5.2): a far more uniform distribution — no Eps cell holds
// a large fraction of the sky — with the same I/O-bound partition shape.
func SDSS() Params {
	p := Twitter()
	p.MaxCellFrac = 5e-5
	p.ShadowDup = 1.12
	return p
}

// Row is one projected experiment configuration.
type Row struct {
	Leaves    int
	PartNodes int
	Points    float64
	MinPts    int
	// Phase times in seconds.
	Partition float64
	GPUDBSCAN float64
	// ClusterMergeSweep covers everything after the partition phase
	// (Figure 9b's quantity: cluster + merge + sweep incl. startup).
	ClusterMergeSweep float64
	Total             float64
	// DenseBoxElim is the modeled eliminated fraction on the slowest
	// leaf's bulk data.
	DenseBoxElim float64
}

// PartNodesFor returns Table 1's partitioner node counts for the weak
// scaling configurations, stepping up geometrically elsewhere.
func PartNodesFor(leaves int) int {
	table := []struct{ leaves, nodes int }{
		{2, 2}, {8, 4}, {32, 8}, {128, 16},
		{512, 32}, {2048, 64}, {4096, 96}, {8192, 128},
	}
	for _, e := range table {
		if leaves <= e.leaves {
			return e.nodes
		}
	}
	return 128
}

// InternalProcessesFor returns Table 1's MRNet internal process counts:
// none up to a 256-way root, then ⌈leaves/256⌉.
func InternalProcessesFor(leaves int) int {
	if leaves <= 256 {
		return 0
	}
	return (leaves + 255) / 256
}

// elimination returns the dense-box eliminated fraction for data whose
// density proxy (points per subdividable region) is d.
func (p Params) elimination(d float64, minPts int) float64 {
	if d <= 0 {
		return 0
	}
	return (1 - p.BoxResidual) * d / (d + p.DenseBoxBeta*float64(minPts))
}

// partitionTime models the I/O-bound partition phase.
func (p Params) partitionTime(points float64, partNodes, partitions int) float64 {
	read := points * p.PointBytes / math.Min(float64(partNodes)*p.ReadBWPerNode, p.AggregateBW)
	writeBytes := points * p.ShadowDup * p.PointBytes
	stream := writeBytes / math.Min(float64(partNodes)*p.WriteBWPerNode, p.AggregateBW)
	// Two small random writes (owned + shadow region) per partitioner
	// leaf per partition.
	ops := float64(partNodes) * float64(partitions) * 2
	parallel := float64(min(partNodes, p.WriteParallel))
	seeks := ops * p.SeekPenalty / parallel
	return read + stream + seeks
}

// project fills a Row for an arbitrary configuration.
func (p Params) project(leaves int, points float64, minPts int) Row {
	partNodes := PartNodesFor(leaves)
	cellPoints := p.MaxCellFrac * points
	perLeaf := points / float64(leaves) * p.ShadowDup
	slow := math.Max(perLeaf, cellPoints)
	if slow < 2 {
		slow = 2
	}

	// (1) Expansion over the slowest leaf's non-eliminated bulk.
	elimMean := p.elimination(points/p.MeanScale, minPts)
	t1 := p.ExpandCoef * slow * (1 - elimMean) * math.Log2(slow)
	// (2) Dense-cell residual work.
	elimCell := p.elimination(cellPoints, minPts)
	cellRes := cellPoints * (1 - elimCell)
	var t2, t3 float64
	if cellRes > 1 {
		t2 = p.DenseCellCoef * math.Pow(cellRes, p.DenseCellExp)
		// (3) Early-exit classification: up to MinPts neighbor scans per
		// residual point (bounded by the cell's actual occupancy).
		t3 = p.ClassifyCoef * cellRes * math.Min(float64(minPts), cellPoints)
	}
	gpu := t1 + t2 + t3 + p.GPULeafOverhead

	nodes := float64(leaves + InternalProcessesFor(leaves) + 1)
	startup := p.StartupBase + p.StartupPerNode*nodes
	levels := 2.0
	if InternalProcessesFor(leaves) > 0 {
		levels = 3
	}
	readParts := points * p.ShadowDup * p.PointBytes / p.AggregateBW
	sweepWrite := points * 32 / p.SweepBW
	cms := gpu + startup + p.MergePerLevel*levels + readParts + sweepWrite

	part := p.partitionTime(points, partNodes, leaves)
	return Row{
		Leaves:            leaves,
		PartNodes:         partNodes,
		Points:            points,
		MinPts:            minPts,
		Partition:         part,
		GPUDBSCAN:         gpu,
		ClusterMergeSweep: cms,
		Total:             part + cms,
		DenseBoxElim:      elimMean,
	}
}

// WeakScaling projects the Table 1 weak-scaling ladder (800k points per
// leaf) for the given MinPts.
func (p Params) WeakScaling(leafCounts []int, minPts int) []Row {
	rows := make([]Row, 0, len(leafCounts))
	for _, l := range leafCounts {
		rows = append(rows, p.project(l, float64(l)*WeakPointsPerLeaf, minPts))
	}
	return rows
}

// StrongScaling projects Figure 10: a fixed dataset over growing leaf
// counts.
func (p Params) StrongScaling(leafCounts []int, totalPoints float64, minPts int) []Row {
	rows := make([]Row, 0, len(leafCounts))
	for _, l := range leafCounts {
		rows = append(rows, p.project(l, totalPoints, minPts))
	}
	return rows
}

// StrongScalingSplit projects Figure 10 with hot-cell subdivision
// enabled (the §5.1.2 fix implemented by partition.Unit): the densest
// Eps cell no longer pins a single leaf, so the slowest leaf carries its
// fair share (down to the subdivision granularity) and strong scaling
// continues past the paper's 2,048-leaf plateau.
func (p Params) StrongScalingSplit(leafCounts []int, totalPoints float64, minPts int) []Row {
	rows := make([]Row, 0, len(leafCounts))
	for _, l := range leafCounts {
		r := p.project(l, totalPoints, minPts)
		cellPoints := p.MaxCellFrac * totalPoints
		perLeaf := totalPoints / float64(l) * p.ShadowDup
		// Tiles shrink the un-subdividable region by 4^MaxSplitDepth.
		tile := cellPoints / math.Pow(4, 4)
		slow := math.Max(perLeaf, tile)
		if slow < 2 {
			slow = 2
		}
		elimMean := p.elimination(totalPoints/p.MeanScale, minPts)
		t1 := p.ExpandCoef * slow * (1 - elimMean) * math.Log2(slow)
		// Dense work now spreads across the leaves sharing the cell.
		share := slow / cellPoints
		if share > 1 {
			share = 1
		}
		elimCell := p.elimination(cellPoints, minPts)
		cellRes := cellPoints * (1 - elimCell) * share
		var t2, t3 float64
		if cellRes > 1 {
			t2 = p.DenseCellCoef * math.Pow(cellRes, p.DenseCellExp)
			t3 = p.ClassifyCoef * cellRes * math.Min(float64(minPts), cellPoints)
		}
		gpu := t1 + t2 + t3 + p.GPULeafOverhead
		r.ClusterMergeSweep += gpu - r.GPUDBSCAN
		r.Total += gpu - r.GPUDBSCAN
		r.GPUDBSCAN = gpu
		rows = append(rows, r)
	}
	return rows
}

// Table1Leaves is the paper's weak-scaling ladder.
var Table1Leaves = []int{2, 8, 32, 128, 512, 2048, 4096, 8192}

// Fig10Leaves is the strong-scaling ladder (smallest tree with enough
// memory: 256 leaves).
var Fig10Leaves = []int{256, 512, 1024, 2048, 4096, 8192}

// String renders a row for the experiment harness.
func (r Row) String() string {
	return fmt.Sprintf("leaves=%-5d pts=%.3g minPts=%-5d part=%7.1fs gpu=%6.1fs cms=%7.1fs total=%7.1fs elim=%.2f",
		r.Leaves, r.Points, r.MinPts, r.Partition, r.GPUDBSCAN, r.ClusterMergeSweep, r.Total, r.DenseBoxElim)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
