package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/server"
	"repro/internal/stream"
)

// The stream scenario audits the sliding-window engine's serving
// contract across faults: a server ingests a seeded firehose, is
// drained and killed mid-sequence, and a fresh instance on the same
// state directory recovers the stream and keeps ticking. Because the
// engine's labels are deterministic (restart-stable cluster IDs), the
// audit is exact equality — after every tick, on either side of the
// restart, the served snapshot must be bit-identical to a fault-free
// reference engine fed the same full sequence. Invalid batches
// (duplicate IDs, over-quota ticks) injected along the way must be
// rejected with typed errors and leave the window untouched.

// StreamOptions configures a stream chaos campaign.
type StreamOptions struct {
	// Seeds are the campaign seeds (one server lifecycle per seed).
	Seeds []int64
	// Ticks is the firehose length (default 12); PerTick the batch size
	// (default 300); WindowTicks the sliding window (default 4).
	Ticks       int
	PerTick     int
	WindowTicks int
	// RunTimeout bounds one seed's lifecycle (default 2m).
	RunTimeout time.Duration
	// Logf, when set, receives per-seed progress lines.
	Logf func(format string, args ...any)
}

func (o *StreamOptions) setDefaults() {
	if o.Ticks <= 0 {
		o.Ticks = 12
	}
	if o.PerTick <= 0 {
		o.PerTick = 300
	}
	if o.WindowTicks <= 0 {
		o.WindowTicks = 4
	}
	if o.RunTimeout <= 0 {
		o.RunTimeout = 2 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// StreamRunReport is the audited result of one seed's lifecycle.
type StreamRunReport struct {
	Seed    int64         `json:"seed"`
	Outcome Outcome       `json:"outcome"`
	Reason  string        `json:"reason,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`

	Ticks         int `json:"ticks"`
	Points        int `json:"points"`
	RestartAtTick int `json:"restart_at_tick"`
	// InvalidRejected counts injected bad batches the server rejected
	// with typed errors (every injection must land here).
	InvalidRejected int `json:"invalid_rejected"`
	FinalClusters   int `json:"final_clusters"`
}

// StreamReport aggregates a stream chaos campaign.
type StreamReport struct {
	Runs   []StreamRunReport `json:"runs"`
	OK     int               `json:"ok"`
	Failed int               `json:"failed"`
}

// RunStream executes the stream campaign.
func RunStream(o StreamOptions) *StreamReport {
	o.setDefaults()
	rpt := &StreamReport{}
	for _, seed := range o.Seeds {
		r := RunStreamSeed(seed, o)
		rpt.Runs = append(rpt.Runs, r)
		if r.Outcome == OutcomeFail {
			rpt.Failed++
			o.Logf("stream seed %d: FAIL: %s", seed, r.Reason)
		} else {
			rpt.OK++
			o.Logf("stream seed %d: ok (%d ticks, %d points, restart at tick %d, %d invalid rejected, %d clusters)",
				seed, r.Ticks, r.Points, r.RestartAtTick, r.InvalidRejected, r.FinalClusters)
		}
	}
	return rpt
}

// RunStreamSeed runs one seeded firehose through a drain/restart
// lifecycle and audits label fidelity against the fault-free reference.
func RunStreamSeed(seed int64, o StreamOptions) StreamRunReport {
	o.setDefaults()
	start := time.Now()
	rep := StreamRunReport{Seed: seed, Ticks: o.Ticks}
	fail := func(format string, args ...any) StreamRunReport {
		rep.Outcome = OutcomeFail
		rep.Reason = fmt.Sprintf(format, args...)
		rep.Elapsed = time.Since(start)
		return rep
	}

	stateDir, err := os.MkdirTemp("", "mrscan-stream-")
	if err != nil {
		return fail("creating state dir: %v", err)
	}
	defer os.RemoveAll(stateDir)

	rng := rand.New(rand.NewSource(seed))
	batches := dataset.Firehose(o.Ticks, o.PerTick, seed, dataset.DefaultFirehoseOptions())
	spec := server.StreamSpec{
		Tenant: "chaos", Name: "firehose", Eps: 0.12, MinPts: 8,
		WindowTicks: o.WindowTicks,
	}
	ref, err := stream.New(stream.Config{Eps: spec.Eps, MinPts: spec.MinPts, WindowTicks: spec.WindowTicks})
	if err != nil {
		return fail("building reference engine: %v", err)
	}

	// The restart strikes somewhere in the interior of the sequence so
	// both generations tick a nonempty share.
	cut := 2 + rng.Intn(o.Ticks-3)
	rep.RestartAtTick = cut

	cfg := server.Config{Workers: 1, StateDir: stateDir}
	srv, err := server.New(cfg)
	if err != nil {
		return fail("starting server: %v", err)
	}
	id, err := srv.CreateStream(spec)
	if err != nil {
		srv.Close()
		return fail("creating stream: %v", err)
	}

	// feed runs one audited tick: with some probability an invalid batch
	// (duplicate in-window ID) goes first — it must be rejected with an
	// error and must not perturb the labels the valid tick then produces.
	feed := func(s *server.Server, ti int) error {
		batch := batches[ti]
		if ti > 0 && rng.Float64() < 0.3 {
			bad := make([]geom.Point, len(batch))
			copy(bad, batch)
			bad[0] = batches[ti-1][0] // still live in the window
			if _, err := s.StreamTick(id, bad); err == nil {
				return fmt.Errorf("tick %d: duplicate-ID batch accepted", ti)
			}
			rep.InvalidRejected++
		}
		if _, err := s.StreamTick(id, batch); err != nil {
			return fmt.Errorf("tick %d: %w", ti, err)
		}
		if _, err := ref.Tick(batch); err != nil {
			return fmt.Errorf("tick %d reference: %w", ti, err)
		}
		rep.Points += len(batch)
		got, err := s.StreamSnapshot(id)
		if err != nil {
			return fmt.Errorf("tick %d snapshot: %w", ti, err)
		}
		want := ref.Snapshot()
		if len(got.Points) != len(want.Points) || got.NumClusters != want.NumClusters {
			return fmt.Errorf("tick %d: served window (%d pts, %d clusters) != reference (%d pts, %d clusters)",
				ti, len(got.Points), got.NumClusters, len(want.Points), want.NumClusters)
		}
		for i := range got.Points {
			if got.Points[i].ID != want.Points[i].ID || got.Labels[i] != want.Labels[i] {
				return fmt.Errorf("tick %d point %d: served (id %d, label %d) != reference (id %d, label %d)",
					ti, i, got.Points[i].ID, got.Labels[i], want.Points[i].ID, want.Labels[i])
			}
		}
		rep.FinalClusters = got.NumClusters
		return nil
	}

	for ti := 0; ti < cut; ti++ {
		if err := feed(srv, ti); err != nil {
			srv.Close()
			return fail("generation 1: %v", err)
		}
	}

	// SIGTERM: drain and shut down generation 1 with the window durable.
	srv.Drain()
	srv.Close()

	// Generation 2 on the same directory must recover the stream with
	// its window intact before serving, then keep ticking.
	srv2, err := server.New(cfg)
	if err != nil {
		return fail("restarting server: %v", err)
	}
	defer srv2.Close()
	st, err := srv2.StreamStatus(id)
	if err != nil {
		return fail("stream not recovered after restart: %v", err)
	}
	if !st.Recovered {
		return fail("stream %s present after restart but not flagged recovered", id)
	}
	if st.Tick != cut {
		return fail("recovered stream at tick %d, want %d", st.Tick, cut)
	}
	got, err := srv2.StreamSnapshot(id)
	if err != nil {
		return fail("recovered snapshot: %v", err)
	}
	want := ref.Snapshot()
	if len(got.Points) != len(want.Points) {
		return fail("recovered window has %d points, reference %d", len(got.Points), len(want.Points))
	}
	for i := range got.Points {
		if got.Points[i].ID != want.Points[i].ID || got.Labels[i] != want.Labels[i] {
			return fail("recovered point %d: (id %d, label %d) != reference (id %d, label %d)",
				i, got.Points[i].ID, got.Labels[i], want.Points[i].ID, want.Labels[i])
		}
	}

	for ti := cut; ti < o.Ticks; ti++ {
		if err := feed(srv2, ti); err != nil {
			return fail("generation 2: %v", err)
		}
		if time.Since(start) > o.RunTimeout {
			return fail("campaign exceeded its %v wall-time bound at tick %d", o.RunTimeout, ti)
		}
	}

	if err := srv2.CloseStream(id); err != nil {
		return fail("closing stream: %v", err)
	}

	rep.Outcome = OutcomeOK
	rep.Elapsed = time.Since(start)
	return rep
}
