package chaos

import (
	"testing"
	"time"
)

// One seeded gray campaign must pass all five legs: the limping worker
// quarantined with labels intact and wall time bounded, the transient
// limper walking quarantine → probation → healthy, the flapping link
// preemptively re-parented, the slow OST excluded from shard placement,
// and the phase-retry budget enforced loudly.
func TestGrayCampaignInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("gray campaign skipped in -short mode")
	}
	rpt := RunGray(GrayOptions{
		Seeds:      Seeds(1, 1),
		Points:     3000,
		RunTimeout: time.Minute,
		Logf:       t.Logf,
	})
	if rpt.Failed != 0 {
		for _, r := range rpt.Runs {
			for _, l := range r.Legs {
				if !l.OK {
					t.Errorf("seed %d leg %s: %s", r.Seed, l.Name, l.Reason)
				}
			}
		}
	}
	for _, r := range rpt.Runs {
		for _, l := range r.Legs {
			if l.OK && len(l.Quarantined) > 1 {
				t.Errorf("seed %d leg %s: multiple quarantines %v", r.Seed, l.Name, l.Quarantined)
			}
		}
	}
}
