package chaos

import (
	"context"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/mrscan"
)

// TestCrashCampaignSmoke runs a small two-leg campaign and requires a
// clean bill: no acknowledged state lost at any sampled crash point.
func TestCrashCampaignSmoke(t *testing.T) {
	o := CrashOptions{
		Seeds:              Seeds(1, 2),
		Points:             600,
		Leaves:             2,
		CrashPoints:        4,
		JournalCrashPoints: 2,
		JournalJobs:        2,
		RecoveryCrashEvery: 2,
		Logf:               t.Logf,
	}
	rep := RunCrash(o)
	if rep.Failed != 0 {
		for _, r := range rep.Runs {
			if r.Outcome == OutcomeFail {
				t.Errorf("seed %d: %s", r.Seed, r.Reason)
			}
		}
	}
	if rep.CrashPoints == 0 {
		t.Fatal("campaign exercised no crash points")
	}
}

// TestRecoveryIdempotence forces a double crash — power failure during
// the recovery run itself — across many seeds and requires the final
// state to be identical to the fault-free reference every time.
func TestRecoveryIdempotence(t *testing.T) {
	o := CrashOptions{Points: 300, Leaves: 2}
	o.setDefaults()
	for seed := int64(1); seed <= 20; seed++ {
		pts := dataset.Twitter(o.Points, seed)
		base := Options{Points: o.Points, Leaves: o.Leaves, RunTimeout: o.RunTimeout}
		base.setDefaults()
		ctx, cancel := context.WithTimeout(context.Background(), o.RunTimeout)
		refLabels, err := reference(ctx, pts, base)
		cancel()
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		probeFS, err := newCrashFS(pts, seed)
		if err != nil {
			t.Fatalf("seed %d: probe: %v", seed, err)
		}
		ctx2, cancel2 := context.WithTimeout(context.Background(), o.RunTimeout)
		_, err = mrscan.RunContext(ctx2, probeFS, "input.mrsc", "output.mrsl", crashPipelineCfg(o))
		cancel2()
		if err != nil {
			t.Fatalf("seed %d: probe run: %v", seed, err)
		}
		// Crash mid-run, then again during the recovery.
		k := probeFS.OpCount() / 2
		if k < 2 {
			k = 2
		}
		pr := runPipelineCrashPoint(seed, k, true, pts, refLabels, o)
		if pr.Outcome != OutcomeOK {
			t.Errorf("seed %d crash@%d: %s", seed, k, pr.Reason)
		}
	}
}

// TestMutationLyingCheckpointSyncFails removes (in effect) the fsync of
// checkpoint files — Sync succeeds but persists nothing — and requires
// the campaign to FAIL. A crash harness that stays green under a lying
// fsync would prove nothing.
func TestMutationLyingCheckpointSyncFails(t *testing.T) {
	rep := RunCrash(CrashOptions{
		Seeds:              Seeds(1, 2),
		Points:             500,
		Leaves:             2,
		CrashPoints:        8,
		JournalCrashPoints: -1,
		// The store fsyncs the ".ckpt.tmp" name before renaming it into
		// place, so the pattern must cover both.
		DropSyncs: "*.ckpt*",
	})
	if rep.Failed == 0 {
		t.Fatal("campaign stayed green with checkpoint fsyncs dropped; the harness is not sensitive to the sync-ordering discipline")
	}
}

// TestMutationLyingDirSyncFails drops every directory sync — renames
// and creates never become durable — and requires the campaign to FAIL.
func TestMutationLyingDirSyncFails(t *testing.T) {
	rep := RunCrash(CrashOptions{
		Seeds:              Seeds(1, 3),
		Points:             500,
		Leaves:             2,
		CrashPoints:        6,
		JournalCrashPoints: 2,
		JournalJobs:        2,
		DropDirSyncs:       true,
	})
	if rep.Failed == 0 {
		t.Fatal("campaign stayed green with directory syncs dropped; the harness is not sensitive to the sync-ordering discipline")
	}
}

// TestCrashOptionsDisableLegs checks the <0 escape hatches.
func TestCrashOptionsDisableLegs(t *testing.T) {
	rep := RunCrashSeed(1, CrashOptions{
		Points: 300, Leaves: 2,
		CrashPoints: -1, JournalCrashPoints: 2, JournalJobs: 2,
		RunTimeout: time.Minute,
	})
	if len(rep.Points) != 0 {
		t.Fatalf("pipeline leg ran despite CrashPoints<0: %d points", len(rep.Points))
	}
	if len(rep.Journal) == 0 {
		t.Fatal("journal leg did not run")
	}
}
