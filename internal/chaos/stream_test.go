package chaos

import "testing"

func TestStreamCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("stream chaos campaign is slow")
	}
	opt := StreamOptions{Seeds: Seeds(1, 4), Ticks: 10, PerTick: 200, Logf: t.Logf}
	rpt := RunStream(opt)
	if rpt.Failed != 0 {
		for _, r := range rpt.Runs {
			if r.Outcome == OutcomeFail {
				t.Errorf("seed %d: %s", r.Seed, r.Reason)
			}
		}
		t.Fatalf("%d of %d stream seeds failed", rpt.Failed, len(rpt.Runs))
	}
	for _, r := range rpt.Runs {
		if r.Points == 0 || r.FinalClusters == 0 {
			t.Fatalf("seed %d: degenerate run: %+v", r.Seed, r)
		}
	}
}
