// Gray-failure campaigns: unlike the fail-stop schedules in chaos.go,
// these inject faults that pass every liveness check — a worker serving
// 20x slow, a link that drops two frames out of three, an OST limping at
// 1/16th bandwidth, a phase that errors transiently under an exhausted
// retry budget — and audit the adaptive health layer's promises:
//
//  1. Exact output: labels (and partition bytes) equal a fault-free
//     reference run exactly. Gray faults are masked by avoidance, not
//     by approximation.
//  2. Convergent quarantine: every sick component is quarantined within
//     MaxQuarantineDispatches dispatches (or one collective round trip),
//     and no healthy component is ever quarantined.
//  3. Bounded retry spend: all masking is paid for out of the shared
//     token-bucket retry budget; spend stays under the ceiling and a
//     denied budget surfaces as a loud health.ErrBudgetExhausted, never
//     a silent retry storm.
//  4. Bounded wall time: with one 20x-slow worker in the fleet, the run
//     finishes within WallFactor (default 1.5x) of the healthy baseline.
//
// Each seed runs five legs — worker, recovery, link, shard, budget —
// exercising the quarantine machinery in distrib, mrnet, lustre and the
// mrscan phase-retry path respectively.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/distrib"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/lustre"
	"repro/internal/mrnet"
	"repro/internal/mrscan"
	"repro/internal/partition"
	"repro/internal/ptio"
)

// GrayOptions configures a gray-failure campaign.
type GrayOptions struct {
	// Seeds are the schedules to run, one five-leg campaign per seed.
	Seeds []int64
	// Workers is the dispatch fleet size of the worker leg (default 8).
	Workers int
	// Partitions is the worker leg's partition count (default 72 —
	// enough dispatch length, at 8 workers and BaseDelay service time,
	// for the in-flight monitor to accumulate a quarantine verdict on
	// the limper within two dispatches).
	Partitions int
	// Points is the worker-leg dataset size (default 4000).
	Points int
	// BaseDelay is the healthy per-request service delay (default 40ms);
	// the sick worker serves at SlowFactor times it.
	BaseDelay time.Duration
	// SlowFactor is the gray slowdown of the limping worker (default 20,
	// the acceptance scenario).
	SlowFactor int
	// RetryBudget is the shared token-bucket capacity per leg
	// (default 64).
	RetryBudget int
	// WallFactor bounds the worker leg's wall time as a multiple of the
	// healthy baseline (default 1.5).
	WallFactor float64
	// MaxQuarantineDispatches is K: the sick worker must be quarantined
	// within this many dispatches (default 2).
	MaxQuarantineDispatches int
	// RunTimeout bounds each leg's wall time (default 2m).
	RunTimeout time.Duration
	// Logf, when set, receives per-seed progress lines.
	Logf func(format string, args ...any)
}

func (o *GrayOptions) setDefaults() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Partitions <= 0 {
		o.Partitions = 72
	}
	if o.Points <= 0 {
		o.Points = 4000
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 40 * time.Millisecond
	}
	if o.SlowFactor <= 1 {
		o.SlowFactor = 20
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 64
	}
	if o.WallFactor <= 1 {
		o.WallFactor = 1.5
	}
	if o.MaxQuarantineDispatches <= 0 {
		o.MaxQuarantineDispatches = 2
	}
	if o.RunTimeout <= 0 {
		o.RunTimeout = 2 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// GrayLeg is the audit of one leg of a seeded gray campaign.
type GrayLeg struct {
	Name    string `json:"name"`
	OK      bool   `json:"ok"`
	Reason  string `json:"reason,omitempty"`
	// Quarantined lists the components quarantined during the leg; the
	// audit requires it to be exactly the sick set.
	Quarantined []string `json:"quarantined,omitempty"`
	// Dispatches is how many dispatches (or collective rounds) it took
	// to quarantine the sick component.
	Dispatches int `json:"dispatches_to_quarantine,omitempty"`
	// Identical reports exact equality with the fault-free reference.
	Identical bool `json:"identical"`
	// WallRatio is gray wall time per dispatch over the healthy
	// baseline (worker leg only).
	WallRatio float64 `json:"wall_ratio,omitempty"`
	// BudgetSpent/BudgetDenied account the leg's retry-token traffic.
	BudgetSpent  int64 `json:"budget_spent"`
	BudgetDenied int64 `json:"budget_denied"`
	// Transitions is the observed state-machine history, in order.
	Transitions []string      `json:"transitions,omitempty"`
	Elapsed     time.Duration `json:"elapsed_ns"`
}

// GrayRunReport is one seed's five-leg campaign.
type GrayRunReport struct {
	Seed    int64         `json:"seed"`
	Outcome Outcome       `json:"outcome"`
	Legs    []GrayLeg     `json:"legs"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// GrayReport aggregates a gray campaign.
type GrayReport struct {
	Runs   []GrayRunReport `json:"runs"`
	OK     int             `json:"ok"`
	Failed int             `json:"failed"`
}

// grayHealthConfig is the hysteresis used by the dispatch legs: two bad
// observations raise Suspect, one more quarantines, and re-admission
// needs two clean probes then two clean real completions.
func grayHealthConfig() health.Config {
	return health.Config{SuspectAfter: 2, QuarantineAfter: 1, RecoverAfter: 2, MinObservations: 2}
}

// collectTransitions subscribes to tracker and returns a snapshot
// function over the observed state-machine history.
func collectTransitions(tracker *health.Tracker) func() []health.Transition {
	var mu sync.Mutex
	var hist []health.Transition
	tracker.OnTransition(func(tr health.Transition) {
		mu.Lock()
		hist = append(hist, tr)
		mu.Unlock()
	})
	return func() []health.Transition {
		mu.Lock()
		defer mu.Unlock()
		return append([]health.Transition(nil), hist...)
	}
}

// formatTransitions renders the history for the JSON report.
func formatTransitions(hist []health.Transition) []string {
	out := make([]string, len(hist))
	for i, tr := range hist {
		out[i] = fmt.Sprintf("%s:%s->%s", tr.Component, tr.From, tr.To)
	}
	return out
}

// startGrayFleet launches n workers against c; delayOf(i) is worker i's
// per-request service delay and limpOf(i) bounds how many slow requests
// it serves (0 = forever). Returns a WaitGroup for shutdown.
func startGrayFleet(c *distrib.Coordinator, n int, delayOf func(int) time.Duration, limpOf func(int) int) (*sync.WaitGroup, error) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = distrib.WorkerWithOptions(c.Addr(), 7000+i,
				distrib.WorkerOptions{Delay: delayOf(i), LimpOps: limpOf(i)})
		}(i)
	}
	if err := c.AcceptWorkers(n, 30*time.Second); err != nil {
		return nil, err
	}
	return &wg, nil
}

// grayDistribOptions is the clustering configuration shared by the
// worker/recovery legs' gray runs and their fault-free references.
func grayDistribOptions(partitions int) distrib.Options {
	return distrib.Options{Eps: 0.1, MinPts: 10, Leaves: partitions, DenseBox: true}
}

// grayReference runs the same clustering on an all-healthy fleet and
// returns its labels and wall time — the byte-exactness oracle and the
// wall-time baseline.
func grayReference(ctx context.Context, pts []geom.Point, workers int, delay time.Duration, opt distrib.Options) ([]int, time.Duration, error) {
	c, err := distrib.NewCoordinator()
	if err != nil {
		return nil, 0, err
	}
	var wg *sync.WaitGroup
	defer func() {
		c.Shutdown()
		if wg != nil {
			wg.Wait()
		}
	}()
	wg, err = startGrayFleet(c, workers, func(int) time.Duration { return delay }, func(int) int { return 0 })
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	res, err := c.RunContext(ctx, pts, opt)
	if err != nil {
		return nil, 0, err
	}
	return res.Labels, time.Since(start), nil
}

// sickView finds comp in the tracker snapshot.
func sickView(tracker *health.Tracker, comp string) (health.View, bool) {
	for _, v := range tracker.Snapshot() {
		if v.Component == comp {
			return v, true
		}
	}
	return health.View{}, false
}

// grayWorkerLeg: one worker in a fleet of o.Workers serves every request
// at SlowFactor x the healthy delay but stays perfectly live. The health
// monitor must quarantine it on in-flight evidence within K dispatches,
// hedging must keep the wall time within WallFactor of the healthy
// baseline, labels must stay byte-identical, and no healthy worker may
// be quarantined.
func grayWorkerLeg(ctx context.Context, seed int64, o GrayOptions) GrayLeg {
	leg := GrayLeg{Name: "worker"}
	start := time.Now()
	fail := func(format string, args ...any) GrayLeg {
		leg.Reason = fmt.Sprintf(format, args...)
		leg.Elapsed = time.Since(start)
		return leg
	}
	pts := dataset.Twitter(o.Points, seed)
	opt := grayDistribOptions(o.Partitions)

	refLabels, healthyWall, err := grayReference(ctx, pts, o.Workers, o.BaseDelay, opt)
	if err != nil {
		return fail("healthy reference: %v", err)
	}

	c, err := distrib.NewCoordinator()
	if err != nil {
		return fail("coordinator: %v", err)
	}
	var fleet *sync.WaitGroup
	defer func() {
		c.Shutdown()
		if fleet != nil {
			fleet.Wait()
		}
	}()
	c.StragglerFactor = 2
	tracker := health.New(grayHealthConfig())
	c.Health = tracker
	budget := health.NewBudget(o.RetryBudget, 0)
	c.Budget = budget
	history := collectTransitions(tracker)
	// The sick worker index is seeded; which accepted connection (and
	// therefore which component name) it lands on is scheduling-dependent,
	// so the audit identifies it by its latency signature, not its index.
	slow := int(seed) % o.Workers
	if slow < 0 {
		slow += o.Workers
	}
	slowDelay := time.Duration(o.SlowFactor) * o.BaseDelay
	fleet, err = startGrayFleet(c, o.Workers,
		func(i int) time.Duration {
			if i == slow {
				return slowDelay
			}
			return o.BaseDelay
		},
		func(int) int { return 0 })
	if err != nil {
		return fail("starting fleet: %v", err)
	}

	grayStart := time.Now()
	dispatches := 0
	for d := 1; d <= o.MaxQuarantineDispatches; d++ {
		res, err := c.RunContext(ctx, pts, opt)
		if err != nil {
			return fail("dispatch %d: %v", d, err)
		}
		dispatches = d
		if !equalLabels(refLabels, res.Labels) {
			return fail("dispatch %d: labels differ from fault-free reference", d)
		}
		if len(tracker.QuarantinedComponents()) > 0 {
			break
		}
	}
	grayWall := time.Since(grayStart) / time.Duration(dispatches)
	leg.Identical = true
	leg.Dispatches = dispatches
	leg.WallRatio = float64(grayWall) / float64(healthyWall)
	leg.Quarantined = tracker.QuarantinedComponents()
	leg.Transitions = formatTransitions(history())
	leg.BudgetSpent, leg.BudgetDenied = budget.Spent(), budget.Denied()
	leg.Elapsed = time.Since(start)

	if len(leg.Quarantined) != 1 {
		return fail("quarantined %v after %d dispatches, want exactly the slow worker", leg.Quarantined, dispatches)
	}
	// The quarantined component must carry the limper's latency
	// signature — a fast worker here would be a false quarantine.
	if v, ok := sickView(tracker, leg.Quarantined[0]); !ok || v.Latency < 2*o.BaseDelay {
		return fail("quarantined %s has healthy latency %v — false quarantine", leg.Quarantined[0], v.Latency)
	}
	if leg.WallRatio > o.WallFactor {
		return fail("gray wall %v is %.2fx healthy %v, bound %.2fx", grayWall, leg.WallRatio, healthyWall, o.WallFactor)
	}
	if leg.BudgetDenied != 0 {
		return fail("retry budget denied %d takes on a maskable schedule", leg.BudgetDenied)
	}
	if leg.BudgetSpent > int64(o.RetryBudget) {
		return fail("retry spend %d exceeds budget %d", leg.BudgetSpent, o.RetryBudget)
	}
	leg.OK = true
	return leg
}

// grayRecoveryLeg: the limp clears after the worker's first slow request
// (a transient gray fault — GC pause, page-cache eviction). The worker
// must walk the full state machine — quarantine, probe-earned probation,
// clean re-admission — while every dispatch's labels stay exact.
func grayRecoveryLeg(ctx context.Context, seed int64, o GrayOptions) GrayLeg {
	leg := GrayLeg{Name: "recovery"}
	start := time.Now()
	fail := func(format string, args ...any) GrayLeg {
		leg.Reason = fmt.Sprintf(format, args...)
		leg.Elapsed = time.Since(start)
		return leg
	}
	const (
		workers    = 4
		partitions = 12
		baseDelay  = 20 * time.Millisecond
		limpDelay  = 300 * time.Millisecond
	)
	pts := dataset.Twitter(2400, seed)
	opt := grayDistribOptions(partitions)
	refLabels, _, err := grayReference(ctx, pts, workers, baseDelay, opt)
	if err != nil {
		return fail("healthy reference: %v", err)
	}

	c, err := distrib.NewCoordinator()
	if err != nil {
		return fail("coordinator: %v", err)
	}
	var fleet *sync.WaitGroup
	defer func() {
		c.Shutdown()
		if fleet != nil {
			fleet.Wait()
		}
	}()
	tracker := health.New(grayHealthConfig())
	c.Health = tracker
	c.ProbeInterval = 2 * time.Millisecond
	budget := health.NewBudget(o.RetryBudget, 0)
	c.Budget = budget
	history := collectTransitions(tracker)
	limper := int(seed) % workers
	if limper < 0 {
		limper += workers
	}
	fleet, err = startGrayFleet(c, workers,
		func(i int) time.Duration {
			if i == limper {
				return limpDelay
			}
			return baseDelay
		},
		func(i int) int {
			if i == limper {
				return 1
			}
			return 0
		})
	if err != nil {
		return fail("starting fleet: %v", err)
	}

	recovered := false
	for round := 1; round <= 6 && !recovered; round++ {
		res, err := c.RunContext(ctx, pts, opt)
		if err != nil {
			return fail("round %d: %v", round, err)
		}
		if !equalLabels(refLabels, res.Labels) {
			return fail("round %d: labels differ from fault-free reference", round)
		}
		leg.Dispatches = round
		for _, q := range leg.Quarantined {
			if tracker.State(q) == health.Healthy {
				recovered = true
			}
		}
		if qs := tracker.QuarantinedComponents(); len(qs) > 0 {
			leg.Quarantined = qs
		}
	}
	hist := history()
	leg.Identical = true
	leg.Transitions = formatTransitions(hist)
	leg.BudgetSpent, leg.BudgetDenied = budget.Spent(), budget.Denied()
	leg.Elapsed = time.Since(start)

	sick := map[string]bool{}
	var sawProbation, sawReadmit bool
	for _, tr := range hist {
		switch {
		case tr.To == health.Quarantined:
			sick[tr.Component] = true
		case tr.From == health.Quarantined && tr.To == health.Probation:
			sawProbation = true
		case tr.From == health.Probation && tr.To == health.Healthy:
			sawReadmit = true
		}
	}
	if len(sick) != 1 {
		return fail("quarantined set %v, want exactly the limper (transitions %v)", sick, leg.Transitions)
	}
	if !sawProbation || !sawReadmit || !recovered {
		return fail("state machine incomplete: probation=%v readmit=%v healthy-again=%v (transitions %v)",
			sawProbation, sawReadmit, recovered, leg.Transitions)
	}
	leg.OK = true
	return leg
}

// grayLinkLeg: an internal uplink drops two frames out of three — alive,
// but poisonous. Link health must quarantine the NIC and preemptively
// re-parent its subtree before any collective hard-fails; every
// reduction returns the exact sum throughout, and all retransmits are
// paid out of the retry budget.
func grayLinkLeg(ctx context.Context, seed int64, o GrayOptions) GrayLeg {
	leg := GrayLeg{Name: "link"}
	start := time.Now()
	fail := func(format string, args ...any) GrayLeg {
		leg.Reason = fmt.Sprintf(format, args...)
		leg.Elapsed = time.Since(start)
		return leg
	}
	net, err := mrnet.New(16, 4, mrnet.CostModel{HopLatency: time.Microsecond}, nil)
	if err != nil {
		return fail("building tree: %v", err)
	}
	tracker := health.New(health.Config{SuspectAfter: 2, QuarantineAfter: 1, MinObservations: 2})
	net.SetHealth(tracker)
	budget := health.NewBudget(o.RetryBudget, 0)
	net.SetRetryBudget(budget)
	history := collectTransitions(tracker)

	children := net.Root().Children()
	victim := children[int(uint64(seed))%len(children)]
	if victim.IsLeaf() {
		return fail("topology: victim %d is a leaf", victim.ID())
	}
	net.SetFaultPlan(faultinject.New(seed).Arm(mrnet.NICFaultSite(victim.ID()), faultinject.Rule{Flap: "ddu"}))

	want := 16 * 15 / 2
	rounds := 0
	for round := 1; round <= 4; round++ {
		got, err := mrnet.Reduce(ctx, net,
			func(leaf int) (int, error) { return leaf, nil },
			func(_ *mrnet.Node, in []int) (int, error) {
				s := 0
				for _, v := range in {
					s += v
				}
				return s, nil
			},
			func(int) int64 { return 32 })
		if err != nil {
			return fail("round %d: %v", round, err)
		}
		if got != want {
			return fail("round %d: reduce = %d, want %d (silent wrong sum)", round, got, want)
		}
		rounds = round
		if tracker.Quarantined("nic." + strconv.Itoa(victim.ID())) {
			break
		}
	}
	leg.Identical = true
	leg.Dispatches = rounds
	leg.Quarantined = tracker.QuarantinedComponents()
	leg.Transitions = formatTransitions(history())
	leg.BudgetSpent, leg.BudgetDenied = budget.Spent(), budget.Denied()
	leg.Elapsed = time.Since(start)

	comp := "nic." + strconv.Itoa(victim.ID())
	if len(leg.Quarantined) != 1 || leg.Quarantined[0] != comp {
		return fail("quarantined %v, want exactly [%s]", leg.Quarantined, comp)
	}
	if got := net.Recoveries(); got != 1 {
		return fail("recoveries = %d, want 1 preemptive re-parent", got)
	}
	if leg.BudgetSpent == 0 {
		return fail("retransmits consumed no retry-budget tokens")
	}
	if leg.BudgetSpent > int64(o.RetryBudget) || leg.BudgetDenied != 0 {
		return fail("budget overrun: spent=%d denied=%d cap=%d", leg.BudgetSpent, leg.BudgetDenied, o.RetryBudget)
	}
	leg.OK = true
	return leg
}

// grayShardLeg: one OST serves at 1/16th bandwidth. OST read-latency
// health must quarantine it during the input pass, segment-shard
// placement must route every aggregated shard onto healthy OSTs, and
// the partition bytes must equal a healthy-fleet reference exactly.
func grayShardLeg(ctx context.Context, seed int64, o GrayOptions) GrayLeg {
	leg := GrayLeg{Name: "shard"}
	start := time.Now()
	fail := func(format string, args ...any) GrayLeg {
		leg.Reason = fmt.Sprintf(format, args...)
		leg.Elapsed = time.Since(start)
		return leg
	}
	const eps = 0.1
	pts := dataset.Twitter(12000, seed)
	opt := partition.DistOptions{NumPartitions: 8, MinPts: 4, Aggregate: true, SegmentShards: 3}

	// Healthy reference.
	refFS := lustre.New(lustre.Titan(), nil)
	refNet, err := mrnet.New(4, mrnet.DefaultFanout, mrnet.CostModel{}, refFS.Clock())
	if err != nil {
		return fail("reference tree: %v", err)
	}
	if err := ptio.WriteDataset(refFS.Create("in.mrsc"), pts, false); err != nil {
		return fail("reference input: %v", err)
	}
	ref, err := partition.Distribute(ctx, refNet, refFS, eps, "in.mrsc", "parts.bin", "parts.json", opt)
	if err != nil {
		return fail("reference distribute: %v", err)
	}

	// Gray run: tiny stripes so the input pass touches every OST; one
	// OST degraded 16x.
	sickOST := 1 + int(uint64(seed))%3
	cfg := lustre.Config{OSTs: 4, StripeSize: 4096, OSTBandwidth: 200e6, SeekPenalty: lustre.Titan().SeekPenalty}
	fs := lustre.New(cfg, nil)
	fs.SetFaultPlan(faultinject.New(seed).Arm(lustre.OSTFaultSite(sickOST), faultinject.Rule{Degrade: 16}))
	tracker := fs.EnableOSTHealth(health.Config{SuspectAfter: 2, QuarantineAfter: 1, MinObservations: 2})
	fs.SetRetryBudget(health.NewBudget(o.RetryBudget, 0))
	history := collectTransitions(tracker)
	net, err := mrnet.New(4, mrnet.DefaultFanout, mrnet.CostModel{}, fs.Clock())
	if err != nil {
		return fail("gray tree: %v", err)
	}
	if err := ptio.WriteDataset(fs.Create("in.mrsc"), pts, false); err != nil {
		return fail("gray input: %v", err)
	}
	res, err := partition.Distribute(ctx, net, fs, eps, "in.mrsc", "parts.bin", "parts.json", opt)
	if err != nil {
		return fail("gray distribute: %v", err)
	}
	leg.Quarantined = tracker.QuarantinedComponents()
	leg.Transitions = formatTransitions(history())
	leg.Elapsed = time.Since(start)

	comp := "ost." + strconv.Itoa(sickOST)
	if !tracker.Quarantined(comp) {
		return fail("slow OST %s not quarantined; quarantined=%v", comp, leg.Quarantined)
	}
	if len(leg.Quarantined) != 1 {
		return fail("false quarantines: %v", leg.Quarantined)
	}
	for _, seg := range res.Meta.Segments {
		osts := fs.FileOSTs(seg.File)
		if osts == nil {
			return fail("segment %s has no explicit OST layout", seg.File)
		}
		for _, ost := range osts {
			if ost == sickOST {
				return fail("segment %s placed on quarantined OST %d (layout %v)", seg.File, sickOST, osts)
			}
		}
	}
	if len(res.Meta.Partitions) != len(ref.Meta.Partitions) {
		return fail("partition count %d != reference %d", len(res.Meta.Partitions), len(ref.Meta.Partitions))
	}
	for j := range res.Meta.Partitions {
		got, _, err := partition.ReadPartition(fs, "parts.bin", res.Meta, j)
		if err != nil {
			return fail("reading gray partition %d: %v", j, err)
		}
		want, _, err := partition.ReadPartition(refFS, "parts.bin", ref.Meta, j)
		if err != nil {
			return fail("reading reference partition %d: %v", j, err)
		}
		if len(got) != len(want) {
			return fail("partition %d: %d points, reference %d", j, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fail("partition %d point %d differs from reference", j, i)
			}
		}
	}
	leg.Identical = true
	leg.OK = true
	return leg
}

// grayBudgetLeg: the mrscan phase-retry path pays for re-attempts out of
// the shared budget. A funded budget masks a transient phase fault and
// accounts the token; a zero budget must turn the same fault into a loud
// health.ErrBudgetExhausted — never a silent unbounded retry.
func grayBudgetLeg(ctx context.Context, seed int64, o GrayOptions) GrayLeg {
	leg := GrayLeg{Name: "budget"}
	start := time.Now()
	fail := func(format string, args ...any) GrayLeg {
		leg.Reason = fmt.Sprintf(format, args...)
		leg.Elapsed = time.Since(start)
		return leg
	}
	pts := dataset.Twitter(3000, seed)
	run := func(budget *health.Budget) error {
		fs := lustre.New(lustre.Titan(), nil)
		if err := ptio.WriteDataset(fs.Create("input.mrsc"), pts, false); err != nil {
			return err
		}
		cfg := mrscan.Default(0.1, 20, 4)
		cfg.IncludeNoise = true
		cfg.FaultPlan = faultinject.New(seed).
			Arm(mrscan.PhaseSite(mrscan.PhaseCluster), faultinject.Rule{Times: 1})
		cfg.Retry = mrscan.RetryPolicy{MaxAttempts: 3, Budget: budget}
		_, err := mrscan.RunContext(ctx, fs, "input.mrsc", "output.mrsl", cfg)
		return err
	}

	funded := health.NewBudget(2, 0)
	if err := run(funded); err != nil {
		return fail("funded run: %v", err)
	}
	leg.BudgetSpent = funded.Spent()
	if leg.BudgetSpent != 1 {
		return fail("funded run spent %d tokens, want exactly 1", leg.BudgetSpent)
	}

	starved := health.NewBudget(0, 0)
	err := run(starved)
	leg.BudgetDenied = starved.Denied()
	leg.Elapsed = time.Since(start)
	if err == nil {
		return fail("starved run succeeded — the retry was not budget-gated")
	}
	if !errors.Is(err, health.ErrBudgetExhausted) {
		return fail("starved run failed with %v, want ErrBudgetExhausted", err)
	}
	if leg.BudgetDenied != 1 {
		return fail("starved run denied %d takes, want exactly 1", leg.BudgetDenied)
	}
	leg.Identical = true
	leg.OK = true
	return leg
}

// RunGraySeed executes one seed's five legs.
func RunGraySeed(seed int64, o GrayOptions) GrayRunReport {
	o.setDefaults()
	start := time.Now()
	rep := GrayRunReport{Seed: seed, Outcome: OutcomeOK}
	ctx, cancel := context.WithTimeout(context.Background(), o.RunTimeout)
	defer cancel()
	for _, leg := range []func(context.Context, int64, GrayOptions) GrayLeg{
		grayWorkerLeg, grayRecoveryLeg, grayLinkLeg, grayShardLeg, grayBudgetLeg,
	} {
		l := leg(ctx, seed, o)
		rep.Legs = append(rep.Legs, l)
		if !l.OK {
			rep.Outcome = OutcomeFail
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// RunGray executes the whole gray campaign sequentially.
func RunGray(o GrayOptions) *GrayReport {
	o.setDefaults()
	rpt := &GrayReport{}
	for _, seed := range o.Seeds {
		r := RunGraySeed(seed, o)
		rpt.Runs = append(rpt.Runs, r)
		if r.Outcome == OutcomeOK {
			rpt.OK++
		} else {
			rpt.Failed++
		}
		for _, l := range r.Legs {
			status := "ok"
			if !l.OK {
				status = "FAIL: " + l.Reason
			}
			o.Logf("gray: seed %d leg %-8s %s quarantined=%v dispatches=%d wall=%.2fx budget=%d/%d elapsed=%v",
				seed, l.Name, status, l.Quarantined, l.Dispatches, l.WallRatio,
				l.BudgetSpent, l.BudgetDenied, l.Elapsed.Round(time.Millisecond))
		}
	}
	return rpt
}

