package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/mrscan"
	"repro/internal/quality"
	"repro/internal/server"
)

// The overload scenario drives the job server the way production
// traffic would try to kill it: several tenants burst-submit more work
// than the queues hold, a slice of the jobs carry seeded fault plans
// (transient GPU faults healed by retry, fatal faults modeling worker
// death), and mid-campaign the server is drained — the SIGTERM path —
// and a fresh instance restarted on the same state directory. The
// audit is the serving contract:
//
//  1. Zero silent drops: every job whose Submit returned an ID reaches
//     exactly one of completed / failed-with-error /
//     resumed-after-restart-then-terminal. No job is lost, stuck, or
//     terminal without explanation.
//  2. Typed backpressure: every rejected submission fails with one of
//     the typed admission errors (ErrQueueFull, ErrQuotaExceeded,
//     ErrDraining, ErrBreakerOpen) — never an anonymous error.
//  3. Quality under load: completed full-quality jobs score >=
//     QualityFloor against a fault-free pipeline reference; degraded
//     jobs are marked as such and score >= DegradedFloor.
//
// Which jobs get rejected or degraded depends on scheduling interleave
// — the invariants are written to hold for every interleave.

// OverloadOptions configures an overload campaign.
type OverloadOptions struct {
	// Seeds are the campaign seeds (one server lifecycle per seed).
	Seeds []int64
	// Tenants is the number of concurrently submitting tenants
	// (default 3). JobsPerTenant is each tenant's burst size (default 6).
	Tenants       int
	JobsPerTenant int
	// Points is the per-job dataset size (default 4000); each tenant
	// has its own seeded dataset. Degraded-mode quality degrades with
	// dataset size — below ~3000 points the rate-0.8 subsample can dip
	// under the 0.95 floor, so keep campaign datasets at least that big.
	Points int
	// Leaves is the pipeline tree width per job (default 2).
	Leaves int
	// Workers is the server's executor pool (default 2).
	Workers int
	// FaultRate in [0,1] scales how many jobs carry fault plans
	// (default 0.5).
	FaultRate float64
	// RunTimeout bounds one seed's full lifecycle (default 2m).
	RunTimeout time.Duration
	// QualityFloor for full-quality jobs (default 0.995);
	// DegradedFloor for degraded-mode jobs (default 0.95).
	QualityFloor  float64
	DegradedFloor float64
	// Logf, when set, receives per-seed progress lines.
	Logf func(format string, args ...any)
}

func (o *OverloadOptions) setDefaults() {
	if o.Tenants <= 0 {
		o.Tenants = 3
	}
	if o.JobsPerTenant <= 0 {
		o.JobsPerTenant = 6
	}
	if o.Points <= 0 {
		o.Points = 4000
	}
	if o.Leaves <= 0 {
		o.Leaves = 2
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.FaultRate < 0 || o.FaultRate > 1 {
		o.FaultRate = 0.5
	} else if o.FaultRate == 0 {
		o.FaultRate = 0.5
	}
	if o.RunTimeout <= 0 {
		o.RunTimeout = 2 * time.Minute
	}
	if o.QualityFloor <= 0 {
		o.QualityFloor = 0.995
	}
	if o.DegradedFloor <= 0 {
		o.DegradedFloor = 0.95
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// OverloadRunReport is the audited result of one seed's lifecycle.
type OverloadRunReport struct {
	Seed    int64         `json:"seed"`
	Outcome Outcome       `json:"outcome"`
	Reason  string        `json:"reason,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`

	Submitted int            `json:"submitted"`
	Admitted  int            `json:"admitted"`
	Rejected  map[string]int `json:"rejected,omitempty"` // by typed reason

	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Degraded  int `json:"degraded"`
	Resumed   int `json:"resumed"`
	// SuspendedAtDrain counts jobs parked by the mid-campaign drain
	// (all of which must complete or fail loudly after the restart).
	SuspendedAtDrain int `json:"suspended_at_drain"`

	// MinQuality / MinDegradedQuality are the worst DBDC scores seen
	// among completed full-quality / degraded jobs (-1 = none ran).
	MinQuality         float64 `json:"min_quality"`
	MinDegradedQuality float64 `json:"min_degraded_quality"`
}

// OverloadReport aggregates an overload campaign.
type OverloadReport struct {
	Runs   []OverloadRunReport `json:"runs"`
	OK     int                 `json:"ok"`
	Failed int                 `json:"failed"`
}

// RunOverload executes the overload campaign.
func RunOverload(o OverloadOptions) *OverloadReport {
	o.setDefaults()
	rpt := &OverloadReport{}
	for _, seed := range o.Seeds {
		r := RunOverloadSeed(seed, o)
		rpt.Runs = append(rpt.Runs, r)
		if r.Outcome == OutcomeFail {
			rpt.Failed++
			o.Logf("overload seed %d: FAIL: %s", seed, r.Reason)
		} else {
			rpt.OK++
			o.Logf("overload seed %d: ok (admitted %d, rejected %v, degraded %d, resumed %d, suspended-at-drain %d)",
				seed, r.Admitted, r.Rejected, r.Degraded, r.Resumed, r.SuspendedAtDrain)
		}
	}
	return rpt
}

// overloadJob tracks one admitted job across both server generations.
type overloadJob struct {
	id     string
	tenant int
}

// RunOverloadSeed runs one full server lifecycle under the seeded storm
// and audits the invariants.
func RunOverloadSeed(seed int64, o OverloadOptions) OverloadRunReport {
	o.setDefaults()
	start := time.Now()
	rep := OverloadRunReport{
		Seed: seed, Rejected: map[string]int{},
		MinQuality: -1, MinDegradedQuality: -1,
	}
	fail := func(format string, args ...any) OverloadRunReport {
		rep.Outcome = OutcomeFail
		rep.Reason = fmt.Sprintf(format, args...)
		rep.Elapsed = time.Since(start)
		return rep
	}
	deadline := start.Add(o.RunTimeout)

	stateDir, err := os.MkdirTemp("", "mrscan-overload-")
	if err != nil {
		return fail("creating state dir: %v", err)
	}
	defer os.RemoveAll(stateDir)

	// Per-tenant datasets and fault-free pipeline references.
	pts := make([][]geom.Point, o.Tenants)
	refs := make([][]int, o.Tenants)
	for t := 0; t < o.Tenants; t++ {
		pts[t] = dataset.Twitter(o.Points, seed*100+int64(t))
		cfg := mrscan.Default(0.1, 20, o.Leaves)
		cfg.IncludeNoise = true
		_, labels, err := mrscan.RunPoints(pts[t], cfg)
		if err != nil {
			return fail("tenant %d reference run: %v", t, err)
		}
		refs[t] = labels
	}

	// A deliberately tight server: queues sized below the burst so
	// saturation rejects, the degrade watermark low so overload degrades,
	// a short drain deadline so the mid-campaign SIGTERM suspends
	// in-flight work instead of waiting it out.
	cfg := server.Config{
		Workers:           o.Workers,
		QueuePerTenant:    2,
		QueueTotal:        2 * o.Tenants,
		DegradeQueueDepth: 2,
		BreakerThreshold:  -1, // rejection mix is queue/quota/drain here
		JobTimeout:        o.RunTimeout,
		DrainTimeout:      20 * time.Millisecond,
		Retry:             mrscan.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
		StateDir:          stateDir,
	}
	srv, err := server.New(cfg)
	if err != nil {
		return fail("starting server: %v", err)
	}

	// The storm: every tenant bursts its jobs concurrently; a seeded
	// slice of them carry fault plans (transient gpusim faults the retry
	// policy heals, fatal faults modeling a worker process death the
	// server must resume from checkpoints).
	rng := rand.New(rand.NewSource(seed))
	type jobPlan struct {
		tenant  int
		plan    *faultinject.Plan
		stagger time.Duration
	}
	var plans []jobPlan
	for t := 0; t < o.Tenants; t++ {
		for j := 0; j < o.JobsPerTenant; j++ {
			jp := jobPlan{tenant: t, stagger: time.Duration(rng.Intn(4)) * time.Millisecond}
			switch r := rng.Float64(); {
			case r < o.FaultRate/2:
				jp.plan = faultinject.New(seed + int64(t*100+j)).Arm(
					faultinject.GPULaunch, faultinject.Rule{Times: 2})
			case r < o.FaultRate:
				jp.plan = faultinject.New(seed + int64(t*100+j)).Arm(
					mrscan.PhaseSite(mrscan.PhaseMerge), faultinject.Rule{Times: 1, Fatal: true})
			}
			plans = append(plans, jp)
		}
	}

	var (
		mu       sync.Mutex
		admitted []overloadJob
		badRejs  []string
	)
	var wg sync.WaitGroup
	for t := 0; t < o.Tenants; t++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			for _, jp := range plans {
				if jp.tenant != tenant {
					continue
				}
				time.Sleep(jp.stagger)
				id, err := srv.Submit(server.JobSpec{
					Tenant:    fmt.Sprintf("tenant-%d", tenant),
					Points:    pts[tenant],
					Eps:       0.1,
					MinPts:    20,
					Leaves:    o.Leaves,
					FaultPlan: jp.plan,
				})
				mu.Lock()
				rep.Submitted++
				if err != nil {
					switch {
					case errors.Is(err, server.ErrQueueFull):
						rep.Rejected["queue_full"]++
					case errors.Is(err, server.ErrQuotaExceeded):
						rep.Rejected["quota"]++
					case errors.Is(err, server.ErrDraining):
						rep.Rejected["draining"]++
					case errors.Is(err, server.ErrBreakerOpen):
						rep.Rejected["breaker"]++
					default:
						badRejs = append(badRejs, err.Error())
					}
				} else {
					admitted = append(admitted, overloadJob{id: id, tenant: tenant})
				}
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	rep.Admitted = len(admitted)
	if len(badRejs) > 0 {
		srv.Close()
		return fail("%d rejections with untyped errors, e.g. %q", len(badRejs), badRejs[0])
	}

	// Let the pool chew for a moment, then SIGTERM: drain (suspending
	// whatever the deadline catches mid-run) and shut the instance down.
	time.Sleep(time.Duration(10+rng.Intn(20)) * time.Millisecond)
	srv.Drain()

	// Snapshot generation 1: jobs terminal here must already obey the
	// contract; suspended ones transfer to generation 2.
	type jobOutcome struct {
		status server.JobStatus
		labels []int
	}
	outcomes := map[string]jobOutcome{}
	for _, j := range admitted {
		st, err := srv.Status(j.id)
		if err != nil {
			srv.Close()
			return fail("job %s admitted but unknown to the server after drain: %v", j.id, err)
		}
		oc := jobOutcome{status: st}
		if st.State == server.StateCompleted {
			if oc.labels, err = srv.Result(j.id); err != nil {
				srv.Close()
				return fail("job %s completed but has no result: %v", j.id, err)
			}
		}
		if st.State == server.StateSuspended {
			rep.SuspendedAtDrain++
		}
		outcomes[j.id] = oc
	}
	srv.Close()

	// Generation 2: restart on the same state directory; every
	// suspended (or never-started) job must be recovered and driven to
	// a terminal state.
	srv2, err := server.New(cfg)
	if err != nil {
		return fail("restarting server: %v", err)
	}
	defer srv2.Close()
	for {
		pending := 0
		for _, j := range admitted {
			oc := outcomes[j.id]
			if oc.status.State == server.StateCompleted || oc.status.State == server.StateFailed {
				continue
			}
			st, err := srv2.Status(j.id)
			if err != nil {
				return fail("job %s suspended at drain but unknown after restart: %v", j.id, err)
			}
			if !st.State.Terminal() {
				pending++
				continue
			}
			if st.State == server.StateSuspended {
				return fail("job %s suspended again on a server that is not draining", j.id)
			}
			oc.status = st
			if st.State == server.StateCompleted {
				if oc.labels, err = srv2.Result(j.id); err != nil {
					return fail("job %s completed after restart but has no result: %v", j.id, err)
				}
			}
			outcomes[j.id] = oc
		}
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fail("%d admitted jobs still pending at the %v campaign deadline", pending, o.RunTimeout)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The audit: every admitted job is terminal in exactly one accepted
	// way, and completed work meets its quality floor.
	for _, j := range admitted {
		oc := outcomes[j.id]
		st := oc.status
		switch st.State {
		case server.StateCompleted:
			rep.Completed++
			q, err := quality.Score(refs[j.tenant], oc.labels)
			if err != nil {
				return fail("job %s quality: %v", j.id, err)
			}
			floor := o.QualityFloor
			if st.Degraded {
				rep.Degraded++
				floor = o.DegradedFloor
				if rep.MinDegradedQuality < 0 || q < rep.MinDegradedQuality {
					rep.MinDegradedQuality = q
				}
			} else if rep.MinQuality < 0 || q < rep.MinQuality {
				rep.MinQuality = q
			}
			if q < floor {
				return fail("job %s (degraded=%v) quality %.4f below floor %.3f",
					j.id, st.Degraded, q, floor)
			}
			if st.Resumed {
				rep.Resumed++
			}
		case server.StateFailed:
			rep.Failed++
			if st.Err == "" {
				return fail("job %s failed silently — no error recorded", j.id)
			}
		default:
			return fail("job %s ended the campaign in state %q — a silent drop", j.id, st.State)
		}
	}
	if got := rep.Completed + rep.Failed; got != rep.Admitted {
		return fail("accounting leak: %d admitted != %d completed + %d failed",
			rep.Admitted, rep.Completed, rep.Failed)
	}

	rep.Outcome = OutcomeOK
	rep.Elapsed = time.Since(start)
	return rep
}
