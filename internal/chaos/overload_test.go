package chaos

import (
	"encoding/json"
	"testing"
	"time"
)

// TestOverloadSeed drives one full overload lifecycle — multi-tenant
// burst past queue capacity, seeded transient and fatal faults, a
// mid-campaign drain and restart — and requires the serving contract to
// hold: typed rejections only, zero silent drops, floors met.
func TestOverloadSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("overload campaign skipped in -short mode")
	}
	rep := RunOverloadSeed(1, OverloadOptions{
		RunTimeout: time.Minute,
		Logf:       t.Logf,
	})
	if rep.Outcome != OutcomeOK {
		t.Fatalf("overload seed 1: %s: %s", rep.Outcome, rep.Reason)
	}
	if rep.Admitted == 0 {
		t.Fatal("overload campaign admitted nothing — the storm never formed")
	}
	if rep.Completed+rep.Failed != rep.Admitted {
		t.Fatalf("accounting: admitted %d != completed %d + failed %d",
			rep.Admitted, rep.Completed, rep.Failed)
	}
	t.Logf("admitted=%d rejected=%v completed=%d failed=%d degraded=%d resumed=%d suspended=%d minQ=%.4f minDegQ=%.4f",
		rep.Admitted, rep.Rejected, rep.Completed, rep.Failed,
		rep.Degraded, rep.Resumed, rep.SuspendedAtDrain, rep.MinQuality, rep.MinDegradedQuality)
}

// TestOverloadCampaign runs a few seeds and checks the aggregate report
// marshals and carries per-seed audits.
func TestOverloadCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("overload campaign skipped in -short mode")
	}
	rpt := RunOverload(OverloadOptions{
		Seeds:      Seeds(100, 2),
		RunTimeout: time.Minute,
		Logf:       t.Logf,
	})
	if rpt.Failed != 0 {
		for _, r := range rpt.Runs {
			if r.Outcome == OutcomeFail {
				t.Errorf("seed %d: %s", r.Seed, r.Reason)
			}
		}
		t.Fatalf("%d/%d overload seeds failed", rpt.Failed, len(rpt.Runs))
	}
	if _, err := json.Marshal(rpt); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
	// Across the campaign the storm must actually have exercised the
	// overload machinery somewhere: at least one typed rejection or
	// degraded job proves the queues really saturated.
	exercised := false
	for _, r := range rpt.Runs {
		if len(r.Rejected) > 0 || r.Degraded > 0 || r.SuspendedAtDrain > 0 {
			exercised = true
		}
	}
	if !exercised {
		t.Fatal("no seed saturated the server — the campaign is not an overload test")
	}
}
