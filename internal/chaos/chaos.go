// Package chaos is the seeded end-to-end integrity harness: it
// generates random fault schedules — transient errors, silent payload
// corruption, node kills, stragglers, even a mid-run process death —
// runs the full partition→cluster→merge→sweep pipeline under each, and
// asserts the three properties the fault-tolerance and data-integrity
// layers promise:
//
//  1. Output quality: the run's labels match a fault-free reference run
//     exactly, or score at least QualityFloor (default 0.995, the
//     paper's §5.1.3 floor) on the DBDC metric. A run may instead fail
//     loudly (fail-stop) — what it may never do is return wrong labels
//     silently.
//  2. Zero silent corruption escapes: every injected bit flip is
//     accounted for — detected by a checksum, masked before any reader
//     saw it, or still latent in a file no output depended on. The
//     ledger injected == detected + masked + latent balances per site.
//  3. Bounded wall time: each run completes within RunTimeout.
//
// Every schedule derives deterministically from its seed: a replayed
// seed regenerates the same dataset and arms the identical fault plan.
// (Concurrent leaves may interleave operations differently between
// replays, so which exact operation a counter-triggered rule strikes
// can shift — the invariants hold either way.)
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/integrity"
	"repro/internal/lustre"
	"repro/internal/mrscan"
	"repro/internal/ptio"
	"repro/internal/quality"
	"repro/internal/telemetry"
)

// Options configures a chaos campaign.
type Options struct {
	// Seeds are the schedules to run, one pipeline campaign per seed.
	Seeds []int64
	// Points is the dataset size per run (default 6000).
	Points int
	// Leaves is the cluster-phase tree width (default 4).
	Leaves int
	// FaultRate in (0,1] scales how aggressively rules are armed
	// (default 0.6); each candidate fault kind joins the schedule with
	// probability proportional to it.
	FaultRate float64
	// RunTimeout bounds each pipeline run's wall time (default 2m);
	// exceeding it is a chaos failure, not a hang.
	RunTimeout time.Duration
	// QualityFloor is the minimum acceptable DBDC score versus the
	// fault-free reference labels (default 0.995, the paper's floor).
	QualityFloor float64
	// Logf, when set, receives per-run progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.Points <= 0 {
		o.Points = 6000
	}
	if o.Leaves <= 0 {
		o.Leaves = 4
	}
	if o.FaultRate <= 0 {
		o.FaultRate = 0.6
	}
	if o.RunTimeout <= 0 {
		o.RunTimeout = 2 * time.Minute
	}
	if o.QualityFloor <= 0 {
		o.QualityFloor = 0.995
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Outcome classifies one seeded run.
type Outcome string

const (
	// OutcomeOK: the run completed and its labels pass the quality gate.
	OutcomeOK Outcome = "ok"
	// OutcomeFaulted: the run failed loudly (fail-stop) — acceptable, as
	// long as the corruption ledger still balances.
	OutcomeFaulted Outcome = "faulted"
	// OutcomeFail: an invariant broke — silent escape, quality below the
	// floor, double-counted ledger, or timeout. Chaos campaigns must
	// report zero of these.
	OutcomeFail Outcome = "FAIL"
)

// SiteLedger is one injection site's corruption accounting.
type SiteLedger struct {
	Injected int64 `json:"injected"`
	Detected int64 `json:"detected"`
	Masked   int64 `json:"masked"`
	Latent   int64 `json:"latent,omitempty"`
}

// Escapes returns the site's unaccounted injections: positive means a
// silent escape, negative means double counting. Both are failures.
func (l SiteLedger) Escapes() int64 {
	return l.Injected - l.Detected - l.Masked - l.Latent
}

// RunReport is the result of one seeded schedule.
type RunReport struct {
	Seed    int64    `json:"seed"`
	Outcome Outcome  `json:"outcome"`
	Reason  string   `json:"reason,omitempty"`
	Spec    []string `json:"spec"`
	// Quality is the DBDC score versus the fault-free reference
	// (1.0 when identical); -1 when the run failed before producing
	// output.
	Quality   float64               `json:"quality"`
	Identical bool                  `json:"identical"`
	Resumed   bool                  `json:"resumed,omitempty"`
	Ledger    map[string]SiteLedger `json:"ledger"`
	Escapes   int64                 `json:"escapes"`
	Elapsed   time.Duration         `json:"elapsed_ns"`
	Err       string                `json:"err,omitempty"`
}

// Report aggregates a campaign.
type Report struct {
	Runs    []RunReport `json:"runs"`
	OK      int         `json:"ok"`
	Faulted int         `json:"faulted"`
	Failed  int         `json:"failed"`
}

// Seeds returns [base, base+n) for convenience.
func Seeds(base int64, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = base + int64(i)
	}
	return s
}

// ledgerSites are the checksummed planes whose corruption accounting
// the harness audits.
var ledgerSites = []faultinject.Site{
	faultinject.LustreRead,
	faultinject.LustreWrite,
	faultinject.GPUTransfer,
	faultinject.MRNetHop,
	faultinject.MRNetFrame,
}

// genSchedule arms a seeded random fault schedule on plan and reports
// it as human-readable strings. Corrupt and error rules are kept off
// the same mrnet.frame site so every TCP-frame flip is provably read by
// a live peer (the ledger check requires it).
func genSchedule(rng *rand.Rand, plan *faultinject.Plan, rate float64) (spec []string, hasFatal, tcpMerge bool) {
	note := func(format string, args ...any) { spec = append(spec, fmt.Sprintf(format, args...)) }
	pick := func(p float64) bool { return rng.Float64() < p*rate }

	// Silent corruption on the checksummed byte and transfer planes.
	if pick(0.9) {
		n := 1 + rng.Int63n(2)
		after := rng.Int63n(60)
		plan.Arm(faultinject.LustreRead, faultinject.Rule{Corrupt: true, Times: n, After: after})
		note("corrupt lustre.read times=%d after=%d", n, after)
	}
	if pick(0.9) {
		n := 1 + rng.Int63n(2)
		after := rng.Int63n(60)
		plan.Arm(faultinject.LustreWrite, faultinject.Rule{Corrupt: true, Times: n, After: after})
		note("corrupt lustre.write times=%d after=%d", n, after)
	}
	if pick(0.7) {
		n := 1 + rng.Int63n(2)
		after := rng.Int63n(20)
		plan.Arm(faultinject.GPUTransfer, faultinject.Rule{Corrupt: true, Times: n, After: after})
		note("corrupt gpusim.transfer times=%d after=%d", n, after)
	}
	if pick(0.7) {
		n := 1 + rng.Int63n(2)
		after := rng.Int63n(10)
		plan.Arm(faultinject.MRNetHop, faultinject.Rule{Corrupt: true, Times: n, After: after})
		note("corrupt mrnet.hop times=%d after=%d", n, after)
	}
	if pick(0.5) {
		tcpMerge = true
		n := 1 + rng.Int63n(3)
		after := rng.Int63n(6)
		plan.Arm(faultinject.MRNetFrame, faultinject.Rule{Corrupt: true, Times: n, After: after})
		note("corrupt mrnet.frame times=%d after=%d (merge over TCP)", n, after)
	}

	// Transient errors, healed by phase retry or overlay re-parenting.
	if pick(0.5) {
		after := rng.Int63n(40)
		plan.Arm(faultinject.LustreRead, faultinject.Rule{Times: 1, After: after})
		note("error lustre.read after=%d", after)
	}
	if pick(0.4) {
		after := rng.Int63n(10)
		plan.Arm(faultinject.MRNetHop, faultinject.Rule{Times: 1, After: after})
		note("error mrnet.hop after=%d", after)
	}
	if pick(0.4) {
		after := rng.Int63n(8)
		plan.Arm(faultinject.GPULaunch, faultinject.Rule{Times: 1, After: after})
		note("error gpusim.launch after=%d", after)
	}
	// Node kill: an internal tree node dies and its children re-parent.
	if pick(0.4) {
		after := rng.Int63n(4)
		plan.Arm(faultinject.MRNetNode, faultinject.Rule{Times: 1, After: after})
		note("kill mrnet.node after=%d", after)
	}
	// Straggler: a slow-but-correct I/O path.
	if pick(0.5) {
		n := 1 + rng.Int63n(2)
		d := time.Duration(1+rng.Int63n(8)) * time.Millisecond
		plan.Arm(faultinject.LustreRead, faultinject.Rule{Delay: d, Times: n, After: rng.Int63n(30)})
		note("straggle lustre.read delay=%v times=%d", d, n)
	}
	// Process death at a phase boundary; the campaign resumes from the
	// last durable checkpoint and must still produce correct labels.
	if pick(0.3) {
		hasFatal = true
		phase := []string{mrscan.PhaseCluster, mrscan.PhaseMerge}[rng.Intn(2)]
		plan.Arm(mrscan.PhaseSite(phase), faultinject.Rule{Fatal: true, Times: 1})
		note("fatal mrscan.phase.%s (then resume)", phase)
	}
	return spec, hasFatal, tcpMerge
}

// baseConfig is the pipeline configuration both the reference and the
// chaos run share.
func baseConfig(o Options) mrscan.Config {
	cfg := mrscan.Default(0.1, 20, o.Leaves)
	cfg.IncludeNoise = true
	return cfg
}

// reference runs the pipeline fault-free and returns its labels.
func reference(ctx context.Context, pts []geom.Point, o Options) ([]int, error) {
	fs := lustre.New(lustre.Titan(), nil)
	if err := ptio.WriteDataset(fs.Create("input.mrsc"), pts, false); err != nil {
		return nil, err
	}
	res, err := mrscan.RunContext(ctx, fs, "input.mrsc", "output.mrsl", baseConfig(o))
	if err != nil {
		return nil, fmt.Errorf("chaos: fault-free reference run failed: %w", err)
	}
	return mrscan.LabelsByID(fs, res.OutputFile, pts)
}

// RunSeed executes one seeded schedule and audits the invariants.
func RunSeed(seed int64, o Options) RunReport {
	o.setDefaults()
	start := time.Now()
	rep := RunReport{Seed: seed, Quality: -1, Ledger: map[string]SiteLedger{}}
	fail := func(format string, args ...any) RunReport {
		rep.Outcome = OutcomeFail
		rep.Reason = fmt.Sprintf(format, args...)
		rep.Elapsed = time.Since(start)
		return rep
	}

	pts := dataset.Twitter(o.Points, seed)
	refCtx, cancelRef := context.WithTimeout(context.Background(), o.RunTimeout)
	defer cancelRef()
	refLabels, err := reference(refCtx, pts, o)
	if err != nil {
		return fail("reference: %v", err)
	}

	rng := rand.New(rand.NewSource(seed))
	plan := faultinject.New(seed)
	spec, hasFatal, tcpMerge := genSchedule(rng, plan, o.FaultRate)
	rep.Spec = spec

	fs := lustre.New(lustre.Titan(), nil)
	if err := ptio.WriteDataset(fs.Create("input.mrsc"), pts, false); err != nil {
		return fail("writing input: %v", err)
	}
	hub := telemetry.New(fs.Clock())
	cfg := baseConfig(o)
	cfg.FaultPlan = plan
	cfg.Telemetry = hub
	cfg.Retry = mrscan.RetryPolicy{MaxAttempts: 3}
	cfg.MergeOverTCP = tcpMerge
	cfg.Checkpoint = hasFatal

	ctx, cancel := context.WithTimeout(context.Background(), o.RunTimeout)
	defer cancel()
	res, runErr := mrscan.RunContext(ctx, fs, "input.mrsc", "output.mrsl", cfg)
	if runErr != nil && hasFatal && faultinject.IsFatal(runErr) {
		// The scheduled process death struck; restart from the durable
		// checkpoints, exactly as an operator (or ALPS) would.
		rep.Resumed = true
		cfg.Resume = true
		resumeCtx, cancelResume := context.WithTimeout(context.Background(), o.RunTimeout)
		defer cancelResume()
		res, runErr = mrscan.RunContext(resumeCtx, fs, "input.mrsc", "output.mrsl", cfg)
	}
	rep.Elapsed = time.Since(start)

	// Invariant 2: the corruption ledger balances — no silent escapes,
	// no double counting — whether or not the run completed.
	audit := func() {
		rep.Ledger = map[string]SiteLedger{}
		rep.Escapes = 0
		report := fs.IntegrityReport()
		for _, site := range ledgerSites {
			l := SiteLedger{
				Injected: plan.CorruptionsInjected(site),
				Detected: hub.Counter(integrity.MetricDetected, "site", string(site)).Value(),
				Masked:   hub.Counter(integrity.MetricMasked, "site", string(site)).Value(),
			}
			if site == faultinject.LustreWrite {
				l.Latent = report.Latent
			}
			if l.Injected+l.Detected+l.Masked+l.Latent > 0 {
				rep.Ledger[string(site)] = l
			}
			rep.Escapes += l.Escapes()
		}
	}
	audit()
	if rep.Escapes != 0 {
		return fail("corruption ledger off by %d (ledger %+v)", rep.Escapes, rep.Ledger)
	}

	if runErr != nil {
		if errors.Is(runErr, context.DeadlineExceeded) {
			return fail("run exceeded %v wall bound: %v", o.RunTimeout, runErr)
		}
		// Fail-stop: the pipeline refused to produce output rather than
		// risk wrong labels. Acceptable — the ledger above balanced.
		rep.Outcome = OutcomeFaulted
		rep.Err = runErr.Error()
		return rep
	}

	// Invariant 1: output quality versus the fault-free reference.
	labels, err := mrscan.LabelsByID(fs, res.OutputFile, pts)
	if err != nil {
		if errors.Is(err, lustre.ErrCorruptData) {
			// Stored corruption struck the output file itself, and the
			// consumer's checksummed read — the last hop of the
			// end-to-end chain — caught it. A loud fail-stop: no wrong
			// labels reached anyone. The detection just retired a
			// latent taint, so refresh the ledger before returning.
			rep.Outcome = OutcomeFaulted
			rep.Err = err.Error()
			audit()
			if rep.Escapes != 0 {
				return fail("corruption ledger off by %d after output read (ledger %+v)", rep.Escapes, rep.Ledger)
			}
			return rep
		}
		return fail("reading output: %v", err)
	}
	q, err := quality.Score(refLabels, labels)
	if err != nil {
		return fail("scoring: %v", err)
	}
	rep.Quality = q
	rep.Identical = equalLabels(refLabels, labels)
	if !rep.Identical && q < o.QualityFloor {
		return fail("quality %.6f below floor %.4f", q, o.QualityFloor)
	}
	rep.Outcome = OutcomeOK
	return rep
}

func equalLabels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run executes the whole campaign sequentially (each run is itself
// concurrent across leaves) and aggregates the report.
func Run(o Options) *Report {
	o.setDefaults()
	rpt := &Report{}
	for _, seed := range o.Seeds {
		r := RunSeed(seed, o)
		rpt.Runs = append(rpt.Runs, r)
		switch r.Outcome {
		case OutcomeOK:
			rpt.OK++
		case OutcomeFaulted:
			rpt.Faulted++
		default:
			rpt.Failed++
		}
		o.Logf("chaos: seed %d: %s quality=%.6f escapes=%d elapsed=%v faults=%d [%s]",
			seed, r.Outcome, r.Quality, r.Escapes, r.Elapsed.Round(time.Millisecond),
			len(r.Spec), r.Reason)
	}
	return rpt
}
