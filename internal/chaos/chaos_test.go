package chaos

import (
	"testing"
	"time"
)

// A small campaign must finish with zero invariant failures: every run
// either produces reference-quality labels or fail-stops loudly, and
// the corruption ledger balances exactly.
func TestCampaignInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign skipped in -short mode")
	}
	opt := Options{
		Seeds:      Seeds(1, 4),
		Points:     2500,
		Leaves:     4,
		RunTimeout: time.Minute,
		Logf:       t.Logf,
	}
	rpt := Run(opt)
	if rpt.Failed != 0 {
		for _, r := range rpt.Runs {
			if r.Outcome == OutcomeFail {
				t.Errorf("seed %d: %s (spec %v)", r.Seed, r.Reason, r.Spec)
			}
		}
	}
	if rpt.OK == 0 {
		t.Error("campaign produced no clean runs — schedules may be too hot to be informative")
	}
	for _, r := range rpt.Runs {
		if r.Escapes != 0 {
			t.Errorf("seed %d: %d silent corruption escapes", r.Seed, r.Escapes)
		}
	}
}

// The schedule generator is a pure function of the seed.
func TestScheduleDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs skipped in -short mode")
	}
	opt := Options{Points: 2000, Leaves: 2, RunTimeout: time.Minute}
	a := RunSeed(7, opt)
	b := RunSeed(7, opt)
	if len(a.Spec) != len(b.Spec) {
		t.Fatalf("replay armed a different schedule: %v vs %v", a.Spec, b.Spec)
	}
	for i := range a.Spec {
		if a.Spec[i] != b.Spec[i] {
			t.Fatalf("replay spec[%d] = %q, want %q", i, b.Spec[i], a.Spec[i])
		}
	}
	if a.Escapes != 0 || b.Escapes != 0 {
		t.Fatalf("escapes: %d and %d, want 0", a.Escapes, b.Escapes)
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(10, 3)
	if len(s) != 3 || s[0] != 10 || s[2] != 12 {
		t.Fatalf("Seeds(10,3) = %v", s)
	}
}
