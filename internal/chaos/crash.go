package chaos

// Crash-point recovery harness. Where the fault campaign (chaos.go)
// injects corruption and process death into a *running* pipeline, this
// harness simulates power failure underneath the durable-state writers
// and audits the sync-ordering discipline, ALICE-style:
//
//  1. Enumerate: a fault-free probe run with the crash simulator
//     enabled (but never armed) measures the op space — every
//     durability-relevant file-system operation gets a sequence number.
//  2. Crash: for each sampled sequence number, a fresh run is armed to
//     lose power exactly there. Unsynced writes are dropped, reordered
//     and torn; unsynced creates and renames survive only as a seeded
//     per-directory prefix (see lustre.Recover).
//  3. Audit: the process restarts on the surviving state and must
//     uphold the acknowledgment invariants — nothing that was
//     acknowledged durable before the crash may be lost, recovery must
//     be idempotent (a crash during recovery, recovered again, changes
//     nothing), and the final output must equal the fault-free
//     reference exactly or fail loudly. Silent corruption is never
//     acceptable.
//
// Two writers are exercised: the pipeline's checkpoint path (a phase
// whose snapshot Save returned is acknowledged and must be restored,
// not recomputed) and the job server's write-ahead journal (a job whose
// Submit returned is acknowledged and must be journaled terminal or
// re-admitted after restart).
//
// The mutation hooks DropSyncs/DropDirSyncs turn selected fsyncs into
// lies — they succeed, cost and log like a real sync but persist
// nothing. A harness that stays green under a lying fsync proves
// nothing; tests arm the hooks and require the campaign to FAIL.

import (
	"context"
	"fmt"
	"math/rand"
	"path"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/lustre"
	"repro/internal/mrscan"
	"repro/internal/ptio"
	"repro/internal/server"
)

// CrashOptions configures a crash-point campaign.
type CrashOptions struct {
	// Seeds are the campaigns to run, one op-space enumeration per seed.
	Seeds []int64
	// Points is the pipeline dataset size per run (default 2000).
	Points int
	// Leaves is the cluster-phase tree width (default 4).
	Leaves int
	// CrashPoints is how many pipeline crash points are sampled per seed
	// (default 20; <0 skips the pipeline leg).
	CrashPoints int
	// JournalCrashPoints is how many job-server journal crash points are
	// sampled per seed (default 4; <0 skips the journal leg).
	JournalCrashPoints int
	// JournalJobs is the submit burst size of the journal workload
	// (default 3).
	JournalJobs int
	// RecoveryCrashEvery makes every Nth crash point a double crash: a
	// second power failure is armed during the recovery itself, and the
	// second recovery must leave the same end state (default 3).
	RecoveryCrashEvery int
	// RunTimeout bounds each pipeline run or job wait (default 2m).
	RunTimeout time.Duration

	// DropSyncs is a path.Match pattern; file fsyncs on matching names
	// silently lie (succeed but persist nothing). A mutation hook: the
	// campaign must FAIL under it, proving the harness detects a missing
	// fsync.
	DropSyncs string
	// DropDirSyncs makes every directory sync lie. Mutation hook.
	DropDirSyncs bool

	// Logf, when set, receives per-crash-point progress lines.
	Logf func(format string, args ...any)
}

func (o *CrashOptions) setDefaults() {
	if o.Points <= 0 {
		o.Points = 2000
	}
	if o.Leaves <= 0 {
		o.Leaves = 4
	}
	if o.CrashPoints == 0 {
		o.CrashPoints = 20
	}
	if o.JournalCrashPoints == 0 {
		o.JournalCrashPoints = 4
	}
	if o.JournalJobs <= 0 {
		o.JournalJobs = 3
	}
	if o.RecoveryCrashEvery <= 0 {
		o.RecoveryCrashEvery = 3
	}
	if o.RunTimeout <= 0 {
		o.RunTimeout = 2 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// syncFilter builds the lying-fsync filter from the mutation hooks; nil
// when no mutation is armed.
func (o CrashOptions) syncFilter() func(kind lustre.OpKind, name string) bool {
	if o.DropSyncs == "" && !o.DropDirSyncs {
		return nil
	}
	return func(kind lustre.OpKind, name string) bool {
		if o.DropDirSyncs && kind == lustre.OpSyncDir {
			return false
		}
		if o.DropSyncs != "" && kind == lustre.OpSync {
			if ok, _ := path.Match(o.DropSyncs, name); ok {
				return false
			}
		}
		return true
	}
}

// CrashPointReport is the audit of one pipeline crash point.
type CrashPointReport struct {
	// Seq is the op sequence number the crash was armed at.
	Seq int64 `json:"seq"`
	// DoubleCrash marks a point where a second power failure was armed
	// during the recovery run.
	DoubleCrash bool `json:"double_crash,omitempty"`
	// CompletedBeforeCrash marks a run that finished before its armed
	// point was reached (op interleavings shift between runs); the
	// durable output is still audited against the reference.
	CompletedBeforeCrash bool `json:"completed_before_crash,omitempty"`
	// AckedPhases are the phases whose checkpoint Save returned before
	// the crash — the acknowledgment set the recovery must honour.
	AckedPhases []string `json:"acked_phases,omitempty"`
	// RestoredPhases is what the post-crash resume actually restored.
	RestoredPhases []string `json:"restored_phases,omitempty"`
	Outcome        Outcome  `json:"outcome"`
	Reason         string   `json:"reason,omitempty"`
}

// JournalCrashReport is the audit of one job-server journal crash point.
type JournalCrashReport struct {
	Seq         int64 `json:"seq"`
	DoubleCrash bool  `json:"double_crash,omitempty"`
	// AckedJobs is how many Submit calls returned an ID before the
	// crash; every one of them must survive it.
	AckedJobs int `json:"acked_jobs"`
	// TornTail records that replay found (and repaired) a torn final
	// journal record — expected wreckage, not a failure.
	TornTail bool    `json:"torn_tail,omitempty"`
	Outcome  Outcome `json:"outcome"`
	Reason   string  `json:"reason,omitempty"`
}

// CrashRunReport aggregates one seed's crash points.
type CrashRunReport struct {
	Seed    int64   `json:"seed"`
	Outcome Outcome `json:"outcome"`
	Reason  string  `json:"reason,omitempty"`
	// PipelineOps / JournalOps are the op-space sizes the probe runs
	// measured; crash points are sampled from [2, ops].
	PipelineOps int64                `json:"pipeline_ops,omitempty"`
	JournalOps  int64                `json:"journal_ops,omitempty"`
	Points      []CrashPointReport   `json:"points,omitempty"`
	Journal     []JournalCrashReport `json:"journal,omitempty"`
	Elapsed     time.Duration        `json:"elapsed_ns"`
}

// CrashCampaignReport aggregates a campaign.
type CrashCampaignReport struct {
	Runs []CrashRunReport `json:"runs"`
	// CrashPoints is the total number of crash points exercised.
	CrashPoints int `json:"crash_points"`
	OK          int `json:"ok"`
	Failed      int `json:"failed"`
}

// RunCrash executes a crash-point campaign over all seeds.
func RunCrash(o CrashOptions) CrashCampaignReport {
	o.setDefaults()
	var rep CrashCampaignReport
	for _, seed := range o.Seeds {
		r := RunCrashSeed(seed, o)
		rep.Runs = append(rep.Runs, r)
		rep.CrashPoints += len(r.Points) + len(r.Journal)
		if r.Outcome == OutcomeFail {
			rep.Failed++
		} else {
			rep.OK++
		}
	}
	return rep
}

// ckptPhases are the checkpointable phases, in pipeline order. The
// sweep is not snapshotted (its artifact is the output file itself), so
// it is never part of the acknowledgment set.
var ckptPhases = []string{mrscan.PhasePartition, mrscan.PhaseCluster, mrscan.PhaseMerge}

// RunCrashSeed enumerates one seed's op spaces and audits every sampled
// crash point in both legs.
func RunCrashSeed(seed int64, o CrashOptions) CrashRunReport {
	o.setDefaults()
	start := time.Now()
	rep := CrashRunReport{Seed: seed, Outcome: OutcomeOK}
	fail := func(format string, args ...any) CrashRunReport {
		rep.Outcome = OutcomeFail
		rep.Reason = fmt.Sprintf(format, args...)
		rep.Elapsed = time.Since(start)
		return rep
	}
	note := func(outcome Outcome, reason string) {
		if outcome == OutcomeFail && rep.Outcome != OutcomeFail {
			rep.Outcome = OutcomeFail
			rep.Reason = reason
		}
	}

	if o.CrashPoints > 0 {
		pts := dataset.Twitter(o.Points, seed)
		base := Options{Points: o.Points, Leaves: o.Leaves, RunTimeout: o.RunTimeout}
		base.setDefaults()
		refCtx, cancelRef := context.WithTimeout(context.Background(), o.RunTimeout)
		refLabels, err := reference(refCtx, pts, base)
		cancelRef()
		if err != nil {
			return fail("reference: %v", err)
		}

		// Probe: the same checkpointed run, crash sim counting ops but
		// never armed, to measure the op space.
		probeFS, err := newCrashFS(pts, seed)
		if err != nil {
			return fail("probe: %v", err)
		}
		probeCtx, cancelProbe := context.WithTimeout(context.Background(), o.RunTimeout)
		_, err = mrscan.RunContext(probeCtx, probeFS, "input.mrsc", "output.mrsl", crashPipelineCfg(o))
		cancelProbe()
		if err != nil {
			return fail("probe run: %v", err)
		}
		rep.PipelineOps = probeFS.OpCount()
		if rep.PipelineOps < 2 {
			return fail("probe run recorded only %d durability ops", rep.PipelineOps)
		}

		rng := rand.New(rand.NewSource(seed*0x9e3779b9 + 1))
		for i, k := range sampleSeqs(rng, 2, rep.PipelineOps, o.CrashPoints) {
			pr := runPipelineCrashPoint(seed, k, (i+1)%o.RecoveryCrashEvery == 0, pts, refLabels, o)
			rep.Points = append(rep.Points, pr)
			note(pr.Outcome, fmt.Sprintf("pipeline crash@%d: %s", pr.Seq, pr.Reason))
			o.Logf("chaos crash: seed %d pipeline crash@%d: %s", seed, k, pr.Outcome)
		}
	}

	if o.JournalCrashPoints > 0 {
		jops, err := journalProbe(seed, o)
		if err != nil {
			return fail("journal probe: %v", err)
		}
		rep.JournalOps = jops
		jrng := rand.New(rand.NewSource(seed*0x9e3779b9 + 2))
		for i, k := range sampleSeqs(jrng, 2, jops, o.JournalCrashPoints) {
			jr := runJournalCrashPoint(seed, k, (i+1)%o.RecoveryCrashEvery == 0, o)
			rep.Journal = append(rep.Journal, jr)
			note(jr.Outcome, fmt.Sprintf("journal crash@%d: %s", jr.Seq, jr.Reason))
			o.Logf("chaos crash: seed %d journal crash@%d: %s", seed, k, jr.Outcome)
		}
	}

	rep.Elapsed = time.Since(start)
	return rep
}

// newCrashFS provisions a file system with the input dataset already on
// stable storage (written before the simulator is enabled, so the
// baseline is durable and the op space covers only the run itself).
func newCrashFS(pts []geom.Point, simSeed int64) (*lustre.FS, error) {
	fs := lustre.New(lustre.Titan(), nil)
	if err := ptio.WriteDataset(fs.Create("input.mrsc"), pts, false); err != nil {
		return nil, err
	}
	fs.EnableCrashSim(simSeed)
	return fs, nil
}

func crashPipelineCfg(o CrashOptions) mrscan.Config {
	cfg := mrscan.Default(0.1, 20, o.Leaves)
	cfg.IncludeNoise = true
	cfg.Checkpoint = true
	return cfg
}

// sampleSeqs samples up to n distinct sequence numbers from [lo, hi],
// sorted ascending.
func sampleSeqs(rng *rand.Rand, lo, hi int64, n int) []int64 {
	if hi < lo {
		return nil
	}
	seen := make(map[int64]bool)
	var out []int64
	for i := 0; i < 4*n && len(out) < n; i++ {
		k := lo + rng.Int63n(hi-lo+1)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// runPipelineCrashPoint loses power at op k of a checkpointed pipeline
// run, recovers, and audits: acknowledged phase checkpoints restore
// instead of recomputing, the resumed labels equal the fault-free
// reference exactly, and (for double-crash points) a second power
// failure during the recovery changes nothing.
func runPipelineCrashPoint(seed, k int64, doubleCrash bool, pts []geom.Point, refLabels []int, o CrashOptions) CrashPointReport {
	pr := CrashPointReport{Seq: k, DoubleCrash: doubleCrash, Outcome: OutcomeOK}
	fail := func(format string, args ...any) CrashPointReport {
		pr.Outcome = OutcomeFail
		pr.Reason = fmt.Sprintf(format, args...)
		return pr
	}

	simSeed := seed*1_000_003 + k
	fs, err := newCrashFS(pts, simSeed)
	if err != nil {
		return fail("staging input: %v", err)
	}
	if f := o.syncFilter(); f != nil {
		fs.SetSyncFilter(f)
	}
	fs.ArmCrash(k)

	// acked accumulates, across every crashed attempt, the phases whose
	// checkpoint Save returned — the durably-acknowledged set.
	acked := make(map[string]bool)
	noteAcked := func(r *mrscan.Result) {
		if r == nil {
			return
		}
		for _, p := range r.CompletedPhases {
			for _, cp := range ckptPhases {
				if p == cp {
					acked[p] = true
				}
			}
		}
	}
	ackedList := func() []string {
		var out []string
		for _, p := range ckptPhases {
			if acked[p] {
				out = append(out, p)
			}
		}
		return out
	}

	cfg := crashPipelineCfg(o)
	ctx, cancel := context.WithTimeout(context.Background(), o.RunTimeout)
	res, runErr := mrscan.RunContext(ctx, fs, "input.mrsc", "output.mrsl", cfg)
	cancel()
	noteAcked(res)

	if runErr == nil {
		// The run finished before its armed point was reached (op
		// interleavings shift between runs). Power-fail now: the sweep
		// synced the output before acknowledging, so the durable image
		// must still carry the exact reference labels.
		pr.CompletedBeforeCrash = true
		fs.CrashNow()
		if _, err := fs.Recover(); err != nil {
			return fail("recover: %v", err)
		}
		labels, err := mrscan.LabelsByID(fs, res.OutputFile, pts)
		if err != nil {
			return fail("completed run lost its synced output: %v", err)
		}
		if !equalLabels(labels, refLabels) {
			return fail("completed run's durable output differs from the reference")
		}
		pr.AckedPhases = ackedList()
		return pr
	}
	if !fs.Crashed() {
		return fail("run failed without a crash: %v", runErr)
	}
	if _, err := fs.Recover(); err != nil {
		return fail("recover: %v", err)
	}

	resumeCfg := cfg
	resumeCfg.Resume = true

	if doubleCrash {
		// Idempotence: lose power again during the recovery run itself,
		// recover a second time, and require the final resume to uphold
		// the same invariants.
		rng := rand.New(rand.NewSource(simSeed ^ 0x7e57))
		fs.ArmCrash(fs.OpCount() + 1 + rng.Int63n(32))
		ctx2, cancel2 := context.WithTimeout(context.Background(), o.RunTimeout)
		res2, err2 := mrscan.RunContext(ctx2, fs, "input.mrsc", "output.mrsl", resumeCfg)
		cancel2()
		noteAcked(res2)
		if err2 != nil && !fs.Crashed() {
			return fail("recovery run failed without a crash: %v", err2)
		}
		if !fs.Crashed() {
			// The recovery outran the second armed point; power-fail now.
			fs.CrashNow()
		}
		if _, err := fs.Recover(); err != nil {
			return fail("second recover: %v", err)
		}
	}

	ctx3, cancel3 := context.WithTimeout(context.Background(), o.RunTimeout)
	res3, err3 := mrscan.RunContext(ctx3, fs, "input.mrsc", "output.mrsl", resumeCfg)
	cancel3()
	if err3 != nil {
		return fail("resume after recovery failed: %v", err3)
	}
	labels, err := mrscan.LabelsByID(fs, res3.OutputFile, pts)
	if err != nil {
		return fail("reading resumed output: %v", err)
	}
	if !equalLabels(labels, refLabels) {
		return fail("resumed labels differ from the fault-free reference")
	}
	pr.AckedPhases = ackedList()
	pr.RestoredPhases = res3.RestoredPhases
	restored := make(map[string]bool, len(res3.RestoredPhases))
	for _, p := range res3.RestoredPhases {
		restored[p] = true
	}
	for _, p := range ackedList() {
		if !restored[p] {
			return fail("acknowledged %s checkpoint was lost: the resume re-executed it", p)
		}
	}
	return pr
}

// Journal leg: the job server's write-ahead journal under power
// failure. The server's job pipelines run on private file systems; only
// the journal writes go through the crash-simulated one, so the op
// space covers exactly the durability path Submit acknowledges through.

func journalServerConfig(jfs server.JournalFS) server.Config {
	return server.Config{
		Workers:   2,
		StateDir:  "state",
		JournalFS: jfs,
	}
}

func journalWorkload(seed int64, o CrashOptions) []server.JobSpec {
	specs := make([]server.JobSpec, o.JournalJobs)
	for i := range specs {
		specs[i] = server.JobSpec{
			Tenant: "crash",
			Points: dataset.Twitter(300, seed+31*int64(i)),
			Eps:    0.1, MinPts: 10, Leaves: 2,
		}
	}
	return specs
}

// journalProbe runs the journal workload to completion with the crash
// sim counting (never armed) and returns the op-space size.
func journalProbe(seed int64, o CrashOptions) (int64, error) {
	sfs := lustre.New(lustre.Titan(), nil)
	sfs.EnableCrashSim(seed)
	srv, err := server.New(journalServerConfig(server.LustreJournalFS(sfs)))
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	var ids []string
	for _, spec := range journalWorkload(seed, o) {
		id, err := srv.Submit(spec)
		if err != nil {
			return 0, err
		}
		ids = append(ids, id)
	}
	if err := waitTerminal(srv, ids, o.RunTimeout); err != nil {
		return 0, err
	}
	return sfs.OpCount(), nil
}

// waitTerminal polls until every job is in a terminal state.
func waitTerminal(srv *server.Server, ids []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		pending := ""
		for _, id := range ids {
			st, err := srv.Status(id)
			if err != nil {
				return fmt.Errorf("job %s: %w", id, err)
			}
			if !st.State.Terminal() {
				pending = id
				break
			}
		}
		if pending == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s not terminal after %v", pending, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitTerminalSettled is waitTerminal without the error: after a crash
// the in-memory jobs still settle (their pipelines run on private file
// systems), we just give them the chance to before auditing.
func waitTerminalSettled(srv *server.Server, ids []string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		done := true
		for _, id := range ids {
			st, err := srv.Status(id)
			if err != nil || !st.State.Terminal() {
				done = false
				break
			}
		}
		if done {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runJournalCrashPoint loses power at journal op k during a submit
// burst and audits the acknowledgment invariant: every job whose Submit
// returned an ID has a durable journal record, and after restart it is
// journaled terminal or re-admitted and driven to termination. Interior
// journal corruption is never acceptable; a torn tail is repaired and
// counted.
func runJournalCrashPoint(seed, k int64, doubleCrash bool, o CrashOptions) JournalCrashReport {
	jr := JournalCrashReport{Seq: k, DoubleCrash: doubleCrash, Outcome: OutcomeOK}
	fail := func(format string, args ...any) JournalCrashReport {
		jr.Outcome = OutcomeFail
		jr.Reason = fmt.Sprintf(format, args...)
		return jr
	}

	sfs := lustre.New(lustre.Titan(), nil)
	sfs.EnableCrashSim(seed*1_000_003 + k)
	if f := o.syncFilter(); f != nil {
		sfs.SetSyncFilter(f)
	}
	jfs := server.LustreJournalFS(sfs)
	srv, err := server.New(journalServerConfig(jfs))
	if err != nil {
		return fail("starting server: %v", err)
	}
	sfs.ArmCrash(k)

	var acked []string
	for _, spec := range journalWorkload(seed, o) {
		if id, err := srv.Submit(spec); err == nil {
			acked = append(acked, id)
		}
	}
	jr.AckedJobs = len(acked)
	waitTerminalSettled(srv, acked, o.RunTimeout)
	srv.Close()
	if !sfs.Crashed() {
		sfs.CrashNow()
	}
	if _, err := sfs.Recover(); err != nil {
		return fail("recover: %v", err)
	}

	// Audit 1: every acknowledged job has a durable journal record —
	// Submit fsynced the queued record before returning the ID.
	states, torn, err := server.JournalStates(jfs, "state")
	if err != nil {
		return fail("journal replay: %v", err)
	}
	jr.TornTail = torn
	for _, id := range acked {
		if _, ok := states[id]; !ok {
			return fail("acknowledged job %s has no durable journal record", id)
		}
	}

	if doubleCrash {
		// Idempotence: lose power again during the restart's journal
		// replay (which may be mid torn-tail repair), recover, and
		// require the next restart to proceed as if the first crash
		// never happened twice.
		rng := rand.New(rand.NewSource(seed ^ (k << 8)))
		sfs.ArmCrash(sfs.OpCount() + 1 + rng.Int63n(8))
		srv2, err := server.New(journalServerConfig(jfs))
		if err == nil {
			// Recovery outran the armed point; power-fail underneath the
			// running server instead.
			srv2.Close()
		} else if !sfs.Crashed() {
			return fail("restart failed without a crash: %v", err)
		}
		if !sfs.Crashed() {
			sfs.CrashNow()
		}
		if _, err := sfs.Recover(); err != nil {
			return fail("second recover: %v", err)
		}
	}

	// Audit 2: a server restarted on the surviving state re-admits every
	// acknowledged non-terminal job and drives it to termination.
	srv3, err := server.New(journalServerConfig(jfs))
	if err != nil {
		return fail("restart on recovered state: %v", err)
	}
	defer srv3.Close()
	states, _, err = server.JournalStates(jfs, "state")
	if err != nil {
		return fail("journal replay after restart: %v", err)
	}
	var pending []string
	for _, id := range acked {
		st, ok := states[id]
		if !ok {
			return fail("acknowledged job %s lost its journal record across recovery", id)
		}
		if st == server.StateCompleted || st == server.StateFailed {
			continue
		}
		if _, err := srv3.Status(id); err != nil {
			return fail("acknowledged job %s (journaled %q) not re-admitted after restart", id, st)
		}
		pending = append(pending, id)
	}
	if err := waitTerminal(srv3, pending, o.RunTimeout); err != nil {
		return fail("re-admitted jobs did not terminate: %v", err)
	}
	return jr
}
