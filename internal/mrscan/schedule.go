package mrscan

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Work-stealing leaf scheduler for the cluster phase.
//
// "The time of the cluster phase is dictated by the slowest node" (§5):
// the phase ends when its largest partition finishes, so the largest
// partition must start first. A naive fan-out (one goroutine per leaf,
// mrnet.LeafRun) gets the ordering right only by luck and gives every
// leaf its own simulated device — the wrong shape when leaves share a
// bounded pool of GPGPU nodes. This scheduler runs leaves on a fixed
// worker pool: leaves are sorted largest-first and dealt round-robin
// into per-worker deques; a worker drains its own deque from the front
// and, when empty, steals from the back of the most-loaded victim (the
// victim's back holds its smallest remaining leaves, so steals poach
// cheap work and leave the owner its expensive head-of-queue items).
//
// The worker index is exposed to the leaf function so per-worker state
// (a simulated device and a gdbscan.Workspace) can be reused across all
// leaves a worker processes — the device's buffer pool and the
// workspace's arrays then amortize across the worker's whole share of
// the phase.

// schedQueue is one worker's deque of leaf indices.
type schedQueue struct {
	mu     sync.Mutex
	leaves []int
}

// popFront takes the owner's first admitted (largest remaining ready)
// leaf. admit == nil admits everything, so the front is taken.
func (q *schedQueue) popFront(admit func(int) bool) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, leaf := range q.leaves {
		if admit == nil || admit(leaf) {
			q.leaves = append(q.leaves[:i], q.leaves[i+1:]...)
			return leaf, true
		}
	}
	return 0, false
}

// stealBack takes a victim's last admitted (smallest remaining ready)
// leaf.
func (q *schedQueue) stealBack(admit func(int) bool) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := len(q.leaves) - 1; i >= 0; i-- {
		leaf := q.leaves[i]
		if admit == nil || admit(leaf) {
			q.leaves = append(q.leaves[:i], q.leaves[i+1:]...)
			return leaf, true
		}
	}
	return 0, false
}

func (q *schedQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.leaves)
}

// runLeavesScheduled executes fn(worker, leaf) for every leaf in
// [0, nLeaves) on a pool of `workers` goroutines, scheduling leaves
// largest-first by sizes[leaf] (len(sizes) must be nLeaves; a nil sizes
// keeps index order). Results are returned indexed by leaf. The first
// error cancels the remaining leaves; ctx cancellation is honored
// between leaves.
func runLeavesScheduled[T any](ctx context.Context, nLeaves, workers int, sizes []int64, fn func(worker, leaf int) (T, error)) ([]T, error) {
	return runLeavesGated(ctx, nLeaves, workers, sizes, nil, fn)
}

// runLeavesGated is runLeavesScheduled with an optional partitionGate:
// a worker only takes leaf j once gate reports partition j ready, so the
// cluster phase can start on durable partitions while the partition
// phase is still writing later ones. Workers with no admitted leaf block
// on the gate's change channel (grabbed before scanning, so no readiness
// transition is missed) rather than spinning; a poisoned gate aborts the
// run with the partition phase's error. gate == nil degenerates to the
// ungated scheduler.
func runLeavesGated[T any](ctx context.Context, nLeaves, workers int, sizes []int64, gate *partitionGate, fn func(worker, leaf int) (T, error)) ([]T, error) {
	if workers <= 0 || workers > nLeaves {
		workers = nLeaves
	}
	if workers <= 0 {
		return []T{}, nil
	}
	order := make([]int, nLeaves)
	for i := range order {
		order[i] = i
	}
	if sizes != nil {
		if len(sizes) != nLeaves {
			return nil, fmt.Errorf("mrscan: scheduler got %d sizes for %d leaves", len(sizes), nLeaves)
		}
		sort.SliceStable(order, func(a, b int) bool {
			return sizes[order[a]] > sizes[order[b]]
		})
	}
	// Deal largest-first round-robin: worker w's deque is itself sorted
	// descending, so popFront always runs the worker's largest remaining
	// leaf and stealBack poaches the victim's smallest.
	queues := make([]*schedQueue, workers)
	for w := range queues {
		queues[w] = &schedQueue{}
	}
	for i, leaf := range order {
		w := i % workers
		queues[w].leaves = append(queues[w].leaves, leaf)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]T, nLeaves)
	var (
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}

	var admit func(int) bool
	if gate != nil {
		admit = gate.isReady
	}
	// drained closes when the last leaf finishes, waking workers that
	// blocked on the gate with no admissible work left for them.
	drained := make(chan struct{})
	var outstanding atomic.Int64
	outstanding.Store(int64(nLeaves))

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if err := runCtx.Err(); err != nil {
					return
				}
				if gate != nil {
					if err := gate.failure(); err != nil {
						setErr(err)
						return
					}
				}
				// Grab the gate's change channel before scanning: a
				// partition turning ready after the scan then closes this
				// very channel, so the select below cannot miss it.
				var changed <-chan struct{}
				if gate != nil {
					changed = gate.changed()
				}
				leaf, ok := queues[w].popFront(admit)
				if !ok {
					// Own deque has no admitted leaf: steal from victims,
					// most-loaded first.
					type victim struct{ v, n int }
					var victims []victim
					for v, q := range queues {
						if v == w {
							continue
						}
						if n := q.size(); n > 0 {
							victims = append(victims, victim{v, n})
						}
					}
					sort.Slice(victims, func(a, b int) bool { return victims[a].n > victims[b].n })
					for _, c := range victims {
						if leaf, ok = queues[c.v].stealBack(admit); ok {
							break
						}
					}
					if !ok {
						if len(victims) == 0 && queues[w].size() == 0 {
							return // no work anywhere
						}
						// Work exists but none is admitted yet (or a steal
						// raced): wait for the gate to change, the pool to
						// drain, or the run to end.
						select {
						case <-changed:
						case <-drained:
						case <-runCtx.Done():
						}
						continue
					}
				}
				out, err := fn(w, leaf)
				if err != nil {
					setErr(fmt.Errorf("mrscan: leaf %d: %w", leaf, err))
					return
				}
				results[leaf] = out
				if outstanding.Add(-1) == 0 {
					close(drained)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mrscan: cluster scheduling aborted: %w", err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
