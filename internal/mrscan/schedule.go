package mrscan

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Work-stealing leaf scheduler for the cluster phase.
//
// "The time of the cluster phase is dictated by the slowest node" (§5):
// the phase ends when its largest partition finishes, so the largest
// partition must start first. A naive fan-out (one goroutine per leaf,
// mrnet.LeafRun) gets the ordering right only by luck and gives every
// leaf its own simulated device — the wrong shape when leaves share a
// bounded pool of GPGPU nodes. This scheduler runs leaves on a fixed
// worker pool: leaves are sorted largest-first and dealt round-robin
// into per-worker deques; a worker drains its own deque from the front
// and, when empty, steals from the back of the most-loaded victim (the
// victim's back holds its smallest remaining leaves, so steals poach
// cheap work and leave the owner its expensive head-of-queue items).
//
// The worker index is exposed to the leaf function so per-worker state
// (a simulated device and a gdbscan.Workspace) can be reused across all
// leaves a worker processes — the device's buffer pool and the
// workspace's arrays then amortize across the worker's whole share of
// the phase.

// schedQueue is one worker's deque of leaf indices.
type schedQueue struct {
	mu     sync.Mutex
	leaves []int
}

// popFront takes the owner's next (largest remaining) leaf.
func (q *schedQueue) popFront() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.leaves) == 0 {
		return 0, false
	}
	leaf := q.leaves[0]
	q.leaves = q.leaves[1:]
	return leaf, true
}

// stealBack takes a victim's last (smallest remaining) leaf.
func (q *schedQueue) stealBack() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.leaves) == 0 {
		return 0, false
	}
	leaf := q.leaves[len(q.leaves)-1]
	q.leaves = q.leaves[:len(q.leaves)-1]
	return leaf, true
}

func (q *schedQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.leaves)
}

// runLeavesScheduled executes fn(worker, leaf) for every leaf in
// [0, nLeaves) on a pool of `workers` goroutines, scheduling leaves
// largest-first by sizes[leaf] (len(sizes) must be nLeaves; a nil sizes
// keeps index order). Results are returned indexed by leaf. The first
// error cancels the remaining leaves; ctx cancellation is honored
// between leaves.
func runLeavesScheduled[T any](ctx context.Context, nLeaves, workers int, sizes []int64, fn func(worker, leaf int) (T, error)) ([]T, error) {
	if workers <= 0 || workers > nLeaves {
		workers = nLeaves
	}
	if workers <= 0 {
		return []T{}, nil
	}
	order := make([]int, nLeaves)
	for i := range order {
		order[i] = i
	}
	if sizes != nil {
		if len(sizes) != nLeaves {
			return nil, fmt.Errorf("mrscan: scheduler got %d sizes for %d leaves", len(sizes), nLeaves)
		}
		sort.SliceStable(order, func(a, b int) bool {
			return sizes[order[a]] > sizes[order[b]]
		})
	}
	// Deal largest-first round-robin: worker w's deque is itself sorted
	// descending, so popFront always runs the worker's largest remaining
	// leaf and stealBack poaches the victim's smallest.
	queues := make([]*schedQueue, workers)
	for w := range queues {
		queues[w] = &schedQueue{}
	}
	for i, leaf := range order {
		w := i % workers
		queues[w].leaves = append(queues[w].leaves, leaf)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]T, nLeaves)
	var (
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if err := runCtx.Err(); err != nil {
					return
				}
				leaf, ok := queues[w].popFront()
				if !ok {
					// Own deque empty: steal from the most-loaded victim.
					victim, most := -1, 0
					for v, q := range queues {
						if v == w {
							continue
						}
						if n := q.size(); n > most {
							victim, most = v, n
						}
					}
					if victim < 0 {
						return // no work anywhere
					}
					if leaf, ok = queues[victim].stealBack(); !ok {
						continue // raced with the owner; rescan
					}
				}
				out, err := fn(w, leaf)
				if err != nil {
					setErr(fmt.Errorf("mrscan: leaf %d: %w", leaf, err))
					return
				}
				results[leaf] = out
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mrscan: cluster scheduling aborted: %w", err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
