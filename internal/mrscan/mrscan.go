// Package mrscan is the end-to-end Mr. Scan pipeline (paper §3): a
// parallel DBSCAN with four phases — partition, cluster, merge, sweep —
// run over MRNet-style process trees with a simulated GPGPU per leaf.
//
// Run starts from a single input file on the (simulated) parallel file
// system and produces a file of clustered points with global cluster IDs,
// exactly the paper's contract, with a per-phase time breakdown matching
// the units of Figures 8–10.
package mrscan

import (
	"fmt"
	"time"

	"repro/internal/dbscan"
	"repro/internal/faultinject"
	"repro/internal/gdbscan"
	"repro/internal/geom"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/lustre"
	"repro/internal/merge"
	"repro/internal/mrnet"
	"repro/internal/partition"
	"repro/internal/ptio"
	"repro/internal/simclock"
	"repro/internal/sweep"
)

// Config configures a full Mr. Scan run.
type Config struct {
	// Eps and MinPts are the DBSCAN parameters.
	Eps    float64
	MinPts int

	// Leaves is the number of cluster-phase leaf processes (one GPGPU
	// each). PartitionLeaves is the size of the partitioner's separate
	// process network (Table 1's fourth column); it defaults to
	// max(1, Leaves/16), roughly the paper's ratio.
	Leaves          int
	PartitionLeaves int
	// Fanout is the tree fanout (default 256, the paper's topology).
	Fanout int
	// Topology optionally pins the cluster tree to an explicit
	// MRNet-style fanout-product spec (e.g. "2x16" = root → 2 internal →
	// 16 leaves each). Its leaf product must equal Leaves. Empty uses
	// the balanced Fanout tree.
	Topology string

	// DenseBox enables the §3.2.3 optimization (default on via Default).
	DenseBox bool
	// ShadowReps enables the partitioner's representative-shadow
	// optimization (§3.1.3).
	ShadowReps bool
	// Rebalance enables the partition rebalancing pass (§3.1.2).
	Rebalance bool
	// IncludeNoise writes noise points (cluster -1) to the output.
	IncludeNoise bool
	// HasWeight selects the record format of input and partition files.
	HasWeight bool

	// Mode selects the GPGPU algorithm profile (Mr. Scan or CUDA-DClust).
	Mode gdbscan.Mode
	// GPU configures each leaf's simulated device (default gpusim.K20).
	GPU gpusim.Config
	// Blocks, ThreadsPerBlock and LeafSize tune the GPGPU DBSCAN.
	Blocks          int
	ThreadsPerBlock int
	LeafSize        int

	// Costs is the overlay network cost model.
	Costs mrnet.CostModel

	// SequentialLeaves executes the cluster phase one leaf at a time
	// instead of concurrently. On hosts with fewer cores than leaves,
	// concurrent leaves contend for CPU and the slowest-leaf GPU time
	// (Figure 9c/10's quantity) gets inflated by scheduling noise;
	// sequential execution measures each simulated node in isolation,
	// as on Titan where every leaf owned a physical GPU.
	SequentialLeaves bool

	// DirectPartitions implements the paper's stated future work (§6):
	// partition contents travel over the network directly to the
	// clustering processes instead of through the parallel file system,
	// eliminating the small random writes that dominate Figure 9a.
	DirectPartitions bool

	// MergeOverTCP runs the merge phase's tree reduction over real TCP
	// connections on the loopback interface instead of the in-process
	// overlay — every internal node decodes, combines and re-encodes
	// summaries from actual sockets, demonstrating the protocol is
	// transport-independent (as MRNet is on a physical cluster).
	MergeOverTCP bool

	// ReclaimBorders feeds shadow-view border observations back to the
	// owning leaves during the sweep: a point whose only core neighbors
	// live in its owner's shadow region is misclassified noise by the
	// owner (the point-level analogue of Figure 7); another leaf's
	// summary knows better. The paper does not close this loop — it is
	// the residual behind its 0.995 quality floor — so the option
	// defaults to off for paper-faithful output.
	ReclaimBorders bool

	// HotCellThreshold, when positive, subdivides grid cells holding more
	// points than the threshold into quadrant tiles shared across leaves
	// — the paper's §5.1.2 fix for the strong-scaling plateau caused by
	// "a partition made up of a single dense grid cell" that "cannot be
	// subdivided further".
	HotCellThreshold int64

	// Retry governs re-execution of pipeline phases after transient
	// faults (Lustre OST evictions, overlay link errors, GPU launch
	// failures). Phases are idempotent — partition and sweep truncate
	// their output files on re-execution, cluster and merge are pure —
	// so a whole-phase retry is safe. The zero value disables retries.
	Retry RetryPolicy

	// FaultPlan, when non-nil, is installed on every substrate the run
	// provisions: the file system, both overlay networks, and each
	// leaf's GPU device. See internal/faultinject for the plan format.
	FaultPlan *faultinject.Plan
}

// RetryPolicy bounds per-phase re-execution after a transient fault.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per phase (default 1 —
	// the first failure surfaces immediately).
	MaxAttempts int
	// Backoff is the pause between attempts. The substrate failures are
	// simulated in-process, so the default of 0 is usually right; set it
	// when the fault plan models time-correlated outages.
	Backoff time.Duration
}

// runPhase executes one phase under the retry policy, counting retries
// and wrapping the terminal error with the phase name — every
// unrecoverable fault names the phase it killed.
func (r RetryPolicy) runPhase(name string, retries *int, f func() error) error {
	attempts := r.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for a := 1; a <= attempts; a++ {
		if err = f(); err == nil {
			return nil
		}
		if a < attempts {
			*retries++
			if r.Backoff > 0 {
				time.Sleep(r.Backoff)
			}
		}
	}
	return fmt.Errorf("mrscan: %s phase: %w", name, err)
}

// Default returns the configuration used by the paper's experiments:
// dense box on, rebalancing on, 256-way fanout, K20 leaves.
func Default(eps float64, minPts, leaves int) Config {
	return Config{
		Eps:       eps,
		MinPts:    minPts,
		Leaves:    leaves,
		Fanout:    mrnet.DefaultFanout,
		DenseBox:  true,
		Rebalance: true,
		GPU:       gpusim.K20(),
		Costs:     mrnet.TitanCosts(),
	}
}

func (c *Config) setDefaults() error {
	if c.Eps <= 0 {
		return fmt.Errorf("mrscan: Eps must be positive, got %v", c.Eps)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("mrscan: MinPts must be positive, got %d", c.MinPts)
	}
	if c.Leaves < 1 {
		return fmt.Errorf("mrscan: need at least one leaf, got %d", c.Leaves)
	}
	if c.PartitionLeaves <= 0 {
		c.PartitionLeaves = c.Leaves / 16
		if c.PartitionLeaves < 1 {
			c.PartitionLeaves = 1
		}
	}
	if c.Fanout <= 0 {
		c.Fanout = mrnet.DefaultFanout
	}
	if c.GPU.SMs == 0 {
		c.GPU = gpusim.K20()
	}
	return nil
}

// PhaseTimes is the wall-clock breakdown reported by the evaluation:
// Figure 9a (partition), 9b (cluster+merge+sweep) and 9c (GPGPU DBSCAN).
type PhaseTimes struct {
	Partition time.Duration
	Cluster   time.Duration
	Merge     time.Duration
	Sweep     time.Duration
	// PartitionReadSim and PartitionWriteSim are the simulated Lustre
	// costs of the partition phase's read and write stages — §5.1.1
	// reports write 65.2% vs read 29.9% of the phase at scale. Zero when
	// DirectPartitions bypasses the file system.
	PartitionReadSim  time.Duration
	PartitionWriteSim time.Duration
	// GPUDBSCAN is the slowest leaf's time inside the GPGPU DBSCAN —
	// "the time of the cluster phase is dictated by the slowest node"
	// (§5.1.1).
	GPUDBSCAN time.Duration
	// Total is the end-to-end elapsed time including I/O, as in Figure 8
	// ("includes startup and I/O costs, which has not been reported by
	// previous projects").
	Total time.Duration
	// PartitionRetries, ClusterRetries, MergeRetries and SweepRetries
	// count whole-phase re-executions forced by transient faults
	// (Config.Retry). All zero on a fault-free run.
	PartitionRetries int
	ClusterRetries   int
	MergeRetries     int
	SweepRetries     int
}

// Retries returns the total number of phase re-executions.
func (t PhaseTimes) Retries() int {
	return t.PartitionRetries + t.ClusterRetries + t.MergeRetries + t.SweepRetries
}

// Stats aggregates run-level counters.
type Stats struct {
	TotalPoints    int64
	WrittenPoints  int64
	OutputPoints   int64
	NoiseSkipped   int64
	DenseBoxes     int
	DenseBoxPoints int
	Collisions     int
	SeedRounds     int
	MaxLeafPoints  int
	// NetRecoveries counts overlay internal-node failures absorbed by
	// re-parenting children to the grandparent (both networks).
	NetRecoveries int64
	// FaultsInjected is the total number of faults the plan fired during
	// the run (0 without a plan).
	FaultsInjected int64
	// SimNow is the simulated-hardware elapsed time (max over resources).
	SimNow time.Duration
	// Resources is the per-resource simulated-time breakdown: GPU SMs,
	// PCIe links, Lustre OSTs and seeks, overlay levels and startup.
	Resources []simclock.ResourceTime
}

// Result is a completed run.
type Result struct {
	NumClusters int
	Times       PhaseTimes
	Stats       Stats
	// Plan is the partition plan (for inspection and experiments).
	Plan *partition.Plan
	// OutputFile names the labeled output on the file system.
	OutputFile string
}

// File names used inside the simulated file system.
const (
	partitionFile = "mrscan-partitions.bin"
	metadataFile  = "mrscan-partitions.json"
)

// Run executes the full pipeline against inputFile on fs, writing labeled
// output to outputFile.
func Run(fs *lustre.FS, inputFile, outputFile string, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	start := time.Now()
	g := grid.New(cfg.Eps)
	if cfg.FaultPlan != nil {
		fs.SetFaultPlan(cfg.FaultPlan)
	}
	var retries struct{ partition, cluster, merge, sweep int }

	// --- Phase 1: partition (separate flat MRNet network, §3.1.3) ---
	partNet, err := mrnet.New(cfg.PartitionLeaves, cfg.Fanout, cfg.Costs, fs.Clock())
	if err != nil {
		return nil, err
	}
	partNet.SetFaultPlan(cfg.FaultPlan)
	partStart := time.Now()
	distOpts := partition.DistOptions{
		NumPartitions:  cfg.Leaves,
		MinPts:         cfg.MinPts,
		Rebalance:      cfg.Rebalance,
		ShadowReps:     cfg.ShadowReps,
		HasWeight:      cfg.HasWeight,
		SplitThreshold: cfg.HotCellThreshold,
	}
	// loadPartition returns partition j's owned and shadow points,
	// either from the partition file or from the direct transfer.
	var loadPartition func(j int) (owned, shadow []geom.Point, err error)
	var plan *partition.Plan
	var totalPoints, writtenPoints int64
	var partReadSim, partWriteSim time.Duration
	err = cfg.Retry.runPhase("partition", &retries.partition, func() error {
		if cfg.DirectPartitions {
			direct, err := partition.DistributeDirect(partNet, fs, cfg.Eps, inputFile, distOpts)
			if err != nil {
				return err
			}
			plan = direct.Plan
			totalPoints = direct.TotalPoints
			writtenPoints = direct.TransferredPoints
			loadPartition = func(j int) ([]geom.Point, []geom.Point, error) {
				return direct.Partitions[j], direct.Shadows[j], nil
			}
			return nil
		}
		dist, err := partition.Distribute(partNet, fs, cfg.Eps, inputFile, partitionFile, metadataFile, distOpts)
		if err != nil {
			return err
		}
		plan = dist.Plan
		totalPoints = dist.TotalPoints
		writtenPoints = dist.WrittenPoints
		partReadSim = dist.ReadSim
		partWriteSim = dist.WriteSim
		loadPartition = func(j int) ([]geom.Point, []geom.Point, error) {
			return partition.ReadPartition(fs, partitionFile, dist.Meta, j)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	partTime := time.Since(partStart)

	// --- Phase 2: cluster (GPGPU DBSCAN on every leaf, §3.2) ---
	var clusterNet *mrnet.Network
	if cfg.Topology != "" {
		clusterNet, err = mrnet.NewFromSpec(cfg.Topology, cfg.Costs, fs.Clock())
		if err != nil {
			return nil, err
		}
		if clusterNet.NumLeaves() != cfg.Leaves {
			return nil, fmt.Errorf("mrscan: topology %q yields %d leaves, config says %d",
				cfg.Topology, clusterNet.NumLeaves(), cfg.Leaves)
		}
	} else {
		clusterNet, err = mrnet.New(cfg.Leaves, cfg.Fanout, cfg.Costs, fs.Clock())
		if err != nil {
			return nil, err
		}
	}
	clusterNet.SetFaultPlan(cfg.FaultPlan)
	type leafState struct {
		owned     []geom.Point
		labels    []int32
		summaries []*merge.Summary
		gpuTime   time.Duration
		stats     gdbscan.Stats
	}
	clusterStart := time.Now()
	clusterLeaf := func(leaf int) (*leafState, error) {
		owned, shadow, err := loadPartition(leaf)
		if err != nil {
			return nil, err
		}
		combined := make([]geom.Point, 0, len(owned)+len(shadow))
		combined = append(combined, owned...)
		combined = append(combined, shadow...)
		gpuCfg := cfg.GPU
		gpuCfg.Name = fmt.Sprintf("gpu%04d", leaf)
		dev := gpusim.New(gpuCfg, fs.Clock())
		dev.SetFaultPlan(cfg.FaultPlan)
		gpuStart := time.Now()
		res, err := gdbscan.Cluster(dev, combined, gdbscan.Options{
			Params:          dbscan.Params{Eps: cfg.Eps, MinPts: cfg.MinPts},
			DenseBox:        cfg.DenseBox,
			Mode:            cfg.Mode,
			Blocks:          cfg.Blocks,
			ThreadsPerBlock: cfg.ThreadsPerBlock,
			LeafSize:        cfg.LeafSize,
		})
		if err != nil {
			return nil, err
		}
		gpuTime := time.Since(gpuStart)
		sums, err := merge.BuildSummaries(g, leaf, combined, len(owned), res.Labels, res.Core, res.NumClusters)
		if err != nil {
			return nil, err
		}
		return &leafState{
			owned:     owned,
			labels:    res.Labels[:len(owned)],
			summaries: sums,
			gpuTime:   gpuTime,
			stats:     res.Stats,
		}, nil
	}
	var states []*leafState
	err = cfg.Retry.runPhase("cluster", &retries.cluster, func() error {
		if cfg.SequentialLeaves {
			states = make([]*leafState, cfg.Leaves)
			for leaf := 0; leaf < cfg.Leaves; leaf++ {
				var err error
				states[leaf], err = clusterLeaf(leaf)
				if err != nil {
					return err
				}
			}
			return nil
		}
		var err error
		states, err = mrnet.LeafRun(clusterNet, clusterLeaf)
		return err
	})
	if err != nil {
		return nil, err
	}
	clusterTime := time.Since(clusterStart)

	// --- Phase 3: merge (progressive reduction up the tree, §3.3) ---
	mergeStart := time.Now()
	var final []*merge.Summary
	err = cfg.Retry.runPhase("merge", &retries.merge, func() error {
		var err error
		if cfg.MergeOverTCP {
			final, err = mergeOverTCP(g, cfg.Eps, cfg.Leaves, cfg.Fanout,
				func(leaf int) []*merge.Summary { return states[leaf].summaries })
			return err
		}
		final, err = mrnet.Reduce(clusterNet,
			func(leaf int) ([]*merge.Summary, error) { return states[leaf].summaries, nil },
			func(_ *mrnet.Node, groups [][]*merge.Summary) ([]*merge.Summary, error) {
				return merge.Combine(g, cfg.Eps, groups), nil
			},
			func(sums []*merge.Summary) int64 {
				var n int64
				for _, s := range sums {
					n += s.WireSize()
				}
				return n
			},
		)
		return err
	})
	if err != nil {
		return nil, err
	}
	mapping := merge.AssignGlobalIDs(final)
	var claims map[uint64]int32
	if cfg.ReclaimBorders {
		claims = merge.BorderClaims(final, mapping)
	}
	mergeTime := time.Since(mergeStart)

	// --- Phase 4: sweep (global IDs down the tree, parallel write, §3.4) ---
	sweepStart := time.Now()
	var sw *sweep.Result
	err = cfg.Retry.runPhase("sweep", &retries.sweep, func() error {
		var err error
		sw, err = sweep.Run(clusterNet, fs, outputFile, mapping,
			func(leaf int) (*sweep.LeafData, error) {
				return &sweep.LeafData{Points: states[leaf].owned, Labels: states[leaf].labels}, nil
			},
			sweep.Options{IncludeNoise: cfg.IncludeNoise, Claims: claims},
		)
		return err
	})
	if err != nil {
		return nil, err
	}
	sweepTime := time.Since(sweepStart)

	res := &Result{
		NumClusters: len(final),
		Plan:        plan,
		OutputFile:  outputFile,
		Times: PhaseTimes{
			Partition:         partTime,
			PartitionReadSim:  partReadSim,
			PartitionWriteSim: partWriteSim,
			Cluster:           clusterTime,
			Merge:             mergeTime,
			Sweep:             sweepTime,
			Total:             time.Since(start),
			PartitionRetries:  retries.partition,
			ClusterRetries:    retries.cluster,
			MergeRetries:      retries.merge,
			SweepRetries:      retries.sweep,
		},
	}
	res.Stats.NetRecoveries = partNet.Recoveries() + clusterNet.Recoveries()
	res.Stats.FaultsInjected = cfg.FaultPlan.TotalFired()
	res.Stats.TotalPoints = totalPoints
	res.Stats.WrittenPoints = writtenPoints
	res.Stats.OutputPoints = sw.PointsWritten
	res.Stats.NoiseSkipped = sw.NoiseSkipped
	for _, st := range states {
		if st.gpuTime > res.Times.GPUDBSCAN {
			res.Times.GPUDBSCAN = st.gpuTime
		}
		res.Stats.DenseBoxes += st.stats.DenseBoxes
		res.Stats.DenseBoxPoints += st.stats.DenseBoxPoints
		res.Stats.Collisions += st.stats.Collisions
		res.Stats.SeedRounds += st.stats.SeedRounds
		if n := len(st.owned); n > res.Stats.MaxLeafPoints {
			res.Stats.MaxLeafPoints = n
		}
	}
	res.Stats.SimNow = fs.Clock().Now()
	res.Stats.Resources = fs.Clock().Snapshot()
	return res, nil
}

// RunPoints is a convenience wrapper: it provisions a fresh simulated file
// system, stores pts as the input file, runs the pipeline, and returns the
// result plus per-point global labels aligned with pts (noise = -1).
func RunPoints(pts []geom.Point, cfg Config) (*Result, []int, error) {
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, pts, cfg.HasWeight); err != nil {
		return nil, nil, err
	}
	cfg.IncludeNoise = true
	res, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
	if err != nil {
		return nil, nil, err
	}
	labels, err := LabelsByID(fs, res.OutputFile, pts)
	if err != nil {
		return nil, nil, err
	}
	return res, labels, nil
}

// LabelsByID reads a sweep output file and aligns its cluster IDs with
// pts by point ID. Points absent from the output are labeled -1 (noise
// was omitted).
func LabelsByID(fs *lustre.FS, file string, pts []geom.Point) ([]int, error) {
	out, err := sweep.ReadOutput(fs, file)
	if err != nil {
		return nil, err
	}
	byID := make(map[uint64]int64, len(out))
	for _, lp := range out {
		if _, dup := byID[lp.Point.ID]; dup {
			return nil, fmt.Errorf("mrscan: point %d written twice", lp.Point.ID)
		}
		byID[lp.Point.ID] = lp.Cluster
	}
	labels := make([]int, len(pts))
	for i, p := range pts {
		if c, ok := byID[p.ID]; ok {
			labels[i] = int(c)
		} else {
			labels[i] = -1
		}
	}
	return labels, nil
}
