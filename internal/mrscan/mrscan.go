// Package mrscan is the end-to-end Mr. Scan pipeline (paper §3): a
// parallel DBSCAN with four phases — partition, cluster, merge, sweep —
// run over MRNet-style process trees with a simulated GPGPU per leaf.
//
// Run starts from a single input file on the (simulated) parallel file
// system and produces a file of clustered points with global cluster IDs,
// exactly the paper's contract, with a per-phase time breakdown matching
// the units of Figures 8–10.
//
// The pipeline is restartable: with Config.Checkpoint set, every phase
// barrier writes a verified snapshot to the file system (see
// internal/checkpoint), and a later run with Config.Resume restores the
// longest valid prefix of snapshots instead of recomputing it. A run
// killed mid-phase — modeled by a fatal fault rule — resumes from the
// last durable phase and produces byte-identical output.
package mrscan

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dbscan"
	"repro/internal/faultinject"
	"repro/internal/gdbscan"
	"repro/internal/geom"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/health"
	"repro/internal/lustre"
	"repro/internal/merge"
	"repro/internal/mrnet"
	"repro/internal/partition"
	"repro/internal/ptio"
	"repro/internal/simclock"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Config configures a full Mr. Scan run.
type Config struct {
	// Eps and MinPts are the DBSCAN parameters.
	Eps    float64
	MinPts int

	// Leaves is the number of cluster-phase leaf processes (one GPGPU
	// each). PartitionLeaves is the size of the partitioner's separate
	// process network (Table 1's fourth column); it defaults to
	// max(1, Leaves/16), roughly the paper's ratio.
	Leaves          int
	PartitionLeaves int
	// Fanout is the tree fanout (default 256, the paper's topology).
	Fanout int
	// Topology optionally pins the cluster tree to an explicit
	// MRNet-style fanout-product spec (e.g. "2x16" = root → 2 internal →
	// 16 leaves each). Its leaf product must equal Leaves. Empty uses
	// the balanced Fanout tree.
	Topology string

	// DenseBox enables the §3.2.3 optimization (default on via Default).
	DenseBox bool
	// ShadowReps enables the partitioner's representative-shadow
	// optimization (§3.1.3).
	ShadowReps bool
	// Rebalance enables the partition rebalancing pass (§3.1.2).
	Rebalance bool
	// IncludeNoise writes noise points (cluster -1) to the output.
	IncludeNoise bool
	// HasWeight selects the record format of input and partition files.
	HasWeight bool

	// Mode selects the GPGPU algorithm profile (Mr. Scan or CUDA-DClust).
	Mode gdbscan.Mode
	// GPU configures each leaf's simulated device (default gpusim.K20).
	GPU gpusim.Config
	// Blocks, ThreadsPerBlock and LeafSize tune the GPGPU DBSCAN.
	Blocks          int
	ThreadsPerBlock int
	LeafSize        int

	// Costs is the overlay network cost model.
	Costs mrnet.CostModel

	// SequentialLeaves executes the cluster phase one leaf at a time
	// instead of concurrently. On hosts with fewer cores than leaves,
	// concurrent leaves contend for CPU and the slowest-leaf GPU time
	// (Figure 9c/10's quantity) gets inflated by scheduling noise;
	// sequential execution measures each simulated node in isolation,
	// as on Titan where every leaf owned a physical GPU.
	SequentialLeaves bool

	// ClusterWorkers bounds the number of leaves in flight during the
	// cluster phase. Leaves are scheduled onto the worker pool largest
	// partition first with work stealing: "the time of the cluster phase
	// is dictated by the slowest node" (§5), so the biggest partition
	// must never be the one still waiting when the pool drains. Each
	// worker owns one simulated device and one gdbscan workspace for all
	// the leaves it runs, so device buffer pools and host scratch
	// amortize across its share of the phase. 0 (the default) gives
	// every leaf its own worker — the paper's one-GPGPU-node-per-leaf
	// hardware shape. Ignored when SequentialLeaves is set.
	ClusterWorkers int

	// DirectPartitions implements the paper's stated future work (§6):
	// partition contents travel over the network directly to the
	// clustering processes instead of through the parallel file system,
	// eliminating the small random writes that dominate Figure 9a.
	DirectPartitions bool

	// WriteAggregation replaces the partition phase's small random writes
	// — "65.2% of the partition phase" at scale (§5.1.1) — with
	// log-structured per-leaf appends: each leaf writes its whole
	// contribution as one sequential run into a sharded segment file, and
	// a segment index in the partition metadata lets the cluster phase
	// reassemble any partition. Because a partition's segments become
	// durable before the whole phase finishes, the run also pipelines the
	// two phases: clustering starts on partition j as soon as its
	// segments are synced while leaves are still writing j+1. Output
	// labels are byte-identical with the option on or off. Ignored under
	// DirectPartitions (no files at all); pipelining is additionally
	// disabled when phase retries or resume are in play, where the
	// phase-barrier semantics must hold.
	WriteAggregation bool

	// MergeOverTCP runs the merge phase's tree reduction over real TCP
	// connections on the loopback interface instead of the in-process
	// overlay — every internal node decodes, combines and re-encodes
	// summaries from actual sockets, demonstrating the protocol is
	// transport-independent (as MRNet is on a physical cluster).
	MergeOverTCP bool

	// ReclaimBorders feeds shadow-view border observations back to the
	// owning leaves during the sweep: a point whose only core neighbors
	// live in its owner's shadow region is misclassified noise by the
	// owner (the point-level analogue of Figure 7); another leaf's
	// summary knows better. The paper does not close this loop — it is
	// the residual behind its 0.995 quality floor — so the option
	// defaults to off for paper-faithful output.
	ReclaimBorders bool

	// HotCellThreshold, when positive, subdivides grid cells holding more
	// points than the threshold into quadrant tiles shared across leaves
	// — the paper's §5.1.2 fix for the strong-scaling plateau caused by
	// "a partition made up of a single dense grid cell" that "cannot be
	// subdivided further".
	HotCellThreshold int64

	// Retry governs re-execution of pipeline phases after transient
	// faults (Lustre OST evictions, overlay link errors, GPU launch
	// failures). Phases are idempotent — partition and sweep truncate
	// their output files on re-execution, cluster and merge are pure —
	// so a whole-phase retry is safe. The zero value disables retries.
	// Fatal faults (faultinject.FatalError) and context cancellation are
	// never retried: the former models process death, the latter is the
	// caller's deadline.
	Retry RetryPolicy

	// FaultPlan, when non-nil, is installed on every substrate the run
	// provisions: the file system, both overlay networks, and each
	// leaf's GPU device. The pipeline additionally consults the plan at
	// the start of every phase attempt under the sites
	// "mrscan.phase.partition", ".cluster", ".merge", ".sweep" — a fatal
	// rule armed there kills the run at a deterministic phase boundary.
	// See internal/faultinject for the plan format.
	FaultPlan *faultinject.Plan

	// Checkpoint writes a verified snapshot of each completed phase
	// (partition, cluster, merge) to the file system — the durable state
	// a later Resume run restarts from. The sweep phase is not
	// snapshotted: its artifact is the output file itself and
	// re-executing it is idempotent.
	Checkpoint bool
	// Resume restores the longest valid prefix of phase snapshots left
	// on fs by an earlier checkpointed run with the same configuration
	// and input, re-executing only the phases after it. Corrupt or
	// truncated snapshots fail their checksum and the prefix stops
	// before them. Resume implies Checkpoint. Snapshots from a different
	// configuration (detected via a RunID fingerprint) are ignored.
	Resume bool

	// Telemetry, when non-nil, is the hub the run records on: phase
	// spans under a "mrscan.run" root, and every substrate the run
	// provisions (file system, overlay networks, each leaf's GPU device,
	// the checkpoint store) pointed at it, so per-kernel, per-hop and
	// per-I/O spans nest under their phase. Fault injections and phase
	// retries appear as instant events. When nil the run provisions a
	// private hub; Result.Telemetry exposes whichever was used, ready
	// for the telemetry exporters (Chrome trace, Prometheus text, JSON
	// report).
	Telemetry *telemetry.Hub
}

// RetryPolicy bounds per-phase re-execution after a transient fault.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per phase (default 1 —
	// the first failure surfaces immediately).
	MaxAttempts int
	// Backoff is the pause between attempts. The substrate failures are
	// simulated in-process, so the default of 0 is usually right; set it
	// when the fault plan models time-correlated outages.
	Backoff time.Duration
	// Budget, when non-nil, is the shared retry token bucket: every
	// re-attempt first takes a token at site "mrscan.phase". A denial
	// makes the transient fault terminal — under correlated gray faults
	// the run degrades into a loud partial failure instead of a silent
	// retry storm.
	Budget *health.Budget
}

// Phase names, in pipeline order. These are the snapshot keys on the
// checkpoint store and the suffixes of the per-phase fault sites.
const (
	PhasePartition = "partition"
	PhaseCluster   = "cluster"
	PhaseMerge     = "merge"
	PhaseSweep     = "sweep"
)

// PhaseSite returns the fault-injection site consulted at the start of
// every attempt of the named phase (e.g. "mrscan.phase.merge").
func PhaseSite(phase string) faultinject.Site {
	return faultinject.Site("mrscan.phase." + phase)
}

// runPhase executes one phase under the retry policy, counting retries
// and wrapping the terminal error with the phase name — every
// unrecoverable fault names the phase it killed. Each attempt first
// consults the fault plan at the phase's site, then checks the caller's
// context; fatal faults and context errors are terminal (no retry).
// Every retry emits a "mrscan.retry" event under the phase span sp and
// bumps the per-phase retry counter (hub may be nil).
func (r RetryPolicy) runPhase(ctx context.Context, plan *faultinject.Plan, hub *telemetry.Hub, sp *telemetry.Span, name string, retries *int, f func() error) error {
	attempts := r.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for a := 1; a <= attempts; a++ {
		if err = ctx.Err(); err != nil {
			break
		}
		if err = plan.Check(PhaseSite(name)); err == nil {
			err = f()
		}
		if err == nil {
			return nil
		}
		if faultinject.IsFatal(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, lustre.ErrCrashed) {
			// A simulated power failure is terminal: retrying against a
			// crashed file system can only fail again — the run must
			// stop so the harness can Recover and restart it.
			break
		}
		if a < attempts {
			if !r.Budget.Take("mrscan.phase") {
				err = fmt.Errorf("%w (retry denied: %w)", err, health.ErrBudgetExhausted)
				break
			}
			*retries++
			hub.Event(sp, "mrscan.retry",
				telemetry.String("phase", name), telemetry.Int("attempt", a))
			hub.Counter("mrscan_phase_retries_total", "phase", name).Inc()
			if r.Backoff > 0 {
				time.Sleep(r.Backoff)
			}
		}
	}
	return fmt.Errorf("mrscan: %s phase: %w", name, err)
}

// Default returns the configuration used by the paper's experiments:
// dense box on, rebalancing on, 256-way fanout, K20 leaves.
func Default(eps float64, minPts, leaves int) Config {
	return Config{
		Eps:       eps,
		MinPts:    minPts,
		Leaves:    leaves,
		Fanout:    mrnet.DefaultFanout,
		DenseBox:  true,
		Rebalance: true,
		GPU:       gpusim.K20(),
		Costs:     mrnet.TitanCosts(),
	}
}

func (c *Config) setDefaults() error {
	if c.Eps <= 0 {
		return fmt.Errorf("mrscan: Eps must be positive, got %v", c.Eps)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("mrscan: MinPts must be positive, got %d", c.MinPts)
	}
	if c.Leaves < 1 {
		return fmt.Errorf("mrscan: need at least one leaf, got %d", c.Leaves)
	}
	if c.PartitionLeaves <= 0 {
		c.PartitionLeaves = c.Leaves / 16
		if c.PartitionLeaves < 1 {
			c.PartitionLeaves = 1
		}
	}
	if c.Fanout <= 0 {
		c.Fanout = mrnet.DefaultFanout
	}
	if c.GPU.SMs == 0 {
		c.GPU = gpusim.K20()
	}
	if c.Resume {
		c.Checkpoint = true
	}
	return nil
}

// PhaseTimes is the wall-clock breakdown reported by the evaluation:
// Figure 9a (partition), 9b (cluster+merge+sweep) and 9c (GPGPU DBSCAN).
type PhaseTimes struct {
	Partition time.Duration
	Cluster   time.Duration
	Merge     time.Duration
	Sweep     time.Duration
	// PartitionReadSim and PartitionWriteSim are the simulated Lustre
	// costs of the partition phase's read and write stages — §5.1.1
	// reports write 65.2% vs read 29.9% of the phase at scale.
	// WriteAggregation turns the write stage's small random writes into
	// sequential appends and shrinks PartitionWriteSim. Zero when
	// DirectPartitions bypasses the file system; the overlay transfer
	// cost replacing the write stage is recorded on
	// partition.DirectResult (and the phase checkpoint) instead, so the
	// two designs still compare like-for-like.
	PartitionReadSim  time.Duration
	PartitionWriteSim time.Duration
	// GPUDBSCAN is the slowest leaf's time inside the GPGPU DBSCAN —
	// "the time of the cluster phase is dictated by the slowest node"
	// (§5.1.1).
	GPUDBSCAN time.Duration
	// Total is the end-to-end elapsed time including I/O, as in Figure 8
	// ("includes startup and I/O costs, which has not been reported by
	// previous projects").
	Total time.Duration
	// PartitionRetries, ClusterRetries, MergeRetries and SweepRetries
	// count whole-phase re-executions forced by transient faults
	// (Config.Retry). All zero on a fault-free run.
	PartitionRetries int
	ClusterRetries   int
	MergeRetries     int
	SweepRetries     int
}

// Retries returns the total number of phase re-executions.
func (t PhaseTimes) Retries() int {
	return t.PartitionRetries + t.ClusterRetries + t.MergeRetries + t.SweepRetries
}

// Stats aggregates run-level counters.
type Stats struct {
	TotalPoints    int64
	WrittenPoints  int64
	OutputPoints   int64
	NoiseSkipped   int64
	DenseBoxes     int
	DenseBoxPoints int
	Collisions     int
	SeedRounds     int
	MaxLeafPoints  int
	// NetRecoveries counts overlay internal-node failures absorbed by
	// re-parenting children to the grandparent (both networks).
	NetRecoveries int64
	// FaultsInjected is the total number of faults the plan fired during
	// the run (0 without a plan).
	FaultsInjected int64
	// SimNow is the simulated-hardware elapsed time (max over resources).
	SimNow time.Duration
	// Resources is the per-resource simulated-time breakdown: GPU SMs,
	// PCIe links, Lustre OSTs and seeks, overlay levels and startup.
	Resources []simclock.ResourceTime
}

// Result is a completed (or, on error, partially completed) run.
type Result struct {
	NumClusters int
	Times       PhaseTimes
	Stats       Stats
	// Plan is the partition plan (for inspection and experiments). It is
	// nil when the partition phase was restored from a checkpoint — the
	// plan's internals are not part of the durable snapshot, only its
	// outputs are.
	Plan *partition.Plan
	// OutputFile names the labeled output on the file system.
	OutputFile string
	// CompletedPhases lists the phases that finished, in pipeline order,
	// whether executed or restored. On a successful run it is all four;
	// on an aborted run it names how far the pipeline got.
	CompletedPhases []string
	// RestoredPhases is the subset of CompletedPhases that was restored
	// from checkpoints instead of executed (empty without Resume).
	RestoredPhases []string
	// Telemetry is the hub the run recorded on — Config.Telemetry when
	// set, otherwise the private hub the run provisioned. Hand it to the
	// telemetry exporters to emit the Chrome trace, Prometheus metrics
	// or the JSON run report.
	Telemetry *telemetry.Hub
}

// File names used inside the simulated file system.
const (
	partitionFile = "mrscan-partitions.bin"
	metadataFile  = "mrscan-partitions.json"
)

// partitionArtifacts lists the partition phase's durable files for the
// sync-ordering barrier: in aggregated runs the sharded segment files
// (the legacy partition file is never created), otherwise the partition
// file itself, plus the metadata document either way.
func partitionArtifacts(meta *ptio.PartitionMeta) []string {
	if meta != nil && len(meta.Segments) > 0 {
		names := make([]string, 0, len(meta.Segments)+1)
		for _, s := range meta.Segments {
			names = append(names, s.File)
		}
		return append(names, metadataFile)
	}
	return []string{partitionFile, metadataFile}
}

// Snapshot payloads for the checkpoint store. All fields are exported
// for gob. The structs mirror exactly the state the next phase consumes,
// so a restored phase is indistinguishable from an executed one.
type partitionCkpt struct {
	// Meta locates every partition inside partitionFile — or, when its
	// Segments index is populated (WriteAggregation), inside the sharded
	// segment files. The partition data itself stays on the FS; the
	// snapshot holds only the index, so resuming requires both.
	Meta *ptio.PartitionMeta
	// Direct marks a DirectPartitions run, whose partition contents
	// never touch the file system and are carried in the snapshot.
	Direct     bool
	Partitions [][]geom.Point
	Shadows    [][]geom.Point

	TotalPoints   int64
	WrittenPoints int64
	ReadSim       time.Duration
	WriteSim      time.Duration
}

type leafSnapshot struct {
	Owned     []geom.Point
	Labels    []int32
	Summaries []*merge.Summary
	GPUTime   time.Duration
	Stats     gdbscan.Stats
}

type clusterCkpt struct {
	Leaves []leafSnapshot
}

type mergeCkpt struct {
	Final []*merge.Summary
}

// runFingerprint derives the checkpoint RunID from every configuration
// field that shapes phase outputs, plus the input file's name and size.
// Checkpoints written under a different fingerprint are ignored by
// Resume — restoring a snapshot into a run that would have computed
// something else silently corrupts the output.
func runFingerprint(cfg *Config, fs *lustre.FS, inputFile string) string {
	var size int64
	if s, err := fs.Size(inputFile); err == nil {
		size = s
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%g|%d|%d|%d|%d|%q|%t|%t|%t|%t|%t|%t|%t|%d|%v|%d|%d|%d|%t",
		inputFile, size, cfg.Eps, cfg.MinPts, cfg.Leaves, cfg.PartitionLeaves,
		cfg.Fanout, cfg.Topology, cfg.DenseBox, cfg.ShadowReps, cfg.Rebalance,
		cfg.IncludeNoise, cfg.HasWeight, cfg.DirectPartitions, cfg.ReclaimBorders,
		cfg.HotCellThreshold, cfg.Mode, cfg.Blocks, cfg.ThreadsPerBlock, cfg.LeafSize,
		cfg.WriteAggregation)
	return fmt.Sprintf("mrscan-%016x", h.Sum64())
}

// Run executes the full pipeline against inputFile on fs, writing labeled
// output to outputFile. It is RunContext without a deadline.
func Run(fs *lustre.FS, inputFile, outputFile string, cfg Config) (*Result, error) {
	return RunContext(context.Background(), fs, inputFile, outputFile, cfg)
}

// RunContext executes the full pipeline under ctx. Cancellation or
// deadline expiry aborts the run at the next phase or tree-hop boundary;
// the returned error wraps the context error and names the in-flight
// phase, and the partial Result lists the phases that completed before
// the abort. With Config.Checkpoint those phases are already durable, so
// a later Resume run picks up where the deadline struck.
func RunContext(ctx context.Context, fs *lustre.FS, inputFile, outputFile string, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	g := grid.New(cfg.Eps)
	hub := cfg.Telemetry
	if hub == nil {
		hub = telemetry.New(fs.Clock())
	}
	fs.SetTelemetry(hub)
	runSpan := hub.Start(nil, "mrscan.run")
	// curSpan tracks the in-flight phase span so fault-observer events
	// (fired from arbitrary substrate goroutines) nest correctly.
	var curSpan atomic.Pointer[telemetry.Span]
	if runSpan != nil {
		curSpan.Store(runSpan)
	}
	if cfg.FaultPlan != nil {
		fs.SetFaultPlan(cfg.FaultPlan)
		// A run that may see injected corruption gets the checksummed
		// data plane: without it a lustre bit flip escapes silently.
		fs.EnableIntegrity()
		cfg.FaultPlan.SetObserver(func(site faultinject.Site, ferr error, fatal bool) {
			hub.Event(curSpan.Load(), "fault.injected",
				telemetry.String("site", string(site)), telemetry.Bool("fatal", fatal))
			hub.Counter("mrscan_faults_injected_total", "site", string(site)).Inc()
		})
	}
	var retries struct{ partition, cluster, merge, sweep int }

	res := &Result{OutputFile: outputFile, Telemetry: hub}
	var partNet, clusterNet *mrnet.Network
	// fail finalizes the partial result: whatever phases completed are
	// named, stats that exist are filled, and the caller gets both the
	// result and the error. Open spans are closed so the trace of an
	// aborted run still exports.
	fail := func(err error) (*Result, error) {
		if sp := curSpan.Load(); sp != nil {
			sp.End()
		}
		runSpan.End()
		fs.SetTraceParent(nil)
		res.Times.Total = time.Since(start)
		if partNet != nil {
			res.Stats.NetRecoveries += partNet.Recoveries()
		}
		if clusterNet != nil {
			res.Stats.NetRecoveries += clusterNet.Recoveries()
		}
		res.Stats.FaultsInjected = cfg.FaultPlan.TotalFired()
		res.Stats.SimNow = fs.Clock().Now()
		res.Stats.Resources = fs.Clock().Snapshot()
		return res, err
	}

	var store *checkpoint.Store
	validPrefix := 0
	if cfg.Checkpoint {
		store = checkpoint.NewStore(checkpoint.LustreFS(fs), runFingerprint(&cfg, fs, inputFile))
		store.SetTelemetry(hub)
		if cfg.Resume {
			validPrefix = store.ValidPrefix([]string{PhasePartition, PhaseCluster, PhaseMerge})
		}
	}
	// beginPhase opens the span a pipeline phase's work records under and
	// points the phase-agnostic substrates at it.
	beginPhase := func(name string) *telemetry.Span {
		sp := hub.Start(runSpan, "phase:"+name, telemetry.String(telemetry.AttrKind, telemetry.KindPhase))
		if sp != nil {
			curSpan.Store(sp)
		}
		fs.SetTraceParent(sp)
		if store != nil {
			store.SetTraceParent(sp)
		}
		return sp
	}
	// endPhase closes a phase span and returns its wall duration, so the
	// reported Times derive from the same spans the trace exports; the
	// stopwatch fallback covers hubs constructed without a tracer.
	endPhase := func(sp *telemetry.Span, name string, fallback time.Duration) time.Duration {
		sp.End()
		if ss := hub.Trace.FindSpans("phase:" + name); len(ss) > 0 {
			return ss[len(ss)-1].WallDuration()
		}
		return fallback
	}
	// --- Phase 1: partition (separate flat MRNet network, §3.1.3) ---
	partSpan := beginPhase(PhasePartition)
	partStart := time.Now()
	// loadPartition returns partition j's owned and shadow points,
	// either from the partition file or from the direct transfer.
	// partitionSize reports j's total point count (owned + shadow)
	// without loading it — the cluster scheduler's largest-first key.
	var loadPartition func(j int) (owned, shadow []geom.Point, err error)
	var partitionSize func(j int) int64
	var plan *partition.Plan
	var totalPoints, writtenPoints int64
	var partReadSim, partWriteSim time.Duration
	// In the pipelined (WriteAggregation) path the partition phase runs
	// concurrently with the cluster phase: gate admits cluster leaves as
	// their partitions become durable, and finishPartition — called after
	// the cluster compute, before the cluster checkpoint — collects the
	// partition result, syncs its artifacts and writes its checkpoint, so
	// the durable phase-prefix order (partition before cluster) is
	// preserved. Both stay nil on every non-overlapped path.
	var gate *partitionGate
	var finishPartition func() error
	if validPrefix >= 1 {
		var pc partitionCkpt
		if err := store.Load(PhasePartition, &pc); err != nil {
			return fail(fmt.Errorf("mrscan: restoring %s phase: %w", PhasePartition, err))
		}
		totalPoints, writtenPoints = pc.TotalPoints, pc.WrittenPoints
		if !pc.Direct {
			// Direct snapshots carry the overlay-transfer sims for parity
			// inspection, but PhaseTimes reports Lustre costs only.
			partReadSim, partWriteSim = pc.ReadSim, pc.WriteSim
		}
		if pc.Direct {
			parts, shadows := pc.Partitions, pc.Shadows
			loadPartition = func(j int) ([]geom.Point, []geom.Point, error) {
				return parts[j], shadows[j], nil
			}
			partitionSize = func(j int) int64 {
				return int64(len(parts[j]) + len(shadows[j]))
			}
		} else {
			meta := pc.Meta
			loadPartition = func(j int) ([]geom.Point, []geom.Point, error) {
				return partition.ReadPartition(fs, partitionFile, meta, j)
			}
			partitionSize = func(j int) int64 {
				e := meta.Partitions[j]
				return e.Count + e.ShadowCount
			}
		}
		res.RestoredPhases = append(res.RestoredPhases, PhasePartition)
	} else {
		var err error
		partNet, err = mrnet.New(cfg.PartitionLeaves, cfg.Fanout, cfg.Costs, fs.Clock())
		if err != nil {
			return nil, err
		}
		partNet.SetFaultPlan(cfg.FaultPlan)
		partNet.SetTelemetry(hub, "partition")
		partNet.SetTraceParent(partSpan)
		distOpts := partition.DistOptions{
			NumPartitions:  cfg.Leaves,
			MinPts:         cfg.MinPts,
			Rebalance:      cfg.Rebalance,
			ShadowReps:     cfg.ShadowReps,
			HasWeight:      cfg.HasWeight,
			SplitThreshold: cfg.HotCellThreshold,
			Aggregate:      cfg.WriteAggregation && !cfg.DirectPartitions,
		}
		// Overlap the partition and cluster phases only when the
		// aggregated writer provides per-partition durability signals and
		// no retry policy demands a clean phase barrier (a whole-phase
		// retry would rewrite segments the cluster phase already read).
		if distOpts.Aggregate && cfg.Retry.MaxAttempts <= 1 {
			gate = newPartitionGate(cfg.Leaves)
			type distOut struct {
				dist *partition.DistResult
				err  error
			}
			distCh := make(chan distOut, 1)
			layoutCh := make(chan *ptio.PartitionMeta, 1)
			distOpts.OnLayout = func(m *ptio.PartitionMeta) { layoutCh <- m }
			distOpts.OnPartitionDurable = gate.markReady
			go func() {
				var dist *partition.DistResult
				err := cfg.FaultPlan.Check(PhaseSite(PhasePartition))
				if err == nil {
					dist, err = partition.Distribute(ctx, partNet, fs, cfg.Eps, inputFile, partitionFile, metadataFile, distOpts)
				}
				// The phase span ends when the writes actually finish —
				// concurrently with the already-open cluster span, so the
				// trace shows the overlap. endPhase's later End is a no-op.
				partSpan.End()
				if err != nil {
					err = fmt.Errorf("mrscan: %s phase: %w", PhasePartition, err)
					gate.fail(err)
					distCh <- distOut{err: err}
					return
				}
				gate.markAllReady()
				distCh <- distOut{dist: dist}
			}()
			// The layout (partition bounds and counts) arrives before any
			// data is written; it is all the cluster scheduler needs.
			var meta *ptio.PartitionMeta
			select {
			case meta = <-layoutCh:
			case out := <-distCh:
				if out.err != nil {
					return fail(out.err)
				}
				meta = out.dist.Meta
			}
			loadPartition = func(j int) ([]geom.Point, []geom.Point, error) {
				if err := gate.wait(ctx, j); err != nil {
					return nil, nil, err
				}
				return partition.ReadPartition(fs, partitionFile, meta, j)
			}
			partitionSize = func(j int) int64 {
				e := meta.Partitions[j]
				return e.Count + e.ShadowCount
			}
			finishPartition = func() error {
				out := <-distCh
				distCh <- out // re-buffer: the cluster error path may call again
				if out.err != nil {
					return out.err
				}
				dist := out.dist
				plan = dist.Plan
				totalPoints, writtenPoints = dist.TotalPoints, dist.WrittenPoints
				partReadSim, partWriteSim = dist.ReadSim, dist.WriteSim
				// Sync-ordering invariant, deferred but not weakened: the
				// segment artifacts become durable here, before the
				// partition checkpoint below and the cluster checkpoint
				// after — the durable prefix never holds a later phase
				// over torn partition data.
				for _, name := range partitionArtifacts(dist.Meta) {
					if err := fs.Sync(name); err != nil {
						return fmt.Errorf("mrscan: syncing %s: %w", name, err)
					}
				}
				if err := fs.SyncDir("."); err != nil {
					return fmt.Errorf("mrscan: syncing partition output dir: %w", err)
				}
				if store != nil {
					pc := partitionCkpt{
						Meta:          dist.Meta,
						TotalPoints:   totalPoints,
						WrittenPoints: writtenPoints,
						ReadSim:       partReadSim,
						WriteSim:      partWriteSim,
					}
					if err := store.Save(PhasePartition, &pc); err != nil {
						return fmt.Errorf("mrscan: checkpointing %s phase: %w", PhasePartition, err)
					}
				}
				res.CompletedPhases = append(res.CompletedPhases, PhasePartition)
				res.Times.Partition = endPhase(partSpan, PhasePartition, time.Since(partStart))
				res.Times.PartitionReadSim = partReadSim
				res.Times.PartitionWriteSim = partWriteSim
				return nil
			}
		} else {
			var pc partitionCkpt
			err = cfg.Retry.runPhase(ctx, cfg.FaultPlan, hub, partSpan, PhasePartition, &retries.partition, func() error {
				if cfg.DirectPartitions {
					direct, err := partition.DistributeDirect(ctx, partNet, fs, cfg.Eps, inputFile, distOpts)
					if err != nil {
						return err
					}
					plan = direct.Plan
					totalPoints = direct.TotalPoints
					writtenPoints = direct.TransferredPoints
					loadPartition = func(j int) ([]geom.Point, []geom.Point, error) {
						return direct.Partitions[j], direct.Shadows[j], nil
					}
					partitionSize = func(j int) int64 {
						return int64(len(direct.Partitions[j]) + len(direct.Shadows[j]))
					}
					// The sims are recorded for file-mode parity but stay
					// out of PhaseTimes: the phase wrote no Lustre bytes.
					pc = partitionCkpt{
						Direct:        true,
						Partitions:    direct.Partitions,
						Shadows:       direct.Shadows,
						TotalPoints:   totalPoints,
						WrittenPoints: writtenPoints,
						ReadSim:       direct.ReadSim,
						WriteSim:      direct.WriteSim,
					}
					return nil
				}
				dist, err := partition.Distribute(ctx, partNet, fs, cfg.Eps, inputFile, partitionFile, metadataFile, distOpts)
				if err != nil {
					return err
				}
				plan = dist.Plan
				totalPoints = dist.TotalPoints
				writtenPoints = dist.WrittenPoints
				partReadSim = dist.ReadSim
				partWriteSim = dist.WriteSim
				loadPartition = func(j int) ([]geom.Point, []geom.Point, error) {
					return partition.ReadPartition(fs, partitionFile, dist.Meta, j)
				}
				partitionSize = func(j int) int64 {
					e := dist.Meta.Partitions[j]
					return e.Count + e.ShadowCount
				}
				pc = partitionCkpt{
					Meta:          dist.Meta,
					TotalPoints:   totalPoints,
					WrittenPoints: writtenPoints,
					ReadSim:       partReadSim,
					WriteSim:      partWriteSim,
				}
				return nil
			})
			if err != nil {
				return fail(err)
			}
			if !cfg.DirectPartitions {
				// Sync-ordering invariant: the partition artifacts must be
				// durable before the phase checkpoint (or any later ack)
				// references them — a resume that restores the partition
				// checkpoint re-reads the partition data, so a crash must
				// never leave a durable checkpoint over torn partitions.
				for _, name := range partitionArtifacts(pc.Meta) {
					if err := fs.Sync(name); err != nil {
						return fail(fmt.Errorf("mrscan: syncing %s: %w", name, err))
					}
				}
				if err := fs.SyncDir("."); err != nil {
					return fail(fmt.Errorf("mrscan: syncing partition output dir: %w", err))
				}
			}
			if store != nil {
				if err := store.Save(PhasePartition, &pc); err != nil {
					return fail(fmt.Errorf("mrscan: checkpointing %s phase: %w", PhasePartition, err))
				}
			}
		}
	}
	if finishPartition == nil {
		res.CompletedPhases = append(res.CompletedPhases, PhasePartition)
		res.Times.Partition = endPhase(partSpan, PhasePartition, time.Since(partStart))
		res.Times.PartitionReadSim = partReadSim
		res.Times.PartitionWriteSim = partWriteSim
	}

	// --- Phase 2: cluster (GPGPU DBSCAN on every leaf, §3.2) ---
	{
		var err error
		if cfg.Topology != "" {
			clusterNet, err = mrnet.NewFromSpec(cfg.Topology, cfg.Costs, fs.Clock())
			if err != nil {
				return nil, err
			}
			if clusterNet.NumLeaves() != cfg.Leaves {
				return nil, fmt.Errorf("mrscan: topology %q yields %d leaves, config says %d",
					cfg.Topology, clusterNet.NumLeaves(), cfg.Leaves)
			}
		} else {
			clusterNet, err = mrnet.New(cfg.Leaves, cfg.Fanout, cfg.Costs, fs.Clock())
			if err != nil {
				return nil, err
			}
		}
	}
	clusterNet.SetFaultPlan(cfg.FaultPlan)
	clusterNet.SetTelemetry(hub, "cluster")
	type leafState struct {
		owned     []geom.Point
		labels    []int32
		summaries []*merge.Summary
		gpuTime   time.Duration
		stats     gdbscan.Stats
	}
	clusterSpan := beginPhase(PhaseCluster)
	clusterNet.SetTraceParent(clusterSpan)
	if gate != nil {
		// Partition writes are still in flight: keep FS spans parented to
		// the run, not the cluster phase, while the two phases overlap.
		fs.SetTraceParent(runSpan)
	}
	clusterStart := time.Now()
	var states []*leafState
	if validPrefix >= 2 {
		var cc clusterCkpt
		if err := store.Load(PhaseCluster, &cc); err != nil {
			return fail(fmt.Errorf("mrscan: restoring %s phase: %w", PhaseCluster, err))
		}
		if len(cc.Leaves) != cfg.Leaves {
			return fail(fmt.Errorf("mrscan: %s snapshot holds %d leaves, config says %d",
				PhaseCluster, len(cc.Leaves), cfg.Leaves))
		}
		states = make([]*leafState, len(cc.Leaves))
		for i := range cc.Leaves {
			l := &cc.Leaves[i]
			states[i] = &leafState{
				owned:     l.Owned,
				labels:    l.Labels,
				summaries: l.Summaries,
				gpuTime:   l.GPUTime,
				stats:     l.Stats,
			}
		}
		res.RestoredPhases = append(res.RestoredPhases, PhaseCluster)
	} else {
		// clusterLeaf runs one leaf's GPGPU DBSCAN + summary build on a
		// caller-provided device and workspace; the scheduler reuses both
		// across all leaves a worker processes, so device buffers (pool)
		// and host scratch amortize over the worker's whole share.
		clusterLeaf := func(dev *gpusim.Device, ws *gdbscan.Workspace, leaf int) (*leafState, error) {
			leafSpan := hub.Start(clusterSpan, "leaf", telemetry.Int("leaf", leaf))
			defer leafSpan.End()
			owned, shadow, err := loadPartition(leaf)
			if err != nil {
				return nil, err
			}
			combined := make([]geom.Point, 0, len(owned)+len(shadow))
			combined = append(combined, owned...)
			combined = append(combined, shadow...)
			dev.SetTraceParent(leafSpan)
			gpuStart := time.Now()
			res, err := gdbscan.Cluster(dev, combined, gdbscan.Options{
				Params:          dbscan.Params{Eps: cfg.Eps, MinPts: cfg.MinPts},
				DenseBox:        cfg.DenseBox,
				Mode:            cfg.Mode,
				Blocks:          cfg.Blocks,
				ThreadsPerBlock: cfg.ThreadsPerBlock,
				LeafSize:        cfg.LeafSize,
				Workspace:       ws,
			})
			if err != nil {
				return nil, err
			}
			gpuTime := time.Since(gpuStart)
			sums, err := merge.BuildSummaries(g, leaf, combined, len(owned), res.Labels, res.Core, res.NumClusters)
			if err != nil {
				return nil, err
			}
			return &leafState{
				owned:     owned,
				labels:    res.Labels[:len(owned)],
				summaries: sums,
				gpuTime:   gpuTime,
				stats:     res.Stats,
			}, nil
		}
		newDevice := func(id int) *gpusim.Device {
			gpuCfg := cfg.GPU
			gpuCfg.Name = fmt.Sprintf("gpu%04d", id)
			dev := gpusim.New(gpuCfg, fs.Clock())
			dev.SetFaultPlan(cfg.FaultPlan)
			dev.SetTelemetry(hub)
			return dev
		}
		err := cfg.Retry.runPhase(ctx, cfg.FaultPlan, hub, clusterSpan, PhaseCluster, &retries.cluster, func() error {
			if cfg.SequentialLeaves {
				// One leaf at a time on its own device: each simulated
				// node measured in isolation (the host workspace is
				// shared — it never touches simulated time).
				states = make([]*leafState, cfg.Leaves)
				var ws gdbscan.Workspace
				for leaf := 0; leaf < cfg.Leaves; leaf++ {
					if cerr := ctx.Err(); cerr != nil {
						return cerr
					}
					var err error
					states[leaf], err = clusterLeaf(newDevice(leaf), &ws, leaf)
					if err != nil {
						return err
					}
				}
				return nil
			}
			workers := cfg.ClusterWorkers
			if workers <= 0 || workers > cfg.Leaves {
				workers = cfg.Leaves
			}
			sizes := make([]int64, cfg.Leaves)
			for j := range sizes {
				sizes[j] = partitionSize(j)
			}
			type workerState struct {
				dev *gpusim.Device
				ws  gdbscan.Workspace
			}
			wstates := make([]workerState, workers)
			for w := range wstates {
				wstates[w].dev = newDevice(w)
			}
			var err error
			states, err = runLeavesGated(ctx, cfg.Leaves, workers, sizes, gate,
				func(w, leaf int) (*leafState, error) {
					return clusterLeaf(wstates[w].dev, &wstates[w].ws, leaf)
				})
			return err
		})
		if finishPartition != nil {
			// Close out the overlapped partition phase before the cluster
			// phase commits anything durable: its artifacts sync and its
			// checkpoint lands first, keeping the phase-prefix order. On a
			// cluster error the partition error (if any) is the root cause
			// and wins.
			if perr := finishPartition(); perr != nil {
				return fail(perr)
			}
			finishPartition = nil
		}
		if err != nil {
			return fail(err)
		}
		if store != nil {
			cc := clusterCkpt{Leaves: make([]leafSnapshot, len(states))}
			for i, st := range states {
				cc.Leaves[i] = leafSnapshot{
					Owned:     st.owned,
					Labels:    st.labels,
					Summaries: st.summaries,
					GPUTime:   st.gpuTime,
					Stats:     st.stats,
				}
			}
			if err := store.Save(PhaseCluster, &cc); err != nil {
				return fail(fmt.Errorf("mrscan: checkpointing %s phase: %w", PhaseCluster, err))
			}
		}
	}
	res.CompletedPhases = append(res.CompletedPhases, PhaseCluster)
	res.Times.Cluster = endPhase(clusterSpan, PhaseCluster, time.Since(clusterStart))

	// --- Phase 3: merge (progressive reduction up the tree, §3.3) ---
	mergeSpan := beginPhase(PhaseMerge)
	clusterNet.SetTraceParent(mergeSpan)
	mergeStart := time.Now()
	var final []*merge.Summary
	if validPrefix >= 3 {
		var mc mergeCkpt
		if err := store.Load(PhaseMerge, &mc); err != nil {
			return fail(fmt.Errorf("mrscan: restoring %s phase: %w", PhaseMerge, err))
		}
		final = mc.Final
		res.RestoredPhases = append(res.RestoredPhases, PhaseMerge)
	} else {
		err := cfg.Retry.runPhase(ctx, cfg.FaultPlan, hub, mergeSpan, PhaseMerge, &retries.merge, func() error {
			var err error
			if cfg.MergeOverTCP {
				final, err = mergeOverTCP(g, cfg.Eps, cfg.Leaves, cfg.Fanout,
					cfg.FaultPlan, hub,
					func(leaf int) []*merge.Summary { return states[leaf].summaries })
				return err
			}
			final, err = mrnet.Reduce(ctx, clusterNet,
				func(leaf int) ([]*merge.Summary, error) { return states[leaf].summaries, nil },
				func(_ *mrnet.Node, groups [][]*merge.Summary) ([]*merge.Summary, error) {
					return merge.Combine(g, cfg.Eps, groups), nil
				},
				func(sums []*merge.Summary) int64 {
					var n int64
					for _, s := range sums {
						n += s.WireSize()
					}
					return n
				},
			)
			return err
		})
		if err != nil {
			return fail(err)
		}
		if store != nil {
			if err := store.Save(PhaseMerge, &mergeCkpt{Final: final}); err != nil {
				return fail(fmt.Errorf("mrscan: checkpointing %s phase: %w", PhaseMerge, err))
			}
		}
	}
	mapping := merge.AssignGlobalIDs(final)
	var claims map[uint64]int32
	if cfg.ReclaimBorders {
		claims = merge.BorderClaims(final, mapping)
	}
	res.CompletedPhases = append(res.CompletedPhases, PhaseMerge)
	res.Times.Merge = endPhase(mergeSpan, PhaseMerge, time.Since(mergeStart))

	// --- Phase 4: sweep (global IDs down the tree, parallel write, §3.4) ---
	sweepSpan := beginPhase(PhaseSweep)
	clusterNet.SetTraceParent(sweepSpan)
	sweepStart := time.Now()
	var sw *sweep.Result
	err := cfg.Retry.runPhase(ctx, cfg.FaultPlan, hub, sweepSpan, PhaseSweep, &retries.sweep, func() error {
		var err error
		sw, err = sweep.Run(ctx, clusterNet, fs, outputFile, mapping,
			func(leaf int) (*sweep.LeafData, error) {
				return &sweep.LeafData{Points: states[leaf].owned, Labels: states[leaf].labels}, nil
			},
			sweep.Options{IncludeNoise: cfg.IncludeNoise, Claims: claims},
		)
		return err
	})
	if err != nil {
		return fail(err)
	}
	// Sync-ordering invariant: a successful return acknowledges the
	// output file, so it must be durable before the sweep phase is
	// reported complete.
	if err := fs.Sync(outputFile); err != nil {
		return fail(fmt.Errorf("mrscan: syncing %s: %w", outputFile, err))
	}
	if err := fs.SyncDir("."); err != nil {
		return fail(fmt.Errorf("mrscan: syncing output dir: %w", err))
	}
	res.CompletedPhases = append(res.CompletedPhases, PhaseSweep)
	res.Times.Sweep = endPhase(sweepSpan, PhaseSweep, time.Since(sweepStart))
	runSpan.End()
	fs.SetTraceParent(nil)
	clusterNet.SetTraceParent(nil)

	res.NumClusters = len(final)
	res.Plan = plan
	res.Times.Total = time.Since(start)
	res.Times.PartitionRetries = retries.partition
	res.Times.ClusterRetries = retries.cluster
	res.Times.MergeRetries = retries.merge
	res.Times.SweepRetries = retries.sweep
	if partNet != nil {
		res.Stats.NetRecoveries += partNet.Recoveries()
	}
	res.Stats.NetRecoveries += clusterNet.Recoveries()
	res.Stats.FaultsInjected = cfg.FaultPlan.TotalFired()
	res.Stats.TotalPoints = totalPoints
	res.Stats.WrittenPoints = writtenPoints
	res.Stats.OutputPoints = sw.PointsWritten
	res.Stats.NoiseSkipped = sw.NoiseSkipped
	for _, st := range states {
		if st.gpuTime > res.Times.GPUDBSCAN {
			res.Times.GPUDBSCAN = st.gpuTime
		}
		res.Stats.DenseBoxes += st.stats.DenseBoxes
		res.Stats.DenseBoxPoints += st.stats.DenseBoxPoints
		res.Stats.Collisions += st.stats.Collisions
		res.Stats.SeedRounds += st.stats.SeedRounds
		if n := len(st.owned); n > res.Stats.MaxLeafPoints {
			res.Stats.MaxLeafPoints = n
		}
	}
	res.Stats.SimNow = fs.Clock().Now()
	res.Stats.Resources = fs.Clock().Snapshot()
	return res, nil
}

// RunPoints is a convenience wrapper: it provisions a fresh simulated file
// system, stores pts as the input file, runs the pipeline, and returns the
// result plus per-point global labels aligned with pts (noise = -1).
func RunPoints(pts []geom.Point, cfg Config) (*Result, []int, error) {
	return RunPointsContext(context.Background(), pts, cfg)
}

// RunPointsContext is RunPoints under a caller context: cancellation or
// deadline expiry aborts the run at the next phase or tree-hop boundary,
// exactly as RunContext. The partial result is discarded — callers that
// need the completed-phase list or durable checkpoints after an abort
// should drive RunContext against their own file system.
func RunPointsContext(ctx context.Context, pts []geom.Point, cfg Config) (*Result, []int, error) {
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, pts, cfg.HasWeight); err != nil {
		return nil, nil, err
	}
	cfg.IncludeNoise = true
	res, err := RunContext(ctx, fs, "input.mrsc", "output.mrsl", cfg)
	if err != nil {
		return nil, nil, err
	}
	labels, err := LabelsByID(fs, res.OutputFile, pts)
	if err != nil {
		return nil, nil, err
	}
	return res, labels, nil
}

// LabelsByID reads a sweep output file and aligns its cluster IDs with
// pts by point ID. Points absent from the output are labeled -1 (noise
// was omitted).
func LabelsByID(fs *lustre.FS, file string, pts []geom.Point) ([]int, error) {
	out, err := sweep.ReadOutput(fs, file)
	if err != nil {
		return nil, err
	}
	byID := make(map[uint64]int64, len(out))
	for _, lp := range out {
		if _, dup := byID[lp.Point.ID]; dup {
			return nil, fmt.Errorf("mrscan: point %d written twice", lp.Point.ID)
		}
		byID[lp.Point.ID] = lp.Cluster
	}
	labels := make([]int, len(pts))
	for i, p := range pts {
		if c, ok := byID[p.ID]; ok {
			labels[i] = int(c)
		} else {
			labels[i] = -1
		}
	}
	return labels, nil
}

// IsStateFile reports whether a file on the simulated FS is part of the
// pipeline's durable state: checkpoint snapshots plus the partition
// artifacts a file-mode resume re-reads. The CLI stages these files out
// to a real directory after a checkpointed run and back in before a
// resumed one, carrying the state across process restarts.
func IsStateFile(name string) bool {
	return checkpoint.IsCheckpointFile(name) || name == partitionFile || name == metadataFile ||
		strings.HasPrefix(name, partitionFile+".seg")
}
