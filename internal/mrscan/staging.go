package mrscan

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lustre"
)

// Checkpoint state staging: the pipeline's durable state (checkpoint
// snapshots plus the partition artifacts a file-mode resume re-reads)
// lives on the simulated parallel file system, which dies with the
// process. Long-lived callers — the CLI across invocations, the job
// server across drain/restart cycles — carry that state over a real OS
// directory: StageStateOut after a checkpointed (or aborted) run,
// StageStateIn before a resumed one.

// StageStateIn copies durable pipeline state (checkpoint snapshots and
// partition artifacts, per IsStateFile) from dir onto fs, so a resumed
// process sees what the previous one left behind. A missing dir is not
// an error — there is simply nothing to resume from.
func StageStateIn(fs *lustre.FS, dir string) error {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !IsStateFile(e.Name()) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		if _, err := fs.Create(e.Name()).WriteAt(b, 0); err != nil {
			return fmt.Errorf("staging %s in: %w", e.Name(), err)
		}
	}
	return nil
}

// StageStateOut copies durable pipeline state off fs into dir (created
// if missing). Call it even after a failed run — the checkpoints written
// before the failure are exactly what the next resumed run needs.
// Staged files are fsynced and the directory synced before returning:
// staging out is the last act before a process exits (drain, crash
// handoff), so "returned" must mean "on stable storage".
func StageStateOut(fs *lustre.FS, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range fs.List() {
		if !IsStateFile(name) {
			continue
		}
		h, err := fs.Open(name)
		if err != nil {
			return err
		}
		b := make([]byte, h.Size())
		if _, err := h.ReadAt(b, 0); err != nil && err != io.EOF {
			return err
		}
		if err := writeFileSync(filepath.Join(dir, name), b); err != nil {
			return err
		}
	}
	return syncOSDir(dir)
}

// writeFileSync is os.WriteFile plus an fsync before close.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncOSDir fsyncs a directory so freshly created names are durable.
func syncOSDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
