package mrscan

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/lustre"
	"repro/internal/ptio"
	"repro/internal/telemetry"
)

// TestParallelPipelines is the package-level shared-state audit for the
// job server: it runs several full pipelines concurrently in one
// process — the server's steady state — and requires each to produce
// exactly the labels its own sequential run produces. Any mutable
// package-level state (a shared registry, pool, or rand default) shows
// up here as a -race report or as cross-talk between the label sets.
func TestParallelPipelines(t *testing.T) {
	const pipelines = 6
	// Distinct datasets and configurations so cross-talk cannot hide
	// behind identical answers; some jobs exercise the retry and
	// checkpoint paths at the same time as clean runs.
	refs := make([][]int, pipelines)
	for i := range refs {
		pts := dataset.Twitter(1200+200*i, int64(100+i))
		cfg := Default(0.1, 20, 2+i%3)
		cfg.IncludeNoise = true
		_, labels, err := RunPoints(pts, cfg)
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		refs[i] = labels
	}

	var wg sync.WaitGroup
	errs := make([]error, pipelines)
	for i := 0; i < pipelines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pts := dataset.Twitter(1200+200*i, int64(100+i))
			cfg := Default(0.1, 20, 2+i%3)
			cfg.IncludeNoise = true
			cfg.Telemetry = telemetry.New(nil)
			cfg.Retry = RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}
			switch i % 3 {
			case 1:
				// A transient fault healed by retry, running concurrently
				// with clean pipelines.
				cfg.FaultPlan = faultinject.New(int64(i)).Arm(
					faultinject.GPULaunch, faultinject.Rule{Times: 1})
			case 2:
				cfg.Checkpoint = true
			}

			fs := lustre.New(lustre.Titan(), nil)
			if err := ptio.WriteDataset(fs.Create("input.mrsc"), pts, false); err != nil {
				errs[i] = fmt.Errorf("writing input: %w", err)
				return
			}
			res, err := RunContext(context.Background(), fs, "input.mrsc", "output.mrsl", cfg)
			if err != nil {
				errs[i] = err
				return
			}
			labels, err := LabelsByID(fs, res.OutputFile, pts)
			if err != nil {
				errs[i] = fmt.Errorf("reading labels: %w", err)
				return
			}
			if len(labels) != len(refs[i]) {
				errs[i] = fmt.Errorf("got %d labels, reference has %d", len(labels), len(refs[i]))
				return
			}
			for k := range labels {
				if labels[k] != refs[i][k] {
					errs[i] = fmt.Errorf("label %d = %d, sequential reference says %d — cross-pipeline interference",
						k, labels[k], refs[i][k])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("pipeline %d: %v", i, err)
		}
	}
}
