package mrscan

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/lustre"
	"repro/internal/ptio"
)

func aggConfig() Config {
	cfg := Default(0.1, 40, 4)
	cfg.IncludeNoise = true
	cfg.WriteAggregation = true
	return cfg
}

// TestWriteAggregationLabelIdentity is the tentpole's end-to-end
// acceptance criterion: the run's output must be byte-identical with
// write aggregation on or off — the log-structured layout and the
// pipelined cluster phase change I/O shape only, never labels.
func TestWriteAggregationLabelIdentity(t *testing.T) {
	base := Default(0.1, 40, 4)
	base.IncludeNoise = true
	refFS := stageInput(t)
	if _, err := Run(refFS, "input.mrsc", "output.mrsl", base); err != nil {
		t.Fatal(err)
	}
	want := fileBytes(t, refFS, "output.mrsl")

	for _, workers := range []int{0, 2} {
		fs := stageInput(t)
		cfg := aggConfig()
		cfg.ClusterWorkers = workers
		res, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := fileBytes(t, fs, "output.mrsl"); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: aggregated output differs from legacy (%d vs %d bytes)",
				workers, len(got), len(want))
		}
		// The aggregated run leaves segment shards, never the legacy
		// partition file.
		var segs int
		for _, name := range fs.List() {
			if name == partitionFile {
				t.Errorf("workers=%d: legacy partition file written in aggregated mode", workers)
			}
			if strings.HasPrefix(name, partitionFile+".seg") {
				segs++
			}
		}
		if segs == 0 {
			t.Fatalf("workers=%d: no segment files on the FS", workers)
		}
		if res.Times.PartitionWriteSim <= 0 {
			t.Errorf("workers=%d: PartitionWriteSim = %v, want positive", workers, res.Times.PartitionWriteSim)
		}
	}
}

// TestWriteAggregationSequentialLeaves: the pipelined gate must also
// hold when the cluster phase runs leaves one at a time (no scheduler) —
// loadPartition itself waits for durability.
func TestWriteAggregationSequentialLeaves(t *testing.T) {
	base := Default(0.1, 40, 4)
	base.IncludeNoise = true
	base.SequentialLeaves = true
	refFS := stageInput(t)
	if _, err := Run(refFS, "input.mrsc", "output.mrsl", base); err != nil {
		t.Fatal(err)
	}
	want := fileBytes(t, refFS, "output.mrsl")

	fs := stageInput(t)
	cfg := aggConfig()
	cfg.SequentialLeaves = true
	if _, err := Run(fs, "input.mrsc", "output.mrsl", cfg); err != nil {
		t.Fatal(err)
	}
	if got := fileBytes(t, fs, "output.mrsl"); !bytes.Equal(got, want) {
		t.Fatal("sequential aggregated output differs from legacy")
	}
}

// TestWriteAggregationOverlapsPhases reads the trace: the partition
// span must end after the cluster span begins — the two phases actually
// ran concurrently. The partition layout arrives before any data is
// written, so with enough leaves the cluster phase reliably opens while
// stage 3 is still appending.
func TestWriteAggregationOverlapsPhases(t *testing.T) {
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, dataset.Twitter(20000, 20), false); err != nil {
		t.Fatal(err)
	}
	cfg := Default(0.1, 40, 16)
	cfg.IncludeNoise = true
	cfg.WriteAggregation = true
	cfg.PartitionLeaves = 4
	res, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
	if err != nil {
		t.Fatal(err)
	}
	parts := res.Telemetry.Trace.FindSpans("phase:" + PhasePartition)
	clusters := res.Telemetry.Trace.FindSpans("phase:" + PhaseCluster)
	if len(parts) != 1 || len(clusters) != 1 {
		t.Fatalf("trace holds %d partition and %d cluster spans, want 1 each", len(parts), len(clusters))
	}
	if parts[0].EndWall <= clusters[0].StartWall {
		t.Errorf("partition span ended at %v before cluster span began at %v — phases did not overlap",
			parts[0].EndWall, clusters[0].StartWall)
	}
	// The reported order is still pipeline order.
	if got := res.CompletedPhases; got[0] != PhasePartition || got[1] != PhaseCluster {
		t.Errorf("CompletedPhases = %v, want partition before cluster", got)
	}
}

// TestWriteAggregationKillThenResume: the durable prefix over segment
// files behaves exactly like the legacy layout's — a run killed at the
// merge phase resumes from the partition and cluster checkpoints (the
// partition checkpoint's segment index re-reads the shards) and produces
// byte-identical output.
func TestWriteAggregationKillThenResume(t *testing.T) {
	refFS := stageInput(t)
	ref := aggConfig()
	ref.Checkpoint = true
	if _, err := Run(refFS, "input.mrsc", "output.mrsl", ref); err != nil {
		t.Fatal(err)
	}
	want := fileBytes(t, refFS, "output.mrsl")

	fs := stageInput(t)
	cfg := aggConfig()
	cfg.Checkpoint = true
	cfg.FaultPlan = faultinject.New(0).
		Arm(PhaseSite(PhaseMerge), faultinject.Rule{Times: 1, Fatal: true})
	res, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
	if err == nil {
		t.Fatal("fatal fault at merge: run succeeded, want death")
	}
	if got := res.CompletedPhases; len(got) != 2 || got[0] != PhasePartition || got[1] != PhaseCluster {
		t.Fatalf("partial CompletedPhases = %v, want [partition cluster]", got)
	}

	cfg2 := aggConfig()
	cfg2.Checkpoint = true
	cfg2.Resume = true
	res2, err := Run(fs, "input.mrsc", "output.mrsl", cfg2)
	if err != nil {
		t.Fatalf("resume over segment files failed: %v", err)
	}
	if got := res2.RestoredPhases; len(got) != 2 || got[0] != PhasePartition || got[1] != PhaseCluster {
		t.Fatalf("RestoredPhases = %v, want [partition cluster]", got)
	}
	if got := fileBytes(t, fs, "output.mrsl"); !bytes.Equal(got, want) {
		t.Fatal("resumed aggregated output differs from uninterrupted run")
	}
}

// TestWriteAggregationPartitionFaultFails: a partition-phase fault in
// the pipelined path must poison the gate and surface as a partition
// phase error, not hang the cluster workers.
func TestWriteAggregationPartitionFaultFails(t *testing.T) {
	fs := stageInput(t)
	cfg := aggConfig()
	cfg.FaultPlan = faultinject.New(0).
		Arm(faultinject.LustreIO, faultinject.Rule{After: 5})
	res, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
	if err == nil {
		t.Fatal("run succeeded under a persistent lustre fault")
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	for _, ph := range res.CompletedPhases {
		if ph == PhaseSweep {
			t.Fatal("sweep completed under a persistent lustre fault")
		}
	}
}

// TestWriteAggregationRetryFallsBack: with a retry policy the pipeline
// keeps the clean phase barrier (no overlap) but still uses the
// aggregated writer — and a transient partition fault is retried to
// success.
func TestWriteAggregationRetryFallsBack(t *testing.T) {
	fs := stageInput(t)
	cfg := aggConfig()
	cfg.Retry = RetryPolicy{MaxAttempts: 3}
	cfg.FaultPlan = faultinject.New(0).
		Arm(PhaseSite(PhasePartition), faultinject.Rule{Times: 1})
	res, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Times.PartitionRetries != 1 {
		t.Errorf("PartitionRetries = %d, want 1", res.Times.PartitionRetries)
	}
	var segs int
	for _, name := range fs.List() {
		if strings.HasPrefix(name, partitionFile+".seg") {
			segs++
		}
	}
	if segs == 0 {
		t.Error("retry fallback abandoned the aggregated writer")
	}
}

func TestIsStateFileSegments(t *testing.T) {
	if !IsStateFile(partitionFile + ".seg0") {
		t.Error("segment shard not recognized as pipeline state")
	}
	if !IsStateFile(partitionFile + ".seg12") {
		t.Error("double-digit segment shard not recognized as pipeline state")
	}
	if IsStateFile("output.mrsl") {
		t.Error("output file misclassified as pipeline state")
	}
}

// TestGatedSchedulerWaitsForAdmission: leaves run only after their
// partition is marked ready, in any order the gate chooses.
func TestGatedSchedulerWaitsForAdmission(t *testing.T) {
	const n = 8
	gate := newPartitionGate(n)
	var admitted [n]atomic.Bool
	done := make(chan struct{})
	var results []int
	var err error
	go func() {
		defer close(done)
		results, err = runLeavesGated(context.Background(), n, 3, nil, gate,
			func(w, leaf int) (int, error) {
				if !admitted[leaf].Load() {
					t.Errorf("leaf %d ran before its partition was admitted", leaf)
				}
				return leaf * 2, nil
			})
	}()
	// Admit in reverse order, one at a time.
	for j := n - 1; j >= 0; j-- {
		admitted[j].Store(true)
		gate.markReady(j)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	for leaf, got := range results {
		if got != leaf*2 {
			t.Errorf("results[%d] = %d, want %d", leaf, got, leaf*2)
		}
	}
}

// TestGatedSchedulerPoisonAborts: a gate failure releases blocked
// workers with the partition error instead of deadlocking them.
func TestGatedSchedulerPoisonAborts(t *testing.T) {
	boom := errors.New("partition exploded")
	gate := newPartitionGate(4)
	gate.markReady(0)
	started := make(chan struct{}, 4)
	errCh := make(chan error, 1)
	go func() {
		_, err := runLeavesGated(context.Background(), 4, 2, nil, gate,
			func(w, leaf int) (int, error) {
				started <- struct{}{}
				return 0, nil
			})
		errCh <- err
	}()
	<-started // leaf 0 ran; the rest stay gated
	gate.fail(boom)
	if err := <-errCh; !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the gate's poison error", err)
	}
}

// TestPartitionGateWait covers the loader-side wait: ready partitions
// admit immediately, failure poisons every waiter, and context
// cancellation unblocks.
func TestPartitionGateWait(t *testing.T) {
	gate := newPartitionGate(3)
	gate.markReady(1)
	if err := gate.wait(context.Background(), 1); err != nil {
		t.Fatalf("ready partition: wait = %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- gate.wait(context.Background(), 2) }()
	boom := errors.New("nope")
	gate.fail(boom)
	if err := <-waitErr; !errors.Is(err, boom) {
		t.Fatalf("poisoned wait = %v, want %v", err, boom)
	}
	// Ready-before-failure still admits: the data is durable.
	if err := gate.wait(context.Background(), 1); err != nil {
		t.Fatalf("ready-then-poisoned partition: wait = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gate2 := newPartitionGate(1)
	if err := gate2.wait(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait = %v, want context.Canceled", err)
	}
}
