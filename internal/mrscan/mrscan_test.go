package mrscan

import (
	"math/rand"
	"testing"

	"errors"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/gpusim"
	"repro/internal/quality"
)

// runAndScore executes the pipeline and the reference DBSCAN on pts and
// returns the DBDC quality score plus both results.
func runAndScore(t *testing.T, pts []geom.Point, cfg Config) (float64, *Result, *dbscan.Result) {
	t.Helper()
	res, labels, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dbscan.Cluster(pts, dbscan.Params{Eps: cfg.Eps, MinPts: cfg.MinPts}, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	score, err := quality.Score(ref.Labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	return score, res, ref
}

func TestEndToEndTwitterQuality(t *testing.T) {
	// The Figure 11 property: Mr. Scan's output quality versus
	// single-CPU DBSCAN "did not get lower than a .995 quality score".
	pts := dataset.Twitter(20000, 1)
	for _, leaves := range []int{1, 2, 4, 8} {
		cfg := Default(0.1, 40, leaves)
		score, res, ref := runAndScore(t, pts, cfg)
		if score < 0.995 {
			t.Errorf("leaves=%d: quality = %.4f, want >= 0.995", leaves, score)
		}
		if res.NumClusters != ref.NumClusters {
			t.Logf("leaves=%d: NumClusters = %d vs reference %d (score %.4f)",
				leaves, res.NumClusters, ref.NumClusters, score)
		}
	}
}

func TestEndToEndAcrossMinPts(t *testing.T) {
	// The paper's four MinPts values (scaled to the dataset size; 4000
	// exceeds any cluster in 15k points, so use 4..400).
	pts := dataset.Twitter(15000, 2)
	for _, minPts := range []int{4, 40, 400} {
		cfg := Default(0.1, minPts, 4)
		score, _, _ := runAndScore(t, pts, cfg)
		if score < 0.995 {
			t.Errorf("MinPts=%d: quality = %.4f, want >= 0.995", minPts, score)
		}
	}
}

func TestEndToEndSDSS(t *testing.T) {
	// §5.2 parameters: Eps = 0.00015, MinPts = 5.
	pts := dataset.SDSS(12000, 3)
	cfg := Default(0.00015, 5, 4)
	score, res, ref := runAndScore(t, pts, cfg)
	if score < 0.995 {
		t.Errorf("quality = %.4f, want >= 0.995", score)
	}
	if res.NumClusters < ref.NumClusters*9/10 {
		t.Errorf("NumClusters = %d, reference %d", res.NumClusters, ref.NumClusters)
	}
}

func TestEndToEndDenseBoxOff(t *testing.T) {
	pts := dataset.Twitter(10000, 4)
	cfg := Default(0.1, 40, 4)
	cfg.DenseBox = false
	score, _, _ := runAndScore(t, pts, cfg)
	if score < 0.995 {
		t.Errorf("quality without dense box = %.4f, want >= 0.995", score)
	}
}

func TestEndToEndShadowReps(t *testing.T) {
	// The §3.1.3 optimization preserves local quality but "may cause the
	// merge algorithm to occasionally miss the opportunity to combine
	// clusters" — expect slightly lower but still high quality.
	pts := dataset.Twitter(10000, 5)
	cfg := Default(0.1, 40, 4)
	cfg.ShadowReps = true
	score, _, _ := runAndScore(t, pts, cfg)
	if score < 0.95 {
		t.Errorf("quality with shadow reps = %.4f, want >= 0.95", score)
	}
}

func TestEndToEndUniform(t *testing.T) {
	// PDSDBSCAN's evaluation dataset shape: uniformly random points.
	pts := dataset.Uniform(15000, 6, geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10})
	cfg := Default(0.1, 10, 8)
	score, _, _ := runAndScore(t, pts, cfg)
	if score < 0.995 {
		t.Errorf("quality on uniform data = %.4f, want >= 0.995", score)
	}
}

// TestBorderReclaimImprovesMarginalDensity targets the paper's residual
// error class: at core-margin density, border points whose only core
// neighbors sit in the owner's shadow get written as noise. Border
// reclaim (an extension beyond the paper) must recover them.
func TestBorderReclaimImprovesMarginalDensity(t *testing.T) {
	pts := dataset.Uniform(8000, 33, geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5})
	base := Default(0.1, 8, 9)
	baseScore, _, _ := runAndScore(t, pts, base)

	reclaim := Default(0.1, 8, 9)
	reclaim.ReclaimBorders = true
	reclaimScore, _, _ := runAndScore(t, pts, reclaim)

	if reclaimScore < baseScore {
		t.Errorf("reclaim lowered quality: %.4f vs %.4f", reclaimScore, baseScore)
	}
	if reclaimScore < 0.998 {
		t.Errorf("quality with border reclaim = %.4f, want >= 0.998", reclaimScore)
	}
	t.Logf("quality: paper-faithful %.4f, with border reclaim %.4f", baseScore, reclaimScore)
}

func TestOutputConsistency(t *testing.T) {
	pts := dataset.Twitter(8000, 7)
	cfg := Default(0.1, 40, 4)
	res, labels, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every input point appears exactly once (IncludeNoise was set by
	// RunPoints), labels are dense-bounded.
	if res.Stats.OutputPoints != int64(len(pts)) {
		t.Errorf("OutputPoints = %d, want %d", res.Stats.OutputPoints, len(pts))
	}
	for i, l := range labels {
		if l >= res.NumClusters {
			t.Fatalf("point %d labeled %d, only %d clusters", i, l, res.NumClusters)
		}
	}
	if res.Stats.TotalPoints != int64(len(pts)) {
		t.Errorf("TotalPoints = %d", res.Stats.TotalPoints)
	}
	if res.Stats.WrittenPoints < res.Stats.TotalPoints {
		t.Errorf("WrittenPoints = %d < input %d", res.Stats.WrittenPoints, res.Stats.TotalPoints)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// Global cluster structure must be stable across runs (modulo border
	// points, whose assignment may race; cluster count must not change).
	pts := dataset.Twitter(8000, 8)
	cfg := Default(0.1, 40, 4)
	res1, _, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.NumClusters != res2.NumClusters {
		t.Errorf("NumClusters differs across runs: %d vs %d", res1.NumClusters, res2.NumClusters)
	}
}

// TestConcurrentIndependentRuns checks that whole pipelines share no
// hidden global state: several runs on different datasets execute
// concurrently and each must match its own sequential result.
func TestConcurrentIndependentRuns(t *testing.T) {
	type outcome struct {
		clusters int
		err      error
	}
	const runs = 4
	want := make([]int, runs)
	data := make([][]geom.Point, runs)
	for r := 0; r < runs; r++ {
		data[r] = dataset.Twitter(4000, int64(100+r))
		res, _, err := RunPoints(data[r], Default(0.1, 40, 2))
		if err != nil {
			t.Fatal(err)
		}
		want[r] = res.NumClusters
	}
	results := make([]outcome, runs)
	done := make(chan int, runs)
	for r := 0; r < runs; r++ {
		go func(r int) {
			res, _, err := RunPoints(data[r], Default(0.1, 40, 2))
			if err == nil {
				results[r] = outcome{clusters: res.NumClusters}
			} else {
				results[r] = outcome{err: err}
			}
			done <- r
		}(r)
	}
	for i := 0; i < runs; i++ {
		<-done
	}
	for r := 0; r < runs; r++ {
		if results[r].err != nil {
			t.Fatalf("run %d failed: %v", r, results[r].err)
		}
		if results[r].clusters != want[r] {
			t.Errorf("run %d found %d clusters concurrently, %d sequentially",
				r, results[r].clusters, want[r])
		}
	}
}

// TestPartitionWriteDominatesRead reproduces the §5.1.1 in-phase split:
// at MinPts=400 the paper measured the partition write stage at 65.2% of
// the phase vs 29.9% for the read — because the write is many small
// random seeks while the read streams. The simulated Lustre costs must
// show the same ordering.
func TestPartitionWriteDominatesRead(t *testing.T) {
	pts := dataset.Twitter(20000, 25)
	cfg := Default(0.1, 400, 32)
	cfg.PartitionLeaves = 4
	res, _, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	read, write := res.Times.PartitionReadSim, res.Times.PartitionWriteSim
	if read <= 0 || write <= 0 {
		t.Fatalf("sim stage costs must be positive: read=%v write=%v", read, write)
	}
	if write <= read {
		t.Errorf("write stage (%v) must dominate read stage (%v) — the paper's 65%%/30%% split", write, read)
	}
	// Direct transfer bypasses the file system entirely.
	direct := Default(0.1, 400, 32)
	direct.DirectPartitions = true
	dres, _, err := RunPoints(pts, direct)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Times.PartitionWriteSim != 0 {
		t.Errorf("direct transfer charged %v of partition write I/O", dres.Times.PartitionWriteSim)
	}
}

func TestPhaseTimesPopulated(t *testing.T) {
	pts := dataset.Twitter(5000, 9)
	res, _, err := RunPoints(pts, Default(0.1, 40, 2))
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Times
	if tm.Partition <= 0 || tm.Cluster <= 0 || tm.Merge <= 0 || tm.Sweep <= 0 {
		t.Errorf("phase times must be positive: %+v", tm)
	}
	if tm.GPUDBSCAN <= 0 || tm.GPUDBSCAN > tm.Cluster {
		t.Errorf("GPU time %v must be positive and within cluster time %v", tm.GPUDBSCAN, tm.Cluster)
	}
	if tm.Total < tm.Partition+tm.Cluster+tm.Merge+tm.Sweep {
		t.Errorf("total %v less than phase sum", tm.Total)
	}
	if res.Stats.SimNow <= 0 {
		t.Error("simulated clock must have advanced")
	}
}

// TestGPUMemoryLimit reproduces the constraint behind the paper's weak
// scaling load: "each compute node has ... an NVIDIA Tesla K20
// accelerator with 6 GB of memory" bounded the partition a leaf could
// hold (§4: memory limits made single-node comparison impossible). A
// partition that does not fit device memory must fail loudly.
func TestGPUMemoryLimit(t *testing.T) {
	pts := dataset.Twitter(20000, 23)
	cfg := Default(0.1, 40, 1) // everything on one leaf
	cfg.GPU.MemBytes = 64 << 10
	_, _, err := RunPoints(pts, cfg)
	if err == nil {
		t.Fatal("run must fail when the partition exceeds device memory")
	}
	if !errors.Is(err, gpusim.ErrOutOfMemory) {
		t.Errorf("error %v does not wrap gpusim.ErrOutOfMemory", err)
	}
	// Spreading the same data over more leaves makes it fit — the
	// paper's remedy.
	cfg = Default(0.1, 40, 8)
	cfg.GPU.MemBytes = 4 << 20
	if _, _, err := RunPoints(pts, cfg); err != nil {
		t.Fatalf("8-leaf run must fit in 4 MiB per device: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	pts := dataset.Twitter(100, 10)
	if _, _, err := RunPoints(pts, Config{Eps: 0, MinPts: 4, Leaves: 2}); err == nil {
		t.Error("Eps=0 must fail")
	}
	if _, _, err := RunPoints(pts, Config{Eps: 0.1, MinPts: 0, Leaves: 2}); err == nil {
		t.Error("MinPts=0 must fail")
	}
	if _, _, err := RunPoints(pts, Config{Eps: 0.1, MinPts: 4, Leaves: 0}); err == nil {
		t.Error("Leaves=0 must fail")
	}
}

func TestMoreLeavesThanData(t *testing.T) {
	// Degenerate: 32 leaves for 200 points — most partitions are empty
	// or tiny; the pipeline must still be correct.
	pts := dataset.Twitter(200, 11)
	cfg := Default(0.1, 4, 32)
	score, _, _ := runAndScore(t, pts, cfg)
	if score < 0.995 {
		t.Errorf("quality = %.4f, want >= 0.995", score)
	}
}

func TestSinglePointAndEmptyClusters(t *testing.T) {
	pts := []geom.Point{{ID: 1, X: 0, Y: 0}}
	res, labels, err := RunPoints(pts, Default(0.1, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || labels[0] != -1 {
		t.Errorf("single point must be noise: %d clusters, label %d", res.NumClusters, labels[0])
	}
}

func TestDirectPartitionsEndToEnd(t *testing.T) {
	// The §6 future-work path: partitions travel the network instead of
	// Lustre. Same clustering quality, no partition-file writes.
	pts := dataset.Twitter(10000, 13)
	cfg := Default(0.1, 40, 4)
	cfg.DirectPartitions = true
	score, res, ref := runAndScore(t, pts, cfg)
	if score < 0.995 {
		t.Errorf("quality with direct partitions = %.4f, want >= 0.995", score)
	}
	if res.NumClusters != ref.NumClusters {
		t.Logf("NumClusters = %d vs reference %d", res.NumClusters, ref.NumClusters)
	}
	// Both paths must agree on the global clustering.
	cfg2 := Default(0.1, 40, 4)
	res2, _, err := RunPoints(pts, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != res2.NumClusters {
		t.Errorf("direct path found %d clusters, file path %d", res.NumClusters, res2.NumClusters)
	}
}

func TestSequentialLeavesEquivalent(t *testing.T) {
	pts := dataset.Twitter(8000, 14)
	cfg := Default(0.1, 40, 4)
	cfg.SequentialLeaves = true
	score, res, _ := runAndScore(t, pts, cfg)
	if score < 0.995 {
		t.Errorf("quality with sequential leaves = %.4f, want >= 0.995", score)
	}
	par, _, err := RunPoints(pts, Default(0.1, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != par.NumClusters {
		t.Errorf("sequential found %d clusters, parallel %d", res.NumClusters, par.NumClusters)
	}
}

// TestDeepTreeProgressiveMerge forces a 3-level tree (fanout 4, 16
// leaves: root → 4 internal processes → 16 leaves) so cluster summaries
// are progressively merged at two internal levels before reaching the
// root — the §3.3.2 path that flat test topologies never exercise.
func TestDeepTreeProgressiveMerge(t *testing.T) {
	pts := dataset.Twitter(16000, 17)
	deep := Default(0.1, 40, 16)
	deep.Fanout = 4
	score, res, _ := runAndScore(t, pts, deep)
	if score < 0.995 {
		t.Errorf("deep-tree quality = %.4f, want >= 0.995", score)
	}
	// Same clustering as the flat topology.
	flat, _, err := RunPoints(pts, Default(0.1, 40, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != flat.NumClusters {
		t.Errorf("deep tree found %d clusters, flat tree %d", res.NumClusters, flat.NumClusters)
	}
}

// TestExplicitTopologySpec pins the cluster tree with an MRNet-style
// fanout-product specification ("arbitrary topology", §1).
func TestExplicitTopologySpec(t *testing.T) {
	pts := dataset.Twitter(8000, 24)
	cfg := Default(0.1, 40, 12)
	cfg.Topology = "3x4" // root → 3 internal → 4 leaves each
	score, _, _ := runAndScore(t, pts, cfg)
	if score < 0.995 {
		t.Errorf("quality with explicit topology = %.4f", score)
	}
	bad := Default(0.1, 40, 12)
	bad.Topology = "2x2" // 4 leaves ≠ 12
	if _, _, err := RunPoints(pts, bad); err == nil {
		t.Error("mismatched topology/leaves must fail")
	}
	malformed := Default(0.1, 40, 12)
	malformed.Topology = "3xbananas"
	if _, _, err := RunPoints(pts, malformed); err == nil {
		t.Error("malformed topology must fail")
	}
}

// TestBinaryTreeExtreme uses fanout 2 over 32 leaves (6 levels) to stress
// repeated summary re-reduction: representatives stay bounded and merges
// stay correct through many Combine rounds.
func TestBinaryTreeExtreme(t *testing.T) {
	pts := dataset.Twitter(8000, 18)
	cfg := Default(0.1, 40, 32)
	cfg.Fanout = 2
	score, _, _ := runAndScore(t, pts, cfg)
	if score < 0.995 {
		t.Errorf("binary-tree quality = %.4f, want >= 0.995", score)
	}
}

func TestHotCellSplittingEndToEnd(t *testing.T) {
	// §5.1.2 future work: subdividing extremely dense cells. Build a
	// dataset dominated by one Eps cell, verify quality holds and the
	// hot cell spreads over multiple leaves.
	rng := rand.New(rand.NewSource(15))
	pts := make([]geom.Point, 12000)
	for i := range pts {
		if i < 9000 {
			pts[i] = geom.Point{ID: uint64(i), X: rng.Float64() * 0.1, Y: rng.Float64() * 0.1}
		} else {
			pts[i] = geom.Point{ID: uint64(i), X: rng.Float64()*4 - 2, Y: rng.Float64()*4 - 2}
		}
	}
	flatCfg := Default(0.1, 4, 8)
	flat, _, err := RunPoints(pts, flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Stats.MaxLeafPoints < 9000 {
		t.Fatalf("without splitting one leaf must own the whole hot cell, max = %d", flat.Stats.MaxLeafPoints)
	}
	splitCfg := Default(0.1, 4, 8)
	splitCfg.HotCellThreshold = 1500
	score, res, _ := runAndScore(t, pts, splitCfg)
	if score < 0.995 {
		t.Errorf("quality with hot-cell splitting = %.4f, want >= 0.995", score)
	}
	if res.Stats.MaxLeafPoints >= flat.Stats.MaxLeafPoints {
		t.Errorf("splitting must shrink the largest leaf: %d vs %d",
			res.Stats.MaxLeafPoints, flat.Stats.MaxLeafPoints)
	}
	if res.NumClusters != flat.NumClusters {
		t.Errorf("cluster count changed under splitting: %d vs %d", res.NumClusters, flat.NumClusters)
	}
}

func TestHotCellSplitWithShadowRepsBoundsLeafInput(t *testing.T) {
	// Splitting alone shrinks the owned load but every tile still
	// shadows the whole dense cell; adding ShadowReps bounds each shadow
	// region to 8 representatives, so tile leaves get genuinely small
	// inputs. This combination is what lifts the strong-scaling plateau.
	rng := rand.New(rand.NewSource(22))
	pts := make([]geom.Point, 10000)
	for i := range pts {
		if i < 8000 {
			pts[i] = geom.Point{ID: uint64(i), X: rng.Float64() * 0.1, Y: rng.Float64() * 0.1}
		} else {
			pts[i] = geom.Point{ID: uint64(i), X: rng.Float64()*4 - 2, Y: rng.Float64()*4 - 2}
		}
	}
	splitOnly := Default(0.1, 4, 8)
	splitOnly.HotCellThreshold = 1200
	resSplit, _, err := RunPoints(pts, splitOnly)
	if err != nil {
		t.Fatal(err)
	}
	both := Default(0.1, 4, 8)
	both.HotCellThreshold = 1200
	both.ShadowReps = true
	resBoth, _, err := RunPoints(pts, both)
	if err != nil {
		t.Fatal(err)
	}
	// Shadow volume must collapse: written points with reps must be far
	// below split-only (which duplicates the dense cell into every tile
	// leaf's shadow).
	if resBoth.Stats.WrittenPoints >= resSplit.Stats.WrittenPoints/2 {
		t.Errorf("shadow reps wrote %d points, split-only wrote %d — expected a large reduction",
			resBoth.Stats.WrittenPoints, resSplit.Stats.WrittenPoints)
	}
	// The clustering must stay coherent (the dense cell is one cluster).
	if resBoth.NumClusters != resSplit.NumClusters {
		t.Errorf("cluster count differs: %d with reps vs %d without",
			resBoth.NumClusters, resSplit.NumClusters)
	}
}

func TestHotCellSplittingTwitterQuality(t *testing.T) {
	// Splitting must stay correct on realistic data too.
	pts := dataset.Twitter(15000, 16)
	cfg := Default(0.1, 40, 8)
	cfg.HotCellThreshold = 500
	score, _, _ := runAndScore(t, pts, cfg)
	if score < 0.995 {
		t.Errorf("quality = %.4f, want >= 0.995", score)
	}
}

// TestMergeOverTCPEndToEnd runs the merge phase over real loopback TCP
// sockets (gob-encoded summaries, filters at every internal node) and
// must produce the identical global clustering.
func TestMergeOverTCPEndToEnd(t *testing.T) {
	pts := dataset.Twitter(10000, 19)
	tcpCfg := Default(0.1, 40, 8)
	tcpCfg.MergeOverTCP = true
	tcpCfg.Fanout = 3 // force internal TCP filter nodes
	score, res, _ := runAndScore(t, pts, tcpCfg)
	if score < 0.995 {
		t.Errorf("TCP-merge quality = %.4f, want >= 0.995", score)
	}
	inProc, _, err := RunPoints(pts, Default(0.1, 40, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != inProc.NumClusters {
		t.Errorf("TCP merge found %d clusters, in-process %d", res.NumClusters, inProc.NumClusters)
	}
}

func TestCUDADClustModeEndToEnd(t *testing.T) {
	pts := dataset.Twitter(6000, 12)
	cfg := Default(0.1, 40, 2)
	cfg.Mode = 1 // gdbscan.ModeCUDADClust
	cfg.DenseBox = false
	score, _, _ := runAndScore(t, pts, cfg)
	if score < 0.995 {
		t.Errorf("quality in CUDA-DClust mode = %.4f, want >= 0.995", score)
	}
}
