package mrscan

import (
	"context"
	"errors"

	"fmt"
	"repro/internal/dataset"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestScheduledRunsEveryLeafOnce(t *testing.T) {
	const n = 37
	var counts [n]int32
	results, err := runLeavesScheduled(context.Background(), n, 4, nil,
		func(w, leaf int) (int, error) {
			atomic.AddInt32(&counts[leaf], 1)
			return leaf * 10, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for leaf := 0; leaf < n; leaf++ {
		if counts[leaf] != 1 {
			t.Errorf("leaf %d ran %d times", leaf, counts[leaf])
		}
		if results[leaf] != leaf*10 {
			t.Errorf("results[%d] = %d, want %d", leaf, results[leaf], leaf*10)
		}
	}
}

func TestScheduledLargestFirstOnSingleWorker(t *testing.T) {
	// With one worker the execution order is exactly the sort order:
	// descending partition size.
	sizes := []int64{10, 500, 30, 999, 1}
	var order []int
	_, err := runLeavesScheduled(context.Background(), len(sizes), 1, sizes,
		func(w, leaf int) (struct{}, error) {
			order = append(order, leaf)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 1, 2, 0, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v (largest partition first)", order, want)
		}
	}
}

func TestScheduledStealsFromLoadedWorker(t *testing.T) {
	// Two workers, four leaves. Worker 0's first leaf blocks until the
	// other three leaves are done — which can only happen if worker 1
	// steals worker 0's second queued leaf.
	sizes := []int64{400, 300, 200, 100} // dealt: w0={0,2}, w1={1,3}
	release := make(chan struct{})
	var done int32
	var mu sync.Mutex
	workerOf := map[int]int{}
	_, err := runLeavesScheduled(context.Background(), 4, 2, sizes,
		func(w, leaf int) (struct{}, error) {
			mu.Lock()
			workerOf[leaf] = w
			mu.Unlock()
			if leaf == 0 {
				<-release
				return struct{}{}, nil
			}
			if atomic.AddInt32(&done, 1) == 3 {
				close(release)
			}
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if workerOf[2] != 1 {
		t.Errorf("leaf 2 ran on worker %d, want stolen by worker 1", workerOf[2])
	}
}

func TestScheduledPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	_, err := runLeavesScheduled(context.Background(), 20, 2, nil,
		func(w, leaf int) (struct{}, error) {
			atomic.AddInt32(&ran, 1)
			if leaf == 3 {
				return struct{}{}, boom
			}
			return struct{}{}, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if want := fmt.Sprintf("leaf %d", 3); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the failing leaf", err)
	}
}

func TestScheduledHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := runLeavesScheduled(ctx, 1000, 1, nil,
		func(w, leaf int) (struct{}, error) {
			atomic.AddInt32(&ran, 1)
			time.Sleep(time.Millisecond)
			return struct{}{}, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Errorf("all %d leaves ran despite cancellation", n)
	}
}

func TestScheduledDegenerateShapes(t *testing.T) {
	// Zero leaves.
	res, err := runLeavesScheduled(context.Background(), 0, 4, nil,
		func(w, leaf int) (int, error) { return 0, nil })
	if err != nil || len(res) != 0 {
		t.Errorf("0 leaves: res=%v err=%v", res, err)
	}
	// More workers than leaves clamps.
	res, err = runLeavesScheduled(context.Background(), 2, 16, []int64{1, 2},
		func(w, leaf int) (int, error) {
			if w >= 2 {
				t.Errorf("worker index %d with only 2 leaves", w)
			}
			return leaf, nil
		})
	if err != nil || len(res) != 2 {
		t.Fatalf("clamped run: res=%v err=%v", res, err)
	}
	// Mismatched sizes slice is an explicit error.
	if _, err := runLeavesScheduled(context.Background(), 3, 2, []int64{1},
		func(w, leaf int) (int, error) { return 0, nil }); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

// TestClusterWorkersBoundedMatchesUnbounded runs the full pipeline with
// a worker pool smaller than the leaf count — devices and workspaces
// shared across leaves, largest-first scheduling, stealing — and checks
// the clustering is exactly as good as the default one-worker-per-leaf
// shape.
func TestClusterWorkersBoundedMatchesUnbounded(t *testing.T) {
	pts := dataset.Twitter(12000, 7)
	base := Default(0.1, 40, 6)
	_, resA, _ := runAndScore(t, pts, base)

	bounded := base
	bounded.ClusterWorkers = 2
	score, resB, _ := runAndScore(t, pts, bounded)
	if score < 0.995 {
		t.Errorf("bounded workers: quality = %.4f, want >= 0.995", score)
	}
	if resB.NumClusters != resA.NumClusters {
		t.Errorf("bounded workers found %d clusters, unbounded %d", resB.NumClusters, resA.NumClusters)
	}
}
