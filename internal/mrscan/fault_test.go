package mrscan

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/lustre"
	"repro/internal/ptio"
)

// errOST mimics a Lustre OST eviction surfacing as an I/O error.
var errOST = errors.New("OST evicted")

// faultRun stages a dataset, arms fault injection after `after` I/O
// operations, and runs the pipeline.
func faultRun(t *testing.T, after int64, cfg Config) error {
	t.Helper()
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, dataset.Twitter(3000, 20), false); err != nil {
		t.Fatal(err)
	}
	fs.InjectFault(after, errOST)
	_, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
	return err
}

// TestFaultInjectionSweep walks the fault point through the run: every
// failure must surface as a wrapped error naming a phase — never a
// panic, hang, or silent success with corrupt output.
func TestFaultInjectionAcrossPhases(t *testing.T) {
	cfg := Default(0.1, 40, 4)
	// Find the fault-free operation count first.
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, dataset.Twitter(3000, 20), false); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(fs, "input.mrsc", "output.mrsl", cfg); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	totalOps := st.ReadOps + st.WriteOps

	// Inject at several points through the run (early, each quartile).
	for _, frac := range []int64{0, 1, 2, 3} {
		after := totalOps * frac / 4
		err := faultRun(t, after, cfg)
		if err == nil {
			t.Fatalf("fault after %d ops: run succeeded, want error", after)
		}
		if !errors.Is(err, errOST) {
			t.Fatalf("fault after %d ops: error %v does not wrap the injected fault", after, err)
		}
	}
}

func TestFaultInjectionDisarmed(t *testing.T) {
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, dataset.Twitter(1000, 21), false); err != nil {
		t.Fatal(err)
	}
	fs.InjectFault(0, errOST)
	fs.InjectFault(0, nil) // disarm
	if _, err := Run(fs, "input.mrsc", "output.mrsl", Default(0.1, 40, 2)); err != nil {
		t.Fatalf("disarmed fault still fired: %v", err)
	}
}

func TestFaultDirectPartitionsStillReadsInput(t *testing.T) {
	// Direct transfer avoids partition writes but must still surface
	// input read errors.
	cfg := Default(0.1, 40, 2)
	cfg.DirectPartitions = true
	err := faultRun(t, 0, cfg)
	if !errors.Is(err, errOST) {
		t.Fatalf("error %v does not wrap the injected fault", err)
	}
}
