package mrscan

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/lustre"
	"repro/internal/ptio"
)

// errOST mimics a Lustre OST eviction surfacing as an I/O error.
var errOST = errors.New("OST evicted")

// faultRun stages a dataset and runs the pipeline under the given fault
// plan.
func faultRun(t *testing.T, plan *faultinject.Plan, cfg Config) error {
	t.Helper()
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, dataset.Twitter(3000, 20), false); err != nil {
		t.Fatal(err)
	}
	cfg.FaultPlan = plan
	_, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
	return err
}

// ostAfter arms a permanent OST fault after `after` I/O operations.
func ostAfter(after int64) *faultinject.Plan {
	return faultinject.New(0).
		Arm(faultinject.LustreIO, faultinject.Rule{After: after, Err: errOST})
}

// TestFaultInjectionAcrossPhases walks the fault point through the run:
// every failure must surface as a wrapped error naming a phase — never a
// panic, hang, or silent success with corrupt output.
func TestFaultInjectionAcrossPhases(t *testing.T) {
	cfg := Default(0.1, 40, 4)
	// Find the fault-free operation count first.
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, dataset.Twitter(3000, 20), false); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(fs, "input.mrsc", "output.mrsl", cfg); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	totalOps := st.ReadOps + st.WriteOps

	// Inject at several points through the run (early, each quartile).
	for _, frac := range []int64{0, 1, 2, 3} {
		after := totalOps * frac / 4
		err := faultRun(t, ostAfter(after), cfg)
		if err == nil {
			t.Fatalf("fault after %d ops: run succeeded, want error", after)
		}
		if !errors.Is(err, errOST) {
			t.Fatalf("fault after %d ops: error %v does not wrap the injected fault", after, err)
		}
		if !strings.Contains(err.Error(), "phase") {
			t.Fatalf("fault after %d ops: error %v does not name the failing phase", after, err)
		}
	}
}

// TestUnrecoverableFaultSurvivesRetries: a permanent fault defeats the
// retry policy and still surfaces, naming the phase.
func TestUnrecoverableFaultSurvivesRetries(t *testing.T) {
	cfg := Default(0.1, 40, 2)
	cfg.Retry = RetryPolicy{MaxAttempts: 3}
	err := faultRun(t, ostAfter(0), cfg)
	if !errors.Is(err, errOST) {
		t.Fatalf("error %v does not wrap the injected fault", err)
	}
	if !strings.Contains(err.Error(), "partition phase") {
		t.Fatalf("error %v does not name the partition phase", err)
	}
}

func TestFaultInjectionDisarmed(t *testing.T) {
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, dataset.Twitter(1000, 21), false); err != nil {
		t.Fatal(err)
	}
	fs.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.LustreIO, faultinject.Rule{Err: errOST}))
	fs.SetFaultPlan(nil) // disarm
	if _, err := Run(fs, "input.mrsc", "output.mrsl", Default(0.1, 40, 2)); err != nil {
		t.Fatalf("disarmed fault still fired: %v", err)
	}
}

func TestFaultDirectPartitionsStillReadsInput(t *testing.T) {
	// Direct transfer avoids partition writes but must still surface
	// input read errors.
	cfg := Default(0.1, 40, 2)
	cfg.DirectPartitions = true
	err := faultRun(t, ostAfter(0), cfg)
	if !errors.Is(err, errOST) {
		t.Fatalf("error %v does not wrap the injected fault", err)
	}
}

// TestTransientLustreFaultRecovered: a bounded OST fault (one failure,
// then healthy) is absorbed by the phase retry policy and the final
// labels are identical to a fault-free run.
func TestTransientLustreFaultRecovered(t *testing.T) {
	pts := dataset.Twitter(3000, 22)
	cfg := Default(0.1, 40, 4)
	_, want, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Retry = RetryPolicy{MaxAttempts: 2}
	cfg.FaultPlan = faultinject.New(0).
		Arm(faultinject.LustreIO, faultinject.Rule{After: 5, Times: 1, Err: errOST})
	res, got, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatalf("transient fault not absorbed by retry: %v", err)
	}
	if res.Times.Retries() == 0 {
		t.Error("Retries() = 0, want at least one phase retry")
	}
	if res.Stats.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", res.Stats.FaultsInjected)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d: recovery changed the clustering", i, got[i], want[i])
		}
	}
}

// TestNodeCrashRecoveryEquivalence: an overlay internal node crashes
// mid-run; MRNet-style re-parenting absorbs it with no phase retry and
// the labels are identical to a fault-free run.
func TestNodeCrashRecoveryEquivalence(t *testing.T) {
	pts := dataset.Twitter(3000, 23)
	cfg := Default(0.1, 40, 16)
	cfg.Fanout = 4 // deeper tree: 16 leaves with internal nodes to kill
	_, want, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.FaultPlan = faultinject.New(0).
		Arm(faultinject.MRNetNode, faultinject.Rule{Times: 1})
	res, got, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatalf("node crash not recovered: %v", err)
	}
	if res.Stats.NetRecoveries != 1 {
		t.Errorf("NetRecoveries = %d, want 1", res.Stats.NetRecoveries)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d: recovery changed the clustering", i, got[i], want[i])
		}
	}
}

// TestGPUFaultNamesClusterPhase: a permanent kernel-launch fault
// surfaces as a wrapped error naming the cluster phase; a transient one
// is absorbed by the retry policy.
func TestGPUFaultNamesClusterPhase(t *testing.T) {
	cfg := Default(0.1, 40, 2)
	err := faultRun(t, faultinject.New(0).
		Arm(faultinject.GPULaunch, faultinject.Rule{}), cfg)
	if err == nil {
		t.Fatal("permanent GPU fault: run succeeded, want error")
	}
	if !strings.Contains(err.Error(), "cluster phase") {
		t.Errorf("error %v does not name the cluster phase", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error %v does not wrap the injected fault", err)
	}

	cfg.Retry = RetryPolicy{MaxAttempts: 2}
	if err := faultRun(t, faultinject.New(0).
		Arm(faultinject.GPULaunch, faultinject.Rule{Times: 1}), cfg); err != nil {
		t.Errorf("transient GPU fault not absorbed by retry: %v", err)
	}
}

// TestTCPMergeKillMidFrameRecovers: a process killed mid-frame during
// the TCP merge tears the overlay; the merge-phase retry rebuilds it
// from the durable partition outputs and the run completes correctly.
func TestTCPMergeKillMidFrameRecovers(t *testing.T) {
	pts := dataset.Twitter(5000, 21)
	cfg := Default(0.1, 40, 4)
	cfg.MergeOverTCP = true
	cfg.Retry = RetryPolicy{MaxAttempts: 3}

	_, want, err := RunPoints(pts, Default(0.1, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultPlan = faultinject.New(0).
		Arm(faultinject.MRNetFrame, faultinject.Rule{Times: 1})
	res, got, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatalf("mid-frame kill not recovered by merge retry: %v", err)
	}
	if res.Times.MergeRetries == 0 {
		t.Error("MergeRetries = 0: the torn frame should have cost one merge attempt")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d: recovery changed the clustering", i, got[i], want[i])
		}
	}
}
