package mrscan

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/merge"
	"repro/internal/mrnet"
	"repro/internal/telemetry"
)

// mergeOverTCP runs the §3.3.2 progressive merge over a tree of real TCP
// connections (mrnet.NewTCP) instead of the in-process overlay: leaf
// summaries are gob-encoded onto the wire, every internal node decodes
// its children's payloads, combines them with the same merge.Combine
// filter, and re-encodes the reduced summaries upstream. Demonstrates
// that the merge protocol is transport-independent — the property that
// lets MRNet instantiate the same tree across a physical cluster.
// The fault plan and hub (both may be nil) give the frame layer its
// injection site and integrity counters; a frame torn by an injected
// sender death fails the Reduce, and the merge phase's retry rebuilds
// the whole overlay from the surviving summaries.
func mergeOverTCP(g grid.Grid, eps float64, leaves, fanout int, plan *faultinject.Plan, hub *telemetry.Hub, summaries func(leaf int) []*merge.Summary) ([]*merge.Summary, error) {
	encode := func(sums []*merge.Summary) ([]byte, error) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(sums); err != nil {
			return nil, fmt.Errorf("mrscan: encoding summaries: %w", err)
		}
		return buf.Bytes(), nil
	}
	decode := func(p []byte) ([]*merge.Summary, error) {
		var sums []*merge.Summary
		if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&sums); err != nil {
			return nil, fmt.Errorf("mrscan: decoding summaries: %w", err)
		}
		return sums, nil
	}
	net, err := mrnet.NewTCP(leaves, fanout, mrnet.TCPHandlers{
		Leaf: func(leaf int, _ []byte) ([]byte, error) {
			return encode(summaries(leaf))
		},
		Filter: func(_ *mrnet.Node, in [][]byte) ([]byte, error) {
			groups := make([][]*merge.Summary, len(in))
			for i, p := range in {
				sums, err := decode(p)
				if err != nil {
					return nil, err
				}
				groups[i] = sums
			}
			return encode(merge.Combine(g, eps, groups))
		},
	})
	if err != nil {
		return nil, err
	}
	defer net.Close()
	net.SetFaultPlan(plan)
	net.SetTelemetry(hub)
	out, err := net.Reduce(nil)
	if err != nil {
		return nil, err
	}
	return decode(out)
}
