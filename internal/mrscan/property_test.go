package mrscan

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/quality"
)

// TestPipelinePropertyRandomConfigs fuzzes the whole pipeline over random
// topology and feature combinations: every configuration must stay above
// the paper's quality floor against the sequential reference.
func TestPipelinePropertyRandomConfigs(t *testing.T) {
	pts := dataset.Twitter(3000, 50)
	ref, err := dbscan.Cluster(pts, dbscan.Params{Eps: 0.1, MinPts: 10}, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	f := func(leavesRaw, fanoutRaw uint8, dense, shadowReps, direct, reclaim, seq bool) bool {
		cfg := Default(0.1, 10, int(leavesRaw)%12+1)
		cfg.Fanout = int(fanoutRaw)%6 + 2
		cfg.DenseBox = dense
		cfg.ShadowReps = shadowReps
		cfg.DirectPartitions = direct
		cfg.ReclaimBorders = reclaim
		cfg.SequentialLeaves = seq
		_, labels, err := RunPoints(pts, cfg)
		if err != nil {
			t.Logf("config %+v failed: %v", cfg, err)
			return false
		}
		score, err := quality.Score(ref.Labels, labels)
		if err != nil {
			return false
		}
		// ShadowReps legitimately trades a little quality for I/O.
		floor := 0.995
		if shadowReps {
			floor = 0.95
		}
		if score < floor {
			t.Logf("leaves=%d fanout=%d dense=%v reps=%v direct=%v reclaim=%v: score=%.4f",
				cfg.Leaves, cfg.Fanout, dense, shadowReps, direct, reclaim, score)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPipelineMoons runs the canonical non-convex workload through the
// full distributed pipeline.
func TestPipelineMoons(t *testing.T) {
	pts := dataset.Moons(4000, 51, 0.04)
	cfg := Default(0.15, 8, 4)
	score, res, ref := runAndScore(t, pts, cfg)
	if ref.NumClusters != 2 {
		t.Fatalf("reference found %d clusters, want 2", ref.NumClusters)
	}
	if res.NumClusters != 2 {
		t.Errorf("pipeline found %d clusters, want 2 moons", res.NumClusters)
	}
	if score < 0.995 {
		t.Errorf("quality = %.4f", score)
	}
}

// TestSoakHalfMillion pushes a realistic volume through the full pipeline
// (run with -short to skip).
func TestSoakHalfMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	pts := dataset.Twitter(500_000, 52)
	cfg := Default(0.1, 40, 16)
	res, labels, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OutputPoints != int64(len(pts)) {
		t.Errorf("OutputPoints = %d, want %d", res.Stats.OutputPoints, len(pts))
	}
	if res.NumClusters < 50 {
		t.Errorf("NumClusters = %d; expected many metros at this volume", res.NumClusters)
	}
	seen := make(map[int]bool)
	for _, l := range labels {
		if l >= res.NumClusters {
			t.Fatalf("label %d out of range", l)
		}
		if l >= 0 {
			seen[l] = true
		}
	}
	if len(seen) != res.NumClusters {
		t.Errorf("output uses %d cluster IDs, result says %d", len(seen), res.NumClusters)
	}
	t.Logf("500k points, 16 leaves: %d clusters, total %v (gpu %v), sim %v",
		res.NumClusters, res.Times.Total, res.Times.GPUDBSCAN, res.Stats.SimNow)
	for _, r := range res.Stats.Resources {
		if r.Busy > 0 && (r.Name == "lustre/seek" || r.Name == "mrnet/startup") {
			t.Logf("resource %v", r)
		}
	}
}

// TestResourcesSnapshotPopulated checks the per-resource simulated-time
// breakdown is exposed on results.
func TestResourcesSnapshotPopulated(t *testing.T) {
	pts := dataset.Twitter(2000, 53)
	res, _, err := RunPoints(pts, Default(0.1, 40, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"lustre/seek": false, "mrnet/startup": false}
	gpuSeen := false
	for _, r := range res.Stats.Resources {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
		if r.Busy > 0 && strings.HasPrefix(r.Name, "gpu") {
			gpuSeen = true
		}
	}
	for name, ok := range want {
		if !ok {
			t.Errorf("resource %q missing from snapshot %v", name, res.Stats.Resources)
		}
	}
	if !gpuSeen {
		t.Error("no GPU resource in snapshot")
	}
}
