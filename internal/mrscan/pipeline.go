package mrscan

import (
	"context"
	"sync"
)

// partitionGate coordinates the partition→cluster pipeline: the
// aggregated partition writer marks partitions ready as their segments
// become durable (partition.DistOptions.OnPartitionDurable), and the
// cluster phase's scheduler and loaders admit a leaf only once its
// partition is ready. A partition-phase failure poisons the gate so every
// waiter aborts instead of blocking forever.
type partitionGate struct {
	mu    sync.Mutex
	ready []bool
	err   error
	// change is closed and replaced on every state transition; waiters
	// grab the current channel before inspecting state so no transition
	// is missed.
	change chan struct{}
}

func newPartitionGate(n int) *partitionGate {
	return &partitionGate{ready: make([]bool, n), change: make(chan struct{})}
}

// bump wakes every waiter. Callers hold mu.
func (g *partitionGate) bump() {
	close(g.change)
	g.change = make(chan struct{})
}

// changed returns the channel the next state transition closes.
func (g *partitionGate) changed() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.change
}

// markReady admits partition j. Idempotent; safe from concurrent leaf
// goroutines.
func (g *partitionGate) markReady(j int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ready[j] || g.err != nil {
		return
	}
	g.ready[j] = true
	g.bump()
}

// markAllReady admits every partition — the safety net once the whole
// partition phase has returned successfully.
func (g *partitionGate) markAllReady() {
	g.mu.Lock()
	defer g.mu.Unlock()
	changed := false
	for j := range g.ready {
		if !g.ready[j] {
			g.ready[j] = true
			changed = true
		}
	}
	if changed && g.err == nil {
		g.bump()
	}
}

// fail poisons the gate with the partition phase's error. First error
// wins.
func (g *partitionGate) fail(err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return
	}
	g.err = err
	g.bump()
}

// failure returns the poisoning error, if any.
func (g *partitionGate) failure() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// isReady reports whether partition j is admitted (non-blocking).
func (g *partitionGate) isReady(j int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ready[j]
}

// wait blocks until partition j is ready, the gate is poisoned, or ctx
// ends. A partition that became durable before the failure is still
// admitted — its data is intact.
func (g *partitionGate) wait(ctx context.Context, j int) error {
	for {
		g.mu.Lock()
		ready, err, ch := g.ready[j], g.err, g.change
		g.mu.Unlock()
		if ready {
			return nil
		}
		if err != nil {
			return err
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
