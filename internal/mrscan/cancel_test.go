package mrscan

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/lustre"
	"repro/internal/ptio"
	"repro/internal/telemetry"
)

// TestCancelMidClusterReleasesDeviceBuffers is the cleanup regression
// test for aborted jobs: a job server cancels work all the time
// (deadlines, drains), and a cancelled run must leave every simulated
// device's accounting at baseline — all allocations either freed or
// parked in the reuse pool (gpusim_alloc_bytes == gpusim_pool_bytes),
// never held by a leaked in-use buffer. The run is parked mid-cluster
// by a straggler rule on the GPU launch site, cancelled, and audited.
func TestCancelMidClusterReleasesDeviceBuffers(t *testing.T) {
	const leaves = 4
	pts := dataset.Twitter(3000, 31)
	hub := telemetry.New(nil)
	cfg := Default(0.1, 20, leaves)
	cfg.IncludeNoise = true
	cfg.Telemetry = hub
	// Every kernel launch straggles: the cluster phase is reliably still
	// in flight when the cancel lands, whichever leaf it is on.
	cfg.FaultPlan = faultinject.New(1).Arm(faultinject.GPULaunch,
		faultinject.Rule{Times: 1000, Delay: 20 * time.Millisecond})

	fs := lustre.New(lustre.Titan(), nil)
	if err := ptio.WriteDataset(fs.Create("input.mrsc"), pts, false); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, fs, "input.mrsc", "output.mrsl", cfg)
		done <- err
	}()

	// Wait until some device has allocated — the cluster phase is in
	// flight — so the cancel strikes mid-cluster, while the straggler
	// rule holds its kernel launches open.
	allocated := func() bool {
		for w := 0; w < leaves; w++ {
			device := fmt.Sprintf("gpu%04d", w)
			if hub.Gauge("gpusim_alloc_bytes", "device", device).Value() > 0 {
				return true
			}
		}
		return false
	}
	for start := time.Now(); ; {
		if allocated() {
			break
		}
		if time.Since(start) > 30*time.Second {
			t.Fatal("cluster phase never allocated a device buffer")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-done
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled in the chain", err)
	}

	// Device accounting must be at baseline on every device the phase
	// provisioned: resident bytes all parked in the pool, zero held by
	// in-use buffers a cancelled leaf forgot to release.
	touched := 0
	for w := 0; w < leaves; w++ {
		device := fmt.Sprintf("gpu%04d", w)
		alloc := hub.Gauge("gpusim_alloc_bytes", "device", device).Value()
		pool := hub.Gauge("gpusim_pool_bytes", "device", device).Value()
		if alloc != pool {
			t.Errorf("device %s: alloc=%d pool=%d — %d bytes leaked in-use after cancel",
				device, alloc, pool, alloc-pool)
		}
		if alloc > 0 {
			touched++
		}
	}
	if touched == 0 {
		t.Fatal("no device allocated anything — the cancel landed before the cluster phase ran")
	}
}
