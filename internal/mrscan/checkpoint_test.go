package mrscan

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/lustre"
	"repro/internal/ptio"
)

// stageInput provisions a fresh simulated FS holding the standard test
// dataset as input.mrsc.
func stageInput(t *testing.T) *lustre.FS {
	t.Helper()
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, dataset.Twitter(3000, 20), false); err != nil {
		t.Fatal(err)
	}
	return fs
}

func fileBytes(t *testing.T, fs *lustre.FS, name string) []byte {
	t.Helper()
	h, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, h.Size())
	if _, err := h.ReadAt(b, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return b
}

func ckptConfig() Config {
	cfg := Default(0.1, 40, 4)
	cfg.IncludeNoise = true
	cfg.Checkpoint = true
	return cfg
}

// TestCleanRunsDeterministic: two independent fault-free runs produce
// byte-identical output — the precondition for every resume test below
// (and for the acceptance criterion itself).
func TestCleanRunsDeterministic(t *testing.T) {
	var outs [][]byte
	for i := 0; i < 2; i++ {
		fs := stageInput(t)
		res, err := Run(fs, "input.mrsc", "output.mrsl", ckptConfig())
		if err != nil {
			t.Fatal(err)
		}
		if want := []string{PhasePartition, PhaseCluster, PhaseMerge, PhaseSweep}; len(res.CompletedPhases) != 4 {
			t.Fatalf("CompletedPhases = %v, want %v", res.CompletedPhases, want)
		}
		outs = append(outs, fileBytes(t, fs, "output.mrsl"))
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("two clean runs differ byte-for-byte")
	}
}

// TestKillThenResumeByteIdentical is the tentpole scenario: a fatal
// fault kills the run at the merge phase (after the cluster checkpoint
// is durable), a second run with -resume restores the finished phases
// and completes, and the output is byte-identical to an uninterrupted
// run's.
func TestKillThenResumeByteIdentical(t *testing.T) {
	// Reference: uninterrupted run.
	refFS := stageInput(t)
	if _, err := Run(refFS, "input.mrsc", "output.mrsl", ckptConfig()); err != nil {
		t.Fatal(err)
	}
	want := fileBytes(t, refFS, "output.mrsl")

	// Run 1: killed entering the merge phase. Retries must not absorb a
	// fatal fault — the process is dead, not erroring.
	fs := stageInput(t)
	cfg := ckptConfig()
	cfg.Retry = RetryPolicy{MaxAttempts: 3}
	cfg.FaultPlan = faultinject.New(0).
		Arm(PhaseSite(PhaseMerge), faultinject.Rule{Times: 1, Fatal: true})
	res, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
	if err == nil {
		t.Fatal("fatal fault at merge: run succeeded, want death")
	}
	if !faultinject.IsFatal(err) {
		t.Fatalf("error %v is not fatal", err)
	}
	if !strings.Contains(err.Error(), "merge phase") {
		t.Fatalf("error %v does not name the merge phase", err)
	}
	if res == nil {
		t.Fatal("killed run returned no partial result")
	}
	if got := res.CompletedPhases; len(got) != 2 || got[0] != PhasePartition || got[1] != PhaseCluster {
		t.Fatalf("partial CompletedPhases = %v, want [partition cluster]", got)
	}
	if res.Times.MergeRetries != 0 {
		t.Fatalf("fatal fault was retried %d times", res.Times.MergeRetries)
	}

	// Run 2: resume on the same FS (the durable state the crash left).
	cfg2 := ckptConfig()
	cfg2.Resume = true
	res2, err := Run(fs, "input.mrsc", "output.mrsl", cfg2)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if got := res2.RestoredPhases; len(got) != 2 || got[0] != PhasePartition || got[1] != PhaseCluster {
		t.Fatalf("RestoredPhases = %v, want [partition cluster]", got)
	}
	if len(res2.CompletedPhases) != 4 {
		t.Fatalf("resumed CompletedPhases = %v, want all four", res2.CompletedPhases)
	}
	if got := fileBytes(t, fs, "output.mrsl"); !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	// A restored run has no partition plan — only the snapshot outputs.
	if res2.Plan != nil {
		t.Fatal("restored run reports a partition plan")
	}
}

// TestCorruptCheckpointFallsBack bit-flips the cluster snapshot left by
// a completed run: resume must detect the damage via the checksum, fall
// back to the partition snapshot, re-execute cluster and merge, and
// still produce byte-identical output.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	fs := stageInput(t)
	if _, err := Run(fs, "input.mrsc", "output.mrsl", ckptConfig()); err != nil {
		t.Fatal(err)
	}
	want := fileBytes(t, fs, "output.mrsl")

	name := "ckpt-" + PhaseCluster + ".ckpt"
	h, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, err := h.ReadAt(b, h.Size()/2); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := h.WriteAt(b, h.Size()/2); err != nil {
		t.Fatal(err)
	}

	cfg := ckptConfig()
	cfg.Resume = true
	res, err := Run(fs, "input.mrsc", "output2.mrsl", cfg)
	if err != nil {
		t.Fatalf("resume over corrupt checkpoint failed: %v", err)
	}
	if got := res.RestoredPhases; len(got) != 1 || got[0] != PhasePartition {
		t.Fatalf("RestoredPhases = %v, want [partition] (corrupt cluster snapshot must not restore)", got)
	}
	if got := fileBytes(t, fs, "output2.mrsl"); !bytes.Equal(got, want) {
		t.Fatal("output after corrupt-checkpoint fallback differs")
	}
}

// TestResumeAfterCompletedRun: with all snapshots intact only the sweep
// re-executes, and the RunID fingerprint keeps snapshots from a
// different configuration out.
func TestResumeAfterCompletedRun(t *testing.T) {
	fs := stageInput(t)
	if _, err := Run(fs, "input.mrsc", "output.mrsl", ckptConfig()); err != nil {
		t.Fatal(err)
	}
	want := fileBytes(t, fs, "output.mrsl")

	cfg := ckptConfig()
	cfg.Resume = true
	res, err := Run(fs, "input.mrsc", "output2.mrsl", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.RestoredPhases; len(got) != 3 {
		t.Fatalf("RestoredPhases = %v, want all three snapshotted phases", got)
	}
	if got := fileBytes(t, fs, "output2.mrsl"); !bytes.Equal(got, want) {
		t.Fatal("fully-restored run output differs")
	}

	// Different MinPts → different fingerprint → snapshots ignored.
	cfg2 := ckptConfig()
	cfg2.Resume = true
	cfg2.MinPts = 35
	res2, err := Run(fs, "input.mrsc", "output3.mrsl", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.RestoredPhases) != 0 {
		t.Fatalf("config change restored %v, want nothing", res2.RestoredPhases)
	}
}

// TestDeadlineAbortsNamingPhase: an already-expired deadline aborts
// before the first phase does any work; the error wraps
// context.DeadlineExceeded and names the in-flight phase, and the
// partial result lists no completed phases.
func TestDeadlineAbortsNamingPhase(t *testing.T) {
	fs := stageInput(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := RunContext(ctx, fs, "input.mrsc", "output.mrsl", ckptConfig())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "partition phase") {
		t.Fatalf("error %v does not name the partition phase", err)
	}
	if res == nil || len(res.CompletedPhases) != 0 {
		t.Fatalf("partial result = %+v, want zero completed phases", res)
	}
}

// TestCancelMidRun cancels concurrently with the run: whichever phase
// is in flight, the run must abort with a wrapped context error naming
// a phase and report a consistent partial result.
func TestCancelMidRun(t *testing.T) {
	fs := stageInput(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	res, err := RunContext(ctx, fs, "input.mrsc", "output.mrsl", ckptConfig())
	if err == nil {
		// The run may finish before the cancel lands on a fast machine;
		// that is not a failure of the abort path.
		t.Skip("run finished before cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "phase") {
		t.Fatalf("error %v does not name a phase", err)
	}
	if res == nil || len(res.CompletedPhases) >= 4 {
		t.Fatalf("partial result inconsistent with cancellation: %+v", res)
	}
	// Completed phases are durable: a resume picks up from them.
	cfg := ckptConfig()
	cfg.Resume = true
	res2, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
	if err != nil {
		t.Fatalf("resume after cancellation failed: %v", err)
	}
	if len(res2.RestoredPhases) != len(res.CompletedPhases) {
		t.Fatalf("resume restored %v, cancelled run completed %v",
			res2.RestoredPhases, res.CompletedPhases)
	}
}

// TestCheckpointFilesOnFS sanity-checks what a checkpointed run leaves
// on the file system — the files the CLI stages across restarts.
func TestCheckpointFilesOnFS(t *testing.T) {
	fs := stageInput(t)
	if _, err := Run(fs, "input.mrsc", "output.mrsl", ckptConfig()); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, name := range fs.List() {
		if checkpoint.IsCheckpointFile(name) {
			found++
		}
	}
	// Three phase snapshots plus the manifest.
	if found != 4 {
		t.Fatalf("%d checkpoint files on FS, want 4", found)
	}
}
