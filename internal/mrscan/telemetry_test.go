package mrscan

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/lustre"
	"repro/internal/ptio"
	"repro/internal/telemetry"
)

// telemetryRun stages a dataset and runs the pipeline with a run-level
// hub installed, returning the hub and result.
func telemetryRun(t *testing.T, cfg Config, plan *faultinject.Plan) (*telemetry.Hub, *Result, error) {
	t.Helper()
	fs := lustre.New(lustre.Titan(), nil)
	in := fs.Create("input.mrsc")
	if err := ptio.WriteDataset(in, dataset.Twitter(3000, 20), false); err != nil {
		t.Fatal(err)
	}
	hub := telemetry.New(fs.Clock())
	cfg.Telemetry = hub
	cfg.FaultPlan = plan
	res, err := Run(fs, "input.mrsc", "output.mrsl", cfg)
	return hub, res, err
}

// TestTelemetryTraceNesting: a clean run's trace has the pipeline's
// span hierarchy — run → phase → leaf → kernel — with every phase
// carrying both wall and simulated intervals.
func TestTelemetryTraceNesting(t *testing.T) {
	hub, res, err := telemetryRun(t, Default(0.1, 40, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != hub {
		t.Fatal("Result.Telemetry does not expose the configured hub")
	}

	spans := hub.Trace.Spans()
	byID := make(map[int64]telemetry.SpanData, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}

	runs := hub.Trace.FindSpans("mrscan.run")
	if len(runs) != 1 {
		t.Fatalf("got %d mrscan.run root spans, want 1", len(runs))
	}
	root := runs[0]
	if root.Parent != 0 {
		t.Fatalf("mrscan.run has parent %d, want root", root.Parent)
	}

	for _, phase := range []string{PhasePartition, PhaseCluster, PhaseMerge, PhaseSweep} {
		ps := hub.Trace.FindSpans("phase:" + phase)
		if len(ps) != 1 {
			t.Fatalf("got %d phase:%s spans, want 1", len(ps), phase)
		}
		if ps[0].Parent != root.ID {
			t.Errorf("phase:%s parent = %d, want mrscan.run (%d)", phase, ps[0].Parent, root.ID)
		}
		// Sim time is the clock's max-over-resources reading, so a phase
		// dominated by an earlier phase's resource can show a zero delta —
		// but never a negative one.
		if ps[0].WallDuration() < 0 || ps[0].SimDuration() < 0 {
			t.Errorf("phase:%s has wall=%v sim=%v, want non-negative intervals",
				phase, ps[0].WallDuration(), ps[0].SimDuration())
		}
	}
	// The partition phase drives the PFS from sim-time zero: its sim
	// interval must be positive.
	if ps := hub.Trace.FindSpans("phase:" + PhasePartition); ps[0].SimDuration() <= 0 {
		t.Errorf("phase:partition sim = %v, want > 0", ps[0].SimDuration())
	}
	clusterSpan := hub.Trace.FindSpans("phase:" + PhaseCluster)[0]

	leaves := hub.Trace.FindSpans("leaf")
	if len(leaves) != 4 {
		t.Fatalf("got %d leaf spans, want one per leaf (4)", len(leaves))
	}
	leafIDs := make(map[int64]bool)
	for _, l := range leaves {
		if l.Parent != clusterSpan.ID {
			t.Errorf("leaf span %d parent = %d, want phase:cluster (%d)", l.ID, l.Parent, clusterSpan.ID)
		}
		leafIDs[l.ID] = true
	}

	kernels := 0
	for _, s := range spans {
		if strings.HasPrefix(s.Name, "kernel:") {
			kernels++
			if !leafIDs[s.Parent] {
				t.Errorf("kernel span %q parent = %d, not a leaf span", s.Name, s.Parent)
			}
		}
	}
	if kernels == 0 {
		t.Fatal("no kernel spans recorded under leaves")
	}

	// The substrates fan out under the same trace: PFS I/O and overlay
	// hops must appear somewhere below the root.
	for _, name := range []string{"lustre.read", "lustre.write", "mrnet.hop"} {
		if len(hub.Trace.FindSpans(name)) == 0 {
			t.Errorf("no %s spans recorded", name)
		}
	}
}

// TestTelemetryReportMatchesTimings: the JSON report's per-phase wall
// totals are the same numbers Result.Times reports (both are derived
// from the phase spans).
func TestTelemetryReportMatchesTimings(t *testing.T) {
	hub, res, err := telemetryRun(t, Default(0.1, 40, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := telemetry.BuildReport(hub)
	want := map[string]time.Duration{
		"phase:" + PhasePartition: res.Times.Partition,
		"phase:" + PhaseCluster:   res.Times.Cluster,
		"phase:" + PhaseMerge:     res.Times.Merge,
		"phase:" + PhaseSweep:     res.Times.Sweep,
	}
	if len(rep.Phases) != len(want) {
		t.Fatalf("report has %d phase rows, want %d: %+v", len(rep.Phases), len(want), rep.Phases)
	}
	for name, d := range want {
		row, ok := rep.Phase(name)
		if !ok {
			t.Errorf("report missing phase row %q", name)
			continue
		}
		if got := time.Duration(row.WallNs); got != d {
			t.Errorf("report %s wall = %v, Result.Times says %v", name, got, d)
		}
	}

	// The report must round-trip as JSON.
	var buf bytes.Buffer
	if err := telemetry.WriteReport(&buf, hub); err != nil {
		t.Fatal(err)
	}
	var round telemetry.Report
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(round.Phases) != len(rep.Phases) {
		t.Fatalf("round-tripped report has %d phases, want %d", len(round.Phases), len(rep.Phases))
	}
}

// TestTelemetryFaultEventsInTrace: a run that absorbs a transient fault
// via the phase retry policy leaves both the injection and the retry
// visible in the trace and counters.
func TestTelemetryFaultEventsInTrace(t *testing.T) {
	cfg := Default(0.1, 40, 4)
	cfg.Retry = RetryPolicy{MaxAttempts: 2}
	plan := faultinject.New(0).
		Arm(faultinject.LustreIO, faultinject.Rule{After: 5, Times: 1, Err: errOST})
	hub, res, err := telemetryRun(t, cfg, plan)
	if err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
	if res.Stats.FaultsInjected == 0 {
		t.Fatal("no fault was injected; the plan never fired")
	}

	faults := hub.Trace.FindEvents("fault.injected")
	if len(faults) == 0 {
		t.Fatal("trace has no fault.injected events")
	}
	var site string
	for _, a := range faults[0].Attrs {
		if a.Key == "site" {
			site = a.Value
		}
	}
	if !strings.HasPrefix(site, "lustre.") {
		t.Errorf("fault.injected site = %q, want a lustre site", site)
	}

	retries := hub.Trace.FindEvents("mrscan.retry")
	if len(retries) == 0 {
		t.Fatal("trace has no mrscan.retry events")
	}
	if res.Times.Retries() == 0 {
		t.Fatal("Result.Times reports no retries despite retry events")
	}
	if got := hub.Counter("mrscan_phase_retries_total", "phase", PhasePartition).Value(); got == 0 {
		t.Error("mrscan_phase_retries_total{phase=partition} = 0, want > 0")
	}

	// The Chrome export of a faulty run must still be valid JSON with
	// the events present as instants.
	var buf bytes.Buffer
	if err := hub.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "fault.injected" {
			found = true
			break
		}
	}
	if !found {
		t.Error("chrome trace does not contain the fault.injected instant")
	}
}

// TestTelemetryBackwardCompatible: with no hub configured the pipeline
// behaves exactly as before — timings populated, identical labels.
func TestTelemetryBackwardCompatible(t *testing.T) {
	pts := dataset.Twitter(2000, 23)
	cfg := Default(0.1, 40, 4)
	_, labels, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.New(nil)
	cfg.Telemetry = hub
	_, labels2, err := RunPoints(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(labels2) {
		t.Fatalf("label count changed with telemetry on: %d vs %d", len(labels), len(labels2))
	}
	for i := range labels {
		if labels[i] != labels2[i] {
			t.Fatalf("label[%d] differs with telemetry on: %d vs %d", i, labels[i], labels2[i])
		}
	}
}
