package gpusim

import (
	"errors"
	"testing"

	"repro/internal/telemetry"
)

func TestPoolRecyclesBuffer(t *testing.T) {
	d := New(testConfig(), nil)
	b1, err := d.AllocPooled("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	b1.Release()
	if got := d.Stats().AllocBytes; got != 1000 {
		t.Errorf("AllocBytes with pooled buffer = %d, want 1000 (still resident)", got)
	}
	// A smaller request recycles the parked buffer.
	b2, err := d.AllocPooled("b", 500)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b1 {
		t.Error("second AllocPooled did not recycle the released buffer")
	}
	if b2.Size() != 500 {
		t.Errorf("recycled Size = %d, want the leased 500, not capacity", b2.Size())
	}
	st := d.Stats()
	if st.PoolHits != 1 || st.PoolMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.PoolHits, st.PoolMisses)
	}
	// Transfers on a recycled lease work and charge the leased size.
	if err := d.CopyToDevice(b2, b2.Size()); err != nil {
		t.Fatal(err)
	}
	// Freeing a recycled buffer returns the full capacity.
	b2.Free()
	if got := d.Stats().AllocBytes; got != 0 {
		t.Errorf("AllocBytes after free = %d, want 0 (capacity returned)", got)
	}
}

func TestPoolBestFit(t *testing.T) {
	d := New(testConfig(), nil)
	small, _ := d.AllocPooled("small", 100)
	big, _ := d.AllocPooled("big", 10_000)
	small.Release()
	big.Release()
	got, err := d.AllocPooled("want-small", 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != small {
		t.Error("AllocPooled picked the larger buffer over the best fit")
	}
	// The larger parked buffer is still available for a larger request.
	got2, err := d.AllocPooled("want-big", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != big {
		t.Error("AllocPooled did not recycle the remaining larger buffer")
	}
}

func TestPoolTooSmallIsMiss(t *testing.T) {
	d := New(testConfig(), nil)
	b, _ := d.AllocPooled("a", 100)
	b.Release()
	b2, err := d.AllocPooled("bigger", 200)
	if err != nil {
		t.Fatal(err)
	}
	if b2 == b {
		t.Error("recycled a buffer smaller than the request")
	}
	if st := d.Stats(); st.PoolMisses != 2 {
		t.Errorf("PoolMisses = %d, want 2", st.PoolMisses)
	}
}

func TestPoolReleasedBufferRejectsTransfers(t *testing.T) {
	d := New(testConfig(), nil)
	b, _ := d.AllocPooled("a", 100)
	b.Release()
	if err := d.CopyToDevice(b, 10); err == nil {
		t.Error("transfer on released buffer must fail")
	}
	b.Release() // double release is a no-op
	if st := d.Stats(); st.PoolBytes != 100 {
		t.Errorf("PoolBytes after double release = %d, want 100", st.PoolBytes)
	}
}

func TestPoolReclaimOnOOM(t *testing.T) {
	d := New(testConfig(), nil) // 1 MiB limit
	b, err := d.AllocPooled("hog", 700_000)
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	// 800k misses the pool (the parked 700k is too small) and together
	// with the resident pooled capacity would exceed the 1 MiB device:
	// the pool must be reclaimed, not reported as OOM.
	got, err := d.AllocPooled("bigger-shape", 800_000)
	if err != nil {
		t.Fatalf("AllocPooled with reclaimable pool = %v", err)
	}
	st := d.Stats()
	if st.PoolReclaims != 1 {
		t.Errorf("PoolReclaims = %d, want 1", st.PoolReclaims)
	}
	if st.AllocBytes != 800_000 {
		t.Errorf("AllocBytes after reclaim = %d, want 800000", st.AllocBytes)
	}
	got.Free()
	// Truly over-capacity requests still OOM.
	if _, err := d.AllocPooled("too-big", 4<<20); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized AllocPooled error = %v, want ErrOutOfMemory", err)
	}
}

func TestDrainPool(t *testing.T) {
	d := New(testConfig(), nil)
	b, _ := d.AllocPooled("a", 1000)
	b.Release()
	d.DrainPool()
	st := d.Stats()
	if st.AllocBytes != 0 || st.PoolBytes != 0 {
		t.Errorf("after drain AllocBytes=%d PoolBytes=%d, want 0/0", st.AllocBytes, st.PoolBytes)
	}
	// Drained buffers are gone: the next request allocates fresh.
	if _, err := d.AllocPooled("b", 1000); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.PoolHits != 0 {
		t.Errorf("PoolHits after drain = %d, want 0", st.PoolHits)
	}
}

func TestPoolStatsSurviveSetTelemetry(t *testing.T) {
	d := New(testConfig(), nil)
	b, _ := d.AllocPooled("a", 1000)
	b.Release()
	if _, err := d.AllocPooled("b", 500); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	d.SetTelemetry(telemetry.New(nil))
	after := d.Stats()
	if after.PoolHits != before.PoolHits || after.PoolMisses != before.PoolMisses ||
		after.PoolBytes != before.PoolBytes {
		t.Errorf("pool stats changed across SetTelemetry: before %+v after %+v", before, after)
	}
}
