package gpusim

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/simclock"
)

func testConfig() Config {
	return Config{
		Name:            "test",
		SMs:             4,
		MemBytes:        1 << 20,
		H2DBandwidth:    1e9,
		D2HBandwidth:    1e9,
		TransferLatency: time.Microsecond,
		LaunchOverhead:  time.Microsecond,
	}
}

func TestAllocFreeAccounting(t *testing.T) {
	d := New(testConfig(), nil)
	b1, err := d.Alloc("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := d.Alloc("b", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().AllocBytes; got != 3000 {
		t.Errorf("AllocBytes = %d, want 3000", got)
	}
	b1.Free()
	if got := d.Stats().AllocBytes; got != 2000 {
		t.Errorf("AllocBytes after free = %d, want 2000", got)
	}
	b1.Free() // double free ignored
	if got := d.Stats().AllocBytes; got != 2000 {
		t.Errorf("AllocBytes after double free = %d, want 2000", got)
	}
	b2.Free()
	if got := d.Stats().PeakAllocBytes; got != 3000 {
		t.Errorf("PeakAllocBytes = %d, want 3000", got)
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	d := New(testConfig(), nil)
	if _, err := d.Alloc("big", 2<<20); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized alloc error = %v, want ErrOutOfMemory", err)
	}
	// The K20's 6 GB is the real constraint behind 800k points/leaf.
	small, err := d.Alloc("fits", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc("one more byte", 1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("exhausted alloc error = %v, want ErrOutOfMemory", err)
	}
	small.Free()
	if _, err := d.Alloc("after free", 1<<20); err != nil {
		t.Errorf("alloc after free failed: %v", err)
	}
}

func TestAllocNegative(t *testing.T) {
	d := New(testConfig(), nil)
	if _, err := d.Alloc("neg", -1); err == nil {
		t.Error("negative alloc must fail")
	}
}

func TestTransfersChargeClock(t *testing.T) {
	clock := simclock.New()
	d := New(testConfig(), clock)
	b, err := d.Alloc("buf", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CopyToDevice(b, 1000); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyFromDevice(b, 500); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.H2DTransfers != 1 || st.D2HTransfers != 1 {
		t.Errorf("transfer counts = %d/%d, want 1/1", st.H2DTransfers, st.D2HTransfers)
	}
	if st.H2DBytes != 1000 || st.D2HBytes != 500 {
		t.Errorf("transfer bytes = %d/%d, want 1000/500", st.H2DBytes, st.D2HBytes)
	}
	// Two transfers, each >= the fixed latency.
	if got := clock.Resource(d.pcieResource()); got < 2*time.Microsecond {
		t.Errorf("pcie sim time = %v, want >= 2µs", got)
	}
}

func TestTransferValidation(t *testing.T) {
	d := New(testConfig(), nil)
	b, err := d.Alloc("buf", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CopyToDevice(b, 101); err == nil {
		t.Error("transfer exceeding buffer must fail")
	}
	if err := d.CopyToDevice(nil, 1); err == nil {
		t.Error("nil buffer transfer must fail")
	}
	b.Free()
	if err := d.CopyFromDevice(b, 1); err == nil {
		t.Error("transfer on freed buffer must fail")
	}
}

func TestLaunchCoversGrid(t *testing.T) {
	d := New(testConfig(), nil)
	const blocks, tpb = 7, 32
	var hits [blocks * tpb]int32
	err := d.Launch("cover", LaunchConfig{Blocks: blocks, ThreadsPerBlock: tpb}, func(ctx KernelCtx) {
		atomic.AddInt32(&hits[ctx.GlobalID()], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("thread %d executed %d times, want 1", i, h)
		}
	}
	st := d.Stats()
	if st.KernelLaunches != 1 {
		t.Errorf("KernelLaunches = %d, want 1", st.KernelLaunches)
	}
	if st.BlocksExecuted != blocks {
		t.Errorf("BlocksExecuted = %d, want %d", st.BlocksExecuted, blocks)
	}
}

func TestLaunchBlocksRunConcurrently(t *testing.T) {
	cfg := testConfig()
	cfg.SMs = 4
	d := New(cfg, nil)
	var concurrent, peak int32
	err := d.Launch("concurrency", LaunchConfig{Blocks: 8, ThreadsPerBlock: 1}, func(ctx KernelCtx) {
		n := atomic.AddInt32(&concurrent, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt32(&concurrent, -1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Errorf("peak concurrent blocks = %d, want >= 2 (SMs = 4)", peak)
	}
	if peak > 4 {
		t.Errorf("peak concurrent blocks = %d exceeds SMs = 4", peak)
	}
}

func TestLaunchInvalidConfig(t *testing.T) {
	d := New(testConfig(), nil)
	if err := d.Launch("bad", LaunchConfig{Blocks: 0, ThreadsPerBlock: 1}, func(KernelCtx) {}); err == nil {
		t.Error("zero blocks must fail")
	}
	if err := d.Launch("bad", LaunchConfig{Blocks: 1, ThreadsPerBlock: 0}, func(KernelCtx) {}); err == nil {
		t.Error("zero threads must fail")
	}
}

func TestGridFor(t *testing.T) {
	tests := []struct {
		n, tpb      int
		wantBlocks  int
		wantThreads int
	}{
		{1000, 256, 4, 256},
		{1024, 256, 4, 256},
		{1025, 256, 5, 256},
		{0, 256, 1, 256},
		{10, 0, 1, 256}, // default tpb
	}
	for _, tt := range tests {
		lc := GridFor(tt.n, tt.tpb)
		if lc.Blocks != tt.wantBlocks || lc.ThreadsPerBlock != tt.wantThreads {
			t.Errorf("GridFor(%d,%d) = %+v, want {%d %d}",
				tt.n, tt.tpb, lc, tt.wantBlocks, tt.wantThreads)
		}
		if lc.Blocks*lc.ThreadsPerBlock < tt.n {
			t.Errorf("GridFor(%d,%d) does not cover n", tt.n, tt.tpb)
		}
	}
}

func TestKernelWallAccumulates(t *testing.T) {
	d := New(testConfig(), nil)
	err := d.Launch("sleepy", LaunchConfig{Blocks: 1, ThreadsPerBlock: 1}, func(KernelCtx) {
		time.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().KernelWall; got < time.Millisecond {
		t.Errorf("KernelWall = %v, want >= 1ms", got)
	}
	// GPU resource on the clock includes wall + overhead.
	if got := d.Clock().Resource(d.GPUResource()); got < time.Millisecond {
		t.Errorf("sim GPU time = %v, want >= 1ms", got)
	}
}

func TestK20Defaults(t *testing.T) {
	cfg := K20()
	if cfg.SMs != 13 {
		t.Errorf("K20 SMs = %d, want 13", cfg.SMs)
	}
	if cfg.MemBytes != 6<<30 {
		t.Errorf("K20 memory = %d, want 6 GiB", cfg.MemBytes)
	}
}

func TestHostTransferCountsMirrorPaper(t *testing.T) {
	// §3.2.2: CUDA-DClust needs 2×(points/blocks) transfers; Mr. Scan
	// needs one round trip. Emulate both patterns and compare the
	// simulated PCIe time — the optimization must win.
	const points, blocks = 10000, 100
	run := func(transfers int) time.Duration {
		clock := simclock.New()
		d := New(testConfig(), clock)
		b, err := d.Alloc("pts", int64(points*16))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < transfers; i++ {
			if err := d.CopyToDevice(b, 64); err != nil {
				t.Fatal(err)
			}
		}
		return clock.Resource(d.pcieResource())
	}
	dclust := run(2 * points / blocks)
	mrscan := run(2)
	if mrscan >= dclust {
		t.Errorf("single round trip (%v) must beat per-iteration transfers (%v)", mrscan, dclust)
	}
}

func TestLaunchFaultInjection(t *testing.T) {
	d := New(testConfig(), nil)
	boom := errors.New("ecc error")
	d.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.GPULaunch, faultinject.Rule{After: 1, Times: 1, Err: boom}))
	var ran atomic.Int64
	k := func(ctx KernelCtx) { ran.Add(1) }
	lc := LaunchConfig{Blocks: 2, ThreadsPerBlock: 4}
	if err := d.Launch("k1", lc, k); err != nil {
		t.Fatalf("launch 1 must pass: %v", err)
	}
	if err := d.Launch("k2", lc, k); !errors.Is(err, boom) {
		t.Fatalf("launch 2 = %v, want injected fault", err)
	}
	if got := ran.Load(); got != 8 {
		t.Errorf("failed launch must not execute threads: ran %d, want 8", got)
	}
	// Transient: the third launch succeeds again.
	if err := d.Launch("k3", lc, k); err != nil {
		t.Fatalf("launch 3 must pass after transient fault: %v", err)
	}
	if st := d.Stats(); st.KernelLaunches != 2 {
		t.Errorf("KernelLaunches = %d, want 2 (failed launch not counted)", st.KernelLaunches)
	}
}

// A corrupt rule at gpusim.transfer models a flipped DMA: the end-to-end
// CRC catches it, the wire time is paid again, and the transfer is
// re-issued transparently.
func TestTransferCorruptionRetransfers(t *testing.T) {
	clock := simclock.New()
	d := New(testConfig(), clock)
	plan := faultinject.New(11)
	plan.Arm(faultinject.GPUTransfer, faultinject.Rule{Corrupt: true, Times: 1})
	d.SetFaultPlan(plan)

	b, err := d.Alloc("buf", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CopyToDevice(b, 4096); err != nil {
		t.Fatalf("CopyToDevice: %v", err)
	}
	s := d.Stats()
	if s.H2DTransfers != 1 {
		t.Fatalf("H2DTransfers = %d, want 1 (retry is the same logical transfer)", s.H2DTransfers)
	}
	if got := d.m.transferRetries.Value(); got != 1 {
		t.Fatalf("transfer retries = %d, want 1", got)
	}
	if got := d.m.corruptTransfers.Value(); got != 1 {
		t.Fatalf("corruptions detected = %d, want 1", got)
	}
	// One clean + one corrupted attempt: the PCIe resource paid twice.
	cost := testConfig().TransferLatency + simclock.BytesDuration(4096, testConfig().H2DBandwidth)
	if got := clock.Resource("test/pcie"); got != 2*cost {
		t.Fatalf("pcie time = %v, want %v", got, 2*cost)
	}
}

// A persistently corrupting link surfaces ErrTransferCorrupt after the
// bounded re-transfers instead of spinning forever.
func TestTransferCorruptionBounded(t *testing.T) {
	d := New(testConfig(), nil)
	plan := faultinject.New(12)
	plan.Arm(faultinject.GPUTransfer, faultinject.Rule{Corrupt: true}) // unlimited
	d.SetFaultPlan(plan)

	b, err := d.Alloc("buf", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CopyFromDevice(b, 64); !errors.Is(err, ErrTransferCorrupt) {
		t.Fatalf("CopyFromDevice err = %v, want ErrTransferCorrupt", err)
	}
	if got := plan.CorruptionsInjected(faultinject.GPUTransfer); got != maxTransferRetries {
		t.Fatalf("injected = %d, want %d", got, maxTransferRetries)
	}
}
