// Package gpusim simulates a CUDA-class GPGPU device.
//
// Mr. Scan's cluster phase runs a modified CUDA-DClust on an NVIDIA K20
// per leaf node. That hardware is unavailable here, so this package
// provides the device abstraction the algorithm is written against:
//
//   - device memory with explicit allocation limits (the K20's 6 GB bound
//     what fit on a leaf and forced the 800k points/leaf weak-scaling
//     configuration);
//   - explicit host↔device transfers, each charged a modeled latency and
//     bandwidth cost on a simulated clock — the quantity §3.2.2 optimizes
//     (CUDA-DClust performs 2×(points/blocks) round trips, Mr. Scan one);
//   - kernel launches over a (blocks × threads) grid, executed by a worker
//     pool of simulated SMs so blocks genuinely run concurrently and
//     expansion collisions between blocks (§3.2.1, Figure 4) really occur.
//
// Kernels execute real Go code, so clustering results are real; only the
// costs of hardware we do not have (PCIe, launch overhead) are simulated.
package gpusim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/simclock"
)

// Config describes the simulated device.
type Config struct {
	// Name identifies the device in logs (e.g. "K20-sim").
	Name string
	// SMs is the number of streaming multiprocessors: the number of
	// blocks that execute concurrently.
	SMs int
	// MemBytes is the device memory capacity; allocations beyond it fail
	// like cudaMalloc would.
	MemBytes int64
	// H2DBandwidth and D2HBandwidth are modeled PCIe bandwidths in
	// bytes/second (0 disables the cost model).
	H2DBandwidth float64
	D2HBandwidth float64
	// TransferLatency is the fixed per-transfer cost (driver + DMA setup).
	// This term is what makes many small synchronous copies expensive and
	// drives the §3.2.2 optimization.
	TransferLatency time.Duration
	// LaunchOverhead is the fixed per-kernel-launch cost.
	LaunchOverhead time.Duration
}

// K20 returns a configuration modeled on the NVIDIA Tesla K20 of Titan's
// compute nodes: 13 SMX units, 6 GB of GDDR5, PCIe gen2 transfers.
func K20() Config {
	return Config{
		Name:            "K20-sim",
		SMs:             13,
		MemBytes:        6 << 30,
		H2DBandwidth:    6e9,
		D2HBandwidth:    6e9,
		TransferLatency: 10 * time.Microsecond,
		LaunchOverhead:  5 * time.Microsecond,
	}
}

// Stats aggregates device activity. All counters are cumulative since
// device creation.
type Stats struct {
	KernelLaunches int64
	BlocksExecuted int64
	H2DTransfers   int64
	D2HTransfers   int64
	H2DBytes       int64
	D2HBytes       int64
	// KernelWall is real wall time spent executing kernels.
	KernelWall time.Duration
	// AllocBytes is the current device memory in use.
	AllocBytes int64
	// PeakAllocBytes is the high-water mark of device memory.
	PeakAllocBytes int64
}

// Device is a simulated GPGPU. Safe for use by one host goroutine at a
// time (like a CUDA stream); kernels themselves run on many goroutines.
type Device struct {
	cfg   Config
	clock *simclock.Clock

	mu    sync.Mutex
	stats Stats
	plan  *faultinject.Plan
}

// ErrOutOfMemory is returned by Alloc when device memory is exhausted.
var ErrOutOfMemory = errors.New("gpusim: out of device memory")

// New creates a device. A nil clock allocates a private one.
func New(cfg Config, clock *simclock.Clock) *Device {
	if cfg.SMs <= 0 {
		cfg.SMs = 1
	}
	if clock == nil {
		clock = simclock.New()
	}
	return &Device{cfg: cfg, clock: clock}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetFaultPlan installs the fault plan consulted at the gpusim.launch
// site before every kernel launch (an injected fault models an ECC
// error or a hung kernel aborted by the driver). A nil plan disables
// injection.
func (d *Device) SetFaultPlan(p *faultinject.Plan) {
	d.mu.Lock()
	d.plan = p
	d.mu.Unlock()
}

func (d *Device) checkFault() error {
	d.mu.Lock()
	plan := d.plan
	d.mu.Unlock()
	return plan.Check(faultinject.GPULaunch)
}

// Clock returns the simulated clock costs are charged to.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// Stats returns a snapshot of device statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// resource names on the simulated clock.
func (d *Device) pcieResource() string { return d.cfg.Name + "/pcie" }

// GPUResource is the clock resource kernels are charged to.
func (d *Device) GPUResource() string { return d.cfg.Name + "/sm" }

// Buffer is a device memory allocation. It tracks bytes only: kernel code
// accesses ordinary Go slices (the "device copy"), because simulating the
// address space would add nothing to the cost model.
type Buffer struct {
	dev   *Device
	name  string
	size  int64
	freed bool
}

// Alloc reserves size bytes of device memory.
func (d *Device) Alloc(name string, size int64) (*Buffer, error) {
	if size < 0 {
		return nil, fmt.Errorf("gpusim: negative allocation %d for %q", size, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.MemBytes > 0 && d.stats.AllocBytes+size > d.cfg.MemBytes {
		return nil, fmt.Errorf("%w: %q needs %d bytes, %d of %d in use",
			ErrOutOfMemory, name, size, d.stats.AllocBytes, d.cfg.MemBytes)
	}
	d.stats.AllocBytes += size
	if d.stats.AllocBytes > d.stats.PeakAllocBytes {
		d.stats.PeakAllocBytes = d.stats.AllocBytes
	}
	return &Buffer{dev: d, name: name, size: size}, nil
}

// Size returns the buffer's byte size.
func (b *Buffer) Size() int64 { return b.size }

// Free releases the buffer. Double frees are ignored.
func (b *Buffer) Free() {
	if b == nil || b.freed {
		return
	}
	b.freed = true
	b.dev.mu.Lock()
	b.dev.stats.AllocBytes -= b.size
	b.dev.mu.Unlock()
}

// CopyToDevice charges a host→device transfer of n bytes.
func (d *Device) CopyToDevice(b *Buffer, n int64) error {
	if err := d.checkTransfer(b, n); err != nil {
		return err
	}
	d.clock.Charge(d.pcieResource(), d.cfg.TransferLatency+simclock.BytesDuration(n, d.cfg.H2DBandwidth))
	d.mu.Lock()
	d.stats.H2DTransfers++
	d.stats.H2DBytes += n
	d.mu.Unlock()
	return nil
}

// CopyFromDevice charges a device→host transfer of n bytes.
func (d *Device) CopyFromDevice(b *Buffer, n int64) error {
	if err := d.checkTransfer(b, n); err != nil {
		return err
	}
	d.clock.Charge(d.pcieResource(), d.cfg.TransferLatency+simclock.BytesDuration(n, d.cfg.D2HBandwidth))
	d.mu.Lock()
	d.stats.D2HTransfers++
	d.stats.D2HBytes += n
	d.mu.Unlock()
	return nil
}

func (d *Device) checkTransfer(b *Buffer, n int64) error {
	if b == nil {
		return errors.New("gpusim: transfer with nil buffer")
	}
	if b.freed {
		return fmt.Errorf("gpusim: transfer on freed buffer %q", b.name)
	}
	if n < 0 || n > b.size {
		return fmt.Errorf("gpusim: transfer of %d bytes exceeds buffer %q size %d", n, b.name, b.size)
	}
	return nil
}

// LaunchConfig is a kernel grid: Blocks × ThreadsPerBlock.
type LaunchConfig struct {
	Blocks          int
	ThreadsPerBlock int
}

// GridFor returns a launch configuration covering n work items with the
// given block width (like the usual (n + tpb - 1) / tpb CUDA idiom).
func GridFor(n, threadsPerBlock int) LaunchConfig {
	if threadsPerBlock <= 0 {
		threadsPerBlock = 256
	}
	blocks := (n + threadsPerBlock - 1) / threadsPerBlock
	if blocks < 1 {
		blocks = 1
	}
	return LaunchConfig{Blocks: blocks, ThreadsPerBlock: threadsPerBlock}
}

// KernelCtx identifies the executing thread, mirroring CUDA's
// blockIdx/threadIdx/gridDim/blockDim.
type KernelCtx struct {
	Block           int
	Thread          int
	Blocks          int
	ThreadsPerBlock int
}

// GlobalID returns the flattened thread index
// (blockIdx.x*blockDim.x + threadIdx.x).
func (c KernelCtx) GlobalID() int { return c.Block*c.ThreadsPerBlock + c.Thread }

// GlobalThreads returns the total number of threads in the launch.
func (c KernelCtx) GlobalThreads() int { return c.Blocks * c.ThreadsPerBlock }

// Kernel is the device function type. Each invocation is one thread.
type Kernel func(ctx KernelCtx)

// Launch executes the kernel over the grid. Blocks are scheduled onto
// cfg.SMs concurrent workers; within a block, threads run sequentially
// (warp-level parallelism buys nothing for the cost model and the code
// paths are identical). Launch blocks until the grid completes, like a
// cudaDeviceSynchronize after the kernel.
func (d *Device) Launch(name string, lc LaunchConfig, k Kernel) error {
	if lc.Blocks <= 0 || lc.ThreadsPerBlock <= 0 {
		return fmt.Errorf("gpusim: invalid launch config %+v for kernel %q", lc, name)
	}
	if err := d.checkFault(); err != nil {
		return fmt.Errorf("gpusim: launching kernel %q on %s: %w", name, d.cfg.Name, err)
	}
	start := time.Now()
	var next int64 = -1
	workers := d.cfg.SMs
	if workers > lc.Blocks {
		workers = lc.Blocks
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(atomic.AddInt64(&next, 1))
				if b >= lc.Blocks {
					return
				}
				for t := 0; t < lc.ThreadsPerBlock; t++ {
					k(KernelCtx{Block: b, Thread: t, Blocks: lc.Blocks, ThreadsPerBlock: lc.ThreadsPerBlock})
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	d.clock.Charge(d.GPUResource(), d.cfg.LaunchOverhead+wall)
	d.mu.Lock()
	d.stats.KernelLaunches++
	d.stats.BlocksExecuted += int64(lc.Blocks)
	d.stats.KernelWall += wall
	d.mu.Unlock()
	return nil
}
