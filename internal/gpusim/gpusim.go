// Package gpusim simulates a CUDA-class GPGPU device.
//
// Mr. Scan's cluster phase runs a modified CUDA-DClust on an NVIDIA K20
// per leaf node. That hardware is unavailable here, so this package
// provides the device abstraction the algorithm is written against:
//
//   - device memory with explicit allocation limits (the K20's 6 GB bound
//     what fit on a leaf and forced the 800k points/leaf weak-scaling
//     configuration);
//   - explicit host↔device transfers, each charged a modeled latency and
//     bandwidth cost on a simulated clock — the quantity §3.2.2 optimizes
//     (CUDA-DClust performs 2×(points/blocks) round trips, Mr. Scan one);
//   - kernel launches over a (blocks × threads) grid, executed by a worker
//     pool of simulated SMs so blocks genuinely run concurrently and
//     expansion collisions between blocks (§3.2.1, Figure 4) really occur.
//
// Kernels execute real Go code, so clustering results are real; only the
// costs of hardware we do not have (PCIe, launch overhead) are simulated.
package gpusim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/integrity"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Config describes the simulated device.
type Config struct {
	// Name identifies the device in logs (e.g. "K20-sim").
	Name string
	// SMs is the number of streaming multiprocessors: the number of
	// blocks that execute concurrently.
	SMs int
	// MemBytes is the device memory capacity; allocations beyond it fail
	// like cudaMalloc would.
	MemBytes int64
	// H2DBandwidth and D2HBandwidth are modeled PCIe bandwidths in
	// bytes/second (0 disables the cost model).
	H2DBandwidth float64
	D2HBandwidth float64
	// TransferLatency is the fixed per-transfer cost (driver + DMA setup).
	// This term is what makes many small synchronous copies expensive and
	// drives the §3.2.2 optimization.
	TransferLatency time.Duration
	// LaunchOverhead is the fixed per-kernel-launch cost.
	LaunchOverhead time.Duration
}

// K20 returns a configuration modeled on the NVIDIA Tesla K20 of Titan's
// compute nodes: 13 SMX units, 6 GB of GDDR5, PCIe gen2 transfers.
func K20() Config {
	return Config{
		Name:            "K20-sim",
		SMs:             13,
		MemBytes:        6 << 30,
		H2DBandwidth:    6e9,
		D2HBandwidth:    6e9,
		TransferLatency: 10 * time.Microsecond,
		LaunchOverhead:  5 * time.Microsecond,
	}
}

// Stats aggregates device activity. All counters are cumulative since
// device creation. Stats is a read-side view over the device's
// telemetry metrics (see SetTelemetry) — the registry is the single
// source of truth; this struct exists for established callers.
type Stats struct {
	KernelLaunches int64
	BlocksExecuted int64
	H2DTransfers   int64
	D2HTransfers   int64
	H2DBytes       int64
	D2HBytes       int64
	// KernelWall is real wall time spent executing kernels.
	KernelWall time.Duration
	// AllocBytes is the current device memory in use.
	AllocBytes int64
	// PeakAllocBytes is the high-water mark of device memory.
	PeakAllocBytes int64
	// PoolHits and PoolMisses count AllocPooled requests served by
	// recycling a Released buffer vs. falling through to a fresh
	// allocation. PoolBytes is the capacity currently parked in the pool.
	PoolHits   int64
	PoolMisses int64
	PoolBytes  int64
	// PoolReclaims counts the times memory pressure forced the pool to
	// be freed wholesale before an allocation could succeed.
	PoolReclaims int64
}

// deviceMetrics caches the device's handles into a telemetry registry —
// resolved once per SetTelemetry, updated with single atomic ops on the
// hot paths.
type deviceMetrics struct {
	launches     *telemetry.Counter
	blocks       *telemetry.Counter
	h2dTransfers *telemetry.Counter
	d2hTransfers *telemetry.Counter
	h2dBytes     *telemetry.Counter
	d2hBytes     *telemetry.Counter
	kernelWallNs *telemetry.Counter
	allocBytes   *telemetry.Gauge
	peakAlloc    *telemetry.Gauge
	occupancy    *telemetry.Histogram
	poolHits     *telemetry.Counter
	poolMisses   *telemetry.Counter
	poolReclaims *telemetry.Counter
	poolBytes    *telemetry.Gauge
	// Transfer-integrity ledger: corrupted DMA transfers caught by the
	// modeled end-to-end CRC, and the re-transfers that healed them.
	corruptTransfers *telemetry.Counter
	transferRetries  *telemetry.Counter
}

func resolveDeviceMetrics(h *telemetry.Hub, device string) deviceMetrics {
	return deviceMetrics{
		launches:         h.Counter("gpusim_kernel_launches_total", "device", device),
		blocks:           h.Counter("gpusim_blocks_executed_total", "device", device),
		h2dTransfers:     h.Counter("gpusim_h2d_transfers_total", "device", device),
		d2hTransfers:     h.Counter("gpusim_d2h_transfers_total", "device", device),
		h2dBytes:         h.Counter("gpusim_h2d_bytes_total", "device", device),
		d2hBytes:         h.Counter("gpusim_d2h_bytes_total", "device", device),
		kernelWallNs:     h.Counter("gpusim_kernel_wall_ns_total", "device", device),
		allocBytes:       h.Gauge("gpusim_alloc_bytes", "device", device),
		peakAlloc:        h.Gauge("gpusim_peak_alloc_bytes", "device", device),
		occupancy:        h.Histogram("gpusim_sm_occupancy", telemetry.LinearBuckets(0.1, 0.1, 10), "device", device),
		poolHits:         h.Counter("gpusim_pool_hits_total", "device", device),
		poolMisses:       h.Counter("gpusim_pool_misses_total", "device", device),
		poolReclaims:     h.Counter("gpusim_pool_reclaims_total", "device", device),
		poolBytes:        h.Gauge("gpusim_pool_bytes", "device", device),
		corruptTransfers: h.Counter(integrity.MetricDetected, "site", string(faultinject.GPUTransfer)),
		transferRetries:  h.Counter("gpusim_transfer_retries_total", "device", device),
	}
}

// Device is a simulated GPGPU. Safe for use by one host goroutine at a
// time (like a CUDA stream); kernels themselves run on many goroutines.
type Device struct {
	cfg   Config
	clock *simclock.Clock

	mu     sync.Mutex
	plan   *faultinject.Plan
	hub    *telemetry.Hub
	parent *telemetry.Span
	m      deviceMetrics
	// pool is the free list AllocPooled recycles from (see pool.go).
	pool []*Buffer
	// spans gates per-launch/per-transfer span recording: off on the
	// private default hub (nobody will export it), on once a run-level
	// hub is installed via SetTelemetry.
	spans bool
}

// ErrOutOfMemory is returned by Alloc when device memory is exhausted.
var ErrOutOfMemory = errors.New("gpusim: out of device memory")

// New creates a device. A nil clock allocates a private one.
func New(cfg Config, clock *simclock.Clock) *Device {
	if cfg.SMs <= 0 {
		cfg.SMs = 1
	}
	if clock == nil {
		clock = simclock.New()
	}
	d := &Device{cfg: cfg, clock: clock}
	d.hub = telemetry.New(clock)
	d.m = resolveDeviceMetrics(d.hub, cfg.Name)
	return d
}

// SetTelemetry points the device's metrics and spans at a run-level
// hub, carrying any counts accumulated on the private default hub over
// so the view stays cumulative. Per-launch and per-transfer spans are
// recorded only on an installed hub. Install before heavy use.
func (d *Device) SetTelemetry(h *telemetry.Hub) {
	if h == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.m
	d.hub = h
	d.m = resolveDeviceMetrics(h, d.cfg.Name)
	d.spans = true
	d.m.launches.Add(old.launches.Value())
	d.m.blocks.Add(old.blocks.Value())
	d.m.h2dTransfers.Add(old.h2dTransfers.Value())
	d.m.d2hTransfers.Add(old.d2hTransfers.Value())
	d.m.h2dBytes.Add(old.h2dBytes.Value())
	d.m.d2hBytes.Add(old.d2hBytes.Value())
	d.m.kernelWallNs.Add(old.kernelWallNs.Value())
	d.m.allocBytes.Set(old.allocBytes.Value())
	d.m.peakAlloc.SetMax(old.peakAlloc.Value())
	d.m.poolHits.Add(old.poolHits.Value())
	d.m.poolMisses.Add(old.poolMisses.Value())
	d.m.poolReclaims.Add(old.poolReclaims.Value())
	d.m.poolBytes.Set(old.poolBytes.Value())
	d.m.corruptTransfers.Add(old.corruptTransfers.Value())
	d.m.transferRetries.Add(old.transferRetries.Value())
}

// SetTraceParent nests the device's spans (kernel launches, transfers)
// under s — the leaf span of the cluster phase that owns this device.
func (d *Device) SetTraceParent(s *telemetry.Span) {
	d.mu.Lock()
	d.parent = s
	d.mu.Unlock()
}

// telemetry snapshots the hub, span parent and metric handles.
func (d *Device) telemetry() (*telemetry.Hub, *telemetry.Span, deviceMetrics, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hub, d.parent, d.m, d.spans
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetFaultPlan installs the fault plan consulted at the gpusim.launch
// site before every kernel launch (an injected fault models an ECC
// error or a hung kernel aborted by the driver). A nil plan disables
// injection.
func (d *Device) SetFaultPlan(p *faultinject.Plan) {
	d.mu.Lock()
	d.plan = p
	d.mu.Unlock()
}

func (d *Device) checkFault() error {
	d.mu.Lock()
	plan := d.plan
	d.mu.Unlock()
	return plan.Check(faultinject.GPULaunch)
}

// Clock returns the simulated clock costs are charged to.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// Stats returns a snapshot of device statistics, read back from the
// telemetry registry.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	m := d.m
	d.mu.Unlock()
	return Stats{
		KernelLaunches: m.launches.Value(),
		BlocksExecuted: m.blocks.Value(),
		H2DTransfers:   m.h2dTransfers.Value(),
		D2HTransfers:   m.d2hTransfers.Value(),
		H2DBytes:       m.h2dBytes.Value(),
		D2HBytes:       m.d2hBytes.Value(),
		KernelWall:     time.Duration(m.kernelWallNs.Value()),
		AllocBytes:     m.allocBytes.Value(),
		PeakAllocBytes: m.peakAlloc.Value(),
		PoolHits:       m.poolHits.Value(),
		PoolMisses:     m.poolMisses.Value(),
		PoolBytes:      m.poolBytes.Value(),
		PoolReclaims:   m.poolReclaims.Value(),
	}
}

// resource names on the simulated clock.
func (d *Device) pcieResource() string { return d.cfg.Name + "/pcie" }

// GPUResource is the clock resource kernels are charged to.
func (d *Device) GPUResource() string { return d.cfg.Name + "/sm" }

// Buffer is a device memory allocation. It tracks bytes only: kernel code
// accesses ordinary Go slices (the "device copy"), because simulating the
// address space would add nothing to the cost model.
type Buffer struct {
	dev  *Device
	name string
	// size is the logical byte size of the current lease; capacity is
	// the underlying allocation, which can exceed size after the buffer
	// has been recycled through the pool for a smaller request.
	size     int64
	capacity int64
	freed    bool
}

// Alloc reserves size bytes of device memory.
func (d *Device) Alloc(name string, size int64) (*Buffer, error) {
	if size < 0 {
		return nil, fmt.Errorf("gpusim: negative allocation %d for %q", size, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	inUse := d.m.allocBytes.Value()
	if d.cfg.MemBytes > 0 && inUse+size > d.cfg.MemBytes {
		return nil, fmt.Errorf("%w: %q needs %d bytes, %d of %d in use",
			ErrOutOfMemory, name, size, inUse, d.cfg.MemBytes)
	}
	d.m.allocBytes.Add(size)
	d.m.peakAlloc.SetMax(inUse + size)
	return &Buffer{dev: d, name: name, size: size, capacity: size}, nil
}

// Size returns the buffer's logical byte size.
func (b *Buffer) Size() int64 { return b.size }

// Free releases the buffer's full capacity. Double frees are ignored.
func (b *Buffer) Free() {
	if b == nil || b.freed {
		return
	}
	b.freed = true
	b.dev.mu.Lock()
	b.dev.m.allocBytes.Add(-b.capacity)
	b.dev.mu.Unlock()
}

// maxTransferRetries bounds how many corrupted DMA transfers of one
// payload are re-issued before the device gives up — mirroring a driver
// that downs the link after repeated CRC errors.
const maxTransferRetries = 3

// ErrTransferCorrupt reports a host↔device transfer that kept failing
// its end-to-end CRC across maxTransferRetries re-issues.
var ErrTransferCorrupt = errors.New("gpusim: transfer corrupt after retries")

// transferIntegrity models the PCIe end-to-end CRC: a corrupt rule
// firing at gpusim.transfer means the DMA'd bytes arrived flipped, the
// far side's CRC check catches it, and the transfer is re-issued (the
// wire time was still spent, so the cost is charged per attempt). The
// payload bytes themselves live in host slices, so — unlike the byte
// planes — detection here is certain by construction. Returns the extra
// cost of the corrupted attempts.
func (d *Device) transferIntegrity(dir string, n int64, cost time.Duration) (time.Duration, error) {
	d.mu.Lock()
	plan := d.plan
	d.mu.Unlock()
	if plan == nil {
		return 0, nil
	}
	var extra time.Duration
	for attempt := 0; ; attempt++ {
		c := plan.CorruptCheck(faultinject.GPUTransfer, n)
		if c == nil {
			return extra, nil
		}
		d.clock.Charge(d.pcieResource(), cost)
		extra += cost
		hub, parent, m, _ := d.telemetry()
		m.corruptTransfers.Inc()
		m.transferRetries.Inc()
		hub.Event(parent, "integrity.corruption.detected",
			telemetry.String("site", string(faultinject.GPUTransfer)),
			telemetry.String("device", d.cfg.Name),
			telemetry.String("dir", dir),
			telemetry.Int64("offset", c.Offset),
			telemetry.Bool("healed", attempt+1 < maxTransferRetries),
		)
		if attempt+1 >= maxTransferRetries {
			return extra, fmt.Errorf("gpusim: %s transfer of %d bytes: %w", dir, n, ErrTransferCorrupt)
		}
	}
}

// CopyToDevice charges a host→device transfer of n bytes.
func (d *Device) CopyToDevice(b *Buffer, n int64) error {
	if err := d.checkTransfer(b, n); err != nil {
		return err
	}
	cost := d.cfg.TransferLatency + simclock.BytesDuration(n, d.cfg.H2DBandwidth)
	extra, err := d.transferIntegrity("h2d", n, cost)
	if err != nil {
		return err
	}
	hub, parent, m, spans := d.telemetry()
	if spans {
		hub.RecordSim(parent, "gpu.h2d", cost+extra, telemetry.Int64("bytes", n))
	}
	d.clock.Charge(d.pcieResource(), cost)
	m.h2dTransfers.Inc()
	m.h2dBytes.Add(n)
	return nil
}

// CopyFromDevice charges a device→host transfer of n bytes.
func (d *Device) CopyFromDevice(b *Buffer, n int64) error {
	if err := d.checkTransfer(b, n); err != nil {
		return err
	}
	cost := d.cfg.TransferLatency + simclock.BytesDuration(n, d.cfg.D2HBandwidth)
	extra, err := d.transferIntegrity("d2h", n, cost)
	if err != nil {
		return err
	}
	hub, parent, m, spans := d.telemetry()
	if spans {
		hub.RecordSim(parent, "gpu.d2h", cost+extra, telemetry.Int64("bytes", n))
	}
	d.clock.Charge(d.pcieResource(), cost)
	m.d2hTransfers.Inc()
	m.d2hBytes.Add(n)
	return nil
}

func (d *Device) checkTransfer(b *Buffer, n int64) error {
	if b == nil {
		return errors.New("gpusim: transfer with nil buffer")
	}
	if b.freed {
		return fmt.Errorf("gpusim: transfer on freed buffer %q", b.name)
	}
	if n < 0 || n > b.size {
		return fmt.Errorf("gpusim: transfer of %d bytes exceeds buffer %q size %d", n, b.name, b.size)
	}
	return nil
}

// LaunchConfig is a kernel grid: Blocks × ThreadsPerBlock.
type LaunchConfig struct {
	Blocks          int
	ThreadsPerBlock int
}

// GridFor returns a launch configuration covering n work items with the
// given block width (like the usual (n + tpb - 1) / tpb CUDA idiom).
func GridFor(n, threadsPerBlock int) LaunchConfig {
	if threadsPerBlock <= 0 {
		threadsPerBlock = 256
	}
	blocks := (n + threadsPerBlock - 1) / threadsPerBlock
	if blocks < 1 {
		blocks = 1
	}
	return LaunchConfig{Blocks: blocks, ThreadsPerBlock: threadsPerBlock}
}

// KernelCtx identifies the executing thread, mirroring CUDA's
// blockIdx/threadIdx/gridDim/blockDim.
type KernelCtx struct {
	Block           int
	Thread          int
	Blocks          int
	ThreadsPerBlock int
}

// GlobalID returns the flattened thread index
// (blockIdx.x*blockDim.x + threadIdx.x).
func (c KernelCtx) GlobalID() int { return c.Block*c.ThreadsPerBlock + c.Thread }

// GlobalThreads returns the total number of threads in the launch.
func (c KernelCtx) GlobalThreads() int { return c.Blocks * c.ThreadsPerBlock }

// Kernel is the device function type. Each invocation is one thread.
type Kernel func(ctx KernelCtx)

// Launch executes the kernel over the grid. Blocks are scheduled onto
// cfg.SMs concurrent workers; within a block, threads run sequentially
// (warp-level parallelism buys nothing for the cost model and the code
// paths are identical). Launch blocks until the grid completes, like a
// cudaDeviceSynchronize after the kernel.
func (d *Device) Launch(name string, lc LaunchConfig, k Kernel) error {
	if lc.Blocks <= 0 || lc.ThreadsPerBlock <= 0 {
		return fmt.Errorf("gpusim: invalid launch config %+v for kernel %q", lc, name)
	}
	if err := d.checkFault(); err != nil {
		return fmt.Errorf("gpusim: launching kernel %q on %s: %w", name, d.cfg.Name, err)
	}
	hub, parent, m, spans := d.telemetry()
	var sp *telemetry.Span
	if spans {
		sp = hub.Start(parent, "kernel:"+name,
			telemetry.Int("blocks", lc.Blocks), telemetry.Int("tpb", lc.ThreadsPerBlock))
	}
	start := time.Now()
	var next int64 = -1
	workers := d.cfg.SMs
	if workers > lc.Blocks {
		workers = lc.Blocks
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(atomic.AddInt64(&next, 1))
				if b >= lc.Blocks {
					return
				}
				for t := 0; t < lc.ThreadsPerBlock; t++ {
					k(KernelCtx{Block: b, Thread: t, Blocks: lc.Blocks, ThreadsPerBlock: lc.ThreadsPerBlock})
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	d.clock.Charge(d.GPUResource(), d.cfg.LaunchOverhead+wall)
	sp.End()
	m.launches.Inc()
	m.blocks.Add(int64(lc.Blocks))
	m.kernelWallNs.Add(wall.Nanoseconds())
	occ := float64(workers) / float64(d.cfg.SMs)
	m.occupancy.Observe(occ)
	return nil
}
