package gpusim

import (
	"sync/atomic"
	"testing"
)

func TestStreamExecutesInOrder(t *testing.T) {
	d := New(testConfig(), nil)
	s := d.NewStream()
	var sequence []int
	var current atomic.Int32
	for k := 0; k < 20; k++ {
		k := k
		s.LaunchAsync("ordered", LaunchConfig{Blocks: 1, ThreadsPerBlock: 1}, func(KernelCtx) {
			if int(current.Load()) != k {
				t.Errorf("kernel %d ran at position %d", k, current.Load())
			}
			current.Add(1)
			sequence = append(sequence, k)
		})
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if len(sequence) != 20 {
		t.Fatalf("executed %d kernels, want 20", len(sequence))
	}
	for i, k := range sequence {
		if i != k {
			t.Fatalf("out of order at %d: %v", i, sequence)
		}
	}
	queued, executed := s.Stats()
	if queued != 20 || executed != 20 {
		t.Errorf("stats = %d/%d, want 20/20", queued, executed)
	}
}

func TestStreamBulkIssueThenSync(t *testing.T) {
	// The §3.2.2 pattern: enqueue everything, then one synchronization.
	d := New(testConfig(), nil)
	s := d.NewStream()
	var total atomic.Int64
	for k := 0; k < 50; k++ {
		s.LaunchAsync("bulk", LaunchConfig{Blocks: 4, ThreadsPerBlock: 8}, func(KernelCtx) {
			total.Add(1)
		})
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 50*4*8 {
		t.Errorf("thread executions = %d, want %d", total.Load(), 50*4*8)
	}
	if d.Stats().KernelLaunches != 50 {
		t.Errorf("device saw %d launches, want 50", d.Stats().KernelLaunches)
	}
}

func TestStreamDeferredError(t *testing.T) {
	d := New(testConfig(), nil)
	s := d.NewStream()
	s.LaunchAsync("ok", LaunchConfig{Blocks: 1, ThreadsPerBlock: 1}, func(KernelCtx) {})
	s.LaunchAsync("bad", LaunchConfig{Blocks: 0, ThreadsPerBlock: 1}, func(KernelCtx) {})
	if err := s.Synchronize(); err == nil {
		t.Error("invalid launch must surface at Synchronize")
	}
}

func TestStreamCloseRejectsLaunches(t *testing.T) {
	d := New(testConfig(), nil)
	s := d.NewStream()
	s.Close()
	s.LaunchAsync("late", LaunchConfig{Blocks: 1, ThreadsPerBlock: 1}, func(KernelCtx) {
		t.Error("kernel on closed stream must not run")
	})
	if err := s.Synchronize(); err == nil {
		t.Error("launch after Close must surface an error")
	}
}

func TestStreamSynchronizeIdempotent(t *testing.T) {
	d := New(testConfig(), nil)
	s := d.NewStream()
	s.LaunchAsync("one", LaunchConfig{Blocks: 1, ThreadsPerBlock: 1}, func(KernelCtx) {})
	for i := 0; i < 3; i++ {
		if err := s.Synchronize(); err != nil {
			t.Fatal(err)
		}
	}
}
