package gpusim

import "fmt"

// Buffer pooling: repeated Cluster() calls on one device (a cluster-phase
// leaf processes its partitions back-to-back) would otherwise
// cudaMalloc/cudaFree the same working set per partition. Real CUDA
// codes keep allocations alive across batches for exactly this reason —
// cudaMalloc synchronizes the device — so the simulator models the
// reuse: a Released buffer parks on the device's free list and a later
// AllocPooled of a size that fits takes it over instead of allocating.
//
// Pooled capacity stays charged against the device's memory limit (the
// allocation is still resident, as on hardware). When a fresh allocation
// would exceed the limit, the pool is reclaimed — actually freed —
// before the request fails, so pooling never turns a previously
// satisfiable workload into an OOM.

// AllocPooled returns a buffer of at least size bytes, preferring to
// recycle a previously Released allocation (best fit by capacity). The
// returned buffer reports Size() == size regardless of the underlying
// capacity, so transfer accounting is identical to a fresh Alloc. On a
// pool miss it allocates; if device memory is exhausted it reclaims the
// pool and retries once.
func (d *Device) AllocPooled(name string, size int64) (*Buffer, error) {
	if size < 0 {
		return nil, fmt.Errorf("gpusim: negative allocation %d for %q", size, name)
	}
	d.mu.Lock()
	best := -1
	for i, b := range d.pool {
		if b.capacity >= size && (best < 0 || b.capacity < d.pool[best].capacity) {
			best = i
		}
	}
	if best >= 0 {
		b := d.pool[best]
		d.pool = append(d.pool[:best], d.pool[best+1:]...)
		d.m.poolHits.Inc()
		d.m.poolBytes.Add(-b.capacity)
		d.mu.Unlock()
		b.name = name
		b.size = size
		b.freed = false
		return b, nil
	}
	d.m.poolMisses.Inc()
	d.mu.Unlock()
	b, err := d.Alloc(name, size)
	if err == nil {
		return b, nil
	}
	// Out of memory with buffers parked in the pool: reclaim and retry.
	if d.reclaimPool() == 0 {
		return nil, err
	}
	b, err = d.Alloc(name, size)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Release returns the buffer to its device's pool for a later
// AllocPooled to recycle. Buffers obtained from plain Alloc may also be
// Released. Releasing a freed (or nil) buffer is a no-op, like Free.
func (b *Buffer) Release() {
	if b == nil || b.freed {
		return
	}
	b.freed = true // rejects further transfers until re-leased
	d := b.dev
	d.mu.Lock()
	d.pool = append(d.pool, b)
	d.m.poolBytes.Add(b.capacity)
	d.mu.Unlock()
}

// reclaimPool frees every pooled buffer, returning their capacity to the
// device, and reports the number of bytes reclaimed.
func (d *Device) reclaimPool() int64 {
	d.mu.Lock()
	var freed int64
	for _, b := range d.pool {
		freed += b.capacity
	}
	if freed > 0 {
		d.m.allocBytes.Add(-freed)
		d.m.poolBytes.Add(-freed)
		d.m.poolReclaims.Inc()
	}
	d.pool = nil
	d.mu.Unlock()
	return freed
}

// DrainPool frees every buffer parked in the device pool, returning
// their memory. Call between workloads whose buffer shapes differ.
func (d *Device) DrainPool() { d.reclaimPool() }
