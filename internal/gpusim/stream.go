package gpusim

import (
	"fmt"
	"sync"
)

// Stream is an ordered kernel queue, modeling a CUDA stream. Launches
// enqueue without blocking the host; kernels execute in order on the
// device; Synchronize blocks until the queue drains.
//
// This is the mechanism behind §3.2.2's optimization: "the next input
// seed point for DBSCAN is determined by the parameters of the CUDA
// kernel call. This allows for all kernel invocations needed to cluster
// the dataset to be issued in bulk without any intervening memory
// copies" — the host enqueues every expansion kernel up front and
// synchronizes once.
type Stream struct {
	dev  *Device
	mu   sync.Mutex
	cond *sync.Cond
	// queue of pending launches; the worker drains it in order.
	queue    []streamOp
	running  bool
	firstErr error
	queued   int64
	executed int64
	closed   bool
}

type streamOp struct {
	name   string
	lc     LaunchConfig
	kernel Kernel
}

// NewStream creates a stream on the device.
func (d *Device) NewStream() *Stream {
	s := &Stream{dev: d}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// LaunchAsync enqueues a kernel; it returns immediately. Invalid launch
// configurations surface at Synchronize, like CUDA's deferred errors.
func (s *Stream) LaunchAsync(name string, lc LaunchConfig, k Kernel) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if s.firstErr == nil {
			s.firstErr = fmt.Errorf("gpusim: launch %q on closed stream", name)
		}
		return
	}
	s.queue = append(s.queue, streamOp{name: name, lc: lc, kernel: k})
	s.queued++
	if !s.running {
		s.running = true
		go s.drain()
	}
}

// drain executes queued kernels in order until the queue empties.
func (s *Stream) drain() {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 || s.firstErr != nil {
			s.queue = nil
			s.running = false
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		op := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		err := s.dev.Launch(op.name, op.lc, op.kernel)

		s.mu.Lock()
		s.executed++
		if err != nil && s.firstErr == nil {
			s.firstErr = err
		}
		s.mu.Unlock()
	}
}

// Synchronize blocks until every enqueued kernel has executed and
// returns the first deferred error.
func (s *Stream) Synchronize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.running {
		s.cond.Wait()
	}
	return s.firstErr
}

// Stats returns the number of kernels enqueued and executed so far.
func (s *Stream) Stats() (queued, executed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.executed
}

// Close rejects further launches. Pending kernels still run; call
// Synchronize to wait for them.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}
