// Package health tracks per-component health for gray-failure detection.
//
// A gray failure is a component that passes liveness checks but degrades
// the fleet: a worker computing 20x slow, a NIC corrupting a fraction of
// frames, an OST serving reads at a crawl. Fail-stop machinery (heartbeats,
// timeouts) never fires for these, so the pipeline silently runs at the
// speed of its sickest member.
//
// The Tracker keeps an EWMA health profile per component — latency relative
// to the fleet p50 of its class, error rate, and verified-corruption rate —
// and drives a quarantine state machine with hysteresis:
//
//	Healthy -> Suspect -> Quarantined -> Probation -> Healthy
//	              ^                          |
//	              +------ (relapse) ---------+
//
// Quarantined components stop receiving real work but may be handed cheap
// probe work; enough clean probes move them to Probation, and clean real
// work from Probation re-admits them. A bad observation in Probation
// relapses straight back to Quarantined.
//
// Components are keyed by strings like "worker.3", "nic.5", or "ost.0".
// The prefix before the first dot is the component's class; fleet-relative
// latency comparisons only consider components of the same class, so a
// uniformly slow fleet is never quarantined.
package health

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// State is a component's position in the quarantine state machine.
type State int32

const (
	// Healthy components receive real work.
	Healthy State = iota
	// Suspect components still receive real work while evidence accumulates.
	Suspect
	// Quarantined components receive only probe work.
	Quarantined
	// Probation components receive real work again but relapse on any bad
	// observation.
	Probation
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	default:
		return "unknown"
	}
}

// Config tunes the tracker. Zero values take the defaults noted per field.
type Config struct {
	// Alpha is the EWMA smoothing factor in (0,1]. Default 0.3.
	Alpha float64
	// LatencyFactor marks a component unhealthy when its EWMA latency
	// exceeds LatencyFactor x the class p50. Default 3.
	LatencyFactor float64
	// ErrorRate marks a component unhealthy when its error EWMA exceeds
	// this fraction. Default 0.4.
	ErrorRate float64
	// CorruptionRate marks a component unhealthy when its verified-
	// corruption EWMA exceeds this fraction. Default 0.25.
	CorruptionRate float64
	// SuspectAfter is the consecutive unhealthy verdicts needed to move
	// Healthy -> Suspect. Default 2.
	SuspectAfter int
	// QuarantineAfter is the further consecutive unhealthy verdicts needed
	// to move Suspect -> Quarantined. Default 2.
	QuarantineAfter int
	// RecoverAfter is the consecutive healthy verdicts needed to step back
	// toward health (Suspect -> Healthy, Quarantined -> Probation via
	// probes, Probation -> Healthy). Default 3.
	RecoverAfter int
	// MinObservations is the number of verdicts required before a component
	// may leave Healthy. Guards against quarantining on a single sample.
	// Default 2.
	MinObservations int
	// MinActive floors the number of non-quarantined components per class;
	// quarantine requests that would drop a class below it are refused
	// (the component stays Suspect). Default 1.
	MinActive int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.LatencyFactor <= 1 {
		c.LatencyFactor = 3
	}
	if c.ErrorRate <= 0 {
		c.ErrorRate = 0.4
	}
	if c.CorruptionRate <= 0 {
		c.CorruptionRate = 0.25
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 2
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 3
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 2
	}
	if c.MinActive <= 0 {
		c.MinActive = 1
	}
	return c
}

// component is the per-component mutable profile. Guarded by Tracker.mu.
type component struct {
	name  string
	class string
	state State

	ewmaLatency time.Duration // 0 until first latency sample
	ewmaErr     float64       // EWMA of {0 clean, 1 error}
	ewmaCorrupt float64       // EWMA of {0 clean, 1 corrupt}

	observations int64 // total verdicts rendered
	badStreak    int
	goodStreak   int
	probeStreak  int // clean probes while Quarantined

	transitions int64
}

// Transition describes one state-machine edge, as delivered to OnTransition.
type Transition struct {
	Component string
	From, To  State
}

// View is a read-only snapshot of one component.
type View struct {
	Component    string
	Class        string
	State        State
	Score        float64 // 1 = perfectly healthy, 0 = fully degraded
	Latency      time.Duration
	ErrorRate    float64
	CorruptRate  float64
	Observations int64
}

// Tracker scores components and runs the quarantine state machine.
// All methods are safe for concurrent use and nil-safe: a nil *Tracker
// observes nothing and reports every component Healthy.
type Tracker struct {
	cfg Config

	mu    sync.Mutex
	comps map[string]*component

	onTransition func(Transition)

	hubMu sync.Mutex
	hub   *telemetry.Hub
}

// New returns a Tracker with cfg (zero fields defaulted).
func New(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), comps: make(map[string]*component)}
}

// Config reports the tracker's effective (defaulted) configuration.
func (t *Tracker) Config() Config {
	if t == nil {
		return Config{}.withDefaults()
	}
	return t.cfg
}

// SetTelemetry installs a hub for score gauges and transition counters.
func (t *Tracker) SetTelemetry(h *telemetry.Hub) {
	if t == nil {
		return
	}
	t.hubMu.Lock()
	t.hub = h
	t.hubMu.Unlock()
}

// OnTransition installs a callback invoked (outside the tracker lock) for
// every state-machine edge.
func (t *Tracker) OnTransition(fn func(Transition)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onTransition = fn
	t.mu.Unlock()
}

func (t *Tracker) telemetry() *telemetry.Hub {
	t.hubMu.Lock()
	defer t.hubMu.Unlock()
	return t.hub
}

func classOf(comp string) string {
	if i := strings.IndexByte(comp, '.'); i > 0 {
		return comp[:i]
	}
	return comp
}

func (t *Tracker) get(comp string) *component {
	c, ok := t.comps[comp]
	if !ok {
		c = &component{name: comp, class: classOf(comp)}
		t.comps[comp] = c
	}
	return c
}

// ObserveSuccess records a clean operation with its latency.
func (t *Tracker) ObserveSuccess(comp string, latency time.Duration) {
	t.observe(comp, latency, false, false, false)
}

// ObserveError records a failed operation.
func (t *Tracker) ObserveError(comp string) {
	t.observe(comp, 0, true, false, false)
}

// ObserveCorruption records an operation whose payload failed verification.
func (t *Tracker) ObserveCorruption(comp string) {
	t.observe(comp, 0, false, true, false)
}

// ObserveInFlight records evidence from an operation that is still running
// but has already exceeded the class slow threshold. It lets the tracker
// act on a limping component before its operation completes.
func (t *Tracker) ObserveInFlight(comp string, elapsed time.Duration) {
	t.observe(comp, elapsed, false, false, false)
}

// ObserveProbe records the result of a probe issued to a component. Probes
// are the only observations that advance Quarantined -> Probation.
func (t *Tracker) ObserveProbe(comp string, latency time.Duration, ok bool) {
	t.observe(comp, latency, !ok, false, true)
}

func (t *Tracker) observe(comp string, latency time.Duration, isErr, isCorrupt, isProbe bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	c := t.get(comp)
	a := t.cfg.Alpha

	if latency > 0 {
		if c.ewmaLatency == 0 {
			c.ewmaLatency = latency
		} else {
			c.ewmaLatency = time.Duration((1-a)*float64(c.ewmaLatency) + a*float64(latency))
		}
	}
	errV, corV := 0.0, 0.0
	if isErr {
		errV = 1
	}
	if isCorrupt {
		corV = 1
	}
	c.ewmaErr = (1-a)*c.ewmaErr + a*errV
	c.ewmaCorrupt = (1-a)*c.ewmaCorrupt + a*corV
	c.observations++

	p50 := t.classP50Locked(c.class, c.name)
	bad := isErr || isCorrupt ||
		c.ewmaErr > t.cfg.ErrorRate ||
		c.ewmaCorrupt > t.cfg.CorruptionRate ||
		(p50 > 0 && c.ewmaLatency > time.Duration(t.cfg.LatencyFactor*float64(p50)))

	tr, fired := t.advanceLocked(c, bad, isProbe)
	score := c.scoreLocked(t.cfg, p50)
	cb := t.onTransition
	t.mu.Unlock()

	t.export(comp, score, tr, fired)
	if fired && cb != nil {
		cb(tr)
	}
}

// classP50Locked computes the median EWMA latency over non-quarantined
// members of class that have at least one latency sample. self is included
// if it qualifies, so a two-member class still yields a meaningful median.
func (t *Tracker) classP50Locked(class, self string) time.Duration {
	lats := make([]time.Duration, 0, 8)
	for _, c := range t.comps {
		if c.class != class || c.ewmaLatency == 0 {
			continue
		}
		if c.state == Quarantined && c.name != self {
			continue
		}
		lats = append(lats, c.ewmaLatency)
	}
	if len(lats) < 2 {
		return 0 // not enough fleet context for a relative comparison
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[(len(lats)-1)/2]
}

// advanceLocked applies one verdict to the state machine.
func (t *Tracker) advanceLocked(c *component, bad, isProbe bool) (Transition, bool) {
	from := c.state
	if bad {
		c.goodStreak = 0
		c.probeStreak = 0
		c.badStreak++
	} else {
		c.badStreak = 0
		c.goodStreak++
		if isProbe {
			c.probeStreak++
		}
	}

	switch c.state {
	case Healthy:
		if bad && c.observations >= int64(t.cfg.MinObservations) && c.badStreak >= t.cfg.SuspectAfter {
			c.state = Suspect
		}
	case Suspect:
		if bad && c.badStreak >= t.cfg.SuspectAfter+t.cfg.QuarantineAfter {
			if t.activeInClassLocked(c.class, c.name) >= t.cfg.MinActive {
				c.state = Quarantined
			}
		} else if !bad && c.goodStreak >= t.cfg.RecoverAfter {
			c.state = Healthy
		}
	case Quarantined:
		if !bad && c.probeStreak >= t.cfg.RecoverAfter {
			c.state = Probation
		}
	case Probation:
		if bad {
			c.state = Quarantined
		} else if !isProbe && c.goodStreak >= t.cfg.RecoverAfter {
			c.state = Healthy
		}
	}

	if c.state == from {
		return Transition{}, false
	}
	c.badStreak, c.goodStreak, c.probeStreak = 0, 0, 0
	c.transitions++
	return Transition{Component: c.name, From: from, To: c.state}, true
}

// activeInClassLocked counts non-quarantined members of class other than self.
func (t *Tracker) activeInClassLocked(class, self string) int {
	n := 0
	for _, c := range t.comps {
		if c.class == class && c.name != self && c.state != Quarantined {
			n++
		}
	}
	return n
}

// scoreLocked folds the EWMA profile into a single [0,1] health score.
func (c *component) scoreLocked(cfg Config, p50 time.Duration) float64 {
	worst := c.ewmaErr
	if c.ewmaCorrupt > worst {
		worst = c.ewmaCorrupt
	}
	if p50 > 0 && c.ewmaLatency > p50 {
		// Normalize latency excess so hitting LatencyFactor x p50 costs
		// the full score.
		ex := (float64(c.ewmaLatency)/float64(p50) - 1) / (cfg.LatencyFactor - 1)
		if ex > worst {
			worst = ex
		}
	}
	if worst > 1 {
		worst = 1
	}
	return 1 - worst
}

func (t *Tracker) export(comp string, score float64, tr Transition, fired bool) {
	h := t.telemetry()
	if h == nil {
		return
	}
	h.Gauge("health_score_millis", "component", comp).Set(int64(score * 1000))
	if fired {
		h.Gauge("health_state", "component", comp).Set(int64(tr.To))
		h.Counter("health_transitions_total", "component", comp, "to", tr.To.String()).Inc()
	}
}

// State reports comp's current state. Unknown components are Healthy.
func (t *Tracker) State(comp string) State {
	if t == nil {
		return Healthy
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.comps[comp]; ok {
		return c.state
	}
	return Healthy
}

// Quarantined reports whether comp is currently quarantined.
func (t *Tracker) Quarantined(comp string) bool {
	return t.State(comp) == Quarantined
}

// Score reports comp's latest health score in [0,1]; unknown components
// score 1.
func (t *Tracker) Score(comp string) float64 {
	if t == nil {
		return 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.comps[comp]
	if !ok {
		return 1
	}
	return c.scoreLocked(t.cfg, t.classP50Locked(c.class, c.name))
}

// SlowThreshold reports the latency above which an in-flight operation on a
// member of class counts as slow (LatencyFactor x class p50), or 0 when the
// class lacks enough samples for a fleet-relative comparison.
func (t *Tracker) SlowThreshold(class string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p50 := t.classP50Locked(class, "")
	if p50 <= 0 {
		return 0
	}
	return time.Duration(t.cfg.LatencyFactor * float64(p50))
}

// Snapshot returns a point-in-time view of every tracked component, sorted
// by component name.
func (t *Tracker) Snapshot() []View {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	views := make([]View, 0, len(t.comps))
	for _, c := range t.comps {
		views = append(views, View{
			Component:    c.name,
			Class:        c.class,
			State:        c.state,
			Score:        c.scoreLocked(t.cfg, t.classP50Locked(c.class, c.name)),
			Latency:      c.ewmaLatency,
			ErrorRate:    c.ewmaErr,
			CorruptRate:  c.ewmaCorrupt,
			Observations: c.observations,
		})
	}
	t.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].Component < views[j].Component })
	return views
}

// QuarantinedComponents lists currently quarantined components, sorted.
func (t *Tracker) QuarantinedComponents() []string {
	var out []string
	for _, v := range t.Snapshot() {
		if v.State == Quarantined {
			out = append(out, v.Component)
		}
	}
	return out
}
