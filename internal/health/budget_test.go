package health

import (
	"sync"
	"testing"

	"repro/internal/telemetry"
)

func TestNilBudgetAlwaysAllows(t *testing.T) {
	var b *Budget
	for i := 0; i < 100; i++ {
		if !b.Take("x") {
			t.Fatal("nil budget denied a token")
		}
	}
	if b.Spent() != 0 || b.Denied() != 0 {
		t.Fatal("nil budget should report zero counters")
	}
	b.SetTelemetry(nil)
	if b.Remaining() <= 0 {
		t.Fatal("nil budget remaining should be unbounded")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	b := NewBudget(3, 0)
	for i := 0; i < 3; i++ {
		if !b.Take("distrib.redispatch") {
			t.Fatalf("token %d denied with budget remaining", i)
		}
	}
	if b.Take("distrib.redispatch") {
		t.Fatal("token granted past capacity with no refill")
	}
	if b.Spent() != 3 || b.Denied() != 1 {
		t.Fatalf("spent=%d denied=%d, want 3/1", b.Spent(), b.Denied())
	}
	if b.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", b.Remaining())
	}
}

func TestBudgetTelemetry(t *testing.T) {
	hub := telemetry.New(nil)
	b := NewBudget(1, 0)
	b.SetTelemetry(hub)
	b.Take("mrnet.retransmit")
	b.Take("mrnet.retransmit")
	var spent, denied int64
	for _, mv := range hub.Metrics.Snapshot() {
		switch mv.Name {
		case "health_retry_tokens_spent_total":
			spent = mv.Value
		case "health_retry_denied_total":
			denied = mv.Value
		}
	}
	if spent != 1 || denied != 1 {
		t.Fatalf("telemetry spent=%d denied=%d, want 1/1", spent, denied)
	}
}

func TestBudgetConcurrentTake(t *testing.T) {
	b := NewBudget(100, 0)
	var wg sync.WaitGroup
	granted := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if b.Take("t") {
					granted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range granted {
		total += n
	}
	if total != 100 {
		t.Fatalf("granted %d tokens from capacity 100", total)
	}
}
