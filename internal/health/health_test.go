package health

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

func feedFleet(t *Tracker, n int, lat time.Duration, rounds int) {
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			t.ObserveSuccess(compName(i), lat)
		}
	}
}

func compName(i int) string {
	return "worker." + string(rune('0'+i))
}

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.ObserveSuccess("worker.0", time.Millisecond)
	tr.ObserveError("worker.0")
	tr.ObserveCorruption("worker.0")
	tr.ObserveProbe("worker.0", time.Millisecond, true)
	tr.SetTelemetry(nil)
	tr.OnTransition(nil)
	if got := tr.State("worker.0"); got != Healthy {
		t.Fatalf("nil tracker state = %v, want Healthy", got)
	}
	if got := tr.Score("worker.0"); got != 1 {
		t.Fatalf("nil tracker score = %v, want 1", got)
	}
	if tr.Snapshot() != nil || tr.QuarantinedComponents() != nil {
		t.Fatal("nil tracker snapshots should be nil")
	}
	if tr.SlowThreshold("worker") != 0 {
		t.Fatal("nil tracker SlowThreshold should be 0")
	}
}

func TestSlowComponentQuarantined(t *testing.T) {
	tr := New(Config{})
	// Establish a healthy fleet baseline.
	feedFleet(tr, 4, 10*time.Millisecond, 3)
	// worker.9 limps at 20x.
	for i := 0; i < 10; i++ {
		tr.ObserveSuccess("worker.9", 200*time.Millisecond)
		if tr.Quarantined("worker.9") {
			break
		}
	}
	if !tr.Quarantined("worker.9") {
		t.Fatalf("slow worker not quarantined; snapshot=%+v", tr.Snapshot())
	}
	// No false quarantines.
	if q := tr.QuarantinedComponents(); len(q) != 1 || q[0] != "worker.9" {
		t.Fatalf("quarantined = %v, want [worker.9]", q)
	}
	for i := 0; i < 4; i++ {
		if st := tr.State(compName(i)); st != Healthy {
			t.Fatalf("healthy worker %d state = %v", i, st)
		}
	}
}

func TestUniformlySlowFleetStaysHealthy(t *testing.T) {
	tr := New(Config{})
	// Everyone is equally slow: relative comparison must not fire.
	feedFleet(tr, 4, 500*time.Millisecond, 10)
	for i := 0; i < 4; i++ {
		if st := tr.State(compName(i)); st != Healthy {
			t.Fatalf("worker %d state = %v, want Healthy", i, st)
		}
	}
}

func TestErrorRateQuarantines(t *testing.T) {
	tr := New(Config{})
	feedFleet(tr, 3, 10*time.Millisecond, 2)
	for i := 0; i < 8; i++ {
		tr.ObserveError("worker.9")
	}
	if !tr.Quarantined("worker.9") {
		t.Fatalf("erroring worker not quarantined; state=%v", tr.State("worker.9"))
	}
}

func TestCorruptionRateQuarantines(t *testing.T) {
	tr := New(Config{})
	feedFleet(tr, 3, 10*time.Millisecond, 2)
	// Alternating corrupt/clean keeps the corruption EWMA above threshold.
	// A healthy sibling NIC keeps the class above the MinActive floor.
	for i := 0; i < 16 && !tr.Quarantined("nic.1"); i++ {
		tr.ObserveSuccess("nic.0", 10*time.Millisecond)
		tr.ObserveCorruption("nic.1")
		tr.ObserveSuccess("nic.1", 10*time.Millisecond)
	}
	if !tr.Quarantined("nic.1") {
		t.Fatalf("corrupting nic not quarantined; snapshot=%+v", tr.Snapshot())
	}
	// The nic class is independent of the worker class.
	for i := 0; i < 3; i++ {
		if st := tr.State(compName(i)); st != Healthy {
			t.Fatalf("worker %d affected by nic corruption: %v", i, st)
		}
	}
}

func TestProbationAndReadmission(t *testing.T) {
	tr := New(Config{})
	feedFleet(tr, 4, 10*time.Millisecond, 3)
	for i := 0; i < 10 && !tr.Quarantined("worker.9"); i++ {
		tr.ObserveSuccess("worker.9", 300*time.Millisecond)
	}
	if !tr.Quarantined("worker.9") {
		t.Fatal("setup: worker.9 not quarantined")
	}
	// Clean probes at fleet speed decay the latency EWMA and earn Probation.
	for i := 0; i < 50 && tr.State("worker.9") == Quarantined; i++ {
		tr.ObserveProbe("worker.9", 10*time.Millisecond, true)
	}
	if st := tr.State("worker.9"); st != Probation {
		t.Fatalf("after clean probes state = %v, want Probation", st)
	}
	// Clean real work from Probation re-admits.
	for i := 0; i < 10 && tr.State("worker.9") == Probation; i++ {
		tr.ObserveSuccess("worker.9", 10*time.Millisecond)
	}
	if st := tr.State("worker.9"); st != Healthy {
		t.Fatalf("after clean real work state = %v, want Healthy", st)
	}
}

func TestProbeFailureKeepsQuarantine(t *testing.T) {
	tr := New(Config{})
	feedFleet(tr, 4, 10*time.Millisecond, 3)
	for i := 0; i < 10 && !tr.Quarantined("worker.9"); i++ {
		tr.ObserveSuccess("worker.9", 300*time.Millisecond)
	}
	if !tr.Quarantined("worker.9") {
		t.Fatal("setup: worker.9 not quarantined")
	}
	// Probes that are still slow must not earn probation.
	for i := 0; i < 20; i++ {
		tr.ObserveProbe("worker.9", 300*time.Millisecond, true)
	}
	if st := tr.State("worker.9"); st != Quarantined {
		t.Fatalf("slow probes advanced state to %v", st)
	}
}

func TestProbationRelapse(t *testing.T) {
	tr := New(Config{})
	feedFleet(tr, 4, 10*time.Millisecond, 3)
	for i := 0; i < 10 && !tr.Quarantined("worker.9"); i++ {
		tr.ObserveSuccess("worker.9", 300*time.Millisecond)
	}
	for i := 0; i < 50 && tr.State("worker.9") == Quarantined; i++ {
		tr.ObserveProbe("worker.9", 10*time.Millisecond, true)
	}
	if st := tr.State("worker.9"); st != Probation {
		t.Fatalf("setup: state = %v, want Probation", st)
	}
	tr.ObserveError("worker.9")
	if st := tr.State("worker.9"); st != Quarantined {
		t.Fatalf("bad observation in probation left state %v, want Quarantined", st)
	}
}

func TestMinActiveGuard(t *testing.T) {
	tr := New(Config{MinActive: 1})
	// Two-member class: one slow. Quarantining it is allowed (1 survivor)...
	feedFleet(tr, 2, 10*time.Millisecond, 3)
	for i := 0; i < 10; i++ {
		tr.ObserveSuccess("worker.8", 300*time.Millisecond)
	}
	if !tr.Quarantined("worker.8") {
		t.Fatalf("worker.8 not quarantined: %v", tr.State("worker.8"))
	}
	// ...but the survivors can never all be quarantined: errors on every
	// remaining member leave at least MinActive active.
	for i := 0; i < 2; i++ {
		for j := 0; j < 20; j++ {
			tr.ObserveError(compName(i))
		}
	}
	active := 0
	for _, v := range tr.Snapshot() {
		if v.Class == "worker" && v.State != Quarantined {
			active++
		}
	}
	if active < 1 {
		t.Fatalf("MinActive violated: %d active workers", active)
	}
}

func TestMinObservationsGuard(t *testing.T) {
	tr := New(Config{MinObservations: 5})
	feedFleet(tr, 3, 10*time.Millisecond, 3)
	// Fewer than MinObservations verdicts: must stay Healthy even if slow.
	tr.ObserveSuccess("worker.9", time.Second)
	tr.ObserveSuccess("worker.9", time.Second)
	if st := tr.State("worker.9"); st != Healthy {
		t.Fatalf("left Healthy after %d observations: %v", 2, st)
	}
}

func TestTransitionCallbackAndTelemetry(t *testing.T) {
	hub := telemetry.New(nil)
	tr := New(Config{})
	tr.SetTelemetry(hub)
	var trans []Transition
	tr.OnTransition(func(x Transition) { trans = append(trans, x) })

	feedFleet(tr, 4, 10*time.Millisecond, 3)
	for i := 0; i < 10 && !tr.Quarantined("worker.9"); i++ {
		tr.ObserveSuccess("worker.9", 300*time.Millisecond)
	}
	if len(trans) < 2 {
		t.Fatalf("transitions = %v, want at least Healthy->Suspect->Quarantined", trans)
	}
	if trans[0].To != Suspect || trans[len(trans)-1].To != Quarantined {
		t.Fatalf("unexpected transition sequence %v", trans)
	}
	found := false
	for _, mv := range hub.Metrics.Snapshot() {
		if mv.Name == "health_transitions_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("health_transitions_total not exported to hub")
	}
}

func TestSlowThreshold(t *testing.T) {
	tr := New(Config{LatencyFactor: 3})
	if tr.SlowThreshold("worker") != 0 {
		t.Fatal("threshold without samples should be 0")
	}
	feedFleet(tr, 4, 10*time.Millisecond, 2)
	th := tr.SlowThreshold("worker")
	if th != 30*time.Millisecond {
		t.Fatalf("SlowThreshold = %v, want 30ms", th)
	}
}

func TestScoreDegrades(t *testing.T) {
	tr := New(Config{})
	feedFleet(tr, 4, 10*time.Millisecond, 3)
	if s := tr.Score("worker.0"); s != 1 {
		t.Fatalf("healthy score = %v, want 1", s)
	}
	for i := 0; i < 6; i++ {
		tr.ObserveSuccess("worker.9", 300*time.Millisecond)
	}
	if s := tr.Score("worker.9"); s > 0.5 {
		t.Fatalf("slow worker score = %v, want <= 0.5", s)
	}
}
