package health

import (
	"errors"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrBudgetExhausted is returned (wrapped) by retry paths when the shared
// retry budget denies a token. It turns a potential retry storm under
// correlated gray faults into a loud partial failure.
var ErrBudgetExhausted = errors.New("health: retry budget exhausted")

// Budget is a token bucket shared by every retry path in the stack
// (distrib redispatch, mrnet retransmit, lustre reread, mrscan phase
// retries). Each retry spends one token; when the bucket is empty the
// retry is denied and the caller must fail loudly instead of retrying.
//
// A nil *Budget always grants tokens, so callers thread it through without
// nil checks.
type Budget struct {
	mu       sync.Mutex
	capacity float64
	tokens   float64
	refill   float64 // tokens per second; 0 = no refill
	last     time.Time
	spent    int64
	denied   int64

	hub *telemetry.Hub
}

// NewBudget returns a budget holding capacity tokens, refilled at
// refillPerSec tokens per second (0 disables refill) up to capacity.
func NewBudget(capacity int, refillPerSec float64) *Budget {
	if capacity < 0 {
		capacity = 0
	}
	return &Budget{
		capacity: float64(capacity),
		tokens:   float64(capacity),
		refill:   refillPerSec,
		last:     time.Now(),
	}
}

// SetTelemetry installs a hub for spend/denial counters.
func (b *Budget) SetTelemetry(h *telemetry.Hub) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.hub = h
	b.mu.Unlock()
}

func (b *Budget) refillLocked(now time.Time) {
	if b.refill <= 0 {
		return
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.refill
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
	}
	b.last = now
}

// Take spends one retry token attributed to site (e.g. "distrib.redispatch",
// "mrnet.retransmit", "lustre.reread"). It reports false when the budget is
// exhausted; the caller must then stop retrying and surface the failure.
func (b *Budget) Take(site string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	b.refillLocked(time.Now())
	ok := b.tokens >= 1
	var h *telemetry.Hub
	if ok {
		b.tokens--
		b.spent++
	} else {
		b.denied++
	}
	h = b.hub
	b.mu.Unlock()
	if h != nil {
		if ok {
			h.Counter("health_retry_tokens_spent_total", "site", site).Inc()
		} else {
			h.Counter("health_retry_denied_total", "site", site).Inc()
		}
	}
	return ok
}

// Spent reports the total tokens granted so far.
func (b *Budget) Spent() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}

// Denied reports the total requests refused so far.
func (b *Budget) Denied() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}

// Remaining reports the tokens currently available (after refill).
func (b *Budget) Remaining() int {
	if b == nil {
		return int(^uint(0) >> 1)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	return int(b.tokens)
}
