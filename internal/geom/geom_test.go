package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{X: 1, Y: 2}, Point{X: 1, Y: 2}, 0},
		{"unit x", Point{X: 0, Y: 0}, Point{X: 1, Y: 0}, 1},
		{"unit y", Point{X: 0, Y: 0}, Point{X: 0, Y: 1}, 1},
		{"3-4-5", Point{X: 0, Y: 0}, Point{X: 3, Y: 4}, 5},
		{"negative coords", Point{X: -1, Y: -1}, Point{X: 2, Y: 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dist(tt.p, tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := Dist2(tt.p, tt.q); math.Abs(got-tt.want*tt.want) > 1e-12 {
				t.Errorf("Dist2(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
			}
		})
	}
}

func TestWithinEpsBoundaryInclusive(t *testing.T) {
	p := Point{X: 0, Y: 0}
	q := Point{X: 0.1, Y: 0}
	if !WithinEps(p, q, 0.1) {
		t.Error("points at exactly eps must be within the Eps-neighborhood")
	}
	if WithinEps(p, Point{X: 0.1000001, Y: 0}, 0.1) {
		t.Error("points beyond eps must not be within the Eps-neighborhood")
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyNaNInf(ax, ay, bx, by) {
			return true
		}
		a, b := Point{X: ax, Y: ay}, Point{X: bx, Y: by}
		return Dist2(a, b) == Dist2(b, a) && Dist2(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{X: float64(ax), Y: float64(ay)}
		b := Point{X: float64(bx), Y: float64(by)}
		c := Point{X: float64(cx), Y: float64(cy)}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyRect(t *testing.T) {
	r := EmptyRect()
	if !r.Empty() {
		t.Fatal("EmptyRect must be empty")
	}
	if r.Width() != 0 || r.Height() != 0 || r.Diagonal() != 0 {
		t.Error("empty rect must have zero extents")
	}
	if r.Contains(Point{}) {
		t.Error("empty rect must not contain points")
	}
	r = r.Extend(Point{X: 1, Y: 2})
	if r.Empty() {
		t.Fatal("rect with one point must not be empty")
	}
	if !r.Contains(Point{X: 1, Y: 2}) {
		t.Error("rect must contain its defining point")
	}
}

func TestRectOf(t *testing.T) {
	pts := []Point{{X: 1, Y: 5}, {X: -2, Y: 3}, {X: 4, Y: -1}}
	r := RectOf(pts)
	want := Rect{MinX: -2, MinY: -1, MaxX: 4, MaxY: 5}
	if r != want {
		t.Errorf("RectOf = %+v, want %+v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounding rect must contain %v", p)
		}
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	b := Rect{MinX: 2, MinY: -1, MaxX: 3, MaxY: 0.5}
	u := a.Union(b)
	want := Rect{MinX: 0, MinY: -1, MaxX: 3, MaxY: 1}
	if u != want {
		t.Errorf("Union = %+v, want %+v", u, want)
	}
	if got := a.Union(EmptyRect()); got != a {
		t.Errorf("union with empty = %+v, want %+v", got, a)
	}
	if got := EmptyRect().Union(a); got != a {
		t.Errorf("empty union rect = %+v, want %+v", got, a)
	}
}

func TestRectDist2ToPoint(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{X: 1, Y: 1}, 0},      // inside
		{Point{X: 0, Y: 0}, 0},      // corner
		{Point{X: 3, Y: 1}, 1},      // right of
		{Point{X: 1, Y: -2}, 4},     // below
		{Point{X: 5, Y: 6}, 9 + 16}, // diagonal
	}
	for _, tt := range tests {
		if got := r.Dist2ToPoint(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist2ToPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlapping", Rect{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3}, true},
		{"touching edge", Rect{MinX: 2, MinY: 0, MaxX: 4, MaxY: 2}, true},
		{"disjoint", Rect{MinX: 3, MinY: 3, MaxX: 4, MaxY: 4}, false},
		{"containing", Rect{MinX: -1, MinY: -1, MaxX: 5, MaxY: 5}, true},
		{"empty", EmptyRect(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("Intersects (reversed) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectInflate(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}.Inflate(0.5)
	want := Rect{MinX: -0.5, MinY: -0.5, MaxX: 1.5, MaxY: 1.5}
	if r != want {
		t.Errorf("Inflate = %+v, want %+v", r, want)
	}
	if got := EmptyRect().Inflate(1); !got.Empty() {
		t.Error("inflating an empty rect must stay empty")
	}
}

func TestDiagonal(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 4}
	if got := r.Diagonal(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Diagonal = %v, want 5", got)
	}
}

func TestExtendContainmentProperty(t *testing.T) {
	f := func(seed []int16) bool {
		r := EmptyRect()
		pts := make([]Point, 0, len(seed)/2)
		for i := 0; i+1 < len(seed); i += 2 {
			pts = append(pts, Point{X: float64(seed[i]), Y: float64(seed[i+1])})
		}
		for _, p := range pts {
			r = r.Extend(p)
		}
		for _, p := range pts {
			if !r.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyNaNInf(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
