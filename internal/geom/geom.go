// Package geom provides the planar geometry primitives shared by every
// Mr. Scan component: identified 2D points, axis-aligned rectangles and the
// distance kernels used for Eps-neighborhood tests.
//
// Mr. Scan operates on 2D data (the paper evaluates latitude/longitude and
// sky-survey frames); the partitioning algorithm generalizes to higher
// dimensions but, like the paper, the implementation is 2D.
package geom

import (
	"fmt"
	"math"
)

// Point is a single input datum: a unique ID, planar coordinates and an
// optional analysis weight (paper §3: "Each input point has a unique ID
// number, coordinates, and an optional weight").
type Point struct {
	ID     uint64
	X, Y   float64
	Weight float64
}

// String renders the point compactly for logs and error messages.
func (p Point) String() string {
	return fmt.Sprintf("pt(%d: %.6g,%.6g)", p.ID, p.X, p.Y)
}

// Dist2 returns the squared Euclidean distance between p and q.
// Squared distances avoid math.Sqrt in the hot Eps-neighborhood tests.
func Dist2(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 {
	return math.Sqrt(Dist2(p, q))
}

// WithinEps reports whether p and q lie within eps of each other.
// Boundary points (distance exactly eps) are inside the neighborhood,
// matching the original DBSCAN definition of the Eps-neighborhood.
func WithinEps(p, q Point, eps float64) bool {
	return Dist2(p, q) <= eps*eps
}

// Rect is a closed axis-aligned rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns a rectangle that contains nothing and expands correctly
// under Extend.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// RectOf returns the bounding rectangle of pts. It returns EmptyRect for an
// empty slice.
func RectOf(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Extend(p)
	}
	return r
}

// Extend grows r to include p.
func (r Rect) Extend(p Point) Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if s.Empty() {
		return r
	}
	if r.Empty() {
		return s
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Empty reports whether the rectangle contains no area and no points.
func (r Rect) Empty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// Contains reports whether p lies inside the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the rectangle's x extent (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.Empty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the rectangle's y extent (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.Empty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Diagonal returns the length of the rectangle's diagonal — the longest
// distance across it. The dense-box test (§3.2.3) relies on this: a box
// whose diagonal is at most Eps has every pair of its points within Eps.
func (r Rect) Diagonal() float64 {
	w, h := r.Width(), r.Height()
	return math.Sqrt(w*w + h*h)
}

// Dist2ToPoint returns the squared distance from p to the closest point of
// the rectangle (0 if p is inside). Used by KD-tree range queries to prune
// subtrees.
func (r Rect) Dist2ToPoint(p Point) float64 {
	dx := axisDist(p.X, r.MinX, r.MaxX)
	dy := axisDist(p.Y, r.MinY, r.MaxY)
	return dx*dx + dy*dy
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Inflate returns r grown by d on every side.
func (r Rect) Inflate(d float64) Rect {
	if r.Empty() {
		return r
	}
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}
