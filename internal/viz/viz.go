// Package viz renders clustered point sets to images and terminal art,
// for eyeballing Mr. Scan outputs (the paper's Figure 2 shows exactly
// such a rendering of partitioned tweets over the US).
//
// The renderer is deliberately dependency-free: binary PPM (P6) for
// images, ANSI-free ASCII for terminals.
package viz

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/geom"
)

// palette holds visually distinct colors assigned to clusters
// round-robin; noise is dark gray, background white.
var palette = [][3]byte{
	{230, 57, 70}, {29, 53, 87}, {42, 157, 143}, {233, 196, 106},
	{244, 162, 97}, {38, 70, 83}, {106, 76, 147}, {25, 130, 196},
	{138, 201, 38}, {255, 89, 94}, {255, 202, 58}, {22, 138, 173},
	{106, 153, 78}, {188, 71, 73}, {84, 71, 140}, {239, 111, 108},
}

var (
	noiseColor = [3]byte{90, 90, 90}
	background = [3]byte{255, 255, 255}
)

// Options controls rendering.
type Options struct {
	// Width and Height of the raster in pixels (defaults 800×600).
	Width, Height int
	// Bounds selects the region to draw; empty = the points' bounding
	// box with 2% padding.
	Bounds geom.Rect
	// ShowNoise draws noise points (gray) instead of omitting them.
	ShowNoise bool
}

func (o *Options) setDefaults(pts []geom.Point) {
	if o.Width <= 0 {
		o.Width = 800
	}
	if o.Height <= 0 {
		o.Height = 600
	}
	// A zero-area rectangle (including the zero value) means "derive the
	// bounds from the data".
	if o.Bounds.Empty() || o.Bounds.Width() == 0 || o.Bounds.Height() == 0 {
		b := geom.RectOf(pts)
		if b.Empty() {
			b = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
		}
		pad := (b.Width() + b.Height()) * 0.01
		if pad == 0 {
			pad = 0.5
		}
		o.Bounds = b.Inflate(pad)
	}
}

// raster paints labels onto a pixel grid; -1 cells are background, -2
// noise, >= 0 cluster IDs.
func raster(pts []geom.Point, labels []int, opt Options) ([][]int32, error) {
	if len(pts) != len(labels) {
		return nil, fmt.Errorf("viz: %d points with %d labels", len(pts), len(labels))
	}
	px := make([][]int32, opt.Height)
	for y := range px {
		px[y] = make([]int32, opt.Width)
		for x := range px[y] {
			px[y][x] = -1
		}
	}
	b := opt.Bounds
	for i, p := range pts {
		l := labels[i]
		if l < 0 && !opt.ShowNoise {
			continue
		}
		if !b.Contains(p) {
			continue
		}
		x := int(float64(opt.Width-1) * (p.X - b.MinX) / b.Width())
		y := int(float64(opt.Height-1) * (b.MaxY - p.Y) / b.Height()) // north up
		v := int32(-2)
		if l >= 0 {
			v = int32(l)
		}
		// Clusters overwrite noise; noise never overwrites clusters.
		if v >= 0 || px[y][x] == -1 {
			px[y][x] = v
		}
	}
	return px, nil
}

// WritePPM renders the labeled points as a binary PPM (P6) image.
func WritePPM(w io.Writer, pts []geom.Point, labels []int, opt Options) error {
	opt.setDefaults(pts)
	px, err := raster(pts, labels, opt)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", opt.Width, opt.Height); err != nil {
		return err
	}
	row := make([]byte, opt.Width*3)
	for y := 0; y < opt.Height; y++ {
		for x := 0; x < opt.Width; x++ {
			var c [3]byte
			switch v := px[y][x]; {
			case v == -1:
				c = background
			case v == -2:
				c = noiseColor
			default:
				c = palette[int(v)%len(palette)]
			}
			copy(row[x*3:], c[:])
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ASCII renders the labeled points as a w×h character grid: '.' for
// background, '░' left out — plain ASCII only: clusters cycle over
// letters/digits, noise is ','.
func ASCII(pts []geom.Point, labels []int, w, h int, showNoise bool) (string, error) {
	opt := Options{Width: w, Height: h, ShowNoise: showNoise}
	opt.setDefaults(pts)
	opt.Width, opt.Height = w, h
	px, err := raster(pts, labels, opt)
	if err != nil {
		return "", err
	}
	const glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	out := make([]byte, 0, (w+1)*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			switch v := px[y][x]; {
			case v == -1:
				out = append(out, '.')
			case v == -2:
				out = append(out, ',')
			default:
				out = append(out, glyphs[int(v)%len(glyphs)])
			}
		}
		out = append(out, '\n')
	}
	return string(out), nil
}
